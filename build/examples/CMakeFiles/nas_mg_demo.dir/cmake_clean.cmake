file(REMOVE_RECURSE
  "CMakeFiles/nas_mg_demo.dir/nas_mg_demo.cpp.o"
  "CMakeFiles/nas_mg_demo.dir/nas_mg_demo.cpp.o.d"
  "nas_mg_demo"
  "nas_mg_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_mg_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
