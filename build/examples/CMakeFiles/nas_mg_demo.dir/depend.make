# Empty dependencies file for nas_mg_demo.
# This may be replaced when dependencies are built.
