# Empty compiler generated dependencies file for poisson2d_solver.
# This may be replaced when dependencies are built.
