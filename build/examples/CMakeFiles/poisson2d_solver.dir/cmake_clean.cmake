file(REMOVE_RECURSE
  "CMakeFiles/poisson2d_solver.dir/poisson2d_solver.cpp.o"
  "CMakeFiles/poisson2d_solver.dir/poisson2d_solver.cpp.o.d"
  "poisson2d_solver"
  "poisson2d_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson2d_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
