file(REMOVE_RECURSE
  "CMakeFiles/distributed_mg.dir/distributed_mg.cpp.o"
  "CMakeFiles/distributed_mg.dir/distributed_mg.cpp.o.d"
  "distributed_mg"
  "distributed_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
