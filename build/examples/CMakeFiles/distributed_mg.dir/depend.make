# Empty dependencies file for distributed_mg.
# This may be replaced when dependencies are built.
