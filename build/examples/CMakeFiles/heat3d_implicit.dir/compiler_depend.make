# Empty compiler generated dependencies file for heat3d_implicit.
# This may be replaced when dependencies are built.
