file(REMOVE_RECURSE
  "CMakeFiles/heat3d_implicit.dir/heat3d_implicit.cpp.o"
  "CMakeFiles/heat3d_implicit.dir/heat3d_implicit.cpp.o.d"
  "heat3d_implicit"
  "heat3d_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat3d_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
