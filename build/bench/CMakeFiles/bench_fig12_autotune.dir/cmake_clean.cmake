file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_autotune.dir/bench_fig12_autotune.cpp.o"
  "CMakeFiles/bench_fig12_autotune.dir/bench_fig12_autotune.cpp.o.d"
  "bench_fig12_autotune"
  "bench_fig12_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
