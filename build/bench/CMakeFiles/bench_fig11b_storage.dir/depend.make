# Empty dependencies file for bench_fig11b_storage.
# This may be replaced when dependencies are built.
