# Empty compiler generated dependencies file for bench_fig11a_smoother.
# This may be replaced when dependencies are built.
