file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_smoother.dir/bench_fig11a_smoother.cpp.o"
  "CMakeFiles/bench_fig11a_smoother.dir/bench_fig11a_smoother.cpp.o.d"
  "bench_fig11a_smoother"
  "bench_fig11a_smoother.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
