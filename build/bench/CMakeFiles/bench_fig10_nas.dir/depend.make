# Empty dependencies file for bench_fig10_nas.
# This may be replaced when dependencies are built.
