file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_nas.dir/bench_fig10_nas.cpp.o"
  "CMakeFiles/bench_fig10_nas.dir/bench_fig10_nas.cpp.o.d"
  "bench_fig10_nas"
  "bench_fig10_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
