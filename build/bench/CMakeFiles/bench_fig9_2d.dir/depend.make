# Empty dependencies file for bench_fig9_2d.
# This may be replaced when dependencies are built.
