file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_comm.dir/bench_dist_comm.cpp.o"
  "CMakeFiles/bench_dist_comm.dir/bench_dist_comm.cpp.o.d"
  "bench_dist_comm"
  "bench_dist_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
