# Empty compiler generated dependencies file for bench_dist_comm.
# This may be replaced when dependencies are built.
