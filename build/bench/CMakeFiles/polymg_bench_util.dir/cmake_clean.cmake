file(REMOVE_RECURSE
  "../lib/libpolymg_bench_util.a"
  "../lib/libpolymg_bench_util.pdb"
  "CMakeFiles/polymg_bench_util.dir/util/harness.cpp.o"
  "CMakeFiles/polymg_bench_util.dir/util/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
