file(REMOVE_RECURSE
  "../lib/libpolymg_bench_util.a"
)
