# Empty compiler generated dependencies file for polymg_bench_util.
# This may be replaced when dependencies are built.
