# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
