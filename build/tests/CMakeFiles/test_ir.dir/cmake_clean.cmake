file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/ir/test_builder.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_builder.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_bytecode.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_bytecode.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_expr.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_expr.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_lowering.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_lowering.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_stencil.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_stencil.cpp.o.d"
  "test_ir"
  "test_ir.pdb"
  "test_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
