
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt/test_autotune.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_autotune.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_autotune.cpp.o.d"
  "/root/repo/tests/opt/test_compile.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_compile.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_compile.cpp.o.d"
  "/root/repo/tests/opt/test_grouping.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_grouping.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_grouping.cpp.o.d"
  "/root/repo/tests/opt/test_plan.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_plan.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_plan.cpp.o.d"
  "/root/repo/tests/opt/test_storage.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_storage.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_storage.cpp.o.d"
  "/root/repo/tests/opt/test_storage_fuzz.cpp" "tests/CMakeFiles/test_opt.dir/opt/test_storage_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/test_storage_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/polymg_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/polymg_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/polymg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/polymg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
