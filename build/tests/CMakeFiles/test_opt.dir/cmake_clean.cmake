file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/test_autotune.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_autotune.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_compile.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_compile.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_grouping.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_grouping.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_plan.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_plan.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_storage.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_storage.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_storage_fuzz.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_storage_fuzz.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
