file(REMOVE_RECURSE
  "CMakeFiles/test_nas.dir/solvers/test_nas_mg.cpp.o"
  "CMakeFiles/test_nas.dir/solvers/test_nas_mg.cpp.o.d"
  "test_nas"
  "test_nas.pdb"
  "test_nas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
