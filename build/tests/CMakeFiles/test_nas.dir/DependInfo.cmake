
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/solvers/test_nas_mg.cpp" "tests/CMakeFiles/test_nas.dir/solvers/test_nas_mg.cpp.o" "gcc" "tests/CMakeFiles/test_nas.dir/solvers/test_nas_mg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/polymg_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/polymg_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/polymg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/polymg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
