file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_fuzz_pipelines.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_fuzz_pipelines.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_kernels.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_kernels.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_pool.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_pool.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_timetile.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_timetile.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_wavefront.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_wavefront.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
