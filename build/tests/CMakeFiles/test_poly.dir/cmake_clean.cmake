file(REMOVE_RECURSE
  "CMakeFiles/test_poly.dir/poly/test_access.cpp.o"
  "CMakeFiles/test_poly.dir/poly/test_access.cpp.o.d"
  "CMakeFiles/test_poly.dir/poly/test_box.cpp.o"
  "CMakeFiles/test_poly.dir/poly/test_box.cpp.o.d"
  "CMakeFiles/test_poly.dir/poly/test_interval.cpp.o"
  "CMakeFiles/test_poly.dir/poly/test_interval.cpp.o.d"
  "CMakeFiles/test_poly.dir/poly/test_tiling.cpp.o"
  "CMakeFiles/test_poly.dir/poly/test_tiling.cpp.o.d"
  "CMakeFiles/test_poly.dir/poly/test_tiling3d.cpp.o"
  "CMakeFiles/test_poly.dir/poly/test_tiling3d.cpp.o.d"
  "test_poly"
  "test_poly.pdb"
  "test_poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
