file(REMOVE_RECURSE
  "CMakeFiles/test_solvers.dir/solvers/test_convergence.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_convergence.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_cycles.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_cycles.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_equivalence.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_equivalence.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_fmg.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_fmg.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_handopt.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_handopt.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_smoothers.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_smoothers.cpp.o.d"
  "CMakeFiles/test_solvers.dir/solvers/test_varcoef.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_varcoef.cpp.o.d"
  "test_solvers"
  "test_solvers.pdb"
  "test_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
