
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/solvers/test_convergence.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_convergence.cpp.o.d"
  "/root/repo/tests/solvers/test_cycles.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_cycles.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_cycles.cpp.o.d"
  "/root/repo/tests/solvers/test_equivalence.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_equivalence.cpp.o.d"
  "/root/repo/tests/solvers/test_fmg.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_fmg.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_fmg.cpp.o.d"
  "/root/repo/tests/solvers/test_handopt.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_handopt.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_handopt.cpp.o.d"
  "/root/repo/tests/solvers/test_pcg.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_pcg.cpp.o.d"
  "/root/repo/tests/solvers/test_smoothers.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_smoothers.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_smoothers.cpp.o.d"
  "/root/repo/tests/solvers/test_varcoef.cpp" "tests/CMakeFiles/test_solvers.dir/solvers/test_varcoef.cpp.o" "gcc" "tests/CMakeFiles/test_solvers.dir/solvers/test_varcoef.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/polymg_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/polymg_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/polymg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/polymg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
