# Empty compiler generated dependencies file for polymg_solvers.
# This may be replaced when dependencies are built.
