file(REMOVE_RECURSE
  "CMakeFiles/polymg_solvers.dir/cycles.cpp.o"
  "CMakeFiles/polymg_solvers.dir/cycles.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/fmg.cpp.o"
  "CMakeFiles/polymg_solvers.dir/fmg.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/handopt.cpp.o"
  "CMakeFiles/polymg_solvers.dir/handopt.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/metrics.cpp.o"
  "CMakeFiles/polymg_solvers.dir/metrics.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/nas_mg.cpp.o"
  "CMakeFiles/polymg_solvers.dir/nas_mg.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/pcg.cpp.o"
  "CMakeFiles/polymg_solvers.dir/pcg.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/poisson.cpp.o"
  "CMakeFiles/polymg_solvers.dir/poisson.cpp.o.d"
  "CMakeFiles/polymg_solvers.dir/varcoef.cpp.o"
  "CMakeFiles/polymg_solvers.dir/varcoef.cpp.o.d"
  "libpolymg_solvers.a"
  "libpolymg_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
