
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/cycles.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/cycles.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/cycles.cpp.o.d"
  "/root/repo/src/solvers/fmg.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/fmg.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/fmg.cpp.o.d"
  "/root/repo/src/solvers/handopt.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/handopt.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/handopt.cpp.o.d"
  "/root/repo/src/solvers/metrics.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/metrics.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/metrics.cpp.o.d"
  "/root/repo/src/solvers/nas_mg.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/nas_mg.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/nas_mg.cpp.o.d"
  "/root/repo/src/solvers/pcg.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/pcg.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/pcg.cpp.o.d"
  "/root/repo/src/solvers/poisson.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/poisson.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/poisson.cpp.o.d"
  "/root/repo/src/solvers/varcoef.cpp" "src/solvers/CMakeFiles/polymg_solvers.dir/varcoef.cpp.o" "gcc" "src/solvers/CMakeFiles/polymg_solvers.dir/varcoef.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/polymg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/polymg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
