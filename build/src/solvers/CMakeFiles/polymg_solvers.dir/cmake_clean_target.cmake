file(REMOVE_RECURSE
  "libpolymg_solvers.a"
)
