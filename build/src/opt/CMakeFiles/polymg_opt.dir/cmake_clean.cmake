file(REMOVE_RECURSE
  "CMakeFiles/polymg_opt.dir/autotune.cpp.o"
  "CMakeFiles/polymg_opt.dir/autotune.cpp.o.d"
  "CMakeFiles/polymg_opt.dir/compile.cpp.o"
  "CMakeFiles/polymg_opt.dir/compile.cpp.o.d"
  "CMakeFiles/polymg_opt.dir/grouping.cpp.o"
  "CMakeFiles/polymg_opt.dir/grouping.cpp.o.d"
  "CMakeFiles/polymg_opt.dir/options.cpp.o"
  "CMakeFiles/polymg_opt.dir/options.cpp.o.d"
  "CMakeFiles/polymg_opt.dir/plan.cpp.o"
  "CMakeFiles/polymg_opt.dir/plan.cpp.o.d"
  "CMakeFiles/polymg_opt.dir/storage.cpp.o"
  "CMakeFiles/polymg_opt.dir/storage.cpp.o.d"
  "libpolymg_opt.a"
  "libpolymg_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
