
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/autotune.cpp" "src/opt/CMakeFiles/polymg_opt.dir/autotune.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/autotune.cpp.o.d"
  "/root/repo/src/opt/compile.cpp" "src/opt/CMakeFiles/polymg_opt.dir/compile.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/compile.cpp.o.d"
  "/root/repo/src/opt/grouping.cpp" "src/opt/CMakeFiles/polymg_opt.dir/grouping.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/grouping.cpp.o.d"
  "/root/repo/src/opt/options.cpp" "src/opt/CMakeFiles/polymg_opt.dir/options.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/options.cpp.o.d"
  "/root/repo/src/opt/plan.cpp" "src/opt/CMakeFiles/polymg_opt.dir/plan.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/plan.cpp.o.d"
  "/root/repo/src/opt/storage.cpp" "src/opt/CMakeFiles/polymg_opt.dir/storage.cpp.o" "gcc" "src/opt/CMakeFiles/polymg_opt.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
