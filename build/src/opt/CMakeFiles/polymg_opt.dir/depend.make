# Empty dependencies file for polymg_opt.
# This may be replaced when dependencies are built.
