file(REMOVE_RECURSE
  "libpolymg_opt.a"
)
