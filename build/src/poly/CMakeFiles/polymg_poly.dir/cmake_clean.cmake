file(REMOVE_RECURSE
  "CMakeFiles/polymg_poly.dir/access.cpp.o"
  "CMakeFiles/polymg_poly.dir/access.cpp.o.d"
  "CMakeFiles/polymg_poly.dir/box.cpp.o"
  "CMakeFiles/polymg_poly.dir/box.cpp.o.d"
  "CMakeFiles/polymg_poly.dir/tiling.cpp.o"
  "CMakeFiles/polymg_poly.dir/tiling.cpp.o.d"
  "libpolymg_poly.a"
  "libpolymg_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
