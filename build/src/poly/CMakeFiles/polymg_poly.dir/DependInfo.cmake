
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/access.cpp" "src/poly/CMakeFiles/polymg_poly.dir/access.cpp.o" "gcc" "src/poly/CMakeFiles/polymg_poly.dir/access.cpp.o.d"
  "/root/repo/src/poly/box.cpp" "src/poly/CMakeFiles/polymg_poly.dir/box.cpp.o" "gcc" "src/poly/CMakeFiles/polymg_poly.dir/box.cpp.o.d"
  "/root/repo/src/poly/tiling.cpp" "src/poly/CMakeFiles/polymg_poly.dir/tiling.cpp.o" "gcc" "src/poly/CMakeFiles/polymg_poly.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
