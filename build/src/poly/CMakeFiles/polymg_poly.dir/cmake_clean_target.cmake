file(REMOVE_RECURSE
  "libpolymg_poly.a"
)
