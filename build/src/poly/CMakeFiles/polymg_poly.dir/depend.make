# Empty dependencies file for polymg_poly.
# This may be replaced when dependencies are built.
