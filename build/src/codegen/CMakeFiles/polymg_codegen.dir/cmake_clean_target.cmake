file(REMOVE_RECURSE
  "libpolymg_codegen.a"
)
