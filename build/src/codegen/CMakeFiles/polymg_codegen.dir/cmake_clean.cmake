file(REMOVE_RECURSE
  "CMakeFiles/polymg_codegen.dir/emit_c.cpp.o"
  "CMakeFiles/polymg_codegen.dir/emit_c.cpp.o.d"
  "libpolymg_codegen.a"
  "libpolymg_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
