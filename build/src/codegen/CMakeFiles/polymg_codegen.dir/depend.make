# Empty dependencies file for polymg_codegen.
# This may be replaced when dependencies are built.
