file(REMOVE_RECURSE
  "libpolymg_dist.a"
)
