# Empty dependencies file for polymg_dist.
# This may be replaced when dependencies are built.
