file(REMOVE_RECURSE
  "CMakeFiles/polymg_dist.dir/dist_mg.cpp.o"
  "CMakeFiles/polymg_dist.dir/dist_mg.cpp.o.d"
  "libpolymg_dist.a"
  "libpolymg_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
