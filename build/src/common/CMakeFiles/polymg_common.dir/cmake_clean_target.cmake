file(REMOVE_RECURSE
  "libpolymg_common.a"
)
