# Empty compiler generated dependencies file for polymg_common.
# This may be replaced when dependencies are built.
