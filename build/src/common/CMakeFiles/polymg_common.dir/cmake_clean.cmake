file(REMOVE_RECURSE
  "CMakeFiles/polymg_common.dir/error.cpp.o"
  "CMakeFiles/polymg_common.dir/error.cpp.o.d"
  "CMakeFiles/polymg_common.dir/options.cpp.o"
  "CMakeFiles/polymg_common.dir/options.cpp.o.d"
  "CMakeFiles/polymg_common.dir/parallel.cpp.o"
  "CMakeFiles/polymg_common.dir/parallel.cpp.o.d"
  "CMakeFiles/polymg_common.dir/timer.cpp.o"
  "CMakeFiles/polymg_common.dir/timer.cpp.o.d"
  "libpolymg_common.a"
  "libpolymg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
