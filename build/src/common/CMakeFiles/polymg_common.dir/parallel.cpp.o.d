src/common/CMakeFiles/polymg_common.dir/parallel.cpp.o: \
 /root/repo/src/common/parallel.cpp /usr/include/stdc-predef.h \
 /root/repo/src/common/include/polymg/common/parallel.hpp \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/omp.h
