file(REMOVE_RECURSE
  "CMakeFiles/polymg_runtime.dir/executor.cpp.o"
  "CMakeFiles/polymg_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/polymg_runtime.dir/kernels.cpp.o"
  "CMakeFiles/polymg_runtime.dir/kernels.cpp.o.d"
  "CMakeFiles/polymg_runtime.dir/pool.cpp.o"
  "CMakeFiles/polymg_runtime.dir/pool.cpp.o.d"
  "CMakeFiles/polymg_runtime.dir/timetile.cpp.o"
  "CMakeFiles/polymg_runtime.dir/timetile.cpp.o.d"
  "CMakeFiles/polymg_runtime.dir/wavefront.cpp.o"
  "CMakeFiles/polymg_runtime.dir/wavefront.cpp.o.d"
  "libpolymg_runtime.a"
  "libpolymg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
