
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/polymg_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/polymg_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/kernels.cpp" "src/runtime/CMakeFiles/polymg_runtime.dir/kernels.cpp.o" "gcc" "src/runtime/CMakeFiles/polymg_runtime.dir/kernels.cpp.o.d"
  "/root/repo/src/runtime/pool.cpp" "src/runtime/CMakeFiles/polymg_runtime.dir/pool.cpp.o" "gcc" "src/runtime/CMakeFiles/polymg_runtime.dir/pool.cpp.o.d"
  "/root/repo/src/runtime/timetile.cpp" "src/runtime/CMakeFiles/polymg_runtime.dir/timetile.cpp.o" "gcc" "src/runtime/CMakeFiles/polymg_runtime.dir/timetile.cpp.o.d"
  "/root/repo/src/runtime/wavefront.cpp" "src/runtime/CMakeFiles/polymg_runtime.dir/wavefront.cpp.o" "gcc" "src/runtime/CMakeFiles/polymg_runtime.dir/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/polymg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polymg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
