# Empty compiler generated dependencies file for polymg_runtime.
# This may be replaced when dependencies are built.
