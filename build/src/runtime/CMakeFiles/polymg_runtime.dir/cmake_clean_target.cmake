file(REMOVE_RECURSE
  "libpolymg_runtime.a"
)
