file(REMOVE_RECURSE
  "CMakeFiles/polymg_ir.dir/builder.cpp.o"
  "CMakeFiles/polymg_ir.dir/builder.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/bytecode.cpp.o"
  "CMakeFiles/polymg_ir.dir/bytecode.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/expr.cpp.o"
  "CMakeFiles/polymg_ir.dir/expr.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/function.cpp.o"
  "CMakeFiles/polymg_ir.dir/function.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/lowering.cpp.o"
  "CMakeFiles/polymg_ir.dir/lowering.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/pipeline.cpp.o"
  "CMakeFiles/polymg_ir.dir/pipeline.cpp.o.d"
  "CMakeFiles/polymg_ir.dir/stencil.cpp.o"
  "CMakeFiles/polymg_ir.dir/stencil.cpp.o.d"
  "libpolymg_ir.a"
  "libpolymg_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
