# Empty compiler generated dependencies file for polymg_ir.
# This may be replaced when dependencies are built.
