
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/polymg_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/bytecode.cpp" "src/ir/CMakeFiles/polymg_ir.dir/bytecode.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/bytecode.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/polymg_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/ir/CMakeFiles/polymg_ir.dir/function.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/function.cpp.o.d"
  "/root/repo/src/ir/lowering.cpp" "src/ir/CMakeFiles/polymg_ir.dir/lowering.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/lowering.cpp.o.d"
  "/root/repo/src/ir/pipeline.cpp" "src/ir/CMakeFiles/polymg_ir.dir/pipeline.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/pipeline.cpp.o.d"
  "/root/repo/src/ir/stencil.cpp" "src/ir/CMakeFiles/polymg_ir.dir/stencil.cpp.o" "gcc" "src/ir/CMakeFiles/polymg_ir.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/polymg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/polymg_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/polymg_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
