file(REMOVE_RECURSE
  "libpolymg_ir.a"
)
