# Empty dependencies file for polymg_grid.
# This may be replaced when dependencies are built.
