file(REMOVE_RECURSE
  "CMakeFiles/polymg_grid.dir/buffer.cpp.o"
  "CMakeFiles/polymg_grid.dir/buffer.cpp.o.d"
  "CMakeFiles/polymg_grid.dir/ops.cpp.o"
  "CMakeFiles/polymg_grid.dir/ops.cpp.o.d"
  "libpolymg_grid.a"
  "libpolymg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
