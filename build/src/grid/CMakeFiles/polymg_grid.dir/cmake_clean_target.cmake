file(REMOVE_RECURSE
  "libpolymg_grid.a"
)
