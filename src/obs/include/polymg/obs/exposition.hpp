// polymg::obs — minimal poll-based metrics scrape endpoint.
//
// A background thread listens on a loopback TCP port and/or a unix
// socket and answers every connection with one HTTP/1.0 response whose
// body is Metrics::prometheus_text() — enough for a Prometheus scraper,
// curl, or the CI smoke job; deliberately not a web server (no routing,
// no keep-alive, no TLS). The accept loop polls with a short timeout so
// shutdown is prompt, and serves one connection at a time: a scrape is
// one registry snapshot, and scrapers tolerate seconds of latency.
//
// Lifecycle: the constructor binds and starts the thread (a bind
// failure leaves running() false — the endpoint is telemetry, never
// worth failing a solve for); the destructor stops the loop, joins, and
// unlinks the unix socket. SolveService owns one when configured
// (ServiceConfig::metrics_port / metrics_unix_path).
//
// Non-POSIX builds compile the sockets out; running() stays false.
#pragma once

#include <cstdint>
#include <string>

namespace polymg::obs {

class ScrapeEndpoint {
public:
  struct Options {
    /// TCP listener on 127.0.0.1: -1 disables, 0 binds an ephemeral
    /// port (read it back from port()), otherwise the given port.
    int tcp_port = -1;
    /// Unix-domain listener at this path (empty disables). The path is
    /// unlinked first (stale sockets from a dead process) and again on
    /// shutdown.
    std::string unix_path;
  };

  explicit ScrapeEndpoint(const Options& opts);
  ~ScrapeEndpoint();
  ScrapeEndpoint(const ScrapeEndpoint&) = delete;
  ScrapeEndpoint& operator=(const ScrapeEndpoint&) = delete;

  /// True while the accept loop serves at least one listener.
  bool running() const;

  /// Bound TCP port (the ephemeral answer for tcp_port=0); -1 without a
  /// TCP listener.
  int port() const;

  const std::string& unix_path() const;

  /// Blocking HTTP GET against 127.0.0.1:port, returning the response
  /// body (the Prometheus text). Empty string on any failure. A helper
  /// for tests and the bench self-scrape, not a client library.
  static std::string http_get_local(int port);

private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace polymg::obs
