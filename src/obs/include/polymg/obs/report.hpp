// polymg::obs — exporters.
//
// Two consumers of the trace/metrics substrate:
//  * write_chrome_trace — Chrome trace_event JSON (the format
//    chrome://tracing and Perfetto load), one track per polymg thread,
//    spans as "X" complete events and instants as "i" events with the
//    event taxonomy in args;
//  * RunReport — a human-readable merge of per-group/per-stage time
//    attribution (filled by Executor::run_report) with convergence
//    telemetry (filled from SolveReport by solvers::attach_convergence)
//    and a metrics snapshot.
//
// obs stays a leaf library: the structs here know nothing about plans or
// solvers — the higher layers fill them in.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "polymg/obs/trace.hpp"

namespace polymg::obs {

/// Serialize `events` as Chrome trace_event JSON ("JSON Object Format":
/// a root object whose traceEvents array Perfetto accepts). Timestamps
/// are microseconds relative to the session epoch; `process_name` labels
/// the single pid's track group.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const std::string& process_name = "polymg");

/// write_chrome_trace into a file; throws Error on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const std::string& process_name = "polymg");

/// Merged per-run account: time attribution + convergence + metrics.
struct RunReport {
  std::string title;

  struct TimeRow {
    std::string label;
    double seconds = 0.0;
  };
  std::vector<TimeRow> groups;  ///< per-group attribution, plan order
  std::vector<TimeRow> stages;  ///< per-stage attribution, pipeline order
  std::int64_t runs = 0;        ///< run() invocations covered

  /// Trace-ring events lost to wraparound (TraceSession::dropped() at
  /// report time). Nonzero renders a loud warning: the trace is a
  /// suffix, not the whole run.
  std::uint64_t trace_dropped = 0;

  /// Per-kernel-stage roofline attribution (filled by
  /// Executor::run_report when hardware counters ran; obs only renders).
  /// Hardware fields are -1 when perf counters were unavailable, in
  /// which case only the model columns render.
  struct PerfRow {
    std::string label;         ///< kernel stage (group) label
    double seconds = 0.0;      ///< measured wall time attributed
    double model_bytes = 0.0;  ///< streamed bytes per run, from the plan
    double model_flops = 0.0;  ///< arithmetic ops per run, from the plan
    std::int64_t runs = 0;     ///< runs the hardware counters covered
    std::int64_t cycles = -1;
    std::int64_t instructions = -1;
    std::int64_t llc_misses = -1;
  };
  std::vector<PerfRow> perf;

  // Convergence telemetry (optional; set have_convergence when filled).
  bool have_convergence = false;
  bool converged = false;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  int total_cycles = 0;
  std::vector<std::string> attempt_lines;  ///< one per ladder attempt
  std::vector<double> residual_history;
  /// Oldest residual_history entries evicted by the telemetry ring
  /// (GuardPolicy::history_limit) — nonzero means the history above is a
  /// suffix, not the whole solve.
  std::int64_t residual_history_dropped = 0;

  /// Per-tenant service roll-up lines (filled by service::SolveService's
  /// attach_tenants; obs knows nothing about tenants beyond rendering).
  std::vector<std::string> tenant_lines;

  /// Loud free-form warnings (rendered with a WARNING: prefix) — used by
  /// producers for conditions that must not pass silently, e.g. the
  /// service detaching a worker that refused to exit at shutdown.
  std::vector<std::string> warnings;

  std::string metrics_json;  ///< optional Metrics::snapshot_json()

  /// Human-readable panel: time tables (with % of total), the ladder
  /// walk, the residual history and the raw metrics snapshot.
  std::string render() const;
};

}  // namespace polymg::obs
