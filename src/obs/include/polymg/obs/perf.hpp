// polymg::obs — hardware-counter sampling via perf_event_open.
//
// One counter group per instance — cycles (leader), instructions, LLC
// misses — read atomically with PERF_FORMAT_GROUP so the three numbers
// cover exactly the same interval. Counters are opened on the calling
// thread (pid=0, cpu=-1) and follow it across CPUs, so a sample
// attributes only that thread's work: roofline attribution therefore
// runs the executor single-threaded (DESIGN.md §14 fallback ladder).
//
// Degradation is graceful, never fatal:
//  * non-Linux builds compile the syscall out — available() is false;
//  * a kernel that refuses the syscall (ENOSYS, EACCES under
//    perf_event_paranoid, missing PMU in containers/VMs) leaves
//    available() false and every start()/stop() a no-op;
//  * a PMU that multiplexes or zeroes a member still returns a sample —
//    consumers treat -1 fields as "unavailable", not as zero.
#pragma once

#include <cstdint>

namespace polymg::obs {

class PerfCounters {
public:
  struct Sample {
    std::int64_t cycles = -1;
    std::int64_t instructions = -1;
    std::int64_t llc_misses = -1;
    bool ok() const { return cycles >= 0 && instructions >= 0; }
  };

  /// Opens the counter group for the calling thread. Failure of any
  /// event leaves available() false (no partial groups).
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return fd_cycles_ >= 0; }

  /// Zero and enable the group. No-op when unavailable.
  void start();

  /// Disable the group and read it. Returns an all -1 sample when
  /// unavailable or the read fails.
  Sample stop();

private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_ = -1;
};

}  // namespace polymg::obs
