// polymg::obs — lock-free per-thread trace sink.
//
// Every runtime layer (executor, scheduler, pool, guarded execution, the
// distributed backend) records typed events here: tile/slab executions
// with group/stage/node ids, queue-starvation waits, gate opens, pool
// traffic, halo exchanges, fallbacks and health-scan verdicts. Recording
// is a single bounds-checked store into a preallocated per-thread ring
// buffer — no locks, no atomics beyond one relaxed enabled-flag load, no
// heap traffic — so tracing a steady-state run stays inside the
// executor's zero-allocation envelope, and a disabled trace costs one
// relaxed load per would-be event (asserted bit-exact and zero-alloc by
// tests/obs).
//
// Overhead control is two-layered:
//  * compile time — building with POLYMG_TRACE_DISABLED defines the
//    PMG_TRACE_* macros away entirely (cmake -DPOLYMG_TRACING=OFF);
//  * run time — events are dropped unless a TraceSession is active
//    (started explicitly or via the bench drivers' --trace/POLYMG_TRACE).
//
// Sessions must be started and stopped outside executor runs; per-thread
// rings make recording race-free inside parallel regions, and the ring
// wraps (oldest events overwritten, counted in dropped()) rather than
// growing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace polymg::obs {

/// Typed event taxonomy (DESIGN.md §8). `group`/`stage`/`id` carry the
/// per-kind coordinates listed here; unused fields are -1.
enum class EventKind : std::uint8_t {
  TileExec,      ///< one overlapped tile: group, stage=-1, id=tile
  SlabExec,      ///< one Loops slab: group, stage=func, id=dim-0 lo row
  TimeTileExec,  ///< one collective time-tiled sweep: group, id=node
  GroupExec,     ///< barrier schedule: one whole group, id=group
  QueueWait,     ///< dependence schedule: one idle episode; value=spins
  GateOpen,      ///< prefix gate opened: id=node
  NodeRetire,    ///< completion frontier retired: id=node
  PoolAlloc,     ///< pool allocation: id=1 reuse hit / 0 fresh, value=bytes
  PoolRelease,   ///< pool release: value=bytes
  ScratchBind,   ///< scratchpad bound for a tile: id=tile, value=bytes
  HaloExchange,  ///< one halo-exchange round: group=level, stage=field,
                 ///< value=doubles moved
  HaloRetry,     ///< one halo message re-send: group=level
  FaultInjected, ///< an armed fault site fired: id encodes the site
  Fallback,      ///< guarded executor served a run from the reference plan
  HealthScan,    ///< output non-finite scan: value=1 healthy / 0 not
  Degrade,       ///< guarded_solve moved down the ladder: group=attempt,
                 ///< id=rung kind (see solvers/guarded)
  Residual,      ///< one residual observation: group=cycle, value=residual
  CheckpointWrite,    ///< checkpoint committed: id=next cycle, value=bytes
  CheckpointRestore,  ///< state rolled back to a checkpoint: id=next
                      ///< cycle, value=1 checksum ok / 0 corrupt
  RankDeath,          ///< a rank stopped answering: group=level, id=rank
  Recovery,           ///< shrink-to-survivors completed: id=dead rank,
                      ///< value=doubles redistributed
  SdcDetected,        ///< silent-data-corruption guard fired:
                      ///< group=cycle, value=suspect residual
  RequestAdmit,       ///< service admitted a request: id=ticket,
                      ///< group=tenant index, value=queue depth after
  RequestReject,      ///< admission control shed a request: id=ticket,
                      ///< group=tenant index, stage=1 tenant quota /
                      ///< 0 queue full, value=retry-after ms
  RequestCancel,      ///< a request was cancelled: id=ticket,
                      ///< stage=1 while running / 0 while queued
  DeadlineHit,        ///< a deadline tripped: id=ticket (-1 inside the
                      ///< executor), stage=granule kind, value=overshoot
                      ///< estimate where known
  JitCompile,         ///< one kernel-module compile+dlopen (span):
                      ///< value=kernels in the module
  JitCacheHit,        ///< specialization served from cache: id=1 memory /
                      ///< 0 disk, value=kernels bound
  JitFallback,        ///< specialization unavailable (no toolchain,
                      ///< compile failure, injected jit.compile fault):
                      ///< the plan runs on the register engine
  PrecisionCheck,     ///< mixed-precision oracle comparison: group=cycle,
                      ///< id=1 violation / 0 clean, value=mixed residual
  RequestSpan,        ///< one request's in-worker residency (dequeue ->
                      ///< completion): group=tenant index, id=ticket,
                      ///< value=deadline ms (0 = none), req=ticket
  RequestQueueWait,   ///< one request's queue wait (submit -> dequeue):
                      ///< group=tenant index, id=ticket, req=ticket
  StallDetected,      ///< watchdog saw a frozen worker heartbeat:
                      ///< group=worker, id=ticket, value=frozen ms
  SessionQuarantine,  ///< watchdog dropped a worker's cached executors:
                      ///< group=worker, id=ticket
  WorkerLost,         ///< watchdog declared a worker lost and spawned a
                      ///< replacement: group=worker, id=ticket
  WorkerException,    ///< a worker caught an unexpected exception:
                      ///< group=tenant index, id=ticket
};

/// Stable lower-case name for trace exports ("tile", "queue_wait", ...).
const char* to_string(EventKind k);

/// One fixed-size record. `ts_ns` is nanoseconds since the session epoch
/// (steady clock); spans carry `dur_ns` > 0, instants 0. `req` is the
/// service request (ticket) the event executed on behalf of, propagated
/// through the executor span context — -1 for events outside a request.
/// Adding the field keeps the record at 40 bytes (it fills padding).
struct TraceEvent {
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  double value = 0.0;
  std::int32_t stage = -1;
  std::int32_t id = -1;
  std::int32_t req = -1;
  std::int16_t group = -1;
  std::uint8_t tid = 0;
  EventKind kind = EventKind::TileExec;
};

/// True while a session is active. One relaxed atomic load — the only
/// cost tracing adds to an instrumented path when no session runs.
bool trace_enabled();

/// Nanoseconds since the active session's epoch (0 with no session).
std::int64_t trace_now_ns();

/// Record an instant event on the calling thread's ring. No-op without an
/// active session. `req` tags the event with a request ticket (-1 none).
void trace_instant(EventKind kind, int group, int stage, int id,
                   double value = 0.0, std::int32_t req = -1);

/// Record a span that started at `t0_ns` (a prior trace_now_ns() value)
/// and ends now. Negative `t0_ns` (the disabled-path sentinel) is
/// ignored.
void trace_span(EventKind kind, std::int64_t t0_ns, int group, int stage,
                int id, double value = 0.0, std::int32_t req = -1);

/// Process-global trace session: one ring buffer per OpenMP thread slot,
/// sized once at start(). start/stop/snapshot must be called from serial
/// code (outside executor runs); recording itself is safe from any team
/// thread.
class TraceSession {
public:
  /// Allocate rings (one per current max_threads() slot, capacity rounded
  /// up to a power of two) and enable recording. Restarting an active
  /// session discards its events.
  static void start(std::size_t events_per_thread = std::size_t{1} << 16);

  /// Disable recording. Buffered events stay readable until the next
  /// start().
  static void stop();

  static bool active();

  /// Events overwritten by ring wraparound plus events from thread ids
  /// beyond the ring table, across the session.
  static std::uint64_t dropped();

  /// Buffered events, oldest first within each thread, threads
  /// concatenated in id order. Call after stop().
  static std::vector<TraceEvent> snapshot();

  /// Rings allocated by the active/last session.
  static int threads();
};

}  // namespace polymg::obs

// Call-site macros. PMG_TRACE_NOW declares a span start stamp (-1 when
// tracing is off, so the paired PMG_TRACE_SPAN is dropped); all compile
// to nothing under POLYMG_TRACE_DISABLED. The _R variants additionally
// tag the event with a request ticket (TraceEvent::req); the plain
// variants record req = -1, so call sites outside any request context
// stay untouched.
#if defined(POLYMG_TRACE_DISABLED)
#define PMG_TRACE_ACTIVE() false
#define PMG_TRACE_NOW(var) const std::int64_t var = -1; (void)var
#define PMG_TRACE_SPAN(kind, t0, group, stage, id, value) \
  do {                                                    \
  } while (0)
#define PMG_TRACE_INSTANT(kind, group, stage, id, value) \
  do {                                                   \
  } while (0)
#define PMG_TRACE_SPAN_R(kind, t0, group, stage, id, value, req) \
  do {                                                           \
  } while (0)
#define PMG_TRACE_INSTANT_R(kind, group, stage, id, value, req) \
  do {                                                          \
  } while (0)
#else
#define PMG_TRACE_ACTIVE() (::polymg::obs::trace_enabled())
#define PMG_TRACE_NOW(var)            \
  const std::int64_t var =            \
      PMG_TRACE_ACTIVE() ? ::polymg::obs::trace_now_ns() : -1
#define PMG_TRACE_SPAN(kind, t0, group, stage, id, value)                  \
  do {                                                                     \
    if ((t0) >= 0 && PMG_TRACE_ACTIVE()) {                                 \
      ::polymg::obs::trace_span(::polymg::obs::EventKind::kind, (t0),      \
                                (group), (stage), (id), (value));          \
    }                                                                      \
  } while (0)
#define PMG_TRACE_INSTANT(kind, group, stage, id, value)                 \
  do {                                                                   \
    if (PMG_TRACE_ACTIVE()) {                                            \
      ::polymg::obs::trace_instant(::polymg::obs::EventKind::kind,       \
                                   (group), (stage), (id), (value));     \
    }                                                                    \
  } while (0)
#define PMG_TRACE_SPAN_R(kind, t0, group, stage, id, value, req)           \
  do {                                                                     \
    if ((t0) >= 0 && PMG_TRACE_ACTIVE()) {                                 \
      ::polymg::obs::trace_span(::polymg::obs::EventKind::kind, (t0),      \
                                (group), (stage), (id), (value), (req));   \
    }                                                                      \
  } while (0)
#define PMG_TRACE_INSTANT_R(kind, group, stage, id, value, req)           \
  do {                                                                    \
    if (PMG_TRACE_ACTIVE()) {                                             \
      ::polymg::obs::trace_instant(::polymg::obs::EventKind::kind,        \
                                   (group), (stage), (id), (value),       \
                                   (req));                                \
    }                                                                     \
  } while (0)
#endif
