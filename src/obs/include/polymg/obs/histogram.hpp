// polymg::obs — lock-free log-bucketed latency histogram.
//
// The service hot path needs tail-latency quantiles without keeping (or
// sorting) per-request samples. Histogram buckets values on a log-linear
// grid: 16 linear sub-buckets per power of two, so consecutive bucket
// bounds grow by 2^(1/16) ~= 1.044 on geometric average (worst-case
// ratio 17/16) and any quantile read back from the buckets is within one
// bucket width — <= 6.25% relative — of the exact order statistic.
//
// record() is branch-light integer arithmetic plus two relaxed atomic
// adds (bucket counter and sum): no locks, no floating-point log, no
// allocation — safe inside the executor's zero-allocation envelope and
// from any number of concurrent recorders. Reads (quantile(), bucket
// iteration, exposition) take a relaxed snapshot of the counters;
// concurrent recording skews a read by at most the in-flight events.
//
// Units are the caller's choice; the service and executor record
// nanoseconds. Negative values clamp to 0.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace polymg::obs {

class Histogram {
public:
  /// Log-linear grid: values < 16 get exact unit buckets (octave 0);
  /// each further power of two splits into 16 linear sub-buckets.
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16
  /// Octave count covering the full non-negative int64 range.
  static constexpr int kOctaves = 64 - kSubBits;  // 60
  static constexpr int kBuckets = kOctaves * kSubBuckets;  // 960

  /// Bucket index for a value (clamped to >= 0). Monotone in v.
  static int bucket_index(std::int64_t v);
  /// Inclusive lower bound of a bucket.
  static std::int64_t bucket_lower(int ix);
  /// Inclusive upper bound of a bucket (lower bound of ix+1, minus 1).
  static std::int64_t bucket_upper(int ix);

  /// One relaxed add to the value's bucket, one to the running sum.
  void record(std::int64_t v) {
    if (v < 0) v = 0;
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::int64_t count() const;
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Observed value at quantile q in [0, 1], reported as the upper bound
  /// of the bucket holding that order statistic (0 when empty). The true
  /// order statistic lies in the same bucket, so the error is bounded by
  /// that bucket's width.
  std::int64_t quantile(double q) const;

  /// Width of the bucket the quantile-q order statistic falls in — the
  /// error bound that quantile(q) carries.
  std::int64_t quantile_bucket_width(double q) const;

  std::int64_t bucket_count(int ix) const {
    return buckets_[static_cast<std::size_t>(ix)].load(
        std::memory_order_relaxed);
  }

  void reset();

private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> sum_{0};
};

}  // namespace polymg::obs
