// polymg::obs — process-wide metrics registry.
//
// Named monotonic counters and gauges, always on (like the allocation
// hook and fault injector): an increment is one relaxed atomic add, cheap
// enough to leave compiled in everywhere. Hot paths resolve their
// Counter/Gauge handles once (constructor or first use) and then touch
// only the atomic — registry lookups never sit on a per-tile path.
// Handles are stable for the process lifetime; reset() zeroes values but
// keeps every registration, so telemetry deltas around a run are
// well-defined.
//
// snapshot_json() serializes the whole registry for run reports, bench
// JSON sidecars and the CI artifacts; prometheus_text() renders the same
// registry in the Prometheus text exposition format for the scrape
// endpoint (obs/exposition.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "polymg/obs/histogram.hpp"

namespace polymg::obs {

/// Monotonic counter (until reset()).
class Counter {
public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> v_{0};
};

/// Level gauge with a high-water mark. add() moves the level by a delta
/// (e.g. pool bytes live); the peak tracks the maximum level seen.
class Gauge {
public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  void add(std::int64_t delta) {
    raise_peak(v_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

private:
  void raise_peak(std::int64_t v) {
    std::int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p &&
           !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// The registry. counter()/gauge() register on first use and return a
/// stable reference (one mutex-guarded map lookup — resolve once, not
/// per increment).
class Metrics {
public:
  static Metrics& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {name: value, ...},
  ///  "gauges": {name: {"value": v, "peak": p}, ...},
  ///  "histograms": {name: {"count": n, "sum": s, "p50": ..,
  ///                        "p90": .., "p99": .., "p999": ..}, ...}}
  /// with names sorted and JSON-escaped (tenant-derived names may carry
  /// arbitrary bytes).
  std::string snapshot_json() const;

  /// Prometheus text exposition format: counters, gauges (value and a
  /// `<name>_peak` companion) and histograms (cumulative `_bucket{le=..}`
  /// series over the non-empty buckets plus `_sum`/`_count`). Names are
  /// sanitized to [a-zA-Z0-9_:] and emitted in stable sorted order.
  std::string prometheus_text() const;

  /// Zero every counter, gauge and histogram; registrations (and
  /// handles) survive.
  void reset();

private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace polymg::obs
