#include "polymg/obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::obs {

namespace {

/// Chrome trace timestamps are microseconds (doubles are accepted).
double us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

void emit_event(std::ostream& os, const TraceEvent& e) {
  os << "    {\"name\": \"" << to_string(e.kind) << "\", \"cat\": \""
     << to_string(e.kind) << "\", \"ph\": \""
     << (e.dur_ns > 0 ? "X" : "i") << "\", \"ts\": " << us(e.ts_ns);
  if (e.dur_ns > 0) {
    os << ", \"dur\": " << us(e.dur_ns);
  } else {
    os << ", \"s\": \"t\"";  // instant scope: thread
  }
  os << ", \"pid\": 1, \"tid\": " << static_cast<int>(e.tid)
     << ", \"args\": {\"group\": " << e.group << ", \"stage\": " << e.stage
     << ", \"id\": " << e.id << ", \"req\": " << e.req
     << ", \"value\": " << e.value << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const std::string& process_name) {
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"" << process_name << "\"}}";
  int last_tid = -1;
  for (const TraceEvent& e : events) {
    // Events arrive grouped by thread: name each track once.
    if (static_cast<int>(e.tid) != last_tid) {
      last_tid = static_cast<int>(e.tid);
      os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
         << "\"tid\": " << last_tid << ", \"args\": {\"name\": \"worker "
         << last_tid << "\"}}";
    }
    os << ",\n";
    emit_event(os, e);
  }
  os << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const std::string& process_name) {
  std::ofstream os(path);
  PMG_CHECK(os.good(), "cannot open " << path << " for writing");
  write_chrome_trace(os, events, process_name);
  PMG_CHECK(os.good(), "write to " << path << " failed");
}

std::string RunReport::render() const {
  std::ostringstream os;
  os << "== run report";
  if (!title.empty()) os << ": " << title;
  os << " ==\n";

  double total = 0.0;
  for (const TimeRow& r : groups) total += r.seconds;
  char line[256];
  if (!groups.empty()) {
    os << "time by group (" << runs << " run(s), "
       << static_cast<int>(total * 1e3) << " ms total):\n";
    for (const TimeRow& r : groups) {
      std::snprintf(line, sizeof(line), "  %-40s %10.3f ms %6.1f%%\n",
                    r.label.c_str(), r.seconds * 1e3,
                    total > 0 ? 100.0 * r.seconds / total : 0.0);
      os << line;
    }
  }
  if (!stages.empty()) {
    os << "time by stage:\n";
    for (const TimeRow& r : stages) {
      std::snprintf(line, sizeof(line), "  %-40s %10.3f ms %6.1f%%\n",
                    r.label.c_str(), r.seconds * 1e3,
                    total > 0 ? 100.0 * r.seconds / total : 0.0);
      os << line;
    }
  }

  if (have_convergence) {
    os << "convergence: " << (converged ? "converged" : "NOT converged")
       << ", residual " << initial_residual << " -> " << final_residual
       << " in " << total_cycles << " cycle(s)\n";
    for (const std::string& a : attempt_lines) os << "  " << a << "\n";
    if (!residual_history.empty()) {
      os << "residual history";
      if (residual_history_dropped > 0) {
        os << " (last " << residual_history.size() << ", "
           << residual_history_dropped << " older dropped)";
      }
      os << ":";
      for (double r : residual_history) os << " " << r;
      os << "\n";
    }
  }
  if (!perf.empty()) {
    os << "roofline by stage (model bytes/flops from the plan, hardware "
          "from perf counters):\n";
    for (const PerfRow& r : perf) {
      const double runs_d = r.runs > 0 ? static_cast<double>(r.runs) : 1.0;
      const double model_gbs =
          r.seconds > 0 ? r.model_bytes * runs_d / r.seconds / 1e9 : 0.0;
      const double ai =
          r.model_bytes > 0 ? r.model_flops / r.model_bytes : 0.0;
      std::snprintf(line, sizeof(line),
                    "  %-32s %9.3f ms %7.2f GB/s(model) AI %5.3f",
                    r.label.c_str(), r.seconds * 1e3, model_gbs, ai);
      os << line;
      if (r.cycles >= 0 && r.instructions >= 0 && r.llc_misses >= 0) {
        const double hw_gbs =
            r.seconds > 0
                ? static_cast<double>(r.llc_misses) * 64.0 / r.seconds / 1e9
                : 0.0;
        const double ipc = r.cycles > 0 ? static_cast<double>(r.instructions) /
                                              static_cast<double>(r.cycles)
                                        : 0.0;
        std::snprintf(line, sizeof(line),
                      " %7.2f GB/s(llc) IPC %5.2f", hw_gbs, ipc);
        os << line;
      } else {
        os << "  [hw counters unavailable]";
      }
      os << "\n";
    }
  }
  if (!tenant_lines.empty()) {
    os << "tenants:\n";
    for (const std::string& t : tenant_lines) os << "  " << t << "\n";
  }
  for (const std::string& w : warnings) os << "WARNING: " << w << "\n";
  if (trace_dropped > 0) {
    os << "WARNING: trace ring dropped " << trace_dropped
       << " event(s) — the trace is a suffix of the run; raise "
          "TraceSession::start capacity or trace a shorter window\n";
  }
  if (!metrics_json.empty()) os << "metrics: " << metrics_json << "\n";
  return os.str();
}

}  // namespace polymg::obs
