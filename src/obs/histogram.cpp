#include "polymg/obs/histogram.hpp"

#include <bit>
#include <cmath>

namespace polymg::obs {

int Histogram::bucket_index(std::int64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v < 0 ? 0 : v);
  // Octave from the most significant bit, sub-bucket from the next
  // kSubBits mantissa bits — the integer analogue of (exponent,
  // truncated mantissa), so indices are monotone and contiguous across
  // octave boundaries.
  const int msb =
      std::bit_width(static_cast<std::uint64_t>(v)) - 1;  // >= kSubBits
  const int octave = msb - kSubBits + 1;
  const int sub = static_cast<int>(
      (static_cast<std::uint64_t>(v) >> (msb - kSubBits)) &
      (kSubBuckets - 1));
  return (octave << kSubBits) + sub;
}

std::int64_t Histogram::bucket_lower(int ix) {
  if (ix < kSubBuckets) return ix;
  const int octave = ix >> kSubBits;
  const int sub = ix & (kSubBuckets - 1);
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1));
}

std::int64_t Histogram::bucket_upper(int ix) {
  if (ix + 1 >= kBuckets) return bucket_lower(ix);
  return bucket_lower(ix + 1) - 1;
}

std::int64_t Histogram::count() const {
  std::int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

namespace {

/// Bucket holding the quantile-q order statistic under a relaxed
/// snapshot; -1 when the histogram is empty.
int quantile_bucket(const Histogram& h, double q) {
  std::int64_t counts[Histogram::kBuckets];
  std::int64_t total = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    counts[i] = h.bucket_count(i);
    total += counts[i];
  }
  if (total <= 0) return -1;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic (1-based, nearest-rank definition:
  // ceil(q * n), so p99 of 3 samples is the 3rd, not the 2nd).
  auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::int64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return i;
  }
  return Histogram::kBuckets - 1;
}

}  // namespace

std::int64_t Histogram::quantile(double q) const {
  const int ix = quantile_bucket(*this, q);
  return ix < 0 ? 0 : bucket_upper(ix);
}

std::int64_t Histogram::quantile_bucket_width(double q) const {
  const int ix = quantile_bucket(*this, q);
  return ix < 0 ? 0 : bucket_upper(ix) - bucket_lower(ix) + 1;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace polymg::obs
