#include "polymg/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "polymg/common/parallel.hpp"
#include "polymg/obs/metrics.hpp"

namespace polymg::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// One single-writer ring. Only the owning thread touches head/drops
/// while a session runs; padding keeps neighbouring rings off one cache
/// line.
struct alignas(64) Ring {
  std::vector<TraceEvent> buf;
  std::uint64_t head = 0;   ///< events ever pushed
  std::uint64_t drops = 0;  ///< events overwritten by wraparound
};

struct Session {
  std::vector<Ring> rings;
  std::size_t mask = 0;  ///< capacity - 1 (capacity is a power of two)
  Clock::time_point epoch{};
  std::atomic<std::uint64_t> tid_drops{0};  ///< thread id beyond the table
  /// Whether this session's drops were already folded into the
  /// obs.dropped_events counter (stop() is idempotent).
  bool drops_accounted = true;
};

Session& session() {
  static Session s;
  return s;
}

std::atomic<bool> g_enabled{false};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::TileExec: return "tile";
    case EventKind::SlabExec: return "slab";
    case EventKind::TimeTileExec: return "time_tile";
    case EventKind::GroupExec: return "group";
    case EventKind::QueueWait: return "queue_wait";
    case EventKind::GateOpen: return "gate_open";
    case EventKind::NodeRetire: return "node_retire";
    case EventKind::PoolAlloc: return "pool_alloc";
    case EventKind::PoolRelease: return "pool_release";
    case EventKind::ScratchBind: return "scratch_bind";
    case EventKind::HaloExchange: return "halo_exchange";
    case EventKind::HaloRetry: return "halo_retry";
    case EventKind::FaultInjected: return "fault_injected";
    case EventKind::Fallback: return "fallback";
    case EventKind::HealthScan: return "health_scan";
    case EventKind::Degrade: return "degrade";
    case EventKind::Residual: return "residual";
    case EventKind::CheckpointWrite: return "checkpoint_write";
    case EventKind::CheckpointRestore: return "checkpoint_restore";
    case EventKind::RankDeath: return "rank_death";
    case EventKind::Recovery: return "recovery";
    case EventKind::SdcDetected: return "sdc_detected";
    case EventKind::RequestAdmit: return "request_admit";
    case EventKind::RequestReject: return "request_reject";
    case EventKind::RequestCancel: return "request_cancel";
    case EventKind::DeadlineHit: return "deadline_hit";
    case EventKind::JitCompile: return "jit_compile";
    case EventKind::JitCacheHit: return "jit_cache_hit";
    case EventKind::JitFallback: return "jit_fallback";
    case EventKind::PrecisionCheck: return "precision_check";
    case EventKind::RequestSpan: return "request";
    case EventKind::RequestQueueWait: return "request_queue_wait";
    case EventKind::StallDetected: return "stall_detected";
    case EventKind::SessionQuarantine: return "session_quarantine";
    case EventKind::WorkerLost: return "worker_lost";
    case EventKind::WorkerException: return "worker_exception";
  }
  return "?";
}

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::int64_t trace_now_ns() {
  if (!trace_enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - session().epoch)
      .count();
}

namespace {

void record(EventKind kind, std::int64_t ts_ns, std::int64_t dur_ns,
            int group, int stage, int id, double value, std::int32_t req) {
  Session& s = session();
  const int tid = thread_id();
  if (static_cast<std::size_t>(tid) >= s.rings.size()) {
    s.tid_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& r = s.rings[static_cast<std::size_t>(tid)];
  // Rings are single-writer, so the owning thread can allocate its own
  // buffer on first use — the ring table covers thread counts raised
  // after start() (set_num_threads mid-benchmark) without paying the
  // full table's memory up front.
  if (r.buf.empty()) r.buf.assign(s.mask + 1, TraceEvent{});
  TraceEvent& e = r.buf[static_cast<std::size_t>(r.head) & s.mask];
  if (r.head > s.mask) ++r.drops;  // this slot held an older event
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.value = value;
  e.stage = stage;
  e.id = id;
  e.req = req;
  e.group = static_cast<std::int16_t>(group);
  e.tid = static_cast<std::uint8_t>(tid);
  e.kind = kind;
  ++r.head;
}

}  // namespace

void trace_instant(EventKind kind, int group, int stage, int id,
                   double value, std::int32_t req) {
  if (!trace_enabled()) return;
  record(kind, trace_now_ns(), 0, group, stage, id, value, req);
}

void trace_span(EventKind kind, std::int64_t t0_ns, int group, int stage,
                int id, double value, std::int32_t req) {
  if (!trace_enabled() || t0_ns < 0) return;
  const std::int64_t now = trace_now_ns();
  record(kind, t0_ns, now > t0_ns ? now - t0_ns : 0, group, stage, id,
         value, req);
}

void TraceSession::start(std::size_t events_per_thread) {
  Session& s = session();
  g_enabled.store(false, std::memory_order_relaxed);
  const std::size_t cap = round_up_pow2(
      events_per_thread < 2 ? std::size_t{2} : events_per_thread);
  s.mask = cap - 1;
  // The table covers threads created after start() (the drivers bump
  // set_num_threads between series); only the current team's buffers are
  // paid for eagerly, the rest allocate on first use.
  constexpr std::size_t kMaxTracedThreads = 64;
  s.rings.assign(std::max<std::size_t>(
                     static_cast<std::size_t>(max_threads()),
                     kMaxTracedThreads),
                 Ring{});
  for (int t = 0; t < max_threads(); ++t) {
    s.rings[static_cast<std::size_t>(t)].buf.assign(cap, TraceEvent{});
  }
  s.tid_drops.store(0, std::memory_order_relaxed);
  s.drops_accounted = false;
  s.epoch = Clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void TraceSession::stop() {
  g_enabled.store(false, std::memory_order_relaxed);
  // Fold this session's ring-wraparound losses into the always-on
  // metrics registry, once per session: silent trace truncation must be
  // visible in snapshots even when nobody checks dropped() by hand.
  Session& s = session();
  if (!s.drops_accounted) {
    s.drops_accounted = true;
    const std::uint64_t n = dropped();
    if (n > 0) {
      Metrics::instance().counter("obs.dropped_events").add(
          static_cast<std::int64_t>(n));
    }
  }
}

bool TraceSession::active() { return trace_enabled(); }

std::uint64_t TraceSession::dropped() {
  Session& s = session();
  std::uint64_t n = s.tid_drops.load(std::memory_order_relaxed);
  for (const Ring& r : s.rings) n += r.drops;
  return n;
}

std::vector<TraceEvent> TraceSession::snapshot() {
  Session& s = session();
  std::vector<TraceEvent> out;
  const std::size_t cap = s.mask + 1;
  for (const Ring& r : s.rings) {
    if (r.buf.empty()) continue;
    const std::uint64_t n = r.head < cap ? r.head : cap;
    // Oldest event first: a wrapped ring starts at head (mod cap).
    const std::uint64_t first = r.head < cap ? 0 : r.head;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(r.buf[static_cast<std::size_t>(first + i) & s.mask]);
    }
  }
  return out;
}

int TraceSession::threads() {
  return static_cast<int>(session().rings.size());
}

}  // namespace polymg::obs
