#include "polymg/obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace polymg::obs {

struct Metrics::Impl {
  mutable std::mutex mu;
  // Node-based maps: references handed out stay valid forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
};

Metrics::Impl& Metrics::impl() const {
  static Impl i;
  return i;
}

Metrics& Metrics::instance() {
  static Metrics m;
  return m;
}

Counter& Metrics::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

std::string Metrics::snapshot_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : i.counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << c->value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : i.gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": {\"value\": " << g->value()
       << ", \"peak\": " << g->peak() << "}";
  }
  os << "}}";
  return os.str();
}

void Metrics::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
}

}  // namespace polymg::obs
