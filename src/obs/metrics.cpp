#include "polymg/obs/metrics.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace polymg::obs {

namespace {

/// JSON string escaping for metric names: quotes, backslashes and
/// control characters. Names can be tenant-derived, so snapshots must
/// stay loadable for arbitrary bytes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] (no leading digit);
/// everything else becomes '_'.
std::string prom_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

}  // namespace

struct Metrics::Impl {
  mutable std::mutex mu;
  // Node-based maps: references handed out stay valid forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Metrics::Impl& Metrics::impl() const {
  static Impl i;
  return i;
}

Metrics& Metrics::instance() {
  static Metrics m;
  return m;
}

Counter& Metrics::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Metrics::snapshot_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : i.counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(name) << "\": " << c->value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : i.gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(name) << "\": {\"value\": " << g->value()
       << ", \"peak\": " << g->peak() << "}";
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : i.histograms) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(name) << "\": {\"count\": " << h->count()
       << ", \"sum\": " << h->sum() << ", \"p50\": " << h->quantile(0.50)
       << ", \"p90\": " << h->quantile(0.90)
       << ", \"p99\": " << h->quantile(0.99)
       << ", \"p999\": " << h->quantile(0.999) << "}";
  }
  os << "}}";
  return os.str();
}

std::string Metrics::prometheus_text() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::ostringstream os;
  for (const auto& [name, c] : i.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n";
    os << n << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : i.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << g->value() << "\n";
    os << "# TYPE " << n << "_peak gauge\n";
    os << n << "_peak " << g->peak() << "\n";
  }
  for (const auto& [name, h] : i.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    // Cumulative over the non-empty buckets only: `le` bounds stay
    // strictly increasing, so omitting empty buckets keeps the series
    // valid while bounding the output size.
    std::int64_t cum = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t k = h->bucket_count(b);
      if (k == 0) continue;
      cum += k;
      os << n << "_bucket{le=\"" << Histogram::bucket_upper(b) << "\"} "
         << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << n << "_sum " << h->sum() << "\n";
    os << n << "_count " << cum << "\n";
  }
  return os.str();
}

void Metrics::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

}  // namespace polymg::obs
