#include "polymg/obs/perf.hpp"

#if defined(__linux__)

#include <linux/perf_event.h>
#include <string.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace polymg::obs {

namespace {

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  // pid=0, cpu=-1: this thread, whichever CPU it runs on.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

}  // namespace

PerfCounters::PerfCounters() {
  fd_cycles_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) return;
  fd_instructions_ =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_llc_ =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
  if (fd_instructions_ < 0 || fd_llc_ < 0) {
    // All or nothing: a partial group would mislabel its read layout.
    if (fd_instructions_ >= 0) close(fd_instructions_);
    if (fd_llc_ >= 0) close(fd_llc_);
    close(fd_cycles_);
    fd_cycles_ = fd_instructions_ = fd_llc_ = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (fd_llc_ >= 0) close(fd_llc_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
}

void PerfCounters::start() {
  if (!available()) return;
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounters::Sample PerfCounters::stop() {
  Sample s;
  if (!available()) return s;
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in the order
  // the group was built (cycles, instructions, llc misses).
  std::uint64_t buf[4] = {0, 0, 0, 0};
  const ssize_t n = read(fd_cycles_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(buf)) || buf[0] != 3) return s;
  s.cycles = static_cast<std::int64_t>(buf[1]);
  s.instructions = static_cast<std::int64_t>(buf[2]);
  s.llc_misses = static_cast<std::int64_t>(buf[3]);
  return s;
}

}  // namespace polymg::obs

#else  // !__linux__

namespace polymg::obs {

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfCounters::Sample PerfCounters::stop() { return Sample{}; }

}  // namespace polymg::obs

#endif
