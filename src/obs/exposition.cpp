#include "polymg/obs/exposition.hpp"

#include "polymg/obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <thread>

namespace polymg::obs {

struct ScrapeEndpoint::Impl {
  int tcp_fd = -1;
  int unix_fd = -1;
  int bound_port = -1;
  std::string unix_path;
  std::atomic<bool> stop{false};
  std::thread thread;
};

namespace {

int open_tcp_listener(int port, int* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 8) != 0) {
    close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = static_cast<int>(ntohs(addr.sin_port));
  }
  return fd;
}

int open_unix_listener(const std::string& path) {
  sockaddr_un addr;
  if (path.size() + 1 > sizeof(addr.sun_path)) return -1;
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  unlink(path.c_str());  // a dead process may have left the node behind
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 8) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

void serve_one(int conn) {
  // Drain whatever request line arrived; the answer is the same for any
  // path, so parsing would only add failure modes.
  char buf[1024];
  (void)!read(conn, buf, sizeof(buf));
  const std::string body = Metrics::instance().prometheus_text();
  std::ostringstream os;
  os << "HTTP/1.0 200 OK\r\n"
     << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
     << "Content-Length: " << body.size() << "\r\n\r\n"
     << body;
  const std::string resp = os.str();
  std::size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = write(conn, resp.data() + off, resp.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(conn);
}

void accept_loop(const std::atomic<bool>& stop, int tcp_fd, int unix_fd) {
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    int nfds = 0;
    if (tcp_fd >= 0) fds[nfds++] = {tcp_fd, POLLIN, 0};
    if (unix_fd >= 0) fds[nfds++] = {unix_fd, POLLIN, 0};
    if (nfds == 0) return;
    const int r = poll(fds, static_cast<nfds_t>(nfds), 100);
    if (r <= 0) continue;
    for (int i = 0; i < nfds; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      const int conn = accept(fds[i].fd, nullptr, nullptr);
      if (conn >= 0) serve_one(conn);
    }
  }
}

}  // namespace

ScrapeEndpoint::ScrapeEndpoint(const Options& opts) {
  if (opts.tcp_port < 0 && opts.unix_path.empty()) return;
  auto im = new Impl;
  if (opts.tcp_port >= 0) {
    im->tcp_fd = open_tcp_listener(opts.tcp_port, &im->bound_port);
  }
  if (!opts.unix_path.empty()) {
    im->unix_fd = open_unix_listener(opts.unix_path);
    if (im->unix_fd >= 0) im->unix_path = opts.unix_path;
  }
  if (im->tcp_fd < 0 && im->unix_fd < 0) {
    delete im;  // nothing bound: telemetry degrades, the solve goes on
    return;
  }
  im->thread = std::thread(
      [im] { accept_loop(im->stop, im->tcp_fd, im->unix_fd); });
  impl_ = im;
}

ScrapeEndpoint::~ScrapeEndpoint() {
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->thread.join();
  if (impl_->tcp_fd >= 0) close(impl_->tcp_fd);
  if (impl_->unix_fd >= 0) close(impl_->unix_fd);
  if (!impl_->unix_path.empty()) unlink(impl_->unix_path.c_str());
  delete impl_;
}

bool ScrapeEndpoint::running() const { return impl_ != nullptr; }

int ScrapeEndpoint::port() const {
  return impl_ != nullptr && impl_->tcp_fd >= 0 ? impl_->bound_port : -1;
}

const std::string& ScrapeEndpoint::unix_path() const {
  static const std::string kEmpty;
  return impl_ != nullptr ? impl_->unix_path : kEmpty;
}

std::string ScrapeEndpoint::http_get_local(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!write(fd, req, sizeof(req) - 1);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return "";
  return resp.substr(hdr_end + 4);
}

}  // namespace polymg::obs

#else  // no POSIX sockets

namespace polymg::obs {

struct ScrapeEndpoint::Impl {};
ScrapeEndpoint::ScrapeEndpoint(const Options&) {}
ScrapeEndpoint::~ScrapeEndpoint() = default;
bool ScrapeEndpoint::running() const { return false; }
int ScrapeEndpoint::port() const { return -1; }
const std::string& ScrapeEndpoint::unix_path() const {
  static const std::string kEmpty;
  return kEmpty;
}
std::string ScrapeEndpoint::http_get_local(int) { return ""; }

}  // namespace polymg::obs

#endif
