#include "polymg/ir/expr.hpp"

#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::ir {

Expr make_const(double v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Const;
  n->value = v;
  return n;
}

Expr make_load(int slot, const std::array<LoadIndex, kMaxDims>& idx) {
  PMG_CHECK(slot >= 0, "load slot must be non-negative");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Load;
  n->slot = slot;
  n->idx = idx;
  return n;
}

Expr make_binary(ExprKind k, Expr a, Expr b) {
  PMG_CHECK(a && b, "binary expr with null operand");
  auto n = std::make_shared<ExprNode>();
  n->kind = k;
  n->lhs = std::move(a);
  n->rhs = std::move(b);
  return n;
}

Expr make_neg(Expr a) {
  PMG_CHECK(a, "neg of null expr");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Neg;
  n->lhs = std::move(a);
  return n;
}

void visit(const Expr& e, const std::function<void(const ExprNode&)>& fn) {
  if (!e) return;
  fn(*e);
  visit(e->lhs, fn);
  visit(e->rhs, fn);
}

std::vector<std::pair<int, poly::Access>> collect_accesses(const Expr& e,
                                                           int ndim) {
  std::vector<std::pair<int, poly::Access>> out;
  visit(e, [&](const ExprNode& n) {
    if (n.kind != ExprKind::Load) return;
    poly::Access a;
    a.ndim = ndim;
    for (int d = 0; d < ndim; ++d) {
      a.d[d] = poly::DimAccess{n.idx[d].num, n.idx[d].den, n.idx[d].off,
                               n.idx[d].off};
    }
    for (auto& [slot, acc] : out) {
      if (slot == n.slot) {
        acc = poly::merge(acc, a);
        return;
      }
    }
    out.emplace_back(n.slot, a);
  });
  return out;
}

namespace {

const char* var_name(int d, int ndim) {
  // Match the paper's listing order: 2-d uses (y, x), 3-d uses (z, y, x).
  static const char* n2[] = {"y", "x"};
  static const char* n3[] = {"z", "y", "x"};
  return ndim == 2 ? n2[d] : n3[d];
}

void print(std::ostringstream& os, const Expr& e,
           const std::vector<std::string>& slots, int ndim) {
  switch (e->kind) {
    case ExprKind::Const:
      os << e->value;
      return;
    case ExprKind::Load: {
      os << (e->slot < static_cast<int>(slots.size()) ? slots[e->slot]
                                                      : "src");
      os << "(";
      for (int d = 0; d < ndim; ++d) {
        if (d) os << ", ";
        const LoadIndex& ix = e->idx[d];
        if (ix.num == 2 && ix.den == 1) {
          os << "2*" << var_name(d, ndim);
        } else if (ix.num == 1 && ix.den == 2) {
          os << var_name(d, ndim) << "/2";
        } else if (ix.num == ix.den) {
          os << var_name(d, ndim);
        } else {
          os << ix.num << "*" << var_name(d, ndim) << "/" << ix.den;
        }
        if (ix.off > 0) os << "+" << ix.off;
        if (ix.off < 0) os << ix.off;
      }
      os << ")";
      return;
    }
    case ExprKind::Neg:
      os << "(-";
      print(os, e->lhs, slots, ndim);
      os << ")";
      return;
    default: {
      const char* op = e->kind == ExprKind::Add   ? " + "
                       : e->kind == ExprKind::Sub ? " - "
                       : e->kind == ExprKind::Mul ? " * "
                                                  : " / ";
      os << "(";
      print(os, e->lhs, slots, ndim);
      os << op;
      print(os, e->rhs, slots, ndim);
      os << ")";
      return;
    }
  }
}

}  // namespace

std::string to_string(const Expr& e, const std::vector<std::string>& slots,
                      int ndim) {
  std::ostringstream os;
  print(os, e, slots, ndim);
  return os.str();
}

}  // namespace polymg::ir
