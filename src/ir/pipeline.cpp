#include "polymg/ir/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::ir {

bool Pipeline::is_output(int func) const {
  return std::find(outputs.begin(), outputs.end(), func) != outputs.end();
}

std::vector<std::vector<std::pair<int, int>>> Pipeline::consumers() const {
  std::vector<std::vector<std::pair<int, int>>> out(funcs.size());
  for (int i = 0; i < num_stages(); ++i) {
    const FunctionDecl& f = funcs[i];
    for (int s = 0; s < static_cast<int>(f.sources.size()); ++s) {
      if (!f.sources[s].external) {
        out[f.sources[s].index].emplace_back(i, s);
      }
    }
  }
  return out;
}

void Pipeline::validate() const {
  PMG_CHECK(ndim >= 1 && ndim <= poly::kMaxDims, "bad pipeline ndim");
  PMG_CHECK(!funcs.empty(), "pipeline has no functions");
  PMG_CHECK(!outputs.empty(), "pipeline has no outputs");
  for (const ExternalGrid& g : externals) {
    PMG_CHECK(g.domain.ndim() == ndim,
              "external " << g.name << " ndim mismatch");
  }
  for (int i = 0; i < num_stages(); ++i) {
    const FunctionDecl& f = funcs[i];
    PMG_CHECK(f.ndim == ndim, "function " << f.name << " ndim mismatch");
    for (const SourceSlot& s : f.sources) {
      if (s.external) {
        PMG_CHECK(s.index >= 0 && s.index < static_cast<int>(externals.size()),
                  "function " << f.name << ": bad external index");
      } else {
        PMG_CHECK(s.index >= 0 && s.index < i,
                  "function " << f.name
                              << ": source must precede consumer (got func "
                              << s.index << " for consumer " << i << ")");
      }
    }
  }
  for (int o : outputs) {
    PMG_CHECK(o >= 0 && o < num_stages(), "output index out of range");
  }

  // Instance-wise bounds: everything a function reads must lie inside the
  // producer's allocated domain (stencil footprints over the interior,
  // and the full domain for boundary copies). Rejecting out-of-bounds
  // programs here is what lets the executors run without per-point
  // bounds checks.
  for (const FunctionDecl& f : funcs) {
    for (const auto& [slot, acc] : f.accesses) {
      const SourceSlot& s = f.sources[static_cast<std::size_t>(slot)];
      const Box& src_dom =
          s.external ? externals[static_cast<std::size_t>(s.index)].domain
                     : funcs[static_cast<std::size_t>(s.index)].domain;
      const Box fp = poly::footprint(acc, f.interior);
      PMG_CHECK(src_dom.contains(fp),
                "function " << f.name << " reads "
                            << fp << " of slot " << slot
                            << " but the producer's domain is " << src_dom
                            << " (shrink the interior or widen the ghost "
                               "ring)");
      if (f.boundary == BoundaryKind::CopySource &&
          slot == f.boundary_source) {
        PMG_CHECK(src_dom.contains(f.domain),
                  "function " << f.name
                              << ": boundary copy source domain too small");
      }
    }
  }
}

std::string Pipeline::dump() const {
  std::ostringstream os;
  os << "pipeline: " << ndim << "-d, " << externals.size() << " externals, "
     << funcs.size() << " functions\n";
  for (const ExternalGrid& g : externals) {
    os << "  input " << g.name << " " << g.domain << "\n";
  }
  for (int i = 0; i < num_stages(); ++i) {
    const FunctionDecl& f = funcs[i];
    os << "  [" << i << "] " << f.name << " " << f.domain;
    if (f.level >= 0) os << " L" << f.level;
    os << " <- ";
    for (std::size_t s = 0; s < f.sources.size(); ++s) {
      if (s) os << ", ";
      os << (f.sources[s].external ? externals[f.sources[s].index].name
                                   : funcs[f.sources[s].index].name);
    }
    if (is_output(i)) os << "  (output)";
    os << "\n";
  }
  return os.str();
}

}  // namespace polymg::ir
