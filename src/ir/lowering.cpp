#include "polymg/ir/lowering.hpp"

#include <algorithm>

#include "polymg/common/error.hpp"

namespace polymg::ir {

namespace {

/// Intermediate affine value: constant + Σ coeff·load. Loads are keyed by
/// (slot, full sampled index tuple).
struct LinTerm {
  int slot;
  std::array<LoadIndex, kMaxDims> idx;
  double coeff;
};

struct Lin {
  double c = 0.0;
  std::vector<LinTerm> terms;

  bool pure_const() const { return terms.empty(); }
};

void add_term(Lin& l, const LinTerm& t) {
  for (LinTerm& e : l.terms) {
    if (e.slot == t.slot && e.idx == t.idx) {
      e.coeff += t.coeff;
      return;
    }
  }
  l.terms.push_back(t);
}

std::optional<Lin> linearize(const Expr& e, int ndim) {
  switch (e->kind) {
    case ExprKind::Const:
      return Lin{e->value, {}};
    case ExprKind::Load: {
      Lin l;
      LinTerm t{e->slot, {}, 1.0};
      for (int d = 0; d < ndim; ++d) t.idx[d] = e->idx[d];
      l.terms.push_back(t);
      return l;
    }
    case ExprKind::Neg: {
      auto a = linearize(e->lhs, ndim);
      if (!a) return std::nullopt;
      a->c = -a->c;
      for (LinTerm& t : a->terms) t.coeff = -t.coeff;
      return a;
    }
    case ExprKind::Add:
    case ExprKind::Sub: {
      auto a = linearize(e->lhs, ndim);
      auto b = linearize(e->rhs, ndim);
      if (!a || !b) return std::nullopt;
      const double sign = e->kind == ExprKind::Add ? 1.0 : -1.0;
      a->c += sign * b->c;
      for (LinTerm& t : b->terms) {
        t.coeff *= sign;
        add_term(*a, t);
      }
      return a;
    }
    case ExprKind::Mul: {
      auto a = linearize(e->lhs, ndim);
      auto b = linearize(e->rhs, ndim);
      if (!a || !b) return std::nullopt;
      // Affine · affine is affine only if one side is constant.
      if (!a->pure_const() && !b->pure_const()) return std::nullopt;
      if (!a->pure_const()) std::swap(a, b);
      const double k = a->c;
      b->c *= k;
      for (LinTerm& t : b->terms) t.coeff *= k;
      return b;
    }
    case ExprKind::Div: {
      auto a = linearize(e->lhs, ndim);
      auto b = linearize(e->rhs, ndim);
      if (!a || !b || !b->pure_const() || b->c == 0.0) return std::nullopt;
      a->c /= b->c;
      for (LinTerm& t : a->terms) t.coeff /= b->c;
      return a;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<LinearForm> try_linearize(const Expr& e, int ndim) {
  auto lin = linearize(e, ndim);
  if (!lin) return std::nullopt;

  LinearForm lf;
  lf.constant = lin->c;
  for (const LinTerm& t : lin->terms) {
    if (t.coeff == 0.0) continue;
    // Find (or open) the InputTaps bucket for this slot; sampling factors
    // must agree across all loads of the slot for the tap-loop kernel.
    InputTaps* bucket = nullptr;
    for (InputTaps& it : lf.inputs) {
      if (it.slot == t.slot) {
        bucket = &it;
        break;
      }
    }
    if (bucket == nullptr) {
      InputTaps it;
      it.slot = t.slot;
      for (int d = 0; d < ndim; ++d) {
        it.num[d] = t.idx[d].num;
        it.den[d] = t.idx[d].den;
      }
      lf.inputs.push_back(it);
      bucket = &lf.inputs.back();
    } else {
      for (int d = 0; d < ndim; ++d) {
        if (bucket->num[d] != t.idx[d].num ||
            bucket->den[d] != t.idx[d].den) {
          return std::nullopt;  // mixed sampling on one slot: bail out
        }
      }
    }
    Tap tap;
    for (int d = 0; d < ndim; ++d) tap.off[d] = t.idx[d].off;
    tap.coeff = t.coeff;
    bucket->taps.push_back(tap);
  }
  // Deterministic tap order (row-major by offset) so codegen and numeric
  // summation order are stable run to run.
  for (InputTaps& it : lf.inputs) {
    std::sort(it.taps.begin(), it.taps.end(),
              [](const Tap& a, const Tap& b) { return a.off < b.off; });
  }
  return lf;
}

LoweredFunc lower(const FunctionDecl& f) {
  LoweredFunc out;
  out.defs.reserve(f.defs.size());
  for (const Expr& def : f.defs) {
    LoweredDef ld;
    ld.linear = try_linearize(def, f.ndim);
    ld.bytecode = compile_bytecode(def);
    // Linear definitions run through the tap-loop kernel; only the
    // non-linear ones need the register row engine.
    if (!ld.linear) ld.regprog = compile_regprog(ld.bytecode);
    if (!ld.linear) out.all_linear = false;
    out.defs.push_back(std::move(ld));
  }
  return out;
}

}  // namespace polymg::ir
