// Pipeline — the feed-forward DAG of functions over external grids.
//
// As in PolyMage, the specification is a DAG with instance-wise
// producer-consumer information (the access summaries on each edge); the
// loop iterating whole multigrid cycles lives outside the pipeline.
#pragma once

#include <string>
#include <vector>

#include "polymg/ir/function.hpp"

namespace polymg::ir {

/// A program input/output array (the paper's Grid construct, e.g. V and F
/// of size [N+2, N+2]).
struct ExternalGrid {
  std::string name;
  Box domain;
};

class Pipeline {
public:
  int ndim = 0;
  std::vector<ExternalGrid> externals;
  /// Topologically ordered: funcs[i] only sources funcs[j] with j < i.
  std::vector<FunctionDecl> funcs;
  /// Program outputs (function indices). Their buffers are caller-visible.
  std::vector<int> outputs;

  int num_stages() const { return static_cast<int>(funcs.size()); }

  bool is_output(int func) const;

  /// consumers()[i] lists (consumer func index, slot) pairs reading func i.
  std::vector<std::vector<std::pair<int, int>>> consumers() const;

  /// Structural validation: topological source order, ndim consistency,
  /// at least one output, outputs in range. Throws Error on violation.
  void validate() const;

  /// Multi-line structural dump (names, domains, edges) for diagnostics.
  std::string dump() const;
};

}  // namespace polymg::ir
