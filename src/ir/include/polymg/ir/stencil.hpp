// The Stencil construct and source references.
//
// A SourceRef is what a function definition uses to read one of its
// sources; it carries the source slot plus the sampling factors that the
// Restrict / Interp constructs install (×2 and ÷2 respectively). The
// Stencil helpers expand a weight matrix into a weighted sum of loads, as
// the paper's `Stencil(f, (x,y), [[...]], scale)` construct does; the
// center of an m×m stencil defaults to (m/2, m/2) (integer division) and
// can be overridden.
#pragma once

#include <optional>
#include <vector>

#include "polymg/ir/expr.hpp"

namespace polymg::ir {

/// Handle through which a function definition reads one source.
struct SourceRef {
  int slot = -1;
  int ndim = 0;
  // Sampling per dimension: loads through this ref use
  // floor(num·x/den) + offset.
  std::array<int, kMaxDims> num{1, 1, 1};
  std::array<int, kMaxDims> den{1, 1, 1};

  /// Point load at the given offsets relative to the (sampled) index.
  Expr at(index_t di, index_t dj) const;
  Expr at(index_t di, index_t dj, index_t dk) const;
  Expr at_offsets(const std::array<index_t, kMaxDims>& off) const;

  /// Center load, e.g. v(y, x) in the paper's listings.
  Expr operator()() const { return at_offsets({0, 0, 0}); }
};

/// 2-d weight matrix, row-major: w[di][dj] multiplies
/// src(y + di - cy, x + dj - cx).
using Weights2 = std::vector<std::vector<double>>;
/// 3-d weight cube: w[di][dj][dk].
using Weights3 = std::vector<std::vector<std::vector<double>>>;

/// PolyMage Stencil construct for 2-d grids. Zero weights generate no
/// loads. `scale` multiplies the whole sum (the 1.0/16 in the paper's
/// examples). Throws on ragged weight matrices.
Expr stencil2(const SourceRef& src, const Weights2& w, double scale = 1.0,
              std::optional<std::array<int, 2>> center = std::nullopt);

/// The 3-d extension of the construct (list of lists of lists).
Expr stencil3(const SourceRef& src, const Weights3& w, double scale = 1.0,
              std::optional<std::array<int, 3>> center = std::nullopt);

/// Classic kernels used throughout the benchmarks.
Weights2 five_point_laplacian_2d();       // [[0,-1,0],[-1,4,-1],[0,-1,0]]
Weights3 seven_point_laplacian_3d();      // 6 neighbours, center 6
Weights2 full_weighting_2d();             // [[1,2,1],[2,4,2],[1,2,1]] (/16)
Weights3 full_weighting_3d();             // 27-point (/64)

}  // namespace polymg::ir
