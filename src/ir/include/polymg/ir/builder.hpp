// PipelineBuilder — the embedded DSL surface.
//
// Mirrors the constructs of the PolyMG language (§2 of the paper):
//
//   Grid      -> PipelineBuilder::input
//   Function  -> define / define_piecewise
//   Stencil   -> polymg::ir::stencil2 / stencil3 (expression helpers)
//   TStencil  -> define_tstencil (expands into one function per step;
//                slot 0 of the step definition is the previous step)
//   Restrict  -> define_restrict (source 0 sampled with factor 2: the
//                output reads input(2x + off), and the output grid is a
//                factor-2 coarsening)
//   Interp    -> define_interp (source 0 sampled with factor 1/2 and a
//                parity-piecewise definition, one expression per parity
//                combination — the paper's expr[dy][dx])
//   Case      -> the BoundaryKind of a FuncSpec (piecewise boundary defs)
//
// Example (the Jacobi smoother of Fig. 3):
//
//   PipelineBuilder b(2);
//   auto V = b.input("V", Box::cube(2, 0, n + 1));
//   auto F = b.input("F", Box::cube(2, 0, n + 1));
//   FuncSpec spec{.name = "smooth", .domain = ..., .interior = ...};
//   auto s = b.define_tstencil(spec, V, {F}, n1, [&](auto src) {
//     return src[0]() - make_const(w) * (stencil2(src[0],
//         five_point_laplacian_2d(), 1.0 / (h * h)) - src[1]());
//   });
#pragma once

#include <functional>
#include <span>

#include "polymg/ir/pipeline.hpp"
#include "polymg/ir/stencil.hpp"

namespace polymg::ir {

/// Opaque reference to a pipeline value (external grid or function).
struct Handle {
  bool external = false;
  int index = -1;

  bool valid() const { return index >= 0; }
};

/// Declarative part of a function definition.
struct FuncSpec {
  std::string name;
  Box domain;
  Box interior;
  BoundaryKind boundary = BoundaryKind::Zero;
  int boundary_source = -1;
  int level = -1;
};

/// Callback building the definition from bound source refs.
using DefFn = std::function<Expr(std::span<const SourceRef>)>;
/// Piecewise variant: must return 2^ndim parity-case expressions.
using PiecewiseDefFn =
    std::function<std::vector<Expr>(std::span<const SourceRef>)>;

class PipelineBuilder {
public:
  explicit PipelineBuilder(int ndim);

  /// Declare a program input grid (the paper's Grid construct).
  Handle input(const std::string& name, const Box& domain);

  /// Plain Function / Stencil definition.
  Handle define(const FuncSpec& spec, const std::vector<Handle>& srcs,
                const DefFn& def);

  /// Function with parity-piecewise definitions (rarely needed directly;
  /// Interp uses it internally).
  Handle define_piecewise(const FuncSpec& spec,
                          const std::vector<Handle>& srcs,
                          const PiecewiseDefFn& def);

  /// Restrict construct: srcs[0] is read with sampling factor 2
  /// (input(2x + off)); remaining sources are unit-scale.
  Handle define_restrict(const FuncSpec& spec, const std::vector<Handle>& srcs,
                         const DefFn& def);

  /// Interp construct: srcs[0] is read with sampling factor 1/2
  /// (input(x/2 + off)); definition is parity-piecewise.
  Handle define_interp(const FuncSpec& spec, const std::vector<Handle>& srcs,
                       const PiecewiseDefFn& def);

  /// TStencil construct: expands `steps` chained copies of the step
  /// definition. Slot 0 of the definition is the previous step (the
  /// initial value being `v0`); the remaining slots bind `others`.
  /// Returns the handle of the final step (steps == 0 returns v0, which
  /// must then be a function handle or the caller must cope).
  Handle define_tstencil(const FuncSpec& spec, Handle v0,
                         const std::vector<Handle>& others, int steps,
                         const DefFn& step_def);

  /// Step-indexed chain definition. Per-step definitions may differ (or
  /// be parity-piecewise): red-black Gauss-Seidel alternates red/black
  /// half-sweeps, for example. The callback receives (sources, step).
  using ChainDefFn =
      std::function<std::vector<Expr>(std::span<const SourceRef>, int)>;
  Handle define_chain(const FuncSpec& spec, Handle v0,
                      const std::vector<Handle>& others, int steps,
                      const ChainDefFn& step_def, bool parity_piecewise);

  /// Mark a function as a program output.
  void mark_output(Handle h);

  /// Finish: validates and returns the pipeline (builder is left empty).
  Pipeline build();

  int ndim() const { return pipe_.ndim; }
  const Pipeline& peek() const { return pipe_; }

private:
  Handle commit(FunctionDecl&& f);
  std::vector<SourceRef> bind_sources(FunctionDecl& f,
                                      const std::vector<Handle>& srcs) const;

  Pipeline pipe_;
  int next_time_chain_ = 0;
};

}  // namespace polymg::ir
