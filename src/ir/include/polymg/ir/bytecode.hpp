// Stack bytecode for point-wise evaluation of arbitrary definitions.
#pragma once

#include <vector>

#include "polymg/ir/expr.hpp"

namespace polymg::ir {

enum class BcKind : std::uint8_t { PushConst, Load, Add, Sub, Mul, Div, Neg };

struct BcOp {
  BcKind kind;
  double c = 0.0;                       // PushConst
  int slot = -1;                        // Load
  std::array<LoadIndex, kMaxDims> idx{};  // Load
};

/// Postfix program; binary ops pop two, push one.
using Bytecode = std::vector<BcOp>;

/// Compile an expression into postfix bytecode.
Bytecode compile_bytecode(const Expr& e);

/// Maximum evaluation stack depth the program needs.
int stack_depth(const Bytecode& bc);

}  // namespace polymg::ir
