// Lowering function definitions to executable forms.
//
// Multigrid definitions are linear in their loads (smoothers, residuals,
// restriction, interpolation, correction are all affine combinations), so
// the primary lowering target is the LinearForm: per input, a list of
// (offset, coefficient) taps under one sampling factor, plus an additive
// constant. One generic tap-loop kernel then executes every linear stage.
// Definitions the linearizer cannot prove affine fall back to a stack
// bytecode, evaluated point-wise — slower but fully general, mirroring how
// a DSL's generated code covers arbitrary point-wise expressions.
#pragma once

#include <optional>

#include "polymg/ir/bytecode.hpp"
#include "polymg/ir/function.hpp"
#include "polymg/ir/jit_abi.hpp"
#include "polymg/ir/regprog.hpp"

namespace polymg::ir {

/// One read position and its coefficient.
struct Tap {
  std::array<index_t, kMaxDims> off{};
  double coeff = 0.0;
};

/// All taps of one source slot, under a common per-dimension sampling.
struct InputTaps {
  int slot = -1;
  std::array<int, kMaxDims> num{1, 1, 1};
  std::array<int, kMaxDims> den{1, 1, 1};
  std::vector<Tap> taps;
};

/// out(x) = constant + Σ_inputs Σ_taps coeff · in(floor(num·x/den) + off).
struct LinearForm {
  double constant = 0.0;
  std::vector<InputTaps> inputs;

  int total_taps() const {
    int n = 0;
    for (const auto& i : inputs) n += static_cast<int>(i.taps.size());
    return n;
  }
};

/// Attempt to linearize `e`. Returns nullopt when the expression is not
/// affine in its loads (e.g. load·load products) or when one slot is read
/// with mixed sampling factors.
std::optional<LinearForm> try_linearize(const Expr& e, int ndim);

/// One definition lowered to whichever form applies.
struct LoweredDef {
  std::optional<LinearForm> linear;  // fast path when present
  Bytecode bytecode;                 // always valid (reference/fallback)
  /// Register program for the row engine (non-linear definitions).
  /// Compiled at plan time; cleared when a plan opts out of the register
  /// engine (the reference/oracle plans keep interpreting `bytecode`).
  RegProgram regprog;
  /// Natively compiled kernel (codegen::jit_specialize), or null. The
  /// pointer's code is kept alive by CompiledPipeline::jit_module;
  /// reference/oracle plans never bind one (CompileOptions::jit is
  /// forced off by reference_options).
  JitKernelFn jit = nullptr;
};

/// A whole function's lowered definitions (one per parity case).
struct LoweredFunc {
  std::vector<LoweredDef> defs;
  bool all_linear = true;
};

LoweredFunc lower(const FunctionDecl& f);

}  // namespace polymg::ir
