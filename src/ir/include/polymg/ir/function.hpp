// FunctionDecl — one node of the pipeline DAG.
//
// Every step of a multigrid cycle (a smoothing iteration, the residual,
// restriction, interpolation, correction) is one function: a definition
// expression over a rectangular domain, plus a boundary rule for the ghost
// ring around the interior. TStencil chains are expanded into one function
// per time step at build time (sharing the step expression), which is what
// gives the paper's Table 3 stage counts (e.g. 40 DAG nodes for
// V-2D-4-4-4).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "polymg/ir/expr.hpp"

namespace polymg::ir {

using poly::Box;

/// Boundary rule applied on domain ∖ interior.
enum class BoundaryKind : std::uint8_t {
  None,        ///< domain == interior; no ghost ring is written
  Zero,        ///< ghost ring set to 0 (homogeneous Dirichlet)
  CopySource,  ///< ghost ring copied from one source at identity index
};

/// Which language construct produced this function (provenance for
/// diagnostics, Table 3 accounting and the dtile smoother-chain pass).
enum class ConstructKind : std::uint8_t {
  Function,
  Stencil,
  TStencilStep,
  Restrict,
  Interp,
};

/// One source of a function: an external grid or an earlier function.
struct SourceSlot {
  bool external = false;
  int index = -1;  // into Pipeline::externals or Pipeline::funcs
};

struct FunctionDecl {
  std::string name;
  int ndim = 0;
  Box domain;    ///< full allocated extent, incl. boundary ring
  Box interior;  ///< where the definition expressions apply
  BoundaryKind boundary = BoundaryKind::Zero;
  int boundary_source = -1;  ///< slot copied when boundary == CopySource

  std::vector<SourceSlot> sources;

  /// Definition(s). Size 1 normally; size 2^ndim for parity-piecewise
  /// definitions (the Interp construct). The parity case of point x is
  /// flat index Σ_d (x_d & 1) << (ndim-1-d), i.e. 2-d case (y&1, x&1)
  /// maps to y_par*2 + x_par, matching the paper's expr[dy][dx] layout.
  std::vector<Expr> defs;
  bool parity_piecewise = false;

  ConstructKind construct = ConstructKind::Function;
  int level = -1;       ///< multigrid level (finest = highest), -1 unknown
  int time_chain = -1;  ///< TStencil chain id this step belongs to
  int time_step = -1;   ///< position within the chain

  /// Derived by finalize(): per-slot access summary merged over all defs.
  std::vector<std::pair<int, poly::Access>> accesses;

  /// Validate shape and compute access summaries. Called by the builder.
  void finalize();

  /// Access summary for one slot (must exist).
  const poly::Access& access_for(int slot) const;

  /// Whether any read of `slot` is non-unit-scale (sampled).
  bool sampled_read(int slot) const;
};

}  // namespace polymg::ir
