// Expression IR for PolyMG function definitions.
//
// A function's definition is a scalar expression over the function's index
// variables; leaves are constants and loads from the function's sources
// (external grids or producer functions). Loads carry a per-dimension
// sampled affine index — floor(num·x/den) + off — which is how the
// Restrict (×2) and Interp (÷2) constructs appear after desugaring.
//
// Expressions are immutable and shared (value semantics over
// shared_ptr<const ExprNode>), so common subexpressions such as a
// TStencil's step definition are built once and referenced by every
// expanded smoothing stage.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "polymg/poly/access.hpp"

namespace polymg::ir {

using poly::index_t;
using poly::kMaxDims;

enum class ExprKind : std::uint8_t { Const, Load, Add, Sub, Mul, Div, Neg };

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

/// Per-dimension sampled index of a load: floor(num·x/den) + off.
struct LoadIndex {
  int num = 1;
  int den = 1;
  index_t off = 0;

  friend constexpr bool operator==(const LoadIndex&, const LoadIndex&) =
      default;
};

struct ExprNode {
  ExprKind kind;

  // Const
  double value = 0.0;

  // Load
  int slot = -1;  // index into the owning function's source list
  std::array<LoadIndex, kMaxDims> idx{};

  // Add/Sub/Mul/Div (binary) and Neg (unary, lhs only)
  Expr lhs;
  Expr rhs;
};

Expr make_const(double v);
Expr make_load(int slot, const std::array<LoadIndex, kMaxDims>& idx);
Expr make_binary(ExprKind k, Expr a, Expr b);
Expr make_neg(Expr a);

// Operator sugar so definitions read like the paper's Python.
inline Expr operator+(Expr a, Expr b) {
  return make_binary(ExprKind::Add, std::move(a), std::move(b));
}
inline Expr operator-(Expr a, Expr b) {
  return make_binary(ExprKind::Sub, std::move(a), std::move(b));
}
inline Expr operator*(Expr a, Expr b) {
  return make_binary(ExprKind::Mul, std::move(a), std::move(b));
}
inline Expr operator/(Expr a, Expr b) {
  return make_binary(ExprKind::Div, std::move(a), std::move(b));
}
inline Expr operator-(Expr a) { return make_neg(std::move(a)); }
inline Expr operator+(Expr a, double b) { return std::move(a) + make_const(b); }
inline Expr operator+(double a, Expr b) { return make_const(a) + std::move(b); }
inline Expr operator-(Expr a, double b) { return std::move(a) - make_const(b); }
inline Expr operator-(double a, Expr b) { return make_const(a) - std::move(b); }
inline Expr operator*(Expr a, double b) { return std::move(a) * make_const(b); }
inline Expr operator*(double a, Expr b) { return make_const(a) * std::move(b); }
inline Expr operator/(Expr a, double b) { return std::move(a) / make_const(b); }
inline Expr operator/(double a, Expr b) { return make_const(a) / std::move(b); }

/// Visit every node (pre-order).
void visit(const Expr& e, const std::function<void(const ExprNode&)>& fn);

/// Aggregate, per source slot, the access summary of all loads in `e`.
/// Slots not loaded from get no entry. Throws if one slot is loaded with
/// inconsistent sampling factors in some dimension.
std::vector<std::pair<int, poly::Access>> collect_accesses(const Expr& e,
                                                           int ndim);

/// Human-readable rendering (used by codegen and diagnostics).
/// `slot_names` supplies a name per source slot.
std::string to_string(const Expr& e,
                      const std::vector<std::string>& slot_names, int ndim);

}  // namespace polymg::ir
