// Register-bytecode programs: the row engine's executable form.
//
// The stack Bytecode is a faithful postfix rendering of the definition
// expression, evaluated one point at a time — correct but interpretive.
// A RegProgram is the same expression compiled once (at plan time) into a
// linear three-address form over virtual registers, with
//   (a) common-subexpression elimination by value numbering (identical
//       constants, loads and operation trees share one register), and
//   (b) loop-invariant hoisting: instructions whose operands are all
//       position-independent (constants and arithmetic over constants)
//       move to a prologue executed once per kernel invocation.
// The runtime evaluates the body over whole rows in fixed-width batches
// (each register is a short vector of lanes), which is what lets the
// compiler vectorize arbitrary bytecode-only stages.
#pragma once

#include <vector>

#include "polymg/ir/bytecode.hpp"

namespace polymg::ir {

enum class RegOpKind : std::uint8_t { Const, Load, Neg, Add, Sub, Mul, Div };

struct RegInstr {
  RegOpKind kind;
  int dst = -1;
  int a = -1;  // operand register (Neg and binary ops)
  int b = -1;  // second operand register (binary ops)

  double c = 0.0;                         // Const
  int slot = -1;                          // Load: source slot
  std::array<LoadIndex, kMaxDims> idx{};  // Load: sampled index per dim
};

/// Linearized register program. `prologue` holds the hoisted
/// loop-invariant instructions (all Const and const-only arithmetic);
/// `body` holds the per-point instructions in dependence order. Register
/// numbering is shared: body instructions may read prologue registers.
struct RegProgram {
  std::vector<RegInstr> prologue;
  std::vector<RegInstr> body;
  int num_regs = 0;
  int result = -1;  ///< register holding the definition's value
  int num_loads = 0;  ///< Load instructions in the body

  bool empty() const { return num_regs == 0; }
};

/// Capacity bounds the batch evaluator relies on; programs exceeding them
/// are still valid RegPrograms but the runtime falls back to the stack
/// interpreter (caps are validated where the engine is selected).
inline constexpr int kRegEngineMaxRegs = 96;
inline constexpr int kRegEngineMaxLoads = 48;

/// Compile stack bytecode into a register program (CSE + hoisting).
RegProgram compile_regprog(const Bytecode& bc);

/// Structural validation: SSA-style single assignment per register,
/// operands defined before use, register/slot indices in range, exactly
/// loop-invariant instructions in the prologue, and a defined result.
/// `num_slots` bounds Load slots (< 0 skips the slot check). Returns a
/// human-readable issue list, empty when well-formed.
std::vector<std::string> regprog_issues(const RegProgram& p, int num_slots);

/// Whether the batch evaluator can run this program (capacity caps).
bool regprog_fits_engine(const RegProgram& p);

}  // namespace polymg::ir
