// The C ABI between PolyMG and JIT-compiled stencil kernels.
//
// codegen::jit_specialize emits one C function per (function, parity
// case) with this signature, compiles the translation unit with the
// system compiler and binds the resolved pointers into the plan's
// LoweredDefs. The ABI deliberately carries only what varies at run
// time — pointers, origins, outer strides and the region box. Everything
// the specializer knows at plan time (tap coefficients, sampling
// factors, parity step/phase, the unit innermost stride every PolyMG
// view guarantees) is baked into the generated code as constants.
//
// Bump kJitAbiVersion whenever this header's layout or the generated
// code's calling convention changes: the version is embedded in every
// cached shared object and checked after dlopen, so stale on-disk cache
// entries from an older build are rejected and recompiled instead of
// being called through a mismatched ABI.
#pragma once

#include <cstdint>

namespace polymg::ir {

/// One bound source grid as the generated code sees it. Mirrors
/// grid::View minus ndim (baked) with fixed-width fields so the struct
/// layout is identical in C and C++. The data pointer is untyped: the
/// element type (double or float, from the plan's storage-precision
/// assignment) is baked into the generated code as a cast, like every
/// other plan-time constant.
struct JitSrcView {
  const void* ptr = nullptr;
  std::int64_t origin[3] = {0, 0, 0};
  std::int64_t stride[3] = {0, 0, 0};
};

/// A compiled kernel: evaluate one lowered definition over the lattice
/// points of [lo, hi] (inclusive, per live dimension) that match the
/// baked (step, phase). `out_origin`/`out_stride` address the output
/// view; the innermost stride of the output and of every source must be
/// 1 (the caller checks before dispatching). `out` is untyped for the
/// same reason as JitSrcView::ptr; the kernel was emitted for exactly
/// the dtypes the plan assigned, and the executor binds views of
/// exactly those dtypes.
using JitKernelFn = void (*)(void* out, const std::int64_t* out_origin,
                             const std::int64_t* out_stride,
                             const JitSrcView* srcs, const std::int64_t* lo,
                             const std::int64_t* hi);

/// Checked against the `pmg_abi_version` symbol of a dlopen'd module.
/// v2: untyped data pointers + dtype casts baked into the emitted code.
inline constexpr int kJitAbiVersion = 2;

/// Most source slots a generated kernel addresses; the dispatch site
/// builds a stack array this size (pipelines stay well under it — NAS
/// resid peaks at 2 slots).
inline constexpr int kJitMaxSrcSlots = 16;

}  // namespace polymg::ir
