#include "polymg/ir/regprog.hpp"

#include <cstring>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "polymg/common/error.hpp"

namespace polymg::ir {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

using LoadKey = std::tuple<int, std::array<LoadIndex, kMaxDims>>;
using OpKey = std::tuple<RegOpKind, int, int>;

struct LoadKeyLess {
  bool operator()(const LoadKey& x, const LoadKey& y) const {
    if (std::get<0>(x) != std::get<0>(y)) return std::get<0>(x) < std::get<0>(y);
    const auto& a = std::get<1>(x);
    const auto& b = std::get<1>(y);
    for (int d = 0; d < kMaxDims; ++d) {
      const auto ta = std::tie(a[d].num, a[d].den, a[d].off);
      const auto tb = std::tie(b[d].num, b[d].den, b[d].off);
      if (ta != tb) return ta < tb;
    }
    return false;
  }
};

/// Builds the program while value-numbering every produced value.
class RegBuilder {
public:
  int intern_const(double v) {
    auto [it, fresh] = consts_.try_emplace(bits_of(v), -1);
    if (!fresh) return it->second;
    RegInstr in{RegOpKind::Const};
    in.c = v;
    it->second = emit(in, /*invariant=*/true);
    return it->second;
  }

  int intern_load(const BcOp& op) {
    LoadKey key{op.slot, op.idx};
    auto [it, fresh] = loads_.try_emplace(key, -1);
    if (!fresh) return it->second;
    RegInstr in{RegOpKind::Load};
    in.slot = op.slot;
    in.idx = op.idx;
    it->second = emit(in, /*invariant=*/false);
    return it->second;
  }

  int intern_op(RegOpKind k, int a, int b) {
    // IEEE-754 + and × are bitwise commutative, so a canonical operand
    // order widens CSE without changing results.
    if ((k == RegOpKind::Add || k == RegOpKind::Mul) && b < a) std::swap(a, b);
    auto [it, fresh] = ops_.try_emplace(OpKey{k, a, b}, -1);
    if (!fresh) return it->second;
    RegInstr in{k};
    in.a = a;
    in.b = b;
    it->second = emit(in, invariant_[a] && (b < 0 || invariant_[b]));
    return it->second;
  }

  RegProgram take(int result) {
    prog_.result = result;
    prog_.num_regs = static_cast<int>(invariant_.size());
    for (const RegInstr& in : prog_.body) {
      prog_.num_loads += in.kind == RegOpKind::Load ? 1 : 0;
    }
    return std::move(prog_);
  }

private:
  int emit(RegInstr in, bool invariant) {
    in.dst = static_cast<int>(invariant_.size());
    invariant_.push_back(invariant);
    (invariant ? prog_.prologue : prog_.body).push_back(in);
    return in.dst;
  }

  RegProgram prog_;
  std::vector<bool> invariant_;
  std::map<std::uint64_t, int> consts_;
  std::map<LoadKey, int, LoadKeyLess> loads_;
  std::map<OpKey, int> ops_;
};

}  // namespace

RegProgram compile_regprog(const Bytecode& bc) {
  stack_depth(bc);  // throws on malformed programs before we simulate
  RegBuilder b;
  std::vector<int> stack;
  for (const BcOp& op : bc) {
    switch (op.kind) {
      case BcKind::PushConst:
        stack.push_back(b.intern_const(op.c));
        break;
      case BcKind::Load:
        stack.push_back(b.intern_load(op));
        break;
      case BcKind::Neg:
        stack.back() = b.intern_op(RegOpKind::Neg, stack.back(), -1);
        break;
      case BcKind::Add:
      case BcKind::Sub:
      case BcKind::Mul:
      case BcKind::Div: {
        const int rhs = stack.back();
        stack.pop_back();
        const RegOpKind k = op.kind == BcKind::Add   ? RegOpKind::Add
                            : op.kind == BcKind::Sub ? RegOpKind::Sub
                            : op.kind == BcKind::Mul ? RegOpKind::Mul
                                                     : RegOpKind::Div;
        stack.back() = b.intern_op(k, stack.back(), rhs);
        break;
      }
    }
  }
  PMG_CHECK(stack.size() == 1, "regprog compile left " << stack.size()
                                                       << " stack values");
  return b.take(stack.back());
}

std::vector<std::string> regprog_issues(const RegProgram& p, int num_slots) {
  std::vector<std::string> issues;
  const auto issue = [&](const auto& describe) {
    std::ostringstream oss;
    describe(oss);
    issues.push_back(oss.str());
  };

  std::vector<int> defined(static_cast<std::size_t>(std::max(p.num_regs, 0)),
                           0);
  int body_loads = 0;
  const auto check_instr = [&](const RegInstr& in, bool in_prologue,
                               std::size_t pos) {
    const char* where = in_prologue ? "prologue" : "body";
    if (in.dst < 0 || in.dst >= p.num_regs) {
      issue([&](auto& o) {
        o << where << "[" << pos << "] writes register " << in.dst
          << " out of range (num_regs " << p.num_regs << ")";
      });
      return;
    }
    if (defined[in.dst]++) {
      issue([&](auto& o) {
        o << where << "[" << pos << "] redefines register " << in.dst;
      });
    }
    const bool unary = in.kind == RegOpKind::Neg;
    const bool binary = in.kind == RegOpKind::Add ||
                        in.kind == RegOpKind::Sub ||
                        in.kind == RegOpKind::Mul || in.kind == RegOpKind::Div;
    if (unary || binary) {
      for (const int r : {in.a, binary ? in.b : -2}) {
        if (r == -2) continue;
        if (r < 0 || r >= p.num_regs || !defined[r]) {
          issue([&](auto& o) {
            o << where << "[" << pos << "] reads register " << r
              << " before definition";
          });
        }
      }
    }
    if (in.kind == RegOpKind::Load) {
      if (in_prologue) {
        issue([&](auto& o) {
          o << "prologue[" << pos << "] is a Load (position-dependent)";
        });
      } else {
        ++body_loads;
      }
      if (num_slots >= 0 && (in.slot < 0 || in.slot >= num_slots)) {
        issue([&](auto& o) {
          o << where << "[" << pos << "] loads slot " << in.slot << " of "
            << num_slots;
        });
      }
      for (int d = 0; d < kMaxDims; ++d) {
        if (in.idx[d].den < 1) {
          issue([&](auto& o) {
            o << where << "[" << pos << "] load has non-positive denominator "
              << in.idx[d].den << " in dim " << d;
          });
        }
      }
    }
    if (in.kind == RegOpKind::Const && !in_prologue) {
      issue([&](auto& o) {
        o << "body[" << pos << "] is a Const (should be hoisted)";
      });
    }
  };

  for (std::size_t i = 0; i < p.prologue.size(); ++i) {
    check_instr(p.prologue[i], true, i);
  }
  for (std::size_t i = 0; i < p.body.size(); ++i) {
    check_instr(p.body[i], false, i);
  }
  if (p.result < 0 || p.result >= p.num_regs ||
      (p.result < static_cast<int>(defined.size()) && !defined[p.result])) {
    issue([&](auto& o) { o << "result register " << p.result << " undefined"; });
  }
  if (body_loads != p.num_loads) {
    issue([&](auto& o) {
      o << "num_loads " << p.num_loads << " != " << body_loads
        << " Load instructions";
    });
  }
  if (p.prologue.size() + p.body.size() !=
      static_cast<std::size_t>(p.num_regs)) {
    issue([&](auto& o) {
      o << "instruction count " << p.prologue.size() + p.body.size()
        << " != num_regs " << p.num_regs;
    });
  }
  return issues;
}

bool regprog_fits_engine(const RegProgram& p) {
  return !p.empty() && p.num_regs <= kRegEngineMaxRegs &&
         p.num_loads <= kRegEngineMaxLoads;
}

}  // namespace polymg::ir
