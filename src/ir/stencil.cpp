#include "polymg/ir/stencil.hpp"

#include "polymg/common/error.hpp"

namespace polymg::ir {

Expr SourceRef::at_offsets(const std::array<index_t, kMaxDims>& off) const {
  PMG_CHECK(slot >= 0, "SourceRef not bound to a slot");
  std::array<LoadIndex, kMaxDims> idx{};
  for (int d = 0; d < ndim; ++d) {
    idx[d] = LoadIndex{num[d], den[d], off[d]};
  }
  return make_load(slot, idx);
}

Expr SourceRef::at(index_t di, index_t dj) const {
  PMG_CHECK(ndim == 2, "2-index access on " << ndim << "-d source");
  return at_offsets({di, dj, 0});
}

Expr SourceRef::at(index_t di, index_t dj, index_t dk) const {
  PMG_CHECK(ndim == 3, "3-index access on " << ndim << "-d source");
  return at_offsets({di, dj, dk});
}

namespace {

Expr accumulate(Expr acc, Expr term) {
  return acc ? std::move(acc) + std::move(term) : std::move(term);
}

}  // namespace

Expr stencil2(const SourceRef& src, const Weights2& w, double scale,
              std::optional<std::array<int, 2>> center) {
  PMG_CHECK(!w.empty(), "empty stencil");
  const int rows = static_cast<int>(w.size());
  const int cols = static_cast<int>(w[0].size());
  for (const auto& row : w) {
    PMG_CHECK(static_cast<int>(row.size()) == cols, "ragged stencil matrix");
  }
  const int cy = center ? (*center)[0] : rows / 2;
  const int cx = center ? (*center)[1] : cols / 2;
  Expr sum;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (w[i][j] == 0.0) continue;
      Expr load = src.at(i - cy, j - cx);
      sum = accumulate(std::move(sum),
                       w[i][j] == 1.0 ? std::move(load)
                                      : make_const(w[i][j]) * std::move(load));
    }
  }
  PMG_CHECK(sum != nullptr, "stencil with all-zero weights");
  return scale == 1.0 ? sum : make_const(scale) * std::move(sum);
}

Expr stencil3(const SourceRef& src, const Weights3& w, double scale,
              std::optional<std::array<int, 3>> center) {
  PMG_CHECK(!w.empty() && !w[0].empty(), "empty stencil");
  const int nz = static_cast<int>(w.size());
  const int ny = static_cast<int>(w[0].size());
  const int nx = static_cast<int>(w[0][0].size());
  for (const auto& plane : w) {
    PMG_CHECK(static_cast<int>(plane.size()) == ny, "ragged stencil cube");
    for (const auto& row : plane) {
      PMG_CHECK(static_cast<int>(row.size()) == nx, "ragged stencil cube");
    }
  }
  const int cz = center ? (*center)[0] : nz / 2;
  const int cy = center ? (*center)[1] : ny / 2;
  const int cx = center ? (*center)[2] : nx / 2;
  Expr sum;
  for (int i = 0; i < nz; ++i) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < nx; ++k) {
        if (w[i][j][k] == 0.0) continue;
        Expr load = src.at(i - cz, j - cy, k - cx);
        sum = accumulate(
            std::move(sum),
            w[i][j][k] == 1.0
                ? std::move(load)
                : make_const(w[i][j][k]) * std::move(load));
      }
    }
  }
  PMG_CHECK(sum != nullptr, "stencil with all-zero weights");
  return scale == 1.0 ? sum : make_const(scale) * std::move(sum);
}

Weights2 five_point_laplacian_2d() {
  return {{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}};
}

Weights3 seven_point_laplacian_3d() {
  Weights3 w(3, Weights2(3, std::vector<double>(3, 0.0)));
  w[1][1][1] = 6;
  w[0][1][1] = w[2][1][1] = -1;
  w[1][0][1] = w[1][2][1] = -1;
  w[1][1][0] = w[1][1][2] = -1;
  return w;
}

Weights2 full_weighting_2d() {
  return {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
}

Weights3 full_weighting_3d() {
  Weights3 w(3, Weights2(3, std::vector<double>(3, 0.0)));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        const int dist = (i != 1) + (j != 1) + (k != 1);
        w[i][j][k] = dist == 0 ? 8.0 : dist == 1 ? 4.0 : dist == 2 ? 2.0 : 1.0;
      }
    }
  }
  return w;
}

}  // namespace polymg::ir
