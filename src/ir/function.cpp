#include "polymg/ir/function.hpp"

#include "polymg/common/error.hpp"

namespace polymg::ir {

void FunctionDecl::finalize() {
  PMG_CHECK(ndim >= 1 && ndim <= poly::kMaxDims,
            "function " << name << ": bad ndim " << ndim);
  PMG_CHECK(domain.ndim() == ndim && interior.ndim() == ndim,
            "function " << name << ": domain/interior ndim mismatch");
  PMG_CHECK(domain.contains(interior),
            "function " << name << ": interior " << interior
                        << " escapes domain " << domain);
  PMG_CHECK(!defs.empty(), "function " << name << " has no definition");
  if (parity_piecewise) {
    PMG_CHECK(static_cast<int>(defs.size()) == (1 << ndim),
              "function " << name << ": parity-piecewise needs "
                          << (1 << ndim) << " cases, got " << defs.size());
  } else {
    PMG_CHECK(defs.size() == 1,
              "function " << name << ": single definition expected");
  }
  if (boundary == BoundaryKind::CopySource) {
    PMG_CHECK(boundary_source >= 0 &&
                  boundary_source < static_cast<int>(sources.size()),
              "function " << name << ": bad boundary source slot");
  }
  if (boundary == BoundaryKind::None) {
    PMG_CHECK(domain == interior,
              "function " << name
                          << ": BoundaryKind::None requires domain == "
                             "interior");
  }

  accesses.clear();
  for (const Expr& def : defs) {
    for (auto& [slot, acc] : collect_accesses(def, ndim)) {
      PMG_CHECK(slot < static_cast<int>(sources.size()),
                "function " << name << ": load from unbound slot " << slot);
      bool found = false;
      for (auto& [s, a] : accesses) {
        if (s == slot) {
          a = poly::merge(a, acc);
          found = true;
          break;
        }
      }
      if (!found) accesses.emplace_back(slot, acc);
    }
  }
  // The boundary copy also reads its source (at identity index).
  if (boundary == BoundaryKind::CopySource) {
    const poly::Access ident = poly::Access::identity(ndim);
    bool found = false;
    for (auto& [s, a] : accesses) {
      if (s == boundary_source) {
        a = poly::merge(a, ident);
        found = true;
        break;
      }
    }
    if (!found) accesses.emplace_back(boundary_source, ident);
  }
}

const poly::Access& FunctionDecl::access_for(int slot) const {
  for (const auto& [s, a] : accesses) {
    if (s == slot) return a;
  }
  PMG_CHECK(false, "function " << name << ": no access for slot " << slot);
  __builtin_unreachable();
}

bool FunctionDecl::sampled_read(int slot) const {
  return !access_for(slot).is_unit_scale();
}

}  // namespace polymg::ir
