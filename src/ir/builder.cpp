#include "polymg/ir/builder.hpp"

#include "polymg/common/error.hpp"

namespace polymg::ir {

PipelineBuilder::PipelineBuilder(int ndim) {
  PMG_CHECK(ndim >= 1 && ndim <= poly::kMaxDims, "bad ndim " << ndim);
  pipe_.ndim = ndim;
}

Handle PipelineBuilder::input(const std::string& name, const Box& domain) {
  PMG_CHECK(domain.ndim() == pipe_.ndim, "input " << name << " ndim mismatch");
  PMG_CHECK(!domain.empty(), "input " << name << " has empty domain");
  pipe_.externals.push_back(ExternalGrid{name, domain});
  return Handle{true, static_cast<int>(pipe_.externals.size()) - 1};
}

std::vector<SourceRef> PipelineBuilder::bind_sources(
    FunctionDecl& f, const std::vector<Handle>& srcs) const {
  std::vector<SourceRef> refs;
  refs.reserve(srcs.size());
  for (const Handle& h : srcs) {
    PMG_CHECK(h.valid(), "unbound source handle in " << f.name);
    if (h.external) {
      PMG_CHECK(h.index < static_cast<int>(pipe_.externals.size()),
                "bad external handle in " << f.name);
    } else {
      PMG_CHECK(h.index < static_cast<int>(pipe_.funcs.size()),
                "bad function handle in " << f.name);
    }
    f.sources.push_back(SourceSlot{h.external, h.index});
    SourceRef r;
    r.slot = static_cast<int>(f.sources.size()) - 1;
    r.ndim = pipe_.ndim;
    refs.push_back(r);
  }
  return refs;
}

Handle PipelineBuilder::commit(FunctionDecl&& f) {
  f.finalize();
  pipe_.funcs.push_back(std::move(f));
  return Handle{false, static_cast<int>(pipe_.funcs.size()) - 1};
}

namespace {

FunctionDecl from_spec(const FuncSpec& spec, int ndim,
                       ConstructKind construct) {
  FunctionDecl f;
  f.name = spec.name;
  f.ndim = ndim;
  f.domain = spec.domain;
  f.interior = spec.interior;
  f.boundary = spec.boundary;
  f.boundary_source = spec.boundary_source;
  f.level = spec.level;
  f.construct = construct;
  return f;
}

}  // namespace

Handle PipelineBuilder::define(const FuncSpec& spec,
                               const std::vector<Handle>& srcs,
                               const DefFn& def) {
  FunctionDecl f = from_spec(spec, pipe_.ndim, ConstructKind::Function);
  const std::vector<SourceRef> refs = bind_sources(f, srcs);
  f.defs = {def(refs)};
  return commit(std::move(f));
}

Handle PipelineBuilder::define_piecewise(const FuncSpec& spec,
                                         const std::vector<Handle>& srcs,
                                         const PiecewiseDefFn& def) {
  FunctionDecl f = from_spec(spec, pipe_.ndim, ConstructKind::Function);
  const std::vector<SourceRef> refs = bind_sources(f, srcs);
  f.defs = def(refs);
  f.parity_piecewise = true;
  return commit(std::move(f));
}

Handle PipelineBuilder::define_restrict(const FuncSpec& spec,
                                        const std::vector<Handle>& srcs,
                                        const DefFn& def) {
  PMG_CHECK(!srcs.empty(), "Restrict needs at least one source");
  FunctionDecl f = from_spec(spec, pipe_.ndim, ConstructKind::Restrict);
  std::vector<SourceRef> refs = bind_sources(f, srcs);
  // The Restrict construct's default sampling factor: output point x reads
  // the fine grid at 2x (+ stencil offsets).
  for (int d = 0; d < pipe_.ndim; ++d) {
    refs[0].num[d] = 2;
    refs[0].den[d] = 1;
  }
  f.defs = {def(refs)};
  return commit(std::move(f));
}

Handle PipelineBuilder::define_interp(const FuncSpec& spec,
                                      const std::vector<Handle>& srcs,
                                      const PiecewiseDefFn& def) {
  PMG_CHECK(!srcs.empty(), "Interp needs at least one source");
  FunctionDecl f = from_spec(spec, pipe_.ndim, ConstructKind::Interp);
  std::vector<SourceRef> refs = bind_sources(f, srcs);
  // The Interp construct's default sampling factor: output point x reads
  // the coarse grid at x/2 (+ offsets), with one definition per parity
  // combination selecting which coarse neighbours are averaged.
  for (int d = 0; d < pipe_.ndim; ++d) {
    refs[0].num[d] = 1;
    refs[0].den[d] = 2;
  }
  f.defs = def(refs);
  f.parity_piecewise = true;
  return commit(std::move(f));
}

Handle PipelineBuilder::define_tstencil(const FuncSpec& spec, Handle v0,
                                        const std::vector<Handle>& others,
                                        int steps, const DefFn& step_def) {
  return define_chain(
      spec, v0, others, steps,
      [&](std::span<const SourceRef> s, int) {
        return std::vector<Expr>{step_def(s)};
      },
      /*parity_piecewise=*/false);
}

Handle PipelineBuilder::define_chain(const FuncSpec& spec, Handle v0,
                                     const std::vector<Handle>& others,
                                     int steps, const ChainDefFn& step_def,
                                     bool parity_piecewise) {
  PMG_CHECK(steps >= 0, "chain needs a non-negative step count");
  if (steps == 0) return v0;
  const int chain = next_time_chain_++;
  Handle prev = v0;
  Handle last{};
  for (int t = 0; t < steps; ++t) {
    FuncSpec step_spec = spec;
    step_spec.name = spec.name + "_t" + std::to_string(t);
    FunctionDecl f =
        from_spec(step_spec, pipe_.ndim, ConstructKind::TStencilStep);
    std::vector<Handle> srcs;
    srcs.push_back(prev);
    srcs.insert(srcs.end(), others.begin(), others.end());
    const std::vector<SourceRef> refs = bind_sources(f, srcs);
    f.defs = step_def(refs, t);
    f.parity_piecewise = parity_piecewise;
    f.time_chain = chain;
    f.time_step = t;
    last = commit(std::move(f));
    prev = last;
  }
  return last;
}

void PipelineBuilder::mark_output(Handle h) {
  PMG_CHECK(h.valid() && !h.external, "outputs must be functions");
  PMG_CHECK(h.index < static_cast<int>(pipe_.funcs.size()),
            "bad output handle");
  if (!pipe_.is_output(h.index)) pipe_.outputs.push_back(h.index);
}

Pipeline PipelineBuilder::build() {
  pipe_.validate();
  Pipeline out = std::move(pipe_);
  pipe_ = Pipeline{};
  pipe_.ndim = out.ndim;
  return out;
}

}  // namespace polymg::ir
