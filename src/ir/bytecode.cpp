#include "polymg/ir/bytecode.hpp"

#include "polymg/common/error.hpp"

namespace polymg::ir {

namespace {

void emit(const Expr& e, Bytecode& out) {
  switch (e->kind) {
    case ExprKind::Const: {
      BcOp op{BcKind::PushConst};
      op.c = e->value;
      out.push_back(op);
      return;
    }
    case ExprKind::Load: {
      BcOp op{BcKind::Load};
      op.slot = e->slot;
      op.idx = e->idx;
      out.push_back(op);
      return;
    }
    case ExprKind::Neg:
      emit(e->lhs, out);
      out.push_back(BcOp{BcKind::Neg});
      return;
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Div: {
      emit(e->lhs, out);
      emit(e->rhs, out);
      const BcKind k = e->kind == ExprKind::Add   ? BcKind::Add
                       : e->kind == ExprKind::Sub ? BcKind::Sub
                       : e->kind == ExprKind::Mul ? BcKind::Mul
                                                  : BcKind::Div;
      out.push_back(BcOp{k});
      return;
    }
  }
  PMG_CHECK(false, "unhandled expr kind");
}

}  // namespace

Bytecode compile_bytecode(const Expr& e) {
  PMG_CHECK(e != nullptr, "compile_bytecode(null)");
  Bytecode bc;
  emit(e, bc);
  return bc;
}

int stack_depth(const Bytecode& bc) {
  int depth = 0, max_depth = 0;
  for (const BcOp& op : bc) {
    switch (op.kind) {
      case BcKind::PushConst:
      case BcKind::Load:
        ++depth;
        break;
      case BcKind::Neg:
        break;  // pop 1 push 1
      default:
        --depth;  // pop 2 push 1
        break;
    }
    max_depth = std::max(max_depth, depth);
    PMG_CHECK(depth >= 1, "malformed bytecode (stack underflow)");
  }
  PMG_CHECK(depth == 1, "malformed bytecode (unbalanced stack)");
  return max_depth;
}

}  // namespace polymg::ir
