#include "polymg/service/plan_cache.hpp"

#include <sstream>

#include "polymg/codegen/jit.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::service {

std::string PlanCache::signature(const solvers::CycleConfig& cfg,
                                 const opt::CompileOptions& opts) {
  std::ostringstream os;
  os << "d" << cfg.ndim << " n" << cfg.n << " L" << cfg.levels << " k"
     << static_cast<int>(cfg.kind) << " s" << cfg.n1 << "/" << cfg.n2 << "/"
     << cfg.n3 << " w" << cfg.omega << " sm"
     << static_cast<int>(cfg.smoother) << " gw" << cfg.gsrb_omega << " cf"
     << cfg.cheby_fraction;
  const poly::TileSizes t = opts.resolved_tile(cfg.ndim);
  os << " | " << opt::to_string(opts.variant) << " t" << t[0] << "x" << t[1]
     << "x" << t[2] << " g" << opts.group_limit << " ov"
     << opts.overlap_threshold << " r" << opts.intra_group_reuse
     << opts.inter_group_reuse << opts.pooled_allocation << opts.collapse
     << opts.register_engine << opts.dependence_schedule << " sc"
     << opts.storage_class_slack << " dt" << opts.dtile_time_block << "/"
     << opts.dtile_width << " sg" << opts.serial_grain << " j"
     << opt::to_string(opts.jit) << " p"
     << opt::to_string(opts.precision.mode) << "/"
     << opts.precision.crossover;
  return os.str();
}

std::shared_ptr<const opt::CompiledPipeline> PlanCache::plan_for(
    const solvers::CycleConfig& cfg, const opt::CompileOptions& opts) {
  const std::string key = signature(cfg, opts);
  auto& m = obs::Metrics::instance();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    m.counter("service.plan_hits").add(1);
    return it->second;
  }
  ++misses_;
  m.counter("service.plan_misses").add(1);
  // Compile under the lock: a cold signature hit by many workers at once
  // should compile once, not once per worker. Validation happens here so
  // every consumer can adopt the plan without re-checking.
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(cfg), opts);
  opt::validate_plan(cp);
  // Specialize before publishing: every worker adopting this shared
  // plan gets the native kernels without touching the JIT cache again
  // (warm service hits mean zero recompiles, same as zero opt.compiles).
  if (cp.opts.jit != opt::JitMode::Off) codegen::jit_specialize(cp);
  auto sp = std::make_shared<const opt::CompiledPipeline>(std::move(cp));
  cache_.emplace(key, sp);
  return sp;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace polymg::service
