// SolveService — a deadline-aware multi-tenant solve front end.
//
// The library so far solves one problem at a time for one caller. A
// service deployment looks different: many tenants submit Poisson solves
// against a handful of problem signatures, each request carries a
// deadline, and the host is routinely oversubscribed. This layer turns
// the guarded solver into that service:
//
//  * requests resolve their compiled plan through a signature-keyed
//    PlanCache (compile once, serve many — a cache hit performs zero
//    opt::compile calls);
//  * a bounded worker pool executes solves, each worker keeping a
//    persistent per-signature session (GuardedExecutor + checkpoint
//    pool) so steady-state serving reuses pool pages and scheduler
//    state across requests;
//  * every request gets a CancelToken armed with its absolute deadline
//    at ADMISSION — queue time counts against the deadline — which the
//    executor polls at tile granularity, so a deadline trip returns the
//    best iterate completed so far instead of hanging;
//  * admission control bounds the queue and each tenant's in-flight
//    share; a shed request is rejected immediately with a retry-after
//    hint rather than queued to miss its deadline;
//  * transient worker faults (site service.reject) are retried with
//    jittered exponential backoff; injected stalls (service.slow) model
//    noisy neighbours and are bounded by the deadline machinery;
//  * under overload the service degrades before it sheds: past a queue
//    fill threshold it relaxes tolerances, past a higher one it also
//    caps cycles (DESIGN.md §10 has the policy table);
//  * a supervisor thread watches per-worker progress heartbeats and
//    self-heals stalls with an escalation ladder — cooperative cancel,
//    session quarantine, declare the worker lost and spawn a
//    replacement — and shutdown() drains with a deadline instead of
//    joining unconditionally (DESIGN.md §15);
//  * every request is observable (DESIGN.md §14): queue/solve/e2e
//    latency lands in lock-free histograms (aggregate and per tenant),
//    per-tenant SLO gauges track deadline-hit/shed ratios and
//    error-budget burn, the ticket rides through the executor span
//    context so a trace nests each request's tile/stage spans under its
//    RequestSpan, and an optional scrape endpoint serves the whole
//    registry in Prometheus text format.
//
// Threading: workers are plain std::threads; each one runs its solves'
// OpenMP regions independently (deliberate oversubscription is the
// overload scenario the bench measures). Tracing's per-thread rings are
// single-writer per OMP thread id, which concurrent workers would share
// — run traced sessions with one worker; metrics and reports are safe
// at any worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "polymg/common/cancel.hpp"
#include "polymg/grid/buffer.hpp"
#include "polymg/obs/exposition.hpp"
#include "polymg/obs/histogram.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/service/plan_cache.hpp"
#include "polymg/solvers/guarded.hpp"

namespace polymg::service {

/// Service-wide knobs (admission, degradation, retry).
struct ServiceConfig {
  int workers = 2;                 ///< solve worker threads
  std::size_t queue_capacity = 16; ///< bounded admission queue
  /// Per-tenant cap on in-flight requests (queued + running); 0 = off.
  std::size_t tenant_quota = 8;

  // Retry with jittered exponential backoff for transient rejects
  // (fault site service.reject).
  int max_retries = 3;
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  std::uint64_t backoff_seed = 0x5eedULL;

  /// Injected stall length for fault site service.slow (slept in 1 ms
  /// slices that poll the request token, so a deadline still cuts it
  /// short).
  double slow_fault_ms = 20.0;

  /// retry-after hint scale: a rejected request is told to come back
  /// after retry_after_base_ms × (queued + 1) / workers.
  double retry_after_base_ms = 5.0;

  // Overload degradation ladder, evaluated from the queue fill fraction
  // observed when a request is dequeued (see DESIGN.md §10):
  //   fill < degrade_relax_fill          — serve as requested
  //   fill ≥ degrade_relax_fill          — relax rel_tol ×relax_tol_factor
  //   fill ≥ degrade_cap_fill            — also cap max_cycles
  //   (queue full at submit              — shed: reject + retry-after)
  double degrade_relax_fill = 0.5;
  double degrade_cap_fill = 0.75;
  double relax_tol_factor = 10.0;
  int capped_cycles = 8;

  // Self-healing supervision (DESIGN.md §15). The watchdog samples each
  // worker's progress heartbeat — bumped at every executor granule and
  // every solver cycle — and escalates a busy worker whose heartbeat
  // freezes: after stall_timeout_ms a cooperative cancel of the running
  // request (its result resolves SolveStalled + retry-after); after
  // 2×stall_timeout_ms a session quarantine (the worker's cached
  // executors are dropped and recompiled on next use, in case the wedge
  // lives in a specialized plan); after 3×stall_timeout_ms the worker is
  // declared lost — its request is completed WorkerLost by the
  // supervisor, the thread is detached and a replacement worker with a
  // fresh session is spawned.
  /// Heartbeat freeze that triggers stage 1 (ms); 0 disables the
  /// watchdog entirely — the default, so embedded and debugger-attached
  /// uses never fight an escalation ladder.
  double stall_timeout_ms = 0.0;
  double watchdog_poll_ms = 2.0;  ///< heartbeat sampling period
  /// Injected stall length for fault site solve.stall: an uncooperative
  /// busy-wait that deliberately ignores the request token (a livelock
  /// model) and yields only to the watchdog's kill escalation.
  double stall_fault_ms = 60000.0;

  // Bounded shutdown. Phase 1 drains: workers finish in-flight solves
  // and exit, waited up to shutdown_drain_ms. Phase 2 cancels whatever
  // is still running and waits shutdown_kill_grace_ms more. Stragglers
  // are detached — counted in service.leaked_workers and reported as a
  // RunReport warning — instead of blocking the caller forever.
  double shutdown_drain_ms = 60000.0;
  double shutdown_kill_grace_ms = 500.0;

  // Metrics exposition (obs/exposition.hpp). With metrics_port >= 0 the
  // service owns a scrape endpoint on 127.0.0.1:<metrics_port> (0 = pick
  // an ephemeral port, read it back via metrics_port()); a non-empty
  // metrics_unix_path additionally (or instead) serves the same payload
  // on a unix socket. Telemetry never fails a solve: a bind failure
  // leaves the service running with metrics_running() == false.
  int metrics_port = -1;
  std::string metrics_unix_path;

  /// Availability target behind the per-tenant error-budget burn gauge
  /// (service.tenant.<t>.slo.error_budget_burn_ppm): the budget is
  /// 1 - slo_target, bad events are deadline misses plus sheds, and a
  /// burn of 1e6 ppm means the tenant is consuming its budget exactly as
  /// fast as the target allows.
  double slo_target = 0.999;

  /// Base guard policy template for every solve (checkpoint cadence,
  /// monitor thresholds, ladder permissions, history_limit). The
  /// service fills in cancel/plans/session_executor/checkpoint_pool and
  /// the degradation overrides per request.
  solvers::GuardPolicy guard;
};

/// One solve request. `rhs` must cover the (n+2)^ndim fine domain of
/// `cfg`; the initial guess is zero.
struct SolveRequest {
  solvers::CycleConfig cfg;
  opt::CompileOptions opts;
  grid::Buffer rhs;
  double rel_tol = 1e-8;
  std::string tenant = "default";
  /// Relative deadline in milliseconds from ADMISSION (0 = none). Queue
  /// time counts: a request that waits its whole budget is abandoned at
  /// dequeue without touching a core.
  double deadline_ms = 0.0;
  /// Larger runs earlier among queued requests (FIFO within a class).
  int priority = 0;
};

/// The outcome handed back by wait().
struct SolveResult {
  /// Generic = served (check `converged`); Overloaded = shed at
  /// admission or resource-exhausted while serving (see retry_after_ms);
  /// DeadlineExceeded / Cancelled = stopped, `iterate` holds the best
  /// completed iterate; SolveStalled = the watchdog ended a solve whose
  /// heartbeat froze; WorkerLost = the serving worker stopped responding
  /// entirely and was replaced. Both supervision statuses carry a
  /// retry_after_ms hint — the problem was the replica, not the request.
  ErrorCode status = ErrorCode::Generic;
  bool converged = false;
  solvers::SolveReport report;   ///< full guarded-solve account
  grid::Buffer iterate;          ///< final iterate (empty when shed)
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  /// Admission-to-completion wall time — the exact sample recorded into
  /// the service.e2e_ns histogram, so callers can cross-check histogram
  /// quantiles against sorted per-request latencies.
  double e2e_ms = 0.0;
  /// How far past its deadline the request finished (0 when met) — the
  /// bench asserts this stays within one tile-stage granule.
  double deadline_overshoot_ms = 0.0;
  double retry_after_ms = 0.0;   ///< when status == Overloaded
  int retries = 0;               ///< transient-reject retries consumed
  bool degraded = false;         ///< overload ladder touched this solve
  std::string degradation;       ///< which rung ("relaxed tol", ...)
};

/// Per-tenant roll-up (attach_tenants renders these into a RunReport).
struct TenantStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t deadline_hits = 0;
  std::int64_t cancelled = 0;
  std::int64_t degraded = 0;
  std::int64_t stalled = 0;  ///< watchdog interventions (SolveStalled/WorkerLost)
  std::int64_t cycles = 0;
  double solve_ms = 0.0;
};

class SolveService {
public:
  explicit SolveService(ServiceConfig cfg);
  ~SolveService();  ///< shutdown(); queued-but-unserved requests cancel
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission verdict. A rejected request was NOT queued: resubmit
  /// after retry_after_ms (the fault-injection retry loop in the bench
  /// does exactly this).
  struct Admission {
    bool admitted = false;
    std::uint64_t ticket = 0;      ///< valid only when admitted
    ErrorCode reason = ErrorCode::Generic;  ///< Overloaded on reject
    double retry_after_ms = 0.0;
  };

  /// Admission control: tenant quota, then queue bound. O(queue) under
  /// one lock; never blocks on solving.
  Admission submit(SolveRequest req);

  /// Block until the ticket's solve finishes (or is shed/cancelled) and
  /// surrender the result. Each ticket can be waited on exactly once;
  /// an unknown ticket throws Error(PreconditionViolated).
  SolveResult wait(std::uint64_t ticket);

  /// Request cooperative cancellation. True if the ticket was still
  /// pending (queued or running) — wait() then returns status
  /// Cancelled. Idempotent; false for finished or unknown tickets.
  bool cancel(std::uint64_t ticket);

  /// Stop admitting, cancel queued-but-unstarted requests, then drain
  /// with a deadline: workers get shutdown_drain_ms to finish in-flight
  /// solves, then their tokens are cancelled and kill flags set with
  /// shutdown_kill_grace_ms more; a worker still stuck after that is
  /// DETACHED (counted in service.leaked_workers, surfaced as a
  /// RunReport warning by attach_tenants) and its request completed
  /// WorkerLost, so shutdown() returns in bounded time no matter what a
  /// worker is doing. Idempotent; the destructor calls it.
  void shutdown();

  /// Workers detached by shutdown() because they refused to exit.
  int leaked_workers() const;

  std::size_t queue_depth() const;
  PlanCache& plans() { return plans_; }
  std::map<std::string, TenantStats> tenant_stats() const;
  /// Render per-tenant roll-ups into rr.tenant_lines.
  void attach_tenants(obs::RunReport& rr) const;

  /// Bound TCP port of the scrape endpoint (-1 when not serving TCP —
  /// not configured, or the bind failed).
  int metrics_port() const;
  /// Whether the scrape endpoint is serving on any transport.
  bool metrics_running() const;

private:
  struct Job;

  /// Per-tenant observability handles (latency histograms + SLO gauges),
  /// resolved once per tenant from the Metrics registry and cached here
  /// so the serving path records through raw pointers.
  struct TenantObs {
    obs::Histogram* queue_ns = nullptr;  // service.tenant.<t>.queue_ns
    obs::Histogram* solve_ns = nullptr;  // service.tenant.<t>.solve_ns
    obs::Histogram* e2e_ns = nullptr;    // service.tenant.<t>.e2e_ns
    obs::Gauge* hit_ppm = nullptr;   // ..slo.deadline_hit_ppm
    obs::Gauge* shed_ppm = nullptr;  // ..slo.shed_ppm
    obs::Gauge* burn_ppm = nullptr;  // ..slo.error_budget_burn_ppm
  };

  /// Per-worker supervision handle, shared between the worker thread,
  /// the watchdog and shutdown(). shared_ptr ownership: a detached
  /// (lost/leaked) thread keeps its control block and session alive
  /// after the service has replaced or destroyed its slot.
  struct WorkerCtl;
  struct WorkerSession;

  void worker_main(std::shared_ptr<WorkerCtl> ctl,
                   std::shared_ptr<WorkerSession> ws);
  void serve(Job& job, WorkerCtl& ctl, WorkerSession& ws, double fill);
  void supervisor_loop();
  /// Stage-3 escalation and shutdown orphan cleanup: complete `job` as
  /// `code` on the supervisor's thread so the waiter unblocks even
  /// though the worker never will. Caller holds mu_.
  void complete_abandoned_locked(const std::shared_ptr<Job>& job,
                                 ErrorCode code, int slot);
  double retry_after_locked() const;
  TenantObs& tenant_obs_locked(const std::string& tenant);
  void update_slo_locked(const TenantStats& ts, TenantObs& to) const;
  /// Sleep `ms` in 1 ms slices, polling `tok`; false if it tripped.
  /// `beat` (optional) is bumped every slice so a deliberate sleep
  /// (retry backoff, injected service.slow) reads as progress to the
  /// watchdog, not as a stall.
  static bool interruptible_sleep_ms(double ms, const CancelToken& tok,
                                     std::atomic<std::uint64_t>* beat =
                                         nullptr);

  ServiceConfig cfg_;
  PlanCache plans_;

  mutable std::mutex mu_;
  std::condition_variable cv_worker_;  ///< queue became non-empty / stop
  std::condition_variable cv_done_;    ///< some job finished
  std::deque<std::shared_ptr<Job>> queue_;          // priority-ordered
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::size_t> inflight_;     // per-tenant
  std::map<std::string, TenantStats> tenants_;
  std::map<std::string, TenantObs> tenant_obs_;  // guarded by mu_
  std::uint64_t next_ticket_ = 1;
  bool stopping_ = false;

  // Aggregate latency histograms (service.{queue,solve,e2e}_ns),
  // resolved once at construction.
  obs::Histogram* hist_queue_ns_ = nullptr;
  obs::Histogram* hist_solve_ns_ = nullptr;
  obs::Histogram* hist_e2e_ns_ = nullptr;
  std::unique_ptr<obs::ScrapeEndpoint> scrape_;

  /// Per-worker state, slot-indexed. A slot's thread/ctl/session are
  /// replaced together when the watchdog declares the worker lost; the
  /// old (detached) thread keeps the old ctl/session alive through its
  /// captured shared_ptrs.
  std::vector<std::shared_ptr<WorkerCtl>> ctls_;          // guarded by mu_
  std::vector<std::shared_ptr<WorkerSession>> sessions_;  // guarded by mu_
  std::vector<std::thread> workers_;                      // guarded by mu_
  int leaked_workers_ = 0;  // guarded by mu_
  std::thread supervisor_;
  std::atomic<bool> supervisor_stop_{false};
};

}  // namespace polymg::service
