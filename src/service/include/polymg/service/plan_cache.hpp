// PlanCache — compile once, serve many.
//
// The DSL's value proposition inverts at serving time: plan compilation
// (grouping search, tile-region precomputation, schedule construction) is
// worth seconds of solving, but a multi-tenant service sees the same few
// problem signatures thousands of times. The cache keys a compiled,
// validated CompiledPipeline by the full (CycleConfig, CompileOptions)
// signature; hits hand out a shared_ptr the per-worker executors copy
// from, so a cache hit performs zero opt::compile calls (asserted by the
// service tests via the "opt.compiles" counter).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "polymg/solvers/guarded.hpp"

namespace polymg::service {

class PlanCache : public solvers::PlanProvider {
public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan for (cfg, opts), compiling + validating on the
  /// first miss. Thread-safe; concurrent misses of the same signature
  /// serialize on the cache mutex so a signature compiles exactly once.
  /// A plan that fails validation is NOT cached and the Error
  /// propagates — the caller's guarded_solve treats it like any compile
  /// failure.
  std::shared_ptr<const opt::CompiledPipeline> plan_for(
      const solvers::CycleConfig& cfg,
      const opt::CompileOptions& opts) override;

  /// Stable textual signature of a problem/compilation pair — every
  /// field that changes the compiled plan is folded in, so two requests
  /// share a plan iff their signatures match.
  static std::string signature(const solvers::CycleConfig& cfg,
                               const opt::CompileOptions& opts);

  std::size_t size() const;
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const opt::CompiledPipeline>> cache_;
  std::int64_t hits_ = 0;    // guarded by mu_
  std::int64_t misses_ = 0;  // guarded by mu_
};

}  // namespace polymg::service
