#include "polymg/service/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/runtime/guarded.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() /
         1e6;
}

}  // namespace

/// One admitted request's full lifecycle state. The queue and jobs_ map
/// share ownership; wait() surrenders the result and drops the map's
/// reference.
struct SolveService::Job {
  std::uint64_t id = 0;
  int tenant_ix = 0;
  SolveRequest req;
  CancelToken token;
  Clock::time_point submitted{};
  /// Trace timestamp of admission (-1 without an active session) — the
  /// start of the RequestQueueWait span closed at dequeue.
  std::int64_t trace_t0 = -1;
  enum class State { Queued, Running, Done } state = State::Queued;
  SolveResult result;
  /// Watchdog stage 1 marked this job stalled: the worker's completion
  /// path rewrites a cancel-shaped outcome to SolveStalled. Guarded by
  /// mu_.
  bool stalled = false;
  /// The supervisor (stage 3) or bounded shutdown completed this job on
  /// the waiter's behalf; `final` — not `result` — holds the outcome.
  /// The abandoned worker may still be scribbling into `result`, which
  /// nobody reads after this flips. Guarded by mu_.
  bool abandoned = false;
  SolveResult final;
};

/// Supervision handle shared by a worker thread, the watchdog and
/// shutdown(). The heartbeat is the worker's progress epoch: bumped by
/// every executor granule (via GuardPolicy::progress), every solver
/// cycle and every deliberate-sleep slice. All fields are atomics so the
/// watchdog samples without touching mu_ on the worker's hot path.
struct SolveService::WorkerCtl {
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> job_id{0};     ///< current job, 0 = idle
  std::atomic<bool> quarantine{false};      ///< stage 2: drop session state
  std::atomic<bool> killed{false};          ///< stage 3 / shutdown: abandon
  std::atomic<bool> exited{false};          ///< worker_main returned
};

/// Per-worker persistent serving state. Touched only by its own worker
/// thread, so none of it needs locking: the checkpoint pool keeps its
/// slot buffers warm across requests, and each problem signature keeps
/// a session GuardedExecutor whose Executor state (pool pages,
/// scheduler arrays, per-thread workspaces) is reused by every solve of
/// that signature on this worker.
struct SolveService::WorkerSession {
  runtime::MemoryPool ckpt_pool;
  std::map<std::string, std::unique_ptr<runtime::GuardedExecutor>> executors;
  Rng rng{0};
};

SolveService::SolveService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  PMG_CHECK_CODE(cfg_.workers > 0, ErrorCode::PreconditionViolated,
                 "service needs at least one worker");
  PMG_CHECK_CODE(cfg_.queue_capacity > 0, ErrorCode::PreconditionViolated,
                 "service queue capacity must be positive");
  auto& m = obs::Metrics::instance();
  hist_queue_ns_ = &m.histogram("service.queue_ns");
  hist_solve_ns_ = &m.histogram("service.solve_ns");
  hist_e2e_ns_ = &m.histogram("service.e2e_ns");
  if (cfg_.metrics_port >= 0 || !cfg_.metrics_unix_path.empty()) {
    obs::ScrapeEndpoint::Options so;
    so.tcp_port = cfg_.metrics_port;
    so.unix_path = cfg_.metrics_unix_path;
    scrape_ = std::make_unique<obs::ScrapeEndpoint>(so);
  }
  sessions_.reserve(static_cast<std::size_t>(cfg_.workers));
  ctls_.reserve(static_cast<std::size_t>(cfg_.workers));
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int wi = 0; wi < cfg_.workers; ++wi) {
    auto ws = std::make_shared<WorkerSession>();
    ws->rng = Rng(cfg_.backoff_seed + static_cast<std::uint64_t>(wi) * 1000003ULL);
    sessions_.push_back(std::move(ws));
    ctls_.push_back(std::make_shared<WorkerCtl>());
  }
  for (int wi = 0; wi < cfg_.workers; ++wi) {
    auto ctl = ctls_[static_cast<std::size_t>(wi)];
    auto ws = sessions_[static_cast<std::size_t>(wi)];
    workers_.emplace_back([this, ctl, ws] { worker_main(ctl, ws); });
  }
  if (cfg_.stall_timeout_ms > 0.0) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

int SolveService::leaked_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leaked_workers_;
}

double SolveService::retry_after_locked() const {
  return cfg_.retry_after_base_ms *
         (static_cast<double>(queue_.size()) + 1.0) /
         static_cast<double>(cfg_.workers);
}

int SolveService::metrics_port() const {
  return scrape_ != nullptr ? scrape_->port() : -1;
}

bool SolveService::metrics_running() const {
  return scrape_ != nullptr && scrape_->running();
}

SolveService::TenantObs& SolveService::tenant_obs_locked(
    const std::string& tenant) {
  auto it = tenant_obs_.find(tenant);
  if (it != tenant_obs_.end()) return it->second;
  auto& m = obs::Metrics::instance();
  const std::string base = "service.tenant." + tenant + ".";
  TenantObs to;
  to.queue_ns = &m.histogram(base + "queue_ns");
  to.solve_ns = &m.histogram(base + "solve_ns");
  to.e2e_ns = &m.histogram(base + "e2e_ns");
  to.hit_ppm = &m.gauge(base + "slo.deadline_hit_ppm");
  to.shed_ppm = &m.gauge(base + "slo.shed_ppm");
  to.burn_ppm = &m.gauge(base + "slo.error_budget_burn_ppm");
  return tenant_obs_.emplace(tenant, to).first->second;
}

void SolveService::update_slo_locked(const TenantStats& ts,
                                     TenantObs& to) const {
  if (ts.submitted <= 0) return;
  const double submitted = static_cast<double>(ts.submitted);
  const double hit_ratio =
      ts.completed > 0
          ? static_cast<double>(ts.deadline_hits) /
                static_cast<double>(ts.completed)
          : 0.0;
  const double shed_ratio = static_cast<double>(ts.rejected) / submitted;
  // Bad events against the availability target: deadline misses and
  // sheds both count — a shed request got no service at all. Burn rate
  // 1.0 (== 1e6 ppm) consumes the error budget exactly as fast as the
  // target allows; > 1e6 ppm means the tenant is on track to violate it.
  const double bad =
      static_cast<double>(ts.deadline_hits + ts.rejected) / submitted;
  const double budget = std::max(1.0 - cfg_.slo_target, 1e-9);
  to.hit_ppm->set(static_cast<std::int64_t>(hit_ratio * 1e6));
  to.shed_ppm->set(static_cast<std::int64_t>(shed_ratio * 1e6));
  to.burn_ppm->set(static_cast<std::int64_t>(bad / budget * 1e6));
}

SolveService::Admission SolveService::submit(SolveRequest req) {
  auto& m = obs::Metrics::instance();
  std::unique_lock<std::mutex> lk(mu_);
  TenantStats& ts = tenants_[req.tenant];
  ++ts.submitted;
  // Tenant index = registration order; stable for the service lifetime
  // (used as the `group` coordinate of request trace events).
  const int tix =
      static_cast<int>(std::distance(tenants_.begin(),
                                     tenants_.find(req.tenant)));

  Admission a;
  const bool quota_hit =
      cfg_.tenant_quota > 0 && inflight_[req.tenant] >= cfg_.tenant_quota;
  if (stopping_ || quota_hit || queue_.size() >= cfg_.queue_capacity) {
    // Shed NOW with a hint instead of queueing into a missed deadline.
    a.admitted = false;
    a.reason = ErrorCode::Overloaded;
    a.retry_after_ms = retry_after_locked();
    ++ts.rejected;
    m.counter(quota_hit ? "service.rejected_quota" : "service.rejected")
        .add(1);
    update_slo_locked(ts, tenant_obs_locked(req.tenant));
    PMG_TRACE_INSTANT(RequestReject, tix, quota_hit ? 1 : 0,
                      static_cast<int>(next_ticket_), a.retry_after_ms);
    return a;
  }

  auto job = std::make_shared<Job>();
  job->id = next_ticket_++;
  job->tenant_ix = tix;
  job->req = std::move(req);
  job->submitted = Clock::now();
  PMG_TRACE_NOW(trace_t0);
  job->trace_t0 = trace_t0;
  // The deadline clock starts at admission — queue time counts.
  if (job->req.deadline_ms > 0.0) {
    job->token.set_deadline_after_ms(job->req.deadline_ms);
  }
  ++inflight_[job->req.tenant];
  ++ts.admitted;
  m.counter("service.admitted").add(1);

  // Priority order, FIFO within a class: insert before the first queued
  // job of strictly lower priority.
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [&](const std::shared_ptr<Job>& j) {
                            return j->req.priority < job->req.priority;
                          });
  queue_.insert(pos, job);
  jobs_.emplace(job->id, job);
  a.admitted = true;
  a.ticket = job->id;
  PMG_TRACE_INSTANT(RequestAdmit, tix, -1, static_cast<int>(job->id),
                    static_cast<double>(queue_.size()));
  lk.unlock();
  cv_worker_.notify_one();
  return a;
}

bool SolveService::cancel(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end() || it->second->state == Job::State::Done) {
    return false;
  }
  Job& job = *it->second;
  job.token.cancel();
  PMG_TRACE_INSTANT(RequestCancel, job.tenant_ix,
                    job.state == Job::State::Running ? 1 : 0,
                    static_cast<int>(ticket), 0.0);
  obs::Metrics::instance().counter("service.cancel_requests").add(1);
  return true;
}

SolveResult SolveService::wait(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = jobs_.find(ticket);
  PMG_CHECK_CODE(it != jobs_.end(), ErrorCode::PreconditionViolated,
                 "unknown or already-waited ticket " << ticket);
  std::shared_ptr<Job> job = it->second;
  cv_done_.wait(lk, [&] { return job->state == Job::State::Done; });
  jobs_.erase(ticket);
  // A supervisor-completed job surrenders `final`: the worker the
  // supervisor gave up on may still be writing into `result`.
  return std::move(job->abandoned ? job->final : job->result);
}

std::size_t SolveService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::map<std::string, TenantStats> SolveService::tenant_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_;
}

void SolveService::attach_tenants(obs::RunReport& rr) const {
  const std::map<std::string, TenantStats> stats = tenant_stats();
  rr.tenant_lines.clear();
  for (const auto& [name, t] : stats) {
    std::ostringstream os;
    os << name << ": " << t.submitted << " submitted, " << t.admitted
       << " admitted, " << t.rejected << " rejected, " << t.completed
       << " completed";
    if (t.deadline_hits > 0) os << ", " << t.deadline_hits << " deadline";
    if (t.cancelled > 0) os << ", " << t.cancelled << " cancelled";
    if (t.degraded > 0) os << ", " << t.degraded << " degraded";
    if (t.stalled > 0) os << ", " << t.stalled << " stalled";
    os << ", " << t.cycles << " cycle(s), " << t.solve_ms << " ms solving";
    rr.tenant_lines.push_back(os.str());
  }
  const int leaked = leaked_workers();
  if (leaked > 0) {
    rr.warnings.push_back(
        "service shutdown detached " + std::to_string(leaked) +
        " stuck worker thread(s) — see the service.leaked_workers counter");
  }
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    // Queued-but-unstarted requests will never run: resolve them as
    // cancelled so their waiters unblock.
    for (const std::shared_ptr<Job>& job : queue_) {
      job->token.cancel();
      job->result.status = ErrorCode::Cancelled;
      job->result.queue_ms = ms_since(job->submitted);
      job->state = Job::State::Done;
      TenantStats& ts = tenants_[job->req.tenant];
      ++ts.cancelled;
      ++ts.completed;
      --inflight_[job->req.tenant];
    }
    queue_.clear();
  }
  cv_worker_.notify_all();
  cv_done_.notify_all();
  // The supervisor is always cooperative: join unconditionally.
  supervisor_stop_.store(true, std::memory_order_relaxed);
  if (supervisor_.joinable()) supervisor_.join();

  const auto all_exited = [&] {
    for (const auto& c : ctls_) {
      if (!c->exited.load(std::memory_order_acquire)) return false;
    }
    return true;
  };
  const auto wait_exit = [&](double budget_ms) {
    const auto t0 = Clock::now();
    while (!all_exited() && ms_since(t0) < budget_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      cv_worker_.notify_all();
    }
    return all_exited();
  };
  // Phase 1: bounded drain — workers finish their in-flight solves and
  // exit once the queue is empty.
  bool clean = wait_exit(std::max(0.0, cfg_.shutdown_drain_ms));
  if (!clean) {
    // Phase 2: cancel whatever is still running and set kill flags (the
    // injected-stall loop and any future uncooperative path poll them),
    // then grant a short grace.
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [id, job] : jobs_) {
        if (job->state == Job::State::Running) job->token.cancel();
      }
      for (const auto& c : ctls_) c->killed.store(true, std::memory_order_relaxed);
    }
    clean = wait_exit(std::max(0.0, cfg_.shutdown_kill_grace_ms));
  }
  // Phase 3: join the exited, detach the stuck. A detached thread holds
  // shared_ptrs to its ctl and session, so the service can be destroyed
  // safely behind it; its job (if any) is completed WorkerLost here so
  // no waiter blocks on a thread that will never answer.
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto& m = obs::Metrics::instance();
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      std::thread& t = workers_[wi];
      if (!t.joinable()) continue;
      if (ctls_[wi]->exited.load(std::memory_order_acquire)) {
        lk.unlock();  // join without the lock: the thread's last steps may need it
        t.join();
        lk.lock();
      } else {
        t.detach();
        ++leaked_workers_;
        m.counter("service.leaked_workers").add(1);
        const std::uint64_t jid =
            ctls_[wi]->job_id.load(std::memory_order_relaxed);
        if (auto it = jobs_.find(jid); it != jobs_.end() &&
                                       it->second->state != Job::State::Done) {
          complete_abandoned_locked(it->second, ErrorCode::WorkerLost,
                                    static_cast<int>(wi));
        }
      }
    }
    workers_.clear();
  }
  cv_done_.notify_all();
}

bool SolveService::interruptible_sleep_ms(double ms, const CancelToken& tok,
                                          std::atomic<std::uint64_t>* beat) {
  double slept = 0.0;
  while (slept < ms) {
    if (tok.stop_requested()) return false;
    const double slice = std::min(1.0, ms - slept);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        slice));
    slept += slice;
    // A deliberate sleep is progress, not a stall: the watchdog must not
    // escalate a worker that is merely backing off or absorbing an
    // injected slow fault.
    if (beat != nullptr) beat->fetch_add(1, std::memory_order_relaxed);
  }
  return !tok.stop_requested();
}

void SolveService::serve(Job& job, WorkerCtl& ctl, WorkerSession& ws,
                         double fill) {
  auto& m = obs::Metrics::instance();
  SolveRequest& req = job.req;
  SolveResult& res = job.result;

  // --- Overload degradation ladder (decided from the queue fill seen at
  // --- dequeue; see DESIGN.md §10 for the policy table).
  double rel_tol = req.rel_tol;
  solvers::GuardPolicy pol = cfg_.guard;
  if (fill >= cfg_.degrade_relax_fill) {
    rel_tol *= cfg_.relax_tol_factor;
    res.degraded = true;
    res.degradation = "relaxed tol";
    if (fill >= cfg_.degrade_cap_fill) {
      pol.max_cycles = std::min(pol.max_cycles, cfg_.capped_cycles);
      res.degradation = "relaxed tol + capped cycles";
    }
    m.counter("service.degraded").add(1);
  }
  pol.cancel = &job.token;
  pol.plans = &plans_;
  pol.checkpoint_pool = &ws.ckpt_pool;
  // Request span context: every executor trace event of this solve —
  // including ladder rungs and reference fallbacks — carries the ticket.
  pol.trace_request = static_cast<std::int32_t>(job.id);
  // Progress heartbeat: every executor granule and solver cycle of this
  // solve bumps the worker's epoch, which the watchdog samples.
  pol.progress = &ctl.heartbeat;

  try {
    if (fault::should_fail(fault::kAllocFail)) {
      // Models service-side pool exhaustion: resolves Overloaded with a
      // retry-after hint below, never aborts the worker.
      m.counter("fault.alloc_fail").add(1);
      PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/11, 0.0);
      throw Error(ErrorCode::PoolExhausted,
                  "injected allocation failure (alloc.fail)");
    }
    // --- Per-worker session executor for this signature: compiled plan
    // --- from the cache (zero compiles on a warm signature), Executor
    // --- state reused across requests.
    const std::string sig = PlanCache::signature(req.cfg, req.opts);
    auto it = ws.executors.find(sig);
    if (it == ws.executors.end()) {
      auto plan = plans_.plan_for(req.cfg, req.opts);
      it = ws.executors
               .emplace(sig, std::make_unique<runtime::GuardedExecutor>(
                                 solvers::build_cycle(req.cfg), req.opts,
                                 std::move(plan)))
               .first;
    }
    pol.session_executor = it->second.get();

    // --- Problem assembly: zero guess, the request's right-hand side.
    solvers::PoissonProblem p;
    p.ndim = req.cfg.ndim;
    p.n = req.cfg.n;
    p.h = 1.0 / static_cast<double>(req.cfg.n + 1);
    std::size_t count = 1;
    for (int d = 0; d < p.ndim; ++d) {
      count *= static_cast<std::size_t>(p.n + 2);
    }
    PMG_CHECK_CODE(req.rhs.size() == count, ErrorCode::PreconditionViolated,
                   "rhs holds " << req.rhs.size() << " doubles, signature "
                                << sig << " needs " << count);
    p.v = grid::Buffer(count);
    p.v.fill(0.0);
    p.f = std::move(req.rhs);

    // --- Transient-fault loop: injected rejects retry with jittered
    // --- exponential backoff, injected stalls burn wall time in
    // --- token-polling slices. Both deterministic under the injector's
    // --- seeded RNG.
    int attempt = 0;
    for (;;) {
      if (fault::should_fail(fault::kServiceReject)) {
        m.counter("fault.service_reject").add(1);
        PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/6,
                          0.0);
        if (attempt >= cfg_.max_retries) {
          res.status = ErrorCode::Overloaded;
          res.retry_after_ms = cfg_.backoff_max_ms;
          return;
        }
        ++res.retries;
        m.counter("service.retries").add(1);
        double delay = std::min(cfg_.backoff_max_ms,
                                cfg_.backoff_base_ms *
                                    static_cast<double>(1L << attempt));
        delay *= 0.5 + 0.5 * ws.rng.next_double();  // full jitter band
        if (!interruptible_sleep_ms(delay, job.token, &ctl.heartbeat)) break;
        ++attempt;
        continue;
      }
      if (fault::should_fail(fault::kServiceSlow)) {
        m.counter("fault.service_slow").add(1);
        PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/7,
                          0.0);
        if (!interruptible_sleep_ms(cfg_.slow_fault_ms, job.token,
                                    &ctl.heartbeat)) {
          break;
        }
      }
      if (fault::should_fail(fault::kSolveStall)) {
        m.counter("fault.solve_stall").add(1);
        PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/9,
                          0.0);
        // Uncooperative stall: deliberately ignores the request token (a
        // stalled worker by definition stopped polling it) and freezes
        // the heartbeat. Only the watchdog's stage-3 kill flag — or the
        // stall running its injected course — ends it.
        const auto t0 = Clock::now();
        while (ms_since(t0) < cfg_.stall_fault_ms &&
               !ctl.killed.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (ctl.killed.load(std::memory_order_relaxed)) {
          res.status = ErrorCode::SolveStalled;
          return;
        }
      }
      break;
    }
    // A trip during backoff/stall falls through: guarded_solve's first
    // poll resolves it to the right status with the zero iterate.

    Timer t;
    res.report = solvers::guarded_solve(req.cfg, p, rel_tol, pol, req.opts);
    res.solve_ms = t.elapsed() * 1e3;
    res.converged = res.report.converged;
    res.status = res.report.status;
    res.iterate = std::move(p.v);
  } catch (const Error& e) {
    // Plan compilation / precondition failures surface as a served-but-
    // failed result rather than killing the worker. Resource exhaustion
    // maps to Overloaded + retry-after: the request was fine, the
    // replica was full.
    res.status = e.code();
    if (e.code() == ErrorCode::PoolExhausted) {
      res.status = ErrorCode::Overloaded;
      std::lock_guard<std::mutex> lk(mu_);
      res.retry_after_ms = retry_after_locked();
    }
    res.report.attempts.push_back(solvers::SolveAttempt{});
    res.report.attempts.back().threw = true;
    res.report.attempts.back().error = e.what();
  } catch (const std::exception& e) {
    // Catch-all: an unexpected exception must cost one request, never a
    // worker. Counted and traced so it cannot pass silently.
    m.counter("service.worker_exceptions").add(1);
    PMG_TRACE_INSTANT(WorkerException, job.tenant_ix, -1,
                      static_cast<int>(job.id), 0.0);
    res.status = ErrorCode::Generic;
    res.report.attempts.push_back(solvers::SolveAttempt{});
    res.report.attempts.back().threw = true;
    res.report.attempts.back().error = std::string("unexpected: ") + e.what();
  } catch (...) {
    m.counter("service.worker_exceptions").add(1);
    PMG_TRACE_INSTANT(WorkerException, job.tenant_ix, -1,
                      static_cast<int>(job.id), 0.0);
    res.status = ErrorCode::Generic;
    res.report.attempts.push_back(solvers::SolveAttempt{});
    res.report.attempts.back().threw = true;
    res.report.attempts.back().error = "unexpected non-standard exception";
  }
}

void SolveService::worker_main(std::shared_ptr<WorkerCtl> ctl,
                               std::shared_ptr<WorkerSession> ws) {
  auto& m = obs::Metrics::instance();
  try {
    for (;;) {
      std::shared_ptr<Job> job;
      double fill = 0.0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_worker_.wait(lk, [&] {
          return stopping_ || !queue_.empty() ||
                 ctl->killed.load(std::memory_order_relaxed);
        });
        if (ctl->killed.load(std::memory_order_relaxed)) break;
        if (queue_.empty()) break;  // stopping and drained
        job = queue_.front();
        queue_.pop_front();
        fill = static_cast<double>(queue_.size()) /
               static_cast<double>(cfg_.queue_capacity);
        job->state = Job::State::Running;
        ctl->job_id.store(job->id, std::memory_order_relaxed);
      }
      // Stage-2 quarantine: drop every cached session executor — the
      // next solve of each signature rebuilds from the (shared) plan
      // cache, in case the wedge lived in this worker's executor state.
      if (ctl->quarantine.exchange(false, std::memory_order_relaxed)) {
        ws->executors.clear();
      }
      job->result.queue_ms = ms_since(job->submitted);
      const std::int32_t rq = static_cast<std::int32_t>(job->id);
      PMG_TRACE_SPAN_R(RequestQueueWait, job->trace_t0, job->tenant_ix, -1,
                       static_cast<int>(job->id), job->result.queue_ms, rq);
      PMG_TRACE_NOW(span_t0);
      bool ran = false;

      if (job->token.stop_requested()) {
        // Abandoned while queued: the deadline burned out (or the caller
        // cancelled) before a worker was free — never touch a core.
        const bool cancelled = job->token.cancelled();
        job->result.status = cancelled ? ErrorCode::Cancelled
                                       : ErrorCode::DeadlineExceeded;
        if (!cancelled) {
          PMG_TRACE_INSTANT(DeadlineHit, job->tenant_ix, /*stage=*/0,
                            static_cast<int>(job->id),
                            -job->token.remaining_ns() / 1e6);
          m.counter("service.deadline_hits").add(1);
        }
      } else {
        serve(*job, *ctl, *ws, fill);
        ran = true;
        if (job->result.status == ErrorCode::DeadlineExceeded) {
          PMG_TRACE_INSTANT(DeadlineHit, job->tenant_ix, /*stage=*/2,
                            static_cast<int>(job->id),
                            -job->token.remaining_ns() / 1e6);
          m.counter("service.deadline_hits").add(1);
        }
      }
      if (job->token.has_deadline()) {
        const std::int64_t rem = job->token.remaining_ns();
        if (rem < 0 && rem != CancelToken::kNoDeadline) {
          job->result.deadline_overshoot_ms = -static_cast<double>(rem) / 1e6;
        }
      }
      PMG_TRACE_SPAN_R(RequestSpan, span_t0, job->tenant_ix, -1,
                       static_cast<int>(job->id), job->req.deadline_ms, rq);
      const double e2e_ms = ms_since(job->submitted);
      job->result.e2e_ms = e2e_ms;

      {
        std::lock_guard<std::mutex> lk(mu_);
        ctl->job_id.store(0, std::memory_order_relaxed);
        if (job->state == Job::State::Done) {
          // The supervisor already completed this job on the waiter's
          // behalf (stage 3 / shutdown) — this thread was presumed dead.
          // Its roll-ups are done; adding ours would double-count.
          continue;
        }
        if (job->stalled &&
            (job->result.status == ErrorCode::Cancelled ||
             job->result.status == ErrorCode::DeadlineExceeded ||
             job->result.status == ErrorCode::SolveStalled)) {
          // The watchdog — not the caller — ended this solve: surface it
          // as SolveStalled with a retry-after hint, since the fault was
          // the replica's, not the request's.
          job->result.status = ErrorCode::SolveStalled;
          job->result.retry_after_ms = retry_after_locked();
        }
        TenantStats& ts = tenants_[job->req.tenant];
        TenantObs& to = tenant_obs_locked(job->req.tenant);
        // Latency histograms: two relaxed atomic adds per observation —
        // recording under mu_ only piggybacks on the lock already held
        // for the roll-up, it does not need it. Abandoned-in-queue
        // requests never ran, so solve_ns stays a solve-only
        // distribution.
        const auto q_ns =
            static_cast<std::int64_t>(job->result.queue_ms * 1e6);
        const auto e_ns = static_cast<std::int64_t>(e2e_ms * 1e6);
        hist_queue_ns_->record(q_ns);
        to.queue_ns->record(q_ns);
        if (ran) {
          const auto s_ns =
              static_cast<std::int64_t>(job->result.solve_ms * 1e6);
          hist_solve_ns_->record(s_ns);
          to.solve_ns->record(s_ns);
        }
        hist_e2e_ns_->record(e_ns);
        to.e2e_ns->record(e_ns);
        ++ts.completed;
        if (job->result.status == ErrorCode::DeadlineExceeded) {
          ++ts.deadline_hits;
        }
        if (job->result.status == ErrorCode::Cancelled) ++ts.cancelled;
        if (job->result.status == ErrorCode::SolveStalled) ++ts.stalled;
        if (job->result.degraded) ++ts.degraded;
        ts.cycles += job->result.report.total_cycles;
        ts.solve_ms += job->result.solve_ms;
        --inflight_[job->req.tenant];
        job->state = Job::State::Done;
        m.counter("service.completed").add(1);
        update_slo_locked(ts, to);
      }
      cv_done_.notify_all();
      if (ctl->killed.load(std::memory_order_relaxed)) break;
    }
  } catch (...) {
    // A worker thread must never die silently (std::terminate on an
    // escaped exception would take the whole process): count, trace and
    // exit cleanly; the supervisor completes any orphaned job and spawns
    // a replacement.
    m.counter("service.worker_exceptions").add(1);
    PMG_TRACE_INSTANT(WorkerException, -1, -1,
                      static_cast<int>(
                          ctl->job_id.load(std::memory_order_relaxed)),
                      0.0);
  }
  ctl->exited.store(true, std::memory_order_release);
  cv_done_.notify_all();
}

void SolveService::complete_abandoned_locked(const std::shared_ptr<Job>& job,
                                             ErrorCode code, int slot) {
  auto& m = obs::Metrics::instance();
  job->abandoned = true;
  job->final.status = code;
  job->final.retry_after_ms = retry_after_locked();
  job->final.queue_ms = job->result.queue_ms;
  job->final.e2e_ms = ms_since(job->submitted);
  TenantStats& ts = tenants_[job->req.tenant];
  ++ts.completed;
  ++ts.stalled;
  --inflight_[job->req.tenant];
  job->state = Job::State::Done;
  m.counter("service.completed").add(1);
  update_slo_locked(ts, tenant_obs_locked(job->req.tenant));
  PMG_TRACE_INSTANT(WorkerLost, slot, -1, static_cast<int>(job->id), 0.0);
}

void SolveService::supervisor_loop() {
  auto& m = obs::Metrics::instance();
  obs::Histogram* detect_hist = &m.histogram("service.stall_detect_ns");
  struct SlotWatch {
    std::uint64_t job = 0;        ///< job the heartbeat belongs to
    std::uint64_t beat = 0;       ///< last sampled heartbeat value
    Clock::time_point changed{};  ///< when the heartbeat last moved
    int stage = 0;                ///< escalation rungs already taken
  };
  std::vector<SlotWatch> watch;
  const double poll_ms = std::max(0.5, cfg_.watchdog_poll_ms);
  while (!supervisor_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll_ms));
    std::unique_lock<std::mutex> lk(mu_);
    if (watch.size() != ctls_.size()) watch.resize(ctls_.size());
    for (std::size_t wi = 0; wi < ctls_.size(); ++wi) {
      WorkerCtl& ctl = *ctls_[wi];
      SlotWatch& w = watch[wi];
      const std::uint64_t jid = ctl.job_id.load(std::memory_order_relaxed);
      const std::uint64_t beat = ctl.heartbeat.load(std::memory_order_relaxed);
      if (jid == 0) {  // idle: nothing to supervise
        w.job = 0;
        w.stage = 0;
        continue;
      }
      if (jid != w.job || beat != w.beat) {  // new job or fresh progress
        w.job = jid;
        w.beat = beat;
        w.changed = Clock::now();
        w.stage = 0;
        continue;
      }
      const double frozen_ms = ms_since(w.changed);
      // Stage k fires once the heartbeat has been frozen k×timeout.
      if (frozen_ms < cfg_.stall_timeout_ms * (w.stage + 1)) continue;
      auto it = jobs_.find(jid);
      std::shared_ptr<Job> job =
          (it != jobs_.end() && it->second->state == Job::State::Running)
              ? it->second
              : nullptr;
      if (job == nullptr) {
        // The job finished between samples (wait() may already have
        // erased it); the next dequeue resets the watch.
        w.job = 0;
        w.stage = 0;
        continue;
      }
      ++w.stage;
      switch (w.stage) {
        case 1:
          // Stage 1 — cooperative: cancel the request's token. A solve
          // that merely forgot to converge honours it at the next
          // granule poll and resolves SolveStalled in the worker.
          job->stalled = true;
          job->token.cancel();
          m.counter("service.stalls_detected").add(1);
          detect_hist->record(static_cast<std::int64_t>(frozen_ms * 1e6));
          PMG_TRACE_INSTANT(StallDetected, static_cast<int>(wi), -1,
                            static_cast<int>(jid), frozen_ms);
          break;
        case 2:
          // Stage 2 — quarantine: the worker (if it ever dequeues again)
          // drops its cached executors; a wedge in specialized executor
          // state does not survive into the next request.
          ctl.quarantine.store(true, std::memory_order_relaxed);
          m.counter("service.sessions_quarantined").add(1);
          PMG_TRACE_INSTANT(SessionQuarantine, static_cast<int>(wi), -1,
                            static_cast<int>(jid), frozen_ms);
          break;
        default: {
          // Stage 3 — declare the worker lost: complete its request
          // WorkerLost so the waiter unblocks, detach the stuck thread
          // and spawn a replacement with a fresh control block and
          // session. The old thread keeps its ctl/session alive through
          // its captured shared_ptrs and exits at its next kill-flag
          // poll; if it never polls again, it is the leak the
          // service.workers_lost counter owns up to.
          ctl.killed.store(true, std::memory_order_relaxed);
          complete_abandoned_locked(job, ErrorCode::WorkerLost,
                                    static_cast<int>(wi));
          m.counter("service.workers_lost").add(1);
          if (workers_[wi].joinable()) workers_[wi].detach();
          auto nctl = std::make_shared<WorkerCtl>();
          auto nws = std::make_shared<WorkerSession>();
          nws->rng = Rng(cfg_.backoff_seed +
                         static_cast<std::uint64_t>(wi) * 1000003ULL + 17ULL);
          ctls_[wi] = nctl;
          sessions_[wi] = nws;
          workers_[wi] = std::thread([this, nctl, nws] {
            worker_main(nctl, nws);
          });
          w = SlotWatch{};
          break;
        }
      }
    }
    lk.unlock();
    cv_done_.notify_all();
    cv_worker_.notify_all();
  }
}

}  // namespace polymg::service
