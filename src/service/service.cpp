#include "polymg/service/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/runtime/guarded.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() /
         1e6;
}

}  // namespace

/// One admitted request's full lifecycle state. The queue and jobs_ map
/// share ownership; wait() surrenders the result and drops the map's
/// reference.
struct SolveService::Job {
  std::uint64_t id = 0;
  int tenant_ix = 0;
  SolveRequest req;
  CancelToken token;
  Clock::time_point submitted{};
  /// Trace timestamp of admission (-1 without an active session) — the
  /// start of the RequestQueueWait span closed at dequeue.
  std::int64_t trace_t0 = -1;
  enum class State { Queued, Running, Done } state = State::Queued;
  SolveResult result;
};

/// Per-worker persistent serving state. Touched only by its own worker
/// thread, so none of it needs locking: the checkpoint pool keeps its
/// slot buffers warm across requests, and each problem signature keeps
/// a session GuardedExecutor whose Executor state (pool pages,
/// scheduler arrays, per-thread workspaces) is reused by every solve of
/// that signature on this worker.
struct SolveService::WorkerSession {
  runtime::MemoryPool ckpt_pool;
  std::map<std::string, std::unique_ptr<runtime::GuardedExecutor>> executors;
  Rng rng{0};
};

SolveService::SolveService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  PMG_CHECK_CODE(cfg_.workers > 0, ErrorCode::PreconditionViolated,
                 "service needs at least one worker");
  PMG_CHECK_CODE(cfg_.queue_capacity > 0, ErrorCode::PreconditionViolated,
                 "service queue capacity must be positive");
  auto& m = obs::Metrics::instance();
  hist_queue_ns_ = &m.histogram("service.queue_ns");
  hist_solve_ns_ = &m.histogram("service.solve_ns");
  hist_e2e_ns_ = &m.histogram("service.e2e_ns");
  if (cfg_.metrics_port >= 0 || !cfg_.metrics_unix_path.empty()) {
    obs::ScrapeEndpoint::Options so;
    so.tcp_port = cfg_.metrics_port;
    so.unix_path = cfg_.metrics_unix_path;
    scrape_ = std::make_unique<obs::ScrapeEndpoint>(so);
  }
  sessions_.reserve(static_cast<std::size_t>(cfg_.workers));
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int wi = 0; wi < cfg_.workers; ++wi) {
    auto ws = std::make_unique<WorkerSession>();
    ws->rng = Rng(cfg_.backoff_seed + static_cast<std::uint64_t>(wi) * 1000003ULL);
    sessions_.push_back(std::move(ws));
  }
  for (int wi = 0; wi < cfg_.workers; ++wi) {
    workers_.emplace_back([this, wi] { worker_loop(wi); });
  }
}

SolveService::~SolveService() { shutdown(); }

double SolveService::retry_after_locked() const {
  return cfg_.retry_after_base_ms *
         (static_cast<double>(queue_.size()) + 1.0) /
         static_cast<double>(cfg_.workers);
}

int SolveService::metrics_port() const {
  return scrape_ != nullptr ? scrape_->port() : -1;
}

bool SolveService::metrics_running() const {
  return scrape_ != nullptr && scrape_->running();
}

SolveService::TenantObs& SolveService::tenant_obs_locked(
    const std::string& tenant) {
  auto it = tenant_obs_.find(tenant);
  if (it != tenant_obs_.end()) return it->second;
  auto& m = obs::Metrics::instance();
  const std::string base = "service.tenant." + tenant + ".";
  TenantObs to;
  to.queue_ns = &m.histogram(base + "queue_ns");
  to.solve_ns = &m.histogram(base + "solve_ns");
  to.e2e_ns = &m.histogram(base + "e2e_ns");
  to.hit_ppm = &m.gauge(base + "slo.deadline_hit_ppm");
  to.shed_ppm = &m.gauge(base + "slo.shed_ppm");
  to.burn_ppm = &m.gauge(base + "slo.error_budget_burn_ppm");
  return tenant_obs_.emplace(tenant, to).first->second;
}

void SolveService::update_slo_locked(const TenantStats& ts,
                                     TenantObs& to) const {
  if (ts.submitted <= 0) return;
  const double submitted = static_cast<double>(ts.submitted);
  const double hit_ratio =
      ts.completed > 0
          ? static_cast<double>(ts.deadline_hits) /
                static_cast<double>(ts.completed)
          : 0.0;
  const double shed_ratio = static_cast<double>(ts.rejected) / submitted;
  // Bad events against the availability target: deadline misses and
  // sheds both count — a shed request got no service at all. Burn rate
  // 1.0 (== 1e6 ppm) consumes the error budget exactly as fast as the
  // target allows; > 1e6 ppm means the tenant is on track to violate it.
  const double bad =
      static_cast<double>(ts.deadline_hits + ts.rejected) / submitted;
  const double budget = std::max(1.0 - cfg_.slo_target, 1e-9);
  to.hit_ppm->set(static_cast<std::int64_t>(hit_ratio * 1e6));
  to.shed_ppm->set(static_cast<std::int64_t>(shed_ratio * 1e6));
  to.burn_ppm->set(static_cast<std::int64_t>(bad / budget * 1e6));
}

SolveService::Admission SolveService::submit(SolveRequest req) {
  auto& m = obs::Metrics::instance();
  std::unique_lock<std::mutex> lk(mu_);
  TenantStats& ts = tenants_[req.tenant];
  ++ts.submitted;
  // Tenant index = registration order; stable for the service lifetime
  // (used as the `group` coordinate of request trace events).
  const int tix =
      static_cast<int>(std::distance(tenants_.begin(),
                                     tenants_.find(req.tenant)));

  Admission a;
  const bool quota_hit =
      cfg_.tenant_quota > 0 && inflight_[req.tenant] >= cfg_.tenant_quota;
  if (stopping_ || quota_hit || queue_.size() >= cfg_.queue_capacity) {
    // Shed NOW with a hint instead of queueing into a missed deadline.
    a.admitted = false;
    a.reason = ErrorCode::Overloaded;
    a.retry_after_ms = retry_after_locked();
    ++ts.rejected;
    m.counter(quota_hit ? "service.rejected_quota" : "service.rejected")
        .add(1);
    update_slo_locked(ts, tenant_obs_locked(req.tenant));
    PMG_TRACE_INSTANT(RequestReject, tix, quota_hit ? 1 : 0,
                      static_cast<int>(next_ticket_), a.retry_after_ms);
    return a;
  }

  auto job = std::make_shared<Job>();
  job->id = next_ticket_++;
  job->tenant_ix = tix;
  job->req = std::move(req);
  job->submitted = Clock::now();
  PMG_TRACE_NOW(trace_t0);
  job->trace_t0 = trace_t0;
  // The deadline clock starts at admission — queue time counts.
  if (job->req.deadline_ms > 0.0) {
    job->token.set_deadline_after_ms(job->req.deadline_ms);
  }
  ++inflight_[job->req.tenant];
  ++ts.admitted;
  m.counter("service.admitted").add(1);

  // Priority order, FIFO within a class: insert before the first queued
  // job of strictly lower priority.
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [&](const std::shared_ptr<Job>& j) {
                            return j->req.priority < job->req.priority;
                          });
  queue_.insert(pos, job);
  jobs_.emplace(job->id, job);
  a.admitted = true;
  a.ticket = job->id;
  PMG_TRACE_INSTANT(RequestAdmit, tix, -1, static_cast<int>(job->id),
                    static_cast<double>(queue_.size()));
  lk.unlock();
  cv_worker_.notify_one();
  return a;
}

bool SolveService::cancel(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end() || it->second->state == Job::State::Done) {
    return false;
  }
  Job& job = *it->second;
  job.token.cancel();
  PMG_TRACE_INSTANT(RequestCancel, job.tenant_ix,
                    job.state == Job::State::Running ? 1 : 0,
                    static_cast<int>(ticket), 0.0);
  obs::Metrics::instance().counter("service.cancel_requests").add(1);
  return true;
}

SolveResult SolveService::wait(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = jobs_.find(ticket);
  PMG_CHECK_CODE(it != jobs_.end(), ErrorCode::PreconditionViolated,
                 "unknown or already-waited ticket " << ticket);
  std::shared_ptr<Job> job = it->second;
  cv_done_.wait(lk, [&] { return job->state == Job::State::Done; });
  jobs_.erase(ticket);
  return std::move(job->result);
}

std::size_t SolveService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::map<std::string, TenantStats> SolveService::tenant_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_;
}

void SolveService::attach_tenants(obs::RunReport& rr) const {
  const std::map<std::string, TenantStats> stats = tenant_stats();
  rr.tenant_lines.clear();
  for (const auto& [name, t] : stats) {
    std::ostringstream os;
    os << name << ": " << t.submitted << " submitted, " << t.admitted
       << " admitted, " << t.rejected << " rejected, " << t.completed
       << " completed";
    if (t.deadline_hits > 0) os << ", " << t.deadline_hits << " deadline";
    if (t.cancelled > 0) os << ", " << t.cancelled << " cancelled";
    if (t.degraded > 0) os << ", " << t.degraded << " degraded";
    os << ", " << t.cycles << " cycle(s), " << t.solve_ms << " ms solving";
    rr.tenant_lines.push_back(os.str());
  }
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    // Queued-but-unstarted requests will never run: resolve them as
    // cancelled so their waiters unblock.
    for (const std::shared_ptr<Job>& job : queue_) {
      job->token.cancel();
      job->result.status = ErrorCode::Cancelled;
      job->result.queue_ms = ms_since(job->submitted);
      job->state = Job::State::Done;
      TenantStats& ts = tenants_[job->req.tenant];
      ++ts.cancelled;
      ++ts.completed;
      --inflight_[job->req.tenant];
    }
    queue_.clear();
  }
  cv_worker_.notify_all();
  cv_done_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

bool SolveService::interruptible_sleep_ms(double ms,
                                          const CancelToken& tok) {
  double slept = 0.0;
  while (slept < ms) {
    if (tok.stop_requested()) return false;
    const double slice = std::min(1.0, ms - slept);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        slice));
    slept += slice;
  }
  return !tok.stop_requested();
}

void SolveService::serve(Job& job, int wi, double fill) {
  auto& m = obs::Metrics::instance();
  SolveRequest& req = job.req;
  WorkerSession& ws = *sessions_[static_cast<std::size_t>(wi)];
  SolveResult& res = job.result;

  // --- Overload degradation ladder (decided from the queue fill seen at
  // --- dequeue; see DESIGN.md §10 for the policy table).
  double rel_tol = req.rel_tol;
  solvers::GuardPolicy pol = cfg_.guard;
  if (fill >= cfg_.degrade_relax_fill) {
    rel_tol *= cfg_.relax_tol_factor;
    res.degraded = true;
    res.degradation = "relaxed tol";
    if (fill >= cfg_.degrade_cap_fill) {
      pol.max_cycles = std::min(pol.max_cycles, cfg_.capped_cycles);
      res.degradation = "relaxed tol + capped cycles";
    }
    m.counter("service.degraded").add(1);
  }
  pol.cancel = &job.token;
  pol.plans = &plans_;
  pol.checkpoint_pool = &ws.ckpt_pool;
  // Request span context: every executor trace event of this solve —
  // including ladder rungs and reference fallbacks — carries the ticket.
  pol.trace_request = static_cast<std::int32_t>(job.id);

  try {
    // --- Per-worker session executor for this signature: compiled plan
    // --- from the cache (zero compiles on a warm signature), Executor
    // --- state reused across requests.
    const std::string sig = PlanCache::signature(req.cfg, req.opts);
    auto it = ws.executors.find(sig);
    if (it == ws.executors.end()) {
      auto plan = plans_.plan_for(req.cfg, req.opts);
      it = ws.executors
               .emplace(sig, std::make_unique<runtime::GuardedExecutor>(
                                 solvers::build_cycle(req.cfg), req.opts,
                                 std::move(plan)))
               .first;
    }
    pol.session_executor = it->second.get();

    // --- Problem assembly: zero guess, the request's right-hand side.
    solvers::PoissonProblem p;
    p.ndim = req.cfg.ndim;
    p.n = req.cfg.n;
    p.h = 1.0 / static_cast<double>(req.cfg.n + 1);
    std::size_t count = 1;
    for (int d = 0; d < p.ndim; ++d) {
      count *= static_cast<std::size_t>(p.n + 2);
    }
    PMG_CHECK_CODE(req.rhs.size() == count, ErrorCode::PreconditionViolated,
                   "rhs holds " << req.rhs.size() << " doubles, signature "
                                << sig << " needs " << count);
    p.v = grid::Buffer(count);
    p.v.fill(0.0);
    p.f = std::move(req.rhs);

    // --- Transient-fault loop: injected rejects retry with jittered
    // --- exponential backoff, injected stalls burn wall time in
    // --- token-polling slices. Both deterministic under the injector's
    // --- seeded RNG.
    int attempt = 0;
    for (;;) {
      if (fault::should_fail(fault::kServiceReject)) {
        m.counter("fault.service_reject").add(1);
        PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/6,
                          0.0);
        if (attempt >= cfg_.max_retries) {
          res.status = ErrorCode::Overloaded;
          res.retry_after_ms = cfg_.backoff_max_ms;
          return;
        }
        ++res.retries;
        m.counter("service.retries").add(1);
        double delay = std::min(cfg_.backoff_max_ms,
                                cfg_.backoff_base_ms *
                                    static_cast<double>(1L << attempt));
        delay *= 0.5 + 0.5 * ws.rng.next_double();  // full jitter band
        if (!interruptible_sleep_ms(delay, job.token)) break;
        ++attempt;
        continue;
      }
      if (fault::should_fail(fault::kServiceSlow)) {
        m.counter("fault.service_slow").add(1);
        PMG_TRACE_INSTANT(FaultInjected, job.tenant_ix, -1, /*site=*/7,
                          0.0);
        if (!interruptible_sleep_ms(cfg_.slow_fault_ms, job.token)) break;
      }
      break;
    }
    // A trip during backoff/stall falls through: guarded_solve's first
    // poll resolves it to the right status with the zero iterate.

    Timer t;
    res.report = solvers::guarded_solve(req.cfg, p, rel_tol, pol, req.opts);
    res.solve_ms = t.elapsed() * 1e3;
    res.converged = res.report.converged;
    res.status = res.report.status;
    res.iterate = std::move(p.v);
  } catch (const Error& e) {
    // Plan compilation / precondition failures surface as a served-but-
    // failed result rather than killing the worker.
    res.status = e.code();
    res.report.attempts.push_back(solvers::SolveAttempt{});
    res.report.attempts.back().threw = true;
    res.report.attempts.back().error = e.what();
  }
}

void SolveService::worker_loop(int wi) {
  auto& m = obs::Metrics::instance();
  for (;;) {
    std::shared_ptr<Job> job;
    double fill = 0.0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_worker_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = queue_.front();
      queue_.pop_front();
      fill = static_cast<double>(queue_.size()) /
             static_cast<double>(cfg_.queue_capacity);
      job->state = Job::State::Running;
    }
    job->result.queue_ms = ms_since(job->submitted);
    const std::int32_t rq = static_cast<std::int32_t>(job->id);
    PMG_TRACE_SPAN_R(RequestQueueWait, job->trace_t0, job->tenant_ix, -1,
                     static_cast<int>(job->id), job->result.queue_ms, rq);
    PMG_TRACE_NOW(span_t0);
    bool ran = false;

    if (job->token.stop_requested()) {
      // Abandoned while queued: the deadline burned out (or the caller
      // cancelled) before a worker was free — never touch a core.
      const bool cancelled = job->token.cancelled();
      job->result.status = cancelled ? ErrorCode::Cancelled
                                     : ErrorCode::DeadlineExceeded;
      if (!cancelled) {
        PMG_TRACE_INSTANT(DeadlineHit, job->tenant_ix, /*stage=*/0,
                          static_cast<int>(job->id),
                          -job->token.remaining_ns() / 1e6);
        m.counter("service.deadline_hits").add(1);
      }
    } else {
      serve(*job, wi, fill);
      ran = true;
      if (job->result.status == ErrorCode::DeadlineExceeded) {
        PMG_TRACE_INSTANT(DeadlineHit, job->tenant_ix, /*stage=*/2,
                          static_cast<int>(job->id),
                          -job->token.remaining_ns() / 1e6);
        m.counter("service.deadline_hits").add(1);
      }
    }
    if (job->token.has_deadline()) {
      const std::int64_t rem = job->token.remaining_ns();
      if (rem < 0 && rem != CancelToken::kNoDeadline) {
        job->result.deadline_overshoot_ms = -static_cast<double>(rem) / 1e6;
      }
    }
    PMG_TRACE_SPAN_R(RequestSpan, span_t0, job->tenant_ix, -1,
                     static_cast<int>(job->id), job->req.deadline_ms, rq);
    const double e2e_ms = ms_since(job->submitted);
    job->result.e2e_ms = e2e_ms;

    {
      std::lock_guard<std::mutex> lk(mu_);
      TenantStats& ts = tenants_[job->req.tenant];
      TenantObs& to = tenant_obs_locked(job->req.tenant);
      // Latency histograms: two relaxed atomic adds per observation —
      // recording under mu_ only piggybacks on the lock already held for
      // the roll-up, it does not need it. Abandoned-in-queue requests
      // never ran, so solve_ns stays a solve-only distribution.
      const auto q_ns =
          static_cast<std::int64_t>(job->result.queue_ms * 1e6);
      const auto e_ns = static_cast<std::int64_t>(e2e_ms * 1e6);
      hist_queue_ns_->record(q_ns);
      to.queue_ns->record(q_ns);
      if (ran) {
        const auto s_ns =
            static_cast<std::int64_t>(job->result.solve_ms * 1e6);
        hist_solve_ns_->record(s_ns);
        to.solve_ns->record(s_ns);
      }
      hist_e2e_ns_->record(e_ns);
      to.e2e_ns->record(e_ns);
      ++ts.completed;
      if (job->result.status == ErrorCode::DeadlineExceeded) {
        ++ts.deadline_hits;
      }
      if (job->result.status == ErrorCode::Cancelled) ++ts.cancelled;
      if (job->result.degraded) ++ts.degraded;
      ts.cycles += job->result.report.total_cycles;
      ts.solve_ms += job->result.solve_ms;
      --inflight_[job->req.tenant];
      job->state = Job::State::Done;
      m.counter("service.completed").add(1);
      update_slo_locked(ts, to);
    }
    cv_done_.notify_all();
  }
}

}  // namespace polymg::service
