// JIT kernel specialization: compile plans to native stencil kernels.
//
// The inspection emitter (emit_c) prints what PolyMG's backend would
// generate; this module closes the loop and actually runs generated
// code. For each (function, parity case) of a compiled plan it emits a
// specialized C kernel from the definition's register program —
// constants folded (printed as hexfloats), parity step/phase and the
// unit innermost stride baked, per-load row pointers strength-reduced,
// `restrict`-qualified pointers and an OpenMP-SIMD inner loop — then
// invokes the system compiler (`cc -O3 -march=native -fopenmp-simd
// -ffp-contract=off -fPIC -shared`), dlopen()s the shared object and
// binds the resolved pointers into the plan's LoweredDefs, where
// runtime::Executor's per-stage dispatch picks them up under both the
// barrier and persistent-team schedules. Linearizable definitions are
// left alone: they already run the specialized tap-loop, and swapping
// in a register-program-order kernel would change their summation
// order. The JIT targets exactly the definitions the linearizer
// rejects — the stages that otherwise pay the 12-15x register-engine /
// stack-interpreter penalty. (Per-def headroom on linear stencils is
// still measurable through jit_kernel_for_def, which has no such
// restriction; bench_kernels reports it.)
//
// Bit-exactness: every emitted kernel evaluates the definition's
// register program one instruction per statement with contraction
// disabled, which reproduces the register row engine and the point-wise
// stack interpreter bit for bit. Since linear defs keep their tap-loop
// either way, a specialized plan produces byte-identical outputs to the
// same plan with the JIT off — and to the interpreter-only reference
// plan the guarded oracle holds optimized plans to.
//
// Caching is two-level and keyed by content: an in-process table plus
// an on-disk directory (POLYMG_JIT_CACHE_DIR, default under $TMPDIR)
// holding <key>.c/<key>.so, where the key hashes the plan's kernel
// fingerprint (opt::kernel_fingerprint), the JIT ABI version and the
// compiler command line. Warm service::PlanCache hits across processes
// reload the .so without recompiling; a stale or corrupted entry (bad
// dlopen, ABI or key mismatch) is unlinked and rebuilt once.
//
// Fallback ladder: process mode off -> plan mode off -> injected
// jit.compile fault -> compiler failure -> dlopen / validation failure.
// Every rung lands back on the register engine / interpreter dispatch
// with a JitFallback trace event and the jit.fallbacks counter bumped;
// results stay correct, only slower. A plan with nothing to specialize
// (every def linear, or none emittable) is a quiet structural skip, not
// a counted fallback.
#pragma once

#include <memory>
#include <string>

#include "polymg/ir/bytecode.hpp"
#include "polymg/ir/jit_abi.hpp"
#include "polymg/opt/plan.hpp"

namespace polymg::codegen {

/// Process-wide JIT mode gate (default Auto). Off wins over any
/// per-plan CompileOptions::jit setting — this is what --jit=off sets.
opt::JitMode jit_mode();
void set_jit_mode(opt::JitMode m);

/// Parse "on"/"off"/"auto". Sets *ok; returns Auto on failure.
opt::JitMode parse_jit_mode(const std::string& s, bool* ok);

/// Emit the full specialized-kernel translation unit for a plan: the C
/// source jit_specialize would compile (ABI preamble + one kernel per
/// emittable non-linear (function, parity case)). Pure emission — no
/// compiler involved; generated_loc uses this for Table 3 accounting.
std::string emit_jit_c(const opt::CompiledPipeline& plan);

/// Specialize a plan in place: emit, compile (or hit the cache), dlopen
/// and bind native kernels into plan.lowered[..].defs[..].jit, with the
/// module kept alive by plan.jit_module. Returns true when at least one
/// kernel was bound; false on any fallback rung (the plan stays fully
/// runnable on the register engine / interpreter). A plan whose defs are
/// all linear has nothing to specialize and returns false without
/// touching the fallback counters. Idempotent: a plan that already
/// carries a module is left untouched.
bool jit_specialize(opt::CompiledPipeline& plan);

/// Count of defs carrying a bound native kernel.
int jit_bound_kernels(const opt::CompiledPipeline& plan);

/// A standalone compiled kernel for one definition (unit step, zero
/// phase), for benchmarks and tests that drive kernels directly the way
/// they drive apply_regprog. `module` keeps the dlopen'd code alive.
struct JitKernel {
  ir::JitKernelFn fn = nullptr;
  std::shared_ptr<const void> module;
  explicit operator bool() const { return fn != nullptr; }
};

/// Compile (or fetch from cache) a native kernel for one definition
/// expressed as stack bytecode. Returns a null kernel on any fallback
/// rung — callers keep their interpreted path. `out_dt`/`src_dt` select
/// the storage dtypes baked into the emitted code (all sources share
/// one dtype, mirroring the plan-level uniformity invariant); they are
/// part of the cache key.
JitKernel jit_kernel_for_def(int ndim, const ir::Bytecode& bc,
                             grid::DType out_dt = grid::DType::F64,
                             grid::DType src_dt = grid::DType::F64);

/// Probe the system compiler (one tiny compile into the cache dir).
/// Not memoized: honours POLYMG_JIT_CC changing under a running test.
bool jit_toolchain_available();

/// On-disk cache directory override (tests point this at a fresh temp
/// dir). The default honours POLYMG_JIT_CACHE_DIR, else lands under
/// $TMPDIR (or /tmp), namespaced by uid and ABI version.
void set_jit_cache_dir(const std::string& dir);
std::string jit_cache_dir();

/// Drop the in-process module table (tests use this to force the
/// disk-cache path; live plans keep their modules via shared_ptr).
void jit_clear_memory_cache();

}  // namespace polymg::codegen
