// C code emission — prints the OpenMP C equivalent of a compiled plan,
// in the shape of the paper's Fig. 8: pooled live-out allocations with
// user comments, collapse(d)-annotated tile loops, per-thread scratchpad
// declarations sized from the plan, clamped intra-tile loops per stage,
// and pool_deallocate calls at each array's last use.
//
// The emitted text is what PolyMG's ISL backend would write out; this
// repository executes the same schedule directly (runtime::Executor), so
// the emitter exists for inspection, tests of the plan's structure, and
// the Table 3 generated-lines-of-code accounting.
#pragma once

#include <string>

#include "polymg/opt/plan.hpp"

namespace polymg::codegen {

/// Emit the full pipeline function. `name` becomes the C function name.
std::string emit_c(const opt::CompiledPipeline& plan,
                   const std::string& name);

/// Emit the plan's dependence schedule (CompiledPipeline::sched) as
/// OpenMP-task C: one task per tile/slab with depend clauses for the
/// graph's explicit edges plus per-node sentinel tasks encoding the
/// prefix gate (a node's tasks wait on the node two before it). The
/// executor runs this schedule directly through its atomic ready queue;
/// the emitted text is the equivalent a tasking backend would generate,
/// for inspection and tests. Requires a plan compiled with
/// dependence_schedule enabled.
std::string emit_sched_c(const opt::CompiledPipeline& plan,
                         const std::string& name);

/// Count the lines of the emitted program (Table 3's "Lines of gen" ).
int generated_loc(const opt::CompiledPipeline& plan);

}  // namespace polymg::codegen
