#include "polymg/codegen/emit_c.hpp"

#include <sstream>
#include <vector>

#include "polymg/codegen/jit.hpp"

#include "polymg/common/error.hpp"

namespace polymg::codegen {

namespace {

using ir::FunctionDecl;
using opt::CompiledPipeline;
using opt::GroupExec;
using opt::GroupPlan;
using opt::StagePlan;
using poly::index_t;

const char* loop_var(int d, int ndim) {
  static const char* v2[] = {"i", "j", "k"};
  (void)ndim;
  return v2[d];
}

std::vector<std::string> slot_names(const CompiledPipeline& plan,
                                    const FunctionDecl& f) {
  std::vector<std::string> names;
  names.reserve(f.sources.size());
  for (const ir::SourceSlot& s : f.sources) {
    names.push_back(s.external ? plan.pipe.externals[s.index].name
                               : plan.pipe.funcs[s.index].name);
  }
  return names;
}

/// Sampled load index floor(num·x/den) + off of one dimension as C.
std::string load_index_expr(const ir::LoadIndex& li, int d, int ndim) {
  std::ostringstream os;
  const char* v = loop_var(d, ndim);
  if (li.num == 1 && li.den == 1) {
    os << v;
  } else if (li.den == 1) {
    os << li.num << "*" << v;
  } else {
    os << "floord(";
    if (li.num != 1) os << li.num << "*";
    os << v << ", " << li.den << ")";
  }
  if (li.off > 0) os << " + " << li.off;
  if (li.off < 0) os << " - " << -li.off;
  return os.str();
}

const char* reg_op_symbol(ir::RegOpKind k) {
  switch (k) {
    case ir::RegOpKind::Add: return "+";
    case ir::RegOpKind::Sub: return "-";
    case ir::RegOpKind::Mul: return "*";
    case ir::RegOpKind::Div: return "/";
    default: return "?";
  }
}

/// One register instruction as a C statement (the flattened form the
/// register row engine evaluates; loads render like calls, matching the
/// expression printer).
void emit_reg_instr(std::ostringstream& os, const ir::RegInstr& in,
                    const std::vector<std::string>& names, int ndim,
                    const std::string& pad, bool in_prologue) {
  os << pad << (in_prologue ? "const double r" : "double r") << in.dst
     << " = ";
  switch (in.kind) {
    case ir::RegOpKind::Const:
      os << in.c;
      break;
    case ir::RegOpKind::Load:
      os << names[static_cast<std::size_t>(in.slot)] << "(";
      for (int d = 0; d < ndim; ++d) {
        os << (d ? ", " : "") << load_index_expr(in.idx[d], d, ndim);
      }
      os << ")";
      break;
    case ir::RegOpKind::Neg:
      os << "-r" << in.a;
      break;
    default:
      os << "r" << in.a << " " << reg_op_symbol(in.kind) << " r" << in.b;
      break;
  }
  os << ";\n";
}

void emit_stage_loops(std::ostringstream& os, const CompiledPipeline& plan,
                      int func, const std::string& indent,
                      const std::string& dst, bool clamp_to_tile) {
  const FunctionDecl& f = plan.pipe.funcs[func];
  const int ndim = f.ndim;
  const auto names = slot_names(plan, f);
  // Non-linear single-definition stages executed by the register row
  // engine print its flattened form: the CSE'd loop-invariant registers
  // hoisted above the nest, one scalar statement per body register.
  const ir::RegProgram* regprog = nullptr;
  if (!f.parity_piecewise && !plan.lowered[func].defs[0].linear &&
      !plan.lowered[func].defs[0].regprog.empty()) {
    regprog = &plan.lowered[func].defs[0].regprog;
    if (!regprog->prologue.empty()) {
      os << indent << "/* hoisted loop-invariant registers */\n";
      for (const ir::RegInstr& in : regprog->prologue) {
        emit_reg_instr(os, in, names, ndim, indent, /*in_prologue=*/true);
      }
    }
  }
  std::string pad = indent;
  for (int d = 0; d < ndim; ++d) {
    os << pad << "for (int " << loop_var(d, ndim) << " = ";
    if (clamp_to_tile) {
      os << "max(" << f.interior.dim(d).lo << ", lb_" << d << ")";
    } else {
      os << f.interior.dim(d).lo;
    }
    os << "; " << loop_var(d, ndim) << " <= ";
    if (clamp_to_tile) {
      os << "min(" << f.interior.dim(d).hi << ", ub_" << d << ")";
    } else {
      os << f.interior.dim(d).hi;
    }
    os << "; " << loop_var(d, ndim) << "++) {";
    if (d == ndim - 1) os << "  /* #pragma ivdep */";
    os << "\n";
    pad += "  ";
  }
  if (regprog != nullptr) {
    for (const ir::RegInstr& in : regprog->body) {
      emit_reg_instr(os, in, names, ndim, pad, /*in_prologue=*/false);
    }
    os << pad << dst << "[...] = r" << regprog->result << ";\n";
  } else if (f.parity_piecewise) {
    for (std::size_t c = 0; c < f.defs.size(); ++c) {
      os << pad << "/* parity case " << c << " */ " << dst
         << "[...] = " << ir::to_string(f.defs[c], names, ndim) << ";\n";
    }
  } else {
    os << pad << dst << "[...] = " << ir::to_string(f.defs[0], names, ndim)
       << ";\n";
  }
  for (int d = ndim - 1; d >= 0; --d) {
    pad = indent;
    for (int q = 0; q < d; ++q) pad += "  ";
    os << pad << "}\n";
  }
}

}  // namespace

std::string emit_c(const CompiledPipeline& plan, const std::string& name) {
  std::ostringstream os;
  const int ndim = plan.pipe.ndim;

  os << "void " << name << "(";
  for (std::size_t e = 0; e < plan.pipe.externals.size(); ++e) {
    if (e) os << ", ";
    os << "double * " << plan.pipe.externals[e].name;
  }
  os << ", double *& OUT)\n{\n";

  // Pooled (or per-invocation) full-array allocations.
  for (std::size_t a = 0; a < plan.arrays.size(); ++a) {
    const opt::ArrayInfo& ai = plan.arrays[a];
    os << "  /* " << (ai.io ? "live out (program output)" : "intermediate")
       << " */\n";
    os << "  /* users : [" << ai.name << "] */\n";
    os << "  double * _arr_" << a << ";\n";
    if (plan.opts.pooled_allocation) {
      os << "  _arr_" << a << " = (double *) pool_allocate(sizeof(double) * "
         << ai.doubles << ");\n";
    } else {
      os << "  _arr_" << a << " = (double *) malloc(sizeof(double) * "
         << ai.doubles << ");\n";
    }
  }
  os << "\n";

  for (std::size_t gi = 0; gi < plan.groups.size(); ++gi) {
    const GroupPlan& g = plan.groups[gi];
    os << "  /* ---- group " << gi << " ---- */\n";
    switch (g.exec) {
      case GroupExec::Loops: {
        for (const StagePlan& sp : g.stages) {
          const FunctionDecl& f = plan.pipe.funcs[sp.func];
          os << "  /* " << f.name << " */\n";
          os << "#pragma omp parallel for schedule(static)\n";
          emit_stage_loops(os, plan, sp.func, "  ",
                           "_arr_" + std::to_string(sp.array),
                           /*clamp_to_tile=*/false);
        }
        break;
      }
      case GroupExec::OverlapTiled: {
        os << "#pragma omp parallel for schedule(static)";
        if (g.collapse_depth > 1) os << " collapse(" << g.collapse_depth << ")";
        os << "\n";
        std::string pad = "  ";
        for (int d = 0; d < ndim; ++d) {
          os << pad << "for (int T_" << d << " = 0; T_" << d << " < "
             << g.tiles.ntiles[d] << "; T_" << d << "++) {\n";
          pad += "  ";
        }
        os << pad << "/* Scratchpads */\n";
        for (std::size_t s = 0; s < g.scratch_sizes.size(); ++s) {
          os << pad << "/* users : [";
          bool first = true;
          for (const StagePlan& sp : g.stages) {
            if (sp.scratch_buffer == static_cast<int>(s)) {
              os << (first ? "" : ", ") << plan.pipe.funcs[sp.func].name;
              first = false;
            }
          }
          os << "] */\n";
          os << pad << "double _buf_" << gi << "_" << s << "["
             << g.scratch_sizes[s] << "];\n";
        }
        for (const StagePlan& sp : g.stages) {
          const FunctionDecl& f = plan.pipe.funcs[sp.func];
          os << pad << "/* " << f.name << " */\n";
          for (int d = 0; d < ndim; ++d) {
            os << pad << "int lb_" << d << " = " << g.tiles.sizes[d] << "*T_"
               << d << " - overlap_" << gi << "_" << d << ";\n";
            os << pad << "int ub_" << d << " = " << g.tiles.sizes[d]
               << "*(T_" << d << "+1) - 1 + overlap_" << gi << "_" << d
               << ";\n";
          }
          const std::string dst =
              sp.scratch_buffer >= 0
                  ? "_buf_" + std::to_string(gi) + "_" +
                        std::to_string(sp.scratch_buffer)
                  : "_arr_" + std::to_string(sp.array);
          emit_stage_loops(os, plan, sp.func, pad, dst,
                           /*clamp_to_tile=*/true);
          if (sp.scratch_buffer >= 0 && sp.array >= 0) {
            os << pad << "/* publish owned slice of live-out " << f.name
               << " */\n";
            os << pad << "copy_owned(_arr_" << sp.array << ", " << dst
               << ");\n";
          }
        }
        for (int d = ndim - 1; d >= 0; --d) {
          pad = "  ";
          for (int q = 0; q < d; ++q) pad += "  ";
          os << pad << "}\n";
        }
        break;
      }
      case GroupExec::TimeTiled: {
        const FunctionDecl& f = plan.pipe.funcs[g.stages.front().func];
        os << "  /* split/diamond time tiling of " << f.name << " chain: "
           << g.stages.size() << " steps, H=" << g.dtile_H
           << ", W=" << g.dtile_W << " */\n";
        os << "  for (int t0 = 0; t0 < " << g.stages.size()
           << "; t0 += " << g.dtile_H << ") {\n";
        os << "#pragma omp parallel for schedule(dynamic)  /* phase 1: "
              "trapezoids */\n";
        os << "    for (int blk = 0; blk < nblocks; blk++) "
              "advance_trapezoid(blk, t0);\n";
        os << "#pragma omp parallel for schedule(dynamic)  /* phase 2: "
              "wedges */\n";
        os << "    for (int w = 0; w < nblocks - 1; w++) advance_wedge(w, "
              "t0);\n";
        os << "  }\n";
        break;
      }
    }
    if (!plan.release_after_group[gi].empty()) {
      for (int a : plan.release_after_group[gi]) {
        os << "  pool_deallocate(_arr_" << a << ");\n";
      }
    }
    os << "\n";
  }

  // Program outputs.
  for (int out : plan.pipe.outputs) {
    os << "  OUT = _arr_" << plan.array_of_func[out] << ";  /* "
       << plan.pipe.funcs[out].name << " */\n";
  }
  os << "}\n";
  return os.str();
}

std::string emit_sched_c(const CompiledPipeline& plan,
                         const std::string& name) {
  const opt::SchedGraph& sg = plan.sched;
  PMG_CHECK(!sg.empty(),
            "emit_sched_c needs a plan compiled with dependence_schedule");
  std::ostringstream os;

  // Predecessor lists (the graph stores successors in CSR form).
  std::vector<std::vector<index_t>> preds(
      static_cast<std::size_t>(sg.total_tasks));
  for (index_t t = 0; t < sg.total_tasks; ++t) {
    for (index_t k = sg.succ_off[static_cast<std::size_t>(t)];
         k < sg.succ_off[static_cast<std::size_t>(t) + 1]; ++k) {
      preds[static_cast<std::size_t>(sg.succ[static_cast<std::size_t>(k)])]
          .push_back(t);
    }
  }

  os << "/* Dependence schedule of the compiled pipeline: one task per\n"
     << " * tile/slab. depend(in: _tok[...]) are the plan's explicit\n"
     << " * adjacent-node edges; depend(in: _done[k]) is the prefix gate\n"
     << " * (node k+2 starts only after node k completes), which is what\n"
     << " * lets edges look only one node back. The runtime executes this\n"
     << " * same graph with an atomic ready queue instead of omp tasks. */\n";
  os << "void " << name << "_sched(void)\n{\n";
  os << "  char _tok[" << sg.total_tasks << "];   /* one token per task */\n";
  os << "  char _done[" << sg.nodes.size() << "];  /* node completion */\n";
  os << "#pragma omp parallel\n#pragma omp single\n  {\n";

  for (std::size_t ni = 0; ni < sg.nodes.size(); ++ni) {
    const opt::SchedNode& n = sg.nodes[ni];
    const GroupPlan& g = plan.groups[static_cast<std::size_t>(n.group)];
    const FunctionDecl& f =
        plan.pipe.funcs[n.stage >= 0 ? g.stages[n.stage].func
                                     : g.stages[g.anchor].func];
    os << "    /* node " << ni << ": group " << n.group << " "
       << (n.collective ? "time-tiled chain of "
           : n.stage >= 0 ? "stage "
                          : "tiles of ")
       << f.name << ", " << n.ntasks << (n.ntasks == 1 ? " task" : " tasks")
       << (n.serial ? " (below serial grain)" : "") << " */\n";
    if (n.collective) {
      // The team runs the split-tiled sweep between barriers; under a
      // tasking backend that is a taskwait fence on both sides.
      os << "#pragma omp taskwait\n";
      os << "    time_tiled_sweep_node_" << ni << "();\n";
      os << "    _done[" << ni << "] = 1;\n";
      continue;
    }
    for (index_t t = n.task_base; t < n.task_base + n.ntasks; ++t) {
      os << "#pragma omp task depend(out: _tok[" << t << "])";
      if (ni >= 2) os << " depend(in: _done[" << ni - 2 << "])";
      for (index_t p : preds[static_cast<std::size_t>(t)]) {
        os << " depend(in: _tok[" << p << "])";
      }
      os << "\n";
      os << "    exec_node_" << ni << "(/*task=*/" << t - n.task_base
         << ");\n";
    }
    // Node-completion sentinel: fan-in over the node's tokens.
    os << "#pragma omp task depend(iterator(i = " << n.task_base << ":"
       << n.task_base + n.ntasks << "), in: _tok[i]) depend(out: _done["
       << ni << "])\n";
    os << "    ;  /* node " << ni << " complete */\n";
  }

  os << "  }\n}\n";
  return os.str();
}

int generated_loc(const opt::CompiledPipeline& plan) {
  std::string code = emit_c(plan, "pipeline");
  // Plans that specialize also generate (and compile) the per-stencil
  // kernel module; Table 3's accounting counts those lines too.
  if (plan.opts.jit != opt::JitMode::Off) code += emit_jit_c(plan);
  int lines = 1;
  for (char c : code) lines += c == '\n' ? 1 : 0;
  return lines;
}

}  // namespace polymg::codegen
