#include "polymg/codegen/jit.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/ir/regprog.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"

namespace polymg::codegen {

namespace {

using poly::index_t;

// ---------------------------------------------------------------------
// Process-wide mode gate and cache-directory state.
// ---------------------------------------------------------------------

std::atomic<int> g_mode{static_cast<int>(opt::JitMode::Auto)};

std::mutex& jit_mutex() {
  static std::mutex mu;
  return mu;
}

std::string& cache_dir_storage() {
  static std::string dir;  // empty = derive the default lazily
  return dir;
}

std::string default_cache_dir() {
  if (const char* e = std::getenv("POLYMG_JIT_CACHE_DIR"); e != nullptr && *e) {
    return e;
  }
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp) ? tmp : "/tmp";
  if (!base.empty() && base.back() == '/') base.pop_back();
  return base + "/polymg-jit-" + std::to_string(geteuid()) + "-a" +
         std::to_string(ir::kJitAbiVersion);
}

/// Cache dir, created on demand. Caller holds jit_mutex().
std::string cache_dir_locked() {
  std::string& dir = cache_dir_storage();
  if (dir.empty()) dir = default_cache_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; compile fails loudly
  return dir;
}

// ---------------------------------------------------------------------
// Toolchain invocation.
// ---------------------------------------------------------------------

std::string jit_compiler() {
  if (const char* e = std::getenv("POLYMG_JIT_CC"); e != nullptr && *e) return e;
  return "cc";
}

/// -ffp-contract=off is load-bearing: the emitted code must reproduce
/// the register row engine (and hence the interpreter oracle) bit for
/// bit, and the engine's per-instruction dispatch can never fuse a
/// separate mul and add into one FMA. Everything else is plain
/// optimization.
std::string jit_cflags() {
  std::string flags =
      "-O3 -march=native -fopenmp-simd -ffp-contract=off -fPIC -shared";
  if (const char* e = std::getenv("POLYMG_JIT_CFLAGS"); e != nullptr && *e) {
    flags += " ";
    flags += e;
  }
  return flags;
}

/// Compile budget (ms): past this the compiler child is SIGKILLed and
/// specialization degrades to the register engine. Generous by default —
/// a healthy cc finishes a kernel module in well under a second; only a
/// wedged toolchain ever meets the watchdog.
long jit_timeout_ms() {
  if (const char* e = std::getenv("POLYMG_JIT_TIMEOUT_MS");
      e != nullptr && *e) {
    const long v = std::atol(e);
    if (v > 0) return v;
  }
  return 10000;
}

/// Address-space cap (MiB) for the compiler child; <= 0 disables.
long jit_rlimit_as_mb() {
  if (const char* e = std::getenv("POLYMG_JIT_RLIMIT_AS_MB");
      e != nullptr && *e) {
    return std::atol(e);
  }
  return 4096;
}

/// Whitespace argv split. The command is our own jit_compiler() +
/// jit_cflags(); no flag carries embedded spaces, so no quoting grammar
/// is needed — and dropping the shell is the point: the old std::system
/// path gave a wedged or runaway cc the whole process group and no
/// resource bounds.
std::vector<std::string> split_argv(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream is(s);
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

/// Invoke the system compiler in a sandboxed child: fork/execvp (no
/// shell), stdout+stderr redirected to `log`, CPU and address-space
/// rlimits applied, and a waitpid watchdog that SIGKILLs the child when
/// it exceeds the compile budget. Returns true iff the child exited 0
/// within budget; a kill-on-overrun bumps jit.compile_timeouts and the
/// caller's fallback ladder takes over. The jit.hang fault site models a
/// wedged toolchain: the child parks in pause() instead of exec'ing, so
/// only the watchdog can reap it.
bool run_compiler(const std::string& src, const std::string& out,
                  const std::string& log) {
  // Decide the injected hang before fork: should_fail mutates the
  // process-wide injector, which the child must not touch.
  const bool hang = fault::should_fail(fault::kJitHang);
  if (hang) {
    obs::Metrics::instance().counter("fault.jit_hang").add(1);
    obs::trace_instant(obs::EventKind::FaultInjected, -1, -1, /*site=*/8,
                       0.0);
  }
  std::vector<std::string> words =
      split_argv(jit_compiler() + " " + jit_cflags());
  words.push_back("-x");
  words.push_back("c");
  words.push_back(src);
  words.push_back("-o");
  words.push_back(out);
  std::vector<char*> argv;
  argv.reserve(words.size() + 1);
  for (std::string& w : words) argv.push_back(w.data());
  argv.push_back(nullptr);

  const long budget_ms = jit_timeout_ms();
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child (async-signal-safe calls only until exec). CPU seconds are a
    // belt-and-braces bound alongside the parent's wall-clock watchdog:
    // a spinning cc dies here even if the parent is descheduled.
    const long cpu_s = std::max(1L, (budget_ms + 999) / 1000);
    struct rlimit rl_cpu;
    rl_cpu.rlim_cur = static_cast<rlim_t>(cpu_s);
    rl_cpu.rlim_max = static_cast<rlim_t>(cpu_s + 1);
    setrlimit(RLIMIT_CPU, &rl_cpu);
    if (const long mb = jit_rlimit_as_mb(); mb > 0) {
      struct rlimit rl_as;
      rl_as.rlim_cur = static_cast<rlim_t>(mb) << 20;
      rl_as.rlim_max = static_cast<rlim_t>(mb) << 20;
      setrlimit(RLIMIT_AS, &rl_as);
    }
    const int fd = open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, 1);
      dup2(fd, 2);
      if (fd > 2) close(fd);
    }
    if (hang) {
      for (;;) pause();  // injected wedge: uses no CPU, never exits
    }
    execvp(argv[0], argv.data());
    _exit(127);
  }
  // Parent: WNOHANG poll with a wall-clock deadline, SIGKILL on overrun.
  const auto t0 = std::chrono::steady_clock::now();
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (elapsed >= budget_ms) {
      kill(pid, SIGKILL);
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      obs::Metrics::instance().counter("jit.compile_timeouts").add(1);
      return false;
    }
    usleep(2000);
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// Exclusive advisory lock on `path` (created if absent), released when
/// the descriptor closes on scope exit. Best-effort: if the lock cannot
/// be taken the caller simply races as before — load_module's ABI/key
/// validation keeps a torn concurrent read from ever being trusted.
class FileLock {
public:
  explicit FileLock(const std::string& path)
      : fd_(open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644)) {
    if (fd_ >= 0 && flock(fd_, LOCK_EX) != 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~FileLock() {
    if (fd_ >= 0) close(fd_);  // close drops the flock
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  bool held() const { return fd_ >= 0; }

private:
  int fd_;
};

/// fsync a file by path — used on the compiler child's output before the
/// publishing rename.
bool fsync_path(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsync(fd) == 0;
  close(fd);
  return ok;
}

/// Best-effort fsync of the directory holding `path`, making a rename
/// into it durable.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    fsync(fd);
    close(fd);
  }
}

/// Durable atomic publish: write a pid-suffixed temp, fsync the data
/// BEFORE the rename (a rename that becomes durable ahead of its data
/// can publish a torn file after a crash), rename into place, fsync the
/// directory. Any failure — short write, ENOSPC, the injected
/// cache.enospc model of either — unlinks the temp and returns false;
/// callers degrade to the register engine.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(getpid());
  const int fd =
      open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  if (fault::should_fail(fault::kCacheEnospc)) {
    obs::Metrics::instance().counter("fault.cache_enospc").add(1);
    obs::trace_instant(obs::EventKind::FaultInjected, -1, -1, /*site=*/10,
                       0.0);
    ok = false;  // models write() returning ENOSPC mid-stream
  }
  std::size_t off = 0;
  while (ok && off < content.size()) {
    const ssize_t n = write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (ok && fsync(fd) != 0) ok = false;
  if (close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

// ---------------------------------------------------------------------
// Content hashing (FNV-1a 64).
// ---------------------------------------------------------------------

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    for (char ch : s) byte(static_cast<std::uint8_t>(ch));
    byte(0);
  }
};

std::uint64_t hash_bytecode(int ndim, const ir::Bytecode& bc) {
  Fnv1a fp;
  fp.byte(static_cast<std::uint8_t>(ndim));
  fp.u64(bc.size());
  for (const ir::BcOp& op : bc) {
    fp.byte(static_cast<std::uint8_t>(op.kind));
    if (op.kind == ir::BcKind::PushConst) fp.f64(op.c);
    if (op.kind == ir::BcKind::Load) {
      fp.byte(static_cast<std::uint8_t>(op.slot));
      for (int d = 0; d < ndim; ++d) {
        fp.u64(static_cast<std::uint64_t>(op.idx[d].num));
        fp.u64(static_cast<std::uint64_t>(op.idx[d].den));
        fp.u64(static_cast<std::uint64_t>(op.idx[d].off));
      }
    }
  }
  return fp.h;
}

std::string format_key(const char* tag, std::uint64_t content_hash) {
  // The compile command participates so a flag or compiler change never
  // reuses an object built under different codegen settings.
  Fnv1a cmd;
  cmd.str(jit_compiler());
  cmd.str(jit_cflags());
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s-%016" PRIx64 "-a%d-%08x", tag,
                content_hash, ir::kJitAbiVersion,
                static_cast<std::uint32_t>(cmd.h));
  return buf;
}

// ---------------------------------------------------------------------
// Kernel emission.
// ---------------------------------------------------------------------

/// One kernel to emit: a register program specialized to (ndim, step,
/// phase) and to the storage dtypes of its output and source slots.
/// `name` is the exported C symbol.
struct KernelSpec {
  std::string name;
  int ndim = 2;
  ir::RegProgram rp;
  std::array<index_t, 3> step{1, 1, 1};
  std::array<index_t, 3> phase{0, 0, 0};
  grid::DType out_dt = grid::DType::F64;
  std::array<grid::DType, ir::kJitMaxSrcSlots> src_dt{};  // F64-filled
};

/// C element-type name of a storage dtype. Loads promote to double and
/// stores round from double, so only the pointer types vary.
const char* ctype(grid::DType dt) {
  return dt == grid::DType::F32 ? "float" : "double";
}

bool emittable(const ir::RegProgram& rp, int ndim) {
  if (rp.empty() || rp.result < 0) return false;
  if (ndim < 1 || ndim > 3) return false;
  auto check = [&](const std::vector<ir::RegInstr>& instrs) {
    for (const ir::RegInstr& in : instrs) {
      if (in.kind == ir::RegOpKind::Const && !std::isfinite(in.c)) return false;
      if (in.kind == ir::RegOpKind::Load &&
          (in.slot < 0 || in.slot >= ir::kJitMaxSrcSlots)) {
        return false;
      }
    }
    return true;
  };
  return check(rp.prologue) && check(rp.body);
}

std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Sampled index floor(num·pos/den) + off as C text; folds the
/// identity map and integer offsets into plain arithmetic.
std::string sampled(const std::string& pos, int num, int den, index_t off) {
  std::ostringstream os;
  if (den == 1) {
    if (num == 1) {
      os << pos;
    } else {
      os << num << " * (" << pos << ")";
    }
  } else {
    os << "pmg_floord(" << num << " * (" << pos << "), " << den << ")";
  }
  if (off > 0) os << " + " << off;
  if (off < 0) os << " - " << -off;
  return os.str();
}

const char* op_char(ir::RegOpKind k) {
  switch (k) {
    case ir::RegOpKind::Add: return "+";
    case ir::RegOpKind::Sub: return "-";
    case ir::RegOpKind::Mul: return "*";
    case ir::RegOpKind::Div: return "/";
    default: return "?";
  }
}

/// Emit one non-Load instruction as a single-operation statement.
/// One IEEE operation per statement plus -ffp-contract=off is what
/// makes the generated code bit-identical to the row engine.
void emit_scalar_stmt(std::ostream& os, const std::string& ind,
                      const ir::RegInstr& in) {
  os << ind << "const double r" << in.dst << " = ";
  switch (in.kind) {
    case ir::RegOpKind::Const:
      os << hexd(in.c);
      break;
    case ir::RegOpKind::Neg:
      os << "-r" << in.a;
      break;
    default:
      os << "r" << in.a << " " << op_char(in.kind) << " r" << in.b;
      break;
  }
  os << ";\n";
}

void emit_kernel(std::ostream& os, const KernelSpec& ks) {
  const int nd = ks.ndim;
  const int in = nd - 1;  // innermost (contiguous) logical dim
  const index_t si = ks.step[in];

  os << "void " << ks.name
     << "(void* restrict vout, const pmg_i64* restrict oorg,\n"
     << "    const pmg_i64* restrict ostr, const pmg_src* restrict src,\n"
     << "    const pmg_i64* restrict lo, const pmg_i64* restrict hi) {\n"
     << "  " << ctype(ks.out_dt) << "* restrict out = (" << ctype(ks.out_dt)
     << "*)vout;\n";

  // Lattice-restricted bounds; (step, phase) are baked per parity case.
  for (int d = 0; d < nd; ++d) {
    if (ks.step[d] == 1) {
      os << "  const pmg_i64 b" << d << " = lo[" << d << "];\n";
    } else {
      os << "  const pmg_i64 b" << d << " = lo[" << d << "] + ((("
         << ks.phase[d] << " - lo[" << d << "]) % " << ks.step[d] << ") + "
         << ks.step[d] << ") % " << ks.step[d] << ";\n";
    }
    os << "  if (b" << d << " > hi[" << d << "]) return;\n";
  }
  os << "  const pmg_i64 n = (hi[" << in << "] - b" << in << ")";
  if (si != 1) os << " / " << si;
  os << " + 1;\n";

  // Hoisted loop-invariant registers (the program's prologue).
  for (const ir::RegInstr& instr : ks.rp.prologue) {
    emit_scalar_stmt(os, "  ", instr);
  }

  // Outer loops over the non-contiguous logical dims.
  std::string ind = "  ";
  for (int d = 0; d < in; ++d) {
    os << ind << "for (pmg_i64 x" << d << " = b" << d << "; x" << d
       << " <= hi[" << d << "]; x" << d << " += " << ks.step[d] << ") {\n";
    ind += "  ";
  }

  // Per-load row pointers: outer sampled offsets resolved here, the
  // innermost advance strength-reduced to a constant when affine
  // (den | num·step; the unit inner stride is baked).
  int load_ord = 0;
  std::vector<bool> affine;
  std::vector<index_t> advance;
  for (const ir::RegInstr& instr : ks.rp.body) {
    if (instr.kind != ir::RegOpKind::Load) continue;
    const int k = load_ord++;
    const ir::LoadIndex& li = instr.idx[in];
    const bool aff = (static_cast<index_t>(li.num) * si) % li.den == 0;
    affine.push_back(aff);
    advance.push_back(aff ? (static_cast<index_t>(li.num) * si / li.den) : 0);
    const char* sty = ctype(ks.src_dt[static_cast<std::size_t>(instr.slot)]);
    os << ind << "const " << sty << "* restrict p" << k << " = (const "
       << sty << "*)src[" << instr.slot << "].ptr";
    for (int d = 0; d < in; ++d) {
      os << "\n" << ind << "    + ((" << sampled("x" + std::to_string(d),
                                                 instr.idx[d].num,
                                                 instr.idx[d].den,
                                                 instr.idx[d].off)
         << ") - src[" << instr.slot << "].origin[" << d << "]) * src["
         << instr.slot << "].stride[" << d << "]";
    }
    if (aff) {
      os << "\n" << ind << "    + ((" << sampled("b" + std::to_string(in),
                                                 li.num, li.den, li.off)
         << ") - src[" << instr.slot << "].origin[" << in << "])";
    }
    os << ";\n";
  }

  os << ind << ctype(ks.out_dt) << "* restrict po = out";
  for (int d = 0; d < in; ++d) {
    os << " + (x" << d << " - oorg[" << d << "]) * ostr[" << d << "]";
  }
  os << " + (b" << in << " - oorg[" << in << "]);\n";

  os << ind << "#pragma omp simd\n";
  os << ind << "for (pmg_i64 u = 0; u < n; ++u) {\n";
  const std::string bind = ind + "  ";
  load_ord = 0;
  for (const ir::RegInstr& instr : ks.rp.body) {
    if (instr.kind == ir::RegOpKind::Load) {
      const int k = load_ord++;
      os << bind << "const double r" << instr.dst << " = p" << k << "[";
      if (affine[static_cast<std::size_t>(k)]) {
        const index_t adv = advance[static_cast<std::size_t>(k)];
        if (adv == 1) {
          os << "u";
        } else {
          os << "u * " << adv;
        }
      } else {
        // floor(num·x/den) not affine in u (÷2 interpolation maps at
        // unit step): exact per-point index, unit stride baked.
        const ir::LoadIndex& li = instr.idx[in];
        std::string pos = "b" + std::to_string(in) + " + u";
        if (si != 1) pos += " * " + std::to_string(si);
        os << sampled(pos, li.num, li.den, li.off) << " - src[" << instr.slot
           << "].origin[" << in << "]";
      }
      os << "];\n";
    } else {
      emit_scalar_stmt(os, bind, instr);
    }
  }
  os << bind << "po[";
  if (si == 1) {
    os << "u";
  } else {
    os << "u * " << si;
  }
  // One rounding per stored point on a float output, exactly like the
  // register row engine's store.
  os << "] = ";
  if (ks.out_dt == grid::DType::F32) os << "(float)";
  os << "r" << ks.rp.result << ";\n";
  os << ind << "}\n";

  for (int d = in - 1; d >= 0; --d) {
    ind.resize(ind.size() - 2);
    os << ind << "}\n";
  }
  os << "}\n";
}

std::string render_module(const std::string& key,
                          const std::vector<KernelSpec>& specs) {
  std::ostringstream os;
  os << "/* PolyMG JIT kernel module (generated; do not edit).\n"
     << " * key: " << key << "\n"
     << " * kernels: " << specs.size() << "\n"
     << " */\n"
     << "typedef long long pmg_i64;\n"
     << "typedef struct {\n"
     << "  const void* ptr;\n"
     << "  pmg_i64 origin[3];\n"
     << "  pmg_i64 stride[3];\n"
     << "} pmg_src;\n"
     << "static inline pmg_i64 pmg_floord(pmg_i64 a, pmg_i64 b) {\n"
     << "  pmg_i64 q = a / b;\n"
     << "  const pmg_i64 r = a % b;\n"
     << "  if (r != 0 && ((r < 0) != (b < 0))) --q;\n"
     << "  return q;\n"
     << "}\n"
     << "const int pmg_abi_version = " << ir::kJitAbiVersion << ";\n"
     << "const char pmg_key[] = \"" << key << "\";\n";
  for (const KernelSpec& ks : specs) {
    os << "\n";
    emit_kernel(os, ks);
  }
  return os.str();
}

// ---------------------------------------------------------------------
// Module loading and the two-level cache.
// ---------------------------------------------------------------------

/// A dlopen'd kernel module; dlclose on destruction (plans keep the
/// module alive through CompiledPipeline::jit_module).
class JitModule {
public:
  explicit JitModule(void* handle) : handle_(handle) {}
  ~JitModule() {
    if (handle_ != nullptr) dlclose(handle_);
  }
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  ir::JitKernelFn fn(const std::string& name) const {
    return reinterpret_cast<ir::JitKernelFn>(dlsym(handle_, name.c_str()));
  }
  void* raw(const char* name) const { return dlsym(handle_, name); }

private:
  void* handle_;
};

std::map<std::string, std::shared_ptr<const JitModule>>& module_table() {
  static std::map<std::string, std::shared_ptr<const JitModule>> table;
  return table;
}

/// dlopen + validate a cached object: the embedded ABI version and key
/// must match, so stale entries from an older build (or a corrupted
/// file) are rejected — the caller unlinks and recompiles once.
std::shared_ptr<const JitModule> load_module(const std::string& so_path,
                                             const std::string& key) {
  void* h = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) return nullptr;
  auto mod = std::make_shared<const JitModule>(h);
  const int* abi = static_cast<const int*>(mod->raw("pmg_abi_version"));
  const char* k = static_cast<const char*>(mod->raw("pmg_key"));
  if (abi == nullptr || *abi != ir::kJitAbiVersion || k == nullptr ||
      key != k) {
    return nullptr;  // dtor dlcloses
  }
  return mod;
}

/// Memory -> disk -> compile. Returns null on any failure rung; the
/// caller records the fallback. Serialized on the global mutex —
/// compiles are rare and cold-path only.
std::shared_ptr<const JitModule> acquire_module(
    const std::string& key, int nkernels,
    const std::function<std::string()>& source) {
  auto& m = obs::Metrics::instance();
  std::lock_guard<std::mutex> lock(jit_mutex());
  auto& table = module_table();
  if (auto it = table.find(key); it != table.end()) {
    m.counter("jit.mem_hits").add(1);
    obs::trace_instant(obs::EventKind::JitCacheHit, -1, -1, 1, nkernels);
    return it->second;
  }
  const std::string dir = cache_dir_locked();
  const std::string so = dir + "/" + key + ".so";
  // Cross-process compile lock: processes racing the same key serialize
  // on a per-key flock; the losers wake to find the winner's .so already
  // on disk and take the disk-hit path below, so N concurrent processes
  // perform exactly one compile. Best-effort — without the lock the race
  // is merely wasteful, never unsafe (each publishes via its own
  // pid-suffixed temp + rename).
  FileLock compile_lock(so + ".lock");
  std::error_code ec;
  if (std::filesystem::exists(so, ec)) {
    if (auto mod = load_module(so, key)) {
      table.emplace(key, mod);
      m.counter("jit.disk_hits").add(1);
      obs::trace_instant(obs::EventKind::JitCacheHit, -1, -1, 0, nkernels);
      return mod;
    }
    m.counter("jit.stale_rejects").add(1);
    std::remove(so.c_str());  // stale/corrupt: rebuild below
  }
  if (fault::should_fail(fault::kJitCompile)) return nullptr;
  const std::int64_t t0 = obs::trace_enabled() ? obs::trace_now_ns() : -1;
  const std::string csrc = dir + "/" + key + ".c";
  if (!write_file_atomic(csrc, source())) return nullptr;
  const std::string tmp = so + ".tmp." + std::to_string(getpid());
  const std::string log = dir + "/" + key + ".log";
  if (!run_compiler(csrc, tmp, log)) {
    std::remove(tmp.c_str());
    m.counter("jit.compile_failures").add(1);
    return nullptr;
  }
  // Same durability order as write_file_atomic: the object's bytes reach
  // disk before the rename publishes its name.
  if (!fsync_path(tmp)) {
    std::remove(tmp.c_str());
    return nullptr;
  }
  if (std::rename(tmp.c_str(), so.c_str()) != 0) {
    std::remove(tmp.c_str());
    return nullptr;
  }
  fsync_parent_dir(so);
  auto mod = load_module(so, key);
  if (mod == nullptr) {
    std::remove(so.c_str());
    return nullptr;
  }
  m.counter("jit.compiles").add(1);
  obs::trace_span(obs::EventKind::JitCompile, t0, -1, -1, -1, nkernels);
  table.emplace(key, mod);
  return mod;
}

/// Bookkeeping for every fallback rung past the mode gates.
bool note_fallback(bool loud, const char* why) {
  obs::Metrics::instance().counter("jit.fallbacks").add(1);
  obs::trace_instant(obs::EventKind::JitFallback, -1, -1, -1, 0.0);
  if (loud) {
    std::fprintf(stderr,
                 "polymg: jit specialization fell back to the register "
                 "engine (%s)\n",
                 why);
  }
  return false;
}

/// Kernels of one plan in emission/binding order. Skips definitions the
/// emitter cannot specialize (they keep their interpreted dispatch).
std::vector<KernelSpec> collect_kernels(const opt::CompiledPipeline& plan) {
  std::vector<KernelSpec> specs;
  for (std::size_t f = 0; f < plan.pipe.funcs.size(); ++f) {
    const ir::FunctionDecl& fn = plan.pipe.funcs[f];
    const ir::LoweredFunc& lf = plan.lowered[f];
    for (std::size_t c = 0; c < lf.defs.size(); ++c) {
      KernelSpec ks;
      ks.name = "pmg_k" + std::to_string(f) + "_" + std::to_string(c);
      ks.ndim = fn.ndim;
      // Bake the plan's storage dtypes: the executor binds views of
      // exactly these dtypes, and the key (kernel_fingerprint) hashes
      // them, so a double and a mixed plan never share a module.
      ks.out_dt = plan.dtype_of_func(static_cast<int>(f));
      for (std::size_t s = 0;
           s < fn.sources.size() &&
           s < static_cast<std::size_t>(ir::kJitMaxSrcSlots);
           ++s) {
        const ir::SourceSlot& slot = fn.sources[s];
        ks.src_dt[s] = slot.external ? plan.dtype_of_external(slot.index)
                                     : plan.dtype_of_func(slot.index);
      }
      if (fn.parity_piecewise) {
        ks.step = {2, 2, 2};
        for (int d = 0; d < fn.ndim; ++d) {
          ks.phase[d] = (c >> (fn.ndim - 1 - d)) & 1;
        }
      }
      const ir::LoweredDef& def = lf.defs[c];
      // Linearizable definitions keep the tap-loop: it already runs at
      // specialized-kernel speed, and swapping it for a jit kernel (in
      // register-program order) would change the summation order — the
      // guarded oracle's reference plan runs the same tap-loop, and its
      // fallback results are required to match the optimized plan bit
      // for bit. The 12-15x gap the JIT closes lives in the defs the
      // linearizer rejects (the register-engine path). Per-def headroom
      // for linear stencils is still measured via jit_kernel_for_def in
      // bench_kernels.
      if (def.linear.has_value()) continue;
      // Reference plans strip register programs; recompiling from the
      // bytecode is deterministic, so the emitted code is identical
      // either way.
      ks.rp = def.regprog.empty() ? ir::compile_regprog(def.bytecode)
                                  : def.regprog;
      if (!emittable(ks.rp, fn.ndim)) continue;
      specs.push_back(std::move(ks));
    }
  }
  return specs;
}

std::string plan_module_key(const opt::CompiledPipeline& plan) {
  return format_key("pmg", opt::kernel_fingerprint(plan));
}

}  // namespace

opt::JitMode jit_mode() {
  return static_cast<opt::JitMode>(g_mode.load(std::memory_order_relaxed));
}

void set_jit_mode(opt::JitMode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

opt::JitMode parse_jit_mode(const std::string& s, bool* ok) {
  if (ok != nullptr) *ok = true;
  if (s == "off") return opt::JitMode::Off;
  if (s == "auto") return opt::JitMode::Auto;
  if (s == "on") return opt::JitMode::On;
  if (ok != nullptr) *ok = false;
  return opt::JitMode::Auto;
}

std::string emit_jit_c(const opt::CompiledPipeline& plan) {
  return render_module(plan_module_key(plan), collect_kernels(plan));
}

bool jit_specialize(opt::CompiledPipeline& plan) {
  if (plan.jit_module != nullptr) return true;  // already specialized
  const opt::JitMode process = jit_mode();
  if (process == opt::JitMode::Off || plan.opts.jit == opt::JitMode::Off) {
    return false;  // deliberate opt-out, not a fallback
  }
  const bool loud =
      process == opt::JitMode::On || plan.opts.jit == opt::JitMode::On;
  const std::vector<KernelSpec> specs = collect_kernels(plan);
  if (specs.empty()) {
    // Nothing to specialize (every def is linear, i.e. already on the
    // tap-loop, or unemittable) is a structural property of the plan,
    // not a failure: no fallback accounting, but --jit=on users get
    // told why their flag was a no-op.
    if (loud) {
      std::fprintf(stderr,
                   "polymg: jit specialization found no specializable "
                   "kernels (linear defs keep the tap-loop)\n");
    }
    return false;
  }
  const std::string key = plan_module_key(plan);
  auto mod =
      acquire_module(key, static_cast<int>(specs.size()),
                     [&] { return render_module(key, specs); });
  if (mod == nullptr) {
    return note_fallback(loud, "kernel module unavailable (no toolchain, "
                               "compile failure, or injected fault)");
  }
  int bound = 0;
  for (std::size_t f = 0; f < plan.lowered.size(); ++f) {
    for (std::size_t c = 0; c < plan.lowered[f].defs.size(); ++c) {
      ir::JitKernelFn fn = mod->fn("pmg_k" + std::to_string(f) + "_" +
                                   std::to_string(c));
      plan.lowered[f].defs[c].jit = fn;
      if (fn != nullptr) ++bound;
    }
  }
  if (bound == 0) return note_fallback(loud, "no kernels resolved");
  plan.jit_module = std::shared_ptr<const void>(mod, mod.get());
  return true;
}

int jit_bound_kernels(const opt::CompiledPipeline& plan) {
  int n = 0;
  for (const ir::LoweredFunc& lf : plan.lowered) {
    for (const ir::LoweredDef& d : lf.defs) n += d.jit != nullptr ? 1 : 0;
  }
  return n;
}

JitKernel jit_kernel_for_def(int ndim, const ir::Bytecode& bc,
                             grid::DType out_dt, grid::DType src_dt) {
  if (jit_mode() == opt::JitMode::Off) return {};
  KernelSpec ks;
  ks.name = "pmg_k0_0";
  ks.ndim = ndim;
  ks.rp = ir::compile_regprog(bc);
  ks.out_dt = out_dt;
  ks.src_dt.fill(src_dt);
  if (!emittable(ks.rp, ndim)) return {};
  Fnv1a dt;
  dt.u64(hash_bytecode(ndim, bc));
  dt.byte(static_cast<std::uint8_t>(out_dt));
  dt.byte(static_cast<std::uint8_t>(src_dt));
  const std::string key = format_key("pmgdef", dt.h);
  std::vector<KernelSpec> specs;
  specs.push_back(std::move(ks));
  auto mod = acquire_module(key, 1,
                            [&] { return render_module(key, specs); });
  if (mod == nullptr) {
    note_fallback(false, "def kernel unavailable");
    return {};
  }
  JitKernel k;
  k.fn = mod->fn("pmg_k0_0");
  k.module = std::shared_ptr<const void>(mod, mod.get());
  if (k.fn == nullptr) return {};
  return k;
}

bool jit_toolchain_available() {
  std::lock_guard<std::mutex> lock(jit_mutex());
  const std::string dir = cache_dir_locked();
  const std::string tag = std::to_string(getpid());
  const std::string src = dir + "/probe-" + tag + ".c";
  const std::string so = dir + "/probe-" + tag + ".so";
  const std::string log = dir + "/probe-" + tag + ".log";
  if (!write_file_atomic(src, "int pmg_probe(void) { return 1; }\n")) {
    return false;
  }
  const bool ok = run_compiler(src, so, log);
  std::remove(src.c_str());
  std::remove(so.c_str());
  std::remove(log.c_str());
  return ok;
}

void set_jit_cache_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(jit_mutex());
  cache_dir_storage() = dir;
}

std::string jit_cache_dir() {
  std::lock_guard<std::mutex> lock(jit_mutex());
  return cache_dir_locked();
}

void jit_clear_memory_cache() {
  std::lock_guard<std::mutex> lock(jit_mutex());
  module_table().clear();
}

}  // namespace polymg::codegen
