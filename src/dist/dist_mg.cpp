#include "polymg/dist/dist_mg.hpp"

#include <memory>
#include <string>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/solvers/checkpoint.hpp"

namespace polymg::dist {

using poly::Box;
using poly::Interval;

// ---------------------------------------------------------------------
// Decomposition
// ---------------------------------------------------------------------

Decomp::Decomp(const CycleConfig& cfg, int ranks)
    : ranks_(ranks), levels_(cfg.levels), cfg_(cfg) {
  PMG_CHECK(ranks >= 1, "need at least one rank");
  const index_t n0 = cfg.level_n(0);
  PMG_CHECK(ranks <= n0, "more ranks than coarsest rows ("
                             << ranks << " > " << n0 << ")");
  owned_.resize(static_cast<std::size_t>(levels_));
  // Anchor at the coarsest level: near-even split of [1, n0].
  auto& coarse = owned_[0];
  coarse.resize(static_cast<std::size_t>(ranks));
  index_t lo = 1;
  for (int r = 0; r < ranks; ++r) {
    const index_t rows = n0 / ranks + (r < static_cast<int>(n0 % ranks));
    coarse[static_cast<std::size_t>(r)] = Interval{lo, lo + rows - 1};
    lo += rows;
  }
  // Refine upward under the 2i map: coarse [lo, hi] -> fine
  // [2lo - 1, 2hi]; the last rank additionally takes the final fine row.
  for (int l = 1; l < levels_; ++l) {
    auto& fine = owned_[static_cast<std::size_t>(l)];
    fine.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      const Interval c = owned_[static_cast<std::size_t>(l - 1)]
                               [static_cast<std::size_t>(r)];
      Interval f{2 * c.lo - 1, 2 * c.hi};
      if (r == ranks - 1) f.hi = cfg.level_n(l);
      fine[static_cast<std::size_t>(r)] = f;
    }
  }
}

Interval Decomp::owned(int level, int rank) const {
  return owned_[static_cast<std::size_t>(level)]
               [static_cast<std::size_t>(rank)];
}

Decomp Decomp::shrink_to_survivors(int survivors) const {
  PMG_CHECK(survivors >= 1 && survivors <= ranks_,
            "survivor count " << survivors << " out of range (had "
                              << ranks_ << " ranks)");
  return Decomp(cfg_, survivors);
}

// ---------------------------------------------------------------------
// Local kernels (identical arithmetic to solvers::HandOptSolver, so a
// distributed cycle reproduces the shared-memory result bit for bit)
// ---------------------------------------------------------------------

namespace {

void jacobi_rows(int ndim, View dst, View src, View f, index_t rlo,
                 index_t rhi, index_t n, double w, double inv_h2) {
  for (index_t i = rlo; i <= rhi; ++i) {
    if (ndim == 2) {
      const double* s0 = &src.at2(i - 1, 0);
      const double* s1 = &src.at2(i, 0);
      const double* s2 = &src.at2(i + 1, 0);
      const double* fr = &f.at2(i, 0);
      double* d = &dst.at2(i, 0);
#pragma omp simd
      for (index_t j = 1; j <= n; ++j) {
        const double av =
            inv_h2 * (4.0 * s1[j] - s0[j] - s2[j] - s1[j - 1] - s1[j + 1]);
        d[j] = s1[j] - w * (av - fr[j]);
      }
    } else {
      for (index_t j = 1; j <= n; ++j) {
        const double* c = &src.at3(i, j, 0);
        const double* im = &src.at3(i - 1, j, 0);
        const double* ip = &src.at3(i + 1, j, 0);
        const double* jm = &src.at3(i, j - 1, 0);
        const double* jp = &src.at3(i, j + 1, 0);
        const double* fr = &f.at3(i, j, 0);
        double* d = &dst.at3(i, j, 0);
#pragma omp simd
        for (index_t k = 1; k <= n; ++k) {
          const double av = inv_h2 * (6.0 * c[k] - im[k] - ip[k] - jm[k] -
                                      jp[k] - c[k - 1] - c[k + 1]);
          d[k] = c[k] - w * (av - fr[k]);
        }
      }
    }
  }
}

void residual_rows(int ndim, View r, View v, View f, index_t rlo,
                   index_t rhi, index_t n, double inv_h2) {
  for (index_t i = rlo; i <= rhi; ++i) {
    if (ndim == 2) {
      const double* s0 = &v.at2(i - 1, 0);
      const double* s1 = &v.at2(i, 0);
      const double* s2 = &v.at2(i + 1, 0);
      const double* fr = &f.at2(i, 0);
      double* d = &r.at2(i, 0);
#pragma omp simd
      for (index_t j = 1; j <= n; ++j) {
        d[j] = fr[j] - inv_h2 * (4.0 * s1[j] - s0[j] - s2[j] - s1[j - 1] -
                                 s1[j + 1]);
      }
    } else {
      for (index_t j = 1; j <= n; ++j) {
        const double* c = &v.at3(i, j, 0);
        const double* im = &v.at3(i - 1, j, 0);
        const double* ip = &v.at3(i + 1, j, 0);
        const double* jm = &v.at3(i, j - 1, 0);
        const double* jp = &v.at3(i, j + 1, 0);
        const double* fr = &f.at3(i, j, 0);
        double* d = &r.at3(i, j, 0);
#pragma omp simd
        for (index_t k = 1; k <= n; ++k) {
          d[k] = fr[k] - inv_h2 * (6.0 * c[k] - im[k] - ip[k] - jm[k] -
                                   jp[k] - c[k - 1] - c[k + 1]);
        }
      }
    }
  }
}

void restrict_rows(int ndim, View coarse_f, View fine_r, index_t clo,
                   index_t chi, index_t nc) {
  for (index_t i = clo; i <= chi; ++i) {
    const index_t fi = 2 * i;
    if (ndim == 2) {
      for (index_t j = 1; j <= nc; ++j) {
        const index_t fj = 2 * j;
        coarse_f.at2(i, j) =
            (fine_r.at2(fi - 1, fj - 1) + 2 * fine_r.at2(fi - 1, fj) +
             fine_r.at2(fi - 1, fj + 1) + 2 * fine_r.at2(fi, fj - 1) +
             4 * fine_r.at2(fi, fj) + 2 * fine_r.at2(fi, fj + 1) +
             fine_r.at2(fi + 1, fj - 1) + 2 * fine_r.at2(fi + 1, fj) +
             fine_r.at2(fi + 1, fj + 1)) /
            16.0;
      }
    } else {
      for (index_t j = 1; j <= nc; ++j) {
        for (index_t k = 1; k <= nc; ++k) {
          double acc = 0.0;
          for (int di = -1; di <= 1; ++di) {
            for (int dj = -1; dj <= 1; ++dj) {
              for (int dk = -1; dk <= 1; ++dk) {
                const int dist = (di != 0) + (dj != 0) + (dk != 0);
                const double wgt =
                    dist == 0 ? 8.0 : dist == 1 ? 4.0 : dist == 2 ? 2.0 : 1.0;
                acc += wgt * fine_r.at3(fi + di, 2 * j + dj, 2 * k + dk);
              }
            }
          }
          coarse_f.at3(i, j, k) = acc / 64.0;
        }
      }
    }
  }
}

void interp_correct_rows(int ndim, View v_fine, View e_coarse, index_t flo,
                         index_t fhi, index_t nf) {
  for (index_t i = flo; i <= fhi; ++i) {
    const index_t ci = i / 2;
    if (ndim == 2) {
      for (index_t j = 1; j <= nf; ++j) {
        const index_t cj = j / 2;
        double e;
        if ((i & 1) == 0 && (j & 1) == 0) {
          e = e_coarse.at2(ci, cj);
        } else if ((i & 1) == 0) {
          e = 0.5 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci, cj + 1));
        } else if ((j & 1) == 0) {
          e = 0.5 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci + 1, cj));
        } else {
          e = 0.25 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci, cj + 1) +
                      e_coarse.at2(ci + 1, cj) +
                      e_coarse.at2(ci + 1, cj + 1));
        }
        v_fine.at2(i, j) += e;
      }
    } else {
      for (index_t j = 1; j <= nf; ++j) {
        for (index_t k = 1; k <= nf; ++k) {
          double acc = 0.0;
          int npts = 0;
          for (int di = 0; di <= (i & 1); ++di) {
            for (int dj = 0; dj <= (j & 1); ++dj) {
              for (int dk = 0; dk <= (k & 1); ++dk) {
                acc += e_coarse.at3(ci + di, j / 2 + dj, k / 2 + dk);
                ++npts;
              }
            }
          }
          v_fine.at3(i, j, k) += acc / npts;
        }
      }
    }
  }
}

/// Row-block copy between two ranks' local views (global coordinates).
void copy_rows(int ndim, View dst, View src, index_t rlo, index_t rhi,
               index_t n) {
  if (rlo > rhi) return;
  Box rows(ndim);
  rows.dim(0) = Interval{rlo, rhi};
  for (int d = 1; d < ndim; ++d) rows.dim(d) = Interval{0, n + 1};
  grid::copy_region(dst, src, rows);
}

}  // namespace

// ---------------------------------------------------------------------
// DistMgSolver
// ---------------------------------------------------------------------

DistMgSolver::DistMgSolver(const CycleConfig& cfg, int ranks,
                           int ghost_depth)
    : cfg_(cfg),
      decomp_(cfg, ranks),
      ghost_depth_(std::max<index_t>(1, ghost_depth)) {
  cfg_.validate();
  PMG_CHECK(cfg_.smoother == solvers::SmootherKind::Jacobi,
            "the distributed backend implements Jacobi smoothing");
  auto& m = obs::Metrics::instance();
  ctr_exchanges_ = &m.counter("dist.exchanges");
  ctr_messages_ = &m.counter("dist.messages");
  ctr_retries_ = &m.counter("dist.halo_retries");
  ctr_doubles_sent_ = &m.counter("dist.doubles_sent");
  rank_stats_.resize(static_cast<std::size_t>(ranks));
  build_state();
}

DistMgSolver::~DistMgSolver() = default;

void DistMgSolver::build_state() {
  const int ranks = decomp_.ranks();
  // The halo exchange reads only the adjacent rank: its owned block must
  // cover the deepest halo at every level.
  for (int l = 0; l < cfg_.levels; ++l) {
    for (int r = 0; r < ranks; ++r) {
      PMG_CHECK(decomp_.owned(l, r).size() >= ghost_depth_,
                "ghost depth " << ghost_depth_
                               << " exceeds rank " << r << " rows at level "
                               << l);
    }
  }

  state_.clear();
  state_.resize(static_cast<std::size_t>(cfg_.levels));
  for (int l = 0; l < cfg_.levels; ++l) {
    auto& lvl = state_[static_cast<std::size_t>(l)];
    lvl.resize(static_cast<std::size_t>(ranks));
    const index_t n = cfg_.level_n(l);
    for (int r = 0; r < ranks; ++r) {
      RankLevel& rl = lvl[static_cast<std::size_t>(r)];
      rl.owned = decomp_.owned(l, r);
      Box box(cfg_.ndim);
      box.dim(0) = Interval{rl.owned.lo - ghost_depth_,
                            rl.owned.hi + ghost_depth_};
      for (int d = 1; d < cfg_.ndim; ++d) box.dim(d) = Interval{0, n + 1};
      rl.local_box = box;
      rl.v = grid::make_grid(box);
      rl.f = grid::make_grid(box);
      rl.r = grid::make_grid(box);
      rl.tmp = grid::make_grid(box);
    }
  }
}

double* DistMgSolver::field_ptr(RankLevel& rl, int which) {
  return which == 0 ? rl.v.data() : which == 1 ? rl.f.data() : rl.r.data();
}

void DistMgSolver::exchange(int level, int which, index_t depth) {
  auto& lvl = state_[static_cast<std::size_t>(level)];
  const index_t n = cfg_.level_n(level);
  const int R = decomp_.ranks();
  ++stats_.exchanges;
  ctr_exchanges_->add(1);
  PMG_TRACE_NOW(x0);
  const long doubles_before = stats_.doubles_sent;
  // One neighbour-to-neighbour message from `sender` to `receiver`. A
  // real network can drop or corrupt a delivery (fault site `dist.halo`);
  // the copy only happens once a send attempt goes through, and each
  // re-send is counted in CommStats::retries. Persistent failure surfaces
  // as a typed error rather than smoothing against a stale halo. A sender
  // that stops answering altogether (fault site `rank.death`) is declared
  // dead after the exchange times out: the cycle aborts with
  // Error(RankFailure) and recovery takes over.
  const auto deliver = [&](int receiver, int sender, View dst, View src,
                           index_t rlo, index_t rhi) {
    if (rlo > rhi) return;
    CommStats& rs = rank_stats_[static_cast<std::size_t>(receiver)];
    if (!recovering_ && fault::should_fail(fault::kRankDeath)) {
      pending_dead_ = sender;
      obs::Metrics::instance().counter("resil.rank_deaths").add(1);
      PMG_TRACE_INSTANT(RankDeath, level, which, sender, 0.0);
      throw Error(ErrorCode::RankFailure,
                  "rank " + std::to_string(sender) +
                      " stopped answering (halo timeout at level " +
                      std::to_string(level) + ")");
    }
    int dropped = 0;
    while (fault::should_fail(fault::kDistHalo)) {
      ++dropped;
      obs::Metrics::instance().counter("fault.dist_halo").add(1);
      PMG_TRACE_INSTANT(FaultInjected, level, which, /*site=*/2,
                        static_cast<double>(dropped));
      if (dropped > max_halo_retries_) {
        throw Error(ErrorCode::HaloExchangeFailed,
                    "halo message dropped " + std::to_string(dropped) +
                        " times (level " + std::to_string(level) +
                        ", rows " + std::to_string(rlo) + ".." +
                        std::to_string(rhi) + "); retries exhausted");
      }
      ++stats_.retries;
      ++rs.retries;
      ctr_retries_->add(1);
      PMG_TRACE_INSTANT(HaloRetry, level, which,
                        static_cast<int>(rlo), static_cast<double>(dropped));
    }
    copy_rows(cfg_.ndim, dst, src, rlo, rhi, n);
    const long doubles = (rhi - rlo + 1) * dst.stride[0];
    if (recovering_) {
      // Recovery's re-scatter: charge the traffic to the resilience
      // budget, not the solve's own communication volume.
      ++stats_.recovery_messages;
      ++rs.recovery_messages;
      stats_.recovery_doubles += doubles;
      rs.recovery_doubles += doubles;
      return;
    }
    ++stats_.messages;
    ++rs.messages;
    ctr_messages_->add(1);
    stats_.doubles_sent += doubles;
    rs.doubles_sent += doubles;
  };
  for (int r = 0; r < R; ++r) {
    RankLevel& me = lvl[static_cast<std::size_t>(r)];
    View mine = View::over(field_ptr(me, which), me.local_box);
    // Lower halo from rank r-1 (or the global Dirichlet boundary).
    if (r > 0) {
      RankLevel& nb = lvl[static_cast<std::size_t>(r - 1)];
      View theirs = View::over(field_ptr(nb, which), nb.local_box);
      deliver(r, r - 1, mine, theirs,
              std::max(me.owned.lo - depth, nb.owned.lo),
              me.owned.lo - 1);
    }
    // Upper halo from rank r+1.
    if (r < R - 1) {
      RankLevel& nb = lvl[static_cast<std::size_t>(r + 1)];
      View theirs = View::over(field_ptr(nb, which), nb.local_box);
      deliver(r, r + 1, mine, theirs, me.owned.hi + 1,
              std::min(me.owned.hi + depth, nb.owned.hi));
    }
  }
  ctr_doubles_sent_->add(stats_.doubles_sent - doubles_before);
  PMG_TRACE_SPAN(HaloExchange, x0, level, which,
                 static_cast<int>(depth),
                 static_cast<double>(stats_.doubles_sent - doubles_before));
}

void DistMgSolver::smooth(int level, int steps) {
  if (steps <= 0) return;
  auto& lvl = state_[static_cast<std::size_t>(level)];
  const index_t n = cfg_.level_n(level);
  const double w = cfg_.smoother_weight(level);
  const double inv_h2 = 1.0 / (cfg_.level_h(level) * cfg_.level_h(level));

  int done = 0;
  while (done < steps) {
    const int s =
        static_cast<int>(std::min<index_t>(ghost_depth_, steps - done));
    // Communication aggregation: one exchange of depth s covers s steps
    // with redundant halo computation shrinking by one row per step.
    exchange(level, /*v=*/0, s);
#pragma omp parallel for schedule(static)
    for (int r = 0; r < decomp_.ranks(); ++r) {
      RankLevel& rl = lvl[static_cast<std::size_t>(r)];
      View bufs[2] = {rl.vv(), rl.tv()};
      for (int j = 0; j < s; ++j) {
        const index_t extra = s - 1 - j;
        const index_t rlo = std::max<index_t>(1, rl.owned.lo - extra);
        const index_t rhi = std::min<index_t>(n, rl.owned.hi + extra);
        jacobi_rows(cfg_.ndim, bufs[(j + 1) & 1], bufs[j & 1], rl.fv(), rlo,
                    rhi, n, w, inv_h2);
      }
      if (s & 1) {  // result landed in tmp: move the owned rows back
        copy_rows(cfg_.ndim, rl.vv(), rl.tv(), rl.owned.lo, rl.owned.hi, n);
      }
    }
    done += s;
  }
}

void DistMgSolver::residual(int level) {
  exchange(level, /*v=*/0, 1);
  auto& lvl = state_[static_cast<std::size_t>(level)];
  const index_t n = cfg_.level_n(level);
  const double inv_h2 = 1.0 / (cfg_.level_h(level) * cfg_.level_h(level));
#pragma omp parallel for schedule(static)
  for (int r = 0; r < decomp_.ranks(); ++r) {
    RankLevel& rl = lvl[static_cast<std::size_t>(r)];
    residual_rows(cfg_.ndim, rl.rv(), rl.vv(), rl.fv(), rl.owned.lo,
                  rl.owned.hi, n, inv_h2);
  }
}

void DistMgSolver::restrict_to(int level) {
  exchange(level, /*r=*/2, 1);
  auto& fine = state_[static_cast<std::size_t>(level)];
  auto& coarse = state_[static_cast<std::size_t>(level - 1)];
  const index_t nc = cfg_.level_n(level - 1);
#pragma omp parallel for schedule(static)
  for (int r = 0; r < decomp_.ranks(); ++r) {
    RankLevel& cf = coarse[static_cast<std::size_t>(r)];
    RankLevel& fr = fine[static_cast<std::size_t>(r)];
    restrict_rows(cfg_.ndim, cf.fv(), fr.rv(), cf.owned.lo, cf.owned.hi, nc);
  }
  // The coarse right-hand side halo feeds aggregated smoothing there.
  exchange(level - 1, /*f=*/1, ghost_depth_);
}

void DistMgSolver::interp_correct(int level) {
  exchange(level - 1, /*v=*/0, 1);
  auto& fine = state_[static_cast<std::size_t>(level)];
  auto& coarse = state_[static_cast<std::size_t>(level - 1)];
  const index_t nf = cfg_.level_n(level);
#pragma omp parallel for schedule(static)
  for (int r = 0; r < decomp_.ranks(); ++r) {
    RankLevel& fr = fine[static_cast<std::size_t>(r)];
    RankLevel& cf = coarse[static_cast<std::size_t>(r)];
    interp_correct_rows(cfg_.ndim, fr.vv(), cf.vv(), fr.owned.lo,
                        fr.owned.hi, nf);
  }
}

void DistMgSolver::zero_v(int level) {
  auto& lvl = state_[static_cast<std::size_t>(level)];
  for (RankLevel& rl : lvl) rl.v.fill(0.0);
}

void DistMgSolver::visit(int level, bool zero_guess,
                         solvers::CycleKind kind) {
  using solvers::CycleKind;
  if (zero_guess) zero_v(level);
  if (level == 0) {
    smooth(0, cfg_.n2);
    return;
  }
  smooth(level, cfg_.n1);
  residual(level);
  restrict_to(level);
  visit(level - 1, /*zero_guess=*/true, kind);
  if (kind == CycleKind::W && level >= 2) {
    visit(level - 1, /*zero_guess=*/false, kind);
  } else if (kind == CycleKind::F) {
    visit(level - 1, /*zero_guess=*/false, CycleKind::V);
  }
  interp_correct(level);
  smooth(level, cfg_.n3);
}

void DistMgSolver::scatter(View v, View f) {
  const int L = cfg_.levels - 1;
  const index_t n = cfg_.level_n(L);
  auto& lvl = state_[static_cast<std::size_t>(L)];
  for (RankLevel& rl : lvl) {
    // Owned rows plus the adjacent global boundary rows (0 and n+1).
    const index_t lo = rl.owned.lo == 1 ? 0 : rl.owned.lo;
    const index_t hi = rl.owned.hi == n ? n + 1 : rl.owned.hi;
    copy_rows(cfg_.ndim, rl.vv(), v, lo, hi, n);
    copy_rows(cfg_.ndim, rl.fv(), f, lo, hi, n);
  }
  exchange(L, /*f=*/1, ghost_depth_);
}

void DistMgSolver::cycle() {
  visit(cfg_.levels - 1, /*zero_guess=*/false, cfg_.kind);
}

void DistMgSolver::gather(View v) const {
  const int L = cfg_.levels - 1;
  const index_t n = cfg_.level_n(L);
  const auto& lvl = state_[static_cast<std::size_t>(L)];
  for (const RankLevel& rl : lvl) {
    RankLevel& mut = const_cast<RankLevel&>(rl);
    copy_rows(cfg_.ndim, v, mut.vv(), rl.owned.lo, rl.owned.hi, n);
  }
}

// ---------------------------------------------------------------------
// Resilience: ring-replicated checkpoints and rank-failure recovery
// ---------------------------------------------------------------------

Interval DistMgSolver::checkpoint_rows(int rank) const {
  const int L = cfg_.levels - 1;
  const index_t n = cfg_.level_n(L);
  Interval rows = decomp_.owned(L, rank);
  // Widen to the adjacent global Dirichlet boundary rows so the union of
  // all slabs tiles the full global field [0, n+1] exactly once.
  if (rows.lo == 1) rows.lo = 0;
  if (rows.hi == n) rows.hi = n + 1;
  return rows;
}

bool DistMgSolver::has_checkpoint() const {
  return ckpt_ != nullptr && ckpt_->valid();
}

void DistMgSolver::write_checkpoint(int next_cycle) {
  if (!ckpt_) {
    ckpt_pool_ = std::make_unique<runtime::MemoryPool>();
    ckpt_ = std::make_unique<solvers::Checkpoint>(*ckpt_pool_);
  }
  const int L = cfg_.levels - 1;
  const int R = decomp_.ranks();
  auto& lvl = state_[static_cast<std::size_t>(L)];
  ckpt_->begin(next_cycle);
  // Only the finest-level iterate and right-hand side carry state across
  // cycle boundaries (every cycle zeroes the coarse iterates and
  // recomputes the coarse right-hand sides by restriction), so the
  // finest slabs are the whole checkpoint. Four slots per rank: own v,
  // own f, then a replica of the left ring neighbour's v and f — the
  // replica is what survives this rank's neighbour dying.
  for (int r = 0; r < R; ++r) {
    RankLevel& rl = lvl[static_cast<std::size_t>(r)];
    const index_t stride = rl.vv().stride[0];
    const Interval rows = checkpoint_rows(r);
    const index_t off = (rows.lo - rl.local_box.dim(0).lo) * stride;
    const index_t doubles = rows.size() * stride;
    ckpt_->save(static_cast<std::size_t>(4 * r + 0), rl.v.data() + off,
                doubles);
    ckpt_->save(static_cast<std::size_t>(4 * r + 1), rl.f.data() + off,
                doubles);
    const int src = (r - 1 + R) % R;
    RankLevel& sl = lvl[static_cast<std::size_t>(src)];
    const Interval srows = checkpoint_rows(src);
    const index_t soff = (srows.lo - sl.local_box.dim(0).lo) * stride;
    const index_t sdoubles = srows.size() * stride;
    ckpt_->save(static_cast<std::size_t>(4 * r + 2), sl.v.data() + soff,
                sdoubles);
    ckpt_->save(static_cast<std::size_t>(4 * r + 3), sl.f.data() + soff,
                sdoubles);
    if (R > 1) {
      // Replication is two messages (v, f) from `src` to this rank on a
      // real network — charged to the resilience budget.
      CommStats& rs = rank_stats_[static_cast<std::size_t>(r)];
      stats_.recovery_messages += 2;
      rs.recovery_messages += 2;
      stats_.recovery_doubles += 2 * sdoubles;
      rs.recovery_doubles += 2 * sdoubles;
    }
  }
  ckpt_->commit();
}

void DistMgSolver::recover(int dead_rank) {
  const int R = decomp_.ranks();
  PMG_CHECK(has_checkpoint(), "recover() needs a committed checkpoint");
  PMG_CHECK(dead_rank >= 0 && dead_rank < R,
            "dead rank " << dead_rank << " out of range");
  PMG_CHECK(R >= 2, "cannot recover the only rank");
  const int L = cfg_.levels - 1;
  const index_t n = cfg_.level_n(L);

  // Reassemble the global finest-level fields from the checkpoint: every
  // survivor restores its own slab, the dead rank's slab comes from the
  // replica held by its right ring neighbour. A checksum mismatch means
  // the recovery is unserviceable — surface it as a typed error.
  Box gbox(cfg_.ndim);
  for (int d = 0; d < cfg_.ndim; ++d) gbox.dim(d) = Interval{0, n + 1};
  grid::Buffer gv = grid::make_grid(gbox);
  grid::Buffer gf = grid::make_grid(gbox);
  View gvv = View::over(gv.data(), gbox);
  View gfv = View::over(gf.data(), gbox);
  const index_t stride = gvv.stride[0];
  long restored_doubles = 0;
  for (int r = 0; r < R; ++r) {
    const Interval rows = checkpoint_rows(r);
    const index_t doubles = rows.size() * stride;
    const index_t off = rows.lo * stride;
    std::size_t v_slot, f_slot;
    if (r == dead_rank) {
      const int mirror = (dead_rank + 1) % R;
      v_slot = static_cast<std::size_t>(4 * mirror + 2);
      f_slot = static_cast<std::size_t>(4 * mirror + 3);
      // Fetching the replica crosses the network.
      CommStats& ms = rank_stats_[static_cast<std::size_t>(mirror)];
      stats_.recovery_messages += 2;
      ms.recovery_messages += 2;
      stats_.recovery_doubles += 2 * doubles;
      ms.recovery_doubles += 2 * doubles;
    } else {
      v_slot = static_cast<std::size_t>(4 * r + 0);
      f_slot = static_cast<std::size_t>(4 * r + 1);
    }
    if (!ckpt_->restore(v_slot, gv.data() + off, doubles) ||
        !ckpt_->restore(f_slot, gf.data() + off, doubles)) {
      throw Error(ErrorCode::CheckpointCorrupt,
                  "checkpoint slab for rank " + std::to_string(r) +
                      " failed its checksum; recovery unserviceable");
    }
    restored_doubles += 2 * doubles;
  }

  // Shrink to the survivors and rebuild the local fields. The new
  // decomposition is exactly what a fresh solver with R-1 ranks would
  // use, and distributed results are rank-count independent, so the
  // continued solve converges to the same answer as an unfailed run.
  const int resume = ckpt_->next_cycle();
  decomp_ = decomp_.shrink_to_survivors(R - 1);
  build_state();
  recovering_ = true;  // route scatter traffic to recovery accounting
  scatter(gvv, gfv);
  recovering_ = false;
  // The slab redistribution itself: each surviving rank receives its new
  // v and f slabs (scatter's copies are direct memcpys in simulation but
  // messages on a network).
  for (int r = 0; r < decomp_.ranks(); ++r) {
    const Interval rows = checkpoint_rows(r);
    const long doubles = rows.size() * stride;
    CommStats& rs = rank_stats_[static_cast<std::size_t>(r)];
    stats_.recovery_messages += 2;
    rs.recovery_messages += 2;
    stats_.recovery_doubles += 2 * doubles;
    rs.recovery_doubles += 2 * doubles;
  }
  // Re-checkpoint under the new topology so a second death is survivable.
  write_checkpoint(resume);
  obs::Metrics::instance().counter("resil.recoveries").add(1);
  PMG_TRACE_INSTANT(Recovery, -1, -1, dead_rank,
                    static_cast<double>(restored_doubles));
  pending_dead_ = -1;
}

DistMgSolver::ResilienceReport DistMgSolver::solve_cycles(
    int cycles, const ResilienceConfig& rc) {
  PMG_CHECK(cycles >= 0, "negative cycle count");
  ResilienceReport rep;
  const bool ckpt_on = rc.checkpoint_cadence > 0;
  if (ckpt_on) {
    write_checkpoint(0);
    ++rep.checkpoint_writes;
  }
  int c = 0;
  while (c < cycles) {
    try {
      cycle();
    } catch (const Error& e) {
      if (e.code() != ErrorCode::RankFailure) throw;
      ++rep.rank_deaths;
      // Unrecoverable: no snapshot to roll back to, the recovery budget
      // is spent, or there is no survivor to absorb the slab.
      if (!has_checkpoint() || rep.recoveries >= rc.max_recoveries ||
          decomp_.ranks() < 2 || pending_dead_ < 0) {
        throw;
      }
      const int resume = ckpt_->next_cycle();
      recover(pending_dead_);
      ++rep.recoveries;
      ++rep.checkpoint_restores;
      ++rep.checkpoint_writes;  // recover() re-checkpoints
      c = resume;
      continue;
    }
    ++c;
    ++rep.cycles_run;
    if (ckpt_on && c < cycles && c % rc.checkpoint_cadence == 0) {
      write_checkpoint(c);
      ++rep.checkpoint_writes;
    }
  }
  rep.final_ranks = decomp_.ranks();
  return rep;
}

}  // namespace polymg::dist
