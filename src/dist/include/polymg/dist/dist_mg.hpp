// Simulated distributed-memory multigrid backend.
//
// The paper lists a distributed-memory backend as future work and its
// related-work discussion centres on Williams et al.'s communication
// aggregation: exchange a ghost zone `s` cells deep, then run `s`
// smoothing steps locally with redundant computation in the halo — the
// distributed-memory twin of overlapped tiling. This module builds that
// system as a simulation: "ranks" are subdomains of one address space, a
// halo exchange is a neighbour-to-neighbour copy, and communication cost
// is surfaced as counted messages and transferred doubles (the
// quantities a network would charge for).
//
// Decomposition is 1-d along the outermost dimension and is anchored at
// the coarsest level so every level's partition aligns under the 2i
// coarse-fine map: rank r owns coarse rows [lo, hi] and fine rows
// [2·lo - 1, 2·hi] (the last rank also takes the final fine row). With
// that alignment, restriction and interpolation only ever need
// depth-1 halos.
#pragma once

#include <vector>

#include "polymg/grid/ops.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::obs {
class Counter;
}

namespace polymg::dist {

using grid::View;
using poly::index_t;
using solvers::CycleConfig;

/// Communication accounting (what an MPI backend would put on the wire).
struct CommStats {
  long messages = 0;
  long doubles_sent = 0;
  long exchanges = 0;  ///< collective halo-exchange rounds
  long retries = 0;    ///< halo messages re-sent after a dropped delivery

  void clear() { *this = CommStats{}; }
};

/// Per-level 1-d decomposition along dimension 0.
class Decomp {
public:
  Decomp(const CycleConfig& cfg, int ranks);

  int ranks() const { return ranks_; }
  /// Owned interior rows of `rank` at `level` (inclusive).
  poly::Interval owned(int level, int rank) const;

private:
  int ranks_;
  int levels_;
  std::vector<std::vector<poly::Interval>> owned_;  // [level][rank]
};

/// Distributed geometric multigrid solver (Jacobi smoothing, V/W/F
/// cycles, the same numerics as solvers::HandOptSolver — results match
/// the shared-memory solvers bit for bit).
class DistMgSolver {
public:
  /// `ghost_depth` is the communication-aggregation factor: halos are
  /// exchanged `ghost_depth` cells deep and each exchange covers
  /// min(ghost_depth, remaining) smoothing steps, with redundant halo
  /// computation in between (depth 1 = classic exchange-per-step).
  DistMgSolver(const CycleConfig& cfg, int ranks, int ghost_depth = 1);

  /// Load the finest-level iterate and right-hand side (global views).
  void scatter(View v, View f);
  /// One multigrid cycle over the distributed state.
  void cycle();
  /// Read the finest-level iterate back into a global view.
  void gather(View v) const;

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_.clear(); }
  const CycleConfig& config() const { return cfg_; }
  int ranks() const { return decomp_.ranks(); }

  /// A halo message that fails to deliver (fault site `dist.halo`) is
  /// re-sent up to this many times — counted in CommStats::retries —
  /// before the exchange throws Error(HaloExchangeFailed).
  void set_max_halo_retries(int n) { max_halo_retries_ = n; }
  int max_halo_retries() const { return max_halo_retries_; }

private:
  struct RankLevel {
    poly::Interval owned;       ///< global interior rows owned
    poly::Box local_box;        ///< rows [owned.lo - halo, owned.hi + halo]
    grid::Buffer v, f, r, tmp;  ///< local fields incl. halo
    View vv() { return View::over(v.data(), local_box); }
    View fv() { return View::over(f.data(), local_box); }
    View rv() { return View::over(r.data(), local_box); }
    View tv() { return View::over(tmp.data(), local_box); }
  };

  /// Exchange `depth` halo rows of field `which` (0=v,1=f,2=r) at a
  /// level between neighbouring ranks; global-boundary halos are zeroed.
  void exchange(int level, int which, index_t depth);
  void smooth(int level, int steps);
  void residual(int level);
  void restrict_to(int level);  ///< r at `level` -> f at level-1
  void interp_correct(int level);
  void zero_v(int level);

  CycleConfig cfg_;
  Decomp decomp_;
  index_t ghost_depth_;
  int max_halo_retries_ = 3;
  std::vector<std::vector<RankLevel>> state_;  // [level][rank]
  CommStats stats_;

  // obs metrics handles (resolved once at construction).
  obs::Counter* ctr_exchanges_ = nullptr;     // dist.exchanges
  obs::Counter* ctr_messages_ = nullptr;      // dist.messages
  obs::Counter* ctr_retries_ = nullptr;       // dist.halo_retries
  obs::Counter* ctr_doubles_sent_ = nullptr;  // dist.doubles_sent

  void visit(int level, bool zero_guess, solvers::CycleKind kind);
  double* field_ptr(RankLevel& rl, int which);
};

}  // namespace polymg::dist
