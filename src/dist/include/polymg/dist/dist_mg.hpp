// Simulated distributed-memory multigrid backend.
//
// The paper lists a distributed-memory backend as future work and its
// related-work discussion centres on Williams et al.'s communication
// aggregation: exchange a ghost zone `s` cells deep, then run `s`
// smoothing steps locally with redundant computation in the halo — the
// distributed-memory twin of overlapped tiling. This module builds that
// system as a simulation: "ranks" are subdomains of one address space, a
// halo exchange is a neighbour-to-neighbour copy, and communication cost
// is surfaced as counted messages and transferred doubles (the
// quantities a network would charge for).
//
// Decomposition is 1-d along the outermost dimension and is anchored at
// the coarsest level so every level's partition aligns under the 2i
// coarse-fine map: rank r owns coarse rows [lo, hi] and fine rows
// [2·lo - 1, 2·hi] (the last rank also takes the final fine row). With
// that alignment, restriction and interpolation only ever need
// depth-1 halos.
#pragma once

#include <memory>
#include <vector>

#include "polymg/grid/ops.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::obs {
class Counter;
}
namespace polymg::runtime {
class MemoryPool;
}
namespace polymg::solvers {
class Checkpoint;
}

namespace polymg::dist {

using grid::View;
using poly::index_t;
using solvers::CycleConfig;

/// Communication accounting (what an MPI backend would put on the wire).
struct CommStats {
  long messages = 0;
  long doubles_sent = 0;
  long exchanges = 0;  ///< collective halo-exchange rounds
  long retries = 0;    ///< halo messages re-sent after a dropped delivery
  /// Resilience traffic, accounted separately from the solve's own
  /// communication: checkpoint replication to the mirror neighbour and
  /// the slab redistribution that follows a rank failure.
  long recovery_messages = 0;
  long recovery_doubles = 0;

  void clear() { *this = CommStats{}; }

  /// Field-wise accumulation — the per-rank roll-up (DistMgSolver::
  /// rank_stats) sums to the aggregate totals through this.
  CommStats& operator+=(const CommStats& o) {
    messages += o.messages;
    doubles_sent += o.doubles_sent;
    exchanges += o.exchanges;
    retries += o.retries;
    recovery_messages += o.recovery_messages;
    recovery_doubles += o.recovery_doubles;
    return *this;
  }
};

/// Per-level 1-d decomposition along dimension 0.
class Decomp {
public:
  Decomp(const CycleConfig& cfg, int ranks);

  int ranks() const { return ranks_; }
  /// Owned interior rows of `rank` at `level` (inclusive).
  poly::Interval owned(int level, int rank) const;

  /// Re-partition the same hierarchy over `survivors` ranks (the
  /// shrink-to-survivors step of rank-failure recovery). The result is
  /// identical to constructing a fresh Decomp with that rank count, so
  /// post-recovery numerics stay rank-count independent.
  Decomp shrink_to_survivors(int survivors) const;

private:
  int ranks_;
  int levels_;
  CycleConfig cfg_;  ///< retained so the decomposition can re-partition
  std::vector<std::vector<poly::Interval>> owned_;  // [level][rank]
};

/// Distributed geometric multigrid solver (Jacobi smoothing, V/W/F
/// cycles, the same numerics as solvers::HandOptSolver — results match
/// the shared-memory solvers bit for bit).
class DistMgSolver {
public:
  /// `ghost_depth` is the communication-aggregation factor: halos are
  /// exchanged `ghost_depth` cells deep and each exchange covers
  /// min(ghost_depth, remaining) smoothing steps, with redundant halo
  /// computation in between (depth 1 = classic exchange-per-step).
  DistMgSolver(const CycleConfig& cfg, int ranks, int ghost_depth = 1);

  ~DistMgSolver();

  /// Load the finest-level iterate and right-hand side (global views).
  void scatter(View v, View f);
  /// One multigrid cycle over the distributed state.
  void cycle();
  /// Read the finest-level iterate back into a global view.
  void gather(View v) const;

  const CommStats& stats() const { return stats_; }
  /// Per-rank communication accounting, attributed to the receiving
  /// rank. Sized at the largest rank count the solver has had — entries
  /// for ranks lost to recovery are retained, so summing the vector with
  /// CommStats::operator+= always reproduces stats() (message/double/
  /// retry/recovery fields; `exchanges` counts collective rounds and
  /// lives only in the aggregate).
  const std::vector<CommStats>& rank_stats() const { return rank_stats_; }
  void reset_stats() {
    stats_.clear();
    for (auto& s : rank_stats_) s.clear();
  }
  const CycleConfig& config() const { return cfg_; }
  int ranks() const { return decomp_.ranks(); }

  /// A halo message that fails to deliver (fault site `dist.halo`) is
  /// re-sent up to this many times — counted in CommStats::retries —
  /// before the exchange throws Error(HaloExchangeFailed).
  void set_max_halo_retries(int n) { max_halo_retries_ = n; }
  int max_halo_retries() const { return max_halo_retries_; }

  // -- Resilience (DESIGN.md §9) --------------------------------------
  //
  // Ring replication: at every checkpoint, rank r also stores a replica
  // of rank (r-1+R)%R's finest-level slab, so a single rank's state
  // survives that rank's death. On a halo-exchange timeout (fault site
  // `rank.death`: the sender stops answering), the cycle throws
  // Error(RankFailure); recover() rebuilds the dead rank's slab from its
  // right neighbour's replica, re-partitions over the survivors and
  // continues. solve_cycles() packages the whole loop.

  struct ResilienceConfig {
    int checkpoint_cadence = 1;  ///< cycles between checkpoints (0 = off)
    int max_recoveries = 2;      ///< rank deaths survived per solve
  };
  struct ResilienceReport {
    int cycles_run = 0;       ///< cycles executed, including re-runs
    int rank_deaths = 0;      ///< failures detected
    int recoveries = 0;       ///< failures recovered from
    int checkpoint_writes = 0;
    int checkpoint_restores = 0;
    int final_ranks = 0;      ///< ranks remaining at the end
  };

  /// Snapshot every rank's finest-level slab (v and f) plus a replica of
  /// its ring neighbour's slab into the checksummed checkpoint.
  /// Replication traffic is charged to CommStats::recovery_*.
  void write_checkpoint(int next_cycle);
  /// True once a committed checkpoint exists.
  bool has_checkpoint() const;
  /// Rebuild after the death of `dead_rank`: restore the global fields
  /// from checkpoint + replica, shrink the decomposition to the
  /// survivors, re-scatter and re-checkpoint. Throws
  /// Error(CheckpointCorrupt) when the replica fails its checksum.
  void recover(int dead_rank);
  /// Run `cycles` multigrid cycles, checkpointing on the configured
  /// cadence and recovering from up to max_recoveries rank deaths; a
  /// death rolls back to the last checkpoint's cycle index, so the
  /// completed solve matches an unfailed run at the surviving rank
  /// count. Rethrows when the failure is unrecoverable (no checkpoint,
  /// budget exhausted, or fewer than two ranks).
  ResilienceReport solve_cycles(int cycles, const ResilienceConfig& rc);
  ResilienceReport solve_cycles(int cycles) {
    return solve_cycles(cycles, ResilienceConfig{});
  }

private:
  struct RankLevel {
    poly::Interval owned;       ///< global interior rows owned
    poly::Box local_box;        ///< rows [owned.lo - halo, owned.hi + halo]
    grid::Buffer v, f, r, tmp;  ///< local fields incl. halo
    View vv() { return View::over(v.data(), local_box); }
    View fv() { return View::over(f.data(), local_box); }
    View rv() { return View::over(r.data(), local_box); }
    View tv() { return View::over(tmp.data(), local_box); }
  };

  /// Exchange `depth` halo rows of field `which` (0=v,1=f,2=r) at a
  /// level between neighbouring ranks; global-boundary halos are zeroed.
  void exchange(int level, int which, index_t depth);
  void smooth(int level, int steps);
  void residual(int level);
  void restrict_to(int level);  ///< r at `level` -> f at level-1
  void interp_correct(int level);
  void zero_v(int level);

  CycleConfig cfg_;
  Decomp decomp_;
  index_t ghost_depth_;
  int max_halo_retries_ = 3;
  std::vector<std::vector<RankLevel>> state_;  // [level][rank]
  CommStats stats_;
  std::vector<CommStats> rank_stats_;  // per receiving rank; never shrinks

  // Resilience state. The checkpoint pool and object are created lazily
  // on the first write_checkpoint(); `recovering_` routes exchange
  // accounting to CommStats::recovery_* and suspends rank-death
  // detection while recovery itself re-scatters.
  std::unique_ptr<runtime::MemoryPool> ckpt_pool_;
  std::unique_ptr<solvers::Checkpoint> ckpt_;
  bool recovering_ = false;
  int pending_dead_ = -1;  ///< rank flagged dead by the last detection

  // obs metrics handles (resolved once at construction).
  obs::Counter* ctr_exchanges_ = nullptr;     // dist.exchanges
  obs::Counter* ctr_messages_ = nullptr;      // dist.messages
  obs::Counter* ctr_retries_ = nullptr;       // dist.halo_retries
  obs::Counter* ctr_doubles_sent_ = nullptr;  // dist.doubles_sent

  void visit(int level, bool zero_guess, solvers::CycleKind kind);
  double* field_ptr(RankLevel& rl, int which);
  /// (Re)build the per-level, per-rank local fields for the current
  /// decomposition (construction and post-recovery re-partitioning).
  void build_state();
  /// Finest-level slab a rank checkpoints: its owned rows widened to the
  /// adjacent global boundary rows for the first/last rank. Returns the
  /// row interval; the payload is rows × stride contiguous doubles.
  poly::Interval checkpoint_rows(int rank) const;
};

}  // namespace polymg::dist
