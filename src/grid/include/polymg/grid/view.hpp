// Non-owning strided views over buffers.
//
// A View maps logical grid coordinates to a flat buffer whose origin may
// be offset — the same view type addresses full arrays (origin = domain
// lower corner) and tile scratchpads (origin = the tile footprint's lower
// corner), so every kernel is written once against View.
#pragma once

#include <array>

#include "polymg/common/error.hpp"
#include "polymg/grid/dtype.hpp"
#include "polymg/poly/box.hpp"

namespace polymg::grid {

using poly::Box;
using poly::index_t;
using poly::kMaxDims;

/// Strided view: element (i0, i1, ...) lives at
///   ptr[(i0 - origin0)*stride0 + (i1 - origin1)*stride1 + ...].
/// The last dimension is contiguous (stride == 1) in all views PolyMG
/// creates; kernels rely on that for their inner loops.
///
/// Views carry a storage dtype tag. F64 views (the default) behave
/// exactly as before — `ptr` addresses doubles and every historical
/// accessor applies. F32 views reuse the same struct: `ptr` is a
/// reinterpreted pointer into float storage (strides and origins stay
/// in *elements*), `f32()` recovers the typed pointer, and the
/// dtype-aware load/store accessors below convert to/from double at
/// the access. The double-typed accessors (at/at2/at3) are only valid
/// on F64 views.
struct View {
  double* ptr = nullptr;
  int ndim = 0;
  DType dtype = DType::F64;
  std::array<index_t, kMaxDims> origin{};
  std::array<index_t, kMaxDims> stride{};

  /// View covering `box` at the start of `data` (row-major, last dim
  /// contiguous). `data` must hold at least box.count() doubles.
  static View over(double* data, const Box& box) {
    View v;
    v.ptr = data;
    v.ndim = box.ndim();
    index_t s = 1;
    for (int d = box.ndim() - 1; d >= 0; --d) {
      v.origin[d] = box.dim(d).lo;
      v.stride[d] = s;
      s *= box.dim(d).size();
    }
    return v;
  }

  /// F32 view covering `box` at the start of `data`. `data` must hold
  /// at least box.count() floats.
  static View over(float* data, const Box& box) {
    View v = over(reinterpret_cast<double*>(data), box);
    v.dtype = DType::F32;
    return v;
  }

  /// Typed pointer of an F32 view (the storage `ptr` reinterprets).
  float* f32() const {
    PMG_DCHECK(dtype == DType::F32, "f32() on a non-F32 view");
    return reinterpret_cast<float*>(ptr);
  }

  /// Bytes per element of this view's storage dtype.
  std::size_t elem_size() const { return dtype_size(dtype); }

  /// Dtype-aware element access at a flat offset (in elements): loads
  /// promote to double, stores round once from double. On F64 views
  /// these compile to the plain array access.
  double load(index_t off) const {
    return dtype == DType::F32 ? static_cast<double>(
                                     reinterpret_cast<const float*>(ptr)[off])
                               : ptr[off];
  }
  void store(index_t off, double v) {
    if (dtype == DType::F32) {
      reinterpret_cast<float*>(ptr)[off] = static_cast<float>(v);
    } else {
      ptr[off] = v;
    }
  }

  index_t offset2(index_t i, index_t j) const {
    return (i - origin[0]) * stride[0] + (j - origin[1]) * stride[1];
  }
  index_t offset3(index_t i, index_t j, index_t k) const {
    return (i - origin[0]) * stride[0] + (j - origin[1]) * stride[1] +
           (k - origin[2]) * stride[2];
  }

  double& at2(index_t i, index_t j) { return ptr[offset2(i, j)]; }
  double at2(index_t i, index_t j) const { return ptr[offset2(i, j)]; }
  double& at3(index_t i, index_t j, index_t k) {
    return ptr[offset3(i, j, k)];
  }
  double at3(index_t i, index_t j, index_t k) const {
    return ptr[offset3(i, j, k)];
  }

  /// Conservative check that this view can address every point of `box`
  /// without aliasing a neighbouring row: the origin must not exceed the
  /// box's lower corner, the last dimension must be contiguous, and each
  /// inner extent implied by the stride ratio must span the box. The
  /// outermost allocation size is not recoverable from a raw pointer, so
  /// a view can still pass while under-allocated along dimension 0 —
  /// this catches the common misuse (a view built over a smaller or
  /// shifted domain), not every possible one.
  bool covers(const Box& box) const {
    if (ptr == nullptr || ndim != box.ndim() || ndim == 0) return false;
    if (stride[ndim - 1] != 1) return false;
    for (int d = 0; d < ndim; ++d) {
      if (origin[d] > box.dim(d).lo) return false;
    }
    for (int d = ndim - 1; d >= 1; --d) {
      if (stride[d - 1] <= 0 || stride[d - 1] % stride[d] != 0) return false;
      const index_t extent = stride[d - 1] / stride[d];
      if (box.dim(d).hi - origin[d] + 1 > extent) return false;
    }
    return true;
  }

  /// Generic accessor for dimension-agnostic code paths (tests, the
  /// bytecode evaluator).
  double& at(const std::array<index_t, kMaxDims>& p) {
    index_t off = 0;
    for (int d = 0; d < ndim; ++d) off += (p[d] - origin[d]) * stride[d];
    return ptr[off];
  }
  double at(const std::array<index_t, kMaxDims>& p) const {
    index_t off = 0;
    for (int d = 0; d < ndim; ++d) off += (p[d] - origin[d]) * stride[d];
    return ptr[off];
  }

  /// Dtype-aware point access for dimension-agnostic paths (the stack
  /// bytecode interpreter, health scans, fault injection): loads
  /// promote to double, stores round once from double.
  double load_at(const std::array<index_t, kMaxDims>& p) const {
    index_t off = 0;
    for (int d = 0; d < ndim; ++d) off += (p[d] - origin[d]) * stride[d];
    return load(off);
  }
  void store_at(const std::array<index_t, kMaxDims>& p, double v) {
    index_t off = 0;
    for (int d = 0; d < ndim; ++d) off += (p[d] - origin[d]) * stride[d];
    store(off, v);
  }
};

}  // namespace polymg::grid
