// Bulk grid utilities: fills, norms, comparisons, region copies.
// These are host-side helpers (problem setup, verification, metrics), not
// the pipeline kernels — those live in polymg::runtime.
#pragma once

#include <functional>

#include "polymg/grid/buffer.hpp"
#include "polymg/grid/view.hpp"

namespace polymg::grid {

/// Allocate a buffer sized for `domain` and return it zero-filled.
Buffer make_grid(const Box& domain);

/// Float variant: a zero-filled F32 buffer sized for `domain`. View it
/// with View::over(buf.data(), domain), which tags the view F32.
BufferF32 make_grid_f32(const Box& domain);

/// Set every point of `region` (must lie inside the view's addressable
/// area) to f(i, j[, k]).
void fill_region(View v, const Box& region,
                 const std::function<double(index_t, index_t, index_t)>& f);

/// Copy `region` from src to dst (both views must cover it). The views
/// may differ in dtype: loads promote to double, stores round once —
/// so an F64 -> F32 copy is the canonical demotion and F32 -> F64 the
/// canonical promotion (exact, every float is representable).
void copy_region(View dst, View src, const Box& region);

/// dst += src over `region`, accumulating in double regardless of
/// either view's storage dtype (the mixed-precision outer correction:
/// a double iterate absorbing a float-path correction loses nothing).
void add_region(View dst, View src, const Box& region);

/// Max-norm of a region.
double max_norm(View v, const Box& region);

/// L2 norm (sqrt of sum of squares) of a region.
double l2_norm(View v, const Box& region);

/// Max absolute difference between two views over a region.
double max_diff(View a, View b, const Box& region);

}  // namespace polymg::grid
