// Owning, aligned, typed flat buffers for grid data.
#pragma once

#include <cstddef>
#include <cstring>

#include "polymg/common/align.hpp"
#include "polymg/common/error.hpp"
#include "polymg/grid/dtype.hpp"

namespace polymg::grid {

/// An owning aligned array of T (float or double). PolyMG numeric data
/// defaults to double precision, matching the paper's benchmarks; the
/// mixed-precision layer stores fine-grid intermediates as float while
/// every kernel still accumulates in double. Explicit instantiations
/// for both element types live in buffer.cpp.
template <typename T>
class TBuffer {
public:
  static_assert(sizeof(T) == sizeof(float) || sizeof(T) == sizeof(double),
                "grid buffers hold IEEE float or double elements");

  TBuffer() = default;
  explicit TBuffer(std::size_t count)
      : data_(aligned_array<T>(count)), count_(count) {}

  TBuffer(TBuffer&&) noexcept = default;
  TBuffer& operator=(TBuffer&&) noexcept = default;
  TBuffer(const TBuffer&) = delete;
  TBuffer& operator=(const TBuffer&) = delete;

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  std::size_t size() const { return count_; }
  bool allocated() const { return data_ != nullptr; }

  static constexpr DType dtype() {
    return sizeof(T) == sizeof(float) ? DType::F32 : DType::F64;
  }

  T& operator[](std::size_t i) {
    PMG_DCHECK(i < count_, "buffer index " << i << " >= " << count_);
    return data_[i];
  }
  T operator[](std::size_t i) const {
    PMG_DCHECK(i < count_, "buffer index " << i << " >= " << count_);
    return data_[i];
  }

  void fill(T v);

  /// Deep copy (for tests and reference baselines).
  TBuffer clone() const;

private:
  AlignedPtr<T> data_;
  std::size_t count_ = 0;
};

extern template class TBuffer<double>;
extern template class TBuffer<float>;

/// The historical name: a double buffer (every pre-existing call site
/// compiles unchanged).
using Buffer = TBuffer<double>;
using BufferF32 = TBuffer<float>;

}  // namespace polymg::grid
