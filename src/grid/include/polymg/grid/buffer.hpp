// Owning, aligned, typed flat buffers for grid data.
#pragma once

#include <cstddef>
#include <cstring>

#include "polymg/common/align.hpp"
#include "polymg/common/error.hpp"

namespace polymg::grid {

/// An owning aligned array of doubles. All PolyMG numeric data is double
/// precision, matching the paper's benchmarks; the storage-class machinery
/// still carries a dtype tag for generality.
class Buffer {
public:
  Buffer() = default;
  explicit Buffer(std::size_t count)
      : data_(aligned_array<double>(count)), count_(count) {}

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  double* data() { return data_.get(); }
  const double* data() const { return data_.get(); }
  std::size_t size() const { return count_; }
  bool allocated() const { return data_ != nullptr; }

  double& operator[](std::size_t i) {
    PMG_DCHECK(i < count_, "buffer index " << i << " >= " << count_);
    return data_[i];
  }
  double operator[](std::size_t i) const {
    PMG_DCHECK(i < count_, "buffer index " << i << " >= " << count_);
    return data_[i];
  }

  void fill(double v);

  /// Deep copy (for tests and reference baselines).
  Buffer clone() const;

private:
  AlignedPtr<double> data_;
  std::size_t count_ = 0;
};

}  // namespace polymg::grid
