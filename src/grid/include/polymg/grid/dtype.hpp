// Element type tags for the dtype-generic grid layer.
//
// PolyMG stores grid data as either IEEE double (the default, and the
// only dtype the reference oracle ever needs) or IEEE float (the
// mixed-precision fast path for memory-bound fine-grid stages). All
// kernel arithmetic accumulates in double regardless of storage dtype;
// a float grid costs exactly one rounding at each store.
#pragma once

#include <cstddef>
#include <cstdint>

namespace polymg::grid {

enum class DType : std::uint8_t {
  F64 = 0,  ///< IEEE binary64 (the historical, default dtype)
  F32 = 1,  ///< IEEE binary32 (mixed-precision storage)
};

constexpr std::size_t dtype_size(DType t) {
  return t == DType::F32 ? sizeof(float) : sizeof(double);
}

constexpr const char* to_string(DType t) {
  return t == DType::F32 ? "f32" : "f64";
}

}  // namespace polymg::grid
