#include "polymg/grid/ops.hpp"

#include <cmath>

namespace polymg::grid {

namespace {

/// Apply `fn(i, j, k)` to every point of `region` (k fixed at 0 for 2-d).
template <typename Fn>
void for_each_point(const Box& region, Fn&& fn) {
  if (region.empty()) return;
  if (region.ndim() == 2) {
    for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
      for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
        fn(i, j, index_t{0});
      }
    }
  } else if (region.ndim() == 3) {
    for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
      for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
        for (index_t k = region.dim(2).lo; k <= region.dim(2).hi; ++k) {
          fn(i, j, k);
        }
      }
    }
  } else if (region.ndim() == 1) {
    for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
      fn(i, index_t{0}, index_t{0});
    }
  } else {
    PMG_CHECK(false, "unsupported ndim " << region.ndim());
  }
}

/// Dtype-aware point read, promoted to double.
double read(const View& v, index_t i, index_t j, index_t k) {
  if (v.dtype == DType::F64) {
    switch (v.ndim) {
      case 2:
        return v.at2(i, j);
      case 3:
        return v.at3(i, j, k);
      default:
        return v.at({i, j, k});
    }
  }
  return v.load_at({i, j, k});
}

/// Dtype-aware point write, rounded once from double.
void write(View& v, index_t i, index_t j, index_t k, double x) {
  if (v.dtype == DType::F64) {
    if (v.ndim == 2) {
      v.at2(i, j) = x;
    } else if (v.ndim == 3) {
      v.at3(i, j, k) = x;
    } else {
      v.at({i, j, k}) = x;
    }
    return;
  }
  v.store_at({i, j, k}, x);
}

}  // namespace

Buffer make_grid(const Box& domain) {
  Buffer b(static_cast<std::size_t>(domain.count()));
  b.fill(0.0);
  return b;
}

BufferF32 make_grid_f32(const Box& domain) {
  BufferF32 b(static_cast<std::size_t>(domain.count()));
  b.fill(0.0f);
  return b;
}

void fill_region(View v, const Box& region,
                 const std::function<double(index_t, index_t, index_t)>& f) {
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    write(v, i, j, k, f(i, j, k));
  });
}

void copy_region(View dst, View src, const Box& region) {
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    write(dst, i, j, k, read(src, i, j, k));
  });
}

void add_region(View dst, View src, const Box& region) {
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    write(dst, i, j, k, read(dst, i, j, k) + read(src, i, j, k));
  });
}

double max_norm(View v, const Box& region) {
  // std::max(m, NaN) silently keeps m, so a poisoned field would report
  // a healthy norm; propagate NaN explicitly instead.
  double m = 0.0;
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    const double x = std::abs(read(v, i, j, k));
    if (x > m || x != x) m = x;
  });
  return m;
}

double l2_norm(View v, const Box& region) {
  double s = 0.0;
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    const double x = read(v, i, j, k);
    s += x * x;
  });
  return std::sqrt(s);
}

double max_diff(View a, View b, const Box& region) {
  // NaN-propagating for the same reason as max_norm.
  double m = 0.0;
  for_each_point(region, [&](index_t i, index_t j, index_t k) {
    const double x = std::abs(read(a, i, j, k) - read(b, i, j, k));
    if (x > m || x != x) m = x;
  });
  return m;
}

}  // namespace polymg::grid
