#include "polymg/grid/buffer.hpp"

#include <algorithm>

namespace polymg::grid {

void Buffer::fill(double v) {
  std::fill_n(data_.get(), count_, v);
}

Buffer Buffer::clone() const {
  Buffer b(count_);
  if (count_ > 0) std::memcpy(b.data(), data_.get(), count_ * sizeof(double));
  return b;
}

}  // namespace polymg::grid
