#include "polymg/grid/buffer.hpp"

#include <algorithm>

namespace polymg::grid {

template <typename T>
void TBuffer<T>::fill(T v) {
  std::fill_n(data_.get(), count_, v);
}

template <typename T>
TBuffer<T> TBuffer<T>::clone() const {
  TBuffer<T> b(count_);
  if (count_ > 0) std::memcpy(b.data(), data_.get(), count_ * sizeof(T));
  return b;
}

template class TBuffer<double>;
template class TBuffer<float>;

}  // namespace polymg::grid
