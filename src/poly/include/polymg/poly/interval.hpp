// Closed integer intervals — the 1-d building block of the rectangular
// region algebra PolyMG's planner uses in place of full ISL sets. All
// regions that arise from stencil footprints over rectangular domains are
// boxes, so interval arithmetic is exact for this domain.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>

namespace polymg::poly {

using index_t = std::int64_t;

/// Floor division (round toward negative infinity), as used by sampled
/// accesses like Interp's x/2.
constexpr index_t floordiv(index_t a, index_t b) {
  index_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division.
constexpr index_t ceildiv(index_t a, index_t b) {
  return -floordiv(-a, b);
}

/// Closed interval [lo, hi]; empty iff lo > hi.
struct Interval {
  index_t lo = 0;
  index_t hi = -1;  // default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(index_t l, index_t h) : lo(l), hi(h) {}

  constexpr bool empty() const { return lo > hi; }
  constexpr index_t size() const { return empty() ? 0 : hi - lo + 1; }
  constexpr bool contains(index_t x) const { return x >= lo && x <= hi; }
  constexpr bool contains(const Interval& o) const {
    return o.empty() || (lo <= o.lo && o.hi <= hi);
  }

  friend constexpr bool operator==(const Interval&, const Interval&) =
      default;
};

constexpr Interval intersect(const Interval& a, const Interval& b) {
  return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

/// Smallest interval containing both (union hull). An empty side is
/// ignored.
constexpr Interval hull(const Interval& a, const Interval& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// Expand both ends by r (shrink if r < 0).
constexpr Interval dilate(const Interval& a, index_t r) {
  if (a.empty()) return a;
  return Interval{a.lo - r, a.hi + r};
}

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  if (iv.empty()) return os << "[]";
  return os << "[" << iv.lo << "," << iv.hi << "]";
}

}  // namespace polymg::poly
