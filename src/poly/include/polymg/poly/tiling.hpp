// Tile partitioning helpers for overlapped tiling.
//
// Overlapped tiles partition the live-out (anchor) domain disjointly; the
// overlap appears when the planner walks backwards through the fused group
// growing each producer's required region via footprint(). This header
// provides the disjoint partition of the anchor domain and the arithmetic
// for sizing the per-stage scratchpad maxima.
#pragma once

#include <array>
#include <vector>

#include "polymg/poly/access.hpp"

namespace polymg::poly {

/// Tile edge lengths, one per dimension (outermost first). Dimensions a
/// pipeline does not have are ignored.
using TileSizes = std::array<index_t, kMaxDims>;

/// Grid of tiles covering `domain` disjointly, tile (i0,i1,...) covering
/// [lo_d + i_d*size_d, min(lo_d + (i_d+1)*size_d - 1, hi_d)].
struct TileGrid {
  Box domain;
  TileSizes sizes{};
  std::array<index_t, kMaxDims> ntiles{};  // tiles per dimension
  index_t total = 0;                       // product of ntiles

  /// Box of the flat tile index t ∈ [0, total).
  Box tile_box(index_t t) const;
};

/// Partition `domain` into tiles of at most `sizes` per dimension.
/// Dimensions with size <= 0 become a single tile spanning the domain.
TileGrid make_tile_grid(const Box& domain, const TileSizes& sizes);

/// Upper bound on the per-dimension extent of footprint(a, region) given
/// only the extent of `region` — used at plan time to size scratchpads
/// before concrete tile coordinates exist. Exact up to the +1 slack a ÷2
/// sampled access can add from floor alignment.
index_t footprint_extent_bound(const DimAccess& a, index_t region_extent);

}  // namespace polymg::poly
