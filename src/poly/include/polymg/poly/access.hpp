// Instance-wise access summaries.
//
// Every read a PolyMG function makes of a producer has, per dimension, the
// form  in_index = floor(num * x / den) + offset  with num/den ∈ {1, 2,
// 1/2} in practice (same-level stencils, Restrict's ×2 sampling, Interp's
// ÷2 sampling). A DimAccess summarizes all such reads along one dimension
// by the offset range [lo, hi]; an Access is the per-dimension product.
// These summaries are what the overlapped-tiling planner composes to grow
// tile footprints backwards through a fused group (the role ISL relations
// play in the original PolyMage implementation).
#pragma once

#include <array>
#include <ostream>

#include "polymg/poly/box.hpp"

namespace polymg::poly {

/// Per-dimension affine sampled access: reads floor(num*x/den) + [lo, hi].
struct DimAccess {
  int num = 1;
  int den = 1;
  index_t lo = 0;
  index_t hi = 0;

  friend constexpr bool operator==(const DimAccess&, const DimAccess&) =
      default;
};

/// Identity access (reads exactly index x).
constexpr DimAccess identity_access() { return DimAccess{1, 1, 0, 0}; }

/// A full access summary: one DimAccess per dimension of the consumer's
/// iteration space.
struct Access {
  int ndim = 0;
  std::array<DimAccess, kMaxDims> d{};

  static Access identity(int ndim) {
    Access a;
    a.ndim = ndim;
    for (int i = 0; i < ndim; ++i) a.d[i] = identity_access();
    return a;
  }

  /// True iff same-scale (num == den) in every dimension.
  bool is_unit_scale() const;

  friend bool operator==(const Access&, const Access&) = default;
};

/// Merge two access summaries of the same source from the same consumer:
/// scales must agree; offset ranges take the hull.
Access merge(const Access& a, const Access& b);

/// Region of the producer read when the consumer executes every point of
/// `region`: per dimension [floor(num·lo/den)+alo, floor(num·hi/den)+ahi].
/// Exact for num/den monotone maps over boxes.
Box footprint(const Access& a, const Box& region);

/// Compose accesses: if stage C reads B through `outer` and B reads A
/// through `inner`, returns the access with which C (transitively) reads
/// A. Offset ranges compose conservatively (exact when either side is
/// unit-scale, which covers all multigrid pipelines: a chain never has two
/// consecutive non-unit scales between the same pair in practice).
Access compose(const Access& inner, const Access& outer);

std::ostream& operator<<(std::ostream& os, const DimAccess& a);
std::ostream& operator<<(std::ostream& os, const Access& a);

}  // namespace polymg::poly
