// Rectangular integer regions in up to three dimensions, with the algebra
// the overlapped-tiling planner needs (intersection, hull, dilation,
// point-count, containment).
#pragma once

#include <array>
#include <initializer_list>
#include <ostream>

#include "polymg/common/error.hpp"
#include "polymg/poly/interval.hpp"

namespace polymg::poly {

/// Maximum grid dimensionality supported (the paper evaluates 2-d and
/// 3-d grids; 1-d falls out for free).
inline constexpr int kMaxDims = 3;

/// An axis-aligned box: the product of `ndim` closed intervals.
/// Dimension 0 is the outermost loop dimension (y in the paper's 2-d
/// listings, z in 3-d); the last dimension is the contiguous one.
class Box {
public:
  Box() : ndim_(0) {}
  explicit Box(int ndim) : ndim_(ndim) {
    PMG_CHECK(ndim >= 0 && ndim <= kMaxDims, "bad ndim " << ndim);
  }
  Box(std::initializer_list<Interval> ivs) : ndim_(0) {
    PMG_CHECK(static_cast<int>(ivs.size()) <= kMaxDims,
              "too many dimensions");
    for (const auto& iv : ivs) d_[ndim_++] = iv;
  }

  /// The cube [lo,hi]^ndim.
  static Box cube(int ndim, index_t lo, index_t hi) {
    Box b(ndim);
    for (int i = 0; i < ndim; ++i) b.d_[i] = Interval{lo, hi};
    return b;
  }

  int ndim() const { return ndim_; }
  Interval& dim(int i) {
    PMG_DCHECK(i >= 0 && i < ndim_, "dim " << i << " out of range");
    return d_[i];
  }
  const Interval& dim(int i) const {
    PMG_DCHECK(i >= 0 && i < ndim_, "dim " << i << " out of range");
    return d_[i];
  }

  bool empty() const {
    if (ndim_ == 0) return true;
    for (int i = 0; i < ndim_; ++i) {
      if (d_[i].empty()) return true;
    }
    return false;
  }

  /// Number of integer points.
  index_t count() const {
    if (empty()) return 0;
    index_t n = 1;
    for (int i = 0; i < ndim_; ++i) n *= d_[i].size();
    return n;
  }

  bool contains(const Box& o) const {
    if (o.empty()) return true;
    PMG_DCHECK(o.ndim_ == ndim_, "ndim mismatch");
    for (int i = 0; i < ndim_; ++i) {
      if (!d_[i].contains(o.d_[i])) return false;
    }
    return true;
  }

  bool contains_point(std::array<index_t, kMaxDims> p) const {
    for (int i = 0; i < ndim_; ++i) {
      if (!d_[i].contains(p[i])) return false;
    }
    return ndim_ > 0;
  }

  friend bool operator==(const Box& a, const Box& b) {
    if (a.ndim_ != b.ndim_) return false;
    for (int i = 0; i < a.ndim_; ++i) {
      if (a.d_[i] != b.d_[i]) return false;
    }
    return true;
  }

private:
  int ndim_;
  std::array<Interval, kMaxDims> d_{};
};

Box intersect(const Box& a, const Box& b);
Box hull(const Box& a, const Box& b);
Box dilate(const Box& a, index_t r);

std::ostream& operator<<(std::ostream& os, const Box& b);

}  // namespace polymg::poly
