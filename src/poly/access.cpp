#include "polymg/poly/access.hpp"

namespace polymg::poly {

bool Access::is_unit_scale() const {
  for (int i = 0; i < ndim; ++i) {
    if (d[i].num != d[i].den) return false;
  }
  return true;
}

Access merge(const Access& a, const Access& b) {
  PMG_CHECK(a.ndim == b.ndim, "access ndim mismatch");
  Access r;
  r.ndim = a.ndim;
  for (int i = 0; i < a.ndim; ++i) {
    PMG_CHECK(a.d[i].num == b.d[i].num && a.d[i].den == b.d[i].den,
              "cannot merge accesses with different sampling factors in dim "
                  << i << ": " << a.d[i] << " vs " << b.d[i]);
    r.d[i] = DimAccess{a.d[i].num, a.d[i].den, std::min(a.d[i].lo, b.d[i].lo),
                       std::max(a.d[i].hi, b.d[i].hi)};
  }
  return r;
}

Box footprint(const Access& a, const Box& region) {
  PMG_CHECK(a.ndim == region.ndim(), "access/region ndim mismatch");
  Box fp(a.ndim);
  for (int i = 0; i < a.ndim; ++i) {
    const DimAccess& da = a.d[i];
    const Interval& iv = region.dim(i);
    if (iv.empty()) {
      fp.dim(i) = Interval{};  // empty
      continue;
    }
    PMG_CHECK(da.num > 0 && da.den > 0, "non-positive sampling factor");
    // floor(num*x/den) is monotone non-decreasing in x, so the image of a
    // closed interval is exactly the interval of its endpoint images.
    fp.dim(i) = Interval{floordiv(da.num * iv.lo, da.den) + da.lo,
                         floordiv(da.num * iv.hi, da.den) + da.hi};
  }
  return fp;
}

Access compose(const Access& inner, const Access& outer) {
  PMG_CHECK(inner.ndim == outer.ndim, "access ndim mismatch");
  Access r;
  r.ndim = inner.ndim;
  for (int i = 0; i < inner.ndim; ++i) {
    const DimAccess& in = inner.d[i];
    const DimAccess& out = outer.d[i];
    DimAccess c;
    c.num = in.num * out.num;
    c.den = in.den * out.den;
    // Reduce the fraction so repeated restrict/interp pairs cancel.
    for (int g = 2; g <= c.num && g <= c.den;) {
      if (c.num % g == 0 && c.den % g == 0) {
        c.num /= g;
        c.den /= g;
      } else {
        ++g;
      }
    }
    // idxA = floor(nb*(floor(nc*x/dc) + o)/db) + [blo, bhi], o ∈ [clo,chi].
    // Bound the nested floor conservatively: the inner floor loses at most
    // (dc-1)/dc, which after scaling by nb/db costs at most
    // ceil(nb*(dc-1)/db) ≥ the true slack on the low side.
    const index_t slack =
        out.den > 1 ? ceildiv(static_cast<index_t>(in.num) * (out.den - 1),
                              in.den)
                    : 0;
    c.lo = floordiv(in.num * out.lo, in.den) + in.lo - slack;
    c.hi = ceildiv(in.num * out.hi, in.den) + in.hi;
    r.d[i] = c;
  }
  return r;
}

std::ostream& operator<<(std::ostream& os, const DimAccess& a) {
  os << "(";
  if (a.num != a.den) os << a.num << "/" << a.den << "·";
  os << "x";
  os << "+[" << a.lo << "," << a.hi << "])";
  return os;
}

std::ostream& operator<<(std::ostream& os, const Access& a) {
  os << "<";
  for (int i = 0; i < a.ndim; ++i) {
    if (i) os << ", ";
    os << a.d[i];
  }
  return os << ">";
}

}  // namespace polymg::poly
