#include "polymg/poly/box.hpp"

namespace polymg::poly {

Box intersect(const Box& a, const Box& b) {
  PMG_CHECK(a.ndim() == b.ndim(), "ndim mismatch in intersect");
  Box r(a.ndim());
  for (int i = 0; i < a.ndim(); ++i) {
    r.dim(i) = intersect(a.dim(i), b.dim(i));
  }
  return r;
}

Box hull(const Box& a, const Box& b) {
  if (a.ndim() == 0 || a.empty()) return b;
  if (b.ndim() == 0 || b.empty()) return a;
  PMG_CHECK(a.ndim() == b.ndim(), "ndim mismatch in hull");
  Box r(a.ndim());
  for (int i = 0; i < a.ndim(); ++i) {
    r.dim(i) = hull(a.dim(i), b.dim(i));
  }
  return r;
}

Box dilate(const Box& a, index_t r) {
  Box out(a.ndim());
  for (int i = 0; i < a.ndim(); ++i) out.dim(i) = dilate(a.dim(i), r);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  os << "{";
  for (int i = 0; i < b.ndim(); ++i) {
    if (i) os << "x";
    os << b.dim(i);
  }
  return os << "}";
}

}  // namespace polymg::poly
