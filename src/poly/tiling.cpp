#include "polymg/poly/tiling.hpp"

namespace polymg::poly {

Box TileGrid::tile_box(index_t t) const {
  PMG_CHECK(t >= 0 && t < total, "tile index out of range");
  Box b(domain.ndim());
  // Decompose the flat index with the last dimension fastest, matching the
  // loop order of the generated code.
  std::array<index_t, kMaxDims> coord{};
  index_t rem = t;
  for (int d = domain.ndim() - 1; d >= 0; --d) {
    coord[d] = rem % ntiles[d];
    rem /= ntiles[d];
  }
  for (int d = 0; d < domain.ndim(); ++d) {
    const index_t lo = domain.dim(d).lo + coord[d] * sizes[d];
    const index_t hi = std::min(lo + sizes[d] - 1, domain.dim(d).hi);
    b.dim(d) = Interval{lo, hi};
  }
  return b;
}

TileGrid make_tile_grid(const Box& domain, const TileSizes& sizes) {
  PMG_CHECK(!domain.empty(), "cannot tile an empty domain");
  TileGrid g;
  g.domain = domain;
  g.total = 1;
  for (int d = 0; d < domain.ndim(); ++d) {
    const index_t extent = domain.dim(d).size();
    const index_t sz = sizes[d] > 0 ? std::min(sizes[d], extent) : extent;
    g.sizes[d] = sz;
    g.ntiles[d] = ceildiv(extent, sz);
    g.total *= g.ntiles[d];
  }
  return g;
}

index_t footprint_extent_bound(const DimAccess& a, index_t region_extent) {
  if (region_extent <= 0) return 0;
  // Image of an extent-e interval under floor(num*x/den) spans at most
  // floor(num*(e-1)/den) + 1 points; the offset range adds (hi - lo); the
  // floor can shift by one extra cell depending on alignment when den > 1.
  const index_t scaled =
      floordiv(a.num * (region_extent - 1), a.den) + 1;
  const index_t slack = a.den > 1 ? 1 : 0;
  return scaled + (a.hi - a.lo) + slack;
}

}  // namespace polymg::poly
