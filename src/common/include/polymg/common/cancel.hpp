// Cooperative deadline / cancellation token.
//
// The serving layer hands one token to everything working on a request:
// the executor polls it at tile-node/stage granularity, guarded_solve
// between cycles, the service queue at dequeue. A token never interrupts
// anything — polled code observes the trip at its next check, abandons
// the in-flight unit of work and unwinds with a typed Error
// (DeadlineExceeded / Cancelled), so a solve can never overshoot its
// deadline by more than one granule of whatever it was executing.
//
// Polling is two relaxed atomic loads plus (only while a deadline is
// set) one steady_clock read — cheap enough for per-tile checks. Tokens
// are owned by the request's bookkeeping and shared by plain pointer;
// reset() re-arms a pooled token for the next request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace polymg {

class CancelToken {
public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cooperative cancellation (idempotent, any thread).
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm an absolute deadline `ns` steady-clock nanoseconds from now
  /// (non-positive = already expired).
  void set_deadline_after_ns(std::int64_t ns) {
    deadline_ns_.store(now_ns() + ns, std::memory_order_release);
  }
  void set_deadline_after_ms(double ms) {
    set_deadline_after_ns(static_cast<std::int64_t>(ms * 1e6));
  }
  void clear_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  bool deadline_passed() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadline && now_ns() >= d;
  }

  /// The poll: true once either trip condition holds.
  bool stop_requested() const { return cancelled() || deadline_passed(); }

  /// Nanoseconds until the deadline (negative when past, kNoDeadline when
  /// none is armed). A cancelled token reports 0.
  std::int64_t remaining_ns() const {
    if (cancelled()) return 0;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d == kNoDeadline ? kNoDeadline : d - now_ns();
  }

  /// Re-arm for the next request: clears the flag and the deadline. Must
  /// not race with pollers (call between requests).
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace polymg
