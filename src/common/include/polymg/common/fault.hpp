// Deterministic fault injection for robustness tests.
//
// A process-wide registry of named fault sites. Production code asks
// `fault::should_fail("pool.alloc")` at the points where a real system
// could fail (allocation, kernel output, halo delivery); tests arm a site
// for a bounded number of firings — optionally probabilistic via the
// seeded splitmix64 Rng, so every run of a test observes the same fault
// pattern. When nothing is armed the check is one relaxed atomic load,
// cheap enough to leave compiled in everywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "polymg/common/rng.hpp"

namespace polymg::fault {

/// Canonical site names (keep in sync with the call sites and
/// FaultInjector::list_sites()).
inline constexpr const char* kPoolAlloc = "pool.alloc";
inline constexpr const char* kKernelOutput = "kernel.output";
inline constexpr const char* kDistHalo = "dist.halo";
/// A rank stops answering halo exchanges (the sender of the delivery in
/// flight when the site fires is declared dead).
inline constexpr const char* kRankDeath = "rank.death";
/// A committed checkpoint payload is corrupted in storage (detected at
/// restore time by the checksum).
inline constexpr const char* kCheckpointCorrupt = "checkpoint.corrupt";
/// Silent data corruption: one bit of a kernel output flips, producing a
/// finite-but-wrong value the non-finite health scan cannot see.
inline constexpr const char* kKernelBitflip = "kernel.bitflip";
/// The solve driver "crashes" between cycles (models process death and a
/// restart from the last checkpoint).
inline constexpr const char* kSolveCrash = "solve.crash";
/// A service worker's solve fails transiently at start (models a flaky
/// downstream dependency); the retry/backoff path must recover it.
inline constexpr const char* kServiceReject = "service.reject";
/// A service worker stalls before solving (models a slow replica /
/// noisy-neighbour hiccup); deadline enforcement must bound the damage.
inline constexpr const char* kServiceSlow = "service.slow";
/// The JIT's system-compiler invocation fails (models a broken or
/// missing toolchain); specialization must fall back to the register
/// engine / interpreter with a correct result.
inline constexpr const char* kJitCompile = "jit.compile";
/// The float path of a mixed-precision solve is corrupted (a residual
/// value scaled far out of range before the float cycle consumes it);
/// the precision oracle must detect the drift and degrade the solve to
/// full double.
inline constexpr const char* kPrecisionCorrupt = "precision.corrupt";
/// The JIT's compiler child hangs instead of exiting (models a wedged
/// toolchain); the sandbox's waitpid timeout must kill it and fall back
/// to the register engine within the compile budget.
inline constexpr const char* kJitHang = "jit.hang";
/// A worker's solve stops making progress without tripping its token (a
/// livelock / scheduler wedge); the service watchdog must detect the
/// frozen progress epoch and escalate.
inline constexpr const char* kSolveStall = "solve.stall";
/// A JIT disk-cache write fails mid-stream (models ENOSPC / a partial
/// write); publication must degrade to the register engine, never crash
/// or publish a torn entry.
inline constexpr const char* kCacheEnospc = "cache.enospc";
/// A service-side allocation fails (models memory-pool exhaustion under
/// load); the request must resolve Overloaded with a retry-after hint,
/// not abort the worker.
inline constexpr const char* kAllocFail = "alloc.fail";

class FaultInjector {
public:
  static FaultInjector& instance();

  /// Arm `site` to fail up to `count` times (-1 = unbounded). Each check
  /// of an armed site fails with `probability` (1.0 = always), drawn from
  /// a deterministic Rng seeded with `seed`. Re-arming replaces the
  /// site's previous state but keeps its fired counter.
  void arm(const std::string& site, long count = 1, double probability = 1.0,
           std::uint64_t seed = 0x5eed5eedULL);

  void disarm(const std::string& site);
  /// Disarm every site and zero all counters.
  void reset();

  /// Consume one firing of `site` if it is armed; true means the caller
  /// must simulate the failure. Thread-safe.
  bool should_fail(const std::string& site);

  /// How many times `site` actually fired (survives disarm, cleared by
  /// reset).
  long fired(const std::string& site) const;

  /// Fast path: false iff no site is armed at all.
  bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Every canonical site name the library checks, sorted. A site not in
  /// this list can still be armed programmatically (tests invent private
  /// sites), but user-facing option parsing rejects it — see
  /// arm_from_spec.
  static std::vector<std::string> list_sites();
  static bool is_known_site(const std::string& site);

private:
  FaultInjector() = default;

  struct Site {
    long remaining = 0;  ///< -1 = unbounded
    double probability = 1.0;
    Rng rng{0};
    long fired = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::atomic<int> armed_sites_{0};

  void recount_locked();
};

/// Hot-path helper: one atomic load when nothing is armed.
inline bool should_fail(const char* site) {
  FaultInjector& fi = FaultInjector::instance();
  return fi.any_armed() && fi.should_fail(site);
}

/// Arm sites from a user-facing option string:
///   "site[:count[:probability[:seed]]]" — comma-separated for several.
/// Examples: "dist.halo", "rank.death:1", "kernel.bitflip:-1:0.05:7".
/// A site name outside list_sites() throws Error(PreconditionViolated)
/// naming the valid sites, so a typo'd --fault= option fails at startup
/// instead of silently never firing.
void arm_from_spec(const std::string& spec);

/// RAII arming for tests: arms in the constructor, disarms on scope exit.
class ScopedFault {
public:
  explicit ScopedFault(std::string site, long count = 1,
                       double probability = 1.0,
                       std::uint64_t seed = 0x5eed5eedULL)
      : site_(std::move(site)) {
    FaultInjector::instance().arm(site_, count, probability, seed);
  }
  ~ScopedFault() { FaultInjector::instance().disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  long fired() const { return FaultInjector::instance().fired(site_); }

private:
  std::string site_;
};

}  // namespace polymg::fault
