// Thin wrappers over the OpenMP runtime so the rest of the library never
// includes <omp.h> directly and builds (serially) even without OpenMP.
//
// Beyond the basic queries this header carries the primitives the
// persistent-team executor needs: an in-parallel test (to pick orphaned
// worksharing over nested regions), a team barrier usable from plain
// functions, a polite spin-wait pause, and a process-global count of
// parallel regions our code has opened — the instrumentation behind the
// "exactly one parallel region per run()" scheduler invariant.
#pragma once

#include <cstdint>

namespace polymg {

/// Number of threads an upcoming parallel region will use.
int max_threads();

/// Calling thread's id inside a parallel region (0 outside).
int thread_id();

/// Number of threads in the current team (1 outside a parallel region).
int team_size();

/// Temporarily override the global thread count (returns previous value).
int set_num_threads(int n);

/// True when called from inside an active parallel region. Worksharing
/// helpers use this to choose between forking a region and binding
/// orphaned constructs to the enclosing team.
bool in_parallel();

/// Barrier across the innermost enclosing team (no-op outside a region).
void team_barrier();

/// Polite pause inside a spin-wait loop. After `spins` failed attempts
/// the caller should escalate to yield_thread() — essential when the
/// team is oversubscribed (more threads than cores), where hot spinning
/// starves the one thread holding real work.
void cpu_pause();

/// Yield the processor to any other runnable thread.
void yield_thread();

/// Sleep for a few tens of microseconds. The last escalation step of a
/// spin-wait: unlike yield_thread() it takes the caller off the run
/// queue entirely, so on an oversubscribed host the thread holding real
/// work gets whole scheduler timeslices instead of sharing them with
/// spinners.
void idle_sleep();

/// Count of parallel regions entered by polymg code since process start.
/// Every `#pragma omp parallel` site in the library reports itself (once
/// per region, not per thread) via note_parallel_region(); tests diff the
/// counter around a call to assert fork/join behaviour.
std::uint64_t parallel_regions_entered();

/// Report entry into a parallel region. Call from every polymg
/// `#pragma omp parallel` site, by one thread only (thread_id() == 0).
void note_parallel_region();

/// ThreadSanitizer cannot see the happens-before edge established by
/// libgomp's join barrier at the end of a parallel region (libgomp is
/// not TSan-instrumented), so worker-thread writes appear to race with
/// the master's later reads or frees. Under -fsanitize=thread each
/// thread calls tsan_join_release() as its last act inside a region and
/// the serial code calls tsan_join_acquire() immediately after it,
/// rebuilding the same edge with TSan-visible atomics. Both are no-ops
/// in normal builds.
#if defined(__SANITIZE_THREAD__)
void tsan_join_release();
void tsan_join_acquire();
#else
inline void tsan_join_release() {}
inline void tsan_join_acquire() {}
#endif

}  // namespace polymg
