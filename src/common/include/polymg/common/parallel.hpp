// Thin wrappers over the OpenMP runtime so the rest of the library never
// includes <omp.h> directly and builds (serially) even without OpenMP.
#pragma once

namespace polymg {

/// Number of threads an upcoming parallel region will use.
int max_threads();

/// Calling thread's id inside a parallel region (0 outside).
int thread_id();

/// Temporarily override the global thread count (returns previous value).
int set_num_threads(int n);

}  // namespace polymg
