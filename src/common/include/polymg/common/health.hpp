// Numerical health checks for guarded execution.
//
// Two tools: a cheap vectorized non-finite scan over grid views (run on
// pipeline outputs after each guarded invocation) and a ResidualMonitor
// that watches the residual-norm history of a cycle loop and classifies
// every new value as converging, stagnating or diverging. Both are
// value-only — the guarded executor and solve driver decide what to do
// with a bad verdict (fall back, degrade, abort).
#pragma once

#include <cstddef>
#include <vector>

#include "polymg/grid/view.hpp"
#include "polymg/poly/box.hpp"

namespace polymg::health {

using grid::View;
using poly::Box;
using poly::index_t;

/// True if any of the `n` doubles at `p` is NaN or ±inf. Branch-free
/// accumulation (x·0 is 0 for finite x, NaN otherwise) so the loop
/// auto-vectorizes; cost is one fused multiply-add per element.
bool has_nonfinite(const double* p, std::size_t n);

/// Non-finite scan of `region` through a view (the region must lie inside
/// the view's addressable area; the last dimension must be contiguous,
/// which holds for every view PolyMG creates).
bool has_nonfinite(const View& v, const Box& region);

/// Verdict on the latest residual observation.
enum class Trend {
  Converging,  ///< still contracting (or too early to tell)
  Stagnating,  ///< contraction slower than the configured ratio for a
               ///< full window of consecutive cycles
  Diverging,   ///< non-finite residual, or growth past the divergence
               ///< factor over the best value seen
};

const char* to_string(Trend t);

/// Tracks the residual-norm history of an iterative solve and classifies
/// each cycle. Deterministic and allocation-free after construction (the
/// history ring is preallocated), so a monitor can sit inside a
/// zero-allocation cycle loop; one instance per solve attempt.
class ResidualMonitor {
public:
  struct Config {
    /// r > divergence_factor · best-so-far => Diverging.
    double divergence_factor = 1e3;
    /// A cycle with r >= stagnation_ratio · r_prev counts as stalled.
    double stagnation_ratio = 0.99;
    /// Consecutive stalled cycles before the verdict is Stagnating.
    int stagnation_window = 4;
    /// History retention: only the last `history_limit` observations are
    /// kept (a ring), so a week-long solve cannot grow memory without
    /// bound. Classification state (best/prev/stall count) is exact
    /// regardless of the limit.
    int history_limit = 256;
  };

  ResidualMonitor() : ResidualMonitor(Config{}) {}
  explicit ResidualMonitor(const Config& cfg);

  /// Record one residual norm; returns the verdict for this cycle.
  Trend observe(double residual);

  /// Verdict of the last observe() (Converging before any observation).
  Trend trend() const { return trend_; }
  /// Retained observations, oldest first (at most history_limit; older
  /// entries have been overwritten by the ring).
  std::vector<double> history() const;
  /// Total observe() calls, including ones whose entries the ring has
  /// already dropped.
  std::size_t observed() const { return count_; }
  double best() const { return best_; }
  double last() const { return last_; }
  int stalled_cycles() const { return stalled_; }
  void reset();

  /// Classification state, snapshottable for checkpoint/rollback: a
  /// restored monitor makes bit-identical verdicts from the restore point
  /// on (ring contents are reporting-only and are not part of the state).
  struct State {
    double best = 0.0;
    double last = 0.0;
    std::size_t count = 0;
    int stalled = 0;
    Trend trend = Trend::Converging;
  };
  State state() const { return {best_, last_, count_, stalled_, trend_}; }
  void restore(const State& s);

private:
  Config cfg_;
  std::vector<double> ring_;  ///< capacity history_limit, wraps
  std::size_t count_ = 0;     ///< total observations ever
  double best_ = 0.0;
  double last_ = 0.0;
  int stalled_ = 0;
  Trend trend_ = Trend::Converging;
};

}  // namespace polymg::health
