// Numerical health checks for guarded execution.
//
// Two tools: a cheap vectorized non-finite scan over grid views (run on
// pipeline outputs after each guarded invocation) and a ResidualMonitor
// that watches the residual-norm history of a cycle loop and classifies
// every new value as converging, stagnating or diverging. Both are
// value-only — the guarded executor and solve driver decide what to do
// with a bad verdict (fall back, degrade, abort).
#pragma once

#include <cstddef>
#include <vector>

#include "polymg/grid/view.hpp"
#include "polymg/poly/box.hpp"

namespace polymg::health {

using grid::View;
using poly::Box;
using poly::index_t;

/// True if any of the `n` doubles at `p` is NaN or ±inf. Branch-free
/// accumulation (x·0 is 0 for finite x, NaN otherwise) so the loop
/// auto-vectorizes; cost is one fused multiply-add per element.
bool has_nonfinite(const double* p, std::size_t n);

/// Non-finite scan of `region` through a view (the region must lie inside
/// the view's addressable area; the last dimension must be contiguous,
/// which holds for every view PolyMG creates).
bool has_nonfinite(const View& v, const Box& region);

/// Verdict on the latest residual observation.
enum class Trend {
  Converging,  ///< still contracting (or too early to tell)
  Stagnating,  ///< contraction slower than the configured ratio for a
               ///< full window of consecutive cycles
  Diverging,   ///< non-finite residual, or growth past the divergence
               ///< factor over the best value seen
};

const char* to_string(Trend t);

/// Tracks the residual-norm history of an iterative solve and classifies
/// each cycle. Deterministic and allocation-light; one instance per solve
/// attempt.
class ResidualMonitor {
public:
  struct Config {
    /// r > divergence_factor · best-so-far => Diverging.
    double divergence_factor = 1e3;
    /// A cycle with r >= stagnation_ratio · r_prev counts as stalled.
    double stagnation_ratio = 0.99;
    /// Consecutive stalled cycles before the verdict is Stagnating.
    int stagnation_window = 4;
  };

  ResidualMonitor() : ResidualMonitor(Config{}) {}
  explicit ResidualMonitor(const Config& cfg);

  /// Record one residual norm; returns the verdict for this cycle.
  Trend observe(double residual);

  /// Verdict of the last observe() (Converging before any observation).
  Trend trend() const { return trend_; }
  const std::vector<double>& history() const { return history_; }
  double best() const { return best_; }
  int stalled_cycles() const { return stalled_; }
  void reset();

private:
  Config cfg_;
  std::vector<double> history_;
  double best_ = 0.0;
  int stalled_ = 0;
  Trend trend_ = Trend::Converging;
};

}  // namespace polymg::health
