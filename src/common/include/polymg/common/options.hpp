// Minimal command-line / environment option parsing shared by the
// benchmark binaries and examples. Supports `--key value`, `--key=value`
// and `--flag` forms plus environment-variable fallbacks.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace polymg {

class Options {
public:
  Options() = default;

  /// Parse argv-style options. Unrecognized positional arguments are kept
  /// in positional(). Throws Error on malformed input (e.g. `--key` at the
  /// end expecting a value is treated as a flag).
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Value lookup order: command line, then environment variable
  /// POLYMG_<KEY> (upper-cased, dashes mapped to underscores), then the
  /// provided default.
  std::string get(const std::string& key, const std::string& def) const;
  long get_int(const std::string& key, long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_flag(const std::string& key, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace polymg
