// Error handling and invariant checking for the PolyMG library.
//
// All precondition and invariant violations funnel through Error (a
// std::runtime_error subclass) so library users can catch one type. Each
// Error carries an ErrorCode so the guarded-execution layer can dispatch
// on failure kind (fall back on InvalidPlan, retry on HaloExchangeFailed,
// ...) without parsing messages. The PMG_CHECK macro is always on
// (multigrid planning is not on the hot path); PMG_DCHECK compiles out in
// release builds and is used inside point loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace polymg {

/// Machine-readable failure kind. Generic covers legacy PMG_CHECK
/// invariants; the rest are the guarded-execution taxonomy.
enum class ErrorCode {
  Generic,               ///< unclassified invariant violation
  InvalidPlan,           ///< compiled plan failed validation
  NumericalDivergence,   ///< non-finite values or exploding residuals
  ResidualStagnation,    ///< residual stopped contracting before tolerance
  PoolExhausted,         ///< pooled allocator could not serve a request
  HaloExchangeFailed,    ///< distributed halo exchange undeliverable
  PreconditionViolated,  ///< caller broke a documented API precondition
  RankFailure,           ///< a simulated rank stopped answering exchanges
  CheckpointCorrupt,     ///< checkpoint payload failed its checksum
  DeadlineExceeded,      ///< a request's deadline passed mid-solve
  Cancelled,             ///< cooperative cancellation was requested
  Overloaded,            ///< admission control shed the request (retryable)
  SolveStalled,          ///< watchdog saw no progress epochs; solve killed
  WorkerLost,            ///< a service worker stopped responding entirely
};

const char* to_string(ErrorCode code);

/// Exception type thrown on any misuse of the library or internal
/// invariant violation.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::Generic) {}
  Error(ErrorCode code, const std::string& what);

  ErrorCode code() const { return code_; }

private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, ErrorCode code,
                                      const std::string& msg);
}  // namespace detail

}  // namespace polymg

/// Always-on invariant check. `msg` may use stream syntax:
///   PMG_CHECK(a == b, "mismatch " << a << " vs " << b);
#define PMG_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pmg_oss_;                                        \
      pmg_oss_ << msg; /* NOLINT */                                       \
      ::polymg::detail::throw_check_failure(#cond, __FILE__, __LINE__,    \
                                            pmg_oss_.str());              \
    }                                                                     \
  } while (0)

/// Always-on check that throws an Error tagged with an ErrorCode:
///   PMG_CHECK_CODE(ok, ErrorCode::PreconditionViolated, "view too small");
#define PMG_CHECK_CODE(cond, code, msg)                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pmg_oss_;                                        \
      pmg_oss_ << msg; /* NOLINT */                                       \
      ::polymg::detail::throw_check_failure(#cond, __FILE__, __LINE__,    \
                                            (code), pmg_oss_.str());      \
    }                                                                     \
  } while (0)

/// Unconditional typed failure.
#define PMG_FAIL(code, msg) PMG_CHECK_CODE(false, (code), msg)

#ifdef NDEBUG
#define PMG_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#else
#define PMG_DCHECK(cond, msg) PMG_CHECK(cond, msg)
#endif
