// Error handling and invariant checking for the PolyMG library.
//
// All precondition and invariant violations funnel through Error (a
// std::runtime_error subclass) so library users can catch one type. The
// PMG_CHECK macro is always on (multigrid planning is not on the hot path);
// PMG_DCHECK compiles out in release builds and is used inside point loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace polymg {

/// Exception type thrown on any misuse of the library or internal
/// invariant violation.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace polymg

/// Always-on invariant check. `msg` may use stream syntax:
///   PMG_CHECK(a == b, "mismatch " << a << " vs " << b);
#define PMG_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pmg_oss_;                                        \
      pmg_oss_ << msg; /* NOLINT */                                       \
      ::polymg::detail::throw_check_failure(#cond, __FILE__, __LINE__,    \
                                            pmg_oss_.str());              \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define PMG_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#else
#define PMG_DCHECK(cond, msg) PMG_CHECK(cond, msg)
#endif
