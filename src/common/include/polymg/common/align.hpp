// Cache-line / SIMD aligned heap allocation helpers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "polymg/common/error.hpp"

namespace polymg {

/// Alignment used for all numeric buffers: one typical cache line, which
/// also satisfies AVX-512 load alignment.
inline constexpr std::size_t kBufferAlignment = 64;

/// Allocate `bytes` of kBufferAlignment-aligned storage. Never returns
/// nullptr; throws std::bad_alloc on failure. `bytes == 0` yields a valid
/// 1-byte allocation so callers need no special case.
inline void* aligned_malloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  // Round size up to a multiple of the alignment as required by
  // std::aligned_alloc.
  const std::size_t rounded =
      (bytes + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
  void* p = std::aligned_alloc(kBufferAlignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void aligned_free(void* p) noexcept { std::free(p); }

/// Deleter for use with std::unique_ptr over aligned allocations.
struct AlignedFree {
  void operator()(void* p) const noexcept { aligned_free(p); }
};

template <typename T>
using AlignedPtr = std::unique_ptr<T[], AlignedFree>;

/// Allocate an aligned, uninitialized array of `count` Ts (T must be
/// trivially destructible — numeric buffers only).
template <typename T>
AlignedPtr<T> aligned_array(std::size_t count) {
  static_assert(std::is_trivially_destructible_v<T>,
                "aligned_array is for trivially destructible value types");
  return AlignedPtr<T>(static_cast<T*>(aligned_malloc(count * sizeof(T))));
}

}  // namespace polymg
