// Global allocation counter — a test hook for asserting that fast paths
// stay off the heap.
//
// polymg_common replaces the global operator new/delete family with
// malloc/free wrappers that bump one relaxed atomic per allocation. The
// counter costs a single uncontended atomic increment per new — nothing
// measurable against the allocation itself — and lets tests express
// "this steady-state region performs zero heap allocations" exactly:
//
//   const auto before = polymg::allocation_count();
//   exec.run(externals);                  // warmed-up fast path
//   EXPECT_EQ(polymg::allocation_count(), before);
#pragma once

#include <cstdint>

namespace polymg {

/// Number of global operator new / new[] calls (any overload) performed
/// by this process so far. Monotone; never reset.
std::uint64_t allocation_count();

}  // namespace polymg
