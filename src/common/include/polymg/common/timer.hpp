// Wall-clock timing utilities for benchmarks and the autotuner.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>

namespace polymg {

/// Monotonic wall-clock timer with second-resolution doubles.
class Timer {
public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset() — the
  /// resolution the obs trace layer stamps events at.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  void reset() { start_ = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Summary of repeated timings, all in seconds. The paper's protocol
/// reports the minimum; mean/stddev ride along so BENCH_*.json can show
/// run-to-run noise next to it.
struct Stats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population stddev (0 for a single repeat)
  int n = 0;

  /// Fold one observation in (Welford's running mean/M2).
  void observe(double x) {
    if (n == 0 || x < min) min = x;
    if (n == 0 || x > max) max = x;
    ++n;
    const double delta = x - mean;
    mean += delta / n;
    m2_ += delta * (x - mean);
    stddev = n > 1 ? std::sqrt(m2_ / n) : 0.0;
  }

private:
  double m2_ = 0.0;
};

/// Run `fn` `repeats` times and return min/mean/stddev of a single run in
/// seconds. The paper reports the minimum of five runs; benchmarks here
/// follow the same protocol (`.min`) with a configurable repeat count and
/// record the spread alongside.
template <typename Fn>
Stats min_time_of(Fn&& fn, int repeats) {
  Stats s;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    s.observe(t.elapsed());
  }
  return s;
}

}  // namespace polymg
