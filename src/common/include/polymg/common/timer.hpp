// Wall-clock timing utilities for benchmarks and the autotuner.
#pragma once

#include <chrono>
#include <cstdint>

namespace polymg {

/// Monotonic wall-clock timer with second-resolution doubles.
class Timer {
public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Run `fn` `repeats` times and return the minimum wall time of a single
/// run in seconds. The paper reports the minimum of five runs; benchmarks
/// here follow the same protocol with a configurable repeat count.
template <typename Fn>
double min_time_of(Fn&& fn, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    const double dt = t.elapsed();
    if (dt < best) best = dt;
  }
  return best;
}

}  // namespace polymg
