#include "polymg/common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_malloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

}  // namespace

namespace polymg {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace polymg

void* operator new(std::size_t n) {
  if (void* p = counted_malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  if (void* p = counted_malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
