#include "polymg/common/options.hpp"

#include <cctype>
#include <cstdlib>

#include "polymg/common/error.hpp"

namespace polymg {

namespace {

std::string env_name(const std::string& key) {
  std::string name = "POLYMG_";
  for (char c : key) {
    name.push_back(c == '-' ? '_'
                            : static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c))));
  }
  return name;
}

bool looks_like_value(const std::string& s) {
  return s.size() < 2 || s[0] != '-' || s[1] != '-';
}

}  // namespace

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && looks_like_value(argv[i + 1])) {
      opts.kv_[arg] = argv[++i];
    } else {
      opts.kv_[arg] = "1";  // bare flag
    }
  }
  return opts;
}

std::optional<std::string> Options::lookup(const std::string& key) const {
  if (auto it = kv_.find(key); it != kv_.end()) return it->second;
  if (const char* env = std::getenv(env_name(key).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

bool Options::has(const std::string& key) const {
  return lookup(key).has_value();
}

std::string Options::get(const std::string& key,
                         const std::string& def) const {
  return lookup(key).value_or(def);
}

long Options::get_int(const std::string& key, long def) const {
  const auto v = lookup(key);
  if (!v) return def;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  PMG_CHECK(end != v->c_str() && *end == '\0',
            "option --" << key << " expects an integer, got '" << *v << "'");
  return parsed;
}

double Options::get_double(const std::string& key, double def) const {
  const auto v = lookup(key);
  if (!v) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  PMG_CHECK(end != v->c_str() && *end == '\0',
            "option --" << key << " expects a number, got '" << *v << "'");
  return parsed;
}

bool Options::get_flag(const std::string& key, bool def) const {
  const auto v = lookup(key);
  if (!v) return def;
  return *v != "0" && *v != "false" && *v != "off";
}

}  // namespace polymg
