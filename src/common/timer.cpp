// Timer is header-only; this TU exists so the library has a stable anchor
// and a place for future timing backends (e.g. PAPI counters).
#include "polymg/common/timer.hpp"
