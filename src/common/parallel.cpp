#include "polymg/common/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace polymg {

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

int set_num_threads(int n) {
#ifdef _OPENMP
  const int prev = omp_get_max_threads();
  if (n > 0) omp_set_num_threads(n);
  return prev;
#else
  (void)n;
  return 1;
#endif
}

}  // namespace polymg
