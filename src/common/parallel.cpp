#include "polymg/common/parallel.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#define POLYMG_HAVE_PAUSE 1
#endif

namespace polymg {

namespace {
std::atomic<std::uint64_t> g_parallel_regions{0};
}  // namespace

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

int set_num_threads(int n) {
#ifdef _OPENMP
  const int prev = omp_get_max_threads();
  if (n > 0) omp_set_num_threads(n);
  return prev;
#else
  (void)n;
  return 1;
#endif
}

bool in_parallel() {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

void team_barrier() {
#ifdef _OPENMP
  if (omp_in_parallel()) {
#pragma omp barrier
  }
#endif
}

void cpu_pause() {
#ifdef POLYMG_HAVE_PAUSE
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

void yield_thread() { std::this_thread::yield(); }

void idle_sleep() {
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

std::uint64_t parallel_regions_entered() {
  return g_parallel_regions.load(std::memory_order_relaxed);
}

void note_parallel_region() {
  g_parallel_regions.fetch_add(1, std::memory_order_relaxed);
}

#if defined(__SANITIZE_THREAD__)
namespace {
// A single counter is enough: every release RMW joins the calling
// thread's clock into the variable's sync clock, and an acquire load
// picks up the union of all of them.
std::atomic<std::uint64_t> g_tsan_join{0};
}  // namespace

void tsan_join_release() {
  g_tsan_join.fetch_add(1, std::memory_order_release);
}

void tsan_join_acquire() {
  (void)g_tsan_join.load(std::memory_order_acquire);
}
#endif

}  // namespace polymg
