#include "polymg/common/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::fault {

FaultInjector& FaultInjector::instance() {
  static FaultInjector fi;
  return fi;
}

void FaultInjector::arm(const std::string& site, long count,
                        double probability, std::uint64_t seed) {
  PMG_CHECK(count >= -1, "bad fault count " << count);
  PMG_CHECK(probability >= 0.0 && probability <= 1.0,
            "fault probability must lie in [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];  // keeps `fired` across re-arms
  s.remaining = count;
  s.probability = probability;
  s.rng = Rng(seed);
  recount_locked();
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.remaining = 0;
  recount_locked();
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::should_fail(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.remaining == 0) return false;
  Site& s = it->second;
  if (s.probability < 1.0 && s.rng.next_double() >= s.probability) {
    return false;
  }
  if (s.remaining > 0) {
    --s.remaining;
    if (s.remaining == 0) recount_locked();
  }
  ++s.fired;
  return true;
}

long FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::vector<std::string> FaultInjector::list_sites() {
  return {kAllocFail,         kCacheEnospc,     kCheckpointCorrupt,
          kDistHalo,          kJitCompile,      kJitHang,
          kKernelBitflip,     kKernelOutput,    kPoolAlloc,
          kPrecisionCorrupt,  kRankDeath,       kServiceReject,
          kServiceSlow,       kSolveCrash,      kSolveStall};
}

bool FaultInjector::is_known_site(const std::string& site) {
  const std::vector<std::string> sites = list_sites();
  return std::find(sites.begin(), sites.end(), site) != sites.end();
}

void arm_from_spec(const std::string& spec) {
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    // site[:count[:probability[:seed]]]
    std::vector<std::string> parts;
    std::stringstream is(item);
    std::string p;
    while (std::getline(is, p, ':')) parts.push_back(p);
    PMG_CHECK_CODE(!parts.empty() && parts.size() <= 4,
                   ErrorCode::PreconditionViolated,
                   "bad fault spec '" << item
                                      << "' (want site[:count[:prob[:seed]]])");
    const std::string& site = parts[0];
    if (!FaultInjector::is_known_site(site)) {
      std::ostringstream os;
      os << "unknown fault site '" << site << "'; valid sites:";
      for (const std::string& s : FaultInjector::list_sites()) os << " " << s;
      PMG_FAIL(ErrorCode::PreconditionViolated, os.str());
    }
    long count = 1;
    double probability = 1.0;
    std::uint64_t seed = 0x5eed5eedULL;
    try {
      if (parts.size() > 1) count = std::stol(parts[1]);
      if (parts.size() > 2) probability = std::stod(parts[2]);
      if (parts.size() > 3) seed = std::stoull(parts[3]);
    } catch (const std::exception&) {
      PMG_FAIL(ErrorCode::PreconditionViolated,
               "malformed fault spec '" << item << "'");
    }
    FaultInjector::instance().arm(site, count, probability, seed);
  }
}

void FaultInjector::recount_locked() {
  int n = 0;
  for (const auto& [name, s] : sites_) {
    (void)name;
    if (s.remaining != 0) ++n;
  }
  armed_sites_.store(n, std::memory_order_relaxed);
}

}  // namespace polymg::fault
