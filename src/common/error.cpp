#include "polymg/common/error.hpp"

namespace polymg {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Generic:
      return "Generic";
    case ErrorCode::InvalidPlan:
      return "InvalidPlan";
    case ErrorCode::NumericalDivergence:
      return "NumericalDivergence";
    case ErrorCode::ResidualStagnation:
      return "ResidualStagnation";
    case ErrorCode::PoolExhausted:
      return "PoolExhausted";
    case ErrorCode::HaloExchangeFailed:
      return "HaloExchangeFailed";
    case ErrorCode::PreconditionViolated:
      return "PreconditionViolated";
    case ErrorCode::RankFailure:
      return "RankFailure";
    case ErrorCode::CheckpointCorrupt:
      return "CheckpointCorrupt";
    case ErrorCode::DeadlineExceeded:
      return "DeadlineExceeded";
    case ErrorCode::Cancelled:
      return "Cancelled";
    case ErrorCode::Overloaded:
      return "Overloaded";
    case ErrorCode::SolveStalled:
      return "SolveStalled";
    case ErrorCode::WorkerLost:
      return "WorkerLost";
  }
  return "?";
}

Error::Error(ErrorCode code, const std::string& what)
    : std::runtime_error("[" + std::string(to_string(code)) + "] " + what),
      code_(code) {}

namespace detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream oss;
  oss << "PMG_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

void throw_check_failure(const char* cond, const char* file, int line,
                         ErrorCode code, const std::string& msg) {
  std::ostringstream oss;
  oss << "PMG_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(code, oss.str());
}

}  // namespace detail
}  // namespace polymg
