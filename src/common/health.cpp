#include "polymg/common/health.hpp"

#include <cmath>

#include "polymg/common/error.hpp"
#include "polymg/common/parallel.hpp"

namespace polymg::health {

namespace {

/// Regions below this many doubles scan serially: the guarded path scans
/// every output after every cycle, and for coarse grids the fork/join
/// would cost more than the read-through.
inline constexpr index_t kParallelScanGrain = 1 << 15;

}  // namespace

bool has_nonfinite(const double* p, std::size_t n) {
  // x * 0.0 is exactly 0.0 for every finite x and NaN for NaN/±inf, so a
  // plain sum detects any bad element without branches or libm calls.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += p[i] * 0.0;
  return !(acc == 0.0);
}

bool has_nonfinite(const View& v, const Box& region) {
  if (region.empty()) return false;
  PMG_CHECK(v.ndim == region.ndim(),
            "health scan ndim mismatch: view " << v.ndim << " vs region "
                                               << region.ndim());
  const int last = v.ndim - 1;
  PMG_CHECK(v.stride[last] == 1,
            "health scan requires a contiguous last dimension");
  const std::size_t row =
      static_cast<std::size_t>(region.dim(last).size());
  if (v.ndim == 1) {
    return has_nonfinite(v.ptr + (region.dim(0).lo - v.origin[0]), row);
  }
  const index_t lo0 = region.dim(0).lo;
  const index_t hi0 = region.dim(0).hi;
  const bool par = region.count() >= kParallelScanGrain && !in_parallel();
  if (v.ndim == 2) {
    int bad = 0;
    if (par) {
      note_parallel_region();
#pragma omp parallel for reduction(| : bad) schedule(static)
      for (index_t i = lo0; i <= hi0; ++i) {
        const double* p = v.ptr + v.offset2(i, region.dim(1).lo);
        bad |= has_nonfinite(p, row) ? 1 : 0;
        tsan_join_release();
      }
      tsan_join_acquire();
      return bad != 0;
    }
    for (index_t i = lo0; i <= hi0; ++i) {
      const double* p = v.ptr + v.offset2(i, region.dim(1).lo);
      if (has_nonfinite(p, row)) return true;
    }
    return false;
  }
  if (par) {
    int bad = 0;
    note_parallel_region();
#pragma omp parallel for reduction(| : bad) schedule(static)
    for (index_t i = lo0; i <= hi0; ++i) {
      for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
        const double* p = v.ptr + v.offset3(i, j, region.dim(2).lo);
        bad |= has_nonfinite(p, row) ? 1 : 0;
      }
      tsan_join_release();
    }
    tsan_join_acquire();
    return bad != 0;
  }
  for (index_t i = lo0; i <= hi0; ++i) {
    for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
      const double* p = v.ptr + v.offset3(i, j, region.dim(2).lo);
      if (has_nonfinite(p, row)) return true;
    }
  }
  return false;
}

const char* to_string(Trend t) {
  switch (t) {
    case Trend::Converging:
      return "converging";
    case Trend::Stagnating:
      return "stagnating";
    case Trend::Diverging:
      return "diverging";
  }
  return "?";
}

ResidualMonitor::ResidualMonitor(const Config& cfg) : cfg_(cfg) {
  PMG_CHECK(cfg.divergence_factor > 1.0, "divergence factor must exceed 1");
  PMG_CHECK(cfg.stagnation_ratio > 0.0 && cfg.stagnation_ratio <= 1.0,
            "stagnation ratio must lie in (0, 1]");
  PMG_CHECK(cfg.stagnation_window >= 1, "stagnation window must be >= 1");
  PMG_CHECK(cfg.history_limit >= 1, "history limit must be >= 1");
  // Preallocate the ring so observe() never touches the heap.
  ring_.resize(static_cast<std::size_t>(cfg.history_limit), 0.0);
}

Trend ResidualMonitor::observe(double residual) {
  const double prev = last_;
  const bool first = count_ == 0;
  ring_[count_ % ring_.size()] = residual;
  ++count_;
  last_ = residual;
  if (!std::isfinite(residual)) {
    trend_ = Trend::Diverging;
    return trend_;
  }
  if (first) {
    best_ = residual;
    trend_ = Trend::Converging;
    return trend_;
  }
  if (residual > cfg_.divergence_factor * best_) {
    trend_ = Trend::Diverging;
    return trend_;
  }
  if (residual >= cfg_.stagnation_ratio * prev) {
    ++stalled_;
  } else {
    stalled_ = 0;
  }
  best_ = std::min(best_, residual);
  trend_ = stalled_ >= cfg_.stagnation_window ? Trend::Stagnating
                                              : Trend::Converging;
  return trend_;
}

std::vector<double> ResidualMonitor::history() const {
  const std::size_t n = std::min(count_, ring_.size());
  std::vector<double> out;
  out.reserve(n);
  // Oldest retained entry first: a wrapped ring starts at count_ mod cap.
  const std::size_t first = count_ <= ring_.size() ? 0 : count_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

void ResidualMonitor::restore(const State& s) {
  best_ = s.best;
  last_ = s.last;
  count_ = s.count;
  stalled_ = s.stalled;
  trend_ = s.trend;
}

void ResidualMonitor::reset() {
  count_ = 0;
  best_ = 0.0;
  last_ = 0.0;
  stalled_ = 0;
  trend_ = Trend::Converging;
}

}  // namespace polymg::health
