#include "polymg/opt/options.hpp"

namespace polymg::opt {

std::string to_string(Variant v) {
  switch (v) {
    case Variant::Naive:
      return "polymg-naive";
    case Variant::Opt:
      return "polymg-opt";
    case Variant::OptPlus:
      return "polymg-opt+";
    case Variant::DtileOptPlus:
      return "polymg-dtile-opt+";
  }
  return "?";
}

std::string to_string(JitMode m) {
  switch (m) {
    case JitMode::Off:
      return "off";
    case JitMode::Auto:
      return "auto";
    case JitMode::On:
      return "on";
  }
  return "?";
}

std::string to_string(Precision p) {
  switch (p) {
    case Precision::Double:
      return "double";
    case Precision::Mixed:
      return "mixed";
    case Precision::Float:
      return "float";
  }
  return "?";
}

CompileOptions CompileOptions::for_variant(Variant v, int ndim) {
  CompileOptions o;
  o.variant = v;
  o.tile = {0, 0, 0};
  (void)ndim;
  switch (v) {
    case Variant::Naive:
      o.intra_group_reuse = false;
      o.inter_group_reuse = false;
      o.pooled_allocation = false;
      o.collapse = false;
      o.dependence_schedule = false;
      break;
    case Variant::Opt:
      // PolyMage's image-processing optimizer: fusion + overlapped tiling
      // + scratchpads, but one-to-one storage and per-cycle allocation.
      o.intra_group_reuse = false;
      o.inter_group_reuse = false;
      o.pooled_allocation = false;
      break;
    case Variant::OptPlus:
    case Variant::DtileOptPlus:
      break;  // all storage optimizations on (the defaults)
  }
  return o;
}

poly::TileSizes CompileOptions::resolved_tile(int ndim) const {
  poly::TileSizes t = tile;
  if (ndim == 2) {
    if (t[0] <= 0) t[0] = 32;
    if (t[1] <= 0) t[1] = 256;
  } else if (ndim == 3) {
    // Upper end of the paper's 3-d search range (8:32 outer, 64:256
    // inner): larger outer tiles keep the overlapped-tile redundancy of
    // deep smoother groups acceptable on one-socket machines.
    if (t[0] <= 0) t[0] = 32;
    if (t[1] <= 0) t[1] = 32;
    if (t[2] <= 0) t[2] = 128;
  } else {
    if (t[0] <= 0) t[0] = 1024;
  }
  return t;
}

}  // namespace polymg::opt
