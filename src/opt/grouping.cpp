#include "polymg/opt/grouping.hpp"

#include <algorithm>

#include "polymg/common/error.hpp"

namespace polymg::opt {

std::vector<std::vector<int>> find_smoother_chains(const Pipeline& pipe) {
  std::vector<std::vector<int>> chains;
  const auto consumers = pipe.consumers();
  int i = 0;
  while (i < pipe.num_stages()) {
    const ir::FunctionDecl& f = pipe.funcs[i];
    if (f.construct != ir::ConstructKind::TStencilStep || f.time_step != 0) {
      ++i;
      continue;
    }
    // Collect the maximal chain starting at this step-0 function. The
    // builder emits chain steps contiguously; verify the links anyway.
    std::vector<int> chain{i};
    int j = i + 1;
    while (j < pipe.num_stages() &&
           pipe.funcs[j].construct == ir::ConstructKind::TStencilStep &&
           pipe.funcs[j].time_chain == f.time_chain &&
           pipe.funcs[j].time_step == static_cast<int>(chain.size())) {
      chain.push_back(j);
      ++j;
    }
    // Eligibility: every intermediate step must feed only the next step
    // (no taps out of the middle of the chain), and the self access must
    // be unit-scale (a plain time-iterated stencil).
    bool ok = chain.size() >= 2;
    for (std::size_t s = 0; ok && s < chain.size(); ++s) {
      const ir::FunctionDecl& step = pipe.funcs[chain[s]];
      ok = !step.sources.empty() && step.access_for(0).is_unit_scale();
      if (ok && s + 1 < chain.size()) {
        ok = consumers[chain[s]].size() == 1 &&
             consumers[chain[s]][0].first == chain[s + 1] &&
             !pipe.is_output(chain[s]);
      }
      if (ok && s > 0) {
        // Steps must chain on slot 0, share one domain (the ping-pong
        // buffer pair assumes it) and bind the same time-invariant
        // sources in the remaining slots.
        const ir::FunctionDecl& head = pipe.funcs[chain[0]];
        ok = !step.sources[0].external &&
             step.sources[0].index == chain[s - 1] &&
             step.domain == head.domain &&
             step.sources.size() == head.sources.size();
        for (std::size_t q = 1; ok && q < step.sources.size(); ++q) {
          ok = step.sources[q].external == head.sources[q].external &&
               step.sources[q].index == head.sources[q].index;
        }
      }
    }
    if (ok) chains.push_back(std::move(chain));
    i = j;
  }
  return chains;
}

Grouping auto_group(const Pipeline& pipe, const CompileOptions& opts) {
  const int n = pipe.num_stages();
  Grouping g;
  g.groups.reserve(n);
  g.group_of.assign(n, -1);

  std::vector<bool> frozen;  // group may not merge (time-tiled or Naive)

  // Pin smoother chains as fixed time-tiled groups for the dtile variant.
  std::vector<int> chain_of(n, -1);
  if (opts.variant == Variant::DtileOptPlus) {
    const auto chains = find_smoother_chains(pipe);
    for (const auto& chain : chains) {
      const int gid = static_cast<int>(g.groups.size());
      g.groups.push_back(chain);
      for (int f : chain) {
        g.group_of[f] = gid;
        chain_of[f] = gid;
      }
      frozen.push_back(true);
      g.time_tiled.push_back(true);
    }
  }

  for (int f = 0; f < n; ++f) {
    if (g.group_of[f] >= 0) continue;
    g.group_of[f] = static_cast<int>(g.groups.size());
    g.groups.push_back({f});
    frozen.push_back(opts.variant == Variant::Naive);
    g.time_tiled.push_back(false);
  }

  if (opts.variant == Variant::Naive) return g;

  const auto consumers = pipe.consumers();
  const poly::TileSizes tile = opts.resolved_tile(pipe.ndim);

  // Greedy fixpoint: merge a group into its sole consumer group while the
  // grouping limit and the redundancy threshold hold.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t gi = 0; gi < g.groups.size(); ++gi) {
      if (g.groups[gi].empty() || frozen[gi]) continue;
      // The unique group consuming gi's stages, if any.
      int target = -1;
      bool unique = true;
      for (int f : g.groups[gi]) {
        for (const auto& [cf, slot] : consumers[f]) {
          (void)slot;
          const int cg = g.group_of[cf];
          if (cg == static_cast<int>(gi)) continue;
          if (target == -1) {
            target = cg;
          } else if (target != cg) {
            unique = false;
          }
        }
      }
      if (!unique || target < 0 || frozen[target]) continue;
      if (static_cast<int>(g.groups[gi].size() + g.groups[target].size()) >
          opts.group_limit) {
        continue;
      }
      std::vector<int> merged = g.groups[gi];
      merged.insert(merged.end(), g.groups[target].begin(),
                    g.groups[target].end());
      const GroupAnalysis ga =
          analyze_group(pipe, merged, consumers, {}, tile);
      if (!ga.valid || ga.max_redundancy > opts.overlap_threshold) continue;

      // Commit: move everything into `target`, empty gi.
      for (int f : g.groups[gi]) g.group_of[f] = target;
      g.groups[target] = ga.order;
      g.groups[gi].clear();
      changed = true;
    }
  }

  // Compact away emptied groups.
  Grouping out;
  out.group_of.assign(n, -1);
  for (std::size_t gi = 0; gi < g.groups.size(); ++gi) {
    if (g.groups[gi].empty()) continue;
    const int ngid = static_cast<int>(out.groups.size());
    for (int f : g.groups[gi]) out.group_of[f] = ngid;
    out.groups.push_back(g.groups[gi]);
    out.time_tiled.push_back(g.time_tiled[gi]);
  }
  return out;
}

}  // namespace polymg::opt
