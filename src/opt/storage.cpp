#include "polymg/opt/storage.hpp"

#include <algorithm>
#include <numeric>

#include "polymg/common/error.hpp"

namespace polymg::opt {

std::vector<int> last_use_map(const std::vector<int>& times,
                              const std::vector<std::vector<int>>& consumers) {
  PMG_CHECK(times.size() == consumers.size(), "last_use_map size mismatch");
  std::vector<int> last(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    int lu = times[i];
    for (int ct : consumers[i]) lu = std::max(lu, ct);
    last[i] = lu;
  }
  return last;
}

RemapResult remap_storage(const std::vector<StorageItem>& items,
                          bool defer_same_time_release) {
  RemapResult res;
  res.storage.assign(items.size(), -1);

  // Sort indices by (time, original index) — the paper's F_sorted.
  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return items[a].time < items[b].time;
  });

  // arrayPool: storage-class -> free buffer ids (LIFO pop, matching the
  // paper's set-pop with deterministic order).
  std::map<int, std::vector<int>> pool;
  // Buffers that died at `pending_time`, awaiting release until the
  // schedule moves past it (only when defer_same_time_release).
  std::vector<std::pair<int, int>> pending;  // (class, buffer)
  int pending_time = -1;

  // lastUseMap: time -> items whose storage dies then.
  std::map<int, std::vector<int>> dies_at;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].excluded) dies_at[items[i].last_use].push_back(static_cast<int>(i));
  }

  int next_buffer = 0;
  for (int idx : order) {
    const StorageItem& it = items[idx];

    if (defer_same_time_release && it.time > pending_time) {
      for (auto& [k, b] : pending) pool[k].push_back(b);
      pending.clear();
      pending_time = it.time;
    }

    if (it.excluded) {
      res.storage[idx] = next_buffer++;
    } else {
      auto& free_list = pool[it.klass];
      if (free_list.empty()) {
        res.storage[idx] = next_buffer++;
      } else {
        res.storage[idx] = free_list.back();
        free_list.pop_back();
      }
    }

    // Return buffers of functions with no use after this timestamp.
    if (auto d = dies_at.find(it.time); d != dies_at.end()) {
      for (int dead : d->second) {
        if (res.storage[dead] < 0) continue;  // not yet assigned
        if (defer_same_time_release) {
          pending.emplace_back(items[dead].klass, res.storage[dead]);
        } else {
          pool[items[dead].klass].push_back(res.storage[dead]);
        }
      }
      d->second.clear();
    }
  }
  res.num_buffers = next_buffer;
  return res;
}

int StorageClasses::classify(const std::array<index_t, 3>& extents,
                             int ndim) {
  // Greedy first fit: join an existing class when every dimension is
  // within ±slack of the class's current maximum (the paper's ±constant
  // threshold relaxation of exact-size matching). The class max grows to
  // cover all members, so the allocation always suffices.
  for (int c = 0; c < num_classes(); ++c) {
    if (class_ndim_[c] != ndim) continue;
    bool fits = true;
    for (int d = 0; d < ndim && fits; ++d) {
      const index_t diff = extents[d] - max_extents_[c][d];
      fits = diff <= slack_ && diff >= -slack_;
    }
    if (fits) {
      for (int d = 0; d < ndim; ++d) {
        max_extents_[c][d] = std::max(max_extents_[c][d], extents[d]);
      }
      return c;
    }
  }
  max_extents_.push_back(extents);
  class_ndim_.push_back(ndim);
  return num_classes() - 1;
}

index_t StorageClasses::class_doubles(int klass) const {
  PMG_CHECK(klass >= 0 && klass < num_classes(), "bad storage class");
  index_t n = 1;
  for (int d = 0; d < class_ndim_[klass]; ++d) {
    n *= max_extents_[klass][d];
  }
  return n;
}

}  // namespace polymg::opt
