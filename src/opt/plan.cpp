#include "polymg/opt/plan.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::opt {

namespace {

int gcd(int a, int b) { return b == 0 ? a : gcd(b, a % b); }

/// rel(consumer) composed with the consumer->producer access scale.
RelScale compose_rel(const RelScale& c, const poly::Access& acc, int ndim) {
  RelScale p;
  for (int d = 0; d < ndim; ++d) {
    int num = c.num[d] * acc.d[d].num;
    int den = c.den[d] * acc.d[d].den;
    const int g = gcd(num, den);
    p.num[d] = num / g;
    p.den[d] = den / g;
  }
  return p;
}

bool rel_equal(const RelScale& a, const RelScale& b, int ndim) {
  for (int d = 0; d < ndim; ++d) {
    if (a.num[d] != b.num[d] || a.den[d] != b.den[d]) return false;
  }
  return true;
}

}  // namespace

GroupAnalysis analyze_group(
    const Pipeline& pipe, const std::vector<int>& funcs,
    const std::vector<std::vector<std::pair<int, int>>>& consumers,
    const std::vector<bool>& /*unused*/, const poly::TileSizes& tile) {
  GroupAnalysis ga;
  ga.order = funcs;
  std::sort(ga.order.begin(), ga.order.end());
  const int n = static_cast<int>(ga.order.size());
  const int ndim = pipe.ndim;

  std::vector<int> pos_of(pipe.num_stages(), -1);
  for (int p = 0; p < n; ++p) pos_of[ga.order[p]] = p;

  // In-group consumer edges and live-out flags.
  ga.in_group_consumers.assign(n, {});
  ga.liveout.assign(n, false);
  for (int p = 0; p < n; ++p) {
    const int f = ga.order[p];
    if (pipe.is_output(f)) ga.liveout[p] = true;
    for (const auto& [cf, slot] : consumers[f]) {
      if (pos_of[cf] >= 0) {
        ga.in_group_consumers[p].emplace_back(pos_of[cf], slot);
      } else {
        ga.liveout[p] = true;
      }
    }
  }
  // The last stage is always a live-out sink (nothing after it in the
  // group can consume it).
  ga.liveout[n - 1] = true;

  // Single-sink requirement: every non-anchor stage must feed something
  // inside the group, otherwise relative scales are ill-defined.
  for (int p = 0; p < n - 1; ++p) {
    if (ga.in_group_consumers[p].empty()) {
      ga.reject_reason = "multiple sinks";
      return ga;
    }
  }

  // Relative scales w.r.t. the anchor, walking consumers backwards.
  ga.rel.assign(n, RelScale{});
  std::vector<bool> rel_set(n, false);
  rel_set[n - 1] = true;
  for (int p = n - 2; p >= 0; --p) {
    const ir::FunctionDecl& pf = pipe.funcs[ga.order[p]];
    (void)pf;
    for (const auto& [cpos, slot] : ga.in_group_consumers[p]) {
      const ir::FunctionDecl& cf = pipe.funcs[ga.order[cpos]];
      const RelScale r = compose_rel(ga.rel[cpos], cf.access_for(slot), ndim);
      if (!rel_set[p]) {
        ga.rel[p] = r;
        rel_set[p] = true;
      } else if (!rel_equal(ga.rel[p], r, ndim)) {
        ga.reject_reason = "inconsistent scales across consumers";
        return ga;
      }
    }
  }

  // Per-stage tile extent bounds (scratchpad sizing) and the redundancy
  // ratio against each stage's fair share.
  const ir::FunctionDecl& anchor = pipe.funcs[ga.order[n - 1]];
  ga.extent.assign(n, {});
  for (int d = 0; d < ndim; ++d) {
    ga.extent[n - 1][d] =
        std::min<poly::index_t>(tile[d], anchor.domain.dim(d).size());
  }
  for (int p = n - 2; p >= 0; --p) {
    const ir::FunctionDecl& pf = pipe.funcs[ga.order[p]];
    std::array<poly::index_t, 3> ext{};
    for (const auto& [cpos, slot] : ga.in_group_consumers[p]) {
      const ir::FunctionDecl& cf = pipe.funcs[ga.order[cpos]];
      const poly::Access& acc = cf.access_for(slot);
      for (int d = 0; d < ndim; ++d) {
        ext[d] = std::max(
            ext[d], poly::footprint_extent_bound(acc.d[d], ga.extent[cpos][d]));
      }
    }
    if (ga.liveout[p]) {
      for (int d = 0; d < ndim; ++d) {
        const poly::DimAccess own{ga.rel[p].num[d], ga.rel[p].den[d], 0, 0};
        ext[d] = std::max(
            ext[d],
            poly::footprint_extent_bound(own, ga.extent[n - 1][d]) + 1);
      }
    }
    for (int d = 0; d < ndim; ++d) {
      ext[d] = std::min(ext[d], pf.domain.dim(d).size());
    }
    ga.extent[p] = ext;

    for (int d = 0; d < ndim; ++d) {
      const poly::DimAccess own{ga.rel[p].num[d], ga.rel[p].den[d], 0, 0};
      const double fair = static_cast<double>(
          poly::footprint_extent_bound(own, ga.extent[n - 1][d]));
      const double red = (static_cast<double>(ext[d]) - fair) / fair;
      ga.max_redundancy = std::max(ga.max_redundancy, red);
    }
  }

  ga.valid = true;
  return ga;
}

Box owned_region(const ir::FunctionDecl& f, const RelScale& rel,
                 const Box& anchor_tile, const Box& anchor_domain) {
  const int ndim = f.ndim;
  Box own(ndim);
  for (int d = 0; d < ndim; ++d) {
    const auto fmap = [&](poly::index_t x) {
      return poly::floordiv(rel.num[d] * x, rel.den[d]);
    };
    poly::index_t lo = fmap(anchor_tile.dim(d).lo);
    poly::index_t hi = fmap(anchor_tile.dim(d).hi + 1) - 1;
    // At the partition edges, extend to the stage's own domain bounds so
    // ghost rings are owned by exactly one tile.
    if (anchor_tile.dim(d).lo == anchor_domain.dim(d).lo) {
      lo = f.domain.dim(d).lo;
    }
    if (anchor_tile.dim(d).hi == anchor_domain.dim(d).hi) {
      hi = f.domain.dim(d).hi;
    }
    own.dim(d) = poly::Interval{std::max(lo, f.domain.dim(d).lo),
                                std::min(hi, f.domain.dim(d).hi)};
  }
  return own;
}

void tile_regions(const Pipeline& pipe, const GroupPlan& g,
                  const Box& anchor_tile, std::vector<Box>& regions) {
  const int n = static_cast<int>(g.stages.size());
  regions.assign(n, Box{});
  regions[g.anchor] = anchor_tile;
  const Box& anchor_domain = pipe.funcs[g.stages[g.anchor].func].domain;
  for (int p = n - 2; p >= 0; --p) {
    const StagePlan& sp = g.stages[p];
    const ir::FunctionDecl& pf = pipe.funcs[sp.func];
    Box r;
    for (const auto& [cpos, slot] : sp.in_group_consumers) {
      const ir::FunctionDecl& cf = pipe.funcs[g.stages[cpos].func];
      r = poly::hull(r, poly::footprint(cf.access_for(slot), regions[cpos]));
    }
    if (sp.liveout) {
      r = poly::hull(r, owned_region(pf, sp.rel, anchor_tile, anchor_domain));
    }
    regions[p] = poly::intersect(r, pf.domain);
  }
}

std::string CompiledPipeline::dump() const {
  std::ostringstream os;
  os << "compiled pipeline (" << to_string(opts.variant) << "): "
     << groups.size() << " groups, " << arrays.size() << " full arrays\n";
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const GroupPlan& g = groups[gi];
    os << " group " << gi << " ["
       << (g.exec == GroupExec::Loops          ? "loops"
           : g.exec == GroupExec::OverlapTiled ? "overlap-tiled"
                                               : "time-tiled")
       << "]";
    if (g.exec == GroupExec::OverlapTiled) {
      os << " tile=";
      for (int d = 0; d < pipe.ndim; ++d) {
        os << (d ? "x" : "") << g.tiles.sizes[d];
      }
      os << " collapse=" << g.collapse_depth;
    }
    if (g.exec == GroupExec::TimeTiled) {
      os << " H=" << g.dtile_H << " W=" << g.dtile_W;
    }
    os << "\n";
    for (const StagePlan& sp : g.stages) {
      os << "   " << pipe.funcs[sp.func].name;
      if (sp.scratch_buffer >= 0) os << "  scratchpad#" << sp.scratch_buffer;
      if (sp.array >= 0) {
        os << "  array#" << sp.array << " (" << arrays[sp.array].name << ")";
      }
      if (sp.scratch_buffer < 0 && sp.array < 0) {
        os << "  (no storage: ping-pong intermediate)";
      }
      if (sp.liveout) os << "  live-out";
      os << "\n";
    }
    if (!release_after_group[gi].empty()) {
      os << "   release:";
      for (int a : release_after_group[gi]) os << " array#" << a;
      os << "\n";
    }
  }
  return os.str();
}

namespace {

/// FNV-1a, the usual 64-bit variant.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

}  // namespace

std::uint64_t kernel_fingerprint(const CompiledPipeline& plan) {
  Fnv1a fp;
  fp.u64(static_cast<std::uint64_t>(plan.pipe.funcs.size()));
  for (std::size_t f = 0; f < plan.pipe.funcs.size(); ++f) {
    const ir::FunctionDecl& fn = plan.pipe.funcs[f];
    const ir::LoweredFunc& lf = plan.lowered[f];
    fp.byte(static_cast<std::uint8_t>(fn.ndim));
    fp.byte(fn.parity_piecewise ? 1 : 0);
    // Storage dtypes select the load/store casts the emitted kernel
    // bakes in, so they are part of the kernel's identity.
    fp.byte(static_cast<std::uint8_t>(plan.dtype_of_func(static_cast<int>(f))));
    for (const ir::SourceSlot& s : fn.sources) {
      fp.byte(static_cast<std::uint8_t>(
          s.external ? plan.dtype_of_external(s.index)
                     : plan.dtype_of_func(s.index)));
    }
    fp.u64(static_cast<std::uint64_t>(lf.defs.size()));
    for (const ir::LoweredDef& d : lf.defs) {
      // Linearizability selects the emission order (tap loop vs register
      // program), so it is part of the kernel's identity.
      fp.byte(d.linear.has_value() ? 1 : 0);
      fp.u64(static_cast<std::uint64_t>(d.bytecode.size()));
      for (const ir::BcOp& op : d.bytecode) {
        fp.byte(static_cast<std::uint8_t>(op.kind));
        if (op.kind == ir::BcKind::PushConst) fp.f64(op.c);
        if (op.kind == ir::BcKind::Load) {
          fp.byte(static_cast<std::uint8_t>(op.slot));
          for (int dim = 0; dim < fn.ndim; ++dim) {
            fp.i64(op.idx[dim].num);
            fp.i64(op.idx[dim].den);
            fp.i64(op.idx[dim].off);
          }
        }
      }
    }
  }
  return fp.h;
}

}  // namespace polymg::opt
