#include "polymg/opt/validate.hpp"

#include "polymg/opt/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "polymg/common/error.hpp"

namespace polymg::opt {

namespace {

class IssueList {
public:
  template <typename Fn>
  void check(bool ok, Fn&& describe) {
    if (!ok) {
      std::ostringstream oss;
      describe(oss);
      issues_.push_back(oss.str());
    }
  }
  std::vector<std::string> take() { return std::move(issues_); }

private:
  std::vector<std::string> issues_;
};

}  // namespace

std::vector<std::string> plan_issues(const CompiledPipeline& cp) {
  IssueList out;
  const Pipeline& pipe = cp.pipe;
  const int nfuncs = pipe.num_stages();
  const int narrays = static_cast<int>(cp.arrays.size());

  out.check(static_cast<int>(cp.lowered.size()) == nfuncs, [&](auto& o) {
    o << "lowered count " << cp.lowered.size() << " != " << nfuncs
      << " functions";
  });
  out.check(static_cast<int>(cp.array_of_func.size()) == nfuncs,
            [&](auto& o) {
              o << "array_of_func covers " << cp.array_of_func.size()
                << " of " << nfuncs << " functions";
            });
  out.check(cp.release_after_group.size() == cp.groups.size(), [&](auto& o) {
    o << "release_after_group has " << cp.release_after_group.size()
      << " entries for " << cp.groups.size() << " groups";
  });

  // ---- Group coverage and schedule positions. ----
  std::vector<int> group_of(static_cast<std::size_t>(nfuncs), -1);
  std::vector<int> pos_of(static_cast<std::size_t>(nfuncs), -1);
  for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
    const GroupPlan& g = cp.groups[gi];
    for (std::size_t p = 0; p < g.stages.size(); ++p) {
      const int f = g.stages[p].func;
      if (f < 0 || f >= nfuncs) {
        out.check(false, [&](auto& o) {
          o << "group " << gi << " stage " << p << " names function " << f
            << " out of range";
        });
        continue;
      }
      out.check(group_of[f] < 0, [&](auto& o) {
        o << pipe.funcs[f].name << " scheduled in groups " << group_of[f]
          << " and " << gi;
      });
      group_of[f] = static_cast<int>(gi);
      pos_of[f] = static_cast<int>(p);
    }
  }
  for (int f = 0; f < nfuncs; ++f) {
    out.check(group_of[f] >= 0, [&](auto& o) {
      o << pipe.funcs[f].name << " is scheduled in no group";
    });
  }

  // ---- Schedule causality: producers run no later than consumers. ----
  for (int f = 0; f < nfuncs; ++f) {
    if (group_of[f] < 0) continue;
    for (const ir::SourceSlot& s : pipe.funcs[f].sources) {
      if (s.external || s.index < 0 || s.index >= nfuncs ||
          group_of[s.index] < 0) {
        continue;
      }
      const int p = s.index;
      const bool ordered =
          group_of[p] < group_of[f] ||
          (group_of[p] == group_of[f] && pos_of[p] < pos_of[f]);
      out.check(ordered, [&](auto& o) {
        o << "schedule violates dependence " << pipe.funcs[p].name << " -> "
          << pipe.funcs[f].name << " (group " << group_of[p] << " pos "
          << pos_of[p] << " vs group " << group_of[f] << " pos "
          << pos_of[f] << ")";
      });
    }
  }

  // ---- Storage map consistency. ----
  for (int f = 0;
       f < std::min(nfuncs, static_cast<int>(cp.array_of_func.size()));
       ++f) {
    const int aid = cp.array_of_func[f];
    out.check(aid >= -1 && aid < narrays, [&](auto& o) {
      o << pipe.funcs[f].name << " maps to array " << aid
        << " out of range";
    });
    if (aid >= 0 && aid < narrays) {
      out.check(cp.arrays[aid].doubles >= pipe.funcs[f].domain.count(),
                [&](auto& o) {
                  o << "array " << cp.arrays[aid].name << " ("
                    << cp.arrays[aid].doubles << " doubles) undersized for "
                    << pipe.funcs[f].name << " ("
                    << pipe.funcs[f].domain.count() << " doubles)";
                });
    }
  }
  for (int outf : pipe.outputs) {
    const int aid =
        outf >= 0 && outf < static_cast<int>(cp.array_of_func.size())
            ? cp.array_of_func[outf]
            : -1;
    out.check(aid >= 0, [&](auto& o) {
      o << "output " << pipe.funcs[outf].name << " has no full array";
    });
    if (aid < 0 || aid >= narrays) continue;
    out.check(cp.arrays[aid].io, [&](auto& o) {
      o << "output array " << cp.arrays[aid].name << " not flagged io";
    });
    for (int f = 0; f < nfuncs; ++f) {
      out.check(f == outf || cp.array_of_func[f] != aid, [&](auto& o) {
        o << pipe.funcs[f].name << " shares the output array of "
          << pipe.funcs[outf].name;
      });
    }
  }

  // ---- Per-group execution-shape invariants. ----
  for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
    const GroupPlan& g = cp.groups[gi];
    const int nscratch = static_cast<int>(g.scratch_sizes.size());
    const poly::index_t scratch_sum = std::accumulate(
        g.scratch_sizes.begin(), g.scratch_sizes.end(), poly::index_t{0});
    out.check(g.scratch_doubles_total == scratch_sum, [&](auto& o) {
      o << "group " << gi << " scratch_doubles_total "
        << g.scratch_doubles_total << " != sum of scratch sizes "
        << scratch_sum;
    });

    for (std::size_t p = 0; p < g.stages.size(); ++p) {
      const StagePlan& sp = g.stages[p];
      if (sp.func < 0 || sp.func >= nfuncs) continue;
      const std::string& name = pipe.funcs[sp.func].name;
      if (g.exec == GroupExec::Loops) {
        out.check(sp.array >= 0, [&](auto& o) {
          o << "Loops stage " << name << " has no full array";
        });
      }
      if (g.exec == GroupExec::OverlapTiled) {
        out.check(!sp.liveout || sp.array >= 0, [&](auto& o) {
          o << "live-out " << name << " has no full array";
        });
        out.check(sp.in_group_consumers.empty() ||
                      (sp.scratch_buffer >= 0 && sp.scratch_buffer < nscratch),
                  [&](auto& o) {
                    o << name << " has in-group consumers but scratchpad id "
                      << sp.scratch_buffer << " (of " << nscratch << ")";
                  });
        for (const auto& [cpos, slot] : sp.in_group_consumers) {
          (void)slot;
          out.check(cpos > static_cast<int>(p) &&
                        cpos < static_cast<int>(g.stages.size()),
                    [&](auto& o) {
                      o << name << " lists in-group consumer position "
                        << cpos << " not after producer position " << p;
                    });
        }
      }
    }

    if (g.exec == GroupExec::OverlapTiled) {
      out.check(g.anchor >= 0 &&
                    g.anchor < static_cast<int>(g.stages.size()),
                [&](auto& o) {
                  o << "group " << gi << " anchor " << g.anchor
                    << " out of range";
                });
      if (g.anchor < 0 || g.anchor >= static_cast<int>(g.stages.size())) {
        continue;
      }
      const ir::FunctionDecl& anchor_f =
          pipe.funcs[g.stages[g.anchor].func];
      out.check(g.tiles.total >= 1, [&](auto& o) {
        o << "group " << gi << " has an empty tile grid";
      });
      // The tiles must partition the anchor domain disjointly.
      poly::index_t covered = 0;
      for (poly::index_t t = 0; t < g.tiles.total; ++t) {
        const Box tb = g.tiles.tile_box(t);
        covered += tb.count();
        out.check(anchor_f.domain.contains(tb), [&](auto& o) {
          o << "group " << gi << " tile " << t
            << " leaves the anchor domain of " << anchor_f.name;
        });
      }
      out.check(covered == anchor_f.domain.count(), [&](auto& o) {
        o << "group " << gi << " tiles cover " << covered << " of "
          << anchor_f.domain.count() << " anchor points";
      });
      // Scratchpad sizing vs. the real footprint of every tile — the
      // same bound the executor enforces per tile, checked eagerly here.
      // The plan-time region cache must agree with a recomputation; a
      // corrupted instance table would silently misdirect every kernel.
      const std::size_t cache_expect =
          static_cast<std::size_t>(g.tiles.total) * g.stages.size();
      out.check(g.tile_regions_cache.empty() ||
                    g.tile_regions_cache.size() == cache_expect,
                [&](auto& o) {
                  o << "group " << gi << " tile-region cache holds "
                    << g.tile_regions_cache.size() << " boxes, expected "
                    << cache_expect;
                });
      const bool cache_usable = g.tile_regions_cache.size() == cache_expect;
      std::vector<Box> regions(g.stages.size());
      for (poly::index_t t = 0; t < g.tiles.total; ++t) {
        tile_regions(pipe, g, g.tiles.tile_box(t), regions);
        if (cache_usable) {
          for (std::size_t p = 0; p < g.stages.size(); ++p) {
            const Box& cached =
                g.tile_regions_cache[static_cast<std::size_t>(t) *
                                         g.stages.size() +
                                     p];
            out.check(cached == regions[p], [&](auto& o) {
              o << "group " << gi << " cached region of tile " << t
                << " stage " << p << " is " << cached << ", recomputed "
                << regions[p];
            });
          }
        }
        for (std::size_t p = 0; p < g.stages.size(); ++p) {
          const StagePlan& sp = g.stages[p];
          if (sp.scratch_buffer < 0 || sp.scratch_buffer >= nscratch) {
            continue;
          }
          out.check(
              regions[p].count() <= g.scratch_sizes[sp.scratch_buffer],
              [&](auto& o) {
                o << "scratchpad " << sp.scratch_buffer << " ("
                  << g.scratch_sizes[sp.scratch_buffer]
                  << " doubles) undersized for tile " << t << " of "
                  << pipe.funcs[sp.func].name << " (needs "
                  << regions[p].count() << ")";
              });
        }
      }
    }

    if (g.exec == GroupExec::TimeTiled) {
      out.check(g.stages.size() >= 2, [&](auto& o) {
        o << "time-tiled group " << gi << " has fewer than 2 steps";
      });
      out.check(g.time_temp_array >= 0 && g.time_temp_array < narrays,
                [&](auto& o) {
                  o << "time-tiled group " << gi << " ping-pong array "
                    << g.time_temp_array << " out of range";
                });
      out.check(g.dtile_H >= 1 && g.dtile_W >= 2 * g.dtile_H, [&](auto& o) {
        o << "time-tiled group " << gi << " block " << g.dtile_W << "x"
          << g.dtile_H << " violates width >= 2 x height";
      });
      const ir::FunctionDecl& first = pipe.funcs[g.stages.front().func];
      for (const StagePlan& sp : g.stages) {
        out.check(pipe.funcs[sp.func].domain.count() ==
                      first.domain.count(),
                  [&](auto& o) {
                    o << "time-tiled chain mixes domains ("
                      << pipe.funcs[sp.func].name << ")";
                  });
      }
      if (g.time_temp_array >= 0 && g.time_temp_array < narrays) {
        out.check(cp.arrays[g.time_temp_array].doubles >=
                      first.domain.count(),
                  [&](auto& o) {
                    o << "ping-pong array of group " << gi
                      << " undersized";
                  });
      }
    }
  }

  // ---- Lowered register programs: structurally sound, and absent when
  // ---- the plan opts out of the engine (oracle plans must interpret).
  for (int f = 0; f < std::min(nfuncs, static_cast<int>(cp.lowered.size()));
       ++f) {
    const int nslots = static_cast<int>(pipe.funcs[f].sources.size());
    for (std::size_t di = 0; di < cp.lowered[f].defs.size(); ++di) {
      const ir::LoweredDef& ld = cp.lowered[f].defs[di];
      if (ld.regprog.empty()) continue;
      out.check(cp.opts.register_engine, [&](auto& o) {
        o << pipe.funcs[f].name << " def " << di
          << " carries a register program in a plan with the register "
             "engine disabled";
      });
      for (const std::string& s : ir::regprog_issues(ld.regprog, nslots)) {
        out.check(false, [&](auto& o) {
          o << pipe.funcs[f].name << " def " << di << " register program: "
            << s;
        });
      }
    }
  }

  // ---- Liveness: releases in range, unique, never before a reader. ----
  std::vector<int> released_at(static_cast<std::size_t>(narrays), -1);
  for (std::size_t gi = 0; gi < cp.release_after_group.size(); ++gi) {
    for (int aid : cp.release_after_group[gi]) {
      if (aid < 0 || aid >= narrays) {
        out.check(false, [&](auto& o) {
          o << "release after group " << gi << " names array " << aid
            << " out of range";
        });
        continue;
      }
      out.check(!cp.arrays[aid].io, [&](auto& o) {
        o << "io array " << cp.arrays[aid].name << " released after group "
          << gi;
      });
      out.check(released_at[aid] < 0, [&](auto& o) {
        o << "array " << cp.arrays[aid].name << " released after groups "
          << released_at[aid] << " and " << gi;
      });
      released_at[aid] = static_cast<int>(gi);
    }
  }
  for (int f = 0; f < nfuncs; ++f) {
    if (group_of[f] < 0) continue;
    for (const ir::SourceSlot& s : pipe.funcs[f].sources) {
      if (s.external || s.index < 0 || s.index >= nfuncs) continue;
      const int aid = cp.array_of_func[s.index];
      if (aid < 0 || aid >= narrays || released_at[aid] < 0) continue;
      out.check(released_at[aid] >= group_of[f], [&](auto& o) {
        o << "array of " << pipe.funcs[s.index].name
          << " released after group " << released_at[aid]
          << " but still read by " << pipe.funcs[f].name << " in group "
          << group_of[f];
      });
    }
  }

  // ---- Storage precision invariants. ----
  out.check(cp.func_dtype.empty() ||
                static_cast<int>(cp.func_dtype.size()) == nfuncs,
            [&](auto& o) {
              o << "func_dtype covers " << cp.func_dtype.size() << " of "
                << nfuncs << " functions";
            });
  out.check(cp.external_dtype.empty() ||
                cp.external_dtype.size() == pipe.externals.size(),
            [&](auto& o) {
              o << "external_dtype covers " << cp.external_dtype.size()
                << " of " << pipe.externals.size() << " externals";
            });
  if (!cp.opts.precision.mixed()) {
    for (int f = 0; f < nfuncs; ++f) {
      out.check(cp.dtype_of_func(f) == grid::DType::F64, [&](auto& o) {
        o << pipe.funcs[f].name
          << " stores F32 in a Precision::Double plan";
      });
    }
    for (std::size_t e = 0; e < pipe.externals.size(); ++e) {
      out.check(cp.dtype_of_external(static_cast<int>(e)) ==
                    grid::DType::F64,
                [&](auto& o) {
                  o << "external " << e
                    << " stores F32 in a Precision::Double plan";
                });
    }
  }
  for (int outf : pipe.outputs) {
    out.check(cp.dtype_of_func(outf) == grid::DType::F64, [&](auto& o) {
      o << "pipeline output " << pipe.funcs[outf].name << " stores F32";
    });
  }
  for (int f = 0; f < nfuncs; ++f) {
    // The kernels are specialized per (out, src) dtype pair: every
    // function must read sources of one dtype, and a TimeTiled chain
    // (one shared ping-pong pair) must be dtype-uniform.
    bool has32 = false, has64 = false;
    for (const ir::SourceSlot& s : pipe.funcs[f].sources) {
      const grid::DType dt = s.external ? cp.dtype_of_external(s.index)
                                        : cp.dtype_of_func(s.index);
      (dt == grid::DType::F32 ? has32 : has64) = true;
    }
    out.check(!(has32 && has64), [&](auto& o) {
      o << pipe.funcs[f].name << " reads mixed-dtype sources";
    });
  }
  for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
    const GroupPlan& g = cp.groups[gi];
    if (g.exec != GroupExec::TimeTiled || g.stages.empty()) continue;
    const grid::DType dt0 = cp.dtype_of_func(g.stages.front().func);
    for (const StagePlan& sp : g.stages) {
      out.check(cp.dtype_of_func(sp.func) == dt0, [&](auto& o) {
        o << "time-tiled group " << gi << " mixes storage dtypes ("
          << pipe.funcs[sp.func].name << ")";
      });
    }
  }

  // ---- Dependence schedule: the persistent-team executor trusts the
  // ---- stored task graph blindly, so a dropped or misdirected edge is a
  // ---- silent race. Cross-check against a full recomputation.
  std::vector<std::string> issues = out.take();
  if (!cp.sched.empty()) schedule_issues(cp, issues);
  return issues;
}

void validate_plan(const CompiledPipeline& cp) {
  const std::vector<std::string> issues = plan_issues(cp);
  if (issues.empty()) return;
  std::ostringstream oss;
  oss << "compiled plan failed validation with " << issues.size()
      << " issue(s):";
  for (const std::string& s : issues) oss << "\n  - " << s;
  throw Error(ErrorCode::InvalidPlan, oss.str());
}

CompileOptions reference_options(const CompileOptions& base) {
  CompileOptions o = base;
  o.variant = Variant::Naive;
  o.intra_group_reuse = false;
  o.inter_group_reuse = false;
  o.pooled_allocation = false;
  o.collapse = false;
  // The oracle must stay implementation-independent of the fast path it
  // cross-checks: interpret bytecode, never the register engine.
  o.register_engine = false;
  // Likewise execute in an independent order: per-group barrier schedule,
  // not the persistent-team dependence schedule.
  o.dependence_schedule = false;
  // And never through code the specializer emitted — the oracle is the
  // independent check on exactly that code.
  o.jit = JitMode::Off;
  // The oracle is the double-precision reference a mixed plan is judged
  // against; it never runs float storage itself.
  o.precision = PrecisionPolicy{};
  return o;
}

}  // namespace polymg::opt
