#include "polymg/opt/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "polymg/common/error.hpp"

namespace polymg::opt {

namespace {

using poly::Box;
using poly::index_t;
using poly::Interval;
using poly::kMaxDims;

/// Target task count per Loops node. Plan-time constant on purpose: the
/// schedule must not depend on the thread count of the machine that
/// compiled it (and bit-exactness never depends on the partition).
constexpr index_t kLoopsTasksTarget = 32;

constexpr Interval kEmptyInterval{0, -1};

bool overlaps(const Interval& a, const Interval& b) {
  return !poly::intersect(a, b).empty();
}

const poly::Access* find_access(const ir::FunctionDecl& f, int slot) {
  for (const auto& [s, a] : f.accesses) {
    if (s == slot) return &a;
  }
  return nullptr;
}

/// Per-(node, array, direction) access summary, factored per dimension:
/// per_dim[d][k] is the interval of array indices along d touched by any
/// task with coordinate k in dimension d. Valid because every region the
/// planner produces is separable — tile boxes, owned partitions and
/// footprints all map dimension d of the task grid to dimension d of the
/// array independently of the other coordinates.
struct NodeAccess {
  int array = -1;
  bool write = false;
  std::array<std::vector<Interval>, kMaxDims> per_dim;
};

/// Boxes one task of `node` reads/writes, at full-array granularity:
/// appends (array, is_write, box). `coord` indexes the node's task grid;
/// `regions` is caller-provided scratch.
void task_boxes(const CompiledPipeline& cp, const SchedNode& node,
                const std::array<index_t, kMaxDims>& coord,
                std::vector<Box>& regions,
                std::vector<std::tuple<int, bool, Box>>& out) {
  const GroupPlan& g = cp.groups[static_cast<std::size_t>(node.group)];
  const int ndim = cp.pipe.ndim;

  // Read set of one stage computing `region`: footprints of every source
  // slot that resolves to a full array, clipped to the producer's domain.
  auto stage_reads = [&](int p, const Box& region) {
    const StagePlan& sp = g.stages[static_cast<std::size_t>(p)];
    const ir::FunctionDecl& f = cp.pipe.funcs[sp.func];
    for (std::size_t s = 0; s < f.sources.size(); ++s) {
      const ir::SourceSlot& slot = f.sources[s];
      if (slot.external) continue;  // inputs are never written by a node
      if (g.exec == GroupExec::OverlapTiled) {
        // In-group producers with a scratchpad are read tile-locally.
        bool scratch = false;
        for (const StagePlan& q : g.stages) {
          if (q.func == slot.index && q.scratch_buffer >= 0) {
            scratch = true;
            break;
          }
        }
        if (scratch) continue;
      }
      const int array = cp.array_of_func[slot.index];
      if (array < 0) continue;
      const Box& src_dom = cp.pipe.funcs[slot.index].domain;
      Box read(ndim);
      const poly::Access* a = find_access(f, static_cast<int>(s));
      if (a != nullptr) {
        read = poly::footprint(*a, region);
        for (int d = 0; d < ndim; ++d) {
          read.dim(d) = Interval{std::max(read.dim(d).lo, src_dom.dim(d).lo),
                                 std::min(read.dim(d).hi, src_dom.dim(d).hi)};
        }
      }
      // A CopySource boundary rule reads the source at identity over the
      // ghost portion of the region, whether or not the defs read it.
      if (f.boundary == ir::BoundaryKind::CopySource &&
          f.boundary_source == static_cast<int>(s)) {
        for (int d = 0; d < ndim; ++d) {
          read.dim(d) = hull(read.dim(d), region.dim(d));
        }
      }
      if (a == nullptr &&
          !(f.boundary == ir::BoundaryKind::CopySource &&
            f.boundary_source == static_cast<int>(s))) {
        continue;  // slot unused (defensive; finalize() rejects these)
      }
      out.emplace_back(array, false, read);
    }
  };

  if (node.collective) {
    // TimeTiled: the whole chain runs between barriers — summarize at
    // whole-domain granularity (conservative is sound; edges only add
    // synchronization).
    const StagePlan& last = g.stages.back();
    const ir::FunctionDecl& step_fn = cp.pipe.funcs[g.stages.front().func];
    out.emplace_back(last.array, true, step_fn.domain);
    out.emplace_back(g.time_temp_array, true, step_fn.domain);
    for (std::size_t s = 0; s < step_fn.sources.size(); ++s) {
      const ir::SourceSlot& slot = step_fn.sources[s];
      if (slot.external) continue;
      const int array = cp.array_of_func[slot.index];
      if (array >= 0) {
        out.emplace_back(array, false, cp.pipe.funcs[slot.index].domain);
      }
    }
    return;
  }

  if (node.stage >= 0) {
    // Loops node: the task is a dimension-0 slab of one stage's domain.
    const StagePlan& sp = g.stages[static_cast<std::size_t>(node.stage)];
    const ir::FunctionDecl& f = cp.pipe.funcs[sp.func];
    Box part = f.domain;
    if (!node.serial) {
      const Interval d0 = f.domain.dim(0);
      part.dim(0) = Interval{d0.lo + coord[0] * node.slab,
                             std::min(d0.lo + (coord[0] + 1) * node.slab - 1,
                                      d0.hi)};
    }
    out.emplace_back(sp.array, true, part);
    stage_reads(node.stage, part);
    return;
  }

  // OverlapTiled node: the task is one anchor tile (or, serially, the
  // whole grid treated as a single tile — tile_regions and owned_region
  // accept any anchor box, so the union over tiles is exact).
  const ir::FunctionDecl& anchor_f = cp.pipe.funcs[g.stages[g.anchor].func];
  const Box tile = node.serial
                       ? g.tiles.domain
                       : [&] {
                           index_t flat = 0;
                           for (int d = 0; d < ndim; ++d) {
                             flat = flat * g.tiles.ntiles[d] + coord[d];
                           }
                           return g.tiles.tile_box(flat);
                         }();
  const std::size_t nstages = g.stages.size();
  const bool cached =
      !node.serial &&
      g.tile_regions_cache.size() ==
          static_cast<std::size_t>(g.tiles.total) * nstages;
  const Box* regs;
  if (cached) {
    index_t flat = 0;
    for (int d = 0; d < ndim; ++d) flat = flat * g.tiles.ntiles[d] + coord[d];
    regs = g.tile_regions_cache.data() + static_cast<std::size_t>(flat) * nstages;
  } else {
    tile_regions(cp.pipe, g, tile, regions);
    regs = regions.data();
  }
  for (std::size_t p = 0; p < nstages; ++p) {
    const StagePlan& sp = g.stages[p];
    if (sp.array >= 0) {
      const ir::FunctionDecl& f = cp.pipe.funcs[sp.func];
      const Box write = sp.scratch_buffer >= 0
                            ? owned_region(f, sp.rel, tile, anchor_f.domain)
                            : regs[p];
      out.emplace_back(sp.array, true, write);
    }
    stage_reads(static_cast<int>(p), regs[p]);
  }
}

/// Collapse a node's accesses into per-dimension interval tables, one
/// entry per task coordinate. Built from `ndim` probe sweeps (coordinate
/// k along dimension d, zero elsewhere) — separability makes dimension d
/// of the probe's boxes exact for every task sharing that coordinate.
std::vector<NodeAccess> node_tables(const CompiledPipeline& cp,
                                    const SchedNode& node) {
  const int ndim = cp.pipe.ndim;
  std::vector<NodeAccess> tables;
  std::vector<Box> regions_scratch;
  std::vector<std::tuple<int, bool, Box>> boxes;

  auto slot_of = [&](int array, bool write) -> NodeAccess& {
    for (NodeAccess& t : tables) {
      if (t.array == array && t.write == write) return t;
    }
    NodeAccess& t = tables.emplace_back();
    t.array = array;
    t.write = write;
    for (int d = 0; d < kMaxDims; ++d) {
      t.per_dim[d].assign(static_cast<std::size_t>(node.ntasks_dim[d]),
                          kEmptyInterval);
    }
    return t;
  };

  for (int d = 0; d < std::max(ndim, 1); ++d) {
    for (index_t k = 0; k < node.ntasks_dim[d]; ++k) {
      std::array<index_t, kMaxDims> coord{};
      coord[d] = k;
      boxes.clear();
      task_boxes(cp, node, coord, regions_scratch, boxes);
      // Note: a box empty in some OTHER dimension still contributes its
      // dim-d interval — the per-dimension product representation encodes
      // emptiness in the dimension that owns it (hull ignores empties).
      for (const auto& [array, write, box] : boxes) {
        NodeAccess& t = slot_of(array, write);
        auto& cell = t.per_dim[d][static_cast<std::size_t>(k)];
        cell = hull(cell, box.dim(d));
      }
    }
  }
  return tables;
}

index_t flat_task(const SchedNode& node,
                  const std::array<index_t, kMaxDims>& coord, int ndim) {
  index_t flat = 0;
  for (int d = 0; d < std::max(ndim, 1); ++d) {
    flat = flat * node.ntasks_dim[d] + coord[d];
  }
  return flat;
}

/// Edges between one adjacent node pair, appended as (pred, succ) flat
/// task ids. For every pair of accesses to the same array where at least
/// one side writes, each task of `cur` depends on the rectangular range
/// of `prev` tasks whose interval overlaps its own, per dimension.
void pair_edges(const CompiledPipeline& cp, const SchedNode& prev,
                const SchedNode& cur,
                std::vector<std::pair<index_t, index_t>>& edges) {
  const int ndim = std::max(cp.pipe.ndim, 1);
  const std::vector<NodeAccess> pt = node_tables(cp, prev);
  const std::vector<NodeAccess> ct = node_tables(cp, cur);

  struct Range {
    index_t lo = 0, hi = -1;
  };
  // rng[pair][d][c]: prev-coordinate range overlapping cur coordinate c.
  std::vector<std::array<std::vector<Range>, kMaxDims>> rng;
  std::vector<std::pair<const NodeAccess*, const NodeAccess*>> pairs;
  for (const NodeAccess& a : ct) {
    for (const NodeAccess& b : pt) {
      if (a.array != b.array || (!a.write && !b.write)) continue;
      pairs.emplace_back(&b, &a);
    }
  }
  rng.resize(pairs.size());
  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    const auto& [pa, ca] = pairs[pi];
    for (int d = 0; d < ndim; ++d) {
      auto& col = rng[pi][d];
      col.resize(static_cast<std::size_t>(cur.ntasks_dim[d]));
      for (index_t c = 0; c < cur.ntasks_dim[d]; ++c) {
        const Interval q = ca->per_dim[d][static_cast<std::size_t>(c)];
        Range r;
        bool open = false;
        for (index_t k = 0; k < prev.ntasks_dim[d]; ++k) {
          if (overlaps(q, pa->per_dim[d][static_cast<std::size_t>(k)])) {
            if (!open) {
              r.lo = k;
              open = true;
            }
            r.hi = k;
          }
        }
        col[static_cast<std::size_t>(c)] = r;
      }
    }
  }
  if (pairs.empty()) return;

  std::vector<index_t> preds;
  std::array<index_t, kMaxDims> c{};
  for (index_t t = 0; t < cur.ntasks; ++t) {
    preds.clear();
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
      std::array<Range, kMaxDims> r{};
      bool any = true;
      for (int d = 0; d < ndim; ++d) {
        r[d] = rng[pi][d][static_cast<std::size_t>(c[d])];
        if (r[d].lo > r[d].hi) {
          any = false;
          break;
        }
      }
      if (!any) continue;
      std::array<index_t, kMaxDims> k{};
      for (int d = 0; d < ndim; ++d) k[d] = r[d].lo;
      while (true) {
        preds.push_back(prev.task_base + flat_task(prev, k, ndim));
        int d = ndim - 1;
        while (d >= 0 && ++k[d] > r[d].hi) {
          k[d] = r[d].lo;
          --d;
        }
        if (d < 0) break;
      }
    }
    if (!preds.empty()) {
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      for (index_t p : preds) edges.emplace_back(p, cur.task_base + t);
    }
    // advance cur coordinate (last dimension fastest, matching tile_box)
    int d = ndim - 1;
    while (d >= 0 && ++c[d] >= cur.ntasks_dim[d]) {
      c[d] = 0;
      --d;
    }
  }
}

std::vector<SchedNode> make_nodes(const CompiledPipeline& cp) {
  std::vector<SchedNode> nodes;
  const index_t grain = std::max<index_t>(0, cp.opts.serial_grain);
  for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
    const GroupPlan& g = cp.groups[gi];
    switch (g.exec) {
      case GroupExec::TimeTiled: {
        SchedNode n;
        n.group = static_cast<int>(gi);
        n.collective = true;
        nodes.push_back(n);
        break;
      }
      case GroupExec::OverlapTiled: {
        SchedNode n;
        n.group = static_cast<int>(gi);
        const index_t work =
            g.tiles.domain.count() * static_cast<index_t>(g.stages.size());
        if (work < grain || g.tiles.total <= 1) {
          n.serial = true;
        } else {
          for (int d = 0; d < cp.pipe.ndim; ++d) {
            n.ntasks_dim[d] = g.tiles.ntiles[d];
          }
          n.ntasks = g.tiles.total;
        }
        nodes.push_back(n);
        break;
      }
      case GroupExec::Loops: {
        for (std::size_t p = 0; p < g.stages.size(); ++p) {
          const ir::FunctionDecl& f = cp.pipe.funcs[g.stages[p].func];
          SchedNode n;
          n.group = static_cast<int>(gi);
          n.stage = static_cast<int>(p);
          const Interval d0 = f.domain.dim(0);
          if (f.domain.count() < grain || d0.size() <= 1) {
            n.serial = true;
          } else {
            n.slab = std::max<index_t>(
                1, poly::ceildiv(d0.size(), kLoopsTasksTarget));
            n.ntasks_dim[0] = poly::ceildiv(d0.size(), n.slab);
            n.ntasks = n.ntasks_dim[0];
          }
          nodes.push_back(n);
        }
        break;
      }
    }
  }
  index_t base = 0;
  for (SchedNode& n : nodes) {
    n.task_base = base;
    base += n.ntasks;
  }
  return nodes;
}

SchedGraph graph_from_nodes(const CompiledPipeline& cp,
                            std::vector<SchedNode> nodes) {
  SchedGraph sg;
  sg.nodes = std::move(nodes);
  sg.total_tasks = 0;
  for (const SchedNode& n : sg.nodes) sg.total_tasks += n.ntasks;

  std::vector<std::pair<index_t, index_t>> edges;
  for (std::size_t i = 1; i < sg.nodes.size(); ++i) {
    pair_edges(cp, sg.nodes[i - 1], sg.nodes[i], edges);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  sg.succ_off.assign(static_cast<std::size_t>(sg.total_tasks) + 1, 0);
  sg.pred_count.assign(static_cast<std::size_t>(sg.total_tasks), 0);
  for (const auto& [p, s] : edges) {
    ++sg.succ_off[static_cast<std::size_t>(p) + 1];
    ++sg.pred_count[static_cast<std::size_t>(s)];
  }
  for (std::size_t t = 1; t < sg.succ_off.size(); ++t) {
    sg.succ_off[t] += sg.succ_off[t - 1];
  }
  sg.succ.resize(edges.size());
  std::vector<index_t> fill(sg.succ_off.begin(), sg.succ_off.end() - 1);
  for (const auto& [p, s] : edges) {
    sg.succ[static_cast<std::size_t>(fill[static_cast<std::size_t>(p)]++)] = s;
  }
  return sg;
}

}  // namespace

SchedGraph build_schedule(const CompiledPipeline& cp) {
  return graph_from_nodes(cp, make_nodes(cp));
}

void schedule_issues(const CompiledPipeline& cp,
                     std::vector<std::string>& issues) {
  const SchedGraph& sg = cp.sched;
  auto complain = [&](const std::string& msg) {
    issues.push_back("sched: " + msg);
  };

  const SchedGraph ref = build_schedule(cp);
  if (sg.nodes.size() != ref.nodes.size()) {
    std::ostringstream os;
    os << "node count " << sg.nodes.size() << " != expected "
       << ref.nodes.size();
    complain(os.str());
    return;  // skeleton mismatch: task ids are not comparable
  }
  for (std::size_t i = 0; i < sg.nodes.size(); ++i) {
    const SchedNode& a = sg.nodes[i];
    const SchedNode& b = ref.nodes[i];
    if (a.group != b.group || a.stage != b.stage ||
        a.collective != b.collective || a.serial != b.serial ||
        a.ntasks != b.ntasks || a.ntasks_dim != b.ntasks_dim ||
        a.slab != b.slab || a.task_base != b.task_base) {
      std::ostringstream os;
      os << "node " << i << " disagrees with recomputation (group "
         << a.group << " vs " << b.group << ", ntasks " << a.ntasks << " vs "
         << b.ntasks << ")";
      complain(os.str());
      return;
    }
  }
  if (sg.total_tasks != ref.total_tasks) {
    complain("total_tasks disagrees with node list");
    return;
  }
  if (sg.succ_off.size() != static_cast<std::size_t>(sg.total_tasks) + 1 ||
      sg.pred_count.size() != static_cast<std::size_t>(sg.total_tasks)) {
    complain("CSR arrays not sized total_tasks");
    return;
  }
  if (sg.succ_off.front() != 0 ||
      sg.succ_off.back() != static_cast<index_t>(sg.succ.size())) {
    complain("succ_off endpoints inconsistent with succ");
    return;
  }
  for (std::size_t t = 1; t < sg.succ_off.size(); ++t) {
    if (sg.succ_off[t] < sg.succ_off[t - 1]) {
      complain("succ_off not monotone");
      return;
    }
  }

  // Edge-set comparison against the recomputation: a dropped edge is a
  // missed synchronization (rejected), an invented edge is at best a
  // slowdown and at worst a deadlock with the prefix gate (rejected too).
  auto edge_list = [](const SchedGraph& g) {
    std::vector<std::pair<index_t, index_t>> e;
    e.reserve(g.succ.size());
    for (index_t t = 0; t < g.total_tasks; ++t) {
      for (index_t k = g.succ_off[static_cast<std::size_t>(t)];
           k < g.succ_off[static_cast<std::size_t>(t) + 1]; ++k) {
        e.emplace_back(t, g.succ[static_cast<std::size_t>(k)]);
      }
    }
    std::sort(e.begin(), e.end());
    return e;
  };
  const auto have = edge_list(sg);
  const auto want = edge_list(ref);
  if (have != want) {
    std::ostringstream os;
    os << "edge set disagrees with recomputation (" << have.size()
       << " stored vs " << want.size() << " derived)";
    for (const auto& e : want) {
      if (!std::binary_search(have.begin(), have.end(), e)) {
        os << "; missing " << e.first << "->" << e.second;
        break;
      }
    }
    for (const auto& e : have) {
      if (!std::binary_search(want.begin(), want.end(), e)) {
        os << "; extra " << e.first << "->" << e.second;
        break;
      }
    }
    complain(os.str());
  }

  // Structural invariants every consumer relies on, checked on the
  // stored graph itself (the recomputation satisfies them by build).
  std::vector<index_t> node_of(static_cast<std::size_t>(sg.total_tasks));
  for (std::size_t i = 0; i < sg.nodes.size(); ++i) {
    const SchedNode& n = sg.nodes[i];
    for (index_t t = 0; t < n.ntasks; ++t) {
      node_of[static_cast<std::size_t>(n.task_base + t)] =
          static_cast<index_t>(i);
    }
  }
  std::vector<std::int32_t> preds(static_cast<std::size_t>(sg.total_tasks), 0);
  for (index_t t = 0; t < sg.total_tasks; ++t) {
    for (index_t k = sg.succ_off[static_cast<std::size_t>(t)];
         k < sg.succ_off[static_cast<std::size_t>(t) + 1]; ++k) {
      const index_t s = sg.succ[static_cast<std::size_t>(k)];
      if (s < 0 || s >= sg.total_tasks) {
        complain("successor task id out of range");
        return;
      }
      if (node_of[static_cast<std::size_t>(s)] !=
          node_of[static_cast<std::size_t>(t)] + 1) {
        complain("edge does not target the adjacent node");
        return;
      }
      ++preds[static_cast<std::size_t>(s)];
    }
  }
  if (preds != sg.pred_count) {
    complain("pred_count disagrees with the successor lists");
  }
}

}  // namespace polymg::opt
