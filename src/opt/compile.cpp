#include "polymg/opt/compile.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "polymg/common/error.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/opt/grouping.hpp"
#include "polymg/opt/schedule.hpp"
#include "polymg/opt/storage.hpp"

namespace polymg::opt {

namespace {

/// Topologically order the groups of a grouping (Kahn's algorithm with a
/// min-func-index tie break so plans are deterministic).
std::vector<int> topo_order_groups(const Pipeline& pipe, const Grouping& g) {
  const int ng = static_cast<int>(g.groups.size());
  std::vector<std::vector<int>> succ(ng);
  std::vector<int> indeg(ng, 0);
  const auto consumers = pipe.consumers();
  for (int f = 0; f < pipe.num_stages(); ++f) {
    for (const auto& [cf, slot] : consumers[f]) {
      (void)slot;
      const int a = g.group_of[f];
      const int b = g.group_of[cf];
      if (a == b) continue;
      succ[a].push_back(b);
    }
  }
  for (int a = 0; a < ng; ++a) {
    std::sort(succ[a].begin(), succ[a].end());
    succ[a].erase(std::unique(succ[a].begin(), succ[a].end()), succ[a].end());
    for (int b : succ[a]) ++indeg[b];
  }
  // Ready set keyed by the group's minimum func index.
  std::vector<int> min_func(ng);
  for (int a = 0; a < ng; ++a) {
    min_func[a] = *std::min_element(g.groups[a].begin(), g.groups[a].end());
  }
  std::vector<int> ready;
  for (int a = 0; a < ng; ++a) {
    if (indeg[a] == 0) ready.push_back(a);
  }
  std::vector<int> order;
  order.reserve(ng);
  while (!ready.empty()) {
    const auto it = std::min_element(
        ready.begin(), ready.end(),
        [&](int a, int b) { return min_func[a] < min_func[b]; });
    const int a = *it;
    ready.erase(it);
    order.push_back(a);
    for (int b : succ[a]) {
      if (--indeg[b] == 0) ready.push_back(b);
    }
  }
  PMG_CHECK(static_cast<int>(order.size()) == ng,
            "cyclic group graph (grouping bug)");
  return order;
}

}  // namespace

CompiledPipeline compile(Pipeline pipe, const CompileOptions& opts) {
  // Process-wide compile count: the service layer's plan-cache tests
  // assert a cache hit performs zero compilations by diffing this.
  static obs::Counter& compiles =
      obs::Metrics::instance().counter("opt.compiles");
  compiles.add(1);
  pipe.validate();
  CompiledPipeline cp;
  cp.opts = opts;

  // Lower every function definition up front. Plans that opt out of the
  // register engine (the guarded-execution reference) drop the register
  // programs so their non-linear stages interpret bytecode point-wise.
  cp.lowered.reserve(pipe.funcs.size());
  for (const ir::FunctionDecl& f : pipe.funcs) {
    cp.lowered.push_back(ir::lower(f));
    if (!opts.register_engine) {
      for (ir::LoweredDef& ld : cp.lowered.back().defs) {
        ld.regprog = ir::RegProgram{};
      }
    }
  }

  const Grouping grouping = auto_group(pipe, opts);
  const std::vector<int> gorder = topo_order_groups(pipe, grouping);
  const auto consumers = pipe.consumers();
  const poly::TileSizes tile = opts.resolved_tile(pipe.ndim);

  // func -> (execution-ordered group index, position within group).
  std::vector<int> group_of_func(pipe.num_stages(), -1);
  cp.groups.resize(gorder.size());

  for (std::size_t oi = 0; oi < gorder.size(); ++oi) {
    const int gid = gorder[oi];
    const std::vector<int>& members = grouping.groups[gid];
    GroupPlan& gp = cp.groups[oi];

    const GroupAnalysis ga = analyze_group(pipe, members, consumers, {}, tile);
    PMG_CHECK(ga.valid, "final group failed analysis: " << ga.reject_reason);

    gp.stages.resize(ga.order.size());
    for (std::size_t p = 0; p < ga.order.size(); ++p) {
      StagePlan& sp = gp.stages[p];
      sp.func = ga.order[p];
      sp.liveout = ga.liveout[p];
      sp.rel = ga.rel[p];
      sp.in_group_consumers = ga.in_group_consumers[p];
      sp.scratch_extent = ga.extent[p];
      group_of_func[sp.func] = static_cast<int>(oi);
    }
    gp.anchor = static_cast<int>(ga.order.size()) - 1;

    if (grouping.time_tiled[gid]) {
      gp.exec = GroupExec::TimeTiled;
      gp.dtile_H = std::max<poly::index_t>(1, opts.dtile_time_block);
      gp.dtile_W = opts.dtile_width > 0
                       ? opts.dtile_width
                       : std::max<poly::index_t>(2 * gp.dtile_H, 32);
      PMG_CHECK(gp.dtile_W >= 2 * gp.dtile_H,
                "split tiling requires width >= 2 x time-block height");
    } else if (members.size() >= 2) {
      gp.exec = GroupExec::OverlapTiled;
    } else {
      gp.exec = GroupExec::Loops;
    }

    if (gp.exec == GroupExec::OverlapTiled) {
      const ir::FunctionDecl& anchor = pipe.funcs[gp.stages[gp.anchor].func];
      gp.tiles = poly::make_tile_grid(anchor.domain, tile);
      gp.collapse_depth = opts.collapse ? pipe.ndim : 1;
    }
  }

  // ---- Scratchpad storage within each overlap-tiled group (§3.2.1). ----
  for (GroupPlan& gp : cp.groups) {
    if (gp.exec != GroupExec::OverlapTiled) continue;
    StorageClasses classes(opts.storage_class_slack);
    std::vector<StorageItem> items;
    std::vector<int> scratch_pos;  // positions of scratch stages
    std::vector<int> times;
    std::vector<std::vector<int>> cons_times;
    for (std::size_t p = 0; p < gp.stages.size(); ++p) {
      StagePlan& sp = gp.stages[p];
      // A scratchpad is needed whenever in-group consumers read this
      // stage (their tile halo exceeds the owned partition slice).
      if (sp.in_group_consumers.empty()) continue;
      scratch_pos.push_back(static_cast<int>(p));
      times.push_back(static_cast<int>(p));
      std::vector<int> ct;
      for (const auto& [cpos, slot] : sp.in_group_consumers) {
        (void)slot;
        ct.push_back(cpos);
      }
      cons_times.push_back(std::move(ct));
    }
    const std::vector<int> last = last_use_map(times, cons_times);
    for (std::size_t i = 0; i < scratch_pos.size(); ++i) {
      const StagePlan& sp = gp.stages[scratch_pos[i]];
      StorageItem it;
      it.klass = classes.classify(sp.scratch_extent, pipe.ndim);
      it.time = times[i];
      it.last_use = last[i];
      items.push_back(it);
    }
    cp.scratch_buffers_without_reuse += static_cast<int>(items.size());
    if (opts.intra_group_reuse) {
      const RemapResult rr = remap_storage(items, /*defer=*/false);
      // Size each logical scratchpad as the max of its users' classes.
      gp.scratch_sizes.assign(rr.num_buffers, 0);
      for (std::size_t i = 0; i < items.size(); ++i) {
        gp.stages[scratch_pos[i]].scratch_buffer = rr.storage[i];
        gp.scratch_sizes[rr.storage[i]] =
            std::max(gp.scratch_sizes[rr.storage[i]],
                     classes.class_doubles(items[i].klass));
      }
    } else {
      gp.scratch_sizes.clear();
      for (std::size_t i = 0; i < items.size(); ++i) {
        gp.stages[scratch_pos[i]].scratch_buffer = static_cast<int>(i);
        gp.scratch_sizes.push_back(classes.class_doubles(items[i].klass));
      }
    }
    cp.scratch_buffers_with_reuse += static_cast<int>(gp.scratch_sizes.size());
    gp.scratch_doubles_total =
        std::accumulate(gp.scratch_sizes.begin(), gp.scratch_sizes.end(),
                        poly::index_t{0});
  }

  // ---- Full arrays: which functions need one? ----
  // Live-outs of every group; every stage of a Loops group; the final step
  // of a TimeTiled chain (its intermediates live in the ping-pong pair).
  struct ArrayNeed {
    int func;
    int group;  // execution-ordered group index (its timestamp)
  };
  std::vector<ArrayNeed> needs;
  for (std::size_t oi = 0; oi < cp.groups.size(); ++oi) {
    for (StagePlan& sp : cp.groups[oi].stages) {
      const bool needs_array =
          cp.groups[oi].exec == GroupExec::Loops ||
          (cp.groups[oi].exec == GroupExec::OverlapTiled && sp.liveout) ||
          (cp.groups[oi].exec == GroupExec::TimeTiled && sp.liveout);
      if (needs_array) {
        needs.push_back({sp.func, static_cast<int>(oi)});
      }
    }
  }

  // Storage classes + Algorithms 2 and 3 over group timestamps (§3.2.2).
  StorageClasses aclasses(opts.storage_class_slack);
  std::vector<StorageItem> aitems;
  std::vector<int> atimes;
  std::vector<std::vector<int>> acons;
  for (const ArrayNeed& nd : needs) {
    const ir::FunctionDecl& f = pipe.funcs[nd.func];
    std::array<poly::index_t, 3> ext{};
    for (int d = 0; d < pipe.ndim; ++d) ext[d] = f.domain.dim(d).size();
    StorageItem it;
    it.klass = aclasses.classify(ext, pipe.ndim);
    it.time = nd.group;
    it.excluded = pipe.is_output(nd.func);
    aitems.push_back(it);
    atimes.push_back(nd.group);
    std::vector<int> ct;
    for (const auto& [cf, slot] : consumers[nd.func]) {
      (void)slot;
      ct.push_back(group_of_func[cf]);
    }
    acons.push_back(std::move(ct));
  }
  const std::vector<int> alast = last_use_map(atimes, acons);
  for (std::size_t i = 0; i < aitems.size(); ++i) {
    aitems[i].last_use = alast[i];
  }

  cp.array_of_func.assign(pipe.num_stages(), -1);
  if (opts.inter_group_reuse) {
    const RemapResult rr = remap_storage(aitems, /*defer=*/true);
    cp.arrays.resize(rr.num_buffers);
    for (std::size_t i = 0; i < needs.size(); ++i) {
      const int aid = rr.storage[i];
      cp.array_of_func[needs[i].func] = aid;
      ArrayInfo& ai = cp.arrays[aid];
      ai.doubles = std::max(ai.doubles, aclasses.class_doubles(aitems[i].klass));
      ai.io = ai.io || aitems[i].excluded;
      if (ai.name.empty()) {
        ai.name = pipe.funcs[needs[i].func].name;
      } else {
        ai.name += "/" + pipe.funcs[needs[i].func].name;
      }
    }
  } else {
    for (std::size_t i = 0; i < needs.size(); ++i) {
      const ir::FunctionDecl& f = pipe.funcs[needs[i].func];
      cp.array_of_func[needs[i].func] = static_cast<int>(cp.arrays.size());
      cp.arrays.push_back(
          ArrayInfo{f.name, f.domain.count(), aitems[i].excluded});
    }
  }
  for (const ArrayNeed& nd : needs) {
    cp.array_doubles_without_reuse += pipe.funcs[nd.func].domain.count();
  }
  for (const ArrayInfo& ai : cp.arrays) {
    cp.array_doubles_with_reuse += ai.doubles;
  }

  // Ping-pong partners for time-tiled chains (pool-managed temporaries).
  for (GroupPlan& gp : cp.groups) {
    if (gp.exec != GroupExec::TimeTiled) continue;
    const ir::FunctionDecl& out = pipe.funcs[gp.stages.back().func];
    gp.time_temp_array = static_cast<int>(cp.arrays.size());
    cp.arrays.push_back(
        ArrayInfo{out.name + "_pingpong", out.domain.count(), false});
  }

  // Record array ids on every stage (live-outs and Loops stages have one;
  // time-tiled intermediates stay -1 and live in the ping-pong pair).
  for (GroupPlan& gp : cp.groups) {
    for (StagePlan& sp : gp.stages) {
      sp.array = cp.array_of_func[sp.func];
    }
  }

  // ---- Pool release points: free an array after its last-reading group
  // ---- (pool_deallocate emitted as soon as all uses finish, §3.2.3).
  cp.release_after_group.assign(cp.groups.size(), {});
  if (opts.pooled_allocation) {
    std::map<int, int> last_group_of_array;
    for (std::size_t i = 0; i < needs.size(); ++i) {
      const int aid = cp.array_of_func[needs[i].func];
      if (cp.arrays[aid].io) continue;
      auto [it, ins] = last_group_of_array.try_emplace(aid, alast[i]);
      if (!ins) it->second = std::max(it->second, alast[i]);
    }
    for (std::size_t oi = 0; oi < cp.groups.size(); ++oi) {
      const GroupPlan& gp = cp.groups[oi];
      if (gp.exec == GroupExec::TimeTiled) {
        cp.release_after_group[oi].push_back(gp.time_temp_array);
      }
    }
    for (const auto& [aid, lg] : last_group_of_array) {
      cp.release_after_group[lg].push_back(aid);
    }
  }

  // ---- Plan-time kernel instance cache: precompute every tile's
  // ---- per-stage regions so the executor's steady state re-derives
  // ---- nothing (and allocates nothing) per tile.
  for (GroupPlan& gp : cp.groups) {
    if (gp.exec != GroupExec::OverlapTiled) continue;
    const std::size_t nstages = gp.stages.size();
    gp.tile_regions_cache.resize(
        static_cast<std::size_t>(gp.tiles.total) * nstages);
    std::vector<Box> regions(nstages);
    for (poly::index_t t = 0; t < gp.tiles.total; ++t) {
      tile_regions(pipe, gp, gp.tiles.tile_box(t), regions);
      std::copy(regions.begin(), regions.end(),
                gp.tile_regions_cache.begin() +
                    static_cast<std::size_t>(t) * nstages);
    }
  }

  // ---- Storage precision assignment. ----
  // Default (and Precision::Double): everything F64 — bit-identical to
  // the historical plans. Mixed/Float assign F32 storage to fine-grid
  // functions; pipeline outputs always store F64 (callers, checkpoints
  // and the guarded bit-compare depend on double outputs), and every
  // F32 decision is then repaired toward F64 until two invariants hold:
  //  1. a TimeTiled smoother chain is dtype-uniform (its ping-pong pair
  //     is shared by every step), and
  //  2. every function reads sources of ONE dtype (the templated fast
  //     kernels are specialized per (out, src) dtype pair; mixed-source
  //     functions would fall to the point-wise interpreter).
  // Demotion is monotone F32 -> F64, so the repair loop terminates.
  cp.func_dtype.assign(pipe.funcs.size(), grid::DType::F64);
  cp.external_dtype.assign(pipe.externals.size(), grid::DType::F64);
  if (opts.precision.mixed()) {
    int finest = -1;
    for (const ir::FunctionDecl& f : pipe.funcs) {
      finest = std::max(finest, f.level);
    }
    const int cross = std::max(1, opts.precision.crossover);
    const auto fine = [&](int i) {
      if (opts.precision.mode == Precision::Float) return true;
      const int lvl = pipe.funcs[static_cast<std::size_t>(i)].level;
      return lvl >= 0 && finest >= 0 && lvl > finest - cross;
    };
    for (int i = 0; i < pipe.num_stages(); ++i) {
      if (fine(i) && !pipe.is_output(i)) {
        cp.func_dtype[static_cast<std::size_t>(i)] = grid::DType::F32;
      }
    }
    // An external stores F32 when every consumer is a fine-grid stage
    // (consumers that themselves store F64 — the pipeline output — read
    // the same float fine grid, so uniformity still holds).
    for (std::size_t e = 0; e < pipe.externals.size(); ++e) {
      bool any = false, all = true;
      for (int i = 0; i < pipe.num_stages(); ++i) {
        for (const ir::SourceSlot& s : pipe.funcs[static_cast<std::size_t>(i)]
                                           .sources) {
          if (s.external && s.index == static_cast<int>(e)) {
            any = true;
            all = all && fine(i);
          }
        }
      }
      if (any && all) cp.external_dtype[e] = grid::DType::F32;
    }
    const auto slot_dtype = [&](const ir::SourceSlot& s) {
      return s.external
                 ? cp.external_dtype[static_cast<std::size_t>(s.index)]
                 : cp.func_dtype[static_cast<std::size_t>(s.index)];
    };
    bool changed = true;
    while (changed) {
      changed = false;
      // Invariant 1: TimeTiled chains share one ping-pong pair.
      for (const GroupPlan& gp : cp.groups) {
        if (gp.exec != GroupExec::TimeTiled) continue;
        bool any64 = false;
        for (const StagePlan& sp : gp.stages) {
          any64 = any64 || cp.func_dtype[static_cast<std::size_t>(sp.func)] ==
                               grid::DType::F64;
        }
        if (!any64) continue;
        for (const StagePlan& sp : gp.stages) {
          grid::DType& dt = cp.func_dtype[static_cast<std::size_t>(sp.func)];
          if (dt != grid::DType::F64) {
            dt = grid::DType::F64;
            changed = true;
          }
        }
      }
      // Invariant 2: uniform source dtype per function — demote the F32
      // sources of any mixed-source function.
      for (const ir::FunctionDecl& f : pipe.funcs) {
        bool has32 = false, has64 = false;
        for (const ir::SourceSlot& s : f.sources) {
          (slot_dtype(s) == grid::DType::F32 ? has32 : has64) = true;
        }
        if (!(has32 && has64)) continue;
        for (const ir::SourceSlot& s : f.sources) {
          grid::DType& dt =
              s.external
                  ? cp.external_dtype[static_cast<std::size_t>(s.index)]
                  : cp.func_dtype[static_cast<std::size_t>(s.index)];
          if (dt != grid::DType::F64) {
            dt = grid::DType::F64;
            changed = true;
          }
        }
      }
    }
  }

  cp.pipe = std::move(pipe);

  // ---- Dependence schedule: the inter-group tile dependence graph the
  // ---- persistent-team executor releases tasks from (built last — it
  // ---- reads the finished groups, arrays and region caches).
  if (opts.dependence_schedule) cp.sched = build_schedule(cp);
  return cp;
}

}  // namespace polymg::opt
