#include "polymg/opt/autotune.hpp"

#include <algorithm>

#include "polymg/common/error.hpp"

namespace polymg::opt {

TuneSpace TuneSpace::paper_default(int ndim) {
  TuneSpace s;
  if (ndim == 2) {
    s.tiles[0] = {8, 16, 32, 64};
    s.tiles[1] = {64, 128, 256, 512};
  } else {
    s.tiles[0] = {8, 16, 32};
    s.tiles[1] = {8, 16, 32};
    s.tiles[2] = {64, 128, 256};
  }
  s.group_limits = {2, 4, 6, 8, 12};
  return s;
}

std::size_t TuneSpace::size(int ndim) const {
  std::size_t n = group_limits.size();
  for (int d = 0; d < ndim; ++d) {
    if (!tiles[d].empty()) n *= tiles[d].size();
  }
  return n;
}

TuneResult autotune(
    const TuneSpace& space, int ndim, const CompileOptions& base,
    const std::function<double(const CompileOptions&)>& measure) {
  return autotune(space, ndim, base, measure, TuneControls{});
}

TuneResult autotune(
    const TuneSpace& space, int ndim, const CompileOptions& base,
    const std::function<double(const CompileOptions&)>& measure,
    const TuneControls& ctl) {
  PMG_CHECK(!space.group_limits.empty(), "empty grouping-limit set");
  for (int d = 0; d < ndim; ++d) {
    PMG_CHECK(!space.tiles[d].empty(), "empty tile set for dim " << d);
  }
  PMG_CHECK(ctl.reps >= 1, "autotune needs at least one rep");

  TuneResult res;
  res.best.seconds = 1e300;
  // Odometer over the per-dimension tile sets and the grouping limits.
  std::array<std::size_t, 3> idx{0, 0, 0};
  for (int gl : space.group_limits) {
    for (;;) {
      TunePoint pt;
      pt.group_limit = gl;
      for (int d = 0; d < ndim; ++d) pt.tile[d] = space.tiles[d][idx[d]];

      CompileOptions o = base;
      o.tile = pt.tile;
      o.group_limit = gl;
      pt.seconds = measure(o);
      pt.reps_run = 1;
      const bool hopeless = ctl.prune_factor > 0.0 &&
                            res.best.seconds < 1e299 &&
                            pt.seconds > ctl.prune_factor * res.best.seconds;
      if (hopeless) {
        pt.pruned = true;
        ++res.pruned;
      } else {
        for (int rep = 1; rep < ctl.reps; ++rep) {
          pt.seconds = std::min(pt.seconds, measure(o));
          ++pt.reps_run;
        }
      }
      res.points.push_back(pt);
      if (pt.seconds < res.best.seconds) res.best = pt;

      // Advance the odometer (innermost dimension fastest).
      int d = ndim - 1;
      while (d >= 0 && ++idx[static_cast<std::size_t>(d)] ==
                           space.tiles[d].size()) {
        idx[static_cast<std::size_t>(d)] = 0;
        --d;
      }
      if (d < 0) break;
    }
  }
  return res;
}

}  // namespace polymg::opt
