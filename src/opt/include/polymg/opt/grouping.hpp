// Greedy auto-grouping for fusion (§3.1).
//
// PolyMage's heuristic, reused unchanged for multigrid (the paper notes no
// changes to fusion/tiling were needed): start from singleton groups and
// repeatedly merge a group into its unique consumer group when (a) the
// merged node count stays within the grouping limit and (b) the
// overlapped-tile redundant-computation ratio stays within the threshold.
// Merging only into a sole consumer keeps the group DAG acyclic by
// construction. For the dtile variant, maximal TStencil smoother chains
// are pinned as fixed groups first and excluded from merging; they execute
// via split/diamond time tiling instead of overlapped tiling.
#pragma once

#include <vector>

#include "polymg/opt/options.hpp"
#include "polymg/opt/plan.hpp"

namespace polymg::opt {

struct Grouping {
  /// Disjoint groups covering all functions; members ascending.
  std::vector<std::vector<int>> groups;
  std::vector<int> group_of;  ///< func -> group index
  /// Groups pinned for time tiling (dtile variant); parallel to groups.
  std::vector<bool> time_tiled;
};

/// Maximal chains of TStencilStep functions eligible for time tiling:
/// length >= 2, unit-scale self-access, single in-pipeline consumer per
/// intermediate step.
std::vector<std::vector<int>> find_smoother_chains(const Pipeline& pipe);

Grouping auto_group(const Pipeline& pipe, const CompileOptions& opts);

}  // namespace polymg::opt
