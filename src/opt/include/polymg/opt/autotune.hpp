// The PolyMage autotuner, adapted for multigrid (§3.2.4).
//
// Searches a small configuration space — tile sizes per dimension in
// powers of two plus five grouping-limit values — measuring each
// configuration through a caller-provided callback. The paper's spaces:
// 2-d tiles 8:64 (outer) × 64:512 (inner) × 5 limits = 80 configurations;
// 3-d tiles 8:32 × 8:32 (outer two) × 64:256 (inner) × 5 limits = 135.
#pragma once

#include <functional>
#include <vector>

#include "polymg/opt/options.hpp"

namespace polymg::opt {

struct TuneSpace {
  /// Candidate tile edges per dimension (outermost first); dimensions
  /// beyond the pipeline's rank are ignored.
  std::array<std::vector<index_t>, 3> tiles;
  /// Candidate grouping limits (the paper uses five values).
  std::vector<int> group_limits{2, 4, 6, 8, 12};

  /// The paper's search space for the given dimensionality.
  static TuneSpace paper_default(int ndim);

  /// Number of configurations the sweep will visit.
  std::size_t size(int ndim) const;
};

struct TunePoint {
  poly::TileSizes tile{};
  int group_limit = 0;
  double seconds = 0.0;
  int reps_run = 0;    ///< measurements actually taken
  bool pruned = false; ///< remaining reps skipped by the prune cutoff
};

struct TuneResult {
  std::vector<TunePoint> points;  ///< every visited configuration
  TunePoint best;
  int pruned = 0;  ///< configurations cut off after their first rep
};

/// Measurement protocol for one sweep.
struct TuneControls {
  /// Measurements per configuration; the minimum is kept (the paper's
  /// min-of-N protocol).
  int reps = 1;
  /// A configuration whose FIRST measurement exceeds this multiple of
  /// the incumbent best is dropped without its remaining reps — hopeless
  /// corners of the space (tiny tiles, huge groups) are where the sweep
  /// spends most of its time otherwise. <= 0 disables pruning.
  double prune_factor = 3.0;
};

/// Exhaustively sweep the space. `measure` receives fully-populated
/// options (base + tile + group limit) and returns the configuration's
/// execution time; smaller is better.
TuneResult autotune(const TuneSpace& space, int ndim,
                    const CompileOptions& base,
                    const std::function<double(const CompileOptions&)>& measure);

/// Sweep with repetitions and early pruning (see TuneControls).
TuneResult autotune(const TuneSpace& space, int ndim,
                    const CompileOptions& base,
                    const std::function<double(const CompileOptions&)>& measure,
                    const TuneControls& ctl);

}  // namespace polymg::opt
