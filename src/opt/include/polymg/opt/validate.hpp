// Compiled-plan validation for guarded execution.
//
// compile() is an aggressive optimizer (fusion, overlapped tiling,
// two-level storage reuse, pooling); a bug in any pass can silently
// corrupt a solve. validate_plan() re-derives the invariants a correct
// plan must satisfy — schedule causality, storage-map consistency,
// scratchpad sizing against every tile's real footprint, release points
// after last use — and reports every violation. The guarded executor
// runs it before trusting a plan; on failure it degrades to the
// reference plan compiled with reference_options().
#pragma once

#include <string>
#include <vector>

#include "polymg/opt/plan.hpp"

namespace polymg::opt {

/// All invariant violations found in `cp` (empty means the plan is
/// valid). Does not throw; suitable for tests that corrupt plans.
std::vector<std::string> plan_issues(const CompiledPipeline& cp);

/// Throws Error(ErrorCode::InvalidPlan) listing every issue when the
/// plan is inconsistent; returns normally otherwise.
void validate_plan(const CompiledPipeline& cp);

/// Options for the known-good fallback path: unfused per-stage loops,
/// one array per stage, no storage reuse, no pooling, no time tiling.
/// Tuning knobs (tile sizes, thresholds) are irrelevant to it; the
/// variant is forced to Naive.
CompileOptions reference_options(const CompileOptions& base);

}  // namespace polymg::opt
