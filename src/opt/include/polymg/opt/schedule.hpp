// Inter-group tile dependence graph (the plan side of the
// persistent-team scheduler).
//
// The barrier executor serializes groups with a fork/join per group; a
// W-cycle runs ~100 of them, so synchronization dominates exactly where
// the paper's many-core numbers were earned. The dependence schedule
// replaces the group barriers with task-level edges derived from the
// same region machinery the overlapped-tiling planner already trusts:
// a tile of group g+1 depends only on the tiles of group g whose owned
// writes intersect its read footprint, so boundary tiles of g+1 start
// while interior tiles of g are still in flight.
//
// Soundness rests on two rules the runtime enforces together:
//   1. explicit edges between *adjacent* nodes (RAW, WAR and WAW at
//      array granularity, intersected tile-wise), and
//   2. a prefix gate: a task of node i may only start once every node
//      <= i-2 has fully completed.
// Rule 2 covers all dependences that span two or more nodes, so the
// edge computation only ever looks one node back.
#pragma once

#include "polymg/opt/plan.hpp"

namespace polymg::opt {

/// Build the dependence schedule for a finished plan (groups, arrays and
/// tile_regions_cache must be final). Deterministic: depends only on the
/// plan, never on the machine's thread count.
SchedGraph build_schedule(const CompiledPipeline& cp);

/// Append every inconsistency between cp.sched and a fresh recomputation
/// to `issues` (node skeleton, CSR shape, missing/extra/misdirected
/// edges, predecessor counts). Called by plan_issues when a plan carries
/// a non-empty schedule.
void schedule_issues(const CompiledPipeline& cp,
                     std::vector<std::string>& issues);

}  // namespace polymg::opt
