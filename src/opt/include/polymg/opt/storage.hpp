// Storage optimization passes (§3.2 of the paper).
//
// Both levels of buffer reuse — scratchpads within a group (§3.2.1) and
// full arrays across groups (§3.2.2) — run the same two algorithms:
//
//   Algorithm 2 (getLastUseMap): scan the scheduled DAG for each
//   function's last use time.
//
//   Algorithm 3 (remapStorage): walk functions in schedule order keeping
//   a pool of free logical buffers per storage class; a function takes a
//   pooled buffer of its class if one is free, else a fresh one; buffers
//   whose owner's last use has passed return to the pool.
//
// This header exposes the generic machinery; the plan builder feeds it
// scratchpads (schedule = position in the group's total order) and full
// arrays (schedule = owning group's index).
#pragma once

#include <map>
#include <vector>

#include "polymg/poly/box.hpp"

namespace polymg::opt {

using poly::index_t;

/// One reusable entity handed to remapStorage.
struct StorageItem {
  int klass = 0;      ///< storage class id (only same-class reuse allowed)
  int time = 0;       ///< schedule timestamp of the defining function
  int last_use = 0;   ///< timestamp of the last consumer (>= time)
  bool excluded = false;  ///< never reuses nor is reused (program IO)
};

struct RemapResult {
  /// storage[i] is the logical buffer id assigned to item i. Buffer ids
  /// are dense in [0, num_buffers); excluded items get unique buffers.
  std::vector<int> storage;
  int num_buffers = 0;
};

/// Algorithm 3. Items must be supplied in a deterministic order; they are
/// processed sorted by (time, index). When `defer_same_time_release` is
/// set, a buffer whose last use is at time t only becomes reusable by
/// items with time > t — required for inter-group reuse, where several
/// live-outs of one group share a timestamp and a tile of the group may
/// still be reading a dying array while another tile writes the reuser.
///
/// Contract: without deferral, timestamps must be unique per item (the
/// intra-group caller uses schedule positions). The paper's pseudocode
/// releases a buffer as soon as its owner's last use equals the current
/// timestamp, so duplicate timestamps would hand a still-live same-time
/// buffer to a later same-time item.
RemapResult remap_storage(const std::vector<StorageItem>& items,
                          bool defer_same_time_release);

/// Algorithm 2 helper: computes last_use per producer given, for each
/// producer, the timestamps of its consumers. A producer with no
/// consumers gets last_use == its own time.
std::vector<int> last_use_map(const std::vector<int>& times,
                              const std::vector<std::vector<int>>& consumers);

/// Storage-class builder: buckets size vectors, relaxing equality by
/// rounding each extent up to a multiple of (slack+1) (§3.2.1's
/// ±constant threshold). Returns a class id per item and the per-class
/// maximum extents (the allocation size of the class).
class StorageClasses {
public:
  explicit StorageClasses(index_t slack) : slack_(slack) {}

  int classify(const std::array<index_t, 3>& extents, int ndim);

  int num_classes() const { return static_cast<int>(max_extents_.size()); }
  const std::array<index_t, 3>& class_extents(int klass) const {
    return max_extents_[klass];
  }
  index_t class_doubles(int klass) const;

private:
  index_t slack_;
  std::vector<std::array<index_t, 3>> max_extents_;
  std::vector<int> class_ndim_;
};

}  // namespace polymg::opt
