// Entry point of the PolyMG optimizer (Fig. 4's pipeline: grouping for
// fusion & tiling -> schedules -> storage optimization -> plan).
#pragma once

#include "polymg/opt/plan.hpp"

namespace polymg::opt {

/// Compile a pipeline under the given options. The pipeline is consumed
/// (stored inside the plan).
CompiledPipeline compile(Pipeline pipe, const CompileOptions& opts);

}  // namespace polymg::opt
