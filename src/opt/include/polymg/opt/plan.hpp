// The compiled execution plan.
//
// compile() turns a Pipeline into a CompiledPipeline: a sequence of
// groups, each with a schedule, an overlapped-tile shape (or a time-tiled
// smoother chain, or plain loops), a storage assignment (scratchpads vs
// full arrays, after the reuse passes), and pool release points. The
// runtime executes this plan; codegen prints its equivalent C.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "polymg/grid/dtype.hpp"
#include "polymg/ir/lowering.hpp"
#include "polymg/ir/pipeline.hpp"
#include "polymg/opt/options.hpp"
#include "polymg/poly/tiling.hpp"

namespace polymg::opt {

using ir::Pipeline;
using poly::Box;

/// Rational per-dimension scale of a stage's index space relative to the
/// group anchor (the stage tiles are partitioned on). A restrict feeding
/// the anchor has rel 2/1 (its fine-grid producer spans twice the tile).
struct RelScale {
  std::array<int, 3> num{1, 1, 1};
  std::array<int, 3> den{1, 1, 1};
};

/// How a group executes.
enum class GroupExec {
  Loops,         ///< per-stage parallel loops over full domains
  OverlapTiled,  ///< one fused overlapped-tile loop nest
  TimeTiled,     ///< split/diamond time tiling of a smoother chain
};

struct StagePlan {
  int func = -1;  ///< pipeline function index
  bool liveout = false;
  RelScale rel;
  /// (position in group, slot in that consumer) of in-group consumers.
  std::vector<std::pair<int, int>> in_group_consumers;

  /// Scratchpad id within the group, or -1. Present whenever the stage
  /// has in-group consumers (they may read tile halo beyond the owned
  /// partition, so even live-outs compute into the scratchpad first and
  /// then write their owned slice to the full array).
  int scratch_buffer = -1;
  /// Full-array id (CompiledPipeline::arrays), or -1. Present for
  /// live-outs and for every stage of an untiled (Loops) group.
  int array = -1;
  std::array<poly::index_t, 3> scratch_extent{};  ///< plan-time max
};

struct GroupPlan {
  GroupExec exec = GroupExec::Loops;
  std::vector<StagePlan> stages;  ///< in schedule order
  int anchor = -1;                ///< position of the anchor stage
  poly::TileGrid tiles;           ///< partition of the anchor domain
  int collapse_depth = 1;         ///< perfect parallel tile-loop depth
  std::vector<poly::index_t> scratch_sizes;  ///< doubles per scratchpad id
  poly::index_t scratch_doubles_total = 0;

  /// Plan-time kernel instance cache (OverlapTiled only): the per-tile
  /// regions of every stage, row-major as [tile * nstages + stage]. The
  /// executor indexes this instead of re-deriving regions per tile;
  /// validate_plan rejects a cache that disagrees with a recomputation.
  std::vector<Box> tile_regions_cache;

  // TimeTiled only:
  poly::index_t dtile_H = 0;  ///< time-block height
  poly::index_t dtile_W = 0;  ///< block width along dim 0
  int time_temp_array = -1;   ///< ping-pong partner of the output array
};

struct ArrayInfo {
  std::string name;
  poly::index_t doubles = 0;
  bool io = false;  ///< program output (never pooled away or reused)
};

/// One node of the inter-group dependence schedule. A node is the unit
/// the persistent-team executor gates on: a Loops group contributes one
/// node per stage (tasks are dimension-0 slabs), an OverlapTiled group
/// one node (tasks are its anchor tiles), a TimeTiled group one
/// collective node the whole team executes between barriers.
struct SchedNode {
  int group = -1;
  int stage = -1;  ///< stage position for Loops nodes; -1 = whole group
  bool collective = false;  ///< TimeTiled: barrier-separated team node
  bool serial = false;      ///< grain fast path: a single task runs the
                            ///< whole node on the claiming thread
  /// Task grid (outermost first): tiles.ntiles for OverlapTiled nodes,
  /// {nslabs, 1, 1} for Loops nodes, {1, 1, 1} when serial/collective.
  std::array<poly::index_t, 3> ntasks_dim{1, 1, 1};
  poly::index_t ntasks = 1;    ///< product of ntasks_dim
  poly::index_t slab = 0;      ///< Loops: dim-0 rows per task (else 0)
  poly::index_t task_base = 0; ///< offset into the flat task id space
};

/// Dependence schedule: nodes in execution order plus task-level edges.
/// Only *adjacent* nodes carry explicit edges (CSR over flat task ids);
/// dependences spanning two or more nodes are enforced by the runtime's
/// prefix gate — a task of node i may only start once every node <= i-2
/// has fully completed. Empty nodes means "no dependence schedule" (the
/// executor keeps the per-group barrier path).
struct SchedGraph {
  std::vector<SchedNode> nodes;
  /// CSR successor lists over flat task ids. succ[succ_off[t] ..
  /// succ_off[t+1]) are the tasks of node(t)+1 that must wait for t.
  std::vector<poly::index_t> succ_off;  ///< size total_tasks + 1
  std::vector<poly::index_t> succ;
  /// Explicit predecessor count per task (edges only; the runtime adds
  /// one for the prefix gate).
  std::vector<std::int32_t> pred_count;
  poly::index_t total_tasks = 0;

  bool empty() const { return nodes.empty(); }
};

struct CompiledPipeline {
  Pipeline pipe;
  CompileOptions opts;
  std::vector<ir::LoweredFunc> lowered;  ///< per function
  std::vector<GroupPlan> groups;         ///< in execution order
  std::vector<int> array_of_func;        ///< func -> array id, -1 if none
  std::vector<ArrayInfo> arrays;
  /// Arrays to pool_deallocate after each group finishes (index parallel
  /// to `groups`).
  std::vector<std::vector<int>> release_after_group;

  /// Inter-group tile dependence schedule (empty when
  /// opts.dependence_schedule is off). Built by opt::build_schedule,
  /// cross-checked by validate_plan.
  SchedGraph sched;

  /// Storage dtype per function / per external grid, derived by
  /// compile() from opts.precision and the functions' multigrid levels
  /// (empty == all F64, the historical plans). Arrays themselves stay
  /// dtype-agnostic double-unit storage — an F32 function simply uses
  /// the front half of its allocation — so storage reuse and pooling
  /// need no dtype partitioning. Pipeline outputs are always F64; an
  /// external is F32 only when *every* consumer is F32.
  std::vector<grid::DType> func_dtype;
  std::vector<grid::DType> external_dtype;

  grid::DType dtype_of_func(int f) const {
    return static_cast<std::size_t>(f) < func_dtype.size()
               ? func_dtype[static_cast<std::size_t>(f)]
               : grid::DType::F64;
  }
  grid::DType dtype_of_external(int e) const {
    return static_cast<std::size_t>(e) < external_dtype.size()
               ? external_dtype[static_cast<std::size_t>(e)]
               : grid::DType::F64;
  }

  /// Keepalive for the dlopen'd native-kernel module whose function
  /// pointers are bound into `lowered[..].defs[..].jit` (set by
  /// codegen::jit_specialize; null when no kernels are bound). Opaque
  /// here so opt does not depend on codegen; copies of the plan share
  /// the module.
  std::shared_ptr<const void> jit_module;

  // Optimization-report statistics.
  int scratch_buffers_without_reuse = 0;
  int scratch_buffers_with_reuse = 0;
  poly::index_t array_doubles_without_reuse = 0;
  poly::index_t array_doubles_with_reuse = 0;

  const ir::FunctionDecl& func(int i) const { return pipe.funcs[i]; }

  /// Group/storage report in the spirit of the paper's Fig. 6/7 dumps.
  std::string dump() const;
};

/// Content hash over everything that determines the plan's *kernel
/// code*: per function, the dimensionality, parity case count and each
/// case's bytecode (op kinds, constant bit patterns, load slots and
/// sampled-index maps) plus its linearizability. Two plans with equal
/// fingerprints compute identical per-point expressions, so they can
/// share one compiled kernel module — tile sizes, grouping and schedule
/// are deliberately not hashed (an autotune sweep hits one cache entry).
std::uint64_t kernel_fingerprint(const CompiledPipeline& plan);

/// Analysis of a (candidate) group: schedule, relative scales, per-stage
/// tile-extent bounds and the redundant-computation ratio. Used both by
/// the grouping heuristic (to accept/reject merges) and by the final
/// planner (to size scratchpads).
struct GroupAnalysis {
  bool valid = false;
  std::string reject_reason;
  std::vector<int> order;  ///< funcs, schedule order (ascending index)
  std::vector<RelScale> rel;
  std::vector<std::vector<std::pair<int, int>>> in_group_consumers;
  std::vector<bool> liveout;
  std::vector<std::array<poly::index_t, 3>> extent;  ///< tile extents
  double max_redundancy = 0.0;
};

GroupAnalysis analyze_group(
    const Pipeline& pipe, const std::vector<int>& funcs,
    const std::vector<std::vector<std::pair<int, int>>>& consumers,
    const std::vector<bool>& is_liveout_hint, const poly::TileSizes& tile);

/// Per-tile region computation used by the overlapped-tile executor (and
/// by tests). `regions[i]` receives the box stage i must compute for
/// `anchor_tile`; the walk mirrors the extent bounds of analyze_group.
void tile_regions(const Pipeline& pipe, const GroupPlan& g,
                  const Box& anchor_tile, std::vector<Box>& regions);

/// Disjoint partition slice a live-out stage owns for one anchor tile:
/// [f(lo), f(hi+1)-1] per dimension with f(x) = floor(num·x/den),
/// extended to the stage's domain bounds at the partition edges so ghost
/// rings are written exactly once.
Box owned_region(const ir::FunctionDecl& f, const RelScale& rel,
                 const Box& anchor_tile, const Box& anchor_domain);

}  // namespace polymg::opt
