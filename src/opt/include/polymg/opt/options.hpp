// Compilation options — the knobs the paper's evaluation sweeps.
#pragma once

#include <cstdint>
#include <string>

#include "polymg/poly/tiling.hpp"

namespace polymg::opt {

using poly::index_t;

/// The execution variants compared throughout §4 of the paper.
enum class Variant {
  Naive,         ///< polymg-naive: per-stage parallel loops, no tiling/fusion
  Opt,           ///< polymg-opt: fusion + overlapped tiling + scratchpads
  OptPlus,       ///< polymg-opt+: Opt + all storage optimizations
  DtileOptPlus,  ///< polymg-dtile-opt+: OptPlus with diamond/split time
                 ///< tiling for pre-/post-smoothing chains
};

std::string to_string(Variant v);

/// Storage precision of the compiled pipeline's stages.
///
/// `Double` is the historical behavior: every stage stores binary64 and
/// results are bit-identical to pre-mixed-precision builds. `Mixed`
/// stores the fine-grid stages (levels within `PrecisionPolicy::
/// crossover` of the finest) as float — halving hot-path bandwidth on
/// the memory-bound smoothing/residual/restriction stages — while
/// coarse levels, pipeline outputs and every accumulation stay double.
/// `Float` stores every internal stage as float (outputs stay double).
/// Kernel arithmetic is double in all modes; a float stage costs one
/// rounding per stored point.
enum class Precision : std::uint8_t { Double, Mixed, Float };

std::string to_string(Precision p);

/// Per-level precision assignment carried by CompileOptions into the
/// plan (CompiledPipeline::func_dtype / external_dtype) and validated
/// by opt::validate.
struct PrecisionPolicy {
  Precision mode = Precision::Double;
  /// Mixed only: how many of the finest levels run in float storage
  /// (1 = just the finest grid). Levels below the crossover — and any
  /// function with no level assigned — stay double.
  int crossover = 2;

  bool mixed() const { return mode != Precision::Double; }
  bool operator==(const PrecisionPolicy&) const = default;
};

/// Whether plans may bind natively JIT-compiled stencil kernels.
/// `Auto` (the default) uses the JIT when a system compiler is
/// available and falls back to the register engine / interpreter
/// silently otherwise; `On` still falls back gracefully but warns on
/// stderr when specialization fails; `Off` never invokes the compiler.
enum class JitMode : std::uint8_t { Off, Auto, On };

std::string to_string(JitMode m);

struct CompileOptions {
  Variant variant = Variant::OptPlus;

  /// Overlapped tile edge sizes per dimension (outermost first). Zeros
  /// select the defaults the paper's autotuner centers on (2-d: 32×256,
  /// 3-d: 8×8×128).
  poly::TileSizes tile{0, 0, 0};

  /// Grouping limit: maximum number of DAG nodes merged into one group
  /// (the autotuner sweeps five values of this).
  int group_limit = 8;

  /// Maximum tolerated redundant-computation fraction per dimension when
  /// merging groups: a merge is rejected if any stage's required tile
  /// extent exceeds (1 + threshold) × its fair share.
  double overlap_threshold = 1.0;

  // --- storage optimizations (§3.2); OptPlus turns all of them on,
  // --- individual flags support the Fig. 11b breakdown.
  bool intra_group_reuse = true;  ///< scratchpad reuse within a group
  bool inter_group_reuse = true;  ///< full-array reuse across groups
  bool pooled_allocation = true;  ///< pooled allocator across cycles
  bool collapse = true;           ///< collapse(d) on perfect tile loops

  /// Row-batched register engine for non-linear definitions. Reference
  /// (oracle) plans turn this off so they keep interpreting bytecode
  /// point-wise — an implementation independent of the engine they check.
  bool register_engine = true;

  /// ± size threshold (in elements per dimension) when classifying
  /// scratchpads into storage classes (§3.2.1).
  index_t storage_class_slack = 8;

  /// Split/diamond time-tiling parameters for DtileOptPlus (and the
  /// standalone smoother benchmarks): time-block height and block width
  /// along the outermost dimension (width 0 derives max(2·height, 32)).
  index_t dtile_time_block = 4;
  index_t dtile_width = 0;

  /// Persistent-team dependence schedule: the executor opens one parallel
  /// region per run() and releases tiles point-to-point from the plan's
  /// SchedGraph instead of fork/join + barrier per group. Naive (and the
  /// guarded reference oracle) keep the barrier schedule so cross-checks
  /// run an independent execution order.
  bool dependence_schedule = true;

  /// Native kernel specialization (codegen::jit_specialize). Reference
  /// (oracle) plans force this off so guarded cross-checks keep an
  /// execution path independent of the emitted code. The process-wide
  /// codegen::set_jit_mode(Off) override (the --jit=off bench flag)
  /// wins over any per-plan setting.
  JitMode jit = JitMode::Auto;

  /// Storage-precision assignment (Double = bit-identical historical
  /// behavior). compile() derives per-function dtypes from this policy
  /// and the functions' multigrid levels; guarded_solve adds an outer
  /// defect-correction loop and an oracle cross-check when the policy
  /// is not Double.
  PrecisionPolicy precision;

  /// Grain-size fast path: a schedule node whose total work (points ×
  /// stages) falls below this threshold runs serially on the claiming
  /// thread instead of being split into parallel tasks — coarse multigrid
  /// levels are a handful of rows and a task per slab costs more than the
  /// smooth itself.
  index_t serial_grain = 4096;

  /// Default options for one of the paper's variants at a grid
  /// dimensionality.
  static CompileOptions for_variant(Variant v, int ndim);

  /// Resolved tile sizes (fills in the per-ndim defaults).
  poly::TileSizes resolved_tile(int ndim) const;
};

}  // namespace polymg::opt
