#include "polymg/runtime/wavefront.hpp"

#include <vector>

#include "polymg/common/error.hpp"

namespace polymg::runtime {

namespace {

/// Line buffers: for each intermediate time level, a ring of three
/// rows (2-d) or planes (3-d) indexed by spatial position mod 3, plus a
/// shared all-zero line standing in for the Dirichlet ghost ring.
class LineWindow {
public:
  LineWindow(int levels, index_t line_doubles)
      : line_(static_cast<std::size_t>(line_doubles)),
        zeros_(static_cast<std::size_t>(line_doubles), 0.0),
        rows_(static_cast<std::size_t>(levels * 3) * line_) {}

  double* slot(int level, index_t pos) {
    return rows_.data() +
           (static_cast<std::size_t>(level) * 3 +
            static_cast<std::size_t>(pos % 3)) *
               line_;
  }
  const double* zeros() const { return zeros_.data(); }

private:
  std::size_t line_;
  std::vector<double> zeros_;
  std::vector<double> rows_;
};

void wavefront_2d(View v_in, View v_out, View f, index_t n, double w,
                  double inv_h2, int T) {
  const index_t line = n + 2;
  LineWindow win(T - 1, line);

  // Row x of time level t: the input array for t == 0, the output array
  // for t == T, a ring slot otherwise; ghost rows are the zero line.
  auto row_of = [&](int t, index_t x) -> const double* {
    if (x < 1 || x > n) return win.zeros();
    if (t == 0) return v_in.ptr + v_in.offset2(x, 0);
    return win.slot(t - 1, x);
  };

  for (index_t r = 1; r <= n + T - 1; ++r) {
    for (int t = 1; t <= T; ++t) {
      const index_t x = r - (t - 1);
      if (x < 1 || x > n) continue;
      const double* up = row_of(t - 1, x - 1);
      const double* mid = row_of(t - 1, x);
      const double* dn = row_of(t - 1, x + 1);
      const double* fr = f.ptr + f.offset2(x, 0);
      double* dst = t == T ? v_out.ptr + v_out.offset2(x, 0)
                           : win.slot(t - 1, x);
#pragma omp simd
      for (index_t j = 1; j <= n; ++j) {
        const double av = inv_h2 * (4.0 * mid[j] - up[j] - dn[j] -
                                    mid[j - 1] - mid[j + 1]);
        dst[j] = mid[j] - w * (av - fr[j]);
      }
      dst[0] = 0.0;
      dst[n + 1] = 0.0;
    }
  }
}

void wavefront_3d(View v_in, View v_out, View f, index_t n, double w,
                  double inv_h2, int T) {
  const index_t plane = (n + 2) * (n + 2);
  LineWindow win(T - 1, plane);

  auto plane_of = [&](int t, index_t x) -> const double* {
    if (x < 1 || x > n) return win.zeros();
    if (t == 0) return v_in.ptr + v_in.offset3(x, 0, 0);
    return win.slot(t - 1, x);
  };

  for (index_t r = 1; r <= n + T - 1; ++r) {
    for (int t = 1; t <= T; ++t) {
      const index_t x = r - (t - 1);
      if (x < 1 || x > n) continue;
      const double* up = plane_of(t - 1, x - 1);
      const double* mid = plane_of(t - 1, x);
      const double* dn = plane_of(t - 1, x + 1);
      double* dst = t == T ? v_out.ptr + v_out.offset3(x, 0, 0)
                           : win.slot(t - 1, x);
      const index_t stride = n + 2;
      for (index_t j = 0; j < n + 2; ++j) {
        double* drow = dst + j * stride;
        if (j < 1 || j > n) {
          for (index_t k = 0; k < n + 2; ++k) drow[k] = 0.0;
          continue;
        }
        const double* m = mid + j * stride;
        const double* jm = mid + (j - 1) * stride;
        const double* jp = mid + (j + 1) * stride;
        const double* u = up + j * stride;
        const double* d = dn + j * stride;
        const double* fr = f.ptr + f.offset3(x, j, 0);
#pragma omp simd
        for (index_t k = 1; k <= n; ++k) {
          const double av = inv_h2 * (6.0 * m[k] - u[k] - d[k] - jm[k] -
                                      jp[k] - m[k - 1] - m[k + 1]);
          drow[k] = m[k] - w * (av - fr[k]);
        }
        drow[0] = 0.0;
        drow[n + 1] = 0.0;
      }
    }
  }
}

}  // namespace

void wavefront_jacobi(View v_in, View v_out, View f, index_t n, int ndim,
                      double w, double inv_h2, int T) {
  PMG_CHECK(T >= 1, "wavefront needs at least one step");
  PMG_CHECK(ndim == 2 || ndim == 3, "wavefront supports 2-d and 3-d grids");
  PMG_CHECK(v_in.ptr != v_out.ptr, "wavefront input and output must differ");
  PMG_CHECK(v_in.dtype == grid::DType::F64 && v_out.dtype == grid::DType::F64 &&
                f.dtype == grid::DType::F64,
            "wavefront smoother is double-only");
  if (ndim == 2) {
    wavefront_2d(v_in, v_out, f, n, w, inv_h2, T);
  } else {
    wavefront_3d(v_in, v_out, f, n, w, inv_h2, T);
  }
}

}  // namespace polymg::runtime
