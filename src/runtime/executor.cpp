#include "polymg/runtime/executor.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"

namespace polymg::runtime {

using opt::GroupExec;
using opt::GroupPlan;
using opt::StagePlan;

Executor::Executor(opt::CompiledPipeline plan) : plan_(std::move(plan)) {
  array_ptr_.assign(plan_.arrays.size(), nullptr);
  unpooled_.resize(plan_.arrays.size());
  for (const GroupPlan& g : plan_.groups) {
    arena_doubles_ = std::max(arena_doubles_, g.scratch_doubles_total);
  }
  arena_.resize(static_cast<std::size_t>(max_threads()));
}

View Executor::array_view(int array_id, const ir::FunctionDecl& shape) const {
  PMG_CHECK(array_id >= 0 && array_ptr_[array_id] != nullptr,
            "array for " << shape.name << " not live");
  return View::over(array_ptr_[array_id], shape.domain);
}

void Executor::ensure_array(int array_id) {
  if (array_ptr_[array_id] != nullptr) return;
  const poly::index_t n = plan_.arrays[array_id].doubles;
  if (plan_.opts.pooled_allocation) {
    array_ptr_[array_id] = pool_.pool_allocate(n);
  } else {
    unpooled_[array_id] = grid::Buffer(static_cast<std::size_t>(n));
    array_ptr_[array_id] = unpooled_[array_id].data();
  }
  live_array_doubles_ += n;
  peak_array_doubles_ = std::max(peak_array_doubles_, live_array_doubles_);
}

void Executor::release_arrays(const std::vector<int>& ids) {
  for (int id : ids) {
    if (array_ptr_[id] == nullptr) continue;
    pool_.pool_deallocate(array_ptr_[id]);
    array_ptr_[id] = nullptr;
    live_array_doubles_ -= plan_.arrays[id].doubles;
  }
}

View Executor::resolve_source(const GroupPlan& g, const ir::SourceSlot& slot,
                              std::span<const View> externals,
                              const std::vector<View>& scratch_views) const {
  if (slot.external) return externals[slot.index];
  // Producer inside this group with a scratchpad? Then the tile-local
  // view carries the halo the consumer may need.
  for (std::size_t p = 0; p < g.stages.size(); ++p) {
    if (g.stages[p].func == slot.index &&
        g.stages[p].scratch_buffer >= 0 && !scratch_views.empty()) {
      return scratch_views[p];
    }
  }
  const int aid = plan_.array_of_func[slot.index];
  return array_view(aid, plan_.pipe.funcs[slot.index]);
}

void Executor::run(std::span<const View> externals) {
  PMG_CHECK_CODE(externals.size() == plan_.pipe.externals.size(),
                 ErrorCode::PreconditionViolated,
                 "expected " << plan_.pipe.externals.size()
                             << " external grids, got " << externals.size());
  // Enforce the documented precondition instead of silently reading out
  // of bounds: each bound view must cover its declared domain.
  for (std::size_t i = 0; i < externals.size(); ++i) {
    const ir::ExternalGrid& eg = plan_.pipe.externals[i];
    PMG_CHECK_CODE(externals[i].covers(eg.domain),
                   ErrorCode::PreconditionViolated,
                   "external view " << i << " does not cover the domain of "
                                    << eg.name << " (null, wrong ndim, "
                                    << "offset origin or undersized rows)");
  }
  // Non-pooled variants re-allocate per invocation (the cost the pooled
  // allocator removes): drop everything from the previous run.
  if (!plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      array_ptr_[i] = nullptr;
      unpooled_[i] = grid::Buffer();
    }
  }
  live_array_doubles_ = 0;
  peak_array_doubles_ = 0;
  // Pooled mode keeps output arrays live across invocations; reset their
  // liveness bookkeeping by releasing everything still held.
  if (plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      if (array_ptr_[i] != nullptr) {
        pool_.pool_deallocate(array_ptr_[i]);
        array_ptr_[i] = nullptr;
      }
    }
  }

  for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
    const GroupPlan& g = plan_.groups[gi];
    for (const StagePlan& sp : g.stages) {
      if (sp.array >= 0) ensure_array(sp.array);
    }
    if (g.exec == GroupExec::TimeTiled) ensure_array(g.time_temp_array);

    switch (g.exec) {
      case GroupExec::Loops:
        run_loops_group(g, externals);
        break;
      case GroupExec::OverlapTiled:
        run_overlap_group(g, externals);
        break;
      case GroupExec::TimeTiled:
        run_timetile_group(g, externals);
        break;
    }
    // Fault site: poison this group's freshest full-array result with a
    // NaN at the interior midpoint (a point every downstream stencil
    // reads), modelling a corrupted kernel output. Compiled in always;
    // one relaxed atomic load when nothing is armed.
    if (fault::should_fail(fault::kKernelOutput)) {
      for (auto it = g.stages.rbegin(); it != g.stages.rend(); ++it) {
        if (it->array < 0) continue;
        const ir::FunctionDecl& f = plan_.pipe.funcs[it->func];
        View v = array_view(it->array, f);
        std::array<index_t, poly::kMaxDims> mid{};
        for (int d = 0; d < f.ndim; ++d) {
          mid[d] = (f.interior.dim(d).lo + f.interior.dim(d).hi) / 2;
        }
        v.at(mid) = std::numeric_limits<double>::quiet_NaN();
        break;
      }
    }
    if (plan_.opts.pooled_allocation) {
      // pool_deallocate as soon as all uses of an array are finished
      // (§3.2.3) — but never the program outputs.
      std::vector<int> releasable;
      for (int id : plan_.release_after_group[gi]) {
        if (!plan_.arrays[id].io) releasable.push_back(id);
      }
      release_arrays(releasable);
    }
  }
}

View Executor::output_view(int i) const {
  PMG_CHECK(i >= 0 && i < static_cast<int>(plan_.pipe.outputs.size()),
            "bad output index " << i);
  const int func = plan_.pipe.outputs[i];
  return array_view(plan_.array_of_func[func], plan_.pipe.funcs[func]);
}

void Executor::run_loops_group(const GroupPlan& g,
                               std::span<const View> externals) {
  for (const StagePlan& sp : g.stages) {
    const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
    const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
    const View out = array_view(sp.array, f);
    std::vector<View> srcs(f.sources.size());
    for (std::size_t s = 0; s < f.sources.size(); ++s) {
      srcs[s] = resolve_source(g, f.sources[s], externals, {});
    }
    // Straightforward parallelization: OpenMP on the outermost grid
    // dimension, in slabs to amortize per-call setup.
    const poly::Interval d0 = f.domain.dim(0);
    const index_t slab = std::max<index_t>(
        1, d0.size() / (static_cast<index_t>(max_threads()) * 8));
    const index_t nslabs = poly::ceildiv(d0.size(), slab);
#pragma omp parallel for schedule(static)
    for (index_t si = 0; si < nslabs; ++si) {
      Box part = f.domain;
      part.dim(0) = poly::Interval{d0.lo + si * slab,
                                   std::min(d0.lo + (si + 1) * slab - 1,
                                            d0.hi)};
      apply_stage(f, lowered, out, srcs, part);
    }
  }
}

void Executor::run_overlap_group(const GroupPlan& g,
                                 std::span<const View> externals) {
  const int nstages = static_cast<int>(g.stages.size());
  const ir::FunctionDecl& anchor_f = plan_.pipe.funcs[g.stages[g.anchor].func];
  const poly::TileGrid& tiles = g.tiles;

  // Scratchpad offsets within the per-thread arena.
  std::vector<index_t> scratch_off(g.scratch_sizes.size() + 1, 0);
  std::partial_sum(g.scratch_sizes.begin(), g.scratch_sizes.end(),
                   scratch_off.begin() + 1);

  // The collapse(d) clause flattens the tile loops; a flat index loop is
  // its runtime equivalent. Without collapse only the outermost tile
  // dimension is parallel and inner tile loops run sequentially within
  // each chunk — same work, coarser chunking.
  const index_t parallel_extent =
      g.collapse_depth > 1 ? tiles.total : tiles.ntiles[0];
  const index_t tiles_per_chunk =
      g.collapse_depth > 1 ? 1 : tiles.total / std::max<index_t>(1, tiles.ntiles[0]);

#pragma omp parallel
  {
    const int tid = thread_id();
    auto& arena = arena_[static_cast<std::size_t>(tid)];
    if (static_cast<index_t>(arena.size()) < arena_doubles_) {
      arena.resize(static_cast<std::size_t>(arena_doubles_));
    }
    std::vector<Box> regions(static_cast<std::size_t>(nstages));
    std::vector<View> scratch_views(static_cast<std::size_t>(nstages));
    std::vector<View> srcs;

#pragma omp for schedule(static)
    for (index_t pi = 0; pi < parallel_extent; ++pi) {
      for (index_t ti = pi * tiles_per_chunk;
           ti < (pi + 1) * tiles_per_chunk; ++ti) {
        const Box tile = tiles.tile_box(ti);
        opt::tile_regions(plan_.pipe, g, tile, regions);

        // Bind scratchpad views for this tile's footprints.
        for (int p = 0; p < nstages; ++p) {
          const StagePlan& sp = g.stages[p];
          if (sp.scratch_buffer < 0) continue;
          // Always-on: an undersized scratchpad would corrupt the arena
          // silently, so the plan-time bound is enforced per tile.
          PMG_CHECK(regions[p].count() <=
                        static_cast<index_t>(
                            g.scratch_sizes[sp.scratch_buffer]),
                    "scratchpad overflow on "
                        << plan_.pipe.funcs[sp.func].name << ": region "
                        << regions[p]);
          scratch_views[p] = View::over(
              arena.data() + scratch_off[sp.scratch_buffer], regions[p]);
        }

        for (int p = 0; p < nstages; ++p) {
          const StagePlan& sp = g.stages[p];
          const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
          const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
          srcs.assign(f.sources.size(), View{});
          for (std::size_t s = 0; s < f.sources.size(); ++s) {
            srcs[s] = resolve_source(g, f.sources[s], externals,
                                     scratch_views);
          }
          if (sp.scratch_buffer >= 0) {
            apply_stage(f, lowered, scratch_views[p], srcs, regions[p]);
            if (sp.array >= 0) {
              // Live-out with in-group consumers: publish the owned
              // partition slice (disjoint across tiles).
              const Box own = opt::owned_region(f, sp.rel, tile,
                                                anchor_f.domain);
              copy_view(array_view(sp.array, f), scratch_views[p], own);
            }
          } else {
            // The anchor (and any consumer-less live-out) writes its
            // disjoint region straight to the full array.
            apply_stage(f, lowered, array_view(sp.array, f), srcs,
                        regions[p]);
          }
        }
      }
    }
  }
}

void Executor::run_timetile_group(const GroupPlan& g,
                                  std::span<const View> externals) {
  const StagePlan& first = g.stages.front();
  const StagePlan& last = g.stages.back();
  const ir::FunctionDecl& step_fn = plan_.pipe.funcs[first.func];
  const int steps = static_cast<int>(g.stages.size());
  std::vector<ChainStep> chain(g.stages.size());
  for (std::size_t t = 0; t < g.stages.size(); ++t) {
    chain[t].fn = &plan_.pipe.funcs[g.stages[t].func];
    chain[t].lowered = &plan_.lowered[g.stages[t].func];
  }

  const View out = array_view(last.array, step_fn);
  const View tmp = array_view(g.time_temp_array, step_fn);
  View bufs[2];
  bufs[steps & 1] = out;
  bufs[1 - (steps & 1)] = tmp;

  // Bind the step's time-invariant sources; slot 0 (the previous level)
  // is managed by the sweep.
  std::vector<View> srcs(step_fn.sources.size());
  const View v0 = resolve_source(g, step_fn.sources[0], externals, {});
  for (std::size_t s = 1; s < step_fn.sources.size(); ++s) {
    srcs[s] = resolve_source(g, step_fn.sources[s], externals, {});
  }

  // Level 0 into bufs[0]; ghost rings of both buffers obey the step's
  // boundary rule once (smoother steps never move their ghost ring).
  copy_view(bufs[0], v0, step_fn.domain);
  for (View b : {bufs[0], bufs[1]}) {
    for_each_boundary_slab(step_fn.domain, step_fn.interior,
                           [&](const Box& slab) {
                             if (step_fn.boundary == ir::BoundaryKind::Zero) {
                               fill_view(b, slab, 0.0);
                             } else {
                               copy_view(b, v0, slab);
                             }
                           });
  }

  TimeTileParams params{g.dtile_H, g.dtile_W};
  time_tiled_sweep(chain, bufs, srcs, params);
}

}  // namespace polymg::runtime
