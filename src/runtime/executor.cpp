#include "polymg/runtime/executor.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/common/timer.hpp"

namespace polymg::runtime {

using opt::GroupExec;
using opt::GroupPlan;
using opt::StagePlan;

Executor::Executor(opt::CompiledPipeline plan) : plan_(std::move(plan)) {
  array_ptr_.assign(plan_.arrays.size(), nullptr);
  unpooled_.resize(plan_.arrays.size());
  for (const GroupPlan& g : plan_.groups) {
    arena_doubles_ = std::max(arena_doubles_, g.scratch_doubles_total);
  }
  // Everything below resolves plan-derivable state once, up front: the
  // steady-state run() touches only these caches and allocates nothing.
  arena_.resize(static_cast<std::size_t>(max_threads()));
  for (auto& a : arena_) a.resize(static_cast<std::size_t>(arena_doubles_));

  const std::size_t ngroups = plan_.groups.size();
  binds_.resize(ngroups);
  releasable_after_group_.resize(ngroups);
  scratch_off_.resize(ngroups);
  chain_.resize(ngroups);
  std::size_t max_stages = 1;
  std::size_t max_sources = 1;
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    const GroupPlan& g = plan_.groups[gi];
    max_stages = std::max(max_stages, g.stages.size());

    binds_[gi].resize(g.stages.size());
    for (std::size_t p = 0; p < g.stages.size(); ++p) {
      const ir::FunctionDecl& f = plan_.pipe.funcs[g.stages[p].func];
      max_sources = std::max(max_sources, f.sources.size());
      binds_[gi][p].resize(f.sources.size());
      for (std::size_t s = 0; s < f.sources.size(); ++s) {
        const ir::SourceSlot& slot = f.sources[s];
        SourceBind& b = binds_[gi][p][s];
        if (slot.external) {
          b = SourceBind{SourceBind::kExternal, slot.index, -1};
          continue;
        }
        // Producer inside an overlap-tiled group with a scratchpad? Then
        // the tile-local view carries the halo the consumer may need.
        b = SourceBind{SourceBind::kArray, plan_.array_of_func[slot.index],
                       slot.index};
        if (g.exec != GroupExec::OverlapTiled) continue;
        for (std::size_t q = 0; q < g.stages.size(); ++q) {
          if (g.stages[q].func == slot.index &&
              g.stages[q].scratch_buffer >= 0) {
            b = SourceBind{SourceBind::kScratch, static_cast<int>(q), -1};
            break;
          }
        }
      }
    }

    for (int id : plan_.release_after_group[gi]) {
      if (!plan_.arrays[id].io) releasable_after_group_[gi].push_back(id);
    }

    scratch_off_[gi].assign(g.scratch_sizes.size() + 1, 0);
    std::partial_sum(g.scratch_sizes.begin(), g.scratch_sizes.end(),
                     scratch_off_[gi].begin() + 1);

    if (g.exec == GroupExec::TimeTiled) {
      chain_[gi].resize(g.stages.size());
      for (std::size_t t = 0; t < g.stages.size(); ++t) {
        chain_[gi][t].fn = &plan_.pipe.funcs[g.stages[t].func];
        chain_[gi][t].lowered = &plan_.lowered[g.stages[t].func];
      }
    }
  }

  workspaces_.resize(static_cast<std::size_t>(max_threads()));
  for (Workspace& ws : workspaces_) {
    ws.regions.reserve(max_stages);
    ws.scratch_views.reserve(max_stages);
    ws.srcs.reserve(max_sources);
  }
  stage_srcs_.reserve(max_sources);

  group_seconds_.assign(ngroups, 0.0);
  stage_seconds_.assign(static_cast<std::size_t>(plan_.pipe.num_stages()),
                        0.0);
}

void Executor::reset_timers() {
  std::fill(group_seconds_.begin(), group_seconds_.end(), 0.0);
  std::fill(stage_seconds_.begin(), stage_seconds_.end(), 0.0);
  runs_timed_ = 0;
}

View Executor::array_view(int array_id, const ir::FunctionDecl& shape) const {
  PMG_CHECK(array_id >= 0 && array_ptr_[array_id] != nullptr,
            "array for " << shape.name << " not live");
  return View::over(array_ptr_[array_id], shape.domain);
}

void Executor::ensure_array(int array_id) {
  if (array_ptr_[array_id] != nullptr) return;
  const poly::index_t n = plan_.arrays[array_id].doubles;
  if (plan_.opts.pooled_allocation) {
    array_ptr_[array_id] = pool_.pool_allocate(n);
  } else {
    unpooled_[array_id] = grid::Buffer(static_cast<std::size_t>(n));
    array_ptr_[array_id] = unpooled_[array_id].data();
  }
  live_array_doubles_ += n;
  peak_array_doubles_ = std::max(peak_array_doubles_, live_array_doubles_);
}

void Executor::release_arrays(const std::vector<int>& ids) {
  for (int id : ids) {
    if (array_ptr_[id] == nullptr) continue;
    pool_.pool_deallocate(array_ptr_[id]);
    array_ptr_[id] = nullptr;
    live_array_doubles_ -= plan_.arrays[id].doubles;
  }
}

View Executor::resolve_bind(const SourceBind& b,
                            std::span<const View> externals,
                            std::span<const View> scratch_views) const {
  switch (b.kind) {
    case SourceBind::kExternal:
      return externals[b.index];
    case SourceBind::kScratch:
      return scratch_views[b.index];
    case SourceBind::kArray:
      break;
  }
  return array_view(b.index, plan_.pipe.funcs[b.func]);
}

void Executor::run(std::span<const View> externals) {
  PMG_CHECK_CODE(externals.size() == plan_.pipe.externals.size(),
                 ErrorCode::PreconditionViolated,
                 "expected " << plan_.pipe.externals.size()
                             << " external grids, got " << externals.size());
  // Enforce the documented precondition instead of silently reading out
  // of bounds: each bound view must cover its declared domain.
  for (std::size_t i = 0; i < externals.size(); ++i) {
    const ir::ExternalGrid& eg = plan_.pipe.externals[i];
    PMG_CHECK_CODE(externals[i].covers(eg.domain),
                   ErrorCode::PreconditionViolated,
                   "external view " << i << " does not cover the domain of "
                                    << eg.name << " (null, wrong ndim, "
                                    << "offset origin or undersized rows)");
  }
  // Non-pooled variants re-allocate per invocation (the cost the pooled
  // allocator removes): drop everything from the previous run.
  if (!plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      array_ptr_[i] = nullptr;
      unpooled_[i] = grid::Buffer();
    }
  }
  live_array_doubles_ = 0;
  peak_array_doubles_ = 0;
  // Pooled mode keeps output arrays live across invocations; reset their
  // liveness bookkeeping by releasing everything still held.
  if (plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      if (array_ptr_[i] != nullptr) {
        pool_.pool_deallocate(array_ptr_[i]);
        array_ptr_[i] = nullptr;
      }
    }
  }

  for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
    const GroupPlan& g = plan_.groups[gi];
    for (const StagePlan& sp : g.stages) {
      if (sp.array >= 0) ensure_array(sp.array);
    }
    if (g.exec == GroupExec::TimeTiled) ensure_array(g.time_temp_array);

    Timer gt;
    switch (g.exec) {
      case GroupExec::Loops:
        run_loops_group(static_cast<int>(gi), externals);
        break;
      case GroupExec::OverlapTiled:
        run_overlap_group(static_cast<int>(gi), externals);
        break;
      case GroupExec::TimeTiled:
        run_timetile_group(static_cast<int>(gi), externals);
        break;
    }
    const double dt = gt.elapsed();
    group_seconds_[gi] += dt;
    // Fused groups execute their stages interleaved per tile, so stage
    // attribution lands on the anchor (Loops groups attribute per stage
    // inside run_loops_group).
    if (g.exec != GroupExec::Loops) {
      stage_seconds_[static_cast<std::size_t>(g.stages[g.anchor].func)] += dt;
    }
    // Fault site: poison this group's freshest full-array result with a
    // NaN at the interior midpoint (a point every downstream stencil
    // reads), modelling a corrupted kernel output. Compiled in always;
    // one relaxed atomic load when nothing is armed.
    if (fault::should_fail(fault::kKernelOutput)) {
      for (auto it = g.stages.rbegin(); it != g.stages.rend(); ++it) {
        if (it->array < 0) continue;
        const ir::FunctionDecl& f = plan_.pipe.funcs[it->func];
        View v = array_view(it->array, f);
        std::array<index_t, poly::kMaxDims> mid{};
        for (int d = 0; d < f.ndim; ++d) {
          mid[d] = (f.interior.dim(d).lo + f.interior.dim(d).hi) / 2;
        }
        v.at(mid) = std::numeric_limits<double>::quiet_NaN();
        break;
      }
    }
    if (plan_.opts.pooled_allocation) {
      // pool_deallocate as soon as all uses of an array are finished
      // (§3.2.3) — but never the program outputs (filtered at
      // construction).
      release_arrays(releasable_after_group_[gi]);
    }
  }
  ++runs_timed_;
}

View Executor::output_view(int i) const {
  PMG_CHECK(i >= 0 && i < static_cast<int>(plan_.pipe.outputs.size()),
            "bad output index " << i);
  const int func = plan_.pipe.outputs[i];
  return array_view(plan_.array_of_func[func], plan_.pipe.funcs[func]);
}

void Executor::run_loops_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  for (std::size_t p = 0; p < g.stages.size(); ++p) {
    const StagePlan& sp = g.stages[p];
    const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
    const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
    const View out = array_view(sp.array, f);
    stage_srcs_.assign(f.sources.size(), View{});
    for (std::size_t s = 0; s < f.sources.size(); ++s) {
      stage_srcs_[s] = resolve_bind(binds_[gi][p][s], externals, {});
    }
    std::span<const View> srcs(stage_srcs_);
    Timer st;
    // Straightforward parallelization: OpenMP on the outermost grid
    // dimension, in slabs to amortize per-call setup.
    const poly::Interval d0 = f.domain.dim(0);
    const index_t slab = std::max<index_t>(
        1, d0.size() / (static_cast<index_t>(max_threads()) * 8));
    const index_t nslabs = poly::ceildiv(d0.size(), slab);
#pragma omp parallel for schedule(static)
    for (index_t si = 0; si < nslabs; ++si) {
      Box part = f.domain;
      part.dim(0) = poly::Interval{d0.lo + si * slab,
                                   std::min(d0.lo + (si + 1) * slab - 1,
                                            d0.hi)};
      apply_stage(f, lowered, out, srcs, part);
    }
    stage_seconds_[static_cast<std::size_t>(sp.func)] += st.elapsed();
  }
}

void Executor::run_overlap_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const int nstages = static_cast<int>(g.stages.size());
  const ir::FunctionDecl& anchor_f = plan_.pipe.funcs[g.stages[g.anchor].func];
  const poly::TileGrid& tiles = g.tiles;
  const std::vector<index_t>& scratch_off =
      scratch_off_[static_cast<std::size_t>(gi)];
  // Plans built by opt::compile carry the per-tile region cache; keep a
  // recompute fallback for hand-assembled plans (tests).
  const bool cached =
      g.tile_regions_cache.size() ==
      static_cast<std::size_t>(tiles.total) * g.stages.size();

  // The collapse(d) clause flattens the tile loops; a flat index loop is
  // its runtime equivalent. Without collapse only the outermost tile
  // dimension is parallel and inner tile loops run sequentially within
  // each chunk — same work, coarser chunking.
  const index_t parallel_extent =
      g.collapse_depth > 1 ? tiles.total : tiles.ntiles[0];
  const index_t tiles_per_chunk =
      g.collapse_depth > 1 ? 1 : tiles.total / std::max<index_t>(1, tiles.ntiles[0]);

#pragma omp parallel
  {
    const int tid = thread_id();
    auto& arena = arena_[static_cast<std::size_t>(tid)];
    Workspace& ws = workspaces_[static_cast<std::size_t>(tid)];
    // Reserved at construction: these stay within capacity (no malloc).
    ws.regions.assign(static_cast<std::size_t>(nstages), Box{});
    ws.scratch_views.assign(static_cast<std::size_t>(nstages), View{});

#pragma omp for schedule(static)
    for (index_t pi = 0; pi < parallel_extent; ++pi) {
      for (index_t ti = pi * tiles_per_chunk;
           ti < (pi + 1) * tiles_per_chunk; ++ti) {
        const Box tile = tiles.tile_box(ti);
        const Box* regions;
        if (cached) {
          regions = g.tile_regions_cache.data() +
                    static_cast<std::size_t>(ti) * g.stages.size();
        } else {
          opt::tile_regions(plan_.pipe, g, tile, ws.regions);
          regions = ws.regions.data();
        }

        // Bind scratchpad views for this tile's footprints.
        for (int p = 0; p < nstages; ++p) {
          const StagePlan& sp = g.stages[p];
          if (sp.scratch_buffer < 0) continue;
          // Always-on: an undersized scratchpad would corrupt the arena
          // silently, so the plan-time bound is enforced per tile.
          PMG_CHECK(regions[p].count() <=
                        static_cast<index_t>(
                            g.scratch_sizes[sp.scratch_buffer]),
                    "scratchpad overflow on "
                        << plan_.pipe.funcs[sp.func].name << ": region "
                        << regions[p]);
          ws.scratch_views[p] = View::over(
              arena.data() + scratch_off[sp.scratch_buffer], regions[p]);
        }

        for (int p = 0; p < nstages; ++p) {
          const StagePlan& sp = g.stages[p];
          const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
          const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
          ws.srcs.assign(f.sources.size(), View{});
          for (std::size_t s = 0; s < f.sources.size(); ++s) {
            ws.srcs[s] =
                resolve_bind(binds_[gi][p][s], externals, ws.scratch_views);
          }
          if (sp.scratch_buffer >= 0) {
            apply_stage(f, lowered, ws.scratch_views[p], ws.srcs,
                        regions[p]);
            if (sp.array >= 0) {
              // Live-out with in-group consumers: publish the owned
              // partition slice (disjoint across tiles).
              const Box own = opt::owned_region(f, sp.rel, tile,
                                                anchor_f.domain);
              copy_view(array_view(sp.array, f), ws.scratch_views[p], own);
            }
          } else {
            // The anchor (and any consumer-less live-out) writes its
            // disjoint region straight to the full array.
            apply_stage(f, lowered, array_view(sp.array, f), ws.srcs,
                        regions[p]);
          }
        }
      }
    }
  }
}

void Executor::run_timetile_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const StagePlan& last = g.stages.back();
  const ir::FunctionDecl& step_fn = plan_.pipe.funcs[g.stages.front().func];
  const int steps = static_cast<int>(g.stages.size());
  const std::vector<ChainStep>& chain = chain_[static_cast<std::size_t>(gi)];

  const View out = array_view(last.array, step_fn);
  const View tmp = array_view(g.time_temp_array, step_fn);
  View bufs[2];
  bufs[steps & 1] = out;
  bufs[1 - (steps & 1)] = tmp;

  // Bind the step's time-invariant sources; slot 0 (the previous level)
  // is managed by the sweep.
  stage_srcs_.assign(step_fn.sources.size(), View{});
  const View v0 = resolve_bind(binds_[gi][0][0], externals, {});
  for (std::size_t s = 1; s < step_fn.sources.size(); ++s) {
    stage_srcs_[s] = resolve_bind(binds_[gi][0][s], externals, {});
  }

  // Level 0 into bufs[0]; ghost rings of both buffers obey the step's
  // boundary rule once (smoother steps never move their ghost ring).
  copy_view(bufs[0], v0, step_fn.domain);
  for (View b : {bufs[0], bufs[1]}) {
    for_each_boundary_slab(step_fn.domain, step_fn.interior,
                           [&](const Box& slab) {
                             if (step_fn.boundary == ir::BoundaryKind::Zero) {
                               fill_view(b, slab, 0.0);
                             } else {
                               copy_view(b, v0, slab);
                             }
                           });
  }

  TimeTileParams params{g.dtile_H, g.dtile_W};
  time_tiled_sweep(chain, bufs, stage_srcs_, params);
}

}  // namespace polymg::runtime
