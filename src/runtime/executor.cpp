#include "polymg/runtime/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>

#include "polymg/codegen/jit.hpp"
#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/obs/histogram.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/perf.hpp"
#include "polymg/obs/trace.hpp"

namespace polymg::runtime {

using opt::GroupExec;
using opt::GroupPlan;
using opt::SchedNode;
using opt::StagePlan;

Executor::Executor(opt::CompiledPipeline plan) : plan_(std::move(plan)) {
  // Bind natively compiled kernels before anything else resolves: all
  // compile/dlopen work happens here in the constructor, so the
  // steady-state run() stays allocation- and syscall-free. Plans that
  // arrive pre-specialized (service::PlanCache) are left untouched, and
  // any fallback keeps the interpreted dispatch fully functional.
  if (plan_.opts.jit != opt::JitMode::Off) {
    codegen::jit_specialize(plan_);
  }
  // Metrics handles resolve here, not on the hot paths: steady-state
  // run() touches only their relaxed atomics.
  obs::Metrics& m = obs::Metrics::instance();
  ctr_tiles_ = &m.counter("executor.tiles");
  ctr_slabs_ = &m.counter("executor.slabs");
  ctr_pops_ = &m.counter("executor.queue_pops");
  ctr_spins_ = &m.counter("executor.queue_spins");
  ctr_gate_opens_ = &m.counter("executor.gate_opens");
  ctr_runs_ = &m.counter("executor.runs");
  ctr_regions_cached_ = &m.counter("executor.tile_regions_cached");
  ctr_regions_recomputed_ = &m.counter("executor.tile_regions_recomputed");
  ctr_aborted_runs_ = &m.counter("executor.aborted_runs");
  // Per-group latency histograms, keyed by group index: executors built
  // from the same plan shape (the service's cached plans) merge into one
  // distribution per kernel stage.
  hist_group_ns_.resize(plan_.groups.size(), nullptr);
  for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
    hist_group_ns_[gi] =
        &m.histogram("executor.group_ns.g" + std::to_string(gi));
  }
  perf_cycles_.assign(plan_.groups.size(), 0);
  perf_instr_.assign(plan_.groups.size(), 0);
  perf_llc_.assign(plan_.groups.size(), 0);
  perf_seconds_.assign(plan_.groups.size(), 0.0);
  dep_group_run_seconds_.assign(plan_.groups.size(), 0.0);

  array_ptr_.assign(plan_.arrays.size(), nullptr);
  unpooled_.resize(plan_.arrays.size());
  for (const GroupPlan& g : plan_.groups) {
    arena_doubles_ = std::max(arena_doubles_, g.scratch_doubles_total);
  }
  // Everything below resolves plan-derivable state once, up front: the
  // steady-state run() touches only these caches and allocates nothing.
  arena_.resize(static_cast<std::size_t>(max_threads()));
  for (auto& a : arena_) a.resize(static_cast<std::size_t>(arena_doubles_));

  const std::size_t ngroups = plan_.groups.size();
  binds_.resize(ngroups);
  releasable_after_group_.resize(ngroups);
  scratch_off_.resize(ngroups);
  chain_.resize(ngroups);
  std::size_t max_stages = 1;
  std::size_t max_sources = 1;
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    const GroupPlan& g = plan_.groups[gi];
    max_stages = std::max(max_stages, g.stages.size());

    binds_[gi].resize(g.stages.size());
    for (std::size_t p = 0; p < g.stages.size(); ++p) {
      const ir::FunctionDecl& f = plan_.pipe.funcs[g.stages[p].func];
      max_sources = std::max(max_sources, f.sources.size());
      binds_[gi][p].resize(f.sources.size());
      for (std::size_t s = 0; s < f.sources.size(); ++s) {
        const ir::SourceSlot& slot = f.sources[s];
        SourceBind& b = binds_[gi][p][s];
        if (slot.external) {
          b = SourceBind{SourceBind::kExternal, slot.index, -1};
          continue;
        }
        // Producer inside an overlap-tiled group with a scratchpad? Then
        // the tile-local view carries the halo the consumer may need.
        b = SourceBind{SourceBind::kArray, plan_.array_of_func[slot.index],
                       slot.index};
        if (g.exec != GroupExec::OverlapTiled) continue;
        for (std::size_t q = 0; q < g.stages.size(); ++q) {
          if (g.stages[q].func == slot.index &&
              g.stages[q].scratch_buffer >= 0) {
            b = SourceBind{SourceBind::kScratch, static_cast<int>(q), -1};
            break;
          }
        }
      }
    }

    for (int id : plan_.release_after_group[gi]) {
      if (!plan_.arrays[id].io) releasable_after_group_[gi].push_back(id);
    }

    scratch_off_[gi].assign(g.scratch_sizes.size() + 1, 0);
    std::partial_sum(g.scratch_sizes.begin(), g.scratch_sizes.end(),
                     scratch_off_[gi].begin() + 1);

    if (g.exec == GroupExec::TimeTiled) {
      chain_[gi].resize(g.stages.size());
      for (std::size_t t = 0; t < g.stages.size(); ++t) {
        chain_[gi][t].fn = &plan_.pipe.funcs[g.stages[t].func];
        chain_[gi][t].lowered = &plan_.lowered[g.stages[t].func];
      }
    }
  }

  workspaces_.resize(static_cast<std::size_t>(max_threads()));
  for (Workspace& ws : workspaces_) {
    ws.regions.reserve(max_stages);
    ws.scratch_views.reserve(max_stages);
    ws.srcs.reserve(max_sources);
  }
  stage_srcs_.reserve(max_sources);

  group_seconds_.assign(ngroups, 0.0);
  stage_seconds_.assign(static_cast<std::size_t>(plan_.pipe.num_stages()),
                        0.0);

  // --- Dependence-scheduler state, preallocated so a steady-state run
  // --- only resets it (no heap traffic inside or around the region).
  const opt::SchedGraph& sg = plan_.sched;
  sched_on_ = !sg.empty();
  if (sched_on_) {
    const std::size_t nnodes = sg.nodes.size();
    const std::size_t ntasks = static_cast<std::size_t>(sg.total_tasks);
    task_node_.assign(ntasks, 0);
    phase_of_node_.assign(nnodes, 0);
    for (std::size_t ni = 0; ni < nnodes; ++ni) {
      const SchedNode& n = sg.nodes[ni];
      for (index_t t = 0; t < n.ntasks; ++t) {
        task_node_[static_cast<std::size_t>(n.task_base + t)] =
            static_cast<std::int32_t>(ni);
      }
      if (n.collective) {
        phases_.push_back(Phase{true, static_cast<int>(ni),
                                static_cast<int>(ni) + 1});
      } else if (!phases_.empty() && !phases_.back().collective &&
                 phases_.back().end_node == static_cast<int>(ni)) {
        phases_.back().end_node = static_cast<int>(ni) + 1;
      } else {
        phases_.push_back(Phase{false, static_cast<int>(ni),
                                static_cast<int>(ni) + 1});
      }
      phase_of_node_[ni] = static_cast<int>(phases_.size()) - 1;
    }
    phase_total_.assign(phases_.size(), 0);
    for (std::size_t ni = 0; ni < nnodes; ++ni) {
      phase_total_[static_cast<std::size_t>(phase_of_node_[ni])] +=
          sg.nodes[ni].ntasks;
    }
    pred_ = std::vector<std::atomic<std::int32_t>>(ntasks);
    queue_ = std::vector<std::atomic<index_t>>(ntasks);
    node_remaining_ = std::vector<std::atomic<index_t>>(nnodes);
    node_complete_ = std::vector<std::atomic<std::uint8_t>>(nnodes);
    phase_completed_ = std::vector<std::atomic<index_t>>(phases_.size());
    group_ensured_ = std::vector<std::atomic<std::uint8_t>>(ngroups);
    node_seconds_acc_.assign(workspaces_.size() * nnodes, 0.0);
  }
}

void Executor::reset_timers() {
  std::fill(group_seconds_.begin(), group_seconds_.end(), 0.0);
  std::fill(stage_seconds_.begin(), stage_seconds_.end(), 0.0);
  std::fill(node_seconds_acc_.begin(), node_seconds_acc_.end(), 0.0);
  queue_pops_.store(0, std::memory_order_relaxed);
  queue_spins_.store(0, std::memory_order_relaxed);
  runs_timed_ = 0;
  std::fill(perf_cycles_.begin(), perf_cycles_.end(), 0);
  std::fill(perf_instr_.begin(), perf_instr_.end(), 0);
  std::fill(perf_llc_.begin(), perf_llc_.end(), 0);
  std::fill(perf_seconds_.begin(), perf_seconds_.end(), 0.0);
  perf_runs_ = 0;
}

bool Executor::enable_perf_attribution() {
  if (perf_ == nullptr) perf_ = std::make_unique<obs::PerfCounters>();
  // Unavailable counters (containers, perf_event_paranoid, non-Linux)
  // stay armed anyway: run_report() then emits the model-only roofline
  // rows — skip the hw columns, never fail.
  return perf_->available();
}

void Executor::disable_perf_attribution() { perf_.reset(); }

namespace {

/// Arithmetic operations per grid point of one lowered definition (the
/// representative case 0). Linear stencils cost one multiply-add per tap
/// (minus the first add); register programs count their per-point body
/// arithmetic.
double flops_per_point(const ir::LoweredFunc& lowered) {
  if (lowered.defs.empty()) return 0.0;
  const ir::LoweredDef& def = lowered.defs.front();
  if (def.linear.has_value()) {
    const int taps = def.linear->total_taps();
    return taps > 0 ? 2.0 * taps - 1.0 : 0.0;
  }
  double n = 0.0;
  for (const ir::RegInstr& in : def.regprog.body) {
    switch (in.kind) {
      case ir::RegOpKind::Neg:
      case ir::RegOpKind::Add:
      case ir::RegOpKind::Sub:
      case ir::RegOpKind::Mul:
      case ir::RegOpKind::Div:
        n += 1.0;
        break;
      default:
        break;
    }
  }
  return n;
}

}  // namespace

obs::RunReport Executor::run_report() const {
  obs::RunReport rep;
  rep.runs = runs_timed_;
  static const char* kExecName[] = {"loops", "overlap", "time-tiled"};
  for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
    const GroupPlan& g = plan_.groups[gi];
    std::string label = "g" + std::to_string(gi) + " [" +
                        kExecName[static_cast<int>(g.exec)] + "] " +
                        plan_.pipe.funcs[g.stages[static_cast<std::size_t>(
                                                      g.anchor)].func].name;
    if (g.stages.size() > 1) {
      label += " (+" + std::to_string(g.stages.size() - 1) + " stage(s))";
    }
    rep.groups.push_back({std::move(label), group_seconds_[gi]});
  }
  for (std::size_t f = 0; f < plan_.pipe.funcs.size() &&
                          f < stage_seconds_.size();
       ++f) {
    rep.stages.push_back({plan_.pipe.funcs[f].name, stage_seconds_[f]});
  }
  // Roofline attribution: model bytes/flops come from the plan alone (so
  // model GB/s renders even where perf_event_open is unavailable); the
  // hw columns fill in when enable_perf_attribution() sampled
  // barrier-schedule runs.
  const bool sampled = perf_runs_ > 0;
  if (sampled || (perf_ != nullptr && runs_timed_ > 0)) {
    for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
      const GroupPlan& g = plan_.groups[gi];
      obs::RunReport::PerfRow row;
      row.label = rep.groups[gi].label;
      row.seconds = sampled ? perf_seconds_[gi] : group_seconds_[gi];
      row.runs = sampled ? perf_runs_ : runs_timed_;
      for (const StagePlan& sp : g.stages) {
        const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
        const double pts = static_cast<double>(f.domain.count());
        const double elem =
            static_cast<double>(grid::dtype_size(plan_.dtype_of_func(sp.func)));
        // Streaming model: one store of the stage's output plus one read
        // per source slot, each over the stage domain — the compulsory
        // traffic the paper's bandwidth argument counts.
        row.model_bytes +=
            pts * elem * (1.0 + static_cast<double>(f.sources.size()));
        row.model_flops += pts * flops_per_point(plan_.lowered[sp.func]);
      }
      if (sampled) {
        row.cycles = perf_cycles_[gi];
        row.instructions = perf_instr_[gi];
        row.llc_misses = perf_llc_[gi];
      }
      rep.perf.push_back(std::move(row));
    }
  }
  rep.trace_dropped = obs::TraceSession::dropped();
  rep.metrics_json = obs::Metrics::instance().snapshot_json();
  return rep;
}

bool Executor::dependence_scheduled() const {
  // Armed fault sites force the barrier schedule: kPoolAlloc throws and
  // kKernelOutput poisons shared state, neither of which may happen
  // concurrently inside the persistent region.
  return sched_on_ && !fault::FaultInjector::instance().any_armed();
}

View Executor::array_view(int array_id, const ir::FunctionDecl& shape,
                          int func) const {
  PMG_CHECK(array_id >= 0 && array_ptr_[array_id] != nullptr,
            "array for " << shape.name << " not live");
  View v = View::over(array_ptr_[array_id], shape.domain);
  v.dtype = plan_.dtype_of_func(func);
  return v;
}

void Executor::ensure_array(int array_id) {
  if (array_ptr_[array_id] != nullptr) return;
  const poly::index_t n = plan_.arrays[array_id].doubles;
  if (plan_.opts.pooled_allocation) {
    array_ptr_[array_id] = pool_.pool_allocate(n);
  } else {
    unpooled_[array_id] = grid::Buffer(static_cast<std::size_t>(n));
    array_ptr_[array_id] = unpooled_[array_id].data();
  }
  live_array_doubles_ += n;
  peak_array_doubles_ = std::max(peak_array_doubles_, live_array_doubles_);
}

void Executor::release_arrays(const std::vector<int>& ids) {
  for (int id : ids) {
    if (array_ptr_[id] == nullptr) continue;
    pool_.pool_deallocate(array_ptr_[id]);
    array_ptr_[id] = nullptr;
    live_array_doubles_ -= plan_.arrays[id].doubles;
  }
}

View Executor::resolve_bind(const SourceBind& b,
                            std::span<const View> externals,
                            std::span<const View> scratch_views) const {
  switch (b.kind) {
    case SourceBind::kExternal:
      return externals[b.index];
    case SourceBind::kScratch:
      return scratch_views[b.index];
    case SourceBind::kArray:
      break;
  }
  return array_view(b.index, plan_.pipe.funcs[b.func], b.func);
}

bool Executor::poll_abort() {
  // Granule heartbeat: every poll site is a granule boundary on both
  // schedules, so the epoch advances exactly as often as the run can
  // react to a trip — a frozen epoch IS a stall. Bumping while aborting
  // is deliberate: a draining run is progressing toward termination.
  progress_epoch_.fetch_add(1, std::memory_order_relaxed);
  if (progress_sink_ != nullptr) {
    progress_sink_->fetch_add(1, std::memory_order_relaxed);
  }
  // Monotonic fast path: one relaxed load once the run is aborting (or
  // while no token is attached). Read-read coherence on abort_ plus the
  // scheduler's release/acquire edges guarantee a task queued after a
  // skipped predecessor also observes the abort.
  if (abort_.load(std::memory_order_relaxed) != 0) return true;
  const CancelToken* tok = cancel_;
  if (tok == nullptr) return false;
  std::uint8_t want = 0;
  if (tok->cancelled()) {
    want = 2;
  } else if (tok->deadline_passed()) {
    want = 1;
  } else {
    return false;
  }
  std::uint8_t expected = 0;
  if (abort_.compare_exchange_strong(expected, want,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    // First trip only: record it. id=-1 marks an executor-level trip
    // (the service layer stamps ticket ids on its own DeadlineHit
    // events); stage distinguishes deadline (1) from cancel (2).
    if (want == 1) {
      PMG_TRACE_INSTANT(DeadlineHit, -1, 1, -1, 0.0);
      obs::Metrics::instance().counter("executor.deadline_hits").add(1);
    }
  }
  return true;
}

void Executor::raise_abort() {
  const std::uint8_t a = abort_.load(std::memory_order_acquire);
  if (a == 0) return;
  ctr_aborted_runs_->add(1);
  if (a == 1) {
    PMG_FAIL(ErrorCode::DeadlineExceeded,
             "run aborted: deadline passed mid-invocation "
             "(outputs unspecified; keep the previous iterate)");
  }
  PMG_FAIL(ErrorCode::Cancelled,
           "run aborted: cancellation requested "
           "(outputs unspecified; keep the previous iterate)");
}

void Executor::run(std::span<const View> externals) {
  PMG_CHECK_CODE(externals.size() == plan_.pipe.externals.size(),
                 ErrorCode::PreconditionViolated,
                 "expected " << plan_.pipe.externals.size()
                             << " external grids, got " << externals.size());
  // Enforce the documented precondition instead of silently reading out
  // of bounds: each bound view must cover its declared domain.
  for (std::size_t i = 0; i < externals.size(); ++i) {
    const ir::ExternalGrid& eg = plan_.pipe.externals[i];
    PMG_CHECK_CODE(externals[i].covers(eg.domain),
                   ErrorCode::PreconditionViolated,
                   "external view " << i << " does not cover the domain of "
                                    << eg.name << " (null, wrong ndim, "
                                    << "offset origin or undersized rows)");
    // Kernels bake the externals' storage dtypes (JIT casts, templated
    // fast paths), so a mismatched view would be misread wholesale.
    PMG_CHECK_CODE(
        externals[i].dtype ==
            plan_.dtype_of_external(static_cast<int>(i)),
        ErrorCode::PreconditionViolated,
        "external view " << i << " is "
                         << grid::to_string(externals[i].dtype)
                         << " but the plan stores " << eg.name << " as "
                         << grid::to_string(plan_.dtype_of_external(
                                static_cast<int>(i))));
  }
  // Non-pooled variants re-allocate per invocation (the cost the pooled
  // allocator removes): drop everything from the previous run.
  if (!plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      array_ptr_[i] = nullptr;
      unpooled_[i] = grid::Buffer();
    }
  }
  live_array_doubles_ = 0;
  peak_array_doubles_ = 0;
  // Pooled mode keeps output arrays live across invocations; reset their
  // liveness bookkeeping by releasing everything still held.
  if (plan_.opts.pooled_allocation) {
    for (std::size_t i = 0; i < array_ptr_.size(); ++i) {
      if (array_ptr_[i] != nullptr) {
        pool_.pool_deallocate(array_ptr_[i]);
        array_ptr_[i] = nullptr;
      }
    }
  }

  // A fresh run starts un-aborted even when the previous one tripped;
  // the token itself (still expired?) re-trips on the first poll.
  abort_.store(0, std::memory_order_relaxed);

  if (dependence_scheduled()) {
    run_dependence(externals);
  } else {
    run_barrier(externals);
  }
  // OpenMP forbids exceptions escaping a parallel region, so an aborted
  // run surfaces here, after both schedules have fully drained.
  raise_abort();
  ++runs_timed_;
  ctr_runs_->add(1);
}

View Executor::output_view(int i) const {
  PMG_CHECK(i >= 0 && i < static_cast<int>(plan_.pipe.outputs.size()),
            "bad output index " << i);
  const int func = plan_.pipe.outputs[i];
  return array_view(plan_.array_of_func[func], plan_.pipe.funcs[func], func);
}

// ---------------------------------------------------------------------------
// Shared task kernels. Both schedules execute tiles and slabs through
// these two functions, so the per-point computation — and therefore the
// bit pattern of every result — is schedule-independent by construction.
// ---------------------------------------------------------------------------

void Executor::exec_loops_part(int gi, int p, const Box& part,
                               std::span<const View> externals, int tid) {
  PMG_TRACE_NOW(t0);
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const StagePlan& sp = g.stages[static_cast<std::size_t>(p)];
  const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
  const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
  const View out = array_view(sp.array, f, sp.func);
  Workspace& ws = workspaces_[static_cast<std::size_t>(tid)];
  ws.srcs.assign(f.sources.size(), View{});
  for (std::size_t s = 0; s < f.sources.size(); ++s) {
    ws.srcs[s] = resolve_bind(binds_[gi][p][s], externals, {});
  }
  apply_stage(f, lowered, out, std::span<const View>(ws.srcs), part);
  ctr_slabs_->add(1);
  PMG_TRACE_SPAN_R(SlabExec, t0, gi, sp.func,
                   static_cast<int>(part.dim(0).lo),
                   static_cast<double>(part.count()), trace_req_);
}

void Executor::exec_overlap_tile(int gi, index_t ti,
                                 std::span<const View> externals, int tid) {
  PMG_TRACE_NOW(t0);
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const int nstages = static_cast<int>(g.stages.size());
  const ir::FunctionDecl& anchor_f = plan_.pipe.funcs[g.stages[g.anchor].func];
  const std::vector<index_t>& scratch_off =
      scratch_off_[static_cast<std::size_t>(gi)];
  // Plans built by opt::compile carry the per-tile region cache; keep a
  // recompute fallback for hand-assembled plans (tests).
  const bool cached =
      g.tile_regions_cache.size() ==
      static_cast<std::size_t>(g.tiles.total) * g.stages.size();
  (cached ? ctr_regions_cached_ : ctr_regions_recomputed_)->add(1);

  auto& arena = arena_[static_cast<std::size_t>(tid)];
  Workspace& ws = workspaces_[static_cast<std::size_t>(tid)];
  // Reserved at construction: these stay within capacity (no malloc).
  ws.scratch_views.assign(static_cast<std::size_t>(nstages), View{});

  const Box tile = g.tiles.tile_box(ti);
  const Box* regions;
  if (cached) {
    regions = g.tile_regions_cache.data() +
              static_cast<std::size_t>(ti) * g.stages.size();
  } else {
    ws.regions.assign(static_cast<std::size_t>(nstages), Box{});
    opt::tile_regions(plan_.pipe, g, tile, ws.regions);
    regions = ws.regions.data();
  }

  // Bind scratchpad views for this tile's footprints.
  index_t scratch_doubles = 0;
  for (int p = 0; p < nstages; ++p) {
    const StagePlan& sp = g.stages[p];
    if (sp.scratch_buffer < 0) continue;
    // Always-on: an undersized scratchpad would corrupt the arena
    // silently, so the plan-time bound is enforced per tile.
    PMG_CHECK(regions[p].count() <=
                  static_cast<index_t>(g.scratch_sizes[sp.scratch_buffer]),
              "scratchpad overflow on " << plan_.pipe.funcs[sp.func].name
                                        << ": region " << regions[p]);
    ws.scratch_views[p] = View::over(
        arena.data() + scratch_off[sp.scratch_buffer], regions[p]);
    // Scratchpads inherit the stage's storage dtype; sizes stay in
    // double units (an F32 footprint trivially fits), so nothing about
    // arena layout or reuse classes changes.
    ws.scratch_views[p].dtype = plan_.dtype_of_func(sp.func);
    scratch_doubles += regions[p].count();
  }
  if (scratch_doubles > 0) {
    PMG_TRACE_INSTANT_R(ScratchBind, gi, -1, static_cast<int>(ti),
                        static_cast<double>(scratch_doubles) * 8.0,
                        trace_req_);
  }

  for (int p = 0; p < nstages; ++p) {
    const StagePlan& sp = g.stages[p];
    const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
    const ir::LoweredFunc& lowered = plan_.lowered[sp.func];
    ws.srcs.assign(f.sources.size(), View{});
    for (std::size_t s = 0; s < f.sources.size(); ++s) {
      ws.srcs[s] = resolve_bind(binds_[gi][p][s], externals,
                                ws.scratch_views);
    }
    if (sp.scratch_buffer >= 0) {
      apply_stage(f, lowered, ws.scratch_views[p],
                  std::span<const View>(ws.srcs), regions[p]);
      if (sp.array >= 0) {
        // Live-out with in-group consumers: publish the owned
        // partition slice (disjoint across tiles).
        const Box own = opt::owned_region(f, sp.rel, tile, anchor_f.domain);
        copy_view(array_view(sp.array, f, sp.func), ws.scratch_views[p], own);
      }
    } else {
      // The anchor (and any consumer-less live-out) writes its
      // disjoint region straight to the full array.
      apply_stage(f, lowered, array_view(sp.array, f, sp.func),
                  std::span<const View>(ws.srcs), regions[p]);
    }
  }
  ctr_tiles_->add(1);
  PMG_TRACE_SPAN_R(TileExec, t0, gi, -1, static_cast<int>(ti),
                   static_cast<double>(tile.count()), trace_req_);
}

// ---------------------------------------------------------------------------
// Barrier schedule: one fork/join per group, groups strictly in order.
// ---------------------------------------------------------------------------

void Executor::run_barrier(std::span<const View> externals) {
  for (std::size_t gi = 0; gi < plan_.groups.size(); ++gi) {
    // Group-boundary poll; the group bodies below also poll per
    // tile/slab, so a trip inside a large group skips its remaining
    // chunks rather than finishing the group.
    if (poll_abort()) return;
    const GroupPlan& g = plan_.groups[gi];
    for (const StagePlan& sp : g.stages) {
      if (sp.array >= 0) ensure_array(sp.array);
    }
    if (g.exec == GroupExec::TimeTiled) ensure_array(g.time_temp_array);

    PMG_TRACE_NOW(g0);
    // Hardware-counter sample around the group body; counters cover the
    // calling thread, so a meaningful roofline runs single-threaded.
    const bool sample_perf = perf_ != nullptr && perf_->available();
    if (sample_perf) perf_->start();
    Timer gt;
    switch (g.exec) {
      case GroupExec::Loops:
        run_loops_group(static_cast<int>(gi), externals);
        break;
      case GroupExec::OverlapTiled:
        run_overlap_group(static_cast<int>(gi), externals);
        break;
      case GroupExec::TimeTiled:
        run_timetile_group(static_cast<int>(gi), externals);
        break;
    }
    const double dt = gt.elapsed();
    if (sample_perf) {
      const obs::PerfCounters::Sample s = perf_->stop();
      if (s.ok()) {
        perf_cycles_[gi] += s.cycles;
        perf_instr_[gi] += s.instructions;
        perf_llc_[gi] += s.llc_misses >= 0 ? s.llc_misses : 0;
        perf_seconds_[gi] += dt;
      }
    }
    PMG_TRACE_SPAN_R(GroupExec, g0, static_cast<int>(gi), -1,
                     static_cast<int>(gi), 0.0, trace_req_);
    group_seconds_[gi] += dt;
    hist_group_ns_[gi]->record(static_cast<std::int64_t>(dt * 1e9));
    // Fused groups execute their stages interleaved per tile, so stage
    // attribution lands on the anchor (Loops groups attribute per stage
    // inside run_loops_group).
    if (g.exec != GroupExec::Loops) {
      stage_seconds_[static_cast<std::size_t>(g.stages[g.anchor].func)] += dt;
    }
    // Fault site: poison this group's freshest full-array result with a
    // NaN at the interior midpoint (a point every downstream stencil
    // reads), modelling a corrupted kernel output. Compiled in always;
    // one relaxed atomic load when nothing is armed.
    if (fault::should_fail(fault::kKernelOutput)) {
      obs::Metrics::instance().counter("fault.kernel_output").add(1);
      PMG_TRACE_INSTANT(FaultInjected, static_cast<int>(gi), -1,
                        /*site=*/1, 0.0);
      for (auto it = g.stages.rbegin(); it != g.stages.rend(); ++it) {
        if (it->array < 0) continue;
        const ir::FunctionDecl& f = plan_.pipe.funcs[it->func];
        View v = array_view(it->array, f, it->func);
        std::array<index_t, poly::kMaxDims> mid{};
        for (int d = 0; d < f.ndim; ++d) {
          mid[d] = (f.interior.dim(d).lo + f.interior.dim(d).hi) / 2;
        }
        v.store_at(mid, std::numeric_limits<double>::quiet_NaN());
        break;
      }
    }
    // Fault site: silent data corruption. Flip the top exponent bit of
    // the same midpoint value — the result stays finite (so the health
    // scan that catches NaN poisoning sees nothing) but is wrong by
    // hundreds of orders of magnitude, the signature of a cosmic-ray
    // bit-flip in a register or DIMM. Only the residual-jump guard in
    // guarded_solve can catch it.
    if (fault::should_fail(fault::kKernelBitflip)) {
      obs::Metrics::instance().counter("fault.kernel_bitflip").add(1);
      PMG_TRACE_INSTANT(FaultInjected, static_cast<int>(gi), -1,
                        /*site=*/5, 0.0);
      for (auto it = g.stages.rbegin(); it != g.stages.rend(); ++it) {
        if (it->array < 0) continue;
        const ir::FunctionDecl& f = plan_.pipe.funcs[it->func];
        View v = array_view(it->array, f, it->func);
        std::array<index_t, poly::kMaxDims> mid{};
        for (int d = 0; d < f.ndim; ++d) {
          mid[d] = (f.interior.dim(d).lo + f.interior.dim(d).hi) / 2;
        }
        index_t off = 0;
        for (int d = 0; d < f.ndim; ++d) {
          off += (mid[d] - v.origin[d]) * v.stride[d];
        }
        if (v.dtype == grid::DType::F32) {
          // Flip the top exponent bit of the binary32 value: finite but
          // wrong by ~2^64, the same signature scaled to float width.
          float& x = v.f32()[off];
          std::uint32_t bits;
          std::memcpy(&bits, &x, sizeof(bits));
          bits ^= (1U << 30);
          std::memcpy(&x, &bits, sizeof(bits));
        } else {
          double& x = v.ptr[off];
          std::uint64_t bits;
          std::memcpy(&bits, &x, sizeof(bits));
          bits ^= (1ULL << 62);
          std::memcpy(&x, &bits, sizeof(bits));
        }
        break;
      }
    }
    if (plan_.opts.pooled_allocation) {
      // pool_deallocate as soon as all uses of an array are finished
      // (§3.2.3) — but never the program outputs (filtered at
      // construction).
      release_arrays(releasable_after_group_[gi]);
    }
  }
  if (perf_ != nullptr && perf_->available()) ++perf_runs_;
}

void Executor::run_loops_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  for (std::size_t p = 0; p < g.stages.size(); ++p) {
    const StagePlan& sp = g.stages[p];
    const ir::FunctionDecl& f = plan_.pipe.funcs[sp.func];
    Timer st;
    if (poll_abort()) return;
    // Grain fast path: a coarse level is a handful of rows — the
    // fork/join alone dwarfs the work, so run it on the calling thread.
    if (f.domain.count() < plan_.opts.serial_grain) {
      exec_loops_part(gi, static_cast<int>(p), f.domain, externals, 0);
      stage_seconds_[static_cast<std::size_t>(sp.func)] += st.elapsed();
      continue;
    }
    // Straightforward parallelization: OpenMP on the outermost grid
    // dimension, in slabs to amortize per-call setup.
    const poly::Interval d0 = f.domain.dim(0);
    const index_t slab = std::max<index_t>(
        1, d0.size() / (static_cast<index_t>(max_threads()) * 8));
    const index_t nslabs = poly::ceildiv(d0.size(), slab);
    note_parallel_region();
#pragma omp parallel for schedule(static)
    for (index_t si = 0; si < nslabs; ++si) {
      // Slab-granular poll: omp for cannot break, so aborted slabs
      // just skip their body (the outputs are unspecified anyway).
      if (!poll_abort()) {
        Box part = f.domain;
        part.dim(0) = poly::Interval{
            d0.lo + si * slab, std::min(d0.lo + (si + 1) * slab - 1, d0.hi)};
        exec_loops_part(gi, static_cast<int>(p), part, externals,
                        thread_id());
      }
      tsan_join_release();
    }
    tsan_join_acquire();
    stage_seconds_[static_cast<std::size_t>(sp.func)] += st.elapsed();
  }
}

void Executor::run_overlap_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const poly::TileGrid& tiles = g.tiles;

  // The collapse(d) clause flattens the tile loops; a flat index loop is
  // its runtime equivalent. Without collapse only the outermost tile
  // dimension is parallel and inner tile loops run sequentially within
  // each chunk — same work, coarser chunking.
  const index_t parallel_extent =
      g.collapse_depth > 1 ? tiles.total : tiles.ntiles[0];
  const index_t tiles_per_chunk =
      g.collapse_depth > 1 ? 1
                           : tiles.total / std::max<index_t>(1, tiles.ntiles[0]);

  note_parallel_region();
#pragma omp parallel
  {
    const int tid = thread_id();
#pragma omp for schedule(static)
    for (index_t pi = 0; pi < parallel_extent; ++pi) {
      for (index_t ti = pi * tiles_per_chunk; ti < (pi + 1) * tiles_per_chunk;
           ++ti) {
        // Tile-granular poll — bounds deadline overshoot to one tile.
        if (poll_abort()) break;
        exec_overlap_tile(gi, ti, externals, tid);
      }
    }
    tsan_join_release();
  }
  tsan_join_acquire();
}

void Executor::run_timetile_group(int gi, std::span<const View> externals) {
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  const StagePlan& last = g.stages.back();
  const ir::FunctionDecl& step_fn = plan_.pipe.funcs[g.stages.front().func];
  const int steps = static_cast<int>(g.stages.size());
  const std::vector<ChainStep>& chain = chain_[static_cast<std::size_t>(gi)];

  // The whole chain shares one dtype (validate enforces it), so the
  // ping-pong pair is tagged by the first step's function.
  const View out = array_view(last.array, step_fn, g.stages.front().func);
  const View tmp =
      array_view(g.time_temp_array, step_fn, g.stages.front().func);
  View bufs[2];
  bufs[steps & 1] = out;
  bufs[1 - (steps & 1)] = tmp;

  // Bind the step's time-invariant sources; slot 0 (the previous level)
  // is managed by the sweep.
  stage_srcs_.assign(step_fn.sources.size(), View{});
  const View v0 = resolve_bind(binds_[gi][0][0], externals, {});
  for (std::size_t s = 1; s < step_fn.sources.size(); ++s) {
    stage_srcs_[s] = resolve_bind(binds_[gi][0][s], externals, {});
  }

  // Level 0 into bufs[0]; ghost rings of both buffers obey the step's
  // boundary rule once (smoother steps never move their ghost ring).
  copy_view(bufs[0], v0, step_fn.domain);
  for (View b : {bufs[0], bufs[1]}) {
    for_each_boundary_slab(step_fn.domain, step_fn.interior,
                           [&](const Box& slab) {
                             if (step_fn.boundary == ir::BoundaryKind::Zero) {
                               fill_view(b, slab, 0.0);
                             } else {
                               copy_view(b, v0, slab);
                             }
                           });
  }

  // The sweep is one collective unit: poll once before it (overshoot is
  // bounded by one smoother-chain sweep, the schedule's natural granule).
  if (poll_abort()) return;
  TimeTileParams params{g.dtile_H, g.dtile_W};
  PMG_TRACE_NOW(t0);
  time_tiled_sweep(chain, bufs, stage_srcs_, params);
  PMG_TRACE_SPAN_R(TimeTileExec, t0, gi, g.stages.front().func, gi,
                   static_cast<double>(steps), trace_req_);
}

// ---------------------------------------------------------------------------
// Dependence schedule: one persistent parallel region per run().
//
// Liveness argument, in brief: every task's predecessor counter is
// decremented exactly once per explicit edge plus exactly once when its
// node's gate opens; the counter therefore reaches zero exactly once and
// the task enters the queue exactly once. Gates open in node order
// (node 0 and 1 up front, node k+2 when the completion frontier passes
// node k), and the frontier always advances because the thread finishing
// a node's last task advances it before reporting the task complete.
// ---------------------------------------------------------------------------

void Executor::reset_sched_state() {
  const opt::SchedGraph& sg = plan_.sched;
  for (std::size_t t = 0; t < pred_.size(); ++t) {
    // +1 is the gate predecessor (prefix rule).
    pred_[t].store(sg.pred_count[t] + 1, std::memory_order_relaxed);
    queue_[t].store(0, std::memory_order_relaxed);
  }
  qhead_.store(0, std::memory_order_relaxed);
  qtail_.store(0, std::memory_order_relaxed);
  for (std::size_t ni = 0; ni < node_remaining_.size(); ++ni) {
    node_remaining_[ni].store(sg.nodes[ni].ntasks,
                              std::memory_order_relaxed);
    node_complete_[ni].store(0, std::memory_order_relaxed);
  }
  frontier_.store(0, std::memory_order_relaxed);
  for (auto& pc : phase_completed_) pc.store(0, std::memory_order_relaxed);
  for (auto& ge : group_ensured_) ge.store(0, std::memory_order_relaxed);
  std::fill(node_seconds_acc_.begin(), node_seconds_acc_.end(), 0.0);
}

void Executor::ensure_group_arrays_locked(int gi) {
  if (group_ensured_[static_cast<std::size_t>(gi)].load(
          std::memory_order_relaxed)) {
    return;
  }
  for (const StagePlan& sp : plan_.groups[static_cast<std::size_t>(gi)].stages) {
    if (sp.array >= 0) ensure_array(sp.array);
  }
  // Release pairs with the acquire fast path in ensure_group_arrays: a
  // thread seeing 1 sees the array_ptr_ stores above.
  group_ensured_[static_cast<std::size_t>(gi)].store(
      1, std::memory_order_release);
}

void Executor::ensure_group_arrays(int gi) {
  if (group_ensured_[static_cast<std::size_t>(gi)].load(
          std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  ensure_group_arrays_locked(gi);
}

void Executor::push_task(index_t t) {
  const index_t slot = qtail_.fetch_add(1, std::memory_order_relaxed);
  // Stored +1 so an unpublished slot reads as zero.
  queue_[static_cast<std::size_t>(slot)].store(t + 1,
                                               std::memory_order_release);
}

bool Executor::pop_task(index_t& out) {
  index_t h = qhead_.load(std::memory_order_relaxed);
  while (true) {
    if (h >= qtail_.load(std::memory_order_acquire)) return false;
    if (qhead_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      // The producer bumps qtail before publishing the slot: spin for
      // the release-store (bounded — the producer is between the two).
      index_t v;
      while ((v = queue_[static_cast<std::size_t>(h)].load(
                  std::memory_order_acquire)) == 0) {
        cpu_pause();
      }
      out = v - 1;
      return true;
    }
  }
}

void Executor::open_gate(index_t node) {
  const opt::SchedGraph& sg = plan_.sched;
  if (node >= static_cast<index_t>(sg.nodes.size())) return;
  const SchedNode& n = sg.nodes[static_cast<std::size_t>(node)];
  // Collective nodes are ordered by their phase's barriers.
  if (n.collective) return;
  ctr_gate_opens_->add(1);
  PMG_TRACE_INSTANT_R(GateOpen, n.group, n.stage, static_cast<int>(node),
                      static_cast<double>(n.ntasks), trace_req_);
  for (index_t t = n.task_base; t < n.task_base + n.ntasks; ++t) {
    if (pred_[static_cast<std::size_t>(t)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      push_task(t);
    }
  }
}

void Executor::retire_node(index_t k) {
  const opt::SchedGraph& sg = plan_.sched;
  std::lock_guard<std::mutex> lk(pool_mu_);
  // Pool releases stay sound under overlap: an array released here had
  // its last use in a group whose nodes all sit at or before the
  // frontier, and the only nodes still in flight are at most one past it
  // — by definition in a strictly later group than the released array's
  // last reader.
  const int g = sg.nodes[static_cast<std::size_t>(k)].group;
  const bool group_done =
      k + 1 == static_cast<index_t>(sg.nodes.size()) ||
      sg.nodes[static_cast<std::size_t>(k) + 1].group != g;
  if (group_done && plan_.opts.pooled_allocation) {
    release_arrays(releasable_after_group_[static_cast<std::size_t>(g)]);
  }
  PMG_TRACE_INSTANT_R(NodeRetire, g, -1, static_cast<int>(k), 0.0,
                      trace_req_);
  // The frontier reached k+1, so the gate of node k+2 may open.
  open_gate(k + 2);
}

void Executor::advance_frontier() {
  const index_t nnodes = static_cast<index_t>(plan_.sched.nodes.size());
  index_t f = frontier_.load(std::memory_order_acquire);
  while (f < nnodes &&
         node_complete_[static_cast<std::size_t>(f)].load(
             std::memory_order_acquire) != 0) {
    if (frontier_.compare_exchange_weak(f, f + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      retire_node(f);
      ++f;
    }
  }
}

void Executor::node_done(int node) {
  node_complete_[static_cast<std::size_t>(node)].store(
      1, std::memory_order_release);
  advance_frontier();
}

void Executor::finish_task(index_t t, int node) {
  const opt::SchedGraph& sg = plan_.sched;
  for (index_t k = sg.succ_off[static_cast<std::size_t>(t)];
       k < sg.succ_off[static_cast<std::size_t>(t) + 1]; ++k) {
    const index_t s = sg.succ[static_cast<std::size_t>(k)];
    // Collective successors never enter the queue — the phase barrier
    // structure runs them; their counter still drains for uniformity.
    if (pred_[static_cast<std::size_t>(s)].fetch_sub(
            1, std::memory_order_acq_rel) == 1 &&
        !sg.nodes[static_cast<std::size_t>(task_node_[
            static_cast<std::size_t>(s)])].collective) {
      push_task(s);
    }
  }
  if (node_remaining_[static_cast<std::size_t>(node)].fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    node_done(node);
  }
  // Last: the phase exit test must observe the retirement chain above.
  phase_completed_[static_cast<std::size_t>(phase_of_node_[
      static_cast<std::size_t>(node)])]
      .fetch_add(1, std::memory_order_release);
}

void Executor::exec_task(index_t t, std::span<const View> externals,
                         int tid) {
  const int ni = task_node_[static_cast<std::size_t>(t)];
  const SchedNode& n = plan_.sched.nodes[static_cast<std::size_t>(ni)];
  // Task-granular poll. An aborted task skips its kernel body (and its
  // group's allocations) but MUST still run finish_task: successor
  // releases, node retirement and the phase-exit counter are what let
  // every thread leave the parallel region — the abort drains the
  // protocol instead of abandoning it.
  if (poll_abort()) {
    finish_task(t, ni);
    return;
  }
  ensure_group_arrays(n.group);
  Timer tm;
  if (n.stage >= 0) {
    const GroupPlan& g = plan_.groups[static_cast<std::size_t>(n.group)];
    const ir::FunctionDecl& f =
        plan_.pipe.funcs[g.stages[static_cast<std::size_t>(n.stage)].func];
    Box part = f.domain;
    if (!n.serial) {
      const index_t lt = t - n.task_base;
      const poly::Interval d0 = f.domain.dim(0);
      part.dim(0) = poly::Interval{
          d0.lo + lt * n.slab,
          std::min(d0.lo + (lt + 1) * n.slab - 1, d0.hi)};
    }
    exec_loops_part(n.group, n.stage, part, externals, tid);
  } else if (n.serial) {
    const GroupPlan& g = plan_.groups[static_cast<std::size_t>(n.group)];
    for (index_t ti = 0; ti < g.tiles.total; ++ti) {
      if (poll_abort()) break;  // serial chains still stop per tile
      exec_overlap_tile(n.group, ti, externals, tid);
    }
  } else {
    exec_overlap_tile(n.group, t - n.task_base, externals, tid);
  }
  node_seconds_acc_[static_cast<std::size_t>(tid) *
                        plan_.sched.nodes.size() +
                    static_cast<std::size_t>(ni)] += tm.elapsed();
  finish_task(t, ni);
}

void Executor::task_loop(int phase, std::span<const View> externals,
                         int tid) {
  const index_t target = phase_total_[static_cast<std::size_t>(phase)];
  auto& completed = phase_completed_[static_cast<std::size_t>(phase)];
  int idle = 0;
  // Queue telemetry stays in locals inside the loop (no shared-cacheline
  // traffic per task) and flushes once per phase; an idle episode between
  // two pops becomes one QueueWait span with its spin count as value.
  std::int64_t pops = 0;
  std::int64_t spins = 0;
  std::int64_t wait_t0 = -1;
  std::int64_t wait_spins = 0;
  while (completed.load(std::memory_order_acquire) < target) {
    index_t t;
    if (pop_task(t)) {
      idle = 0;
      ++pops;
      if (wait_t0 >= 0) {
        PMG_TRACE_SPAN_R(QueueWait, wait_t0, -1, phase, tid,
                         static_cast<double>(wait_spins), trace_req_);
        wait_t0 = -1;
        wait_spins = 0;
      }
      exec_task(t, externals, tid);
      continue;
    }
    ++spins;
    ++wait_spins;
    if (wait_t0 < 0 && PMG_TRACE_ACTIVE()) wait_t0 = obs::trace_now_ns();
    if (++idle < 128) {
      cpu_pause();
    } else if (idle < 1024) {
      // Oversubscribed teams (more threads than cores) must yield or the
      // spinners starve the one thread holding real work.
      yield_thread();
    } else {
      // Still nothing after ~1k attempts: the remaining work is a serial
      // chain on some other thread. Sleep instead of yield-storming — on
      // an oversubscribed host a constantly-yielding spinner still takes
      // its scheduler timeslices from the worker.
      idle_sleep();
      idle = 128;  // re-enter the yield band, skip the pause burst
    }
  }
  if (wait_t0 >= 0) {
    // Starved until the phase drained: close the episode at phase exit.
    PMG_TRACE_SPAN_R(QueueWait, wait_t0, -1, phase, tid,
                     static_cast<double>(wait_spins), trace_req_);
  }
  queue_pops_.fetch_add(pops, std::memory_order_relaxed);
  queue_spins_.fetch_add(spins, std::memory_order_relaxed);
  ctr_pops_->add(pops);
  ctr_spins_->add(spins);
}

void Executor::run_collective_phase(const Phase& ph,
                                    std::span<const View> externals,
                                    int tid) {
  const int ni = ph.first_node;
  const SchedNode& n = plan_.sched.nodes[static_cast<std::size_t>(ni)];
  const int gi = n.group;
  const GroupPlan& g = plan_.groups[static_cast<std::size_t>(gi)];
  Timer tm;
  // The team-wide sweep has internal barriers, so every thread must make
  // the same run/skip decision. Only tid 0 polls, before the barrier;
  // after the barrier all threads read the (now stable for this phase)
  // abort flag, so the team agrees by construction.
  if (tid == 0) poll_abort();
  if (tid == 0 && abort_.load(std::memory_order_relaxed) == 0) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      ensure_group_arrays_locked(gi);
      ensure_array(g.time_temp_array);
    }
    // Prologue identical to the barrier path's run_timetile_group.
    const StagePlan& last = g.stages.back();
    const ir::FunctionDecl& step_fn = plan_.pipe.funcs[g.stages.front().func];
    const int steps = static_cast<int>(g.stages.size());
    time_bufs_[steps & 1] =
        array_view(last.array, step_fn, g.stages.front().func);
    time_bufs_[1 - (steps & 1)] =
        array_view(g.time_temp_array, step_fn, g.stages.front().func);
    stage_srcs_.assign(step_fn.sources.size(), View{});
    const View v0 = resolve_bind(binds_[gi][0][0], externals, {});
    for (std::size_t s = 1; s < step_fn.sources.size(); ++s) {
      stage_srcs_[s] = resolve_bind(binds_[gi][0][s], externals, {});
    }
    copy_view(time_bufs_[0], v0, step_fn.domain);
    for (View b : {time_bufs_[0], time_bufs_[1]}) {
      for_each_boundary_slab(
          step_fn.domain, step_fn.interior, [&](const Box& slab) {
            if (step_fn.boundary == ir::BoundaryKind::Zero) {
              fill_view(b, slab, 0.0);
            } else {
              copy_view(b, v0, slab);
            }
          });
    }
  }
  team_barrier();
  if (abort_.load(std::memory_order_acquire) == 0) {
    TimeTileParams params{g.dtile_H, g.dtile_W};
    PMG_TRACE_NOW(t0);
    time_tiled_sweep_team(chain_[static_cast<std::size_t>(gi)], time_bufs_,
                          stage_srcs_, params);
    PMG_TRACE_SPAN_R(TimeTileExec, t0, gi, g.stages.front().func, gi,
                     static_cast<double>(g.stages.size()), trace_req_);
  }
  team_barrier();
  if (tid == 0) {
    node_seconds_acc_[static_cast<std::size_t>(ni)] += tm.elapsed();
    finish_task(n.task_base, ni);
  }
}

void Executor::run_dependence(std::span<const View> externals) {
  reset_sched_state();
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    open_gate(0);
    open_gate(1);
  }
  // Cap the team at the capacity resolved at construction (workspaces,
  // arenas, timer slots are per-thread).
  const int nteam =
      std::min(max_threads(), static_cast<int>(workspaces_.size()));
  note_parallel_region();
#pragma omp parallel num_threads(nteam)
  {
    const int tid = thread_id();
    for (std::size_t p = 0; p < phases_.size(); ++p) {
      const Phase& ph = phases_[p];
      // One barrier per phase boundary; in the common all-tile pipeline
      // there is a single phase, i.e. one barrier per run.
#pragma omp barrier
      if (ph.collective) {
        run_collective_phase(ph, externals, tid);
      } else {
        task_loop(static_cast<int>(p), externals, tid);
      }
    }
    tsan_join_release();
  }
  tsan_join_acquire();
  // Fold the per-thread task timers into the public counters. Dependence
  // runs attribute CPU seconds (groups overlap in wall time by design).
  const std::size_t nnodes = plan_.sched.nodes.size();
  std::fill(dep_group_run_seconds_.begin(), dep_group_run_seconds_.end(),
            0.0);
  for (std::size_t ni = 0; ni < nnodes; ++ni) {
    double s = 0.0;
    for (std::size_t tid = 0; tid < workspaces_.size(); ++tid) {
      s += node_seconds_acc_[tid * nnodes + ni];
    }
    if (s == 0.0) continue;
    const SchedNode& n = plan_.sched.nodes[ni];
    const GroupPlan& g = plan_.groups[static_cast<std::size_t>(n.group)];
    group_seconds_[static_cast<std::size_t>(n.group)] += s;
    dep_group_run_seconds_[static_cast<std::size_t>(n.group)] += s;
    const int func = n.stage >= 0
                         ? g.stages[static_cast<std::size_t>(n.stage)].func
                         : g.stages[static_cast<std::size_t>(g.anchor)].func;
    stage_seconds_[static_cast<std::size_t>(func)] += s;
  }
  // One histogram observation per group per run — same grain as the
  // barrier path, so the per-stage latency distributions are
  // schedule-independent in shape.
  for (std::size_t gi = 0; gi < dep_group_run_seconds_.size(); ++gi) {
    if (dep_group_run_seconds_[gi] > 0.0) {
      hist_group_ns_[gi]->record(
          static_cast<std::int64_t>(dep_group_run_seconds_[gi] * 1e9));
    }
  }
}

}  // namespace polymg::runtime
