#include "polymg/runtime/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <type_traits>
#include <vector>

#include "polymg/common/error.hpp"

namespace polymg::runtime {

namespace {

using poly::floordiv;

/// Loop bounds of one dimension after applying (step, phase) lattice
/// restriction: first point >= lo with x ≡ phase (mod step), point count.
struct DimLoop {
  index_t start = 0;
  index_t count = 0;
  index_t step = 1;
};

DimLoop dim_loop(const poly::Interval& iv, index_t step, index_t phase) {
  DimLoop dl;
  dl.step = step;
  if (iv.empty()) return dl;
  index_t start = iv.lo + ((phase - iv.lo) % step + step) % step;
  if (start > iv.hi) return dl;
  dl.start = start;
  dl.count = (iv.hi - start) / step + 1;
  return dl;
}

/// Map the ndim logical loops onto three loop levels, innermost (the
/// contiguous dimension) at level 2. Returns false when any loop is
/// empty. lo_dim is the logical dim of loop level 0 minus, i.e. logical
/// dim d executes at level d + (3 - ndim).
bool make_levels(const Box& region, int ndim,
                 const std::array<index_t, 3>& step,
                 const std::array<index_t, 3>& phase, DimLoop dl[3]) {
  for (int d = 0; d < ndim; ++d) {
    dl[d] = dim_loop(region.dim(d), step[d], phase[d]);
    if (dl[d].count == 0) return false;
  }
  if (ndim == 2) {
    dl[2] = dl[1];
    dl[1] = dl[0];
    dl[0] = DimLoop{0, 1, 1};
  } else if (ndim == 1) {
    dl[2] = dl[0];
    dl[1] = DimLoop{0, 1, 1};
    dl[0] = DimLoop{0, 1, 1};
  }
  return true;
}

/// One flattened tap of the fast path: a base pointer (for u == 0) plus
/// per-loop-counter strides. TIn is the source element type; coeffs and
/// all accumulation stay double regardless.
template <typename TIn>
struct FlatTap {
  const TIn* base;
  double coeff;
  index_t s0, s1, s2;
};

/// Taps of a cached linear-form instance fit on the stack; lowering
/// produces at most a few dozen taps (NAS rprj3 peaks at 27).
inline constexpr int kMaxStackTaps = 64;

template <int NT, typename TOut, typename TIn>
inline void row_kernel_fixed(TOut* __restrict__ out, index_t os2,
                             index_t count, double cst,
                             const FlatTap<TIn>* __restrict__ taps) {
  // All-unit inner strides: the compiler can vectorize this form.
  bool unit = os2 == 1;
  for (int t = 0; t < NT; ++t) unit = unit && taps[t].s2 == 1;
  if (unit) {
    for (index_t u = 0; u < count; ++u) {
      double acc = cst;
      for (int t = 0; t < NT; ++t) acc += taps[t].coeff * taps[t].base[u];
      out[u] = static_cast<TOut>(acc);
    }
  } else {
    for (index_t u = 0; u < count; ++u) {
      double acc = cst;
      for (int t = 0; t < NT; ++t) {
        acc += taps[t].coeff * taps[t].base[u * taps[t].s2];
      }
      out[u * os2] = static_cast<TOut>(acc);
    }
  }
}

/// Generic tap counts (variable-coefficient 3-d stencils land on 10–18)
/// in blocks of four taps: each pass is a clean 4-term axpy the
/// vectorizer handles, instead of a variable-trip-count inner tap loop.
/// Double output only — the multi-pass form accumulates *into* the
/// output row, which would round per pass on a float row.
template <typename TIn>
void row_kernel_blocked4(int nt, double* __restrict__ out, index_t os2,
                         index_t count, double cst,
                         const FlatTap<TIn>* __restrict__ taps) {
  bool unit = os2 == 1;
  for (int t = 0; t < nt; ++t) unit = unit && taps[t].s2 == 1;
  if (!unit) {
    for (index_t u = 0; u < count; ++u) {
      double acc = cst;
      for (int t = 0; t < nt; ++t) {
        acc += taps[t].coeff * taps[t].base[u * taps[t].s2];
      }
      out[u * os2] = acc;
    }
    return;
  }
  for (index_t u = 0; u < count; ++u) out[u] = cst;
  int t = 0;
  for (; t + 4 <= nt; t += 4) {
    const TIn* __restrict__ b0 = taps[t + 0].base;
    const TIn* __restrict__ b1 = taps[t + 1].base;
    const TIn* __restrict__ b2 = taps[t + 2].base;
    const TIn* __restrict__ b3 = taps[t + 3].base;
    const double c0 = taps[t + 0].coeff, c1 = taps[t + 1].coeff;
    const double c2 = taps[t + 2].coeff, c3 = taps[t + 3].coeff;
    for (index_t u = 0; u < count; ++u) {
      out[u] += c0 * b0[u] + c1 * b1[u] + c2 * b2[u] + c3 * b3[u];
    }
  }
  for (; t < nt; ++t) {
    const TIn* __restrict__ b = taps[t].base;
    const double c = taps[t].coeff;
    for (index_t u = 0; u < count; ++u) out[u] += c * b[u];
  }
}

/// Variable-tap-count scalar loop with a double accumulator: the float-
/// output counterpart of row_kernel_blocked4 (one rounding per point).
template <typename TIn>
void row_kernel_generic_f32(int nt, float* __restrict__ out, index_t os2,
                            index_t count, double cst,
                            const FlatTap<TIn>* __restrict__ taps) {
  for (index_t u = 0; u < count; ++u) {
    double acc = cst;
    for (int t = 0; t < nt; ++t) {
      acc += taps[t].coeff * taps[t].base[u * taps[t].s2];
    }
    out[u * os2] = static_cast<float>(acc);
  }
}

template <typename TOut, typename TIn>
void row_kernel(int nt, TOut* out, index_t os2, index_t count, double cst,
                const FlatTap<TIn>* taps) {
  switch (nt) {
    case 1: row_kernel_fixed<1>(out, os2, count, cst, taps); return;
    case 2: row_kernel_fixed<2>(out, os2, count, cst, taps); return;
    case 3: row_kernel_fixed<3>(out, os2, count, cst, taps); return;
    case 4: row_kernel_fixed<4>(out, os2, count, cst, taps); return;
    case 5: row_kernel_fixed<5>(out, os2, count, cst, taps); return;
    case 6: row_kernel_fixed<6>(out, os2, count, cst, taps); return;
    case 7: row_kernel_fixed<7>(out, os2, count, cst, taps); return;
    case 8: row_kernel_fixed<8>(out, os2, count, cst, taps); return;
    case 9: row_kernel_fixed<9>(out, os2, count, cst, taps); return;
    // The NAS-MG 27-point family: psinv (19+1), resid (21+1), rprj3 (27).
    case 19: row_kernel_fixed<19>(out, os2, count, cst, taps); return;
    case 20: row_kernel_fixed<20>(out, os2, count, cst, taps); return;
    case 21: row_kernel_fixed<21>(out, os2, count, cst, taps); return;
    case 22: row_kernel_fixed<22>(out, os2, count, cst, taps); return;
    case 27: row_kernel_fixed<27>(out, os2, count, cst, taps); return;
    case 28: row_kernel_fixed<28>(out, os2, count, cst, taps); return;
    // 10–18 (and anything past 28) run tap-blocked rather than falling
    // back to the scalar variable-count loop.
    default:
      if constexpr (std::is_same_v<TOut, double>) {
        row_kernel_blocked4(nt, out, os2, count, cst, taps);
      } else {
        row_kernel_generic_f32(nt, out, os2, count, cst, taps);
      }
      return;
  }
}

/// Typed data pointer of a view (the dtype tag's element type).
template <typename T>
T* data_ptr(const View& v) {
  if constexpr (std::is_same_v<T, float>) {
    return v.f32();
  } else {
    return v.ptr;
  }
}

/// Fast path applies when every (input, dim) access stays affine in the
/// loop counter: floor(num·(start + step·u)/den) is affine iff den
/// divides num·step.
bool fast_path_ok(const ir::LinearForm& lf, int ndim,
                  const std::array<index_t, 3>& step) {
  for (const ir::InputTaps& it : lf.inputs) {
    for (int d = 0; d < ndim; ++d) {
      if ((it.num[d] * step[d]) % it.den[d] != 0) return false;
    }
  }
  return true;
}

template <typename TOut, typename TIn>
void apply_linear_fast(const ir::LinearForm& lf, View out,
                       std::span<const View> srcs, const Box& region,
                       const std::array<index_t, 3>& step,
                       const std::array<index_t, 3>& phase) {
  const int ndim = out.ndim;
  DimLoop dl[3];
  if (!make_levels(region, ndim, step, phase, dl)) return;
  const int lo_dim = 3 - ndim;  // logical dim of loop level 0

  // Flatten taps with per-level strides and u==0 base pointers. The
  // steady-state path stays allocation-free: taps live on the stack up
  // to kMaxStackTaps, with a heap fallback for outsized forms.
  FlatTap<TIn> taps_stack[kMaxStackTaps];
  std::vector<FlatTap<TIn>> taps_heap;
  const int nt = lf.total_taps();
  FlatTap<TIn>* taps = taps_stack;
  if (nt > kMaxStackTaps) {
    taps_heap.resize(static_cast<std::size_t>(nt));
    taps = taps_heap.data();
  }
  int ti = 0;
  for (const ir::InputTaps& it : lf.inputs) {
    const View& src = srcs[it.slot];
    PMG_DCHECK(src.ptr != nullptr, "unbound source view");
    const TIn* src_data = data_ptr<TIn>(src);
    index_t in_stride[3] = {0, 0, 0};  // per loop level
    index_t base0 = 0;                 // input offset at u == 0 (no taps)
    for (int lvl = 0; lvl < 3; ++lvl) {
      const int d = lvl - lo_dim;
      if (d < 0) continue;
      const index_t num = it.num[d], den = it.den[d];
      in_stride[lvl] = (num * dl[lvl].step / den) * src.stride[d];
      base0 +=
          (floordiv(num * dl[lvl].start, den) - src.origin[d]) * src.stride[d];
    }
    for (const ir::Tap& t : it.taps) {
      FlatTap<TIn>& ft = taps[ti++];
      index_t off = base0;
      for (int d = 0; d < ndim; ++d) off += t.off[d] * src.stride[d];
      ft.base = src_data + off;
      ft.coeff = t.coeff;
      ft.s0 = in_stride[0];
      ft.s1 = in_stride[1];
      ft.s2 = in_stride[2];
    }
  }

  index_t out_stride[3] = {0, 0, 0};
  index_t out_base = 0;
  for (int lvl = 0; lvl < 3; ++lvl) {
    const int d = lvl - lo_dim;
    if (d < 0) continue;
    out_stride[lvl] = dl[lvl].step * out.stride[d];
    out_base += (dl[lvl].start - out.origin[d]) * out.stride[d];
  }

  FlatTap<TIn> row_stack[kMaxStackTaps];
  std::vector<FlatTap<TIn>> row_heap;
  FlatTap<TIn>* row = row_stack;
  if (nt > kMaxStackTaps) {
    row_heap.resize(static_cast<std::size_t>(nt));
    row = row_heap.data();
  }
  std::copy(taps, taps + nt, row);
  TOut* out_data = data_ptr<TOut>(out);
  for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
    for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
      for (int t = 0; t < nt; ++t) {
        row[t].base = taps[t].base + u0 * taps[t].s0 + u1 * taps[t].s1;
      }
      TOut* o = out_data + out_base + u0 * out_stride[0] + u1 * out_stride[1];
      row_kernel(nt, o, out_stride[2], dl[2].count, lf.constant, row);
    }
  }
}

/// Common dtype of every *bound* source view, or nullopt when they mix
/// (compile()'s uniformity repair makes that impossible for plan-driven
/// calls; caller-supplied views can still mix and take the slow path).
std::optional<grid::DType> uniform_src_dtype(std::span<const View> srcs) {
  std::optional<grid::DType> dt;
  for (const View& s : srcs) {
    if (s.ptr == nullptr) continue;
    if (!dt) {
      dt = s.dtype;
    } else if (*dt != s.dtype) {
      return std::nullopt;
    }
  }
  return dt ? dt : std::optional<grid::DType>{grid::DType::F64};
}

/// Fully general (and slow) per-point path.
template <typename EvalFn>
void apply_pointwise(View out, const Box& region,
                     const std::array<index_t, 3>& step,
                     const std::array<index_t, 3>& phase, EvalFn&& eval) {
  const int ndim = out.ndim;
  DimLoop dl[3];
  for (int d = 0; d < ndim; ++d) {
    dl[d] = dim_loop(region.dim(d), step[d], phase[d]);
    if (dl[d].count == 0) return;
  }
  std::array<index_t, 3> p{};
  if (ndim == 1) {
    for (index_t u = 0; u < dl[0].count; ++u) {
      p[0] = dl[0].start + u * dl[0].step;
      out.store_at(p, eval(p));
    }
    return;
  }
  if (ndim == 2) {
    for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
      p[0] = dl[0].start + u0 * dl[0].step;
      for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
        p[1] = dl[1].start + u1 * dl[1].step;
        out.store_at(p, eval(p));
      }
    }
    return;
  }
  for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
    p[0] = dl[0].start + u0 * dl[0].step;
    for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
      p[1] = dl[1].start + u1 * dl[1].step;
      for (index_t u2 = 0; u2 < dl[2].count; ++u2) {
        p[2] = dl[2].start + u2 * dl[2].step;
        out.store_at(p, eval(p));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Register row engine: evaluate a RegProgram over whole rows in
// fixed-width lane batches.
// ---------------------------------------------------------------------

/// Lanes per batch. 8 doubles = one AVX-512 register / two AVX2
/// registers; the per-instruction dispatch cost is amortized over the
/// whole batch and every lane loop is a fixed-trip-count vectorizable
/// loop in the full-batch specialization.
inline constexpr int kLanes = 8;

/// Per-Load addressing, derived once per kernel invocation. The row
/// base offset (everything except the innermost loop's contribution) is
/// refreshed per row; the innermost dimension is strength-reduced to a
/// constant advance when the sampling map is affine in the loop counter.
struct RegLoadPlan {
  const double* src_ptr = nullptr;
  const double* row_ptr = nullptr;  // src_ptr + current row offset
  // F32 sources: typed aliases of the same addresses (offsets are in
  // elements, so pointer arithmetic must use the element type). Lanes
  // and all arithmetic stay double; the branch costs once per batch.
  const float* src_ptr32 = nullptr;
  const float* row_ptr32 = nullptr;
  bool f32 = false;
  // Outer (non-inner) logical dims: sampled-index parameters + layout.
  int num[3] = {1, 1, 1};
  int den[3] = {1, 1, 1};
  index_t off[3] = {0, 0, 0};
  index_t origin[3] = {0, 0, 0};
  index_t stride[3] = {0, 0, 0};
  // Innermost dimension.
  bool inner_affine = true;
  index_t adv = 0;     // address advance per loop iteration (affine)
  index_t inner0 = 0;  // inner contribution at u == 0 (affine)
  index_t stride_in = 1, origin_in = 0, off_in = 0;
  int num_in = 1, den_in = 1;
  index_t start_in = 0, step_in = 1;
};

/// One batch of `w` consecutive inner-loop iterations starting at `u`.
/// `Full` pins w to kLanes so every lane loop has a constant trip count.
template <bool Full>
void regprog_batch(const ir::RegProgram& prog, RegLoadPlan* lp,
                   double (*__restrict__ regs)[kLanes], index_t u,
                   int w_in) {
  const int w = Full ? kLanes : w_in;
  int li = 0;
  for (const ir::RegInstr& in : prog.body) {
    double* __restrict__ d = regs[in.dst];
    switch (in.kind) {
      case ir::RegOpKind::Load: {
        const RegLoadPlan& L = lp[li++];
        if (L.inner_affine) {
          if (L.f32) {
            const float* __restrict__ p = L.row_ptr32 + u * L.adv;
            if (L.adv == 1) {
              for (int l = 0; l < w; ++l) d[l] = p[l];
            } else {
              const index_t adv = L.adv;
              for (int l = 0; l < w; ++l) d[l] = p[l * adv];
            }
          } else {
            const double* __restrict__ p = L.row_ptr + u * L.adv;
            if (L.adv == 1) {
              for (int l = 0; l < w; ++l) d[l] = p[l];
            } else {
              const index_t adv = L.adv;
              for (int l = 0; l < w; ++l) d[l] = p[l * adv];
            }
          }
        } else {
          // floor(num·x/den) not affine in u (÷2 interpolation maps at
          // unit step): per-lane index computation.
          for (int l = 0; l < w; ++l) {
            const index_t x = L.start_in + (u + l) * L.step_in;
            const index_t q =
                floordiv(L.num_in * x, L.den_in) + L.off_in;
            const index_t e = (q - L.origin_in) * L.stride_in;
            d[l] = L.f32 ? static_cast<double>(L.row_ptr32[e])
                         : L.row_ptr[e];
          }
        }
        break;
      }
      case ir::RegOpKind::Neg: {
        const double* __restrict__ a = regs[in.a];
        for (int l = 0; l < w; ++l) d[l] = -a[l];
        break;
      }
      case ir::RegOpKind::Add: {
        const double* __restrict__ a = regs[in.a];
        const double* __restrict__ b = regs[in.b];
        for (int l = 0; l < w; ++l) d[l] = a[l] + b[l];
        break;
      }
      case ir::RegOpKind::Sub: {
        const double* __restrict__ a = regs[in.a];
        const double* __restrict__ b = regs[in.b];
        for (int l = 0; l < w; ++l) d[l] = a[l] - b[l];
        break;
      }
      case ir::RegOpKind::Mul: {
        const double* __restrict__ a = regs[in.a];
        const double* __restrict__ b = regs[in.b];
        for (int l = 0; l < w; ++l) d[l] = a[l] * b[l];
        break;
      }
      case ir::RegOpKind::Div: {
        const double* __restrict__ a = regs[in.a];
        const double* __restrict__ b = regs[in.b];
        for (int l = 0; l < w; ++l) d[l] = a[l] / b[l];
        break;
      }
      case ir::RegOpKind::Const:
        break;  // hoisted; regprog_issues rejects Consts in the body
    }
  }
}

}  // namespace

void apply_linear(const ir::LinearForm& lf, View out,
                  std::span<const View> srcs, const Box& region,
                  std::array<index_t, 3> step, std::array<index_t, 3> phase) {
  if (region.empty()) return;
  if (fast_path_ok(lf, out.ndim, step)) {
    // The fast path is specialized per (out, src) element type; mixed-
    // dtype sources (impossible in plan-driven calls) fall through to
    // the point-wise loop below.
    if (const auto sd = uniform_src_dtype(srcs)) {
      const bool o32 = out.dtype == grid::DType::F32;
      const bool s32 = *sd == grid::DType::F32;
      if (o32 && s32) {
        apply_linear_fast<float, float>(lf, out, srcs, region, step, phase);
      } else if (o32) {
        apply_linear_fast<float, double>(lf, out, srcs, region, step, phase);
      } else if (s32) {
        apply_linear_fast<double, float>(lf, out, srcs, region, step, phase);
      } else {
        apply_linear_fast<double, double>(lf, out, srcs, region, step, phase);
      }
      return;
    }
  }
  const int ndim = out.ndim;
  apply_pointwise(out, region, step, phase,
                  [&](const std::array<index_t, 3>& p) {
                    double acc = lf.constant;
                    for (const ir::InputTaps& it : lf.inputs) {
                      const View& src = srcs[it.slot];
                      for (const ir::Tap& t : it.taps) {
                        std::array<index_t, 3> q{};
                        for (int d = 0; d < ndim; ++d) {
                          q[d] = floordiv(it.num[d] * p[d], it.den[d]) +
                                 t.off[d];
                        }
                        acc += t.coeff * src.load_at(q);
                      }
                    }
                    return acc;
                  });
}

void apply_bytecode(const ir::Bytecode& bc, View out,
                    std::span<const View> srcs, const Box& region,
                    std::array<index_t, 3> step,
                    std::array<index_t, 3> phase) {
  if (region.empty()) return;
  const int ndim = out.ndim;
  constexpr int kStackCap = 64;
  PMG_CHECK(ir::stack_depth(bc) <= kStackCap, "bytecode stack too deep");
  apply_pointwise(
      out, region, step, phase, [&](const std::array<index_t, 3>& p) {
        double stack[kStackCap] = {0.0};
        int sp = 0;
        for (const ir::BcOp& op : bc) {
          switch (op.kind) {
            case ir::BcKind::PushConst:
              stack[sp++] = op.c;
              break;
            case ir::BcKind::Load: {
              std::array<index_t, 3> q{};
              for (int d = 0; d < ndim; ++d) {
                q[d] = floordiv(op.idx[d].num * p[d], op.idx[d].den) +
                       op.idx[d].off;
              }
              stack[sp++] = srcs[op.slot].load_at(q);
              break;
            }
            case ir::BcKind::Neg:
              stack[sp - 1] = -stack[sp - 1];
              break;
            case ir::BcKind::Add:
              stack[sp - 2] += stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Sub:
              stack[sp - 2] -= stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Mul:
              stack[sp - 2] *= stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Div:
              stack[sp - 2] /= stack[sp - 1];
              --sp;
              break;
          }
        }
        return stack[0];
      });
}

void apply_regprog(const ir::RegProgram& prog, View out,
                   std::span<const View> srcs, const Box& region,
                   std::array<index_t, 3> step,
                   std::array<index_t, 3> phase) {
  if (region.empty()) return;
  PMG_CHECK(ir::regprog_fits_engine(prog),
            "register program exceeds engine capacity ("
                << prog.num_regs << " regs, " << prog.num_loads << " loads)");
  const int ndim = out.ndim;
  DimLoop dl[3];
  if (!make_levels(region, ndim, step, phase, dl)) return;
  const int inner = ndim - 1;

  // Loop-invariant prologue: evaluate scalars once, then broadcast into
  // the lane-wide register file (body instructions treat every operand
  // uniformly as a lane vector).
  alignas(64) double regs[ir::kRegEngineMaxRegs][kLanes];
  for (const ir::RegInstr& in : prog.prologue) {
    double v = 0.0;
    switch (in.kind) {
      case ir::RegOpKind::Const: v = in.c; break;
      case ir::RegOpKind::Neg: v = -regs[in.a][0]; break;
      case ir::RegOpKind::Add: v = regs[in.a][0] + regs[in.b][0]; break;
      case ir::RegOpKind::Sub: v = regs[in.a][0] - regs[in.b][0]; break;
      case ir::RegOpKind::Mul: v = regs[in.a][0] * regs[in.b][0]; break;
      case ir::RegOpKind::Div: v = regs[in.a][0] / regs[in.b][0]; break;
      case ir::RegOpKind::Load:
        PMG_CHECK(false, "Load hoisted into regprog prologue");
        break;
    }
    for (int l = 0; l < kLanes; ++l) regs[in.dst][l] = v;
  }

  // Per-Load addressing plans (stack-resident, derived once).
  RegLoadPlan lp[ir::kRegEngineMaxLoads];
  {
    int li = 0;
    for (const ir::RegInstr& in : prog.body) {
      if (in.kind != ir::RegOpKind::Load) continue;
      RegLoadPlan& L = lp[li++];
      const View& src = srcs[in.slot];
      PMG_DCHECK(src.ptr != nullptr, "unbound source view");
      L.f32 = src.dtype == grid::DType::F32;
      if (L.f32) {
        L.src_ptr32 = src.f32();
      } else {
        L.src_ptr = src.ptr;
      }
      for (int d = 0; d < inner; ++d) {
        L.num[d] = in.idx[d].num;
        L.den[d] = in.idx[d].den;
        L.off[d] = in.idx[d].off;
        L.origin[d] = src.origin[d];
        L.stride[d] = src.stride[d];
      }
      L.num_in = in.idx[inner].num;
      L.den_in = in.idx[inner].den;
      L.off_in = in.idx[inner].off;
      L.origin_in = src.origin[inner];
      L.stride_in = src.stride[inner];
      L.start_in = dl[2].start;
      L.step_in = dl[2].step;
      L.inner_affine = (L.num_in * dl[2].step) % L.den_in == 0;
      if (L.inner_affine) {
        // Strength reduction along the unit-stride dim: the sampled
        // address advances by a constant per iteration.
        L.adv = (L.num_in * dl[2].step / L.den_in) * L.stride_in;
        L.inner0 = (floordiv(L.num_in * dl[2].start, L.den_in) + L.off_in -
                    L.origin_in) *
                   L.stride_in;
      }
    }
  }

  // Output addressing per loop level (same mapping as the linear path).
  const int lo_dim = 3 - ndim;
  index_t out_stride[3] = {0, 0, 0};
  index_t out_base = 0;
  for (int lvl = 0; lvl < 3; ++lvl) {
    const int d = lvl - lo_dim;
    if (d < 0) continue;
    out_stride[lvl] = dl[lvl].step * out.stride[d];
    out_base += (dl[lvl].start - out.origin[d]) * out.stride[d];
  }

  const int nloads = prog.num_loads;
  const index_t count = dl[2].count;
  const double* __restrict__ res = regs[prog.result];
  for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
    for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
      // Row coordinates of the outer logical dims.
      index_t p[3] = {0, 0, 0};
      if (ndim == 3) {
        p[0] = dl[0].start + u0 * dl[0].step;
        p[1] = dl[1].start + u1 * dl[1].step;
      } else if (ndim == 2) {
        p[0] = dl[1].start + u1 * dl[1].step;
      }
      // Refresh each load's row base: outer sampled offsets plus the
      // inner dim's u == 0 contribution when affine.
      for (int i = 0; i < nloads; ++i) {
        RegLoadPlan& L = lp[i];
        index_t base = L.inner_affine ? L.inner0 : 0;
        for (int d = 0; d < inner; ++d) {
          base += (floordiv(L.num[d] * p[d], L.den[d]) + L.off[d] -
                   L.origin[d]) *
                  L.stride[d];
        }
        if (L.f32) {
          L.row_ptr32 = L.src_ptr32 + base;
        } else {
          L.row_ptr = L.src_ptr + base;
        }
      }
      const index_t orow_off =
          out_base + u0 * out_stride[0] + u1 * out_stride[1];
      const index_t os2 = out_stride[2];
      const auto run_row = [&]<typename TOut>(TOut* __restrict__ orow) {
        index_t u = 0;
        for (; u + kLanes <= count; u += kLanes) {
          regprog_batch<true>(prog, lp, regs, u, kLanes);
          if (os2 == 1) {
            for (int l = 0; l < kLanes; ++l) {
              orow[u + l] = static_cast<TOut>(res[l]);
            }
          } else {
            for (int l = 0; l < kLanes; ++l) {
              orow[(u + l) * os2] = static_cast<TOut>(res[l]);
            }
          }
        }
        if (u < count) {
          const int w = static_cast<int>(count - u);
          regprog_batch<false>(prog, lp, regs, u, w);
          for (int l = 0; l < w; ++l) {
            orow[(u + l) * os2] = static_cast<TOut>(res[l]);
          }
        }
      };
      if (out.dtype == grid::DType::F32) {
        run_row(out.f32() + orow_off);
      } else {
        run_row(out.ptr + orow_off);
      }
    }
  }
}

namespace {

/// Invoke fn(dst_elem_offset, src_elem_offset, row_length) for every
/// contiguous last-dimension row of `region`. Both views must have unit
/// stride in the last dimension (all PolyMG views do). Offsets are in
/// elements so callers can apply them to whichever typed base pointer
/// the view's dtype selects. `src` may be null for fill-style ops.
template <typename RowFn>
void for_each_row(const View& dst, const View* src, const Box& region,
                  RowFn&& fn) {
  if (region.empty()) return;
  const int nd = dst.ndim;
  PMG_DCHECK(dst.stride[nd - 1] == 1, "last dim must be contiguous");
  const index_t len = region.dim(nd - 1).size();
  const index_t j0 = region.dim(nd - 1).lo;
  if (nd == 1) {
    fn(j0 - dst.origin[0], src ? j0 - src->origin[0] : 0, len);
    return;
  }
  if (nd == 2) {
    for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
      fn(dst.offset2(i, j0), src ? src->offset2(i, j0) : 0, len);
    }
    return;
  }
  for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
    for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
      fn(dst.offset3(i, j, j0), src ? src->offset3(i, j, j0) : 0, len);
    }
  }
}

}  // namespace

void fill_view(View v, const Box& region, double value) {
  if (v.dtype == grid::DType::F32) {
    float* base = v.f32();
    const float fv = static_cast<float>(value);
    for_each_row(v, nullptr, region,
                 [&](index_t d, index_t, index_t len) {
                   std::fill_n(base + d, len, fv);
                 });
  } else {
    for_each_row(v, nullptr, region,
                 [&](index_t d, index_t, index_t len) {
                   std::fill_n(v.ptr + d, len, value);
                 });
  }
}

void copy_view(View dst, View src, const Box& region) {
  if (dst.dtype == src.dtype) {
    // Same dtype: raw row memcpy, whatever the element size.
    char* db = reinterpret_cast<char*>(dst.ptr);
    const char* sb = reinterpret_cast<const char*>(src.ptr);
    const std::size_t es = dst.elem_size();
    for_each_row(dst, &src, region,
                 [&](index_t d, index_t s, index_t len) {
                   std::memcpy(db + static_cast<std::size_t>(d) * es,
                               sb + static_cast<std::size_t>(s) * es,
                               static_cast<std::size_t>(len) * es);
                 });
  } else if (dst.dtype == grid::DType::F32) {
    // Narrowing copy: one rounding per element.
    float* db = dst.f32();
    const double* sb = src.ptr;
    for_each_row(dst, &src, region,
                 [&](index_t d, index_t s, index_t len) {
                   for (index_t l = 0; l < len; ++l) {
                     db[d + l] = static_cast<float>(sb[s + l]);
                   }
                 });
  } else {
    // Widening copy: exact.
    double* db = dst.ptr;
    const float* sb = src.f32();
    for_each_row(dst, &src, region,
                 [&](index_t d, index_t s, index_t len) {
                   for (index_t l = 0; l < len; ++l) {
                     db[d + l] = static_cast<double>(sb[s + l]);
                   }
                 });
  }
}

namespace {

/// Whether a bound JIT kernel may run this invocation: the generated
/// code bakes a unit innermost stride for the output and every source,
/// and addresses at most kJitMaxSrcSlots sources. All views PolyMG
/// creates satisfy both; exotic caller-supplied views fall back to the
/// interpreted dispatch below.
bool jit_dispatch_ok(const View& out, std::span<const View> srcs) {
  if (srcs.size() > static_cast<std::size_t>(ir::kJitMaxSrcSlots)) {
    return false;
  }
  if (out.stride[out.ndim - 1] != 1) return false;
  for (const View& s : srcs) {
    if (s.ptr != nullptr && s.stride[s.ndim - 1] != 1) return false;
  }
  return true;
}

/// Evaluate one lowered definition: natively compiled kernel when the
/// JIT bound one, else tap-loop kernel for linear forms, register row
/// engine for compiled non-linear forms, and the point-wise stack
/// interpreter as the universal fallback (also the independent oracle
/// of reference plans, which never carry JIT kernels or regprogs).
void apply_def(const ir::LoweredDef& d, View out, std::span<const View> srcs,
               const Box& region, const std::array<index_t, 3>& step,
               const std::array<index_t, 3>& phase) {
  if (d.jit != nullptr && jit_dispatch_ok(out, srcs)) {
    // (step, phase) are baked into the kernel; apply_defs always pairs
    // a def with the parity case it was lowered (and emitted) for.
    ir::JitSrcView js[ir::kJitMaxSrcSlots];
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      js[i].ptr = srcs[i].ptr;
      for (int dim = 0; dim < 3; ++dim) {
        js[i].origin[dim] = srcs[i].origin[dim];
        js[i].stride[dim] = srcs[i].stride[dim];
      }
    }
    std::int64_t lo[3] = {0, 0, 0};
    std::int64_t hi[3] = {-1, -1, -1};
    for (int dim = 0; dim < out.ndim; ++dim) {
      lo[dim] = region.dim(dim).lo;
      hi[dim] = region.dim(dim).hi;
    }
    d.jit(out.ptr, out.origin.data(), out.stride.data(), js, lo, hi);
    return;
  }
  if (d.linear) {
    apply_linear(*d.linear, out, srcs, region, step, phase);
  } else if (ir::regprog_fits_engine(d.regprog)) {
    apply_regprog(d.regprog, out, srcs, region, step, phase);
  } else {
    apply_bytecode(d.bytecode, out, srcs, region, step, phase);
  }
}

void apply_defs(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                View out, std::span<const View> srcs, const Box& region) {
  if (region.empty()) return;
  if (!f.parity_piecewise) {
    apply_def(lowered.defs[0], out, srcs, region, {1, 1, 1}, {0, 0, 0});
    return;
  }
  const int cases = 1 << f.ndim;
  for (int c = 0; c < cases; ++c) {
    std::array<index_t, 3> phase{};
    for (int d = 0; d < f.ndim; ++d) {
      phase[d] = (c >> (f.ndim - 1 - d)) & 1;
    }
    apply_def(lowered.defs[c], out, srcs, region, {2, 2, 2}, phase);
  }
}

void apply_boundary(const ir::FunctionDecl& f, View out,
                    std::span<const View> srcs, const Box& region) {
  for_each_boundary_slab(region, f.interior, [&](const Box& slab) {
    switch (f.boundary) {
      case ir::BoundaryKind::None:
        PMG_CHECK(false, "boundary slab on a BoundaryKind::None function "
                             << f.name);
        break;
      case ir::BoundaryKind::Zero:
        fill_view(out, slab, 0.0);
        break;
      case ir::BoundaryKind::CopySource:
        copy_view(out, srcs[f.boundary_source], slab);
        break;
    }
  });
}

}  // namespace

void apply_stage(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                 View out, std::span<const View> srcs, const Box& region) {
  apply_defs(f, lowered, out, srcs, poly::intersect(region, f.interior));
  if (f.boundary != ir::BoundaryKind::None) {
    apply_boundary(f, out, srcs, region);
  }
}

void apply_stage_interior(const ir::FunctionDecl& f,
                          const ir::LoweredFunc& lowered, View out,
                          std::span<const View> srcs, const Box& region) {
  apply_defs(f, lowered, out, srcs, poly::intersect(region, f.interior));
}

}  // namespace polymg::runtime
