#include "polymg/runtime/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "polymg/common/error.hpp"

namespace polymg::runtime {

namespace {

using poly::floordiv;

/// Loop bounds of one dimension after applying (step, phase) lattice
/// restriction: first point >= lo with x ≡ phase (mod step), point count.
struct DimLoop {
  index_t start = 0;
  index_t count = 0;
  index_t step = 1;
};

DimLoop dim_loop(const poly::Interval& iv, index_t step, index_t phase) {
  DimLoop dl;
  dl.step = step;
  if (iv.empty()) return dl;
  index_t start = iv.lo + ((phase - iv.lo) % step + step) % step;
  if (start > iv.hi) return dl;
  dl.start = start;
  dl.count = (iv.hi - start) / step + 1;
  return dl;
}

/// One flattened tap of the fast path: a base pointer (for u == 0) plus
/// per-loop-counter strides.
struct FlatTap {
  const double* base;
  double coeff;
  index_t s0, s1, s2;
};

template <int NT>
inline void row_kernel_fixed(double* out, index_t os2, index_t count,
                             double cst, const FlatTap* taps) {
  // All-unit inner strides: the compiler can vectorize this form.
  bool unit = os2 == 1;
  for (int t = 0; t < NT; ++t) unit = unit && taps[t].s2 == 1;
  if (unit) {
    for (index_t u = 0; u < count; ++u) {
      double acc = cst;
      for (int t = 0; t < NT; ++t) acc += taps[t].coeff * taps[t].base[u];
      out[u] = acc;
    }
  } else {
    for (index_t u = 0; u < count; ++u) {
      double acc = cst;
      for (int t = 0; t < NT; ++t) {
        acc += taps[t].coeff * taps[t].base[u * taps[t].s2];
      }
      out[u * os2] = acc;
    }
  }
}

void row_kernel(int nt, double* out, index_t os2, index_t count, double cst,
                const FlatTap* taps) {
  switch (nt) {
    case 1: row_kernel_fixed<1>(out, os2, count, cst, taps); return;
    case 2: row_kernel_fixed<2>(out, os2, count, cst, taps); return;
    case 3: row_kernel_fixed<3>(out, os2, count, cst, taps); return;
    case 4: row_kernel_fixed<4>(out, os2, count, cst, taps); return;
    case 5: row_kernel_fixed<5>(out, os2, count, cst, taps); return;
    case 6: row_kernel_fixed<6>(out, os2, count, cst, taps); return;
    case 7: row_kernel_fixed<7>(out, os2, count, cst, taps); return;
    case 8: row_kernel_fixed<8>(out, os2, count, cst, taps); return;
    case 9: row_kernel_fixed<9>(out, os2, count, cst, taps); return;
    // The NAS-MG 27-point family: psinv (19+1), resid (21+1), rprj3 (27).
    case 19: row_kernel_fixed<19>(out, os2, count, cst, taps); return;
    case 20: row_kernel_fixed<20>(out, os2, count, cst, taps); return;
    case 21: row_kernel_fixed<21>(out, os2, count, cst, taps); return;
    case 22: row_kernel_fixed<22>(out, os2, count, cst, taps); return;
    case 27: row_kernel_fixed<27>(out, os2, count, cst, taps); return;
    case 28: row_kernel_fixed<28>(out, os2, count, cst, taps); return;
    default:
      for (index_t u = 0; u < count; ++u) {
        double acc = cst;
        for (int t = 0; t < nt; ++t) {
          acc += taps[t].coeff * taps[t].base[u * taps[t].s2];
        }
        out[u * os2] = acc;
      }
  }
}

/// Fast path applies when every (input, dim) access stays affine in the
/// loop counter: floor(num·(start + step·u)/den) is affine iff den
/// divides num·step.
bool fast_path_ok(const ir::LinearForm& lf, int ndim,
                  const std::array<index_t, 3>& step) {
  for (const ir::InputTaps& it : lf.inputs) {
    for (int d = 0; d < ndim; ++d) {
      if ((it.num[d] * step[d]) % it.den[d] != 0) return false;
    }
  }
  return true;
}

void apply_linear_fast(const ir::LinearForm& lf, View out,
                       std::span<const View> srcs, const Box& region,
                       const std::array<index_t, 3>& step,
                       const std::array<index_t, 3>& phase) {
  const int ndim = out.ndim;
  DimLoop dl[3];
  for (int d = 0; d < ndim; ++d) {
    dl[d] = dim_loop(region.dim(d), step[d], phase[d]);
    if (dl[d].count == 0) return;
  }
  // 2-d executes as a single outer plane.
  if (ndim == 2) {
    dl[2] = dl[1];
    dl[1] = dl[0];
    dl[0] = DimLoop{0, 1, 1};
  } else if (ndim == 1) {
    dl[2] = dl[0];
    dl[1] = DimLoop{0, 1, 1};
    dl[0] = DimLoop{0, 1, 1};
  }
  const int lo_dim = 3 - ndim;  // logical dim of loop level 0

  // Flatten taps with per-level strides and u==0 base pointers.
  std::vector<FlatTap> taps;
  taps.reserve(static_cast<std::size_t>(lf.total_taps()));
  std::vector<double> coeffs;
  for (const ir::InputTaps& it : lf.inputs) {
    const View& src = srcs[it.slot];
    PMG_DCHECK(src.ptr != nullptr, "unbound source view");
    index_t in_stride[3] = {0, 0, 0};  // per loop level
    index_t base0 = 0;                 // input offset at u == 0 (no taps)
    for (int lvl = 0; lvl < 3; ++lvl) {
      const int d = lvl - lo_dim;
      if (d < 0) continue;
      const index_t num = it.num[d], den = it.den[d];
      in_stride[lvl] = (num * dl[lvl].step / den) * src.stride[d];
      base0 +=
          (floordiv(num * dl[lvl].start, den) - src.origin[d]) * src.stride[d];
    }
    for (const ir::Tap& t : it.taps) {
      FlatTap ft;
      index_t off = base0;
      for (int d = 0; d < ndim; ++d) off += t.off[d] * src.stride[d];
      ft.base = src.ptr + off;
      ft.coeff = t.coeff;
      ft.s0 = in_stride[0];
      ft.s1 = in_stride[1];
      ft.s2 = in_stride[2];
      taps.push_back(ft);
    }
  }
  const int nt = static_cast<int>(taps.size());

  index_t out_stride[3] = {0, 0, 0};
  index_t out_base = 0;
  for (int lvl = 0; lvl < 3; ++lvl) {
    const int d = lvl - lo_dim;
    if (d < 0) continue;
    out_stride[lvl] = dl[lvl].step * out.stride[d];
    out_base += (dl[lvl].start - out.origin[d]) * out.stride[d];
  }

  std::vector<FlatTap> row(taps);
  for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
    for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
      for (int t = 0; t < nt; ++t) {
        row[t].base = taps[t].base + u0 * taps[t].s0 + u1 * taps[t].s1;
      }
      double* o = out.ptr + out_base + u0 * out_stride[0] + u1 * out_stride[1];
      row_kernel(nt, o, out_stride[2], dl[2].count, lf.constant, row.data());
    }
  }
}

/// Fully general (and slow) per-point path.
template <typename EvalFn>
void apply_pointwise(View out, const Box& region,
                     const std::array<index_t, 3>& step,
                     const std::array<index_t, 3>& phase, EvalFn&& eval) {
  const int ndim = out.ndim;
  DimLoop dl[3];
  for (int d = 0; d < ndim; ++d) {
    dl[d] = dim_loop(region.dim(d), step[d], phase[d]);
    if (dl[d].count == 0) return;
  }
  std::array<index_t, 3> p{};
  if (ndim == 1) {
    for (index_t u = 0; u < dl[0].count; ++u) {
      p[0] = dl[0].start + u * dl[0].step;
      out.at(p) = eval(p);
    }
    return;
  }
  if (ndim == 2) {
    for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
      p[0] = dl[0].start + u0 * dl[0].step;
      for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
        p[1] = dl[1].start + u1 * dl[1].step;
        out.at(p) = eval(p);
      }
    }
    return;
  }
  for (index_t u0 = 0; u0 < dl[0].count; ++u0) {
    p[0] = dl[0].start + u0 * dl[0].step;
    for (index_t u1 = 0; u1 < dl[1].count; ++u1) {
      p[1] = dl[1].start + u1 * dl[1].step;
      for (index_t u2 = 0; u2 < dl[2].count; ++u2) {
        p[2] = dl[2].start + u2 * dl[2].step;
        out.at(p) = eval(p);
      }
    }
  }
}

}  // namespace

void apply_linear(const ir::LinearForm& lf, View out,
                  std::span<const View> srcs, const Box& region,
                  std::array<index_t, 3> step, std::array<index_t, 3> phase) {
  if (region.empty()) return;
  if (fast_path_ok(lf, out.ndim, step)) {
    apply_linear_fast(lf, out, srcs, region, step, phase);
    return;
  }
  const int ndim = out.ndim;
  apply_pointwise(out, region, step, phase,
                  [&](const std::array<index_t, 3>& p) {
                    double acc = lf.constant;
                    for (const ir::InputTaps& it : lf.inputs) {
                      const View& src = srcs[it.slot];
                      for (const ir::Tap& t : it.taps) {
                        std::array<index_t, 3> q{};
                        for (int d = 0; d < ndim; ++d) {
                          q[d] = floordiv(it.num[d] * p[d], it.den[d]) +
                                 t.off[d];
                        }
                        acc += t.coeff * src.at(q);
                      }
                    }
                    return acc;
                  });
}

void apply_bytecode(const ir::Bytecode& bc, View out,
                    std::span<const View> srcs, const Box& region,
                    std::array<index_t, 3> step,
                    std::array<index_t, 3> phase) {
  if (region.empty()) return;
  const int ndim = out.ndim;
  constexpr int kStackCap = 64;
  PMG_CHECK(ir::stack_depth(bc) <= kStackCap, "bytecode stack too deep");
  apply_pointwise(
      out, region, step, phase, [&](const std::array<index_t, 3>& p) {
        double stack[kStackCap] = {0.0};
        int sp = 0;
        for (const ir::BcOp& op : bc) {
          switch (op.kind) {
            case ir::BcKind::PushConst:
              stack[sp++] = op.c;
              break;
            case ir::BcKind::Load: {
              std::array<index_t, 3> q{};
              for (int d = 0; d < ndim; ++d) {
                q[d] = floordiv(op.idx[d].num * p[d], op.idx[d].den) +
                       op.idx[d].off;
              }
              stack[sp++] = srcs[op.slot].at(q);
              break;
            }
            case ir::BcKind::Neg:
              stack[sp - 1] = -stack[sp - 1];
              break;
            case ir::BcKind::Add:
              stack[sp - 2] += stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Sub:
              stack[sp - 2] -= stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Mul:
              stack[sp - 2] *= stack[sp - 1];
              --sp;
              break;
            case ir::BcKind::Div:
              stack[sp - 2] /= stack[sp - 1];
              --sp;
              break;
          }
        }
        return stack[0];
      });
}

void for_each_boundary_slab(const Box& region, const Box& interior,
                            const std::function<void(const Box&)>& fn) {
  // Peel below/above slabs dimension by dimension; the remaining core is
  // region ∩ interior.
  Box rest = region;
  for (int d = 0; d < region.ndim(); ++d) {
    const poly::Interval r = rest.dim(d);
    const poly::Interval in = interior.dim(d);
    if (r.lo < in.lo) {
      Box slab = rest;
      slab.dim(d) = poly::Interval{r.lo, std::min(r.hi, in.lo - 1)};
      if (!slab.empty()) fn(slab);
    }
    if (r.hi > in.hi) {
      Box slab = rest;
      slab.dim(d) = poly::Interval{std::max(r.lo, in.hi + 1), r.hi};
      if (!slab.empty()) fn(slab);
    }
    rest.dim(d) = poly::intersect(r, in);
    if (rest.empty()) return;
  }
}

namespace {

/// Invoke fn(dst_row_ptr, src_row_ptr, row_length) for every contiguous
/// last-dimension row of `region`. Both views must have unit stride in
/// the last dimension (all PolyMG views do). `src` may be null-ptr'd for
/// fill-style operations.
template <typename RowFn>
void for_each_row(View dst, const View* src, const Box& region, RowFn&& fn) {
  if (region.empty()) return;
  const int nd = dst.ndim;
  PMG_DCHECK(dst.stride[nd - 1] == 1, "last dim must be contiguous");
  const index_t len = region.dim(nd - 1).size();
  const index_t j0 = region.dim(nd - 1).lo;
  if (nd == 1) {
    fn(dst.ptr + (j0 - dst.origin[0]),
       src ? src->ptr + (j0 - src->origin[0]) : nullptr, len);
    return;
  }
  if (nd == 2) {
    for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
      fn(dst.ptr + dst.offset2(i, j0),
         src ? src->ptr + src->offset2(i, j0) : nullptr, len);
    }
    return;
  }
  for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
    for (index_t j = region.dim(1).lo; j <= region.dim(1).hi; ++j) {
      fn(dst.ptr + dst.offset3(i, j, j0),
         src ? src->ptr + src->offset3(i, j, j0) : nullptr, len);
    }
  }
}

}  // namespace

void fill_view(View v, const Box& region, double value) {
  for_each_row(v, nullptr, region,
               [value](double* d, const double*, index_t len) {
                 std::fill_n(d, len, value);
               });
}

void copy_view(View dst, View src, const Box& region) {
  for_each_row(dst, &src, region,
               [](double* d, const double* s, index_t len) {
                 std::memcpy(d, s, static_cast<std::size_t>(len) *
                                       sizeof(double));
               });
}

namespace {

void apply_defs(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                View out, std::span<const View> srcs, const Box& region) {
  if (region.empty()) return;
  if (!f.parity_piecewise) {
    const ir::LoweredDef& d = lowered.defs[0];
    if (d.linear) {
      apply_linear(*d.linear, out, srcs, region);
    } else {
      apply_bytecode(d.bytecode, out, srcs, region);
    }
    return;
  }
  const int cases = 1 << f.ndim;
  for (int c = 0; c < cases; ++c) {
    std::array<index_t, 3> phase{};
    for (int d = 0; d < f.ndim; ++d) {
      phase[d] = (c >> (f.ndim - 1 - d)) & 1;
    }
    const ir::LoweredDef& ld = lowered.defs[c];
    if (ld.linear) {
      apply_linear(*ld.linear, out, srcs, region, {2, 2, 2}, phase);
    } else {
      apply_bytecode(ld.bytecode, out, srcs, region, {2, 2, 2}, phase);
    }
  }
}

void apply_boundary(const ir::FunctionDecl& f, View out,
                    std::span<const View> srcs, const Box& region) {
  for_each_boundary_slab(region, f.interior, [&](const Box& slab) {
    switch (f.boundary) {
      case ir::BoundaryKind::None:
        PMG_CHECK(false, "boundary slab on a BoundaryKind::None function "
                             << f.name);
        break;
      case ir::BoundaryKind::Zero:
        fill_view(out, slab, 0.0);
        break;
      case ir::BoundaryKind::CopySource:
        copy_view(out, srcs[f.boundary_source], slab);
        break;
    }
  });
}

}  // namespace

void apply_stage(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                 View out, std::span<const View> srcs, const Box& region) {
  apply_defs(f, lowered, out, srcs, poly::intersect(region, f.interior));
  if (f.boundary != ir::BoundaryKind::None) {
    apply_boundary(f, out, srcs, region);
  }
}

void apply_stage_interior(const ir::FunctionDecl& f,
                          const ir::LoweredFunc& lowered, View out,
                          std::span<const View> srcs, const Box& region) {
  apply_defs(f, lowered, out, srcs, poly::intersect(region, f.interior));
}

}  // namespace polymg::runtime
