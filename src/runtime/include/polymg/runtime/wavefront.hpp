// Wavefront (time-skewed) smoothing — the Williams et al. technique the
// paper's related work contrasts overlapped tiling against.
//
// T Jacobi steps are software-pipelined along the outermost space
// dimension: sweep position r updates time level t at row/plane
// r - (t - 1), keeping a 3-row (3-plane in 3-d) line-buffer window per
// intermediate level so the whole working set between levels stays
// cache-resident. Unlike overlapped tiling there is no redundant
// computation, and unlike split/diamond tiling there is no concurrent
// start — the pipeline fills over the first T sweeps and drains over the
// last T (the startup/drain cost the paper calls out).
#pragma once

#include "polymg/grid/view.hpp"

namespace polymg::runtime {

using grid::View;
using poly::index_t;

/// Advance T weighted-Jacobi steps of the (2d+1)-point smoother
///   v' = v - w·(inv_h2·(2d·v - Σ neighbours) - f)
/// over the interior [1, n]^d. Reads v_in (level 0), writes v_out
/// (level T); the two must not alias unless T == 0. Ghost ring is
/// homogeneous Dirichlet (zero).
void wavefront_jacobi(View v_in, View v_out, View f, index_t n, int ndim,
                      double w, double inv_h2, int T);

}  // namespace polymg::runtime
