// Point-loop kernels executing lowered function definitions over regions.
//
// One generic tap-loop kernel covers every linear stage (smoothing,
// residual, restriction, interpolation, correction); its inner loop is
// specialized for the access patterns multigrid produces (unit stride,
// ×2 sampling, ÷2 sampling on parity sub-lattices). A stack-bytecode
// evaluator covers non-affine definitions. All kernels operate on Views,
// so the same code runs on full arrays and tile scratchpads.
#pragma once

#include <span>

#include "polymg/grid/view.hpp"
#include "polymg/ir/lowering.hpp"

namespace polymg::runtime {

using grid::Box;
using grid::View;
using poly::index_t;

/// Evaluate a linear form over every point of `region` whose coordinates
/// satisfy x_d ≡ phase_d (mod step_d). `srcs[slot]` binds each source.
void apply_linear(const ir::LinearForm& lf, View out,
                  std::span<const View> srcs, const Box& region,
                  std::array<index_t, 3> step = {1, 1, 1},
                  std::array<index_t, 3> phase = {0, 0, 0});

/// Same contract, interpreting bytecode per point (fallback path).
void apply_bytecode(const ir::Bytecode& bc, View out,
                    std::span<const View> srcs, const Box& region,
                    std::array<index_t, 3> step = {1, 1, 1},
                    std::array<index_t, 3> phase = {0, 0, 0});

/// Execute one function over `region`: interior points via its lowered
/// definition(s) (dispatching parity cases when piecewise) and the
/// boundary part of the region via the function's boundary rule.
void apply_stage(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                 View out, std::span<const View> srcs, const Box& region);

/// Only the interior part (used by the time-tiling executor, which
/// handles ghost rings once up front).
void apply_stage_interior(const ir::FunctionDecl& f,
                          const ir::LoweredFunc& lowered, View out,
                          std::span<const View> srcs, const Box& region);

/// Decompose region ∖ interior into disjoint slabs and invoke fn on each.
void for_each_boundary_slab(const Box& region, const Box& interior,
                            const std::function<void(const Box&)>& fn);

/// Fill / copy helpers on views over a region (boundary rules).
void fill_view(View v, const Box& region, double value);
void copy_view(View dst, View src, const Box& region);

}  // namespace polymg::runtime
