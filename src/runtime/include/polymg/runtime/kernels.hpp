// Point-loop kernels executing lowered function definitions over regions.
//
// One generic tap-loop kernel covers every linear stage (smoothing,
// residual, restriction, interpolation, correction); its inner loop is
// specialized for the access patterns multigrid produces (unit stride,
// ×2 sampling, ÷2 sampling on parity sub-lattices). A stack-bytecode
// evaluator covers non-affine definitions. All kernels operate on Views,
// so the same code runs on full arrays and tile scratchpads.
#pragma once

#include <algorithm>
#include <span>

#include "polymg/grid/view.hpp"
#include "polymg/ir/lowering.hpp"

namespace polymg::runtime {

using grid::Box;
using grid::View;
using poly::index_t;

/// Evaluate a linear form over every point of `region` whose coordinates
/// satisfy x_d ≡ phase_d (mod step_d). `srcs[slot]` binds each source.
void apply_linear(const ir::LinearForm& lf, View out,
                  std::span<const View> srcs, const Box& region,
                  std::array<index_t, 3> step = {1, 1, 1},
                  std::array<index_t, 3> phase = {0, 0, 0});

/// Same contract, interpreting bytecode per point (fallback path and the
/// guarded-execution reference oracle).
void apply_bytecode(const ir::Bytecode& bc, View out,
                    std::span<const View> srcs, const Box& region,
                    std::array<index_t, 3> step = {1, 1, 1},
                    std::array<index_t, 3> phase = {0, 0, 0});

/// Same contract, evaluating a plan-time-compiled register program over
/// whole rows in fixed-width lane batches (the fast path for non-linear
/// definitions). The program must satisfy regprog_fits_engine().
void apply_regprog(const ir::RegProgram& prog, View out,
                   std::span<const View> srcs, const Box& region,
                   std::array<index_t, 3> step = {1, 1, 1},
                   std::array<index_t, 3> phase = {0, 0, 0});

/// Execute one function over `region`: interior points via its lowered
/// definition(s) (dispatching parity cases when piecewise) and the
/// boundary part of the region via the function's boundary rule.
void apply_stage(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
                 View out, std::span<const View> srcs, const Box& region);

/// Only the interior part (used by the time-tiling executor, which
/// handles ghost rings once up front).
void apply_stage_interior(const ir::FunctionDecl& f,
                          const ir::LoweredFunc& lowered, View out,
                          std::span<const View> srcs, const Box& region);

/// Decompose region ∖ interior into disjoint slabs and invoke fn on each:
/// peel below/above slabs dimension by dimension; the remaining core is
/// region ∩ interior. Templated over the callback so capturing lambdas at
/// call sites never round-trip through a heap-allocating std::function —
/// this runs on every stage of every executor tile.
template <typename Fn>
void for_each_boundary_slab(const Box& region, const Box& interior, Fn&& fn) {
  Box rest = region;
  for (int d = 0; d < region.ndim(); ++d) {
    const poly::Interval r = rest.dim(d);
    const poly::Interval in = interior.dim(d);
    if (r.lo < in.lo) {
      Box slab = rest;
      slab.dim(d) = poly::Interval{r.lo, std::min(r.hi, in.lo - 1)};
      if (!slab.empty()) fn(slab);
    }
    if (r.hi > in.hi) {
      Box slab = rest;
      slab.dim(d) = poly::Interval{std::max(r.lo, in.hi + 1), r.hi};
      if (!slab.empty()) fn(slab);
    }
    rest.dim(d) = poly::intersect(r, in);
    if (rest.empty()) return;
  }
}

/// Fill / copy helpers on views over a region (boundary rules).
void fill_view(View v, const Box& region, double value);
void copy_view(View dst, View src, const Box& region);

}  // namespace polymg::runtime
