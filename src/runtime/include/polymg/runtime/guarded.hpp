// GuardedExecutor — Executor with plan validation, numerical health
// checks and reference-plan fallback.
//
// The optimized plan (fusion, overlapped tiling, storage reuse, pooling)
// is the fast path; a plan-invariant violation or a numerical fault in it
// must not corrupt a solve. The guard (a) validates the compiled plan
// before trusting it, (b) enforces the documented externals precondition
// on every run, (c) scans pipeline outputs for non-finite values after
// each invocation, and (d) on InvalidPlan / NumericalDivergence /
// PoolExhausted (or any other internal failure) re-executes the same
// invocation on a reference plan — the unfused, unpooled, untiled
// compilation of the same pipeline. When the optimized path is healthy
// its results are bitwise those of a plain Executor (it IS a plain
// Executor); the guard adds only the output scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "polymg/ir/pipeline.hpp"
#include "polymg/runtime/executor.hpp"

namespace polymg::obs {
class Counter;
}

namespace polymg::runtime {

/// Running account of what the guard observed and did.
struct GuardReport {
  int optimized_runs = 0;  ///< invocations completed on the optimized plan
  int fallback_runs = 0;   ///< invocations served by the reference plan
  bool used_fallback = false;  ///< any fallback so far
  ErrorCode last_error = ErrorCode::Generic;  ///< code of the last incident
  std::string last_incident;  ///< human-readable note on the last incident
};

class GuardedExecutor {
public:
  /// Compiles `pipe` under `opts` and validates the plan. A plan that
  /// fails validation is recorded (InvalidPlan) and every run() is served
  /// by the reference plan instead of throwing here.
  GuardedExecutor(ir::Pipeline pipe, const opt::CompileOptions& opts);

  /// Adopt a precompiled (and already validated) plan instead of
  /// compiling — the service layer's plan cache compiles a signature once
  /// and every subsequent executor copies the CompiledPipeline, so a
  /// cache hit performs zero opt::compile calls. `pipe` is still retained
  /// for the lazy reference fallback.
  GuardedExecutor(ir::Pipeline pipe, const opt::CompileOptions& opts,
                  std::shared_ptr<const opt::CompiledPipeline> precompiled);

  /// Execute one pipeline invocation with the guard. Precondition
  /// violations (wrong external count, a view not covering its declared
  /// domain) throw Error(PreconditionViolated) — caller bugs are not
  /// recoverable by a different plan. Every other failure of the
  /// optimized path falls back to the reference plan; if the reference
  /// output is also non-finite, throws Error(NumericalDivergence).
  void run(std::span<const View> externals);

  /// View of the i-th pipeline output from whichever plan produced the
  /// last run()'s result.
  View output_view(int i) const;

  /// The optimized plan (valid only when has_optimized_plan()).
  const opt::CompiledPipeline& plan() const;
  bool has_optimized_plan() const { return optimized_ != nullptr; }
  /// Whether the last run() was served by the reference plan.
  bool last_run_fell_back() const { return last_from_fallback_; }
  const GuardReport& report() const { return report_; }

  /// Attach a cooperative cancellation token to both plans (non-owning;
  /// nullptr detaches; set only between runs). A deadline/cancel trip is
  /// rethrown by run() instead of triggering the reference fallback —
  /// re-running the invocation on the slower plan is the opposite of
  /// what a deadline asks for.
  void set_cancel_token(const CancelToken* token);

  /// Forward the request span context to both plans (see
  /// Executor::set_trace_request): trace events from a fallback re-run
  /// carry the same ticket as the optimized attempt they replace. Set or
  /// clear (-1) only between runs.
  void set_trace_request(std::int32_t req);
  std::int32_t trace_request() const { return trace_req_; }

  /// Point both plans' progress-epoch mirrors at one external heartbeat
  /// (see Executor::set_progress_sink): the supervisor watches a single
  /// counter per worker regardless of which plan serves the run.
  /// Non-owning; nullptr detaches; set only between runs.
  void set_progress_sink(std::atomic<std::uint64_t>* sink);

private:
  void note_incident(ErrorCode code, const std::string& what);
  void ensure_reference();
  void check_externals(std::span<const View> externals) const;
  bool outputs_healthy(const Executor& ex) const;

  ir::Pipeline pipe_;  ///< retained to compile the reference plan lazily
  opt::CompileOptions opts_;
  const CancelToken* cancel_ = nullptr;  ///< forwarded to both executors
  std::int32_t trace_req_ = -1;          ///< forwarded to both executors
  /// Heartbeat mirror forwarded to both executors (non-owning).
  std::atomic<std::uint64_t>* progress_sink_ = nullptr;
  std::unique_ptr<Executor> optimized_;
  std::unique_ptr<Executor> reference_;
  /// Double staging buffers for fallback runs of a mixed plan: the
  /// reference plan is full-double, so float externals are promoted
  /// (exactly) into these before the re-run. Lazily sized, reused.
  std::vector<grid::Buffer> fallback_ext_;
  bool last_from_fallback_ = false;
  GuardReport report_;

  // obs metrics handles (resolved once at construction).
  obs::Counter* ctr_health_scans_ = nullptr;     // guarded.health_scans
  obs::Counter* ctr_health_failures_ = nullptr;  // guarded.health_failures
  obs::Counter* ctr_fallback_runs_ = nullptr;    // guarded.fallback_runs
  obs::Counter* ctr_optimized_runs_ = nullptr;   // guarded.optimized_runs
};

}  // namespace polymg::runtime
