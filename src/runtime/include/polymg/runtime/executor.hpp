// Executor — runs a CompiledPipeline.
//
// This is the runtime half of what PolyMG's ISL code generation produces:
// group-by-group execution with (a) plain parallel loops, (b) fused
// overlapped-tile loop nests using per-thread scratchpads, or (c)
// split/diamond time tiling for smoother chains; full arrays served by a
// pooled allocator (or per-cycle allocations for the variants without
// pooling) with pool_deallocate emitted at each array's last-use group.
#pragma once

#include <span>
#include <vector>

#include "polymg/grid/buffer.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/runtime/timetile.hpp"

namespace polymg::runtime {

class Executor {
public:
  explicit Executor(opt::CompiledPipeline plan);

  /// Execute one pipeline invocation (one multigrid cycle). `externals`
  /// binds the program input grids in pipeline order; each view must
  /// cover the declared domain. Output arrays remain valid until the
  /// next run() (they are never pooled away mid-run and never freed in
  /// non-pooled mode until the next invocation).
  void run(std::span<const View> externals);

  /// View of the i-th pipeline output (pipe.outputs[i]) after run().
  View output_view(int i) const;

  const opt::CompiledPipeline& plan() const { return plan_; }
  const MemoryPool& pool() const { return pool_; }

  /// Peak bytes of full-array storage held during the last run.
  index_t peak_array_doubles() const { return peak_array_doubles_; }

private:
  View array_view(int array_id, const ir::FunctionDecl& shape) const;
  View resolve_source(const opt::GroupPlan& g, const ir::SourceSlot& slot,
                      std::span<const View> externals,
                      const std::vector<View>& group_scratch_views) const;

  void ensure_array(int array_id);
  void release_arrays(const std::vector<int>& ids);

  void run_loops_group(const opt::GroupPlan& g,
                       std::span<const View> externals);
  void run_overlap_group(const opt::GroupPlan& g,
                         std::span<const View> externals);
  void run_timetile_group(const opt::GroupPlan& g,
                          std::span<const View> externals);

  opt::CompiledPipeline plan_;
  MemoryPool pool_;
  std::vector<double*> array_ptr_;        // per array id, null until live
  std::vector<grid::Buffer> unpooled_;    // per array id (non-pooled mode)
  std::vector<std::vector<double>> arena_;  // per-thread scratch arena
  index_t arena_doubles_ = 0;
  index_t peak_array_doubles_ = 0;
  index_t live_array_doubles_ = 0;
};

}  // namespace polymg::runtime
