// Executor — runs a CompiledPipeline.
//
// This is the runtime half of what PolyMG's ISL code generation produces:
// group-by-group execution with (a) plain parallel loops, (b) fused
// overlapped-tile loop nests using per-thread scratchpads, or (c)
// split/diamond time tiling for smoother chains; full arrays served by a
// pooled allocator (or per-cycle allocations for the variants without
// pooling) with pool_deallocate emitted at each array's last-use group.
//
// Everything derivable from the plan alone — source bindings, scratchpad
// offsets, time-tile chains, release lists, per-thread workspaces — is
// resolved once at construction, so a steady-state run() performs no heap
// allocation and no per-tile re-derivation (the per-tile regions come
// from the plan's tile_regions_cache).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "polymg/grid/buffer.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/runtime/timetile.hpp"

namespace polymg::runtime {

class Executor {
public:
  explicit Executor(opt::CompiledPipeline plan);

  /// Execute one pipeline invocation (one multigrid cycle). `externals`
  /// binds the program input grids in pipeline order; each view must
  /// cover the declared domain. Output arrays remain valid until the
  /// next run() (they are never pooled away mid-run and never freed in
  /// non-pooled mode until the next invocation).
  void run(std::span<const View> externals);

  /// View of the i-th pipeline output (pipe.outputs[i]) after run().
  View output_view(int i) const;

  const opt::CompiledPipeline& plan() const { return plan_; }
  const MemoryPool& pool() const { return pool_; }

  /// Peak bytes of full-array storage held during the last run.
  index_t peak_array_doubles() const { return peak_array_doubles_; }

  // --- Timing counters (accumulated across run() calls). ---
  /// Seconds spent in each group, index parallel to plan().groups.
  const std::vector<double>& group_seconds() const { return group_seconds_; }
  /// Seconds attributed to each function's stage. Loops groups time every
  /// stage individually; tiled groups fuse stages, so their whole group
  /// time lands on the anchor stage.
  const std::vector<double>& stage_seconds() const { return stage_seconds_; }
  /// Completed run() invocations since construction / reset_timers().
  std::int64_t runs_timed() const { return runs_timed_; }
  void reset_timers();

private:
  /// Plan-time-resolved origin of one source slot.
  struct SourceBind {
    enum Kind : std::uint8_t { kExternal, kScratch, kArray };
    Kind kind = kExternal;
    int index = -1;  ///< external slot / stage position / array id
    int func = -1;   ///< producing function (kArray: the view's shape)
  };

  /// Per-thread overlap-tile workspace, sized once at construction.
  struct Workspace {
    std::vector<Box> regions;        // fallback when a plan has no cache
    std::vector<View> scratch_views;
    std::vector<View> srcs;
  };

  View array_view(int array_id, const ir::FunctionDecl& shape) const;
  View resolve_bind(const SourceBind& b, std::span<const View> externals,
                    std::span<const View> scratch_views) const;

  void ensure_array(int array_id);
  void release_arrays(const std::vector<int>& ids);

  void run_loops_group(int gi, std::span<const View> externals);
  void run_overlap_group(int gi, std::span<const View> externals);
  void run_timetile_group(int gi, std::span<const View> externals);

  opt::CompiledPipeline plan_;
  MemoryPool pool_;
  std::vector<double*> array_ptr_;        // per array id, null until live
  std::vector<grid::Buffer> unpooled_;    // per array id (non-pooled mode)
  std::vector<std::vector<double>> arena_;  // per-thread scratch arena
  index_t arena_doubles_ = 0;
  index_t peak_array_doubles_ = 0;
  index_t live_array_doubles_ = 0;

  // --- Construction-time caches (steady state allocates nothing). ---
  std::vector<std::vector<std::vector<SourceBind>>> binds_;  // [g][stage][slot]
  std::vector<std::vector<int>> releasable_after_group_;     // io filtered out
  std::vector<std::vector<index_t>> scratch_off_;  // [g]: arena prefix sums
  std::vector<std::vector<ChainStep>> chain_;      // [g] (TimeTiled only)
  std::vector<Workspace> workspaces_;              // per thread
  std::vector<View> stage_srcs_;  // Loops / TimeTiled source scratch

  std::vector<double> group_seconds_;
  std::vector<double> stage_seconds_;
  std::int64_t runs_timed_ = 0;
};

}  // namespace polymg::runtime
