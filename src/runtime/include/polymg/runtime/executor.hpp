// Executor — runs a CompiledPipeline.
//
// This is the runtime half of what PolyMG's ISL code generation produces:
// group-by-group execution with (a) plain parallel loops, (b) fused
// overlapped-tile loop nests using per-thread scratchpads, or (c)
// split/diamond time tiling for smoother chains; full arrays served by a
// pooled allocator (or per-cycle allocations for the variants without
// pooling) with pool_deallocate emitted at each array's last-use group.
//
// Two schedules share the same per-tile/per-slab kernels:
//
//  * barrier schedule — one fork/join per group, groups strictly in
//    order. Used when the plan has no dependence graph (Naive, the
//    guarded reference oracle) and whenever fault injection is armed.
//  * dependence schedule — ONE parallel region per run(). Threads pull
//    ready tasks from an atomic queue and release successors through the
//    plan's SchedGraph (point-to-point atomic decrements), so tiles of
//    group g+1 start while tiles of g are still in flight. A prefix
//    "gate" keeps every task at least two nodes behind the completion
//    frontier, which is what lets edges look only one node back.
//
// Outputs are bit-exact across the two schedules and any thread count:
// tasks never share a written point and the executor performs no
// cross-point reductions, so the partition cannot change any value.
//
// Everything derivable from the plan alone — source bindings, scratchpad
// offsets, time-tile chains, release lists, per-thread workspaces, the
// scheduler's atomic state — is resolved once at construction, so a
// steady-state run() performs no heap allocation and no per-tile
// re-derivation (the per-tile regions come from the plan's
// tile_regions_cache).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "polymg/common/cancel.hpp"
#include "polymg/grid/buffer.hpp"
#include "polymg/obs/perf.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/runtime/timetile.hpp"

namespace polymg::obs {
class Counter;
class Histogram;
class PerfCounters;
}

namespace polymg::runtime {

class Executor {
public:
  explicit Executor(opt::CompiledPipeline plan);

  /// Execute one pipeline invocation (one multigrid cycle). `externals`
  /// binds the program input grids in pipeline order; each view must
  /// cover the declared domain. Output arrays remain valid until the
  /// next run() (they are never pooled away mid-run and never freed in
  /// non-pooled mode until the next invocation).
  void run(std::span<const View> externals);

  /// View of the i-th pipeline output (pipe.outputs[i]) after run().
  View output_view(int i) const;

  const opt::CompiledPipeline& plan() const { return plan_; }
  const MemoryPool& pool() const { return pool_; }

  /// True when run() executes the dependence schedule (plan carries a
  /// graph and no fault site is armed).
  bool dependence_scheduled() const;

  /// Attach a cooperative cancellation token (non-owning; the token must
  /// outlive every run, nullptr detaches). Both schedules poll it at task
  /// granularity — a tile, a slab, a stage — and on a trip the run stops
  /// scheduling kernel bodies, drains its scheduling protocol and run()
  /// throws Error(DeadlineExceeded or Cancelled) after the parallel
  /// region exits: OpenMP forbids throwing across a region, so the abort
  /// is a flag the tasks check, never an exception in flight. An aborted
  /// run leaves outputs unspecified (callers keep their last good iterate
  /// and must not copy out) but leaves the executor itself reusable — the
  /// next run() resets all pool and scheduler state. Set/clear only
  /// between runs.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

  /// Progress epoch: a relaxed-atomic counter bumped at every granule
  /// boundary of both schedules (tile, slab, stage, group, collective
  /// sweep — the same places the abort poll runs). A frozen epoch while
  /// a run is in flight means the executor has stopped making progress;
  /// the service watchdog samples it to detect stalls. Monotone within
  /// and across runs; never reset.
  std::uint64_t progress_epoch() const {
    return progress_epoch_.load(std::memory_order_relaxed);
  }
  /// Mirror every epoch bump into an external heartbeat (non-owning,
  /// nullptr detaches; must outlive every run). The service points this
  /// at the worker's heartbeat so the supervisor watches one counter per
  /// worker no matter which executor (session, ladder rung, reference)
  /// is doing the work. Set or clear only between runs.
  void set_progress_sink(std::atomic<std::uint64_t>* sink) {
    progress_sink_ = sink;
  }
  std::atomic<std::uint64_t>* progress_sink() const { return progress_sink_; }

  /// Request span context: the service ticket on whose behalf subsequent
  /// runs execute (-1 = none). Stamped into TraceEvent::req on every
  /// event the executor records — tile/slab/group spans, queue waits,
  /// gate opens, retirements — so a Perfetto export nests kernel spans
  /// under the request that caused them. A plain member rather than a
  /// thread_local because OpenMP team threads are not the submitting
  /// thread: every team thread reads the member set before run(). Set or
  /// clear only between runs, like the cancel token.
  void set_trace_request(std::int32_t req) { trace_req_ = req; }
  std::int32_t trace_request() const { return trace_req_; }

  /// Arm hardware-counter sampling (cycles, instructions, LLC misses via
  /// perf_event_open) around each barrier-schedule group execution, for
  /// the run_report() roofline table. Counters follow the calling thread
  /// only, so attribution is meaningful when the executor runs
  /// single-threaded; the dependence schedule's persistent team is never
  /// sampled. Returns false when the kernel refuses perf_event_open
  /// (containers, paranoid settings, non-Linux); attribution stays armed
  /// and run_report() emits the model-only roofline rows — callers skip
  /// the hw columns, they do not fail (DESIGN.md §14).
  bool enable_perf_attribution();
  void disable_perf_attribution();
  bool perf_attribution_enabled() const { return perf_ != nullptr; }

  /// Peak bytes of full-array storage held during the last run.
  index_t peak_array_doubles() const { return peak_array_doubles_; }

  // --- Timing counters (accumulated across run() calls). ---
  /// Seconds spent in each group, index parallel to plan().groups.
  /// Barrier schedule: wall time per group. Dependence schedule: CPU
  /// seconds summed over the team's task executions (equal to wall time
  /// at one thread; groups overlap in wall time by design otherwise).
  const std::vector<double>& group_seconds() const { return group_seconds_; }
  /// Seconds attributed to each function's stage. Loops groups time every
  /// stage individually; tiled groups fuse stages, so their whole group
  /// time lands on the anchor stage.
  const std::vector<double>& stage_seconds() const { return stage_seconds_; }
  /// Completed run() invocations since construction / reset_timers().
  std::int64_t runs_timed() const { return runs_timed_; }
  /// Dependence-scheduler queue telemetry (accumulated across runs):
  /// successful MPMC pops and failed attempts (spin iterations). Both
  /// zero under the barrier schedule.
  std::int64_t queue_pops() const {
    return queue_pops_.load(std::memory_order_relaxed);
  }
  std::int64_t queue_spins() const {
    return queue_spins_.load(std::memory_order_relaxed);
  }
  /// Reset every accumulated telemetry counter: per-group and per-stage
  /// seconds, the per-thread node timer vector, queue pop/spin counters
  /// and the run count.
  void reset_timers();

  /// Per-group / per-stage time attribution plus a metrics snapshot,
  /// ready for obs::RunReport::render() (convergence telemetry is merged
  /// in by solvers::attach_convergence).
  obs::RunReport run_report() const;

private:
  /// Plan-time-resolved origin of one source slot.
  struct SourceBind {
    enum Kind : std::uint8_t { kExternal, kScratch, kArray };
    Kind kind = kExternal;
    int index = -1;  ///< external slot / stage position / array id
    int func = -1;   ///< producing function (kArray: the view's shape)
  };

  /// Per-thread overlap-tile workspace, sized once at construction.
  struct Workspace {
    std::vector<Box> regions;        // fallback when a plan has no cache
    std::vector<View> scratch_views;
    std::vector<View> srcs;
  };

  /// A maximal run of non-collective schedule nodes (task phase), or a
  /// single collective (TimeTiled) node executed by the whole team
  /// between barriers.
  struct Phase {
    bool collective = false;
    int first_node = 0;
    int end_node = 0;  ///< exclusive
  };

  /// View over a live full array, shaped by `shape` and tagged with the
  /// storage dtype the plan assigned to `func` (arrays themselves are
  /// dtype-agnostic double-unit storage; the tag drives every kernel's
  /// load/store width).
  View array_view(int array_id, const ir::FunctionDecl& shape,
                  int func) const;
  View resolve_bind(const SourceBind& b, std::span<const View> externals,
                    std::span<const View> scratch_views) const;

  void ensure_array(int array_id);
  void release_arrays(const std::vector<int>& ids);

  /// Poll the cancellation token. True once the run is aborting: the
  /// caller must skip its kernel body (but still run its scheduling
  /// bookkeeping so the dependence protocol drains). Monotonic within a
  /// run — after the first trip every poll answers true without touching
  /// the clock. With no token attached this is one relaxed load.
  bool poll_abort();
  /// Throw the typed error recorded by poll_abort(); called by run()
  /// after the parallel region has exited. Resets nothing — the next
  /// run() does.
  void raise_abort();

  // --- Barrier schedule (also the fault-injection path). ---
  void run_barrier(std::span<const View> externals);
  void run_loops_group(int gi, std::span<const View> externals);
  void run_overlap_group(int gi, std::span<const View> externals);
  void run_timetile_group(int gi, std::span<const View> externals);

  // --- Shared task kernels (both schedules route through these). ---
  void exec_overlap_tile(int gi, index_t ti,
                         std::span<const View> externals, int tid);
  void exec_loops_part(int gi, int p, const Box& part,
                       std::span<const View> externals, int tid);

  // --- Dependence schedule (persistent team). ---
  void run_dependence(std::span<const View> externals);
  void reset_sched_state();
  void task_loop(int phase, std::span<const View> externals, int tid);
  void exec_task(index_t t, std::span<const View> externals, int tid);
  void finish_task(index_t t, int node);
  void push_task(index_t t);
  bool pop_task(index_t& out);
  void node_done(int node);
  void advance_frontier();
  void retire_node(index_t k);
  /// Release the gate predecessor of every task of `node` (skips
  /// collectives — their ordering comes from the phase barriers).
  /// Serialized by pool_mu_.
  void open_gate(index_t node);
  /// Make a group's arrays live on first use (double-checked: arrays are
  /// allocated when the group's first task starts, not when its gate
  /// opens, so pooled lifetimes match the barrier schedule's).
  void ensure_group_arrays(int gi);
  void ensure_group_arrays_locked(int gi);
  void run_collective_phase(const Phase& ph,
                            std::span<const View> externals, int tid);

  opt::CompiledPipeline plan_;
  MemoryPool pool_;
  std::vector<double*> array_ptr_;        // per array id, null until live
  std::vector<grid::Buffer> unpooled_;    // per array id (non-pooled mode)
  std::vector<std::vector<double>> arena_;  // per-thread scratch arena
  index_t arena_doubles_ = 0;
  index_t peak_array_doubles_ = 0;
  index_t live_array_doubles_ = 0;

  // --- Construction-time caches (steady state allocates nothing). ---
  std::vector<std::vector<std::vector<SourceBind>>> binds_;  // [g][stage][slot]
  std::vector<std::vector<int>> releasable_after_group_;     // io filtered out
  std::vector<std::vector<index_t>> scratch_off_;  // [g]: arena prefix sums
  std::vector<std::vector<ChainStep>> chain_;      // [g] (TimeTiled only)
  std::vector<Workspace> workspaces_;              // per thread
  std::vector<View> stage_srcs_;  // Loops / TimeTiled source scratch

  // --- Dependence-scheduler state (preallocated; reset per run). ---
  bool sched_on_ = false;
  std::vector<Phase> phases_;
  std::vector<int> phase_of_node_;
  std::vector<std::int32_t> task_node_;  // flat task id -> node index
  std::vector<std::atomic<std::int32_t>> pred_;  // remaining preds + gate
  std::vector<std::atomic<index_t>> queue_;      // MPMC ready queue
  std::atomic<index_t> qhead_{0};
  std::atomic<index_t> qtail_{0};
  std::vector<std::atomic<index_t>> node_remaining_;
  std::vector<std::atomic<std::uint8_t>> node_complete_;
  std::atomic<index_t> frontier_{0};
  std::vector<std::atomic<index_t>> phase_completed_;
  std::vector<index_t> phase_total_;
  std::vector<std::atomic<std::uint8_t>> group_ensured_;  // per group, this run
  std::mutex pool_mu_;  // pool / array_ptr_ mutations inside the region
  View time_bufs_[2];   // collective-phase ping-pong pair (set by tid 0)
  std::vector<double> node_seconds_acc_;  // [tid * nnodes + node]

  // --- Cooperative cancellation (reset at each run() entry). ---
  const CancelToken* cancel_ = nullptr;  ///< non-owning; null = no token
  /// 0 = running, 1 = deadline tripped, 2 = cancelled. Written once per
  /// aborted run (CAS), read by every poll.
  std::atomic<std::uint8_t> abort_{0};

  std::vector<double> group_seconds_;
  std::vector<double> stage_seconds_;
  std::int64_t runs_timed_ = 0;
  std::atomic<std::int64_t> queue_pops_{0};
  std::atomic<std::int64_t> queue_spins_{0};

  /// Request span context stamped into every trace event (-1 = none).
  std::int32_t trace_req_ = -1;

  /// Progress epoch (see progress_epoch()): bumped relaxed at every
  /// granule boundary, optionally mirrored into an external heartbeat.
  std::atomic<std::uint64_t> progress_epoch_{0};
  std::atomic<std::uint64_t>* progress_sink_ = nullptr;  ///< non-owning

  // --- Hardware-counter attribution (enable_perf_attribution). All
  // --- accumulators are per group, covering perf_runs_ barrier runs.
  std::unique_ptr<obs::PerfCounters> perf_;
  std::vector<std::int64_t> perf_cycles_;
  std::vector<std::int64_t> perf_instr_;
  std::vector<std::int64_t> perf_llc_;
  std::vector<double> perf_seconds_;
  std::int64_t perf_runs_ = 0;

  /// Scratch for the dependence schedule's per-run group seconds (sized
  /// at construction: the fold must not allocate in steady state).
  std::vector<double> dep_group_run_seconds_;

  /// Per-group latency histograms ("executor.group_ns.g<i>"), resolved
  /// at construction like the counters: recording one group execution is
  /// two relaxed atomic adds, inside the zero-allocation envelope.
  std::vector<obs::Histogram*> hist_group_ns_;

  // --- obs metrics handles, resolved once at construction so the hot
  // --- paths touch only the relaxed atomics behind them.
  obs::Counter* ctr_tiles_ = nullptr;        // executor.tiles
  obs::Counter* ctr_slabs_ = nullptr;        // executor.slabs
  obs::Counter* ctr_pops_ = nullptr;         // executor.queue_pops
  obs::Counter* ctr_spins_ = nullptr;        // executor.queue_spins
  obs::Counter* ctr_gate_opens_ = nullptr;   // executor.gate_opens
  obs::Counter* ctr_runs_ = nullptr;         // executor.runs
  obs::Counter* ctr_regions_cached_ = nullptr;    // executor.tile_regions_cached
  obs::Counter* ctr_regions_recomputed_ = nullptr;
  obs::Counter* ctr_aborted_runs_ = nullptr;      // executor.aborted_runs
};

}  // namespace polymg::runtime
