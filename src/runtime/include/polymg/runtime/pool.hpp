// Pooled memory allocation (§3.2.3).
//
// All intermediate full-array requests of a compiled pipeline go through
// this allocator. pool_allocate scans the table of existing buffers for a
// free one of sufficient size before creating a new one; pool_deallocate
// is a table update. Buffers are only truly freed when the pool is
// destroyed (or clear()ed) — i.e. after the last multigrid cycle — so
// repeated cycle invocations perform no malloc traffic after the first.
#pragma once

#include <cstddef>
#include <vector>

#include "polymg/common/align.hpp"
#include "polymg/poly/interval.hpp"

namespace polymg::obs {
class Counter;
class Gauge;
}

namespace polymg::runtime {

using poly::index_t;

class MemoryPool {
public:
  MemoryPool();
  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Return a buffer of at least `doubles` elements: a free pooled buffer
  /// when one fits (first fit), otherwise a fresh allocation.
  double* pool_allocate(index_t doubles);

  /// Mark the buffer free for reuse. `p` must have come from
  /// pool_allocate and not already be free.
  void pool_deallocate(double* p);

  /// Release every buffer back to the OS.
  void clear();

  // Introspection for tests and the storage-optimization reports.
  int live_buffers() const;
  int total_buffers() const { return static_cast<int>(entries_.size()); }
  index_t total_doubles() const;
  long malloc_calls() const { return malloc_calls_; }
  long reuse_hits() const { return reuse_hits_; }

private:
  struct Entry {
    AlignedPtr<double> data;
    index_t doubles = 0;
    bool free = false;
  };
  std::vector<Entry> entries_;
  long malloc_calls_ = 0;
  long reuse_hits_ = 0;

  // obs metrics handles, resolved once at construction (the allocate /
  // deallocate paths run under the executor's pool lock on measured
  // runs and must not touch the registry map).
  obs::Counter* ctr_malloc_ = nullptr;  // pool.malloc_calls
  obs::Counter* ctr_reuse_ = nullptr;   // pool.reuse_hits
  obs::Gauge* g_bytes_live_ = nullptr;  // pool.bytes_live (value + peak)
};

}  // namespace polymg::runtime
