// Concurrent-start time tiling for time-iterated stencils (TStencil).
//
// Stands in for Pluto's diamond tiling in the paper's handopt+pluto and
// polymg-dtile-opt+ variants. The transformation is two-phase split
// tiling along the outermost space dimension: a time block of height H
// advances blocks of width W (W >= 2H) through shrinking trapezoids
// (phase 1, all blocks concurrent), then fills the inter-block wedges
// (phase 2, all wedges concurrent). Like diamond tiling it provides
// concurrent start, no redundant computation and no pipelined startup —
// the properties the paper's comparison rests on — at the cost of two
// barriers per time block.
//
// Chain steps may differ per time level (red-black Gauss-Seidel
// alternates half-sweeps) but each must be a Jacobi-style update: step
// t+1 reads only step t (slot 0) within a radius-1 neighbourhood along
// dimension 0, plus time-invariant sources. Values ping-pong between two
// full grids; level ℓ lives in buf[ℓ & 1].
#pragma once

#include <algorithm>
#include <span>

#include "polymg/common/parallel.hpp"
#include "polymg/runtime/kernels.hpp"

namespace polymg::runtime {

struct TimeTileParams {
  index_t H = 4;   ///< time-block height
  index_t W = 32;  ///< block width along dimension 0 (>= 2H)
};

/// Generic split-tiling schedule driver over rows [lo, hi] for `steps`
/// time steps: invokes body(t, rlo, rhi) meaning "advance rows
/// [rlo, rhi] from time level t to t+1". Blocks within a phase run
/// concurrently (body must be thread-safe); row ranges are pre-clamped
/// to [lo, hi]. Both the DSL executor and the hand-optimized
/// handopt+pluto baseline drive their loop bodies through this one
/// schedule. Templated over the body so the capturing lambdas every
/// caller passes stay on the stack — a std::function would heap-allocate
/// per sweep and break the executor's zero-allocation steady state.
template <typename Body>
void split_tile_schedule(index_t lo, index_t hi, int steps,
                         const TimeTileParams& params, const Body& body) {
  const index_t H = std::max<index_t>(1, params.H);
  const index_t W = std::max<index_t>(2 * H, params.W);
  const index_t extent = hi - lo + 1;
  if (extent <= 0 || steps <= 0) return;
  const index_t K = poly::ceildiv(extent, W);  // number of blocks

  for (int t0 = 0; t0 < steps; t0 += static_cast<int>(H)) {
    const int h = std::min<int>(static_cast<int>(H), steps - t0);

    // Phase 1: shrinking trapezoids, one per block, concurrent start.
    // Block k owns rows [b_k, e_k]; at step s it computes
    // [b_k + s·(k>0), e_k - s·(k<K-1)] — the dependence cone stays inside
    // the block, so blocks never exchange data within the phase. Domain
    // edges never shrink: ghost rows are time-invariant.
    note_parallel_region();
#pragma omp parallel for schedule(dynamic)
    for (index_t k = 0; k < K; ++k) {
      const index_t bk = lo + k * W;
      const index_t ek = std::min(bk + W - 1, hi);
      for (int s = 0; s < h; ++s) {
        const index_t rlo = bk + (k > 0 ? s : 0);
        const index_t rhi = ek - (k < K - 1 ? s : 0);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }

    // Phase 2: inter-block wedges. Wedge k (between blocks k and k+1)
    // computes rows [e_k - s + 1, e_k + s] at step s, reading phase-1
    // results at step s-1 on its flanks and its own previous step in the
    // middle. Wedges stay pairwise disjoint because W >= 2H.
    note_parallel_region();
#pragma omp parallel for schedule(dynamic)
    for (index_t k = 0; k < K - 1; ++k) {
      const index_t ek = std::min(lo + (k + 1) * W - 1, hi);
      for (int s = 1; s < h; ++s) {
        const index_t rlo = ek - s + 1;
        const index_t rhi = std::min(ek + s, hi);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }
  }
}

/// Team variant of split_tile_schedule for callers already inside a
/// parallel region (the persistent-team executor): identical schedule,
/// but the phase loops are orphaned worksharing constructs that bind to
/// the enclosing team instead of forking one region per phase. Every
/// thread of the team must call it with identical arguments; the
/// implicit barrier at the end of each `omp for` provides the two
/// barriers per time block the split-tiling dependence structure needs.
/// Outside a parallel region it degrades to a serial sweep.
template <typename Body>
void split_tile_schedule_team(index_t lo, index_t hi, int steps,
                              const TimeTileParams& params,
                              const Body& body) {
  const index_t H = std::max<index_t>(1, params.H);
  const index_t W = std::max<index_t>(2 * H, params.W);
  const index_t extent = hi - lo + 1;
  if (extent <= 0 || steps <= 0) return;
  const index_t K = poly::ceildiv(extent, W);

  for (int t0 = 0; t0 < steps; t0 += static_cast<int>(H)) {
    const int h = std::min<int>(static_cast<int>(H), steps - t0);

#pragma omp for schedule(dynamic)
    for (index_t k = 0; k < K; ++k) {
      const index_t bk = lo + k * W;
      const index_t ek = std::min(bk + W - 1, hi);
      for (int s = 0; s < h; ++s) {
        const index_t rlo = bk + (k > 0 ? s : 0);
        const index_t rhi = ek - (k < K - 1 ? s : 0);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }

#pragma omp for schedule(dynamic)
    for (index_t k = 0; k < K - 1; ++k) {
      const index_t ek = std::min(lo + (k + 1) * W - 1, hi);
      for (int s = 1; s < h; ++s) {
        const index_t rlo = ek - s + 1;
        const index_t rhi = std::min(ek + s, hi);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }
  }
}

/// One time level of a smoother chain.
struct ChainStep {
  const ir::FunctionDecl* fn = nullptr;
  const ir::LoweredFunc* lowered = nullptr;
};

/// Advance `steps.size()` chain applications (slot 0 of each step is the
/// previous time level) using split tiling. `bufs[0]`/`bufs[1]` are the
/// ping-pong grids over the chain's domain; level 0 must already be in
/// bufs[0] with ghost rings of BOTH buffers initialized. Other sources
/// are bound by `srcs` (slot 0 is overwritten internally each step).
/// After return, level T is in bufs[T & 1].
void time_tiled_sweep(std::span<const ChainStep> steps, View bufs[2],
                      std::span<const View> other_srcs,
                      const TimeTileParams& params);

/// time_tiled_sweep for callers inside a persistent parallel region: all
/// team threads call it together (same contract as
/// split_tile_schedule_team); no parallel region is forked.
void time_tiled_sweep_team(std::span<const ChainStep> steps, View bufs[2],
                           std::span<const View> other_srcs,
                           const TimeTileParams& params);

/// Reference implementation: plain sweeps (used by tests and the naive
/// smoother path). Same buffer contract.
void plain_sweep(std::span<const ChainStep> steps, View bufs[2],
                 std::span<const View> other_srcs);

}  // namespace polymg::runtime
