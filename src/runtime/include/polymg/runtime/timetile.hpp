// Concurrent-start time tiling for time-iterated stencils (TStencil).
//
// Stands in for Pluto's diamond tiling in the paper's handopt+pluto and
// polymg-dtile-opt+ variants. The transformation is two-phase split
// tiling along the outermost space dimension: a time block of height H
// advances blocks of width W (W >= 2H) through shrinking trapezoids
// (phase 1, all blocks concurrent), then fills the inter-block wedges
// (phase 2, all wedges concurrent). Like diamond tiling it provides
// concurrent start, no redundant computation and no pipelined startup —
// the properties the paper's comparison rests on — at the cost of two
// barriers per time block.
//
// Chain steps may differ per time level (red-black Gauss-Seidel
// alternates half-sweeps) but each must be a Jacobi-style update: step
// t+1 reads only step t (slot 0) within a radius-1 neighbourhood along
// dimension 0, plus time-invariant sources. Values ping-pong between two
// full grids; level ℓ lives in buf[ℓ & 1].
#pragma once

#include <span>

#include "polymg/runtime/kernels.hpp"

namespace polymg::runtime {

struct TimeTileParams {
  index_t H = 4;   ///< time-block height
  index_t W = 32;  ///< block width along dimension 0 (>= 2H)
};

/// Generic split-tiling schedule driver over rows [lo, hi] for `steps`
/// time steps: invokes body(t, rlo, rhi) meaning "advance rows
/// [rlo, rhi] from time level t to t+1". Blocks within a phase run
/// concurrently (body must be thread-safe); row ranges are pre-clamped
/// to [lo, hi]. Both the DSL executor and the hand-optimized
/// handopt+pluto baseline drive their loop bodies through this one
/// schedule.
void split_tile_schedule(index_t lo, index_t hi, int steps,
                         const TimeTileParams& params,
                         const std::function<void(int, index_t, index_t)>& body);

/// One time level of a smoother chain.
struct ChainStep {
  const ir::FunctionDecl* fn = nullptr;
  const ir::LoweredFunc* lowered = nullptr;
};

/// Advance `steps.size()` chain applications (slot 0 of each step is the
/// previous time level) using split tiling. `bufs[0]`/`bufs[1]` are the
/// ping-pong grids over the chain's domain; level 0 must already be in
/// bufs[0] with ghost rings of BOTH buffers initialized. Other sources
/// are bound by `srcs` (slot 0 is overwritten internally each step).
/// After return, level T is in bufs[T & 1].
void time_tiled_sweep(std::span<const ChainStep> steps, View bufs[2],
                      std::span<const View> other_srcs,
                      const TimeTileParams& params);

/// Reference implementation: plain sweeps (used by tests and the naive
/// smoother path). Same buffer contract.
void plain_sweep(std::span<const ChainStep> steps, View bufs[2],
                 std::span<const View> other_srcs);

}  // namespace polymg::runtime
