#include "polymg/runtime/guarded.hpp"

#include "polymg/common/health.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/validate.hpp"

namespace polymg::runtime {

GuardedExecutor::GuardedExecutor(ir::Pipeline pipe,
                                 const opt::CompileOptions& opts)
    : pipe_(std::move(pipe)), opts_(opts) {
  auto& m = obs::Metrics::instance();
  ctr_health_scans_ = &m.counter("guarded.health_scans");
  ctr_health_failures_ = &m.counter("guarded.health_failures");
  ctr_fallback_runs_ = &m.counter("guarded.fallback_runs");
  ctr_optimized_runs_ = &m.counter("guarded.optimized_runs");
  try {
    opt::CompiledPipeline cp = opt::compile(ir::Pipeline(pipe_), opts_);
    opt::validate_plan(cp);
    optimized_ = std::make_unique<Executor>(std::move(cp));
  } catch (const Error& e) {
    note_incident(e.code() == ErrorCode::Generic ? ErrorCode::InvalidPlan
                                                 : e.code(),
                  e.what());
  }
}

GuardedExecutor::GuardedExecutor(
    ir::Pipeline pipe, const opt::CompileOptions& opts,
    std::shared_ptr<const opt::CompiledPipeline> precompiled)
    : pipe_(std::move(pipe)), opts_(opts) {
  auto& m = obs::Metrics::instance();
  ctr_health_scans_ = &m.counter("guarded.health_scans");
  ctr_health_failures_ = &m.counter("guarded.health_failures");
  ctr_fallback_runs_ = &m.counter("guarded.fallback_runs");
  ctr_optimized_runs_ = &m.counter("guarded.optimized_runs");
  PMG_CHECK_CODE(precompiled != nullptr, ErrorCode::PreconditionViolated,
                 "null precompiled plan");
  // The cache validated the plan at insert time; copying a CompiledPipeline
  // is pure data (vectors), no opt::compile involved.
  optimized_ = std::make_unique<Executor>(*precompiled);
}

void GuardedExecutor::set_cancel_token(const CancelToken* token) {
  cancel_ = token;
  if (optimized_ != nullptr) optimized_->set_cancel_token(token);
  if (reference_ != nullptr) reference_->set_cancel_token(token);
}

void GuardedExecutor::set_trace_request(std::int32_t req) {
  trace_req_ = req;
  if (optimized_ != nullptr) optimized_->set_trace_request(req);
  if (reference_ != nullptr) reference_->set_trace_request(req);
}

void GuardedExecutor::set_progress_sink(std::atomic<std::uint64_t>* sink) {
  progress_sink_ = sink;
  if (optimized_ != nullptr) optimized_->set_progress_sink(sink);
  if (reference_ != nullptr) reference_->set_progress_sink(sink);
}

void GuardedExecutor::note_incident(ErrorCode code, const std::string& what) {
  report_.last_error = code;
  report_.last_incident = what;
}

void GuardedExecutor::ensure_reference() {
  if (reference_ != nullptr) return;
  // The reference plan must itself validate — if it does not, the bug is
  // upstream of any optimization and there is nothing left to degrade to.
  opt::CompiledPipeline cp = opt::compile(
      ir::Pipeline(pipe_), opt::reference_options(opts_));
  opt::validate_plan(cp);
  reference_ = std::make_unique<Executor>(std::move(cp));
  reference_->set_cancel_token(cancel_);
  reference_->set_trace_request(trace_req_);
  reference_->set_progress_sink(progress_sink_);
}

void GuardedExecutor::check_externals(
    std::span<const View> externals) const {
  PMG_CHECK_CODE(externals.size() == pipe_.externals.size(),
                 ErrorCode::PreconditionViolated,
                 "expected " << pipe_.externals.size()
                             << " external grids, got " << externals.size());
  for (std::size_t i = 0; i < externals.size(); ++i) {
    PMG_CHECK_CODE(externals[i].covers(pipe_.externals[i].domain),
                   ErrorCode::PreconditionViolated,
                   "external view " << i << " does not cover the domain of "
                                    << pipe_.externals[i].name);
  }
}

bool GuardedExecutor::outputs_healthy(const Executor& ex) const {
  PMG_TRACE_NOW(t0);
  ctr_health_scans_->add(1);
  bool healthy = true;
  for (std::size_t i = 0; i < pipe_.outputs.size(); ++i) {
    const ir::FunctionDecl& f = pipe_.funcs[pipe_.outputs[i]];
    if (health::has_nonfinite(ex.output_view(static_cast<int>(i)),
                              f.domain)) {
      healthy = false;
      break;
    }
  }
  if (!healthy) ctr_health_failures_->add(1);
  PMG_TRACE_SPAN(HealthScan, t0, -1, -1, healthy ? 1 : 0,
                 static_cast<double>(pipe_.outputs.size()));
  return healthy;
}

void GuardedExecutor::run(std::span<const View> externals) {
  check_externals(externals);
  last_from_fallback_ = false;
  if (optimized_ != nullptr) {
    try {
      optimized_->run(externals);
      if (outputs_healthy(*optimized_)) {
        ++report_.optimized_runs;
        ctr_optimized_runs_->add(1);
        return;
      }
      note_incident(ErrorCode::NumericalDivergence,
                    "non-finite values in optimized-plan output");
    } catch (const Error& e) {
      if (e.code() == ErrorCode::PreconditionViolated) throw;
      // A deadline/cancel trip propagates: falling back would re-run the
      // whole invocation on the slower reference plan — the opposite of
      // what the token asked for. The caller keeps its last iterate.
      if (e.code() == ErrorCode::DeadlineExceeded ||
          e.code() == ErrorCode::Cancelled) {
        note_incident(e.code(), e.what());
        throw;
      }
      note_incident(e.code(), e.what());
    }
  }
  PMG_TRACE_INSTANT(Fallback, -1, -1, static_cast<int>(report_.last_error),
                    0.0);
  ctr_fallback_runs_->add(1);
  ensure_reference();
  // The reference plan is compiled full-double (reference_options), so a
  // mixed optimized plan's float externals must be promoted before the
  // re-run — promotion is exact, the fallback result is the double
  // result. Staging buffers persist across fallbacks.
  std::vector<View> ref_ext(externals.begin(), externals.end());
  for (std::size_t i = 0; i < ref_ext.size(); ++i) {
    const grid::DType want =
        reference_->plan().dtype_of_external(static_cast<int>(i));
    if (ref_ext[i].dtype == want || want != grid::DType::F64) continue;
    if (fallback_ext_.size() < ref_ext.size()) {
      fallback_ext_.resize(ref_ext.size());
    }
    const poly::Box dom = pipe_.externals[i].domain;
    if (!fallback_ext_[i].allocated()) {
      fallback_ext_[i] = grid::make_grid(dom);
    }
    View staged = View::over(fallback_ext_[i].data(), dom);
    grid::copy_region(staged, ref_ext[i], dom);
    ref_ext[i] = staged;
  }
  reference_->run(ref_ext);
  ++report_.fallback_runs;
  report_.used_fallback = true;
  last_from_fallback_ = true;
  if (!outputs_healthy(*reference_)) {
    throw Error(ErrorCode::NumericalDivergence,
                "reference plan also produced non-finite outputs — the "
                "inputs or the pipeline definition are bad");
  }
}

View GuardedExecutor::output_view(int i) const {
  const Executor* ex =
      last_from_fallback_ ? reference_.get() : optimized_.get();
  PMG_CHECK(ex != nullptr, "output_view before any successful run");
  return ex->output_view(i);
}

const opt::CompiledPipeline& GuardedExecutor::plan() const {
  PMG_CHECK(optimized_ != nullptr, "no valid optimized plan");
  return optimized_->plan();
}

}  // namespace polymg::runtime
