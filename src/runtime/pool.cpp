#include "polymg/runtime/pool.hpp"

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"

namespace polymg::runtime {

double* MemoryPool::pool_allocate(index_t doubles) {
  PMG_CHECK(doubles >= 0, "negative allocation");
  if (fault::should_fail(fault::kPoolAlloc)) {
    throw Error(ErrorCode::PoolExhausted,
                "injected fault: pooled allocation of " +
                    std::to_string(doubles) + " doubles failed");
  }
  // First fit over the free entries, preferring the tightest one so big
  // buffers stay available for big requests.
  Entry* best = nullptr;
  for (Entry& e : entries_) {
    if (e.free && e.doubles >= doubles &&
        (best == nullptr || e.doubles < best->doubles)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    best->free = false;
    ++reuse_hits_;
    return best->data.get();
  }
  Entry e;
  e.data = aligned_array<double>(static_cast<std::size_t>(doubles));
  e.doubles = doubles;
  e.free = false;
  ++malloc_calls_;
  entries_.push_back(std::move(e));
  return entries_.back().data.get();
}

void MemoryPool::pool_deallocate(double* p) {
  for (Entry& e : entries_) {
    if (e.data.get() == p) {
      PMG_CHECK(!e.free, "double pool_deallocate");
      e.free = true;
      return;
    }
  }
  PMG_CHECK(false, "pool_deallocate of unknown pointer");
}

void MemoryPool::clear() { entries_.clear(); }

int MemoryPool::live_buffers() const {
  int n = 0;
  for (const Entry& e : entries_) n += e.free ? 0 : 1;
  return n;
}

index_t MemoryPool::total_doubles() const {
  index_t n = 0;
  for (const Entry& e : entries_) n += e.doubles;
  return n;
}

}  // namespace polymg::runtime
