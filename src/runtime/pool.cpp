#include "polymg/runtime/pool.hpp"

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"

namespace polymg::runtime {

namespace {

/// First-touch page placement for a fresh slab: fault pages in with the
/// same static thread partition the executor's parallel loops use, so on
/// a NUMA machine each page lands on the memory node of the thread that
/// will process that part of the grid. Inside a parallel region (the
/// persistent-team scheduler allocates under its pool lock) the calling
/// thread touches the slab serially — no nested fork. Small slabs are
/// not worth a fork either way.
void first_touch_pages(double* p, index_t doubles) {
  constexpr index_t kDoublesPerPage =
      static_cast<index_t>(4096 / sizeof(double));
  if (doubles <= 0) return;
  if (doubles >= (index_t{1} << 16) && !in_parallel()) {
    note_parallel_region();
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < doubles; i += kDoublesPerPage) {
      p[i] = 0.0;
      tsan_join_release();
    }
    tsan_join_acquire();
  } else {
    for (index_t i = 0; i < doubles; i += kDoublesPerPage) p[i] = 0.0;
  }
  p[doubles - 1] = 0.0;  // the tail page
}

}  // namespace

MemoryPool::MemoryPool() {
  auto& m = obs::Metrics::instance();
  ctr_malloc_ = &m.counter("pool.malloc_calls");
  ctr_reuse_ = &m.counter("pool.reuse_hits");
  g_bytes_live_ = &m.gauge("pool.bytes_live");
}

double* MemoryPool::pool_allocate(index_t doubles) {
  PMG_CHECK(doubles >= 0, "negative allocation");
  if (fault::should_fail(fault::kPoolAlloc)) {
    obs::Metrics::instance().counter("fault.pool_alloc").add(1);
    PMG_TRACE_INSTANT(FaultInjected, -1, -1, /*site=*/0,
                      static_cast<double>(doubles));
    throw Error(ErrorCode::PoolExhausted,
                "injected fault: pooled allocation of " +
                    std::to_string(doubles) + " doubles failed");
  }
  // First fit over the free entries, preferring the tightest one so big
  // buffers stay available for big requests.
  Entry* best = nullptr;
  for (Entry& e : entries_) {
    if (e.free && e.doubles >= doubles &&
        (best == nullptr || e.doubles < best->doubles)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    best->free = false;
    ++reuse_hits_;
    ctr_reuse_->add(1);
    g_bytes_live_->add(static_cast<std::int64_t>(best->doubles) * 8);
    PMG_TRACE_INSTANT(PoolAlloc, -1, -1, /*reused=*/1,
                      static_cast<double>(best->doubles) * 8.0);
    return best->data.get();
  }
  Entry e;
  e.data = aligned_array<double>(static_cast<std::size_t>(doubles));
  first_touch_pages(e.data.get(), doubles);
  e.doubles = doubles;
  e.free = false;
  ++malloc_calls_;
  ctr_malloc_->add(1);
  g_bytes_live_->add(static_cast<std::int64_t>(doubles) * 8);
  PMG_TRACE_INSTANT(PoolAlloc, -1, -1, /*reused=*/0,
                    static_cast<double>(doubles) * 8.0);
  entries_.push_back(std::move(e));
  return entries_.back().data.get();
}

void MemoryPool::pool_deallocate(double* p) {
  for (Entry& e : entries_) {
    if (e.data.get() == p) {
      PMG_CHECK(!e.free, "double pool_deallocate");
      e.free = true;
      g_bytes_live_->add(-static_cast<std::int64_t>(e.doubles) * 8);
      PMG_TRACE_INSTANT(PoolRelease, -1, -1, 0,
                        static_cast<double>(e.doubles) * 8.0);
      return;
    }
  }
  PMG_CHECK(false, "pool_deallocate of unknown pointer");
}

void MemoryPool::clear() {
  std::int64_t live_bytes = 0;
  for (const Entry& e : entries_) {
    if (!e.free) live_bytes += static_cast<std::int64_t>(e.doubles) * 8;
  }
  g_bytes_live_->add(-live_bytes);
  entries_.clear();
}

int MemoryPool::live_buffers() const {
  int n = 0;
  for (const Entry& e : entries_) n += e.free ? 0 : 1;
  return n;
}

index_t MemoryPool::total_doubles() const {
  index_t n = 0;
  for (const Entry& e : entries_) n += e.doubles;
  return n;
}

}  // namespace polymg::runtime
