#include "polymg/runtime/timetile.hpp"

#include <vector>

#include "polymg/common/error.hpp"

namespace polymg::runtime {

void split_tile_schedule(
    index_t lo, index_t hi, int steps, const TimeTileParams& params,
    const std::function<void(int, index_t, index_t)>& body) {
  const index_t H = std::max<index_t>(1, params.H);
  const index_t W = std::max<index_t>(2 * H, params.W);
  const index_t extent = hi - lo + 1;
  if (extent <= 0 || steps <= 0) return;
  const index_t K = poly::ceildiv(extent, W);  // number of blocks

  for (int t0 = 0; t0 < steps; t0 += static_cast<int>(H)) {
    const int h = std::min<int>(static_cast<int>(H), steps - t0);

    // Phase 1: shrinking trapezoids, one per block, concurrent start.
    // Block k owns rows [b_k, e_k]; at step s it computes
    // [b_k + s·(k>0), e_k - s·(k<K-1)] — the dependence cone stays inside
    // the block, so blocks never exchange data within the phase. Domain
    // edges never shrink: ghost rows are time-invariant.
#pragma omp parallel for schedule(dynamic)
    for (index_t k = 0; k < K; ++k) {
      const index_t bk = lo + k * W;
      const index_t ek = std::min(bk + W - 1, hi);
      for (int s = 0; s < h; ++s) {
        const index_t rlo = bk + (k > 0 ? s : 0);
        const index_t rhi = ek - (k < K - 1 ? s : 0);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }

    // Phase 2: inter-block wedges. Wedge k (between blocks k and k+1)
    // computes rows [e_k - s + 1, e_k + s] at step s, reading phase-1
    // results at step s-1 on its flanks and its own previous step in the
    // middle. Wedges stay pairwise disjoint because W >= 2H.
#pragma omp parallel for schedule(dynamic)
    for (index_t k = 0; k < K - 1; ++k) {
      const index_t ek = std::min(lo + (k + 1) * W - 1, hi);
      for (int s = 1; s < h; ++s) {
        const index_t rlo = ek - s + 1;
        const index_t rhi = std::min(ek + s, hi);
        if (rlo <= rhi) body(t0 + s, rlo, rhi);
      }
    }
  }
}

namespace {

/// Apply one time step over the dimension-0 row range [rlo, rhi] (full
/// interior extent in the remaining dimensions).
void step_rows(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
               View out, std::span<const View> srcs, index_t rlo,
               index_t rhi) {
  Box region = f.interior;
  region.dim(0) = poly::Interval{std::max(rlo, f.interior.dim(0).lo),
                                 std::min(rhi, f.interior.dim(0).hi)};
  apply_stage_interior(f, lowered, out, srcs, region);
}

}  // namespace

void plain_sweep(std::span<const ChainStep> steps, View bufs[2],
                 std::span<const View> other_srcs) {
  std::vector<View> srcs(other_srcs.begin(), other_srcs.end());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    srcs[0] = bufs[t & 1];
    apply_stage_interior(*steps[t].fn, *steps[t].lowered, bufs[(t + 1) & 1],
                         srcs, steps[t].fn->interior);
  }
}

void time_tiled_sweep(std::span<const ChainStep> steps, View bufs[2],
                      std::span<const View> other_srcs,
                      const TimeTileParams& params) {
  if (steps.empty()) return;
  const ir::FunctionDecl& first = *steps.front().fn;
  for (const ChainStep& s : steps) {
    // Split tiling shrinks by one row per time step: every step's
    // self-dependence must have radius <= 1 along dimension 0, and all
    // steps must share one domain (the ping-pong pair assumes it).
    const poly::DimAccess& self0 = s.fn->access_for(0).d[0];
    PMG_CHECK(self0.lo >= -1 && self0.hi <= 1,
              "time tiling needs radius-1 self dependence along dim 0, got "
                  << self0 << " in " << s.fn->name);
    PMG_CHECK(s.fn->domain == first.domain,
              "chain steps must share one domain");
  }

  split_tile_schedule(
      first.interior.dim(0).lo, first.interior.dim(0).hi,
      static_cast<int>(steps.size()), params,
      [&](int t, index_t rlo, index_t rhi) {
        // Thread-private source binding (slot 0 flips per time level).
        std::vector<View> srcs(other_srcs.begin(), other_srcs.end());
        srcs[0] = bufs[t & 1];
        step_rows(*steps[t].fn, *steps[t].lowered, bufs[(t + 1) & 1], srcs,
                  rlo, rhi);
      });
}

}  // namespace polymg::runtime
