#include "polymg/runtime/timetile.hpp"

#include <algorithm>

#include "polymg/common/error.hpp"

namespace polymg::runtime {

namespace {

/// Chain steps bind few sources (the previous level plus a couple of
/// time-invariant grids), so per-row-range bindings fit on the stack and
/// the sweep body stays allocation-free.
inline constexpr int kMaxChainSrcs = 8;

/// Apply one time step over the dimension-0 row range [rlo, rhi] (full
/// interior extent in the remaining dimensions).
void step_rows(const ir::FunctionDecl& f, const ir::LoweredFunc& lowered,
               View out, std::span<const View> srcs, index_t rlo,
               index_t rhi) {
  Box region = f.interior;
  region.dim(0) = poly::Interval{std::max(rlo, f.interior.dim(0).lo),
                                 std::min(rhi, f.interior.dim(0).hi)};
  apply_stage_interior(f, lowered, out, srcs, region);
}

}  // namespace

void plain_sweep(std::span<const ChainStep> steps, View bufs[2],
                 std::span<const View> other_srcs) {
  PMG_CHECK(other_srcs.size() <= kMaxChainSrcs,
            "chain binds " << other_srcs.size() << " sources (cap "
                           << kMaxChainSrcs << ")");
  View srcs[kMaxChainSrcs];
  std::copy(other_srcs.begin(), other_srcs.end(), srcs);
  const std::span<const View> srcs_span(srcs, other_srcs.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    srcs[0] = bufs[t & 1];
    apply_stage_interior(*steps[t].fn, *steps[t].lowered, bufs[(t + 1) & 1],
                         srcs_span, steps[t].fn->interior);
  }
}

namespace {

void check_chain(std::span<const ChainStep> steps,
                 std::span<const View> other_srcs) {
  const ir::FunctionDecl& first = *steps.front().fn;
  for (const ChainStep& s : steps) {
    // Split tiling shrinks by one row per time step: every step's
    // self-dependence must have radius <= 1 along dimension 0, and all
    // steps must share one domain (the ping-pong pair assumes it).
    const poly::DimAccess& self0 = s.fn->access_for(0).d[0];
    PMG_CHECK(self0.lo >= -1 && self0.hi <= 1,
              "time tiling needs radius-1 self dependence along dim 0, got "
                  << self0 << " in " << s.fn->name);
    PMG_CHECK(s.fn->domain == first.domain,
              "chain steps must share one domain");
  }
  PMG_CHECK(other_srcs.size() <= kMaxChainSrcs,
            "chain binds " << other_srcs.size() << " sources (cap "
                           << kMaxChainSrcs << ")");
}

/// Shared sweep body: thread-private stack-resident source binding
/// (slot 0 flips per time level) — runs inside an OpenMP region and must
/// not touch the heap.
struct SweepBody {
  std::span<const ChainStep> steps;
  View* bufs;
  std::span<const View> other_srcs;

  void operator()(int t, index_t rlo, index_t rhi) const {
    View srcs[kMaxChainSrcs];
    std::copy(other_srcs.begin(), other_srcs.end(), srcs);
    srcs[0] = bufs[t & 1];
    step_rows(*steps[static_cast<std::size_t>(t)].fn,
              *steps[static_cast<std::size_t>(t)].lowered,
              bufs[(t + 1) & 1],
              std::span<const View>(srcs, other_srcs.size()), rlo, rhi);
  }
};

}  // namespace

void time_tiled_sweep(std::span<const ChainStep> steps, View bufs[2],
                      std::span<const View> other_srcs,
                      const TimeTileParams& params) {
  if (steps.empty()) return;
  check_chain(steps, other_srcs);
  const ir::FunctionDecl& first = *steps.front().fn;
  split_tile_schedule(first.interior.dim(0).lo, first.interior.dim(0).hi,
                      static_cast<int>(steps.size()), params,
                      SweepBody{steps, bufs, other_srcs});
}

void time_tiled_sweep_team(std::span<const ChainStep> steps, View bufs[2],
                           std::span<const View> other_srcs,
                           const TimeTileParams& params) {
  if (steps.empty()) return;
  check_chain(steps, other_srcs);
  const ir::FunctionDecl& first = *steps.front().fn;
  split_tile_schedule_team(first.interior.dim(0).lo,
                           first.interior.dim(0).hi,
                           static_cast<int>(steps.size()), params,
                           SweepBody{steps, bufs, other_srcs});
}

}  // namespace polymg::runtime
