#include "polymg/solvers/guarded.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/runtime/guarded.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/solvers/checkpoint.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {

namespace {

/// One rung of the ladder: a full configuration to try from scratch.
struct Rung {
  CycleConfig cfg;
  opt::CompileOptions opts;
  std::string description;
  RungKind kind = RungKind::AsConfigured;
};

const char* smoother_name(SmootherKind s) {
  switch (s) {
    case SmootherKind::Jacobi: return "Jacobi";
    case SmootherKind::GSRB: return "GSRB";
    case SmootherKind::Chebyshev: return "Chebyshev";
  }
  return "?";
}

/// Build the degradation ladder. Remedies are cumulative: once the plan
/// has been dropped to reference, every later rung keeps it; once the
/// smoother is Jacobi, omega backoff is the only lever left.
std::vector<Rung> build_ladder(const CycleConfig& cfg,
                               const opt::CompileOptions& opts,
                               const GuardPolicy& policy) {
  std::vector<Rung> ladder;
  ladder.push_back({cfg, opts, "as configured", RungKind::AsConfigured});
  CycleConfig cur = cfg;
  opt::CompileOptions cur_opts = opts;
  while (static_cast<int>(ladder.size()) < policy.max_attempts) {
    if (policy.allow_precision_fallback && cur_opts.precision.mixed()) {
      // First remedy for a failed mixed attempt: same plan shape, full
      // double arithmetic. Restoring precision is the cheapest hypothesis
      // — structural rungs (reference plan, smoother, omega) come after.
      cur_opts.precision = opt::PrecisionPolicy{};
      ladder.push_back({cur, cur_opts, "mixed -> full double",
                        RungKind::PrecisionFallback});
    } else if (policy.allow_reference_plan &&
               cur_opts.variant != opt::Variant::Naive) {
      cur_opts = opt::reference_options(cur_opts);
      ladder.push_back({cur, cur_opts, "reference plan",
                        RungKind::ReferencePlan});
    } else if (policy.allow_smoother_downgrade &&
               cur.smoother != SmootherKind::Jacobi) {
      std::string from = smoother_name(cur.smoother);
      cur.smoother = SmootherKind::Jacobi;
      ladder.push_back({cur, cur_opts, from + " -> Jacobi",
                        RungKind::SmootherDowngrade});
    } else if (policy.allow_omega_reduction) {
      cur.omega *= policy.omega_backoff;
      std::ostringstream os;
      os << "omega -> " << cur.omega;
      ladder.push_back({cur, cur_opts, os.str(), RungKind::OmegaBackoff});
    } else {
      break;  // no remedies left
    }
  }
  return ladder;
}

/// Append to a ring-bounded vector: once `limit` entries are held the
/// oldest is dropped (and counted, so reports can say the history is a
/// suffix) and the vector never reallocates past its reserve.
void push_bounded(std::vector<double>& v, double x, int limit,
                  std::int64_t& dropped) {
  if (limit > 0 && static_cast<int>(v.size()) >= limit) {
    v.erase(v.begin());
    ++dropped;
  }
  v.push_back(x);
}

}  // namespace

const char* to_string(RungKind k) {
  switch (k) {
    case RungKind::AsConfigured: return "as-configured";
    case RungKind::ReferencePlan: return "reference-plan";
    case RungKind::SmootherDowngrade: return "smoother-downgrade";
    case RungKind::OmegaBackoff: return "omega-backoff";
    case RungKind::CheckpointRollback: return "checkpoint-rollback";
    case RungKind::DeadlineStop: return "deadline-stop";
    case RungKind::PrecisionFallback: return "precision-fallback";
  }
  return "?";
}

SolveReport guarded_solve(const CycleConfig& cfg, PoissonProblem& p,
                          double rel_tol, const GuardPolicy& policy,
                          const opt::CompileOptions& opts) {
  SolveReport report;
  // Every retry restarts from the iterate the caller handed in.
  const grid::Buffer v0 = p.v.clone();
  const auto restore = [&] {
    std::memcpy(p.v.data(), v0.data(), v0.size() * sizeof(double));
  };

  report.initial_residual = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  report.final_residual = report.initial_residual;
  const double target =
      rel_tol * report.initial_residual + policy.rel_tol_floor;
  if (report.initial_residual <= target) {
    report.converged = true;
    return report;
  }

  auto& solver_degrades = obs::Metrics::instance().counter("solver.degrades");
  auto& solver_cycles = obs::Metrics::instance().counter("solver.cycles");
  auto& sdc_counter = obs::Metrics::instance().counter("resil.sdc_detected");
  auto& prec_checks_ctr = obs::Metrics::instance().counter("precision.checks");
  auto& prec_viol_ctr =
      obs::Metrics::instance().counter("precision.violations");
  auto& prec_fallbacks_ctr =
      obs::Metrics::instance().counter("precision.fallbacks");
  const bool ckpt_on = policy.checkpoint_cadence > 0;
  // One pool for every snapshot generation of the solve: after the first
  // capture, checkpointing reuses its buffers — no malloc traffic between
  // (or after steady-state) checkpoints. A caller-owned pool
  // (policy.checkpoint_pool) extends the reuse across solves.
  runtime::MemoryPool local_ckpt_pool;
  runtime::MemoryPool& ckpt_pool =
      policy.checkpoint_pool != nullptr ? *policy.checkpoint_pool
                                        : local_ckpt_pool;
  report.residual_history.reserve(
      static_cast<std::size_t>(std::max(1, policy.history_limit)));

  // Records a token trip: best iterate so far stays in p.v (the copy-out
  // after ex.run never happened for the aborted cycle), the interrupted
  // attempt is recorded as a DeadlineStop pseudo-rung, and the ladder is
  // never walked past it.
  const auto finalize_stopped = [&](SolveAttempt&& attempt, ErrorCode code) {
    report.status = code;
    report.deadline_hit = code == ErrorCode::DeadlineExceeded;
    report.cancelled = code == ErrorCode::Cancelled;
    attempt.kind = RungKind::DeadlineStop;
    PMG_TRACE_INSTANT(Degrade, -1, static_cast<int>(report.attempts.size()),
                      static_cast<int>(RungKind::DeadlineStop), 0.0);
    obs::Metrics::instance()
        .counter(report.deadline_hit ? "solver.deadline_stops"
                                     : "solver.cancel_stops")
        .add(1);
    report.attempts.push_back(std::move(attempt));
    report.final_residual = report.attempts.back().last_residual;
  };

  const std::vector<Rung> ladder = build_ladder(cfg, opts, policy);
  for (std::size_t ri = 0; ri < ladder.size(); ++ri) {
    const Rung& rung = ladder[ri];
    SolveAttempt attempt;
    attempt.description = rung.description;
    attempt.kind = rung.kind;
    if (!report.attempts.empty()) {
      // Walking down a rung is a degradation decision — record it where
      // both the trace and the metrics snapshot can see it.
      solver_degrades.add(1);
      PMG_TRACE_INSTANT(Degrade, -1, static_cast<int>(ri),
                        static_cast<int>(rung.kind), 0.0);
      restore();
    }
    attempt.first_residual =
        residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    attempt.last_residual = attempt.first_residual;

    health::ResidualMonitor monitor(
        {policy.divergence_factor, policy.stagnation_ratio,
         policy.stagnation_window, std::max(1, policy.history_limit)});
    try {
      // Attempt 0 may reuse a caller-owned session executor and/or adopt
      // a precompiled plan from the cache; ladder rungs always build
      // their own — their configurations differ from the cached
      // signature by definition.
      std::optional<runtime::GuardedExecutor> own;
      runtime::GuardedExecutor* exp = nullptr;
      if (ri == 0 && policy.session_executor != nullptr) {
        exp = policy.session_executor;
      } else {
        std::shared_ptr<const opt::CompiledPipeline> pre;
        if (ri == 0 && policy.plans != nullptr) {
          pre = policy.plans->plan_for(rung.cfg, rung.opts);
        }
        if (pre != nullptr) {
          own.emplace(build_cycle(rung.cfg), rung.opts, std::move(pre));
        } else {
          own.emplace(build_cycle(rung.cfg), rung.opts);
        }
        exp = &*own;
      }
      runtime::GuardedExecutor& ex = *exp;
      // The token and request span context are attached for this attempt
      // only: a session executor outlives the request they belong to.
      ex.set_cancel_token(policy.cancel);
      ex.set_trace_request(policy.trace_request);
      ex.set_progress_sink(policy.progress);
      struct TokenDetach {
        runtime::GuardedExecutor& ex;
        ~TokenDetach() {
          ex.set_cancel_token(nullptr);
          ex.set_trace_request(-1);
          ex.set_progress_sink(nullptr);
        }
      } detach{ex};
      // Session executors accumulate fallback counts across solves;
      // attribute only this attempt's delta.
      const int fallbacks_before = ex.report().fallback_runs;
      Checkpoint ckpt(ckpt_pool);
      int rollbacks_left = policy.max_rollbacks;
      const index_t v_doubles = static_cast<index_t>(p.v.size());
      double prev_r = attempt.first_residual;

      // Mixed precision runs as defect correction: the iterate v stays
      // double; each cycle feeds the (double-computed, once-rounded)
      // residual to the cycle pipeline with a zero guess and absorbs the
      // returned correction in double. Linear consistency of the cycle
      // makes this converge at the double rate to the double tolerance —
      // the float path only ever sees a correction, never the iterate.
      const bool mixed_dc = rung.opts.precision.mixed();
      attempt.mixed_precision = mixed_dc;
      if (rung.kind == RungKind::PrecisionFallback) prec_fallbacks_ctr.add(1);
      grid::View zv, rv;
      std::optional<grid::Buffer> z64b, r64b;
      std::optional<grid::BufferF32> z32b, r32b;
      if (mixed_dc) {
        // External storage dtypes come from the plan (a mixed request can
        // still compile all-double, e.g. under time tiling); with no
        // optimized plan every run is served by the double reference.
        grid::DType edt0 = grid::DType::F64, edt1 = grid::DType::F64;
        if (ex.has_optimized_plan()) {
          edt0 = ex.plan().dtype_of_external(0);
          edt1 = ex.plan().dtype_of_external(1);
        }
        if (edt0 == grid::DType::F32) {
          z32b.emplace(grid::make_grid_f32(p.domain()));
          zv = grid::View::over(z32b->data(), p.domain());
        } else {
          z64b.emplace(grid::make_grid(p.domain()));
          zv = grid::View::over(z64b->data(), p.domain());
        }
        if (edt1 == grid::DType::F32) {
          r32b.emplace(grid::make_grid_f32(p.domain()));
          rv = grid::View::over(r32b->data(), p.domain());
        } else {
          r64b.emplace(grid::make_grid(p.domain()));
          rv = grid::View::over(r64b->data(), p.domain());
        }
      }
      // Double oracle: re-runs a checked cycle from the same pre-cycle
      // iterate on a lazily compiled full-double executor.
      std::optional<runtime::Executor> oracle;
      std::optional<grid::Buffer> vprevb;
      const int check_cadence =
          mixed_dc ? policy.precision_check_cadence : 0;

      // Snapshot: iterate + monitor classification state + the residual
      // the SDC guard compares against. `next_cycle` is where execution
      // resumes after a rollback.
      const auto capture = [&](int next_cycle) {
        ckpt.begin(next_cycle, static_cast<int>(ri));
        ckpt.save(0, p.v.data(), v_doubles);
        const health::ResidualMonitor::State ms = monitor.state();
        ckpt.set_meta(0, ms.best);
        ckpt.set_meta(1, ms.last);
        ckpt.set_meta(2, static_cast<double>(ms.count));
        ckpt.set_meta(3, static_cast<double>(ms.stalled));
        ckpt.set_meta(4, static_cast<double>(ms.trend));
        ckpt.set_meta(5, prev_r);
        ckpt.commit();
        ++report.checkpoint_writes;
      };
      // Rewind to the snapshot. False when there is nothing restorable
      // (no budget, or the payload failed its checksum) — the caller then
      // lets the ordinary ladder handle the incident.
      const auto rollback = [&]() -> bool {
        if (!ckpt.valid() || rollbacks_left <= 0) return false;
        if (!ckpt.restore(0, p.v.data(), v_doubles)) return false;
        health::ResidualMonitor::State ms;
        ms.best = ckpt.meta(0);
        ms.last = ckpt.meta(1);
        ms.count = static_cast<std::size_t>(ckpt.meta(2));
        ms.stalled = static_cast<int>(ckpt.meta(3));
        ms.trend = static_cast<health::Trend>(static_cast<int>(ckpt.meta(4)));
        monitor.restore(ms);
        prev_r = ckpt.meta(5);
        --rollbacks_left;
        ++attempt.rollbacks;
        ++report.checkpoint_restores;
        PMG_TRACE_INSTANT(Degrade, static_cast<int>(ri), ckpt.next_cycle(),
                          static_cast<int>(RungKind::CheckpointRollback),
                          0.0);
        return true;
      };

      if (ckpt_on) capture(0);
      const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
      const std::vector<grid::View> mext =
          mixed_dc ? std::vector<grid::View>{zv, rv}
                   : std::vector<grid::View>{};
      int c = 0;
      while (c < policy.max_cycles) {
        // Between-cycle stop poll: cheap (two relaxed loads) and exact —
        // p.v holds the just-completed cycle's iterate, so stopping here
        // costs nothing in progress.
        if (policy.cancel != nullptr && policy.cancel->stop_requested()) {
          finalize_stopped(std::move(attempt),
                           policy.cancel->cancelled()
                               ? ErrorCode::Cancelled
                               : ErrorCode::DeadlineExceeded);
          return report;
        }
        // Injected crash between cycles (fault site solve.crash): the
        // process "died" and restarted — resume from the snapshot. A
        // crash with no restorable snapshot ends the attempt; the ladder
        // (reference plan first) takes over.
        if (ckpt_on && fault::should_fail(fault::kSolveCrash)) {
          obs::Metrics::instance().counter("fault.solve_crash").add(1);
          PMG_TRACE_INSTANT(FaultInjected, -1, c, /*site=*/4, 0.0);
          if (!rollback()) {
            throw Error(ErrorCode::CheckpointCorrupt,
                        "injected crash at cycle " + std::to_string(c) +
                            " with no restorable checkpoint");
          }
          ++attempt.crashes;
          c = ckpt.next_cycle();
          continue;
        }
        const bool check_this =
            check_cadence > 0 && (c + 1) % check_cadence == 0;
        if (mixed_dc) {
          if (check_this) {
            // Snapshot the pre-cycle iterate so the oracle replays the
            // exact same step in full double.
            if (!vprevb) vprevb.emplace(static_cast<std::size_t>(v_doubles));
            std::memcpy(vprevb->data(), p.v.data(),
                        static_cast<std::size_t>(v_doubles) * sizeof(double));
          }
          residual_field(p.v_view(), p.f_view(), p.n, p.h, rv);
          if (fault::should_fail(fault::kPrecisionCorrupt)) {
            // Corrupt the float path's input: one residual value blown
            // far out of scale. Finite, so the non-finite health scan
            // cannot see it — only the precision oracle can.
            obs::Metrics::instance().counter("fault.precision_corrupt")
                .add(1);
            PMG_TRACE_INSTANT(FaultInjected, -1, c, /*site=*/5, 0.0);
            std::array<index_t, poly::kMaxDims> mid{};
            for (int d = 0; d < p.ndim; ++d) mid[d] = (p.n + 1) / 2;
            rv.store_at(mid, rv.load_at(mid) * 1e8 + 1e4);
          }
          ex.run(mext);
          grid::add_region(p.v_view(), ex.output_view(0), p.interior());
        } else {
          ex.run(ext);
          grid::copy_region(p.v_view(), ex.output_view(0), p.domain());
        }
        const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
        ++attempt.cycles;
        ++report.total_cycles;
        solver_cycles.add(1);
        // Solver-side heartbeat: covers the between-run work (residual
        // norms, checkpoints, oracle compiles) the executor's granule
        // bumps cannot see.
        if (policy.progress != nullptr) {
          policy.progress->fetch_add(1, std::memory_order_relaxed);
        }
        // SDC guard: multigrid contracts the residual every cycle, so a
        // single-cycle jump of orders of magnitude (or a non-finite norm)
        // is corrupted arithmetic, not slow numerics. Rewind instead of
        // abandoning the whole configuration; if the snapshot itself is
        // unusable, fall through and let the monitor classify.
        if (ckpt_on && std::isfinite(prev_r) && prev_r > 0.0 &&
            (!std::isfinite(r) || r > policy.sdc_jump_factor * prev_r)) {
          ++attempt.sdc_detected;
          ++report.sdc_detected;
          sdc_counter.add(1);
          PMG_TRACE_INSTANT(SdcDetected, c, static_cast<int>(ri), 0, r);
          if (rollback()) {
            c = ckpt.next_cycle();
            continue;
          }
        }
        if (check_this) {
          // Replay the cycle from the snapshotted iterate in full double
          // and compare residual norms. Defect correction keeps the
          // iterate and all norms double, so the mixed residual must
          // track the oracle to within rounding; a relative excess means
          // the float path is corrupt and this configuration is done.
          if (!oracle) {
            opt::CompileOptions od = rung.opts;
            od.precision = opt::PrecisionPolicy{};
            oracle.emplace(opt::compile(build_cycle(rung.cfg), od));
            oracle->set_trace_request(policy.trace_request);
            oracle->set_progress_sink(policy.progress);
          }
          const grid::View vprev = grid::View::over(vprevb->data(),
                                                    p.domain());
          const std::vector<grid::View> oext = {vprev, p.f_view()};
          oracle->run(oext);
          const double r_oracle =
              residual_norm(oracle->output_view(0), p.f_view(), p.n, p.h);
          ++attempt.precision_checks;
          ++report.precision_checks;
          prec_checks_ctr.add(1);
          const bool violated =
              std::isfinite(r_oracle) &&
              (!std::isfinite(r) ||
               r > (1.0 + policy.precision_tolerance) * r_oracle +
                       policy.rel_tol_floor);
          PMG_TRACE_INSTANT(PrecisionCheck, c, -1, violated ? 1 : 0, r);
          if (violated) {
            ++attempt.precision_violations;
            ++report.precision_violations;
            prec_viol_ctr.add(1);
            push_bounded(report.residual_history, r, policy.history_limit,
                         report.history_dropped);
            attempt.last_residual = r;
            attempt.trend = health::Trend::Diverging;
            break;  // the ladder's PrecisionFallback rung takes over
          }
        }
        push_bounded(report.residual_history, r, policy.history_limit,
                     report.history_dropped);
        PMG_TRACE_INSTANT(Residual, static_cast<int>(ri), c, 0, r);
        attempt.last_residual = r;
        attempt.trend = monitor.observe(r);
        prev_r = r;
        ++c;
        if (r <= target) {
          attempt.converged = true;
          break;
        }
        if (attempt.trend != health::Trend::Converging) break;
        if (ckpt_on && c % policy.checkpoint_cadence == 0) capture(c);
      }
      attempt.executor_fallbacks =
          ex.report().fallback_runs - fallbacks_before;
    } catch (const Error& e) {
      // A deadline/cancel trip mid-cycle is a stop, not a failure to
      // degrade around: the aborted run never reached the copy-out, so
      // p.v still holds the last completed cycle's iterate (bit-exact
      // across schedules and thread counts).
      if (e.code() == ErrorCode::DeadlineExceeded ||
          e.code() == ErrorCode::Cancelled) {
        attempt.error = e.what();
        finalize_stopped(std::move(attempt), e.code());
        return report;
      }
      attempt.threw = true;
      attempt.error = e.what();
      attempt.trend = health::Trend::Diverging;
    }

    const bool done = attempt.converged;
    // An attempt that was still contracting when it hit the cycle cap
    // ran out of budget, not of numerical health — no ladder rung fixes
    // that, and every rung is a strictly weaker configuration. Stop and
    // report instead of degrading a working solve.
    const bool out_of_budget = !done && !attempt.threw &&
                               attempt.trend == health::Trend::Converging;
    report.attempts.push_back(std::move(attempt));
    if (done) {
      report.converged = true;
      report.final_residual = report.attempts.back().last_residual;
      return report;
    }
    if (out_of_budget) break;
  }

  // Ladder exhausted: leave the last attempt's iterate in place and
  // report honestly. The final residual is the best the last rung got.
  report.final_residual = report.attempts.empty()
                              ? report.initial_residual
                              : report.attempts.back().last_residual;
  return report;
}

void attach_convergence(const SolveReport& sr, obs::RunReport& rr) {
  rr.have_convergence = true;
  rr.converged = sr.converged;
  rr.initial_residual = sr.initial_residual;
  rr.final_residual = sr.final_residual;
  rr.total_cycles = sr.total_cycles;
  rr.residual_history = sr.residual_history;
  rr.residual_history_dropped = sr.history_dropped;
  rr.attempt_lines.clear();
  for (std::size_t i = 0; i < sr.attempts.size(); ++i) {
    const SolveAttempt& a = sr.attempts[i];
    std::ostringstream os;
    os << "[" << i << "] " << to_string(a.kind) << " (" << a.description
       << "): " << a.cycles << " cycle(s), " << a.first_residual << " -> "
       << a.last_residual;
    if (a.threw) os << ", failed: " << a.error;
    if (a.converged) os << ", converged";
    if (a.executor_fallbacks > 0) {
      os << ", " << a.executor_fallbacks << " executor fallback(s)";
    }
    if (a.rollbacks > 0) {
      os << ", " << a.rollbacks << " rollback(s)";
      if (a.crashes > 0) os << " (" << a.crashes << " crash)";
      if (a.sdc_detected > 0) os << " (" << a.sdc_detected << " SDC)";
    }
    if (a.mixed_precision) {
      os << ", mixed precision (" << a.precision_checks
         << " oracle check(s), " << a.precision_violations
         << " violation(s))";
    }
    rr.attempt_lines.push_back(os.str());
  }
}

std::string SolveReport::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << ": residual "
     << initial_residual << " -> " << final_residual << " in "
     << total_cycles << " cycle(s), " << attempts.size()
     << " attempt(s)";
  if (deadline_hit) os << ", stopped by deadline (best iterate kept)";
  if (cancelled) os << ", cancelled (best iterate kept)";
  if (checkpoint_writes > 0 || checkpoint_restores > 0) {
    os << ", " << checkpoint_writes << " checkpoint(s), "
       << checkpoint_restores << " restore(s)";
  }
  if (sdc_detected > 0) os << ", " << sdc_detected << " SDC detected";
  if (precision_checks > 0 || precision_violations > 0) {
    os << ", " << precision_checks << " precision check(s), "
       << precision_violations << " violation(s)";
  }
  if (history_dropped > 0) {
    os << ", history ring dropped " << history_dropped << " oldest";
  }
  os << "\n";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const SolveAttempt& a = attempts[i];
    os << "  [" << i << "] " << a.description << ": ";
    if (a.threw) {
      os << "failed (" << a.error << ")";
    } else {
      os << a.cycles << " cycle(s), " << a.first_residual << " -> "
         << a.last_residual << ", " << health::to_string(a.trend);
      if (a.converged) os << ", converged";
      if (a.executor_fallbacks > 0) {
        os << ", " << a.executor_fallbacks << " executor fallback(s)";
      }
      if (a.rollbacks > 0) {
        os << ", " << a.rollbacks << " rollback(s)";
        if (a.crashes > 0) os << " [" << a.crashes << " crash]";
        if (a.sdc_detected > 0) os << " [" << a.sdc_detected << " SDC]";
      }
      if (a.mixed_precision) {
        os << ", mixed [" << a.precision_checks << " check(s), "
           << a.precision_violations << " violation(s)]";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace polymg::solvers
