#include "polymg/solvers/guarded.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "polymg/common/error.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/runtime/guarded.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {

namespace {

/// One rung of the ladder: a full configuration to try from scratch.
struct Rung {
  CycleConfig cfg;
  opt::CompileOptions opts;
  std::string description;
  RungKind kind = RungKind::AsConfigured;
};

const char* smoother_name(SmootherKind s) {
  switch (s) {
    case SmootherKind::Jacobi: return "Jacobi";
    case SmootherKind::GSRB: return "GSRB";
    case SmootherKind::Chebyshev: return "Chebyshev";
  }
  return "?";
}

/// Build the degradation ladder. Remedies are cumulative: once the plan
/// has been dropped to reference, every later rung keeps it; once the
/// smoother is Jacobi, omega backoff is the only lever left.
std::vector<Rung> build_ladder(const CycleConfig& cfg,
                               const opt::CompileOptions& opts,
                               const GuardPolicy& policy) {
  std::vector<Rung> ladder;
  ladder.push_back({cfg, opts, "as configured", RungKind::AsConfigured});
  CycleConfig cur = cfg;
  opt::CompileOptions cur_opts = opts;
  while (static_cast<int>(ladder.size()) < policy.max_attempts) {
    if (policy.allow_reference_plan &&
        cur_opts.variant != opt::Variant::Naive) {
      cur_opts = opt::reference_options(cur_opts);
      ladder.push_back({cur, cur_opts, "reference plan",
                        RungKind::ReferencePlan});
    } else if (policy.allow_smoother_downgrade &&
               cur.smoother != SmootherKind::Jacobi) {
      std::string from = smoother_name(cur.smoother);
      cur.smoother = SmootherKind::Jacobi;
      ladder.push_back({cur, cur_opts, from + " -> Jacobi",
                        RungKind::SmootherDowngrade});
    } else if (policy.allow_omega_reduction) {
      cur.omega *= policy.omega_backoff;
      std::ostringstream os;
      os << "omega -> " << cur.omega;
      ladder.push_back({cur, cur_opts, os.str(), RungKind::OmegaBackoff});
    } else {
      break;  // no remedies left
    }
  }
  return ladder;
}

}  // namespace

const char* to_string(RungKind k) {
  switch (k) {
    case RungKind::AsConfigured: return "as-configured";
    case RungKind::ReferencePlan: return "reference-plan";
    case RungKind::SmootherDowngrade: return "smoother-downgrade";
    case RungKind::OmegaBackoff: return "omega-backoff";
  }
  return "?";
}

SolveReport guarded_solve(const CycleConfig& cfg, PoissonProblem& p,
                          double rel_tol, const GuardPolicy& policy,
                          const opt::CompileOptions& opts) {
  SolveReport report;
  // Every retry restarts from the iterate the caller handed in.
  const grid::Buffer v0 = p.v.clone();
  const auto restore = [&] {
    std::memcpy(p.v.data(), v0.data(), v0.size() * sizeof(double));
  };

  report.initial_residual = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  report.final_residual = report.initial_residual;
  const double target =
      rel_tol * report.initial_residual + policy.rel_tol_floor;
  if (report.initial_residual <= target) {
    report.converged = true;
    return report;
  }

  auto& solver_degrades = obs::Metrics::instance().counter("solver.degrades");
  auto& solver_cycles = obs::Metrics::instance().counter("solver.cycles");
  const std::vector<Rung> ladder = build_ladder(cfg, opts, policy);
  for (std::size_t ri = 0; ri < ladder.size(); ++ri) {
    const Rung& rung = ladder[ri];
    SolveAttempt attempt;
    attempt.description = rung.description;
    attempt.kind = rung.kind;
    if (!report.attempts.empty()) {
      // Walking down a rung is a degradation decision — record it where
      // both the trace and the metrics snapshot can see it.
      solver_degrades.add(1);
      PMG_TRACE_INSTANT(Degrade, -1, static_cast<int>(ri),
                        static_cast<int>(rung.kind), 0.0);
      restore();
    }
    attempt.first_residual =
        residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    attempt.last_residual = attempt.first_residual;

    health::ResidualMonitor monitor(
        {policy.divergence_factor, policy.stagnation_ratio,
         policy.stagnation_window});
    try {
      runtime::GuardedExecutor ex(build_cycle(rung.cfg), rung.opts);
      for (int c = 0; c < policy.max_cycles; ++c) {
        const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
        ex.run(ext);
        grid::copy_region(p.v_view(), ex.output_view(0), p.domain());
        const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
        ++attempt.cycles;
        ++report.total_cycles;
        solver_cycles.add(1);
        report.residual_history.push_back(r);
        PMG_TRACE_INSTANT(Residual, static_cast<int>(ri), c, 0, r);
        attempt.last_residual = r;
        attempt.trend = monitor.observe(r);
        if (r <= target) {
          attempt.converged = true;
          break;
        }
        if (attempt.trend != health::Trend::Converging) break;
      }
      attempt.executor_fallbacks = ex.report().fallback_runs;
    } catch (const Error& e) {
      attempt.threw = true;
      attempt.error = e.what();
      attempt.trend = health::Trend::Diverging;
    }

    const bool done = attempt.converged;
    // An attempt that was still contracting when it hit the cycle cap
    // ran out of budget, not of numerical health — no ladder rung fixes
    // that, and every rung is a strictly weaker configuration. Stop and
    // report instead of degrading a working solve.
    const bool out_of_budget = !done && !attempt.threw &&
                               attempt.trend == health::Trend::Converging;
    report.attempts.push_back(std::move(attempt));
    if (done) {
      report.converged = true;
      report.final_residual = report.attempts.back().last_residual;
      return report;
    }
    if (out_of_budget) break;
  }

  // Ladder exhausted: leave the last attempt's iterate in place and
  // report honestly. The final residual is the best the last rung got.
  report.final_residual = report.attempts.empty()
                              ? report.initial_residual
                              : report.attempts.back().last_residual;
  return report;
}

void attach_convergence(const SolveReport& sr, obs::RunReport& rr) {
  rr.have_convergence = true;
  rr.converged = sr.converged;
  rr.initial_residual = sr.initial_residual;
  rr.final_residual = sr.final_residual;
  rr.total_cycles = sr.total_cycles;
  rr.residual_history = sr.residual_history;
  rr.attempt_lines.clear();
  for (std::size_t i = 0; i < sr.attempts.size(); ++i) {
    const SolveAttempt& a = sr.attempts[i];
    std::ostringstream os;
    os << "[" << i << "] " << to_string(a.kind) << " (" << a.description
       << "): " << a.cycles << " cycle(s), " << a.first_residual << " -> "
       << a.last_residual;
    if (a.threw) os << ", failed: " << a.error;
    if (a.converged) os << ", converged";
    if (a.executor_fallbacks > 0) {
      os << ", " << a.executor_fallbacks << " executor fallback(s)";
    }
    rr.attempt_lines.push_back(os.str());
  }
}

std::string SolveReport::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << ": residual "
     << initial_residual << " -> " << final_residual << " in "
     << total_cycles << " cycle(s), " << attempts.size()
     << " attempt(s)\n";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const SolveAttempt& a = attempts[i];
    os << "  [" << i << "] " << a.description << ": ";
    if (a.threw) {
      os << "failed (" << a.error << ")";
    } else {
      os << a.cycles << " cycle(s), " << a.first_residual << " -> "
         << a.last_residual << ", " << health::to_string(a.trend);
      if (a.converged) os << ", converged";
      if (a.executor_fallbacks > 0) {
        os << ", " << a.executor_fallbacks << " executor fallback(s)";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace polymg::solvers
