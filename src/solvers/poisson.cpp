#include "polymg/solvers/poisson.hpp"

#include <cmath>
#include <numbers>

#include "polymg/common/rng.hpp"

namespace polymg::solvers {

namespace {

PoissonProblem make_base(int ndim, index_t n) {
  PoissonProblem p;
  p.ndim = ndim;
  p.n = n;
  p.h = 1.0 / static_cast<double>(n + 1);
  p.v = grid::make_grid(p.domain());
  p.f = grid::make_grid(p.domain());
  p.exact = grid::make_grid(p.domain());
  return p;
}

}  // namespace

PoissonProblem PoissonProblem::manufactured(int ndim, index_t n) {
  PoissonProblem p = make_base(ndim, n);
  const double pi = std::numbers::pi;
  const double coeff = static_cast<double>(ndim) * pi * pi;
  auto u = [&](index_t i, index_t j, index_t k) {
    double val = std::sin(pi * p.h * static_cast<double>(i)) *
                 std::sin(pi * p.h * static_cast<double>(j));
    if (ndim == 3) val *= std::sin(pi * p.h * static_cast<double>(k));
    return val;
  };
  grid::fill_region(p.exact_view(), p.interior(),
                    [&](index_t i, index_t j, index_t k) {
                      return u(i, j, k);
                    });
  grid::fill_region(p.f_view(), p.interior(),
                    [&](index_t i, index_t j, index_t k) {
                      return coeff * u(i, j, k);
                    });
  return p;
}

PoissonProblem PoissonProblem::random_rhs(int ndim, index_t n,
                                          std::uint64_t seed) {
  PoissonProblem p = make_base(ndim, n);
  Rng rng(seed);
  grid::fill_region(p.f_view(), p.interior(),
                    [&](index_t, index_t, index_t) {
                      return rng.uniform(-1.0, 1.0);
                    });
  grid::fill_region(p.v_view(), p.interior(),
                    [&](index_t, index_t, index_t) {
                      return rng.uniform(-0.1, 0.1);
                    });
  return p;
}

}  // namespace polymg::solvers
