#include "polymg/solvers/checkpoint.hpp"

#include <cstring>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/runtime/pool.hpp"

namespace polymg::solvers {

namespace {

/// FNV-1a over 8-byte words, four interleaved lanes folded together at
/// the end. A single FNV chain is latency-bound on the multiply (~4
/// cycles per word); four independent chains keep the digest close to
/// copy speed, which matters because it sits on the per-checkpoint
/// critical path. Any single-bit flip changes its lane's chain and so
/// the folded digest. When `dst` is non-null each word is also stored
/// there — the fused snapshot-and-digest used by Checkpoint::save.
std::uint64_t digest_words(double* dst, const double* src, std::size_t n) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h[4] = {0xcbf29ce484222325ULL, 0x84222325cbf29ce4ULL,
                        0x9ce484222325cbf2ULL, 0x2325cbf29ce48422ULL};
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w;
    std::memcpy(&w, src + i, sizeof(w));
    h[i & 3] = (h[i & 3] ^ w) * kPrime;
    if (dst != nullptr) std::memcpy(dst + i, &w, sizeof(w));
  }
  std::uint64_t r = 0xcbf29ce484222325ULL;
  for (std::uint64_t lane : h) r = (r ^ lane) * kPrime;
  return r;
}

}  // namespace

std::uint64_t payload_checksum(const double* p, std::size_t n) {
  return digest_words(nullptr, p, n);
}

Checkpoint::Checkpoint(runtime::MemoryPool& pool) : pool_(pool) {
  auto& m = obs::Metrics::instance();
  ctr_writes_ = &m.counter("resil.checkpoint_writes");
  ctr_restores_ = &m.counter("resil.checkpoint_restores");
  ctr_restore_failures_ = &m.counter("resil.restore_failures");
}

Checkpoint::~Checkpoint() { release(); }

void Checkpoint::begin(int next_cycle, int rung) {
  PMG_CHECK(next_cycle >= 0, "checkpoint cycle must be >= 0");
  valid_ = false;
  next_cycle_ = next_cycle;
  rung_ = rung;
}

void Checkpoint::save(std::size_t slot, const double* p, index_t doubles) {
  PMG_CHECK(doubles >= 0, "negative checkpoint slot size");
  PMG_CHECK(slot <= entries_.size(),
            "checkpoint slots must be appended densely (slot "
                << slot << " after " << entries_.size() << ")");
  if (slot == entries_.size()) entries_.push_back(Slot{});
  Slot& s = entries_[slot];
  if (s.capacity < doubles) {
    if (s.data != nullptr) pool_.pool_deallocate(s.data);
    s.data = pool_.pool_allocate(doubles);
    s.capacity = doubles;
  }
  // Fused snapshot + digest: one pass reads each source word, folds it
  // into the lane digests and stores it — a separate checksum pass
  // would nearly double the capture cost (restore keeps the two-pass
  // shape; it is the rare path).
  s.used = doubles;
  s.checksum = digest_words(s.data, p, static_cast<std::size_t>(doubles));
}

void Checkpoint::set_meta(std::size_t i, double v) {
  if (i >= meta_.size()) meta_.resize(i + 1, 0.0);
  meta_[i] = v;
}

double Checkpoint::meta(std::size_t i) const {
  PMG_CHECK(i < meta_.size(), "checkpoint meta index " << i << " unset");
  return meta_[i];
}

void Checkpoint::commit() {
  // Storage corruption between capture and restore (fault site
  // `checkpoint.corrupt`): flip one payload byte *after* the checksum was
  // computed — silent until restore() verifies.
  if (!entries_.empty() && entries_[0].used > 0 &&
      fault::should_fail(fault::kCheckpointCorrupt)) {
    obs::Metrics::instance().counter("fault.checkpoint_corrupt").add(1);
    unsigned char* b = reinterpret_cast<unsigned char*>(entries_[0].data);
    b[static_cast<std::size_t>(entries_[0].used) * sizeof(double) / 2] ^=
        0x10;
    PMG_TRACE_INSTANT(FaultInjected, -1, -1, /*site=*/3, 0.0);
  }
  valid_ = true;
  ctr_writes_->add(1);
  double bytes = 0.0;
  for (const Slot& s : entries_) {
    bytes += static_cast<double>(s.used) * sizeof(double);
  }
  PMG_TRACE_INSTANT(CheckpointWrite, -1, -1, next_cycle_, bytes);
}

index_t Checkpoint::slot_doubles(std::size_t slot) const {
  PMG_CHECK(slot < entries_.size(), "checkpoint slot " << slot << " unset");
  return entries_[slot].used;
}

std::uint64_t Checkpoint::slot_checksum(std::size_t slot) const {
  PMG_CHECK(slot < entries_.size(), "checkpoint slot " << slot << " unset");
  return entries_[slot].checksum;
}

bool Checkpoint::restore(std::size_t slot, double* dst,
                         index_t doubles) const {
  PMG_CHECK(valid_, "restore from an uncommitted checkpoint");
  PMG_CHECK(slot < entries_.size(), "checkpoint slot " << slot << " unset");
  const Slot& s = entries_[slot];
  PMG_CHECK(doubles == s.used, "checkpoint slot " << slot << " holds "
                                                  << s.used << " doubles, "
                                                  << doubles << " requested");
  if (payload_checksum(s.data, static_cast<std::size_t>(s.used)) !=
      s.checksum) {
    ctr_restore_failures_->add(1);
    PMG_TRACE_INSTANT(CheckpointRestore, -1, -1, next_cycle_, 0.0);
    return false;
  }
  std::memcpy(dst, s.data, static_cast<std::size_t>(s.used) * sizeof(double));
  ctr_restores_->add(1);
  PMG_TRACE_INSTANT(CheckpointRestore, -1, -1, next_cycle_, 1.0);
  return true;
}

void Checkpoint::release() {
  for (Slot& s : entries_) {
    if (s.data != nullptr) pool_.pool_deallocate(s.data);
  }
  entries_.clear();
  meta_.clear();
  valid_ = false;
  next_cycle_ = -1;
}

}  // namespace polymg::solvers
