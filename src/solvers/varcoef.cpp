#include "polymg/solvers/varcoef.hpp"

#include <cmath>
#include <numbers>

#include "polymg/common/error.hpp"
#include "polymg/common/rng.hpp"

namespace polymg::solvers {

using ir::BoundaryKind;
using ir::Expr;
using ir::FuncSpec;
using ir::Handle;
using ir::PipelineBuilder;
using ir::SourceRef;
using poly::Box;

namespace {

VarCoefProblem make_base(int ndim, index_t n) {
  VarCoefProblem p;
  p.ndim = ndim;
  p.n = n;
  p.h = 1.0 / static_cast<double>(n + 1);
  p.v = grid::make_grid(p.domain());
  p.f = grid::make_grid(p.domain());
  for (int d = 0; d < ndim; ++d) {
    p.beta.push_back(grid::make_grid(p.domain()));
  }
  return p;
}

void fill_rhs_and_guess(VarCoefProblem& p, std::uint64_t seed) {
  Rng rng(seed);
  grid::fill_region(p.f_view(), p.interior(),
                    [&](index_t, index_t, index_t) {
                      return rng.uniform(-1.0, 1.0);
                    });
}

}  // namespace

VarCoefProblem VarCoefProblem::smooth_coefficients(int ndim, index_t n,
                                                   std::uint64_t seed) {
  VarCoefProblem p = make_base(ndim, n);
  const double pi = std::numbers::pi;
  for (int d = 0; d < ndim; ++d) {
    grid::fill_region(p.beta_view(d), p.domain(),
                      [&](index_t i, index_t j, index_t k) {
                        const double x = i * p.h, y = j * p.h, z = k * p.h;
                        return 1.0 + 0.5 * std::sin(pi * x) *
                                         std::sin(pi * y) *
                                         (ndim == 3 ? std::sin(pi * z) : 1.0);
                      });
  }
  fill_rhs_and_guess(p, seed);
  return p;
}

VarCoefProblem VarCoefProblem::inclusion(int ndim, index_t n, double ratio,
                                         std::uint64_t seed) {
  VarCoefProblem p = make_base(ndim, n);
  const index_t lo = (n + 1) / 4, hi = 3 * (n + 1) / 4;
  for (int d = 0; d < ndim; ++d) {
    grid::fill_region(p.beta_view(d), p.domain(),
                      [&](index_t i, index_t j, index_t k) {
                        const bool inside =
                            i >= lo && i <= hi && j >= lo && j <= hi &&
                            (ndim == 2 || (k >= lo && k <= hi));
                        return inside ? ratio : 1.0;
                      });
  }
  fill_rhs_and_guess(p, seed);
  return p;
}

std::vector<grid::Buffer> coarsen_coefficients(
    const std::vector<grid::Buffer>& fine, int ndim, index_t nf) {
  const index_t nc = (nf + 1) / 2 - 1;
  const Box fdom = Box::cube(ndim, 0, nf + 1);
  const Box cdom = Box::cube(ndim, 0, nc + 1);
  std::vector<grid::Buffer> coarse;
  for (int d = 0; d < ndim; ++d) {
    grid::Buffer cb = grid::make_grid(cdom);
    grid::View cv = grid::View::over(cb.data(), cdom);
    const grid::View fv = grid::View::over(
        const_cast<double*>(fine[static_cast<std::size_t>(d)].data()), fdom);
    // Coarse face (lower d-face of vertex x) spans two fine faces along
    // dimension d; their arithmetic mean is the coarse coefficient.
    grid::fill_region(cv, cdom, [&](index_t i, index_t j, index_t k) {
      index_t a[3] = {2 * i, 2 * j, 2 * k};
      index_t b[3] = {2 * i, 2 * j, 2 * k};
      a[d] = std::max<index_t>(0, 2 * (d == 0 ? i : d == 1 ? j : k) - 1);
      for (int q = 0; q < 3; ++q) {
        a[q] = std::min(a[q], nf + 1);
        b[q] = std::min(b[q], nf + 1);
      }
      const double fa = ndim == 2 ? fv.at2(a[0], a[1]) : fv.at3(a[0], a[1], a[2]);
      const double fb = ndim == 2 ? fv.at2(b[0], b[1]) : fv.at3(b[0], b[1], b[2]);
      return 0.5 * (fa + fb);
    });
    coarse.push_back(std::move(cb));
  }
  return coarse;
}

namespace {

/// Recursive builder for the variable-coefficient cycle. Mirrors the
/// Poisson CycleBuilder but the operator reads the per-level β inputs.
struct VcBuilder {
  PipelineBuilder& b;
  const CycleConfig& cfg;
  /// beta[l][d] external handles, l = level index.
  std::vector<std::vector<Handle>> beta;

  Box dom(int l) const { return Box::cube(cfg.ndim, 0, cfg.level_n(l) + 1); }
  Box inter(int l) const { return Box::cube(cfg.ndim, 1, cfg.level_n(l)); }
  FuncSpec spec(const std::string& base, int l) const {
    FuncSpec s;
    s.name = base + "_L" + std::to_string(l);
    s.domain = dom(l);
    s.interior = inter(l);
    s.boundary = BoundaryKind::Zero;
    s.level = l;
    return s;
  }

  /// Flux sum Σ_d [β_d(x)(u(x)-u(x-e_d)) + β_d(x+e_d)(u(x)-u(x+e_d))],
  /// given sources: u at slot su, β_d at slots sb..sb+ndim-1.
  Expr flux(std::span<const SourceRef> s, int su, int sb) const {
    Expr acc;
    for (int d = 0; d < cfg.ndim; ++d) {
      std::array<index_t, 3> lo{}, hi{};
      lo[d] = -1;
      hi[d] = 1;
      const SourceRef& u = s[static_cast<std::size_t>(su)];
      const SourceRef& bb = s[static_cast<std::size_t>(sb + d)];
      Expr lo_term = bb.at_offsets({0, 0, 0}) *
                     (u.at_offsets({0, 0, 0}) - u.at_offsets(lo));
      std::array<index_t, 3> face{};
      face[d] = 1;
      Expr hi_term = bb.at_offsets(face) *
                     (u.at_offsets({0, 0, 0}) - u.at_offsets(hi));
      Expr term = lo_term + hi_term;
      acc = acc ? acc + term : term;
    }
    return acc;
  }

  /// Variable diagonal scale Σ_d (β_d(x) + β_d(x+e_d)).
  Expr diag_sum(std::span<const SourceRef> s, int sb) const {
    Expr acc;
    for (int d = 0; d < cfg.ndim; ++d) {
      std::array<index_t, 3> face{};
      face[d] = 1;
      const SourceRef& bb = s[static_cast<std::size_t>(sb + d)];
      Expr term = bb.at_offsets({0, 0, 0}) + bb.at_offsets(face);
      acc = acc ? acc + term : term;
    }
    return acc;
  }

  std::vector<Handle> level_sources(int l, Handle f) const {
    std::vector<Handle> src{f};
    for (int d = 0; d < cfg.ndim; ++d) {
      src.push_back(beta[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(d)]);
    }
    return src;
  }

  /// β-weighted Jacobi: u - ω (flux - h²f) / Σβ. The division by the
  /// coefficient sum is genuinely point-wise-nonlinear in the loads, so
  /// these stages exercise the bytecode fallback of the code generator.
  Handle smoother(Handle v, Handle f, int l, int steps,
                  const std::string& tag) {
    if (steps == 0 && !v.valid()) return Handle{};
    const double h2 = cfg.level_h(l) * cfg.level_h(l);
    Handle v0 = v;
    int remaining = steps;
    if (!v0.valid()) {
      v0 = b.define(spec(tag + "_seed", l), level_sources(l, f),
                    [&](std::span<const SourceRef> s) {
                      // One step from zero: ω·h²·f / Σβ.
                      return ir::make_const(cfg.omega * h2) * s[0]() /
                             diag_sum(s, 1);
                    });
      remaining = steps - 1;
    }
    if (remaining <= 0) return v0;
    std::vector<Handle> others = level_sources(l, f);
    return b.define_tstencil(
        spec(tag, l), v0, others, remaining,
        [&](std::span<const SourceRef> s) {
          // Sources: [prev u, f, beta...].
          return s[0]() - ir::make_const(cfg.omega) *
                              (flux(s, 0, 2) - ir::make_const(h2) * s[1]()) /
                              diag_sum(s, 2);
        });
  }

  Handle defect(Handle v, Handle f, int l) {
    if (!v.valid()) {
      return b.define(spec("defect", l), {f},
                      [&](std::span<const SourceRef> s) { return s[0](); });
    }
    std::vector<Handle> src{v, f};
    for (int d = 0; d < cfg.ndim; ++d) {
      src.push_back(beta[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(d)]);
    }
    const double inv_h2 = 1.0 / (cfg.level_h(l) * cfg.level_h(l));
    return b.define(spec("defect", l), src,
                    [&](std::span<const SourceRef> s) {
                      return s[1]() -
                             ir::make_const(inv_h2) * flux(s, 0, 2);
                    });
  }

  Handle restrict_(Handle r, int l) {
    return b.define_restrict(
        spec("restrict", l - 1), {r}, [&](std::span<const SourceRef> s) {
          return cfg.ndim == 2
                     ? ir::stencil2(s[0], ir::full_weighting_2d(), 1.0 / 16)
                     : ir::stencil3(s[0], ir::full_weighting_3d(), 1.0 / 64);
        });
  }

  Handle interpolate(Handle e, int l) {
    if (!e.valid()) {
      return b.define(spec("interp", l), {},
                      [&](std::span<const SourceRef>) {
                        return ir::make_const(0.0);
                      });
    }
    return b.define_interp(
        spec("interp", l), {e}, [&](std::span<const SourceRef> s) {
          std::vector<Expr> cases;
          const int ncases = 1 << cfg.ndim;
          for (int c = 0; c < ncases; ++c) {
            Expr sum;
            int npts = 0;
            for (int corner = 0; corner < ncases; ++corner) {
              std::array<index_t, 3> off{};
              bool skip = false;
              for (int d = 0; d < cfg.ndim; ++d) {
                const int parity = (c >> (cfg.ndim - 1 - d)) & 1;
                const int pick = (corner >> (cfg.ndim - 1 - d)) & 1;
                if (pick && !parity) skip = true;
                off[d] = pick;
              }
              if (skip) continue;
              Expr load = s[0].at_offsets(off);
              sum = sum ? sum + load : load;
              ++npts;
            }
            cases.push_back(npts == 1 ? sum
                                      : ir::make_const(1.0 / npts) * sum);
          }
          return cases;
        });
  }

  Handle visit(Handle v, Handle f, int l, CycleKind kind) {
    if (l == 0) return smoother(v, f, 0, cfg.n2, "smooth_c");
    Handle s1 = smoother(v, f, l, cfg.n1, "smooth_pre");
    Handle r = defect(s1, f, l);
    Handle r2 = restrict_(r, l);
    Handle e = visit(Handle{}, r2, l - 1, kind);
    if (kind == CycleKind::W && l >= 2) {
      e = visit(e, r2, l - 1, kind);
    } else if (kind == CycleKind::F) {
      e = visit(e, r2, l - 1, CycleKind::V);
    }
    Handle eh = interpolate(e, l);
    Handle vc = s1.valid()
                    ? b.define(spec("correct", l), {s1, eh},
                               [&](std::span<const SourceRef> s) {
                                 return s[0]() + s[1]();
                               })
                    : eh;
    return smoother(vc, f, l, cfg.n3, "smooth_post");
  }
};

}  // namespace

ir::Pipeline build_varcoef_cycle(const CycleConfig& cfg) {
  cfg.validate();
  PMG_CHECK(cfg.smoother == SmootherKind::Jacobi,
            "variable-coefficient cycles use beta-weighted Jacobi");
  PipelineBuilder b(cfg.ndim);
  const Box dom = Box::cube(cfg.ndim, 0, cfg.n + 1);
  Handle V = b.input("V", dom);
  Handle F = b.input("F", dom);
  VcBuilder vb{b, cfg, {}};
  vb.beta.resize(static_cast<std::size_t>(cfg.levels));
  for (int l = cfg.levels - 1; l >= 0; --l) {
    for (int d = 0; d < cfg.ndim; ++d) {
      vb.beta[static_cast<std::size_t>(l)].push_back(b.input(
          "beta" + std::to_string(d) + "_L" + std::to_string(l),
          Box::cube(cfg.ndim, 0, cfg.level_n(l) + 1)));
    }
  }
  Handle out = vb.visit(V, F, cfg.levels - 1, cfg.kind);
  b.mark_output(out);
  return b.build();
}

VarCoefLevels::VarCoefLevels(const CycleConfig& cfg, VarCoefProblem& p)
    : cfg_(cfg) {
  PMG_CHECK(cfg.n == p.n && cfg.ndim == p.ndim,
            "cycle/problem geometry mismatch");
  levels_.resize(static_cast<std::size_t>(cfg.levels));
  // Finest level aliases the problem's coefficients; coarser ones are
  // face-averaged copies computed once (they are solve constants).
  const std::vector<grid::Buffer>* finer = &p.beta;
  for (int l = cfg.levels - 2; l >= 0; --l) {
    levels_[static_cast<std::size_t>(l)] =
        coarsen_coefficients(*finer, cfg.ndim, cfg.level_n(l + 1));
    finer = &levels_[static_cast<std::size_t>(l)];
  }
}

std::vector<grid::View> VarCoefLevels::externals(VarCoefProblem& p) {
  std::vector<grid::View> ext{p.v_view(), p.f_view()};
  for (int l = cfg_.levels - 1; l >= 0; --l) {
    for (int d = 0; d < cfg_.ndim; ++d) {
      if (l == cfg_.levels - 1) {
        ext.push_back(p.beta_view(d));
      } else {
        const Box dom = Box::cube(cfg_.ndim, 0, cfg_.level_n(l) + 1);
        ext.push_back(grid::View::over(
            levels_[static_cast<std::size_t>(l)]
                   [static_cast<std::size_t>(d)].data(),
            dom));
      }
    }
  }
  return ext;
}

double varcoef_residual_norm(VarCoefProblem& p) {
  const double inv_h2 = 1.0 / (p.h * p.h);
  const grid::View v = p.v_view();
  const grid::View f = p.f_view();
  double sum = 0.0;
  if (p.ndim == 2) {
    const grid::View b0 = p.beta_view(0), b1 = p.beta_view(1);
    for (index_t i = 1; i <= p.n; ++i) {
      for (index_t j = 1; j <= p.n; ++j) {
        const double flux =
            b0.at2(i, j) * (v.at2(i, j) - v.at2(i - 1, j)) +
            b0.at2(i + 1, j) * (v.at2(i, j) - v.at2(i + 1, j)) +
            b1.at2(i, j) * (v.at2(i, j) - v.at2(i, j - 1)) +
            b1.at2(i, j + 1) * (v.at2(i, j) - v.at2(i, j + 1));
        const double r = f.at2(i, j) - inv_h2 * flux;
        sum += r * r;
      }
    }
  } else {
    const grid::View b0 = p.beta_view(0), b1 = p.beta_view(1),
                     b2 = p.beta_view(2);
    for (index_t i = 1; i <= p.n; ++i) {
      for (index_t j = 1; j <= p.n; ++j) {
        for (index_t k = 1; k <= p.n; ++k) {
          const double flux =
              b0.at3(i, j, k) * (v.at3(i, j, k) - v.at3(i - 1, j, k)) +
              b0.at3(i + 1, j, k) * (v.at3(i, j, k) - v.at3(i + 1, j, k)) +
              b1.at3(i, j, k) * (v.at3(i, j, k) - v.at3(i, j - 1, k)) +
              b1.at3(i, j + 1, k) * (v.at3(i, j, k) - v.at3(i, j + 1, k)) +
              b2.at3(i, j, k) * (v.at3(i, j, k) - v.at3(i, j, k - 1)) +
              b2.at3(i, j, k + 1) * (v.at3(i, j, k) - v.at3(i, j, k + 1));
          const double r = f.at3(i, j, k) - inv_h2 * flux;
          sum += r * r;
        }
      }
    }
  }
  return std::sqrt(sum);
}

}  // namespace polymg::solvers
