#include "polymg/solvers/pcg.hpp"

#include <cmath>

#include "polymg/common/error.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"

namespace polymg::solvers {

namespace {

template <typename Fn>
void for_interior(int ndim, index_t n, Fn&& fn) {
  if (ndim == 2) {
    for (index_t i = 1; i <= n; ++i) {
      for (index_t j = 1; j <= n; ++j) fn(i, j, index_t{0});
    }
  } else {
    for (index_t i = 1; i <= n; ++i) {
      for (index_t j = 1; j <= n; ++j) {
        for (index_t k = 1; k <= n; ++k) fn(i, j, k);
      }
    }
  }
}

double read(const grid::View& v, index_t i, index_t j, index_t k) {
  return v.ndim == 2 ? v.at2(i, j) : v.at3(i, j, k);
}

double& ref(grid::View& v, index_t i, index_t j, index_t k) {
  return v.ndim == 2 ? v.at2(i, j) : v.at3(i, j, k);
}

}  // namespace

double dot_interior(grid::View a, grid::View b, index_t n) {
  double s = 0.0;
  for_interior(a.ndim, n, [&](index_t i, index_t j, index_t k) {
    s += read(a, i, j, k) * read(b, i, j, k);
  });
  return s;
}

void axpy_interior(double alpha, grid::View x, grid::View y, index_t n) {
  for_interior(x.ndim, n, [&](index_t i, index_t j, index_t k) {
    ref(y, i, j, k) += alpha * read(x, i, j, k);
  });
}

void poisson_apply(grid::View out, grid::View p, index_t n, double h) {
  const double inv_h2 = 1.0 / (h * h);
  for_interior(p.ndim, n, [&](index_t i, index_t j, index_t k) {
    double a;
    if (p.ndim == 2) {
      a = 4.0 * p.at2(i, j) - p.at2(i - 1, j) - p.at2(i + 1, j) -
          p.at2(i, j - 1) - p.at2(i, j + 1);
    } else {
      a = 6.0 * p.at3(i, j, k) - p.at3(i - 1, j, k) - p.at3(i + 1, j, k) -
          p.at3(i, j - 1, k) - p.at3(i, j + 1, k) - p.at3(i, j, k - 1) -
          p.at3(i, j, k + 1);
    }
    ref(out, i, j, k) = inv_h2 * a;
  });
}

void poisson_residual(grid::View out, grid::View v, grid::View f, index_t n,
                      double h) {
  poisson_apply(out, v, n, h);
  for_interior(v.ndim, n, [&](index_t i, index_t j, index_t k) {
    ref(out, i, j, k) = read(f, i, j, k) - read(out, i, j, k);
  });
}

PcgResult pcg_solve(PoissonProblem& p, const CycleConfig& precond,
                    const PcgOptions& opts) {
  PMG_CHECK(precond.ndim == p.ndim && precond.n == p.n,
            "preconditioner cycle must match the problem geometry");
  const poly::Box dom = p.domain();
  grid::Buffer r_buf = grid::make_grid(dom);
  grid::Buffer z_buf = grid::make_grid(dom);
  grid::Buffer q_buf = grid::make_grid(dom);   // A p
  grid::Buffer pd_buf = grid::make_grid(dom);  // search direction
  grid::Buffer zero = grid::make_grid(dom);    // zero guess for M
  grid::View r = grid::View::over(r_buf.data(), dom);
  grid::View z = grid::View::over(z_buf.data(), dom);
  grid::View q = grid::View::over(q_buf.data(), dom);
  grid::View pd = grid::View::over(pd_buf.data(), dom);
  grid::View v = p.v_view();

  // The preconditioner: one V-cycle on A z = r with zero initial guess.
  std::unique_ptr<runtime::Executor> mg;
  if (opts.use_mg_preconditioner) {
    mg = std::make_unique<runtime::Executor>(opt::compile(
        build_cycle(precond),
        opt::CompileOptions::for_variant(opts.variant, p.ndim)));
  }
  auto apply_M = [&](grid::View rhs, grid::View out) {
    if (!mg) {
      grid::copy_region(out, rhs, dom);  // identity: plain CG
      return;
    }
    const std::vector<grid::View> ext = {
        grid::View::over(zero.data(), dom), rhs};
    mg->run(ext);
    grid::copy_region(out, mg->output_view(0), dom);
  };

  PcgResult res;
  poisson_residual(r, v, p.f_view(), p.n, p.h);
  const double r0 = std::sqrt(dot_interior(r, r, p.n));
  res.history.push_back(r0);
  if (r0 == 0.0) {
    res.converged = true;
    res.rel_residual = 0.0;
    return res;
  }

  apply_M(r, z);
  grid::copy_region(pd, z, dom);
  double rz = dot_interior(r, z, p.n);

  for (int it = 0; it < opts.max_iterations; ++it) {
    poisson_apply(q, pd, p.n, p.h);
    const double alpha = rz / dot_interior(pd, q, p.n);
    axpy_interior(alpha, pd, v, p.n);
    axpy_interior(-alpha, q, r, p.n);

    const double rn = std::sqrt(dot_interior(r, r, p.n));
    res.history.push_back(rn);
    res.iterations = it + 1;
    res.rel_residual = rn / r0;
    if (res.rel_residual < opts.tolerance) {
      res.converged = true;
      break;
    }

    apply_M(r, z);
    const double rz_next = dot_interior(r, z, p.n);
    const double beta = rz_next / rz;
    rz = rz_next;
    // pd = z + beta * pd.
    for_interior(p.ndim, p.n, [&](index_t i, index_t j, index_t k) {
      ref(pd, i, j, k) = read(z, i, j, k) + beta * read(pd, i, j, k);
    });
  }
  return res;
}

}  // namespace polymg::solvers
