// Poisson model problems (the paper's benchmark PDE, Eq. 1: ∇²u = f)
// with homogeneous Dirichlet boundaries on the unit square/cube,
// discretized by finite differences. The discrete system solved by the
// cycles is A u = f with A = -∇²_h (the 5-/7-point Laplacian over h²),
// matching the smoother/residual stencils of the DSL programs.
#pragma once

#include "polymg/grid/ops.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::solvers {

struct PoissonProblem {
  int ndim = 2;
  index_t n = 0;       ///< interior points per dimension
  double h = 0.0;      ///< mesh width 1/(n+1)
  grid::Buffer v;      ///< iterate (initial guess), domain (n+2)^d
  grid::Buffer f;      ///< right-hand side
  grid::Buffer exact;  ///< manufactured exact solution (for error norms)

  poly::Box domain() const { return poly::Box::cube(ndim, 0, n + 1); }
  poly::Box interior() const { return poly::Box::cube(ndim, 1, n); }

  grid::View v_view() { return grid::View::over(v.data(), domain()); }
  grid::View f_view() { return grid::View::over(f.data(), domain()); }
  grid::View exact_view() { return grid::View::over(exact.data(), domain()); }

  /// Manufactured problem: u = Π_d sin(π x_d), f = A u = d·π²·u, zero
  /// initial guess. The exact discrete solution differs from u by the
  /// O(h²) discretization error; convergence tests measure the residual.
  static PoissonProblem manufactured(int ndim, index_t n);

  /// Random right-hand side (deterministic seed) with zero guess — used
  /// by the equivalence tests so no special structure can mask bugs.
  static PoissonProblem random_rhs(int ndim, index_t n, std::uint64_t seed);
};

}  // namespace polymg::solvers
