// Full multigrid (FMG): nested iteration from the coarsest grid up, with
// a fixed number of V-cycles per level — the solver structure of HPGMG,
// the community effort the paper plans to integrate with. One FMG pass
// reaches discretization accuracy in O(N) work when the per-level cycle
// count suffices.
//
// Each level's cycle is a compiled PolyMG pipeline, so FMG composes
// `levels` compiled executors; the right-hand side hierarchy is built
// once by full weighting.
#pragma once

#include "polymg/opt/options.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {

struct FmgOptions {
  int cycles_per_level = 1;
  opt::Variant variant = opt::Variant::OptPlus;
};

struct FmgResult {
  double residual = 0.0;         ///< |f - A v|_2 on the finest level
  double initial_residual = 0.0;
};

/// Solve the problem in place by one FMG pass. `base` describes the
/// finest-level hierarchy (its n/ndim must match the problem); every
/// coarser FMG level reuses the same smoothing configuration over a
/// correspondingly shallower hierarchy.
FmgResult fmg_solve(PoissonProblem& p, const CycleConfig& base,
                    const FmgOptions& opts = {});

}  // namespace polymg::solvers
