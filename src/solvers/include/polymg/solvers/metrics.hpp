// Convergence metrics for the Poisson benchmarks.
#pragma once

#include "polymg/grid/ops.hpp"

namespace polymg::solvers {

using grid::View;
using poly::index_t;

/// L2 norm of the residual f - A v with A = -∇²_h (5-/7-point over h²),
/// over the interior [1, n]^d of (n+2)^d views.
double residual_norm(View v, View f, index_t n, double h);

/// Write the residual field r = f - A v (same operator as residual_norm)
/// over the interior [1, n]^d into `out`. Arithmetic is double; `out` may
/// be an F32 view, in which case each point rounds exactly once on store
/// — this is how the mixed-precision defect-correction loop builds the
/// float right-hand side its float cycle consumes. Ghost points of `out`
/// are left untouched (keep them zero: the cycle's restriction reads
/// only the interior, and zero matches the homogeneous boundary).
void residual_field(View v, View f, index_t n, double h, View out);

/// Max-norm error against a reference solution over the interior.
double error_norm(View v, View exact, index_t n);

}  // namespace polymg::solvers
