// Convergence metrics for the Poisson benchmarks.
#pragma once

#include "polymg/grid/ops.hpp"

namespace polymg::solvers {

using grid::View;
using poly::index_t;

/// L2 norm of the residual f - A v with A = -∇²_h (5-/7-point over h²),
/// over the interior [1, n]^d of (n+2)^d views.
double residual_norm(View v, View f, index_t n, double h);

/// Max-norm error against a reference solution over the interior.
double error_norm(View v, View exact, index_t n);

}  // namespace polymg::solvers
