// Multigrid cycle builders over the PolyMG DSL.
//
// These are the C++ equivalents of the paper's Fig. 3 Python program: a
// recursive specification of V- / W- / F-cycles for the Poisson problem
// on (N+2)^d grids, expressed entirely with the DSL constructs
// (TStencil smoothers, Stencil residuals, Restrict, Interp, point-wise
// correction). The cycle pipeline maps grids (V, F) -> smoothed V; the
// loop iterating whole cycles stays outside the pipeline, as in PolyMage.
#pragma once

#include "polymg/ir/builder.hpp"

namespace polymg::solvers {

using poly::index_t;

enum class CycleKind { V, W, F };

/// Relaxation scheme used by the smoothing steps.
///
/// The paper evaluates Jacobi and notes GSRB applies "if the red and
/// black points are abstracted as two grids" — here red/black half-sweeps
/// are parity-piecewise chain steps, so every optimization (grouping,
/// overlapped tiling, split/diamond time tiling, storage reuse) applies
/// unchanged. Chebyshev is the polynomial smoother of Ghysels,
/// Klosiewicz & Vanroose [7] that raises arithmetic intensity.
enum class SmootherKind { Jacobi, GSRB, Chebyshev };

struct CycleConfig {
  int ndim = 2;
  index_t n = 1023;  ///< finest interior points per dim (2^k - 1 so the
                     ///< coarse hierarchies align exactly)
  int levels = 4;    ///< grid hierarchy depth (paper's benchmarks use 4)
  CycleKind kind = CycleKind::V;
  int n1 = 4;  ///< pre-smoothing steps
  int n2 = 4;  ///< coarsest-level smoothing steps
  int n3 = 4;  ///< post-smoothing steps
  double omega = 2.0 / 3.0;  ///< weighted-Jacobi damping factor
  SmootherKind smoother = SmootherKind::Jacobi;
  double gsrb_omega = 1.0;   ///< GSRB over-relaxation (1 = plain GS)
  /// Chebyshev eigenvalue-bound fraction: smooth [lmax/cheby_fraction,
  /// lmax] of the spectrum of A.
  double cheby_fraction = 4.0;

  /// Interior size at level l (levels-1 = finest, 0 = coarsest).
  index_t level_n(int l) const;
  /// Mesh width at level l: 1 / (n_l + 1).
  double level_h(int l) const;
  /// The smoother's scalar weight at level l: omega * h^2 / (2*ndim)
  /// (inverse diagonal of the discrete operator, damped).
  double smoother_weight(int l) const;

  void validate() const;
};

/// Number of DAG nodes the cycle expands to (Table 3's "Stages" column).
int expected_stages(const CycleConfig& cfg);

/// Build the full cycle pipeline. Externals: [0] = V (initial guess),
/// [1] = F (right-hand side); single output = the cycle's result grid.
ir::Pipeline build_cycle(const CycleConfig& cfg);

/// Build a pipeline of just `steps` Jacobi smoothing iterations on the
/// finest grid (the Fig. 11a smoother-only benchmark).
ir::Pipeline build_smoother_only(const CycleConfig& cfg, int steps);

}  // namespace polymg::solvers
