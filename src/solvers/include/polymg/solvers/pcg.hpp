// Preconditioned conjugate gradients with a multigrid V-cycle
// preconditioner — the "multigrid as preconditioner for Krylov solvers"
// use the paper's introduction names. The preconditioner application
// z = M r is one compiled PolyMG cycle on the error equation (zero
// initial guess, right-hand side r), so every optimization variant can
// serve as the preconditioner engine.
#pragma once

#include "polymg/opt/options.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {

struct PcgResult {
  int iterations = 0;
  double rel_residual = 1.0;
  std::vector<double> history;  ///< |r|_2 after each iteration, incl. r0
  bool converged = false;
};

struct PcgOptions {
  int max_iterations = 100;
  double tolerance = 1e-8;  ///< on |r|/|r0|
  bool use_mg_preconditioner = true;
  opt::Variant variant = opt::Variant::OptPlus;
};

/// Solve A v = f (A = -∇²_h) for the problem in place; `precond`
/// describes the V-cycle used as M (its n/ndim must match the problem).
PcgResult pcg_solve(PoissonProblem& p, const CycleConfig& precond,
                    const PcgOptions& opts);

// Grid BLAS helpers used by the Krylov loop (interior-only).
double dot_interior(grid::View a, grid::View b, index_t n);
void axpy_interior(double alpha, grid::View x, grid::View y, index_t n);
/// out = f - A v.
void poisson_residual(grid::View out, grid::View v, grid::View f, index_t n,
                      double h);
/// out = A p.
void poisson_apply(grid::View out, grid::View p, index_t n, double h);

}  // namespace polymg::solvers
