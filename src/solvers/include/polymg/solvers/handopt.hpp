// Hand-optimized reference multigrid (the paper's `handopt` baseline).
//
// Mirrors the manually optimized benchmarks of Ghysels & Vanroose the
// paper compares against: explicit OpenMP loop parallelization of each
// operator, storage reuse via two modulo buffers per level (the iterate
// and one ping-pong partner), per-level RHS/residual arrays, and pooled
// allocation (every level buffer allocated once, at first use, and kept
// across cycles). Interpolation and correction are fused into one loop,
// residual and restriction are separate sweeps — the hand-written idiom.
//
// With `time_tiled_smoothing` the Jacobi sweeps run under the
// split/diamond time-tiling schedule instead of plain sweeps — the
// paper's `handopt+pluto` variant.
#pragma once

#include "polymg/grid/ops.hpp"
#include "polymg/runtime/timetile.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::solvers {

using grid::View;

class HandOptSolver {
public:
  HandOptSolver(const CycleConfig& cfg, bool time_tiled_smoothing = false,
                runtime::TimeTileParams ttp = {});

  /// Run one multigrid cycle in place: v <- cycle(v, f). Views must cover
  /// the finest (n+2)^d domain.
  void cycle(View v, View f);

  const CycleConfig& config() const { return cfg_; }

private:
  struct Level {
    index_t n = 0;
    double h = 0.0;
    double w = 0.0;        ///< smoother weight ω·h²/(2d)
    grid::Buffer v, f, tmp, r;
  };

  void visit(int l, View v, View f, bool zero_guess, CycleKind kind);
  void smooth(int l, View v, View f, int steps);
  void residual(int l, View v, View f, View r) const;
  void restrict_to(int l, View r_fine, View f_coarse) const;
  void interp_correct(int l, View e_coarse, View v_fine) const;

  CycleConfig cfg_;
  bool time_tiled_;
  runtime::TimeTileParams ttp_;
  std::vector<Level> levels_;  ///< [0] = coarsest; finest tmp in [last]
};

}  // namespace polymg::solvers
