// Pool-backed, checksummed solver-state checkpoints.
//
// A Checkpoint is a set of numbered payload slots (flat double arrays —
// per-level solution/RHS slabs, residual-history tails) plus a small
// scalar metadata block (cycle index, ladder rung, monitor state). Slot
// storage comes from a runtime::MemoryPool, so a solve that checkpoints
// on a cadence performs no malloc traffic after the first capture: the
// steady-state zero-allocation invariant holds between checkpoints and,
// once slot sizes are stable, across them.
//
// Every slot carries an FNV-1a checksum computed at capture. restore()
// re-verifies it, so a payload corrupted in storage (fault site
// `checkpoint.corrupt`, or a real bad DIMM) is detected instead of being
// smoothed into the iterate — the caller then falls back to a stronger
// remedy (guarded_solve walks its degradation ladder; the distributed
// solver declares the recovery unserviceable).
//
// Capture protocol: begin() → save()/set_meta() per slot → commit().
// A checkpoint is only valid() after commit(); a crash mid-capture
// leaves the previous generation invalid rather than half-written.
#pragma once

#include <cstdint>
#include <vector>

#include "polymg/poly/interval.hpp"

namespace polymg::runtime {
class MemoryPool;
}
namespace polymg::obs {
class Counter;
}

namespace polymg::solvers {

using poly::index_t;

/// FNV-1a over `n` doubles, one 8-byte lane per step (the slot
/// checksum; bit-flips anywhere in the payload change it).
std::uint64_t payload_checksum(const double* p, std::size_t n);

class Checkpoint {
public:
  /// `pool` must outlive the checkpoint; slot buffers are drawn from it
  /// and released back by release() / the destructor.
  explicit Checkpoint(runtime::MemoryPool& pool);
  ~Checkpoint();
  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// Start a new snapshot generation. Invalidates the checkpoint until
  /// commit(); slot buffers are retained for reuse. `next_cycle` is the
  /// cycle index execution resumes from after a restore.
  void begin(int next_cycle, int rung = 0);

  /// Capture `doubles` values into `slot` (0-based; slots may be saved in
  /// any order but the set must be dense by commit time). Reuses the
  /// slot's pooled buffer when it is large enough.
  void save(std::size_t slot, const double* p, index_t doubles);

  /// Small scalar sidecar (monitor state, residual tails). Indexed
  /// free-form by the caller; grows on first use, reused afterwards.
  void set_meta(std::size_t i, double v);
  double meta(std::size_t i) const;

  /// Seal the generation. Emits a CheckpointWrite trace event and bumps
  /// resil.checkpoint_writes. Fault site `checkpoint.corrupt`: when armed,
  /// one committed payload byte is flipped after checksumming, so the
  /// corruption is silent until restore() verifies.
  void commit();

  bool valid() const { return valid_; }
  int next_cycle() const { return next_cycle_; }
  int rung() const { return rung_; }
  std::size_t slots() const { return entries_.size(); }
  index_t slot_doubles(std::size_t slot) const;
  std::uint64_t slot_checksum(std::size_t slot) const;

  /// Copy `slot`'s payload into `dst` (size must match the capture).
  /// Verifies the checksum first; on mismatch returns false, leaves `dst`
  /// untouched, and bumps resil.restore_failures. A clean restore emits a
  /// CheckpointRestore trace event and bumps resil.checkpoint_restores.
  bool restore(std::size_t slot, double* dst, index_t doubles) const;

  /// Drop the snapshot and hand every slot buffer back to the pool.
  void release();

private:
  struct Slot {
    double* data = nullptr;  ///< pool-owned
    index_t capacity = 0;
    index_t used = 0;
    std::uint64_t checksum = 0;
  };

  runtime::MemoryPool& pool_;
  std::vector<Slot> entries_;
  std::vector<double> meta_;
  bool valid_ = false;
  int next_cycle_ = -1;
  int rung_ = 0;

  obs::Counter* ctr_writes_ = nullptr;            // resil.checkpoint_writes
  obs::Counter* ctr_restores_ = nullptr;          // resil.checkpoint_restores
  obs::Counter* ctr_restore_failures_ = nullptr;  // resil.restore_failures
};

}  // namespace polymg::solvers
