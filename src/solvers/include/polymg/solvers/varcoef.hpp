// Variable-coefficient (finite-volume flavoured) multigrid.
//
// The paper notes its techniques "are also applicable to a finite volume
// discretization, which was used for benchmarks in some past work
// [Basu et al., Williams et al.]" — miniGMG's operator family. This
// module builds that problem class through the same DSL: the operator is
//
//   (A u)_i = (1/h²) Σ_d [ β_d(i+e_d/2)(u_i - u_{i+e_d})
//                        + β_d(i-e_d/2)(u_i - u_{i-e_d}) ]
//
// with face-centred coefficients β supplied as extra pipeline inputs
// (one grid per dimension, stored at the lower face of each cell). The
// smoother is β-weighted Jacobi with the exact variable diagonal, again
// expressed point-wise in the DSL; restriction/interpolation reuse the
// constant-coefficient transfer operators. Coefficients restrict to
// coarse levels by face averaging, computed host-side once per solve
// (they are solve constants, like the paper's per-level h).
#pragma once

#include "polymg/ir/builder.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {

/// A variable-coefficient Poisson-like problem on the unit square/cube.
struct VarCoefProblem {
  int ndim = 2;
  index_t n = 0;
  double h = 0.0;
  grid::Buffer v, f;
  /// Face coefficients per dimension on the finest grid; beta[d] holds
  /// β at the lower d-face of each cell, indexed like the cell grid.
  std::vector<grid::Buffer> beta;

  poly::Box domain() const { return poly::Box::cube(ndim, 0, n + 1); }
  poly::Box interior() const { return poly::Box::cube(ndim, 1, n); }
  grid::View v_view() { return grid::View::over(v.data(), domain()); }
  grid::View f_view() { return grid::View::over(f.data(), domain()); }
  grid::View beta_view(int d) {
    return grid::View::over(beta[static_cast<std::size_t>(d)].data(),
                            domain());
  }

  /// Smoothly varying positive coefficient field (β = 1 + ½sin products)
  /// with a random RHS — the jump-free miniGMG test setting.
  static VarCoefProblem smooth_coefficients(int ndim, index_t n,
                                            std::uint64_t seed);

  /// Piecewise-constant β with a high-contrast inclusion (β = ratio
  /// inside a centred box) — the hard case for point smoothers.
  static VarCoefProblem inclusion(int ndim, index_t n, double ratio,
                                  std::uint64_t seed);
};

/// Restrict face coefficients one level: coarse face β = average of the
/// 2^(d-1) fine faces it covers (standard FV coarsening).
std::vector<grid::Buffer> coarsen_coefficients(
    const std::vector<grid::Buffer>& fine, int ndim, index_t nf);

/// Build a V/W/F-cycle pipeline for the variable-coefficient operator.
/// Externals: [V, F, beta_0..beta_{d-1} per level, coarsest last] — the
/// per-level coefficient grids are pipeline inputs, bound from
/// VarCoefLevels at execution.
ir::Pipeline build_varcoef_cycle(const CycleConfig& cfg);

/// Per-level coefficient hierarchy matching build_varcoef_cycle's
/// external layout, plus the view list builder.
class VarCoefLevels {
public:
  VarCoefLevels(const CycleConfig& cfg, VarCoefProblem& p);

  /// External views in pipeline order (V, F, then per level finest to
  /// coarsest the ndim beta grids).
  std::vector<grid::View> externals(VarCoefProblem& p);

private:
  CycleConfig cfg_;
  std::vector<std::vector<grid::Buffer>> levels_;  // [level][dim]
};

/// Residual norm of the variable-coefficient operator (for tests).
double varcoef_residual_norm(VarCoefProblem& p);

}  // namespace polymg::solvers
