// guarded_solve — a multigrid cycle loop that refuses to fail silently.
//
// The plain benchmarking loops (run N cycles, report the residual) trust
// both the compiled plan and the numerics. guarded_solve trusts neither:
// every cycle runs through runtime::GuardedExecutor (plan validation,
// output health scan, reference-plan fallback) and its residual history
// feeds a common::ResidualMonitor. When a configuration diverges or
// stagnates, the solve restarts from the initial iterate one rung down a
// degradation ladder — reference plan, then Chebyshev→Jacobi smoother
// downgrade, then repeated damping-factor backoff — until it converges
// or the ladder is exhausted. Every attempt is recorded in the returned
// SolveReport, so a degraded solve is visible, not papered over.
#pragma once

#include <string>
#include <vector>

#include "polymg/common/health.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/opt/options.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {

/// Knobs for the guarded cycle loop and its degradation ladder.
struct GuardPolicy {
  int max_cycles = 50;    ///< per-attempt cycle cap
  int max_attempts = 4;   ///< ladder length (attempt 0 = as configured)
  double rel_tol_floor = 0.0;  ///< extra absolute tolerance (0 = off)

  // Residual-monitor thresholds (see common::ResidualMonitor::Config).
  double divergence_factor = 1e3;
  double stagnation_ratio = 0.99;
  int stagnation_window = 4;

  // Which ladder rungs are allowed.
  bool allow_reference_plan = true;      ///< drop to unfused/unpooled plan
  bool allow_smoother_downgrade = true;  ///< Chebyshev/GSRB -> Jacobi
  bool allow_omega_reduction = true;     ///< omega *= omega_backoff
  double omega_backoff = 0.5;
};

/// Which remedy a ladder rung applies (mirrors build_ladder's order).
/// Also the `id` of the Degrade trace events guarded_solve emits, so a
/// trace can be correlated with the SolveReport attempt list.
enum class RungKind : int {
  AsConfigured = 0,
  ReferencePlan = 1,
  SmootherDowngrade = 2,
  OmegaBackoff = 3,
};
const char* to_string(RungKind k);

/// One rung of the ladder, as actually executed.
struct SolveAttempt {
  std::string description;  ///< e.g. "as configured", "omega -> 0.475"
  RungKind kind = RungKind::AsConfigured;
  int cycles = 0;           ///< cycles run in this attempt
  double first_residual = 0.0;
  double last_residual = 0.0;
  health::Trend trend = health::Trend::Converging;
  bool converged = false;
  bool threw = false;             ///< the executor threw mid-attempt
  std::string error;              ///< what() of that throw, if any
  int executor_fallbacks = 0;     ///< reference-plan runs inside this attempt
};

/// Full account of a guarded solve.
struct SolveReport {
  bool converged = false;
  double final_residual = 0.0;
  double initial_residual = 0.0;
  int total_cycles = 0;
  std::vector<SolveAttempt> attempts;
  /// Residual after every cycle, across all attempts, in execution order.
  std::vector<double> residual_history;
  /// Multi-line human-readable account of the ladder walk.
  std::string summary() const;
};

/// Merge a solve's convergence telemetry into an executor RunReport so
/// render() shows time attribution and convergence side by side.
void attach_convergence(const SolveReport& sr, obs::RunReport& rr);

/// Iterate multigrid cycles on `p` until the residual drops below
/// `rel_tol` times the initial residual (plus policy.rel_tol_floor
/// absolutely), walking the degradation ladder on divergence, stagnation
/// or executor failure. An attempt that is still contracting when it
/// hits max_cycles ends the solve instead — it ran out of budget, not
/// health, and every ladder rung is a weaker configuration. `p.v` holds
/// the final iterate of the last attempt; each retry restarts from the
/// iterate passed in. Never throws for numerical trouble — a solve the
/// ladder cannot save returns converged == false with the evidence in
/// `attempts`.
SolveReport guarded_solve(const CycleConfig& cfg, PoissonProblem& p,
                          double rel_tol, const GuardPolicy& policy = {},
                          const opt::CompileOptions& opts =
                              opt::CompileOptions{});

}  // namespace polymg::solvers
