// guarded_solve — a multigrid cycle loop that refuses to fail silently.
//
// The plain benchmarking loops (run N cycles, report the residual) trust
// both the compiled plan and the numerics. guarded_solve trusts neither:
// every cycle runs through runtime::GuardedExecutor (plan validation,
// output health scan, reference-plan fallback) and its residual history
// feeds a common::ResidualMonitor. When a configuration diverges or
// stagnates, the solve restarts from the initial iterate one rung down a
// degradation ladder — reference plan, then Chebyshev→Jacobi smoother
// downgrade, then repeated damping-factor backoff — until it converges
// or the ladder is exhausted. Every attempt is recorded in the returned
// SolveReport, so a degraded solve is visible, not papered over.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "polymg/common/cancel.hpp"
#include "polymg/common/error.hpp"
#include "polymg/common/health.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/opt/options.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::runtime {
class MemoryPool;
class GuardedExecutor;
}

namespace polymg::solvers {

/// Source of precompiled plans, so a caller that solves the same problem
/// signature repeatedly (the service layer's plan cache) compiles once
/// and serves every later solve from the cached CompiledPipeline. A
/// null return means "no cached plan — compile as usual"; only attempt 0
/// (the as-configured rung) consults the provider, since ladder rungs
/// are degradations that by definition differ from the cached signature.
class PlanProvider {
public:
  virtual ~PlanProvider() = default;
  virtual std::shared_ptr<const opt::CompiledPipeline> plan_for(
      const CycleConfig& cfg, const opt::CompileOptions& opts) = 0;
};

/// Knobs for the guarded cycle loop and its degradation ladder.
struct GuardPolicy {
  int max_cycles = 50;    ///< per-attempt cycle cap
  int max_attempts = 4;   ///< ladder length (attempt 0 = as configured)
  double rel_tol_floor = 0.0;  ///< extra absolute tolerance (0 = off)

  // Residual-monitor thresholds (see common::ResidualMonitor::Config).
  double divergence_factor = 1e3;
  double stagnation_ratio = 0.99;
  int stagnation_window = 4;

  // Which ladder rungs are allowed.
  bool allow_precision_fallback = true;  ///< mixed precision -> full double
  bool allow_reference_plan = true;      ///< drop to unfused/unpooled plan
  bool allow_smoother_downgrade = true;  ///< Chebyshev/GSRB -> Jacobi
  bool allow_omega_reduction = true;     ///< omega *= omega_backoff
  double omega_backoff = 0.5;

  // Mixed-precision oracle (only consulted when the solve's
  // CompileOptions request a mixed plan). Every `precision_check_cadence`
  // cycles the solve re-runs the just-completed cycle on a lazily built
  // full-double executor from the same pre-cycle iterate and compares
  // residual norms: the defect-correction outer loop keeps the iterate
  // and every norm in double, so the mixed residual must track the
  // double one to within rounding — a relative excess beyond
  // `precision_tolerance` means the float path is corrupt (or the
  // problem genuinely exceeds float dynamic range) and the attempt ends
  // with a precision violation; the ladder's PrecisionFallback rung then
  // rebuilds the same configuration in full double. 0 disables the
  // oracle (benchmarks pay for it explicitly, not by default).
  int precision_check_cadence = 4;
  double precision_tolerance = 0.5;

  // Resilience: checkpoint/rollback (DESIGN.md §9). With a cadence > 0
  // the iterate, cycle index and monitor state are snapshotted into
  // pool-backed buffers every `checkpoint_cadence` healthy cycles;
  // rollback-to-last-checkpoint then sits one rung *above* the ladder —
  // an injected crash (fault site solve.crash) or a detected silent data
  // corruption re-winds to the snapshot and continues bit-exactly on the
  // same plan instead of restarting the attempt from scratch. A corrupt
  // snapshot (checksum mismatch) falls through to the ordinary ladder.
  int checkpoint_cadence = 0;   ///< cycles between snapshots (0 = off)
  int max_rollbacks = 2;        ///< rollback budget per attempt
  /// Optional caller-owned pool for the checkpoint slots. When null the
  /// solve builds (and first-touches) a private pool each call; a
  /// long-running service that solves repeatedly should pass one
  /// persistent pool so the slot buffers — and their pages — are reused
  /// across solves and steady-state checkpointing stays allocation-free.
  /// Must outlive the guarded_solve call.
  runtime::MemoryPool* checkpoint_pool = nullptr;
  /// SDC guard: a finite residual jumping past sdc_jump_factor × the
  /// previous cycle's residual (or going non-finite) in a single cycle is
  /// flagged as silent data corruption — multigrid contracts the residual
  /// every cycle, so a jump of orders of magnitude is arithmetic, not
  /// numerics. Only consulted while a valid checkpoint exists.
  double sdc_jump_factor = 100.0;
  /// Ring bound on SolveReport::residual_history (last N entries kept),
  /// so unattended long-running solves cannot grow memory without bound.
  /// Evictions are counted in SolveReport::history_dropped.
  int history_limit = 1024;

  // Deadline-aware service execution (DESIGN.md §10).
  /// Cooperative cancellation token (non-owning, may be null; must
  /// outlive the call). The executor polls it at tile/slab granularity
  /// and the cycle loop between cycles; a trip ends the solve
  /// immediately — best iterate so far stays in p.v, the report carries
  /// status DeadlineExceeded/Cancelled, and the ladder is NOT walked
  /// (every rung is slower, the opposite of what a deadline asks for).
  const CancelToken* cancel = nullptr;
  /// Optional plan cache consulted for attempt 0 (see PlanProvider).
  PlanProvider* plans = nullptr;
  /// Optional caller-owned executor reused for attempt 0 instead of
  /// constructing one per solve — a service worker that solves the same
  /// signature repeatedly keeps its Executor state (pool pages,
  /// scheduler arrays, workspaces) warm across requests. Must match the
  /// solve's (cfg, opts) compilation; ladder rungs always build their
  /// own executor. Must outlive the call.
  runtime::GuardedExecutor* session_executor = nullptr;
  /// Request span context (-1 = none): stamped into TraceEvent::req on
  /// every executor event of every attempt — including ladder rungs and
  /// reference fallbacks — so a Perfetto export nests the whole solve's
  /// tile/stage spans under the submitting service request.
  std::int32_t trace_request = -1;
  /// Optional heartbeat (non-owning, must outlive the call): attached as
  /// the progress sink of every attempt's executor and of the precision
  /// oracle, and bumped once per completed cycle for the solver-side work
  /// between runs (residual norms, checkpoints). The service watchdog
  /// samples it — a frozen value while a solve is in flight means the
  /// worker has stalled.
  std::atomic<std::uint64_t>* progress = nullptr;
};

/// Which remedy a ladder rung applies (mirrors build_ladder's order).
/// Also the `id` of the Degrade trace events guarded_solve emits, so a
/// trace can be correlated with the SolveReport attempt list.
enum class RungKind : int {
  AsConfigured = 0,
  ReferencePlan = 1,
  SmootherDowngrade = 2,
  OmegaBackoff = 3,
  /// Not a restart-from-scratch rung: a rollback to the last checkpoint
  /// within the current attempt (crash restart or SDC recovery). Appears
  /// in Degrade trace events and rollback accounting, never in the
  /// attempt list.
  CheckpointRollback = 4,
  /// Terminal pseudo-rung: the solve stopped because its deadline passed
  /// or it was cancelled. Recorded on the attempt that was interrupted;
  /// the ladder is never walked past it.
  DeadlineStop = 5,
  /// Mixed-precision solve rebuilt in full double — the first remedy
  /// whenever the as-configured rung ran mixed (a precision-oracle
  /// violation or any other failure of a mixed attempt lands here before
  /// the structural rungs, since restoring double arithmetic is the
  /// cheapest hypothesis to test).
  PrecisionFallback = 6,
};
const char* to_string(RungKind k);

/// One rung of the ladder, as actually executed.
struct SolveAttempt {
  std::string description;  ///< e.g. "as configured", "omega -> 0.475"
  RungKind kind = RungKind::AsConfigured;
  int cycles = 0;           ///< cycles run in this attempt (incl. re-runs)
  double first_residual = 0.0;
  double last_residual = 0.0;
  health::Trend trend = health::Trend::Converging;
  bool converged = false;
  bool threw = false;             ///< the executor threw mid-attempt
  std::string error;              ///< what() of that throw, if any
  int executor_fallbacks = 0;     ///< reference-plan runs inside this attempt
  int rollbacks = 0;              ///< checkpoint restores in this attempt
  int sdc_detected = 0;           ///< rollbacks triggered by the SDC guard
  int crashes = 0;                ///< injected crashes survived via restore
  bool mixed_precision = false;   ///< ran the mixed defect-correction loop
  int precision_checks = 0;       ///< double-oracle comparisons performed
  int precision_violations = 0;   ///< oracle excesses (ends the attempt)
};

/// Full account of a guarded solve.
struct SolveReport {
  bool converged = false;
  double final_residual = 0.0;
  double initial_residual = 0.0;
  int total_cycles = 0;
  std::vector<SolveAttempt> attempts;
  /// Residual after every cycle, across all attempts, in execution order
  /// (a bounded ring: at most GuardPolicy::history_limit entries are
  /// retained, oldest dropped first).
  std::vector<double> residual_history;
  /// Entries evicted from the ring above — nonzero means
  /// residual_history is a suffix of the solve, not the whole of it.
  std::int64_t history_dropped = 0;
  /// How the solve ended: Generic for the ordinary paths (converged, or
  /// ladder exhausted with the evidence in `attempts`),
  /// DeadlineExceeded / Cancelled when the token stopped it — p.v then
  /// holds the best iterate completed before the trip.
  ErrorCode status = ErrorCode::Generic;
  bool deadline_hit = false;  ///< status == DeadlineExceeded
  bool cancelled = false;     ///< status == Cancelled
  int checkpoint_writes = 0;    ///< snapshots committed across the solve
  int checkpoint_restores = 0;  ///< rollbacks served across the solve
  int sdc_detected = 0;         ///< SDC-guard firings across the solve
  int precision_checks = 0;      ///< double-oracle comparisons, all attempts
  int precision_violations = 0;  ///< oracle violations, all attempts
  /// Multi-line human-readable account of the ladder walk.
  std::string summary() const;
};

/// Merge a solve's convergence telemetry into an executor RunReport so
/// render() shows time attribution and convergence side by side.
void attach_convergence(const SolveReport& sr, obs::RunReport& rr);

/// Iterate multigrid cycles on `p` until the residual drops below
/// `rel_tol` times the initial residual (plus policy.rel_tol_floor
/// absolutely), walking the degradation ladder on divergence, stagnation
/// or executor failure. An attempt that is still contracting when it
/// hits max_cycles ends the solve instead — it ran out of budget, not
/// health, and every ladder rung is a weaker configuration. `p.v` holds
/// the final iterate of the last attempt; each retry restarts from the
/// iterate passed in. Never throws for numerical trouble — a solve the
/// ladder cannot save returns converged == false with the evidence in
/// `attempts`.
SolveReport guarded_solve(const CycleConfig& cfg, PoissonProblem& p,
                          double rel_tol, const GuardPolicy& policy = {},
                          const opt::CompileOptions& opts =
                              opt::CompileOptions{});

}  // namespace polymg::solvers
