// NAS Parallel Benchmarks MG (v3.2) — from-scratch C++ reproduction with
// the paper's non-periodic boundary setting (zero Dirichlet ghost ring
// instead of the periodic wraparound of stock NPB).
//
// One benchmark iteration solves A u = v approximately via one V-cycle
// with NO pre-smoothing (the paper: "NAS MG uses a V-cycle with no
// pre-smoothing steps"):
//
//   r = v - A u                                    (resid, finest)
//   r_l = rprj3(r_{l+1})    for every coarser l    (restriction chain)
//   u_0 = S r_0                                    (coarsest psinv)
//   up each level: e = interp(e_coarse); r' = r_l - A e; e += S r'
//   finest: u += interp; r' = v - A u; u += S r'
//
// A and the smoother S are the standard NPB 27-point operators with
// distance-class coefficients a = (-8/3, 0, 1/6, 1/12) and
// c = (-3/8, 1/32, -1/64, 0). Both a reference hand-written solver and a
// PolyMG DSL pipeline builder are provided; tests cross-check them.
#pragma once

#include <array>

#include "polymg/grid/ops.hpp"
#include "polymg/ir/builder.hpp"

namespace polymg::solvers {

using grid::View;
using poly::index_t;

struct NasMgConfig {
  index_t n = 64;  ///< finest interior points per dim (power of two)
  int levels = 6;  ///< hierarchy depth (coarsest interior = n / 2^(levels-1))
  std::array<double, 4> a{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
  std::array<double, 4> c{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};

  index_t level_n(int l) const { return n >> (levels - 1 - l); }
  void validate() const;
};

/// Charge-like RHS of the NPB spec adapted to the non-periodic box:
/// +1 / -1 at a deterministic scattering of interior points.
void nas_fill_rhs(View v, index_t n);

/// Reference (hand-written loops) solver.
class NasMgReference {
public:
  explicit NasMgReference(const NasMgConfig& cfg);

  /// One benchmark iteration: u <- u + M(v - A u). Views over (n+2)^3.
  void iterate(View u, View v);

  /// L2 norm of r = v - A u (NPB's verification metric).
  double residual_norm(View u, View v) const;

  const NasMgConfig& config() const { return cfg_; }

private:
  void resid(View r, View u, View v, index_t n) const;
  void psinv_add(View u, View r, index_t n) const;
  void rprj3(View coarse, View fine, index_t nc) const;
  void interp_add(View fine, View coarse, index_t nf) const;

  NasMgConfig cfg_;
  std::vector<grid::Buffer> r_, e_;  ///< per level
};

/// Build the same iteration as a PolyMG pipeline.
/// Externals: [0] = U, [1] = V; output = updated U.
ir::Pipeline build_nas_mg_pipeline(const NasMgConfig& cfg);

}  // namespace polymg::solvers
