#include "polymg/solvers/nas_mg.hpp"

#include <cmath>

#include "polymg/common/error.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/ir/stencil.hpp"

namespace polymg::solvers {

using ir::BoundaryKind;
using ir::Expr;
using ir::FuncSpec;
using ir::Handle;
using ir::PipelineBuilder;
using ir::SourceRef;
using poly::Box;

void NasMgConfig::validate() const {
  PMG_CHECK(levels >= 2, "NAS MG needs at least two levels");
  PMG_CHECK(n % (index_t{1} << (levels - 1)) == 0,
            "finest size " << n << " not divisible by 2^" << (levels - 1));
  PMG_CHECK(level_n(0) >= 2, "coarsest NAS grid needs interior >= 2");
}

void nas_fill_rhs(View v, index_t n) {
  // NPB places +1 at ten points and -1 at ten points chosen by its RNG;
  // we scatter deterministically with our RNG over the interior.
  Rng rng(271828182845ull);
  for (int q = 0; q < 10; ++q) {
    const index_t i = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    const index_t j = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    const index_t k = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    v.at3(i, j, k) = -1.0;
  }
  for (int q = 0; q < 10; ++q) {
    const index_t i = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    const index_t j = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    const index_t k = 1 + static_cast<index_t>(rng.below(std::uint64_t(n)));
    v.at3(i, j, k) = 1.0;
  }
}

namespace {

/// Weight of the 27-point distance-class stencil at offset (di,dj,dk).
inline int dist_class(int di, int dj, int dk) {
  return (di != 0) + (dj != 0) + (dk != 0);
}

/// Sum of the 27-point distance-class application S(g) at (i,j,k).
inline double apply27(const View& g, const std::array<double, 4>& w,
                      index_t i, index_t j, index_t k) {
  double acc = 0.0;
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      const double* row = g.ptr + g.offset3(i + di, j + dj, k - 1);
      const int dc = (di != 0) + (dj != 0);
      // k-1, k, k+1 have distance classes dc+1, dc, dc+1.
      acc += w[dc + 1] * row[0] + w[dc] * row[1] + w[dc + 1] * row[2];
    }
  }
  return acc;
}

ir::Weights3 class_weights(const std::array<double, 4>& w) {
  ir::Weights3 s(3, ir::Weights2(3, std::vector<double>(3, 0.0)));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        s[i][j][k] = w[dist_class(i - 1, j - 1, k - 1)];
      }
    }
  }
  return s;
}

}  // namespace

NasMgReference::NasMgReference(const NasMgConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  r_.resize(static_cast<std::size_t>(cfg_.levels));
  e_.resize(static_cast<std::size_t>(cfg_.levels));
  for (int l = 0; l < cfg_.levels; ++l) {
    const Box dom = Box::cube(3, 0, cfg_.level_n(l) + 1);
    r_[static_cast<std::size_t>(l)] = grid::make_grid(dom);
    e_[static_cast<std::size_t>(l)] = grid::make_grid(dom);
  }
}

void NasMgReference::resid(View r, View u, View v, index_t n) const {
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= n; ++i) {
    for (index_t j = 1; j <= n; ++j) {
      for (index_t k = 1; k <= n; ++k) {
        r.at3(i, j, k) = v.at3(i, j, k) - apply27(u, cfg_.a, i, j, k);
      }
    }
  }
}

void NasMgReference::psinv_add(View u, View r, index_t n) const {
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= n; ++i) {
    for (index_t j = 1; j <= n; ++j) {
      for (index_t k = 1; k <= n; ++k) {
        u.at3(i, j, k) += apply27(r, cfg_.c, i, j, k);
      }
    }
  }
}

void NasMgReference::rprj3(View coarse, View fine, index_t nc) const {
  static const std::array<double, 4> w{1.0 / 2, 1.0 / 4, 1.0 / 8, 1.0 / 16};
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= nc; ++i) {
    for (index_t j = 1; j <= nc; ++j) {
      for (index_t k = 1; k <= nc; ++k) {
        double acc = 0.0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int dk = -1; dk <= 1; ++dk) {
              acc += w[dist_class(di, dj, dk)] *
                     fine.at3(2 * i + di, 2 * j + dj, 2 * k + dk);
            }
          }
        }
        coarse.at3(i, j, k) = acc;
      }
    }
  }
}

void NasMgReference::interp_add(View fine, View coarse, index_t nf) const {
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= nf; ++i) {
    for (index_t j = 1; j <= nf; ++j) {
      for (index_t k = 1; k <= nf; ++k) {
        double acc = 0.0;
        int npts = 0;
        for (int di = 0; di <= (i & 1); ++di) {
          for (int dj = 0; dj <= (j & 1); ++dj) {
            for (int dk = 0; dk <= (k & 1); ++dk) {
              acc += coarse.at3(i / 2 + di, j / 2 + dj, k / 2 + dk);
              ++npts;
            }
          }
        }
        fine.at3(i, j, k) += acc / npts;
      }
    }
  }
}

void NasMgReference::iterate(View u, View v) {
  const int L = cfg_.levels;
  auto rv = [&](int l) {
    return grid::View::over(r_[static_cast<std::size_t>(l)].data(),
                            Box::cube(3, 0, cfg_.level_n(l) + 1));
  };
  auto ev = [&](int l) {
    return grid::View::over(e_[static_cast<std::size_t>(l)].data(),
                            Box::cube(3, 0, cfg_.level_n(l) + 1));
  };

  resid(rv(L - 1), u, v, cfg_.level_n(L - 1));
  for (int l = L - 1; l >= 1; --l) {
    rprj3(rv(l - 1), rv(l), cfg_.level_n(l - 1));
  }

  // Coarsest: e = S r on a zero guess.
  e_[0].fill(0.0);
  psinv_add(ev(0), rv(0), cfg_.level_n(0));

  for (int l = 1; l <= L - 2; ++l) {
    e_[static_cast<std::size_t>(l)].fill(0.0);
    interp_add(ev(l), ev(l - 1), cfg_.level_n(l));
    // r_l <- r_l - A e  (reuse the residual kernel with v := r_l).
    View r = rv(l);
    View e = ev(l);
    resid(r, e, r, cfg_.level_n(l));
    psinv_add(e, r, cfg_.level_n(l));
  }

  interp_add(u, ev(L - 2), cfg_.level_n(L - 1));
  resid(rv(L - 1), u, v, cfg_.level_n(L - 1));
  psinv_add(u, rv(L - 1), cfg_.level_n(L - 1));
}

double NasMgReference::residual_norm(View u, View v) const {
  const index_t n = cfg_.level_n(cfg_.levels - 1);
  double sum = 0.0;
  for (index_t i = 1; i <= n; ++i) {
    for (index_t j = 1; j <= n; ++j) {
      for (index_t k = 1; k <= n; ++k) {
        const double r = v.at3(i, j, k) - apply27(u, cfg_.a, i, j, k);
        sum += r * r;
      }
    }
  }
  const double pts = std::pow(static_cast<double>(n + 2), 3);
  return std::sqrt(sum / pts);
}

ir::Pipeline build_nas_mg_pipeline(const NasMgConfig& cfg) {
  cfg.validate();
  PipelineBuilder b(3);
  const int L = cfg.levels;

  auto dom = [&](int l) { return Box::cube(3, 0, cfg.level_n(l) + 1); };
  auto inter = [&](int l) { return Box::cube(3, 1, cfg.level_n(l)); };
  auto spec = [&](const std::string& base, int l) {
    FuncSpec s;
    s.name = base + "_L" + std::to_string(l);
    s.domain = dom(l);
    s.interior = inter(l);
    s.boundary = BoundaryKind::Zero;
    s.level = l;
    return s;
  };

  const ir::Weights3 A = class_weights(cfg.a);
  const ir::Weights3 S = class_weights(cfg.c);
  static const std::array<double, 4> rw{1.0 / 2, 1.0 / 4, 1.0 / 8, 1.0 / 16};
  const ir::Weights3 R = class_weights(rw);

  Handle U = b.input("U", dom(L - 1));
  Handle V = b.input("V", dom(L - 1));

  // r = v - A u on the finest level.
  Handle r = b.define(spec("resid", L - 1), {U, V},
                      [&](std::span<const SourceRef> s) {
                        return s[1]() - ir::stencil3(s[0], A);
                      });

  // Restriction chain.
  std::vector<Handle> rl(static_cast<std::size_t>(L));
  rl[static_cast<std::size_t>(L - 1)] = r;
  for (int l = L - 1; l >= 1; --l) {
    rl[static_cast<std::size_t>(l - 1)] = b.define_restrict(
        spec("rprj3", l - 1), {rl[static_cast<std::size_t>(l)]},
        [&](std::span<const SourceRef> s) { return ir::stencil3(s[0], R); });
  }

  // Coarsest: e = S r (zero guess).
  Handle e = b.define(spec("psinv", 0), {rl[0]},
                      [&](std::span<const SourceRef> s) {
                        return ir::stencil3(s[0], S);
                      });

  auto interp_stage = [&](Handle coarse, int l) {
    return b.define_interp(
        spec("interp", l), {coarse}, [&](std::span<const SourceRef> s) {
          std::vector<Expr> cases;
          for (int c = 0; c < 8; ++c) {
            Expr sum;
            int npts = 0;
            for (int corner = 0; corner < 8; ++corner) {
              std::array<index_t, 3> off{};
              bool skip = false;
              for (int d = 0; d < 3; ++d) {
                const int parity = (c >> (2 - d)) & 1;
                const int pick = (corner >> (2 - d)) & 1;
                if (pick && !parity) skip = true;
                off[d] = pick;
              }
              if (skip) continue;
              Expr load = s[0].at_offsets(off);
              sum = sum ? sum + load : load;
              ++npts;
            }
            cases.push_back(npts == 1 ? sum
                                      : ir::make_const(1.0 / npts) * sum);
          }
          return cases;
        });
  };

  for (int l = 1; l <= L - 2; ++l) {
    Handle ei = interp_stage(e, l);
    Handle rl2 = b.define(spec("resid", l), {ei, rl[static_cast<std::size_t>(l)]},
                          [&](std::span<const SourceRef> s) {
                            return s[1]() - ir::stencil3(s[0], A);
                          });
    e = b.define(spec("psinv", l), {ei, rl2},
                 [&](std::span<const SourceRef> s) {
                   return s[0]() + ir::stencil3(s[1], S);
                 });
  }

  // Finest: u += interp; r = v - A u; u += S r.
  Handle ei = interp_stage(e, L - 1);
  Handle u1 = b.define(spec("correct", L - 1), {U, ei},
                       [&](std::span<const SourceRef> s) {
                         return s[0]() + s[1]();
                       });
  Handle r2 = b.define(spec("resid2", L - 1), {u1, V},
                       [&](std::span<const SourceRef> s) {
                         return s[1]() - ir::stencil3(s[0], A);
                       });
  Handle u2 = b.define(spec("psinv", L - 1), {u1, r2},
                       [&](std::span<const SourceRef> s) {
                         return s[0]() + ir::stencil3(s[1], S);
                       });
  b.mark_output(u2);
  return b.build();
}

}  // namespace polymg::solvers
