#include "polymg/solvers/handopt.hpp"

#include "polymg/common/error.hpp"

namespace polymg::solvers {

namespace {

/// One weighted-Jacobi row update, 2-d: rows [rlo, rhi] of `dst` from
/// `src` (previous level values) and f.
void jacobi_rows_2d(View dst, View src, View f, index_t rlo, index_t rhi,
                    index_t n, double w, double inv_h2) {
  for (index_t i = rlo; i <= rhi; ++i) {
    const double* s0 = &src.at2(i - 1, 0);
    const double* s1 = &src.at2(i, 0);
    const double* s2 = &src.at2(i + 1, 0);
    const double* fr = &f.at2(i, 0);
    double* d = &dst.at2(i, 0);
#pragma omp simd
    for (index_t j = 1; j <= n; ++j) {
      const double av =
          inv_h2 * (4.0 * s1[j] - s0[j] - s2[j] - s1[j - 1] - s1[j + 1]);
      d[j] = s1[j] - w * (av - fr[j]);
    }
  }
}

void jacobi_rows_3d(View dst, View src, View f, index_t rlo, index_t rhi,
                    index_t n, double w, double inv_h2) {
  for (index_t i = rlo; i <= rhi; ++i) {
    for (index_t j = 1; j <= n; ++j) {
      const double* c = &src.at3(i, j, 0);
      const double* im = &src.at3(i - 1, j, 0);
      const double* ip = &src.at3(i + 1, j, 0);
      const double* jm = &src.at3(i, j - 1, 0);
      const double* jp = &src.at3(i, j + 1, 0);
      const double* fr = &f.at3(i, j, 0);
      double* d = &dst.at3(i, j, 0);
#pragma omp simd
      for (index_t k = 1; k <= n; ++k) {
        const double av = inv_h2 * (6.0 * c[k] - im[k] - ip[k] - jm[k] -
                                    jp[k] - c[k - 1] - c[k + 1]);
        d[k] = c[k] - w * (av - fr[k]);
      }
    }
  }
}

void copy_interior(View dst, View src, index_t n, int ndim) {
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= n; ++i) {
    if (ndim == 2) {
      double* d = &dst.at2(i, 0);
      const double* s = &src.at2(i, 0);
      for (index_t j = 1; j <= n; ++j) d[j] = s[j];
    } else {
      for (index_t j = 1; j <= n; ++j) {
        double* d = &dst.at3(i, j, 0);
        const double* s = &src.at3(i, j, 0);
        for (index_t k = 1; k <= n; ++k) d[k] = s[k];
      }
    }
  }
}

void zero_grid(View v, index_t n, int ndim) {
  const index_t total = n + 2;
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < total; ++i) {
    if (ndim == 2) {
      double* d = &v.at2(i, 0);
      for (index_t j = 0; j < total; ++j) d[j] = 0.0;
    } else {
      for (index_t j = 0; j < total; ++j) {
        double* d = &v.at3(i, j, 0);
        for (index_t k = 0; k < total; ++k) d[k] = 0.0;
      }
    }
  }
}

}  // namespace

HandOptSolver::HandOptSolver(const CycleConfig& cfg, bool time_tiled,
                             runtime::TimeTileParams ttp)
    : cfg_(cfg), time_tiled_(time_tiled), ttp_(ttp) {
  cfg_.validate();
  levels_.resize(static_cast<std::size_t>(cfg_.levels));
  // Pooled allocation: every per-level buffer is created once here and
  // reused by all subsequent cycle() calls.
  for (int l = 0; l < cfg_.levels; ++l) {
    Level& lv = levels_[static_cast<std::size_t>(l)];
    lv.n = cfg_.level_n(l);
    lv.h = cfg_.level_h(l);
    lv.w = cfg_.smoother_weight(l);
    const poly::Box dom = poly::Box::cube(cfg_.ndim, 0, lv.n + 1);
    lv.tmp = grid::make_grid(dom);
    lv.r = grid::make_grid(dom);
    if (l < cfg_.levels - 1) {  // finest v/f are the caller's grids
      lv.v = grid::make_grid(dom);
      lv.f = grid::make_grid(dom);
    }
  }
}

void HandOptSolver::smooth(int l, View v, View f, int steps) {
  if (steps <= 0) return;
  Level& lv = levels_[static_cast<std::size_t>(l)];
  View tmp = grid::View::over(lv.tmp.data(),
                              poly::Box::cube(cfg_.ndim, 0, lv.n + 1));
  View bufs[2] = {v, tmp};
  const double inv_h2 = 1.0 / (lv.h * lv.h);

  auto rows = [&](int t, index_t rlo, index_t rhi) {
    View src = bufs[t & 1];
    View dst = bufs[(t + 1) & 1];
    if (cfg_.ndim == 2) {
      jacobi_rows_2d(dst, src, f, rlo, rhi, lv.n, lv.w, inv_h2);
    } else {
      jacobi_rows_3d(dst, src, f, rlo, rhi, lv.n, lv.w, inv_h2);
    }
  };

  if (time_tiled_) {
    runtime::split_tile_schedule(1, lv.n, steps, ttp_, rows);
  } else {
    for (int t = 0; t < steps; ++t) {
      const index_t chunk = std::max<index_t>(1, lv.n / 64);
      const index_t nchunks = poly::ceildiv(lv.n, chunk);
#pragma omp parallel for schedule(static)
      for (index_t c = 0; c < nchunks; ++c) {
        rows(t, 1 + c * chunk, std::min(lv.n, (c + 1) * chunk));
      }
    }
  }
  // Two modulo buffers: the result must end up in v (buffer 0); an odd
  // step count lands in tmp and is copied back.
  if (steps & 1) copy_interior(v, tmp, lv.n, cfg_.ndim);
}

void HandOptSolver::residual(int l, View v, View f, View r) const {
  const Level& lv = levels_[static_cast<std::size_t>(l)];
  const double inv_h2 = 1.0 / (lv.h * lv.h);
  const index_t n = lv.n;
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= n; ++i) {
    if (cfg_.ndim == 2) {
      const double* s0 = &v.at2(i - 1, 0);
      const double* s1 = &v.at2(i, 0);
      const double* s2 = &v.at2(i + 1, 0);
      const double* fr = &f.at2(i, 0);
      double* d = &r.at2(i, 0);
#pragma omp simd
      for (index_t j = 1; j <= n; ++j) {
        d[j] = fr[j] - inv_h2 * (4.0 * s1[j] - s0[j] - s2[j] - s1[j - 1] -
                                 s1[j + 1]);
      }
    } else {
      for (index_t j = 1; j <= n; ++j) {
        const double* c = &v.at3(i, j, 0);
        const double* im = &v.at3(i - 1, j, 0);
        const double* ip = &v.at3(i + 1, j, 0);
        const double* jm = &v.at3(i, j - 1, 0);
        const double* jp = &v.at3(i, j + 1, 0);
        const double* fr = &f.at3(i, j, 0);
        double* d = &r.at3(i, j, 0);
#pragma omp simd
        for (index_t k = 1; k <= n; ++k) {
          d[k] = fr[k] - inv_h2 * (6.0 * c[k] - im[k] - ip[k] - jm[k] -
                                   jp[k] - c[k - 1] - c[k + 1]);
        }
      }
    }
  }
}

void HandOptSolver::restrict_to(int l, View r_fine, View f_coarse) const {
  // Full weighting from level l onto level l-1.
  const index_t nc = levels_[static_cast<std::size_t>(l - 1)].n;
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= nc; ++i) {
    if (cfg_.ndim == 2) {
      for (index_t j = 1; j <= nc; ++j) {
        const index_t fi = 2 * i, fj = 2 * j;
        f_coarse.at2(i, j) =
            (r_fine.at2(fi - 1, fj - 1) + 2 * r_fine.at2(fi - 1, fj) +
             r_fine.at2(fi - 1, fj + 1) + 2 * r_fine.at2(fi, fj - 1) +
             4 * r_fine.at2(fi, fj) + 2 * r_fine.at2(fi, fj + 1) +
             r_fine.at2(fi + 1, fj - 1) + 2 * r_fine.at2(fi + 1, fj) +
             r_fine.at2(fi + 1, fj + 1)) /
            16.0;
      }
    } else {
      for (index_t j = 1; j <= nc; ++j) {
        for (index_t k = 1; k <= nc; ++k) {
          const index_t fi = 2 * i, fj = 2 * j, fk = 2 * k;
          double acc = 0.0;
          for (int di = -1; di <= 1; ++di) {
            for (int dj = -1; dj <= 1; ++dj) {
              for (int dk = -1; dk <= 1; ++dk) {
                const int dist = (di != 0) + (dj != 0) + (dk != 0);
                const double wgt =
                    dist == 0 ? 8.0 : dist == 1 ? 4.0 : dist == 2 ? 2.0 : 1.0;
                acc += wgt * r_fine.at3(fi + di, fj + dj, fk + dk);
              }
            }
          }
          f_coarse.at3(i, j, k) = acc / 64.0;
        }
      }
    }
  }
}

void HandOptSolver::interp_correct(int l, View e_coarse, View v_fine) const {
  // Bi/tri-linear prolongation fused with the correction: v += P e.
  const index_t nf = levels_[static_cast<std::size_t>(l)].n;
#pragma omp parallel for schedule(static)
  for (index_t i = 1; i <= nf; ++i) {
    if (cfg_.ndim == 2) {
      for (index_t j = 1; j <= nf; ++j) {
        const index_t ci = i / 2, cj = j / 2;
        double e;
        if ((i & 1) == 0 && (j & 1) == 0) {
          e = e_coarse.at2(ci, cj);
        } else if ((i & 1) == 0) {
          e = 0.5 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci, cj + 1));
        } else if ((j & 1) == 0) {
          e = 0.5 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci + 1, cj));
        } else {
          e = 0.25 * (e_coarse.at2(ci, cj) + e_coarse.at2(ci, cj + 1) +
                      e_coarse.at2(ci + 1, cj) + e_coarse.at2(ci + 1, cj + 1));
        }
        v_fine.at2(i, j) += e;
      }
    } else {
      for (index_t j = 1; j <= nf; ++j) {
        for (index_t k = 1; k <= nf; ++k) {
          const index_t ci = i / 2, cj = j / 2, ck = k / 2;
          double acc = 0.0;
          int npts = 0;
          for (int di = 0; di <= (i & 1); ++di) {
            for (int dj = 0; dj <= (j & 1); ++dj) {
              for (int dk = 0; dk <= (k & 1); ++dk) {
                acc += e_coarse.at3(ci + di, cj + dj, ck + dk);
                ++npts;
              }
            }
          }
          v_fine.at3(i, j, k) += acc / npts;
        }
      }
    }
  }
}

void HandOptSolver::visit(int l, View v, View f, bool zero_guess,
                          CycleKind kind) {
  Level& lv = levels_[static_cast<std::size_t>(l)];
  if (zero_guess) zero_grid(v, lv.n, cfg_.ndim);
  if (l == 0) {
    smooth(0, v, f, cfg_.n2);
    return;
  }
  smooth(l, v, f, cfg_.n1);
  View r = grid::View::over(lv.r.data(),
                            poly::Box::cube(cfg_.ndim, 0, lv.n + 1));
  residual(l, v, f, r);

  Level& clv = levels_[static_cast<std::size_t>(l - 1)];
  View cv = grid::View::over(clv.v.data(),
                             poly::Box::cube(cfg_.ndim, 0, clv.n + 1));
  View cf = grid::View::over(clv.f.data(),
                             poly::Box::cube(cfg_.ndim, 0, clv.n + 1));
  restrict_to(l, r, cf);
  visit(l - 1, cv, cf, /*zero_guess=*/true, kind);
  if (kind == CycleKind::W && l >= 2) {
    visit(l - 1, cv, cf, /*zero_guess=*/false, kind);
  } else if (kind == CycleKind::F) {
    visit(l - 1, cv, cf, /*zero_guess=*/false, CycleKind::V);
  }
  interp_correct(l, cv, v);
  smooth(l, v, f, cfg_.n3);
}

void HandOptSolver::cycle(View v, View f) {
  visit(cfg_.levels - 1, v, f, /*zero_guess=*/false, cfg_.kind);
}

}  // namespace polymg::solvers
