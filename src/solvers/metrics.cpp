#include "polymg/solvers/metrics.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "polymg/common/parallel.hpp"

namespace polymg::solvers {

namespace {

/// Serial below this many interior points: the norm is evaluated once per
/// cycle and on coarse grids a fork/join costs more than the stencil.
inline constexpr index_t kParallelNormGrain = 1 << 15;

}  // namespace

double residual_norm(View v, View f, index_t n, double h) {
  const double inv_h2 = 1.0 / (h * h);
  double sum = 0.0;
  if (v.ndim == 2) {
    auto row_sum = [&](index_t i) {
      double s = 0.0;
      for (index_t j = 1; j <= n; ++j) {
        const double av = inv_h2 * (4.0 * v.at2(i, j) - v.at2(i - 1, j) -
                                    v.at2(i + 1, j) - v.at2(i, j - 1) -
                                    v.at2(i, j + 1));
        const double r = f.at2(i, j) - av;
        s += r * r;
      }
      return s;
    };
    // Row partials are summed in row order within a thread and combined
    // by OpenMP's reduction, so the value is deterministic for a fixed
    // thread count (callers compare against tolerances, not bits).
    if (n * n >= kParallelNormGrain && !in_parallel()) {
      note_parallel_region();
#pragma omp parallel for reduction(+ : sum) schedule(static)
      for (index_t i = 1; i <= n; ++i) {
        sum += row_sum(i);
        tsan_join_release();
      }
      tsan_join_acquire();
    } else {
      for (index_t i = 1; i <= n; ++i) sum += row_sum(i);
    }
  } else {
    auto plane_sum = [&](index_t i) {
      double s = 0.0;
      for (index_t j = 1; j <= n; ++j) {
        for (index_t k = 1; k <= n; ++k) {
          const double av =
              inv_h2 * (6.0 * v.at3(i, j, k) - v.at3(i - 1, j, k) -
                        v.at3(i + 1, j, k) - v.at3(i, j - 1, k) -
                        v.at3(i, j + 1, k) - v.at3(i, j, k - 1) -
                        v.at3(i, j, k + 1));
          const double r = f.at3(i, j, k) - av;
          s += r * r;
        }
      }
      return s;
    };
    if (n * n * n >= kParallelNormGrain && !in_parallel()) {
      note_parallel_region();
#pragma omp parallel for reduction(+ : sum) schedule(static)
      for (index_t i = 1; i <= n; ++i) {
        sum += plane_sum(i);
        tsan_join_release();
      }
      tsan_join_acquire();
    } else {
      for (index_t i = 1; i <= n; ++i) sum += plane_sum(i);
    }
  }
  // A poisoned iterate must read as "diverged", never as a small norm:
  // collapse any non-finite accumulation (NaN, or inf from overflow) to
  // a quiet NaN so callers get one canonical not-a-norm value.
  if (!std::isfinite(sum)) return std::numeric_limits<double>::quiet_NaN();
  return std::sqrt(sum);
}

void residual_field(View v, View f, index_t n, double h, View out) {
  const double inv_h2 = 1.0 / (h * h);
  if (v.ndim == 2) {
    auto row = [&](index_t i) {
      std::array<index_t, poly::kMaxDims> q{i, 0, 0};
      for (index_t j = 1; j <= n; ++j) {
        const double av = inv_h2 * (4.0 * v.at2(i, j) - v.at2(i - 1, j) -
                                    v.at2(i + 1, j) - v.at2(i, j - 1) -
                                    v.at2(i, j + 1));
        q[1] = j;
        out.store_at(q, f.at2(i, j) - av);
      }
    };
    if (n * n >= kParallelNormGrain && !in_parallel()) {
      note_parallel_region();
#pragma omp parallel for schedule(static)
      for (index_t i = 1; i <= n; ++i) {
        row(i);
        tsan_join_release();
      }
      tsan_join_acquire();
    } else {
      for (index_t i = 1; i <= n; ++i) row(i);
    }
  } else {
    auto plane = [&](index_t i) {
      std::array<index_t, poly::kMaxDims> q{i, 0, 0};
      for (index_t j = 1; j <= n; ++j) {
        q[1] = j;
        for (index_t k = 1; k <= n; ++k) {
          const double av =
              inv_h2 * (6.0 * v.at3(i, j, k) - v.at3(i - 1, j, k) -
                        v.at3(i + 1, j, k) - v.at3(i, j - 1, k) -
                        v.at3(i, j + 1, k) - v.at3(i, j, k - 1) -
                        v.at3(i, j, k + 1));
          q[2] = k;
          out.store_at(q, f.at3(i, j, k) - av);
        }
      }
    };
    if (n * n * n >= kParallelNormGrain && !in_parallel()) {
      note_parallel_region();
#pragma omp parallel for schedule(static)
      for (index_t i = 1; i <= n; ++i) {
        plane(i);
        tsan_join_release();
      }
      tsan_join_acquire();
    } else {
      for (index_t i = 1; i <= n; ++i) plane(i);
    }
  }
}

double error_norm(View v, View exact, index_t n) {
  const poly::Box interior = poly::Box::cube(v.ndim, 1, n);
  return grid::max_diff(v, exact, interior);
}

}  // namespace polymg::solvers
