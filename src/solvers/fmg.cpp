#include "polymg/solvers/fmg.hpp"

#include "polymg/common/error.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {

namespace {

/// Full-weighting restriction of a right-hand side (host-side; the RHS
/// hierarchy is built once per solve).
void restrict_rhs(grid::View coarse, grid::View fine, index_t nc, int ndim) {
  if (ndim == 2) {
    for (index_t i = 1; i <= nc; ++i) {
      for (index_t j = 1; j <= nc; ++j) {
        const index_t fi = 2 * i, fj = 2 * j;
        coarse.at2(i, j) =
            (fine.at2(fi - 1, fj - 1) + 2 * fine.at2(fi - 1, fj) +
             fine.at2(fi - 1, fj + 1) + 2 * fine.at2(fi, fj - 1) +
             4 * fine.at2(fi, fj) + 2 * fine.at2(fi, fj + 1) +
             fine.at2(fi + 1, fj - 1) + 2 * fine.at2(fi + 1, fj) +
             fine.at2(fi + 1, fj + 1)) /
            16.0;
      }
    }
    return;
  }
  for (index_t i = 1; i <= nc; ++i) {
    for (index_t j = 1; j <= nc; ++j) {
      for (index_t k = 1; k <= nc; ++k) {
        double acc = 0.0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int dk = -1; dk <= 1; ++dk) {
              const int dist = (di != 0) + (dj != 0) + (dk != 0);
              const double w =
                  dist == 0 ? 8.0 : dist == 1 ? 4.0 : dist == 2 ? 2.0 : 1.0;
              acc += w * fine.at3(2 * i + di, 2 * j + dj, 2 * k + dk);
            }
          }
        }
        coarse.at3(i, j, k) = acc / 64.0;
      }
    }
  }
}

/// Trilinear/bilinear prolongation of a solution to the next-finer FMG
/// level (overwrite, not correct: nested iteration transfers iterates).
void prolong(grid::View fine, grid::View coarse, index_t nf, int ndim) {
  if (ndim == 2) {
    for (index_t i = 1; i <= nf; ++i) {
      for (index_t j = 1; j <= nf; ++j) {
        const index_t ci = i / 2, cj = j / 2;
        double e;
        if ((i & 1) == 0 && (j & 1) == 0) {
          e = coarse.at2(ci, cj);
        } else if ((i & 1) == 0) {
          e = 0.5 * (coarse.at2(ci, cj) + coarse.at2(ci, cj + 1));
        } else if ((j & 1) == 0) {
          e = 0.5 * (coarse.at2(ci, cj) + coarse.at2(ci + 1, cj));
        } else {
          e = 0.25 * (coarse.at2(ci, cj) + coarse.at2(ci, cj + 1) +
                      coarse.at2(ci + 1, cj) + coarse.at2(ci + 1, cj + 1));
        }
        fine.at2(i, j) = e;
      }
    }
    return;
  }
  for (index_t i = 1; i <= nf; ++i) {
    for (index_t j = 1; j <= nf; ++j) {
      for (index_t k = 1; k <= nf; ++k) {
        double acc = 0.0;
        int npts = 0;
        for (int di = 0; di <= (i & 1); ++di) {
          for (int dj = 0; dj <= (j & 1); ++dj) {
            for (int dk = 0; dk <= (k & 1); ++dk) {
              acc += coarse.at3(i / 2 + di, j / 2 + dj, k / 2 + dk);
              ++npts;
            }
          }
        }
        fine.at3(i, j, k) = acc / npts;
      }
    }
  }
}

}  // namespace

FmgResult fmg_solve(PoissonProblem& p, const CycleConfig& base,
                    const FmgOptions& opts) {
  PMG_CHECK(base.ndim == p.ndim && base.n == p.n,
            "FMG hierarchy must match the problem geometry");
  base.validate();
  const int L = base.levels;

  // Right-hand-side and iterate hierarchies.
  std::vector<grid::Buffer> f_l(static_cast<std::size_t>(L));
  std::vector<grid::Buffer> v_l(static_cast<std::size_t>(L));
  auto lvl_dom = [&](int l) {
    return poly::Box::cube(base.ndim, 0, base.level_n(l) + 1);
  };
  for (int l = 0; l < L; ++l) {
    f_l[static_cast<std::size_t>(l)] = grid::make_grid(lvl_dom(l));
    v_l[static_cast<std::size_t>(l)] = grid::make_grid(lvl_dom(l));
  }
  grid::copy_region(
      grid::View::over(f_l[static_cast<std::size_t>(L - 1)].data(),
                       lvl_dom(L - 1)),
      p.f_view(), lvl_dom(L - 1));
  for (int l = L - 1; l >= 1; --l) {
    restrict_rhs(grid::View::over(f_l[static_cast<std::size_t>(l - 1)].data(),
                                  lvl_dom(l - 1)),
                 grid::View::over(f_l[static_cast<std::size_t>(l)].data(),
                                  lvl_dom(l)),
                 base.level_n(l - 1), base.ndim);
  }

  FmgResult res;
  res.initial_residual = residual_norm(p.v_view(), p.f_view(), p.n, p.h);

  // Climb: solve each level with a few V-cycles, prolong the iterate.
  for (int l = 0; l < L; ++l) {
    CycleConfig cfg = base;
    cfg.n = base.level_n(l);
    cfg.levels = l + 1;
    runtime::Executor ex(opt::compile(
        build_cycle(cfg),
        opt::CompileOptions::for_variant(opts.variant, base.ndim)));
    grid::View v = grid::View::over(v_l[static_cast<std::size_t>(l)].data(),
                                    lvl_dom(l));
    grid::View f = grid::View::over(f_l[static_cast<std::size_t>(l)].data(),
                                    lvl_dom(l));
    for (int c = 0; c < opts.cycles_per_level; ++c) {
      const std::vector<grid::View> ext = {v, f};
      ex.run(ext);
      grid::copy_region(v, ex.output_view(0), lvl_dom(l));
    }
    if (l + 1 < L) {
      prolong(grid::View::over(v_l[static_cast<std::size_t>(l + 1)].data(),
                               lvl_dom(l + 1)),
              v, base.level_n(l + 1), base.ndim);
    }
  }
  grid::copy_region(p.v_view(),
                    grid::View::over(v_l[static_cast<std::size_t>(L - 1)].data(),
                                     lvl_dom(L - 1)),
                    lvl_dom(L - 1));
  res.residual = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  return res;
}

}  // namespace polymg::solvers
