#include "polymg/solvers/cycles.hpp"

#include <cmath>

#include "polymg/common/error.hpp"

namespace polymg::solvers {

using ir::BoundaryKind;
using ir::Expr;
using ir::FuncSpec;
using ir::Handle;
using ir::PipelineBuilder;
using ir::SourceRef;
using poly::Box;

index_t CycleConfig::level_n(int l) const {
  // Odd interiors (n = 2^k - 1): coarse point i coincides with fine point
  // 2i AND the Dirichlet boundaries align exactly at both ends
  // (coarse n_c + 1 maps to fine n_f + 1). Even interiors would shift the
  // coarse boundary one fine cell outward per level, which stalls (or
  // with deep hierarchies destroys) convergence.
  return ((n + 1) >> (levels - 1 - l)) - 1;
}

double CycleConfig::level_h(int l) const {
  // With aligned hierarchies this equals both 1/(n_l + 1) and
  // 2^(levels-1-l) / (n + 1).
  return 1.0 / static_cast<double>(level_n(l) + 1);
}

double CycleConfig::smoother_weight(int l) const {
  const double h = level_h(l);
  return omega * h * h / (2.0 * ndim);
}

void CycleConfig::validate() const {
  PMG_CHECK(ndim == 2 || ndim == 3, "cycle ndim must be 2 or 3");
  PMG_CHECK(levels >= 1, "need at least one level");
  PMG_CHECK((n + 1) % (index_t{1} << (levels - 1)) == 0,
            "finest interior size " << n << ": n+1 must be divisible by 2^"
                                    << (levels - 1)
                                    << " (use n = 2^k - 1)");
  PMG_CHECK(level_n(0) >= 2, "coarsest grid too small");
  PMG_CHECK(n1 >= 0 && n2 >= 0 && n3 >= 0, "negative smoothing steps");
  PMG_CHECK(n1 + n2 + n3 > 0, "cycle with no smoothing at all");
}

int expected_stages(const CycleConfig& cfg) {
  PMG_CHECK(cfg.smoother == SmootherKind::Jacobi,
            "expected_stages models the Jacobi stage counts of Table 3");
  // Mirrors the builder's recursion, counting one DAG node per smoothing
  // step, defect, restrict, interp and correct. A zero value (coarsest
  // visit with a zero guess and no coarse smoothing) propagates without
  // materializing stages, exactly as the paper's counts imply (V-10-0-0
  // has 42 nodes, W-10-0-0 has 98).
  struct Counter {
    const CycleConfig& cfg;
    int count = 0;
    /// Returns whether the visit produced a non-trivially-zero value.
    bool visit(int l, CycleKind k, bool guess) {
      if (l == 0) {
        count += cfg.n2;
        return guess || cfg.n2 > 0;
      }
      const bool s1 = guess || cfg.n1 > 0;
      count += cfg.n1;  // pre-smoothing (seed included for a zero guess)
      count += 1;       // defect (a copy of f when s1 is zero)
      count += 1;       // restrict
      bool e = visit(l - 1, k, false);
      // W-cycles recurse twice per level except just above the coarsest
      // (the second coarsest-level solve would be redundant work); this
      // matches the paper's DAG sizes (100 nodes for W-4-4-4).
      if (k == CycleKind::W && l >= 2) e = visit(l - 1, k, e);
      if (k == CycleKind::F) e = visit(l - 1, CycleKind::V, e);
      count += 1;            // interp (a constant-zero stage when e is zero)
      count += s1 ? 1 : 0;   // correct collapses to eh when s1 is zero
      count += cfg.n3;       // post-smoothing
      return true;
    }
  };
  Counter c{cfg};
  c.visit(cfg.levels - 1, cfg.kind, true);
  return c.count;
}

namespace {

/// Shared state of one cycle construction.
struct CycleBuilder {
  PipelineBuilder& b;
  const CycleConfig& cfg;
  Handle F_ext;  // finest-level RHS external

  Box domain(int l) const {
    return Box::cube(cfg.ndim, 0, cfg.level_n(l) + 1);
  }
  Box interior(int l) const {
    return Box::cube(cfg.ndim, 1, cfg.level_n(l));
  }

  FuncSpec spec(const std::string& base, int l) const {
    FuncSpec s;
    s.name = base + "_L" + std::to_string(l);
    s.domain = domain(l);
    s.interior = interior(l);
    s.boundary = BoundaryKind::Zero;
    s.level = l;
    return s;
  }

  /// The discrete operator A = -∇² applied through the Stencil construct:
  /// (1/h²) · 5-point (2-d) or 7-point (3-d) Laplacian.
  Expr apply_A(const SourceRef& v, int l) const {
    const double inv_h2 = 1.0 / (cfg.level_h(l) * cfg.level_h(l));
    return cfg.ndim == 2
               ? ir::stencil2(v, ir::five_point_laplacian_2d(), inv_h2)
               : ir::stencil3(v, ir::seven_point_laplacian_3d(), inv_h2);
  }

  /// smoother(v, f, l, n): n relaxation steps, dispatching on the
  /// configured scheme. An invalid v means the zero initial guess of
  /// coarse-level error equations; zero steps on a zero guess propagate
  /// the (invalid) zero handle without a stage.
  Handle smoother(Handle v, Handle f, int l, int steps,
                  const std::string& tag) {
    switch (cfg.smoother) {
      case SmootherKind::GSRB:
        return gsrb_smoother(v, f, l, steps, tag);
      case SmootherKind::Chebyshev:
        return chebyshev_smoother(v, f, l, steps, tag);
      case SmootherKind::Jacobi:
        break;
    }
    return jacobi_smoother(v, f, l, steps, tag);
  }

  Handle jacobi_smoother(Handle v, Handle f, int l, int steps,
                         const std::string& tag) {
    const double w = cfg.smoother_weight(l);
    Handle v0 = v;
    int remaining = steps;
    if (!v0.valid()) {
      if (steps == 0) return Handle{};
      v0 = b.define(spec(tag + "_seed", l), {f},
                    [&](std::span<const SourceRef> s) {
                      return ir::make_const(w) * s[0]();
                    });
      remaining = steps - 1;
    }
    if (remaining == 0) return v0;
    return b.define_tstencil(
        spec(tag, l), v0, {f}, remaining, [&](std::span<const SourceRef> s) {
          return s[0]() - ir::make_const(w) * (apply_A(s[0], l) - s[1]());
        });
  }

  /// Red-black Gauss-Seidel: one step is a red half-sweep followed by a
  /// black half-sweep. Each half-sweep is one parity-piecewise chain
  /// stage — points of the active colour take the GS update (their 5-/7-
  /// point neighbours are all of the other colour, so reading the
  /// previous stage is an exact GS half-sweep), the rest copy through.
  Handle gsrb_smoother(Handle v, Handle f, int l, int steps,
                       const std::string& tag) {
    if (steps == 0) return v;
    const double w =
        cfg.gsrb_omega * cfg.level_h(l) * cfg.level_h(l) / (2.0 * cfg.ndim);
    const int ncases = 1 << cfg.ndim;
    const auto case_color = [&](int c) {
      int sum = 0;
      for (int d = 0; d < cfg.ndim; ++d) sum += (c >> d) & 1;
      return sum % 2;  // 0 = red (even coordinate sum)
    };

    Handle v0 = v;
    int start_color = 0;
    int remaining = 2 * steps;
    if (!v0.valid()) {
      // Seed: the red half-sweep applied to the zero grid.
      v0 = b.define_piecewise(
          spec(tag + "_seed", l), {f}, [&](std::span<const SourceRef> s) {
            std::vector<Expr> cases(static_cast<std::size_t>(ncases));
            for (int c = 0; c < ncases; ++c) {
              cases[static_cast<std::size_t>(c)] =
                  case_color(c) == 0 ? ir::make_const(w) * s[0]()
                                     : ir::make_const(0.0);
            }
            return cases;
          });
      remaining -= 1;
      start_color = 1;
    }
    if (remaining == 0) return v0;
    return b.define_chain(
        spec(tag + "_gsrb", l), v0, {f}, remaining,
        [&](std::span<const SourceRef> s, int t) {
          const int color = (start_color + t) % 2;
          std::vector<Expr> cases(static_cast<std::size_t>(ncases));
          for (int c = 0; c < ncases; ++c) {
            cases[static_cast<std::size_t>(c)] =
                case_color(c) == color
                    ? s[0]() -
                          ir::make_const(w) * (apply_A(s[0], l) - s[1]())
                    : s[0]();
          }
          return cases;
        },
        /*parity_piecewise=*/true);
  }

  /// Chebyshev polynomial smoother targeting the upper part of A's
  /// spectrum, [λmax/cheby_fraction, λmax] with λmax = 4d/h² for the
  /// 2d·(1/h²) Laplacian. Each iterate needs the previous search
  /// direction, so the stages form residual/direction/update triples
  /// rather than a self-chained TStencil.
  Handle chebyshev_smoother(Handle v, Handle f, int l, int steps,
                            const std::string& tag) {
    if (steps == 0) return v;
    const double h = cfg.level_h(l);
    const double lmax = 4.0 * cfg.ndim / (h * h);
    const double lmin = lmax / cfg.cheby_fraction;
    const double theta = 0.5 * (lmax + lmin);
    const double delta = 0.5 * (lmax - lmin);
    const double sigma = theta / delta;
    double rho = 1.0 / sigma;

    auto stage = [&](const std::string& base, int j) {
      return spec(tag + "_cb_" + base + std::to_string(j), l);
    };

    // d_0 = r_0 / θ with r_0 = f - A v (just f/θ on a zero guess);
    // v_1 = v + d_0.
    Handle d;
    if (v.valid()) {
      d = b.define(stage("d", 0), {v, f}, [&](std::span<const SourceRef> s) {
        return ir::make_const(1.0 / theta) * (s[1]() - apply_A(s[0], l));
      });
      v = b.define(stage("v", 0), {v, d}, [&](std::span<const SourceRef> s) {
        return s[0]() + s[1]();
      });
    } else {
      d = b.define(stage("d", 0), {f}, [&](std::span<const SourceRef> s) {
        return ir::make_const(1.0 / theta) * s[0]();
      });
      v = d;  // v_1 = 0 + d_0
    }

    for (int j = 1; j < steps; ++j) {
      const double rho_next = 1.0 / (2.0 * sigma - rho);
      Handle r = b.define(stage("r", j), {v, f},
                          [&](std::span<const SourceRef> s) {
                            return s[1]() - apply_A(s[0], l);
                          });
      d = b.define(stage("d", j), {d, r},
                   [&](std::span<const SourceRef> s) {
                     return ir::make_const(rho_next * rho) * s[0]() +
                            ir::make_const(2.0 * rho_next / delta) * s[1]();
                   });
      v = b.define(stage("v", j), {v, d},
                   [&](std::span<const SourceRef> s) {
                     return s[0]() + s[1]();
                   });
      rho = rho_next;
    }
    return v;
  }

  /// defect(v, f, l): r = f - A v (r = f when v is the zero grid).
  Handle defect(Handle v, Handle f, int l) {
    if (!v.valid()) {
      return b.define(spec("defect", l), {f},
                      [&](std::span<const SourceRef> s) { return s[0](); });
    }
    return b.define(spec("defect", l), {v, f},
                    [&](std::span<const SourceRef> s) {
                      return s[1]() - apply_A(s[0], l);
                    });
  }

  /// restrict(r, l): full weighting onto level l-1.
  Handle restrict_(Handle r, int l) {
    return b.define_restrict(
        spec("restrict", l - 1), {r}, [&](std::span<const SourceRef> s) {
          return cfg.ndim == 2
                     ? ir::stencil2(s[0], ir::full_weighting_2d(), 1.0 / 16)
                     : ir::stencil3(s[0], ir::full_weighting_3d(), 1.0 / 64);
        });
  }

  /// interpolate(e, l): bi/tri-linear prolongation from level l-1 to l.
  /// An invalid e is the zero grid: the interp stage still exists in the
  /// DAG (as the paper's counts imply) but reads nothing.
  Handle interpolate(Handle e, int l) {
    if (!e.valid()) {
      return b.define(spec("interp", l), {},
                      [&](std::span<const SourceRef>) {
                        return ir::make_const(0.0);
                      });
    }
    return b.define_interp(
        spec("interp", l), {e}, [&](std::span<const SourceRef> s) {
          // One expression per parity case, matching the paper's
          // expr[dy][dx] table: even indices coincide with a coarse
          // point; odd ones average the straddling coarse neighbours.
          std::vector<Expr> cases;
          const int ncases = 1 << cfg.ndim;
          for (int c = 0; c < ncases; ++c) {
            Expr sum;
            int npts = 0;
            // Sum coarse points at offsets {0, parity_d} per dimension.
            for (int corner = 0; corner < ncases; ++corner) {
              std::array<index_t, 3> off{};
              bool skip = false;
              for (int d = 0; d < cfg.ndim; ++d) {
                const int parity = (c >> (cfg.ndim - 1 - d)) & 1;
                const int pick = (corner >> (cfg.ndim - 1 - d)) & 1;
                if (pick && !parity) skip = true;  // even dim: one point
                off[d] = pick;
              }
              if (skip) continue;
              Expr load = s[0].at_offsets(off);
              sum = sum ? sum + load : load;
              ++npts;
            }
            cases.push_back(npts == 1 ? sum
                                      : ir::make_const(1.0 / npts) * sum);
          }
          return cases;
        });
  }

  /// correct(v, e, l): v + e (collapses to e when v is the zero grid).
  Handle correct(Handle v, Handle e, int l) {
    if (!v.valid()) return e;
    return b.define(spec("correct", l), {v, e},
                    [&](std::span<const SourceRef> s) {
                      return s[0]() + s[1]();
                    });
  }

  /// One multigrid visit at level l: the recursive structure of
  /// Algorithm 1 / Fig. 3, with gamma = 2 for W-cycles and an F-cycle
  /// tail-recursion into V.
  Handle visit(Handle v, Handle f, int l, CycleKind kind) {
    if (l == 0) {
      return smoother(v, f, 0, cfg.n2, "smooth_c");
    }
    Handle s1 = smoother(v, f, l, cfg.n1, "smooth_pre");
    Handle r = defect(s1, f, l);
    Handle r2 = restrict_(r, l);
    Handle e = visit(Handle{}, r2, l - 1, kind);
    if (kind == CycleKind::W && l >= 2) {
      e = visit(e, r2, l - 1, kind);
    } else if (kind == CycleKind::F) {
      e = visit(e, r2, l - 1, CycleKind::V);
    }
    Handle eh = interpolate(e, l);
    Handle vc = correct(s1, eh, l);
    return smoother(vc, f, l, cfg.n3, "smooth_post");
  }
};

}  // namespace

ir::Pipeline build_cycle(const CycleConfig& cfg) {
  cfg.validate();
  PipelineBuilder b(cfg.ndim);
  const Box dom = Box::cube(cfg.ndim, 0, cfg.n + 1);
  Handle V = b.input("V", dom);
  Handle F = b.input("F", dom);
  CycleBuilder cb{b, cfg, F};
  Handle out = cb.visit(V, F, cfg.levels - 1, cfg.kind);
  b.mark_output(out);
  return b.build();
}

ir::Pipeline build_smoother_only(const CycleConfig& cfg, int steps) {
  cfg.validate();
  PMG_CHECK(steps >= 1, "need at least one smoothing step");
  PipelineBuilder b(cfg.ndim);
  const Box dom = Box::cube(cfg.ndim, 0, cfg.n + 1);
  Handle V = b.input("V", dom);
  Handle F = b.input("F", dom);
  CycleBuilder cb{b, cfg, F};
  Handle out = cb.smoother(V, F, cfg.levels - 1, steps, "smooth");
  b.mark_output(out);
  return b.build();
}

}  // namespace polymg::solvers
