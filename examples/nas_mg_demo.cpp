// NAS-MG demo: run the NPB-style MG benchmark (non-periodic variant)
// with both the hand-written reference and the DSL-compiled pipeline,
// verifying they agree while reporting residual norms per iteration —
// the NPB verification ritual, adapted.
//
//   ./examples/nas_mg_demo [--n 64] [--levels 6] [--iters 4]
#include <cstdio>

#include "polymg/common/options.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/nas_mg.hpp"

int main(int argc, char** argv) {
  using namespace polymg;
  const Options opts = Options::parse(argc, argv);

  solvers::NasMgConfig cfg;
  cfg.n = opts.get_int("n", 64);
  cfg.levels = static_cast<int>(opts.get_int("levels", 6));
  const int iters = static_cast<int>(opts.get_int("iters", 4));

  const poly::Box dom = poly::Box::cube(3, 0, cfg.n + 1);
  grid::Buffer v = grid::make_grid(dom);
  solvers::nas_fill_rhs(grid::View::over(v.data(), dom), cfg.n);

  // Reference (hand-written NPB-style loops).
  grid::Buffer u_ref = grid::make_grid(dom);
  solvers::NasMgReference ref(cfg);
  Timer t_ref;
  for (int i = 0; i < iters; ++i) {
    ref.iterate(grid::View::over(u_ref.data(), dom),
                grid::View::over(v.data(), dom));
  }
  const double ref_secs = t_ref.elapsed();

  // DSL pipeline (polymg-opt+).
  grid::Buffer u_dsl = grid::make_grid(dom);
  runtime::Executor exec(opt::compile(
      solvers::build_nas_mg_pipeline(cfg),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 3)));
  Timer t_dsl;
  for (int i = 0; i < iters; ++i) {
    const std::vector<grid::View> inputs = {
        grid::View::over(u_dsl.data(), dom), grid::View::over(v.data(), dom)};
    exec.run(inputs);
    grid::copy_region(grid::View::over(u_dsl.data(), dom),
                      exec.output_view(0), dom);
    std::printf("iter %d: L2 residual %.6e\n", i + 1,
                ref.residual_norm(grid::View::over(u_dsl.data(), dom),
                                  grid::View::over(v.data(), dom)));
  }
  const double dsl_secs = t_dsl.elapsed();

  const double diff =
      grid::max_diff(grid::View::over(u_ref.data(), dom),
                     grid::View::over(u_dsl.data(), dom), dom);
  std::printf("\nreference %.3fs, polymg-opt+ %.3fs, max |ref - dsl| = %.2e\n",
              ref_secs, dsl_secs, diff);
  std::printf(diff < 1e-10 ? "VERIFICATION SUCCESSFUL\n"
                           : "VERIFICATION FAILED\n");
  return diff < 1e-10 ? 0 : 1;
}
