// Implicit 3-d heat equation via the raw DSL constructs.
//
// Backward-Euler for u_t = ∇²u turns each time step into a Helmholtz
// solve (σ - ∇²) u = σ·u_prev with σ = 1/Δt. This example builds the
// whole V-cycle for that operator directly with the PolyMG language —
// Function / Stencil / TStencil / Restrict / Interp — rather than the
// bundled Poisson builders, showing how a domain scientist targets a new
// PDE: only the operator expressions change, the optimizer does the rest.
//
//   ./examples/heat3d_implicit [--n 63] [--steps 5] [--dt 1e-3]
#include <cmath>
#include <cstdio>

#include "polymg/common/options.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/builder.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"

namespace {

using namespace polymg;
using ir::Expr;
using ir::FuncSpec;
using ir::Handle;
using ir::PipelineBuilder;
using ir::SourceRef;
using poly::Box;
using poly::index_t;

struct HelmholtzCycle {
  index_t n;       // finest interior size (2^k - 1)
  int levels;
  double sigma;    // 1/dt
  int n1 = 3, n2 = 20, n3 = 3;
  double omega = 2.0 / 3.0;

  index_t level_n(int l) const { return ((n + 1) >> (levels - 1 - l)) - 1; }
  double level_h(int l) const { return 1.0 / (level_n(l) + 1); }

  FuncSpec spec(const std::string& base, int l) const {
    FuncSpec s;
    s.name = base + "_L" + std::to_string(l);
    s.domain = Box::cube(3, 0, level_n(l) + 1);
    s.interior = Box::cube(3, 1, level_n(l));
    s.level = l;
    return s;
  }

  /// A_σ v = σ·v + (1/h²)·L v with the 7-point Laplacian L.
  Expr apply_A(const SourceRef& v, int l) const {
    const double inv_h2 = 1.0 / (level_h(l) * level_h(l));
    return ir::make_const(sigma) * v() +
           ir::stencil3(v, ir::seven_point_laplacian_3d(), inv_h2);
  }

  /// Damped Jacobi: diag(A_σ) = σ + 6/h².
  Handle smoother(PipelineBuilder& b, Handle v, Handle f, int l, int steps) {
    const double w =
        omega / (sigma + 6.0 / (level_h(l) * level_h(l)));
    Handle v0 = v;
    int remaining = steps;
    if (!v0.valid()) {
      if (steps == 0) return Handle{};
      v0 = b.define(spec("seed", l), {f}, [&](std::span<const SourceRef> s) {
        return ir::make_const(w) * s[0]();
      });
      remaining = steps - 1;
    }
    if (remaining == 0) return v0;
    return b.define_tstencil(spec("smooth", l), v0, {f}, remaining,
                             [&](std::span<const SourceRef> s) {
                               return s[0]() - ir::make_const(w) *
                                                   (apply_A(s[0], l) - s[1]());
                             });
  }

  Handle visit(PipelineBuilder& b, Handle v, Handle f, int l) {
    if (l == 0) return smoother(b, v, f, 0, n2);
    Handle s1 = smoother(b, v, f, l, n1);
    Handle r = b.define(spec("defect", l), {s1, f},
                        [&](std::span<const SourceRef> s) {
                          return s[1]() - apply_A(s[0], l);
                        });
    Handle r2 = b.define_restrict(
        spec("restrict", l - 1), {r}, [&](std::span<const SourceRef> s) {
          return ir::stencil3(s[0], ir::full_weighting_3d(), 1.0 / 64);
        });
    Handle e = visit(b, Handle{}, r2, l - 1);
    Handle eh = b.define_interp(
        spec("interp", l), {e}, [&](std::span<const SourceRef> s) {
          std::vector<Expr> cases;
          for (int c = 0; c < 8; ++c) {
            Expr sum;
            int npts = 0;
            for (int corner = 0; corner < 8; ++corner) {
              std::array<index_t, 3> off{};
              bool skip = false;
              for (int d = 0; d < 3; ++d) {
                const int parity = (c >> (2 - d)) & 1;
                const int pick = (corner >> (2 - d)) & 1;
                if (pick && !parity) skip = true;
                off[d] = pick;
              }
              if (skip) continue;
              Expr load = s[0].at_offsets(off);
              sum = sum ? sum + load : load;
              ++npts;
            }
            cases.push_back(npts == 1 ? sum
                                      : ir::make_const(1.0 / npts) * sum);
          }
          return cases;
        });
    Handle vc = b.define(spec("correct", l), {s1, eh},
                         [&](std::span<const SourceRef> s) {
                           return s[0]() + s[1]();
                         });
    return smoother(b, vc, f, l, n3);
  }

  ir::Pipeline build() {
    PipelineBuilder b(3);
    const Box dom = Box::cube(3, 0, n + 1);
    Handle U = b.input("U", dom);
    Handle F = b.input("F", dom);
    Handle out = visit(b, U, F, levels - 1);
    b.mark_output(out);
    return b.build();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  HelmholtzCycle hc;
  hc.n = opts.get_int("n", 63);
  hc.levels = static_cast<int>(opts.get_int("levels", 4));
  const double dt = opts.get_double("dt", 1e-3);
  hc.sigma = 1.0 / dt;
  const int steps = static_cast<int>(opts.get_int("steps", 5));
  const int cycles_per_step = static_cast<int>(opts.get_int("cycles", 3));

  ir::Pipeline pipe = hc.build();
  std::printf("Helmholtz V-cycle: %d stages, sigma = %.1f\n",
              pipe.num_stages(), hc.sigma);
  runtime::Executor exec(opt::compile(
      std::move(pipe),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 3)));

  // Initial condition: a Gaussian blob; homogeneous Dirichlet walls.
  const poly::Box dom = poly::Box::cube(3, 0, hc.n + 1);
  grid::Buffer u = grid::make_grid(dom);
  grid::Buffer f = grid::make_grid(dom);
  const double h = 1.0 / (hc.n + 1);
  grid::fill_region(grid::View::over(u.data(), dom),
                    poly::Box::cube(3, 1, hc.n),
                    [&](poly::index_t i, poly::index_t j, poly::index_t k) {
                      const double x = i * h - 0.5, y = j * h - 0.5,
                                   z = k * h - 0.5;
                      return std::exp(-50.0 * (x * x + y * y + z * z));
                    });

  for (int t = 0; t < steps; ++t) {
    // RHS of the implicit step: σ·u_prev.
    grid::fill_region(
        grid::View::over(f.data(), dom), poly::Box::cube(3, 1, hc.n),
        [&](poly::index_t i, poly::index_t j, poly::index_t k) {
          return hc.sigma *
                 grid::View::over(u.data(), dom).at3(i, j, k);
        });
    for (int c = 0; c < cycles_per_step; ++c) {
      const std::vector<grid::View> inputs = {
          grid::View::over(u.data(), dom), grid::View::over(f.data(), dom)};
      exec.run(inputs);
      grid::copy_region(grid::View::over(u.data(), dom), exec.output_view(0),
                        dom);
    }
    const double peak = grid::max_norm(grid::View::over(u.data(), dom), dom);
    std::printf("t = %6.4f  peak temperature %.6f\n", (t + 1) * dt, peak);
  }
  std::printf("diffusion complete (peak must decay monotonically)\n");
  return 0;
}
