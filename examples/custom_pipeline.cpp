// A tour of the PolyMG language constructs on a small image-pipeline-
// style program, mirroring how §2 of the paper introduces them:
//
//   Grid      — program inputs
//   Stencil   — weighted neighbourhoods (the paper's translation example)
//   TStencil  — time-iterated stencils in one construct
//   Restrict  — ×2 downsampling with stencil taps
//   Interp    — ÷2 upsampling with parity-piecewise definitions
//
// The program blurs a grid, restricts it, smooths the coarse version
// with a TStencil, interpolates back up and blends with the original —
// a blur/downsample/upsample pyramid, exercising exactly the access
// patterns multigrid needs. It then prints the optimizer's grouping.
//
//   ./examples/custom_pipeline [--n 255]
#include <cstdio>

#include "polymg/common/options.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/builder.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"

int main(int argc, char** argv) {
  using namespace polymg;
  using ir::Expr;
  using ir::FuncSpec;
  using ir::Handle;
  using ir::SourceRef;
  using poly::Box;
  const Options opts = Options::parse(argc, argv);
  const poly::index_t n = opts.get_int("n", 255);
  const poly::index_t nc = (n + 1) / 2 - 1;

  ir::PipelineBuilder b(2);
  Handle img = b.input("img", Box::cube(2, 0, n + 1));

  auto spec = [&](const char* name, poly::index_t sz) {
    FuncSpec s;
    s.name = name;
    s.domain = Box::cube(2, 0, sz + 1);
    s.interior = Box::cube(2, 1, sz);
    return s;
  };

  // Stencil: a 3x3 binomial blur. The paper's example syntax
  //   Stencil(f, (x,y), [[...]], 1/16)
  // maps to stencil2(src, weights, 1.0/16).
  Handle blur = b.define(spec("blur", n), {img},
                         [&](std::span<const SourceRef> s) {
                           return ir::stencil2(
                               s[0], {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}},
                               1.0 / 16);
                         });

  // Restrict: defaults to the output reading input(2x + offsets).
  Handle down = b.define_restrict(
      spec("down", nc), {blur}, [&](std::span<const SourceRef> s) {
        return ir::stencil2(s[0], ir::full_weighting_2d(), 1.0 / 16);
      });

  // TStencil: three diffusion steps on the coarse grid in one construct.
  Handle diffused = b.define_tstencil(
      spec("diffuse", nc), down, {}, 3, [&](std::span<const SourceRef> s) {
        return s[0]() + 0.1 * ir::stencil2(s[0],
                                           {{0, 1, 0}, {1, -4, 1}, {0, 1, 0}});
      });

  // Interp: parity-piecewise bilinear upsampling, the expr[dy][dx] table
  // of Fig. 3 written as four cases.
  Handle up = b.define_interp(
      spec("up", n), {diffused}, [&](std::span<const SourceRef> s) {
        std::vector<Expr> cases(4);
        cases[0] = s[0].at(0, 0);                                  // (e,e)
        cases[1] = 0.5 * (s[0].at(0, 0) + s[0].at(0, 1));          // (e,o)
        cases[2] = 0.5 * (s[0].at(0, 0) + s[0].at(1, 0));          // (o,e)
        cases[3] = 0.25 * (s[0].at(0, 0) + s[0].at(0, 1) +
                           s[0].at(1, 0) + s[0].at(1, 1));         // (o,o)
        return cases;
      });

  // Point-wise blend of the upsampled low-pass with the original.
  Handle blend = b.define(spec("blend", n), {img, up},
                          [&](std::span<const SourceRef> s) {
                            return 0.5 * s[0]() + 0.5 * s[1]();
                          });
  b.mark_output(blend);

  ir::Pipeline pipe = b.build();
  std::printf("%s\n", pipe.dump().c_str());

  auto plan = opt::compile(std::move(pipe), opt::CompileOptions::for_variant(
                                                opt::Variant::OptPlus, 2));
  std::printf("%s\n", plan.dump().c_str());

  // Run it on a checkerboard and report the smoothing it performed.
  runtime::Executor exec(std::move(plan));
  const Box dom = Box::cube(2, 0, n + 1);
  grid::Buffer in = grid::make_grid(dom);
  grid::fill_region(grid::View::over(in.data(), dom), Box::cube(2, 1, n),
                    [](poly::index_t i, poly::index_t j, poly::index_t) {
                      return ((i + j) & 1) ? 1.0 : 0.0;
                    });
  const std::vector<grid::View> inputs = {grid::View::over(in.data(), dom)};
  exec.run(inputs);
  const double out_norm =
      grid::max_norm(exec.output_view(0), Box::cube(2, 1, n));
  std::printf("output max = %.4f (checkerboard flattened toward 0.5)\n",
              out_norm);
  return 0;
}
