// Simulated distributed-memory multigrid: solve the 2-d Poisson problem
// across R "ranks" with communication-aggregated (deep-ghost) smoothing
// and report the communication bill per ghost depth — the trade-off the
// paper's related work (Williams et al.) describes and its future-work
// distributed backend would make on a real network.
//
//   ./examples/distributed_mg [--n 511] [--ranks 4] [--cycles 4]
#include <cstdio>

#include "polymg/common/options.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/dist/dist_mg.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

int main(int argc, char** argv) {
  using namespace polymg;
  const Options opts = Options::parse(argc, argv);

  solvers::CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = opts.get_int("n", 511);
  cfg.levels = static_cast<int>(opts.get_int("levels", 4));
  cfg.n1 = cfg.n2 = cfg.n3 = 4;
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const int cycles = static_cast<int>(opts.get_int("cycles", 4));

  std::printf("%d ranks, 1-d decomposition, %lld^2 grid, %d levels\n",
              ranks, static_cast<long long>(cfg.n), cfg.levels);
  std::printf("%-8s %-12s %-12s %-12s %-14s %-12s\n", "ghost", "time(s)",
              "residual", "exchanges", "doubles sent", "msgs");

  for (int ghost : {1, 2, 4}) {
    auto p = solvers::PoissonProblem::manufactured(2, cfg.n);
    dist::DistMgSolver solver(cfg, ranks, ghost);
    solver.scatter(p.v_view(), p.f_view());
    solver.reset_stats();
    Timer t;
    for (int c = 0; c < cycles; ++c) solver.cycle();
    const double secs = t.elapsed();
    solver.gather(p.v_view());
    const double res =
        solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    std::printf("%-8d %-12.4f %-12.4e %-12ld %-14ld %-12ld\n", ghost, secs,
                res, solver.stats().exchanges, solver.stats().doubles_sent,
                solver.stats().messages);
  }
  std::printf(
      "\nAll ghost depths produce identical numerics (bitwise); the depth\n"
      "only moves cost between message count and redundant computation.\n");
  return 0;
}
