// Emit the Fig. 8-style OpenMP C for a chosen benchmark pipeline. The
// repository executes compiled plans directly, but the emitted program
// shows precisely what schedule/storage the optimizer decided on.
//
//   ./examples/codegen_dump [--kind V|W] [--ndim 2|3] [--variant opt+]
#include <cstdio>

#include "polymg/codegen/emit_c.hpp"
#include "polymg/common/options.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"

int main(int argc, char** argv) {
  using namespace polymg;
  const Options opts = Options::parse(argc, argv);

  solvers::CycleConfig cfg;
  cfg.ndim = static_cast<int>(opts.get_int("ndim", 2));
  cfg.n = opts.get_int("n", cfg.ndim == 2 ? 1023 : 127);
  cfg.levels = 4;
  cfg.kind = opts.get("kind", "V") == "W" ? solvers::CycleKind::W
                                          : solvers::CycleKind::V;

  const std::string vs = opts.get("variant", "opt+");
  const opt::Variant variant = vs == "naive"   ? opt::Variant::Naive
                               : vs == "opt"   ? opt::Variant::Opt
                               : vs == "dtile" ? opt::Variant::DtileOptPlus
                                               : opt::Variant::OptPlus;

  auto plan = opt::compile(solvers::build_cycle(cfg),
                           opt::CompileOptions::for_variant(variant, cfg.ndim));
  const std::string code = codegen::emit_c(plan, "pipeline_cycle");
  std::printf("%s", code.c_str());
  std::fprintf(stderr, "\n// %d lines generated for %d stages\n",
               codegen::generated_loc(plan), plan.pipe.num_stages());
  return 0;
}
