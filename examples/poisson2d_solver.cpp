// A production-style 2-d Poisson solver: iterate V-cycles to a residual
// tolerance, compare execution variants, and report the storage savings
// of the opt+ plan — the workflow a domain scientist would actually run.
//
//   ./examples/poisson2d_solver [--n 1023] [--tol 1e-8] [--variant opt+]
//                               [--autotune]
#include <cstdio>
#include <string>

#include "polymg/common/options.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/opt/autotune.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace {

polymg::opt::Variant parse_variant(const std::string& s) {
  using polymg::opt::Variant;
  if (s == "naive") return Variant::Naive;
  if (s == "opt") return Variant::Opt;
  if (s == "dtile") return Variant::DtileOptPlus;
  return Variant::OptPlus;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace polymg;
  const Options opts = Options::parse(argc, argv);

  solvers::CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = opts.get_int("n", 1023);
  cfg.levels = static_cast<int>(opts.get_int("levels", 6));
  cfg.n1 = cfg.n3 = static_cast<int>(opts.get_int("smooth", 4));
  cfg.n2 = static_cast<int>(opts.get_int("coarse-smooth", 30));
  const double tol = opts.get_double("tol", 1e-8);
  const opt::Variant variant = parse_variant(opts.get("variant", "opt+"));

  opt::CompileOptions copts = opt::CompileOptions::for_variant(variant, 2);
  if (opts.get_flag("autotune")) {
    // §3.2.4: sweep the paper's 80-point 2-d space (one cycle per point)
    // and keep the fastest configuration.
    auto trial = solvers::PoissonProblem::random_rhs(2, cfg.n, 1);
    const opt::TuneResult tr = opt::autotune(
        opt::TuneSpace::paper_default(2), 2, copts,
        [&](const opt::CompileOptions& o) {
          runtime::Executor ex(opt::compile(solvers::build_cycle(cfg), o));
          const std::vector<grid::View> in = {trial.v_view(), trial.f_view()};
          ex.run(in);  // warm (first-touch)
          return min_time_of([&] { ex.run(in); }, 2).min;
        });
    copts.tile = tr.best.tile;
    copts.group_limit = tr.best.group_limit;
    std::printf("autotuned over %zu configs: tile %ldx%ld, group limit %d\n",
                tr.points.size(), static_cast<long>(tr.best.tile[0]),
                static_cast<long>(tr.best.tile[1]), tr.best.group_limit);
  }
  auto plan = opt::compile(solvers::build_cycle(cfg), copts);
  std::printf("variant %s: %zu groups, %zu full arrays\n",
              opt::to_string(variant).c_str(), plan.groups.size(),
              plan.arrays.size());
  std::printf("storage: %lld -> %lld array doubles, %d -> %d scratchpads\n",
              static_cast<long long>(plan.array_doubles_without_reuse),
              static_cast<long long>(plan.array_doubles_with_reuse),
              plan.scratch_buffers_without_reuse,
              plan.scratch_buffers_with_reuse);

  runtime::Executor exec(std::move(plan));
  auto p = solvers::PoissonProblem::manufactured(2, cfg.n);

  const double r0 = solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  Timer timer;
  int cycles = 0;
  double r = r0;
  while (r > tol * r0 && cycles < 50) {
    const std::vector<grid::View> inputs = {p.v_view(), p.f_view()};
    exec.run(inputs);
    grid::copy_region(p.v_view(), exec.output_view(0), p.domain());
    r = solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    ++cycles;
  }
  const double secs = timer.elapsed();
  std::printf("converged to %.2e·r0 in %d cycles, %.3f s (%.1f ms/cycle)\n",
              r / r0, cycles, secs, 1e3 * secs / cycles);
  std::printf("solution error vs manufactured: %.3e\n",
              solvers::error_norm(p.v_view(), p.exact_view(), p.n));
  return r <= tol * r0 ? 0 : 1;
}
