// Quickstart: solve a 2-d Poisson problem with the PolyMG DSL in ~30
// lines of user code.
//
//   1. Describe the multigrid cycle (here via the bundled V-cycle
//      builder; see custom_pipeline.cpp for the raw DSL constructs).
//   2. Compile it with the optimizer variant of your choice.
//   3. Bind the input grids and run cycles until converged.
//
// Build & run:  ./examples/quickstart [--n 1023] [--cycles 8]
#include <cstdio>

#include "polymg/common/options.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

int main(int argc, char** argv) {
  using namespace polymg;
  const Options opts = Options::parse(argc, argv);

  // 1. The multigrid specification: a 6-level V-cycle with 4 pre-/post-
  //    smoothing steps and a near-exact coarsest solve.
  solvers::CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = opts.get_int("n", 1023);  // interior points per dim (2^k - 1)
  cfg.levels = 6;
  cfg.n1 = cfg.n3 = 4;
  cfg.n2 = 30;
  ir::Pipeline cycle = solvers::build_cycle(cfg);
  std::printf("pipeline: %d DAG stages\n", cycle.num_stages());

  // 2. Compile with all of the paper's optimizations (polymg-opt+):
  //    fusion, overlapped tiling, scratchpad & array reuse, pooling.
  runtime::Executor exec(opt::compile(
      std::move(cycle), opt::CompileOptions::for_variant(
                            opt::Variant::OptPlus, cfg.ndim)));

  // 3. A manufactured problem (u = sin πx · sin πy) and the solve loop.
  auto p = solvers::PoissonProblem::manufactured(cfg.ndim, cfg.n);
  const int cycles = static_cast<int>(opts.get_int("cycles", 8));
  for (int c = 0; c < cycles; ++c) {
    const std::vector<grid::View> inputs = {p.v_view(), p.f_view()};
    exec.run(inputs);
    grid::copy_region(p.v_view(), exec.output_view(0), p.domain());
    std::printf("cycle %d: residual %.3e\n", c + 1,
                solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h));
  }
  std::printf("max error vs exact solution: %.3e (h^2 = %.3e)\n",
              solvers::error_norm(p.v_view(), p.exact_view(), p.n),
              p.h * p.h);
  return 0;
}
