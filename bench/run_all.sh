#!/usr/bin/env bash
# Run the perf-tracking benchmark set and drop machine-readable results
# at the repository root:
#   BENCH_kernels.json  — stack interpreter vs register row engine
#   BENCH_fig9.json     — 2-d multigrid variant comparison (Fig. 9)
#   BENCH_sched.json    — barrier vs persistent-team dependence schedule
#   BENCH_autotune.json — the Fig. 12 autotuning sweep
#   BENCH_resilience.json — checkpoint overhead, recovery latency, SDC rate
#   BENCH_service.json  — solve-service throughput / tail latency / overload
#   BENCH_obs.json      — observability plane: histogram accuracy, record
#                         overhead, trace overhead, roofline attribution
#   METRICS_service.prom — Prometheus text scraped live from bench_service
#
# Usage: bench/run_all.sh [build-dir]   (default: ./build)
# Extra knobs via env: REPS (default 3), BENCH_CLASS (e.g. B),
# SCHED_THREADS (default "1,2,4"), POLYMG_TRACE=1 to additionally write a
# Chrome trace (TRACE_<bench>.json per driver, Perfetto-loadable) next to
# each BENCH_*.json, POLYMG_METRICS=1 to additionally dump each driver's
# final metrics-registry snapshot (METRICS_<bench>.json per driver).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo_root/build}"
reps="${REPS:-3}"

# Per-bench trace paths when POLYMG_TRACE is set (any value): each driver
# gets its own file so one run's ring snapshot doesn't clobber another's.
trace_arg() {  # usage: trace_arg <name> -> echoes --trace <path> or nothing
  if [[ -n "${POLYMG_TRACE:-}" ]]; then
    echo "--trace $repo_root/TRACE_$1.json"
  fi
}

# Per-bench metrics snapshots when POLYMG_METRICS is set: the harness
# dumps the whole registry (counters, gauges, histograms) at exit.
metrics_arg() {  # usage: metrics_arg <name> -> echoes --metrics <path> or nothing
  if [[ -n "${POLYMG_METRICS:-}" ]]; then
    echo "--metrics $repo_root/METRICS_$1.json"
  fi
}

if [[ ! -x "$build/bench/bench_kernels" ]]; then
  echo "error: $build/bench/bench_kernels not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "== bench_kernels (reps=$reps, mixed rows at a DRAM-bound 2-d edge) =="
# --n2d 4095 (134 MB of doubles) keeps the 2-d stencils memory-bound so
# the jit-f32 rows measure the bandwidth halving, not cache noise.
"$build/bench/bench_kernels" --reps "$reps" --precision=mixed --n2d 4095 \
  --json "$repo_root/BENCH_kernels.json" $(trace_arg kernels) \
  $(metrics_arg kernels)

echo
echo "== bench_fig9_2d (reps=$reps) =="
fig9_args=(--reps "$reps" --json "$repo_root/BENCH_fig9.json")
if [[ -n "${BENCH_CLASS:-}" ]]; then
  fig9_args+=(--class "$BENCH_CLASS")
fi
"$build/bench/bench_fig9_2d" "${fig9_args[@]}" $(trace_arg fig9) \
  $(metrics_arg fig9) --benchmark_out_format=console

echo
echo "== bench_sched (reps=$reps, threads=${SCHED_THREADS:-1,2,4}) =="
"$build/bench/bench_sched" --reps "$reps" \
  --threads "${SCHED_THREADS:-1,2,4}" \
  --json "$repo_root/BENCH_sched.json" $(trace_arg sched) \
  $(metrics_arg sched)

echo
echo "== bench_fig12_autotune (reps=$reps) =="
"$build/bench/bench_fig12_autotune" --reps "$reps" \
  --json "$repo_root/BENCH_autotune.json" $(trace_arg autotune) \
  $(metrics_arg autotune)

echo
echo "== bench_resilience (reps=$reps) =="
"$build/bench/bench_resilience" --reps "$reps" \
  --json "$repo_root/BENCH_resilience.json" $(trace_arg resilience) \
  $(metrics_arg resilience)

echo
echo "== bench_service =="
# Always keep the scraped exposition text as an artifact: it is the
# ground truth the CI smoke asserts against (parseable Prometheus text,
# histogram series present).
"$build/bench/bench_service" \
  --json "$repo_root/BENCH_service.json" \
  --prom "$repo_root/METRICS_service.prom" \
  $(metrics_arg service)

echo
echo "== bench_obs =="
"$build/bench/bench_obs" \
  --json "$repo_root/BENCH_obs.json" $(metrics_arg obs)

echo
echo "results: $repo_root/BENCH_kernels.json $repo_root/BENCH_fig9.json" \
     "$repo_root/BENCH_sched.json $repo_root/BENCH_autotune.json" \
     "$repo_root/BENCH_resilience.json $repo_root/BENCH_service.json" \
     "$repo_root/BENCH_obs.json $repo_root/METRICS_service.prom"
