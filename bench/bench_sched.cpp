// Scheduler comparison: barrier (one fork/join per group) vs the
// persistent-team dependence schedule, on W-2D-10-0-0 across thread
// counts. The dependence schedule's claim is not more parallelism but
// less synchronization: a W-cycle's deep coarse levels are dominated by
// fork/join and barrier latency, which point-to-point tile releases and
// the plan-time serial-grain fast path remove.
//
// Flags: --paper, --reps N, --threads "1,2,4", --json FILE.
#include <cstdio>
#include <string>
#include <vector>

#include "gbench.hpp"
#include "polymg/common/parallel.hpp"

namespace polymg::bench {
namespace {

SolveRunner sched_runner(const CycleConfig& cfg, int cycles,
                         const CompileOptions& o,
                         std::shared_ptr<runtime::Executor>* ex_out = nullptr) {
  SolveRunner r;
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 42));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_cycle(cfg), o));
  if (ex_out != nullptr) *ex_out = ex;
  r.run = [cycles, p, v0, ex] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    for (int i = 0; i < cycles; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

std::vector<int> parse_threads(const std::string& spec) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? spec.npos : comma - pos);
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const std::vector<int> threads = parse_threads(opts.get("threads", "1,2,4"));

  const SizeClass sc = size_classes(paper).back();  // class C
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = sc.n2d;
  cfg.levels = 4;
  cfg.kind = polymg::solvers::CycleKind::W;
  cfg.n1 = 10;
  cfg.n2 = 0;
  cfg.n3 = 0;

  CompileOptions dep = CompileOptions::for_variant(Variant::OptPlus, 2);
  CompileOptions barrier = dep;
  barrier.dependence_schedule = false;

  ResultTable table;
  std::shared_ptr<polymg::runtime::Executor> last_dep_ex;
  for (int t : threads) {
    polymg::set_num_threads(t);
    const std::string row = "W-2D-10-0-0 @" + std::to_string(t) + "t/C";
    for (const auto& [series, o] :
         {std::pair<const char*, CompileOptions>{"barrier", barrier},
          std::pair<const char*, CompileOptions>{"dependence", dep}}) {
      std::shared_ptr<polymg::runtime::Executor> ex;
      SolveRunner r = sched_runner(cfg, sc.iters2d, o, &ex);
      r.run();  // warm: allocate + first-touch pages
      ex->reset_timers();  // attribute only the measured repetitions
      table.record(row, series, time_runner(r, reps));
      if (std::string(series) == "dependence") last_dep_ex = ex;
    }
  }

  table.print("Scheduler: barrier fork/join vs persistent-team dependence "
              "(W-2D-10-0-0/C)",
              "barrier");
  std::printf("\ndependence-schedule speedup over barrier:\n");
  for (int t : threads) {
    const std::string row = "W-2D-10-0-0 @" + std::to_string(t) + "t/C";
    std::printf("  %2d threads: %.2fx\n", t,
                table.get(row, "barrier") / table.get(row, "dependence"));
  }

  if (opts.get_flag("report") || trace.active()) {
    // Per-group/per-stage attribution plus the metrics snapshot for the
    // dependence executor at the last thread count.
    polymg::obs::RunReport rr = last_dep_ex->run_report();
    rr.title = "dependence schedule, W-2D-10-0-0/C @" +
               std::to_string(threads.back()) + " thread(s)";
    std::printf("\n%s", rr.render().c_str());
  }

  if (const std::string json = opts.get("json", ""); !json.empty()) {
    table.write_json(json, "sched", "barrier");
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
