// Table 3 — benchmark characteristics: DAG stage counts, generated lines
// of code (polymg-opt and polymg-opt+ via the C emitter), and
// polymg-naive execution times per size class at 1 and max threads.
//
// Flags: --paper, --reps N.
#include "polymg/codegen/emit_c.hpp"
#include "polymg/common/parallel.hpp"

#include "gbench.hpp"

namespace polymg::bench {
namespace {

struct Row {
  std::string name;
  int stages = 0;
  int paper_stages = 0;
  int loc_opt = 0;
  int loc_optplus = 0;
};

std::vector<Row> structural_rows(poly::index_t n2d, poly::index_t n3d) {
  std::vector<Row> rows;
  const int paper_counts[] = {40, 42, 100, 98, 40, 42, 100, 98};
  int idx = 0;
  for (int ndim : {2, 3}) {
    for (CycleKind kind : {CycleKind::V, CycleKind::W}) {
      for (auto [n1, n2, n3] : {std::tuple{4, 4, 4}, std::tuple{10, 0, 0}}) {
        CycleConfig cfg;
        cfg.ndim = ndim;
        cfg.n = ndim == 2 ? n2d : n3d;
        cfg.levels = 4;
        cfg.kind = kind;
        cfg.n1 = n1;
        cfg.n2 = n2;
        cfg.n3 = n3;
        Row r;
        r.name = std::string(kind == CycleKind::V ? "V" : "W") + "-" +
                 std::to_string(ndim) + "D-" + std::to_string(n1) + "-" +
                 std::to_string(n2) + "-" + std::to_string(n3);
        auto pipe = solvers::build_cycle(cfg);
        r.stages = pipe.num_stages();
        r.paper_stages = paper_counts[idx];
        r.loc_opt = codegen::generated_loc(opt::compile(
            solvers::build_cycle(cfg),
            CompileOptions::for_variant(Variant::Opt, ndim)));
        r.loc_optplus = codegen::generated_loc(opt::compile(
            solvers::build_cycle(cfg),
            CompileOptions::for_variant(Variant::OptPlus, ndim)));
        rows.push_back(r);
        ++idx;
      }
    }
  }
  // NAS-MG: structural row at the paper's 256³ depth (8 dyadic levels;
  // the paper counts 34 nodes, the difference being NPB's zero-init and
  // norm stages which our pipeline does not materialize).
  {
    solvers::NasMgConfig cfg;
    cfg.n = 256;
    cfg.levels = 8;
    Row r;
    r.name = "NAS-MG";
    r.paper_stages = 34;
    auto pipe = solvers::build_nas_mg_pipeline(cfg);
    r.stages = pipe.num_stages();
    r.loc_opt = codegen::generated_loc(opt::compile(
        solvers::build_nas_mg_pipeline(cfg),
        CompileOptions::for_variant(Variant::Opt, 3)));
    r.loc_optplus = codegen::generated_loc(opt::compile(
        solvers::build_nas_mg_pipeline(cfg),
        CompileOptions::for_variant(Variant::OptPlus, 3)));
    rows.push_back(r);
  }
  return rows;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  benchmark::Initialize(&argc, argv);

  // Structural columns (stage counts and generated LoC).
  const auto structural = structural_rows(63, 31);

  // polymg-naive execution-time columns, per size class.
  for (const SizeClass& sc : size_classes(paper)) {
    for (int ndim : {2, 3}) {
      for (CycleKind kind : {CycleKind::V, CycleKind::W}) {
        for (auto [n1, n2, n3] :
             {std::tuple{4, 4, 4}, std::tuple{10, 0, 0}}) {
          CycleConfig cfg;
          cfg.ndim = ndim;
          cfg.n = ndim == 2 ? sc.n2d : sc.n3d;
          cfg.levels = 4;
          cfg.kind = kind;
          cfg.n1 = n1;
          cfg.n2 = n2;
          cfg.n3 = n3;
          const std::string row =
              std::string(kind == CycleKind::V ? "V" : "W") + "-" +
              std::to_string(ndim) + "D-" + std::to_string(n1) + "-" +
              std::to_string(n2) + "-" + std::to_string(n3);
          register_point(
              row, "naive/" + sc.name,
              make_runner(Series::Naive, cfg,
                          ndim == 2 ? sc.iters2d : sc.iters3d),
              reps);
        }
      }
    }
    for (const NasClass& nc : nas_classes(paper)) {
      if (nc.name != sc.name) continue;
      polymg::solvers::NasMgConfig ncfg;
      ncfg.n = nc.n;
      ncfg.levels = nc.levels;
      register_point("NAS-MG", "naive/" + sc.name,
                     make_nas_runner(Series::Naive, ncfg, nc.iters), reps);
    }
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::printf("\n== Table 3: benchmark characteristics ==\n");
  std::printf("threads available: %d\n", polymg::max_threads());
  std::printf("%-16s %8s %14s %12s %12s\n", "benchmark", "stages",
              "paper-stages", "gen-LoC opt", "gen-LoC opt+");
  for (const auto& r : structural) {
    std::printf("%-16s %8d %14d %12d %12d\n", r.name.c_str(), r.stages,
                r.paper_stages, r.loc_opt, r.loc_optplus);
  }
  table.print("Table 3: polymg-naive execution times", "");
  return 0;
}
