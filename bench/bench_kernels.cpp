// Kernel-engine microbenchmarks: the point-wise stack interpreter vs the
// row-batched register engine vs the linear tap-loop kernel vs the JIT-
// specialized native kernel on the stencils multigrid actually runs
// (5-pt/9-pt 2-d, 27-pt 3-d) plus a variable-coefficient stencil that
// only the non-linear paths can execute (a load·load product defeats
// the linearizer — its tap-loop baseline is hand-written below).
//
// Flags: --reps N (default 5), --n2d E (2-d edge, default 1023),
//        --n3d E (3-d edge, default 127), --json <path>,
//        --jit on|off|auto (default auto),
//        --precision double|mixed|float (default double; non-default
//        adds jit-f32 rows — the dtype-specialized kernels on float
//        storage — each checked point-for-point against the double
//        register engine, mismatches reported as oracle violations).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "harness.hpp"
#include "polymg/codegen/jit.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/jit_abi.hpp"
#include "polymg/ir/stencil.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/runtime/kernels.hpp"

namespace polymg::bench {
namespace {

using grid::Box;
using grid::Buffer;
using grid::View;
using ir::Expr;
using poly::index_t;

Buffer random_grid(const Box& dom, std::uint64_t seed) {
  Buffer b = grid::make_grid(dom);
  Rng rng(seed);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  return b;
}

/// 3×3×3 Gaussian-style weights (every tap nonzero → 27 loads).
ir::Weights3 dense_27pt() {
  ir::Weights3 w(3, ir::Weights2(3, std::vector<double>(3, 0.0)));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        const int taps = (i == 1) + (j == 1) + (k == 1);
        w[i][j][k] = 1.0 / (1 << (3 - taps));
      }
    }
  }
  return w;
}

struct Case {
  std::string name;
  int ndim;
  Expr expr;
  int nsrcs;
};

/// One jit-f32 row's outcome: its speedup over the double jit kernel
/// and how many points disagreed with the double oracle beyond the
/// storage-rounding bound.
struct MixedOutcome {
  std::string row;
  double speedup = 0.0;
  long long violations = 0;
};

/// Hand-written fused kernel for the varcoef-2d stencil. try_linearize
/// rejects the load·load product, so this is the tap-loop-class baseline
/// the DSL cannot derive — the number a hand-tuned specialized kernel
/// reaches, which the jit rows are measured against.
void varcoef2d_hand(View out, const View& u, const View& c,
                    const Box& region) {
  const index_t su = u.stride[0];
  for (index_t i = region.dim(0).lo; i <= region.dim(0).hi; ++i) {
    const double* __restrict pu =
        u.ptr + (i - u.origin[0]) * u.stride[0] - u.origin[1];
    const double* __restrict pc =
        c.ptr + (i - c.origin[0]) * c.stride[0] - c.origin[1];
    double* __restrict po =
        out.ptr + (i - out.origin[0]) * out.stride[0] - out.origin[1];
    const index_t jlo = region.dim(1).lo;
    const index_t jhi = region.dim(1).hi;
#pragma omp simd
    for (index_t j = jlo; j <= jhi; ++j) {
      const double lap =
          4.0 * pu[j] - pu[j - su] - pu[j + su] - pu[j - 1] - pu[j + 1];
      po[j] = pc[j] * (0.25 * lap) + 0.5 * pu[j];
    }
  }
}

void run_case(ResultTable& table, const Case& c, index_t edge, int reps,
              bool mixed, std::vector<MixedOutcome>& mixed_out) {
  const Box dom = Box::cube(c.ndim, 0, edge + 1);
  const Box region = Box::cube(c.ndim, 1, edge);

  std::vector<Buffer> src_bufs;
  std::vector<View> srcs;
  for (int s = 0; s < c.nsrcs; ++s) {
    src_bufs.push_back(random_grid(dom, 42 + static_cast<std::uint64_t>(s)));
    srcs.push_back(View::over(src_bufs.back().data(), dom));
  }
  Buffer out = grid::make_grid(region);
  View ov = View::over(out.data(), region);

  const ir::Bytecode bc = ir::compile_bytecode(c.expr);
  const ir::RegProgram rp = ir::compile_regprog(bc);
  PMG_CHECK(ir::regprog_fits_engine(rp),
            c.name << " does not fit the register engine");
  const auto lf = ir::try_linearize(c.expr, c.ndim);

  const std::string row = c.name + "/" + std::to_string(edge);
  table.record(row, "stack-interp",
               min_time_of(
                   [&] {
                     runtime::apply_bytecode(bc, ov, srcs, region);
                   },
                   reps));
  table.record(row, "regengine",
               min_time_of(
                   [&] {
                     runtime::apply_regprog(rp, ov, srcs, region);
                   },
                   reps));
  if (lf) {
    table.record(row, "tap-loop",
                 min_time_of(
                     [&] {
                       runtime::apply_linear(*lf, ov, srcs, region);
                     },
                     reps));
  } else if (c.name == "varcoef-2d") {
    // Sanity-check the hand kernel against the register engine before
    // trusting its timing (tolerance, not bits: its fused form is
    // exactly what the one-op-per-statement engines avoid).
    Buffer ref = grid::make_grid(region);
    View rv = View::over(ref.data(), region);
    runtime::apply_regprog(rp, rv, srcs, region);
    varcoef2d_hand(ov, srcs[0], srcs[1], region);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      PMG_CHECK(std::fabs(out[i] - ref[i]) <= 1e-12,
                "varcoef-2d hand kernel diverges from the register engine");
    }
    table.record(row, "tap-loop",
                 min_time_of(
                     [&] {
                       varcoef2d_hand(ov, srcs[0], srcs[1], region);
                     },
                     reps));
  }

  if (codegen::jit_mode() != opt::JitMode::Off) {
    const codegen::JitKernel jk = codegen::jit_kernel_for_def(c.ndim, bc);
    if (jk) {
      ir::JitSrcView js[ir::kJitMaxSrcSlots] = {};
      for (std::size_t s = 0; s < srcs.size(); ++s) {
        js[s].ptr = srcs[s].ptr;
        for (int d = 0; d < 3; ++d) {
          js[s].origin[d] = srcs[s].origin[d];
          js[s].stride[d] = srcs[s].stride[d];
        }
      }
      std::int64_t lo[3] = {0, 0, 0};
      std::int64_t hi[3] = {-1, -1, -1};
      for (int d = 0; d < c.ndim; ++d) {
        lo[d] = region.dim(d).lo;
        hi[d] = region.dim(d).hi;
      }
      const auto run_jit = [&] {
        jk.fn(ov.ptr, ov.origin.data(), ov.stride.data(), js, lo, hi);
      };
      // The specialized kernel is required to be bit-exact vs the
      // register engine (one IEEE op per statement, -ffp-contract=off)
      // — assert it, don't assume it, before timing it.
      Buffer ref = grid::make_grid(region);
      View rv = View::over(ref.data(), region);
      runtime::apply_regprog(rp, rv, srcs, region);
      run_jit();
      PMG_CHECK(std::memcmp(out.data(), ref.data(),
                            sizeof(double) * ref.size()) == 0,
                c.name << " jit kernel is not bit-exact vs the register "
                          "engine");
      table.record(row, "jit", min_time_of(run_jit, reps));

      if (mixed) {
        // Same stencil, float storage end to end: sources rounded once
        // into f32, the dtype-specialized kernel (loads promote to
        // double, one rounding on store — the plan-level contract), and
        // a point-for-point oracle against the double reference. Any
        // deviation beyond the storage-rounding bound is a violation.
        const codegen::JitKernel jk32 = codegen::jit_kernel_for_def(
            c.ndim, bc, grid::DType::F32, grid::DType::F32);
        if (jk32) {
          std::vector<grid::BufferF32> src32;
          ir::JitSrcView js32[ir::kJitMaxSrcSlots] = {};
          for (std::size_t s = 0; s < srcs.size(); ++s) {
            src32.push_back(grid::make_grid_f32(dom));
            View sv = View::over(src32.back().data(), dom);
            grid::copy_region(sv, srcs[s], dom);
            js32[s].ptr = src32.back().data();
            for (int d = 0; d < 3; ++d) {
              js32[s].origin[d] = sv.origin[d];
              js32[s].stride[d] = sv.stride[d];
            }
          }
          grid::BufferF32 out32 = grid::make_grid_f32(region);
          View ov32 = View::over(out32.data(), region);
          const auto run_jit32 = [&] {
            jk32.fn(out32.data(), ov32.origin.data(), ov32.stride.data(),
                    js32, lo, hi);
          };
          run_jit32();
          MixedOutcome mo;
          mo.row = row;
          for (std::size_t i = 0; i < ref.size(); ++i) {
            const double d = static_cast<double>(out32[i]) - ref[i];
            if (std::fabs(d) > 1e-6 * (1.0 + std::fabs(ref[i]))) {
              ++mo.violations;
            }
          }
          table.record(row, "jit-f32", min_time_of(run_jit32, reps));
          mo.speedup = table.get(row, "jit") / table.get(row, "jit-f32");
          mixed_out.push_back(mo);
        }
      }
    }
  }
}

int main_impl(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  arm_faults_from_options(opts);  // validate --fault here, not mid-run
  apply_jit_from_options(opts);   // same deal for --jit
  const opt::PrecisionPolicy prec = precision_from_options(opts);  // and --precision
  const bool mixed =
      prec.mixed() && codegen::jit_mode() != opt::JitMode::Off;
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 5));
  const index_t n2d = opts.get_int("n2d", 1023);
  const index_t n3d = opts.get_int("n3d", 127);
  const std::string json = opts.get("json", "");

  std::vector<Case> cases;
  {
    ir::SourceRef u;
    u.slot = 0;
    u.ndim = 2;
    cases.push_back(
        {"5pt-2d", 2, ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25),
         1});
    cases.push_back(
        {"9pt-2d", 2, ir::stencil2(u, ir::full_weighting_2d(), 1.0 / 16),
         1});
  }
  {
    ir::SourceRef u;
    u.slot = 0;
    u.ndim = 3;
    cases.push_back({"27pt-3d", 3, ir::stencil3(u, dense_27pt(), 1.0 / 27),
                     1});
  }
  {
    // Variable-coefficient smoother: c(x)·(stencil of u) is a load·load
    // product, so the tap-loop kernel cannot run it — this is the
    // bytecode-only workload the register engine exists for.
    ir::SourceRef u, cf;
    u.slot = 0;
    u.ndim = 2;
    cf.slot = 1;
    cf.ndim = 2;
    cases.push_back(
        {"varcoef-2d", 2,
         cf() * ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25) +
             0.5 * u.at(0, 0),
         2});
  }

  ResultTable table;
  std::vector<MixedOutcome> mixed_rows;
  for (const Case& c : cases) {
    run_case(table, c, c.ndim == 2 ? n2d : n3d, reps, mixed, mixed_rows);
  }
  table.print("Kernel engines: stack interpreter vs register row engine",
              "stack-interp");
  std::printf("\nregister engine over stack interpreter (geomean): %.2fx\n",
              table.geomean_speedup("regengine", "stack-interp"));
  if (codegen::jit_mode() != opt::JitMode::Off) {
    std::printf("jit over regengine (geomean): %.2fx\n",
                table.geomean_speedup("jit", "regengine"));
    // The ISSUE bar: jit within 2x of tap-loop, i.e. this ratio >= 0.5.
    std::printf("jit vs tap-loop (geomean, >=0.50 is within 2x): %.2fx\n",
                table.geomean_speedup("jit", "tap-loop"));
  }
  if (mixed) {
    // CI parses these lines: the bar is >= 1.3x on at least one
    // memory-bound stencil with zero oracle violations.
    std::printf("\nmixed-precision jit (f32 storage) vs double jit:\n");
    double best = 0.0;
    long long violations = 0;
    for (const MixedOutcome& mo : mixed_rows) {
      std::printf("  %-16s %.2fx  (%lld violation(s))\n", mo.row.c_str(),
                  mo.speedup, mo.violations);
      best = std::max(best, mo.speedup);
      violations += mo.violations;
    }
    std::printf("mixed best speedup over double jit: %.2fx\n", best);
    std::printf("precision oracle violations: %lld\n", violations);
  }
  // Warm-cache proof hook: CI runs the bench twice against one cache dir
  // and greps "jit compiles: 0" on the second run.
  std::printf("jit compiles: %llu\n",
              static_cast<unsigned long long>(
                  obs::Metrics::instance().counter("jit.compiles").value()));
  if (!json.empty()) {
    table.write_json(json, "kernels", "stack-interp");
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) { return polymg::bench::main_impl(argc, argv); }
