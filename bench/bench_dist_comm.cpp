// Ablation: communication aggregation in the simulated distributed
// backend (the paper's future-work direction, §5's Williams et al.
// comparison). Sweeps the ghost depth on a fixed rank count, reporting
// per-cycle execution time alongside the exchange/message/byte counts a
// network would be charged — the redundant-computation-for-communication
// trade of deep ghost zones.
//
// Flags: --paper, --reps N, --ranks R.
#include "polymg/dist/dist_mg.hpp"

#include "gbench.hpp"

namespace polymg::bench {
namespace {

struct DistPoint {
  int ghost;
  long exchanges = 0;
  long messages = 0;
  long doubles_sent = 0;
};

SolveRunner dist_runner(const CycleConfig& cfg, int cycles, int ranks,
                        int ghost, DistPoint* stats_out) {
  SolveRunner r;
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 99));
  auto solver = std::make_shared<dist::DistMgSolver>(cfg, ranks, ghost);
  r.run = [cfg, cycles, p, solver, stats_out] {
    solver->scatter(p->v_view(), p->f_view());
    solver->reset_stats();
    for (int i = 0; i < cycles; ++i) solver->cycle();
    stats_out->exchanges = solver->stats().exchanges;
    stats_out->messages = solver->stats().messages;
    stats_out->doubles_sent = solver->stats().doubles_sent;
  };
  return r;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  benchmark::Initialize(&argc, argv);

  const SizeClass sc = size_classes(paper).back();
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = sc.n2d;
  cfg.levels = 4;
  cfg.n1 = cfg.n2 = cfg.n3 = 4;

  std::vector<std::unique_ptr<DistPoint>> stats;
  for (int ghost : {1, 2, 3, 4}) {
    stats.push_back(std::make_unique<DistPoint>());
    stats.back()->ghost = ghost;
    const std::string row = "V-2D-4-4-4 ghost=" + std::to_string(ghost);
    register_point(row, "dist-mg",
                   dist_runner(cfg, sc.iters2d, ranks, ghost,
                               stats.back().get()),
                   reps);
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Distributed backend: communication aggregation sweep", "");

  std::printf("\ncommunication per solve (%d ranks):\n", ranks);
  std::printf("%8s %12s %10s %14s %16s\n", "ghost", "exchanges", "messages",
              "doubles sent", "doubles/message");
  for (const auto& s : stats) {
    std::printf("%8d %12ld %10ld %14ld %16.1f\n", s->ghost, s->exchanges,
                s->messages, s->doubles_sent,
                s->messages ? static_cast<double>(s->doubles_sent) /
                                  static_cast<double>(s->messages)
                            : 0.0);
  }
  std::printf(
      "\nshape: deeper ghosts -> fewer exchanges/messages, more data per\n"
      "message plus redundant halo compute (communication aggregation).\n");
  return 0;
}
