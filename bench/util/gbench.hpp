// google-benchmark glue: registers SolveRunners as benchmarks and
// captures per-run minima into a ResultTable so each binary can print the
// paper-style comparison tables after the standard benchmark output.
//
// Benchmark names use "row|series"; repetitions map to the paper's
// min-of-N protocol (the reporter keeps the minimum real time).
#pragma once

#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "polymg/common/fault.hpp"

namespace polymg::bench {

class TableReporter : public benchmark::ConsoleReporter {
public:
  explicit TableReporter(ResultTable* table) : table_(table) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      std::string name = run.benchmark_name();
      // Trim the "/iterations:N/repeats:N" suffixes benchmark appends.
      if (const auto slash = name.find("/iterations:");
          slash != std::string::npos) {
        name = name.substr(0, slash);
      }
      const auto bar = name.find('|');
      if (bar == std::string::npos) continue;
      const std::string row = name.substr(0, bar);
      const std::string series = name.substr(bar + 1);
      const double secs = run.GetAdjustedRealTime() / 1e3;  // ms -> s
      // Every repetition folds into the cell's running min/mean/stddev.
      table_->record(row, series, secs);
    }
    ConsoleReporter::ReportRuns(reports);
  }

private:
  ResultTable* table_;
};

/// Register one measured point. The runner executes once per benchmark
/// iteration; repetitions give the min-of-N.
inline void register_point(const std::string& row, const std::string& series,
                           SolveRunner runner, int repetitions) {
  benchmark::RegisterBenchmark(
      (row + "|" + series).c_str(),
      [runner = std::move(runner)](benchmark::State& st) {
        for (auto _ : st) runner.run();
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1)
      ->Repetitions(repetitions)
      ->ReportAggregatesOnly(false);
}

/// Standard main body: parse our options first, then benchmark's.
/// Fault-spec, --jit and --precision validation live in the harness
/// (arm_faults_from_options / apply_jit_from_options /
/// precision_from_options) so non-gbench drivers get the same loud
/// startup rejection of unknown values.
inline Options parse_bench_options(int& argc, char** argv) {
  Options opts = Options::parse(argc, argv);
  arm_faults_from_options(opts);
  apply_jit_from_options(opts);
  precision_from_options(opts);  // every driver rejects bad values here
  return opts;
}

}  // namespace polymg::bench
