#include "harness.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "polymg/codegen/jit.hpp"
#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::bench {

std::vector<SizeClass> size_classes(bool paper) {
  if (paper) {
    // Table 2. Interiors are 2^k - 1 so the hierarchies align; the paper
    // quotes the allocated grid edge (N+2 ≈ 8194 etc.).
    return {{"B", 8191, 255, 10, 25}, {"C", 16383, 511, 10, 10}};
  }
  return {{"B", 511, 63, 3, 3}, {"C", 1023, 127, 3, 2}};
}

bool paper_sizes_requested(const Options& opts) {
  return opts.get_flag("paper", false) ||
         opts.get_flag("paper-sizes", false);
}

std::string to_string(Series s) {
  switch (s) {
    case Series::HandOpt:
      return "handopt";
    case Series::HandOptPluto:
      return "handopt+pluto";
    case Series::Naive:
      return "polymg-naive";
    case Series::Opt:
      return "polymg-opt";
    case Series::OptPlus:
      return "polymg-opt+";
    case Series::DtileOptPlus:
      return "polymg-dtile-opt+";
    case Series::Mixed:
      return "polymg-mixed";
  }
  return "?";
}

const std::vector<Series>& all_series() {
  static const std::vector<Series> s = {
      Series::HandOpt, Series::HandOptPluto, Series::Naive,
      Series::Opt,     Series::OptPlus,      Series::DtileOptPlus,
      Series::Mixed};
  return s;
}

SolveRunner make_runner(Series s, const CycleConfig& cfg, int cycles,
                        std::uint64_t seed, opt::PrecisionPolicy precision) {
  SolveRunner r;
  r.label = to_string(s);
  // The mixed series is mixed even when the driver-wide --precision is
  // the default; --precision=float narrows it further.
  if (s == Series::Mixed && !precision.mixed()) {
    precision.mode = opt::Precision::Mixed;
  }
  // The problem is built once; each timed run restores the pristine
  // initial guess (a memcpy) and then solves — so timings cover the
  // multigrid cycles plus each variant's allocation behaviour, exactly
  // the regime the pooled allocator targets.
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, seed));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());

  if (s == Series::HandOpt || s == Series::HandOptPluto) {
    auto solver = std::make_shared<solvers::HandOptSolver>(
        cfg, /*time_tiled=*/s == Series::HandOptPluto);
    r.run = [cfg, cycles, solver, p, v0] {
      grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                        p->domain());
      for (int i = 0; i < cycles; ++i) {
        solver->cycle(p->v_view(), p->f_view());
      }
    };
    return r;
  }
  const Variant v = s == Series::Naive ? Variant::Naive
                    : s == Series::Opt ? Variant::Opt
                    : s == Series::DtileOptPlus ? Variant::DtileOptPlus
                                                : Variant::OptPlus;
  CompileOptions co = CompileOptions::for_variant(v, cfg.ndim);
  co.precision = precision;
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_cycle(cfg), co));

  if (co.precision.mixed()) {
    // Defect correction (the guarded solver's protocol): the iterate
    // stays double; each cycle rounds the residual once into the plan's
    // external dtypes, runs the narrowed cycle from a zero guess, and
    // absorbs the correction with double accumulation. The timed loop
    // pays for the extra residual + correction traffic — the reported
    // mixed speedup is the end-to-end one, not just the cycle kernel.
    const poly::Box dom = p->domain();
    auto z64 = std::make_shared<grid::Buffer>();
    auto r64 = std::make_shared<grid::Buffer>();
    auto z32 = std::make_shared<grid::BufferF32>();
    auto r32 = std::make_shared<grid::BufferF32>();
    grid::View zv, rv;
    if (ex->plan().dtype_of_external(0) == grid::DType::F32) {
      *z32 = grid::make_grid_f32(dom);
      zv = grid::View::over(z32->data(), dom);
    } else {
      *z64 = grid::make_grid(dom);
      zv = grid::View::over(z64->data(), dom);
    }
    if (ex->plan().dtype_of_external(1) == grid::DType::F32) {
      *r32 = grid::make_grid_f32(dom);
      rv = grid::View::over(r32->data(), dom);
    } else {
      *r64 = grid::make_grid(dom);
      rv = grid::View::over(r64->data(), dom);
    }
    // make_grid* zero-fills and the executor never writes externals, so
    // the zero guess and the residual's boundary ring stay zero across
    // cycles without re-clearing.
    r.run = [cycles, ex, p, v0, z64, r64, z32, r32, zv, rv] {
      grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                        p->domain());
      for (int i = 0; i < cycles; ++i) {
        solvers::residual_field(p->v_view(), p->f_view(), p->n, p->h, rv);
        const std::vector<grid::View> ext = {zv, rv};
        ex->run(ext);
        grid::add_region(p->v_view(), ex->output_view(0), p->interior());
      }
    };
    return r;
  }

  r.run = [cfg, cycles, ex, p, v0] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    for (int i = 0; i < cycles; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

std::vector<NasClass> nas_classes(bool paper) {
  if (paper) {
    return {{"B", 256, 9, 20}, {"C", 512, 9, 20}};
  }
  return {{"B", 32, 5, 4}, {"C", 64, 6, 4}};
}

SolveRunner make_nas_runner(Series s, const solvers::NasMgConfig& cfg,
                            int iters) {
  SolveRunner r;
  r.label = to_string(s);
  const poly::Box dom = poly::Box::cube(3, 0, cfg.n + 1);
  auto u = std::make_shared<grid::Buffer>(grid::make_grid(dom));
  auto v = std::make_shared<grid::Buffer>(grid::make_grid(dom));
  solvers::nas_fill_rhs(grid::View::over(v->data(), dom), cfg.n);

  if (s == Series::HandOpt || s == Series::HandOptPluto) {
    r.label = "nas-reference";
    auto ref = std::make_shared<solvers::NasMgReference>(cfg);
    r.run = [dom, iters, u, v, ref] {
      u->fill(0.0);
      for (int i = 0; i < iters; ++i) {
        ref->iterate(grid::View::over(u->data(), dom),
                     grid::View::over(v->data(), dom));
      }
    };
    return r;
  }
  const Variant var = s == Series::Naive ? Variant::Naive
                      : s == Series::Opt ? Variant::Opt
                                         : Variant::OptPlus;
  auto ex = std::make_shared<runtime::Executor>(opt::compile(
      solvers::build_nas_mg_pipeline(cfg),
      CompileOptions::for_variant(var, 3)));
  r.run = [dom, iters, u, v, ex] {
    u->fill(0.0);
    for (int i = 0; i < iters; ++i) {
      const std::vector<grid::View> ext = {grid::View::over(u->data(), dom),
                                           grid::View::over(v->data(), dom)};
      ex->run(ext);
      grid::copy_region(grid::View::over(u->data(), dom), ex->output_view(0),
                        dom);
    }
  };
  return r;
}

Stats time_runner(const SolveRunner& r, int repetitions) {
  return min_time_of(r.run, repetitions);
}

void arm_faults_from_options(const Options& opts) {
  const std::string spec = opts.get("fault", "");
  if (spec.empty()) return;
  try {
    fault::arm_from_spec(spec);
  } catch (const Error& e) {
    std::fprintf(stderr, "invalid --fault spec '%s': %s\n", spec.c_str(),
                 e.what());
    std::exit(2);
  }
  std::printf("fault injection armed: %s\n", spec.c_str());
}

void apply_jit_from_options(const Options& opts) {
  const std::string spec = opts.get("jit", "auto");
  bool ok = false;
  const opt::JitMode mode = codegen::parse_jit_mode(spec, &ok);
  if (!ok) {
    std::fprintf(stderr,
                 "invalid --jit value '%s': expected on, off, or auto\n",
                 spec.c_str());
    std::exit(2);
  }
  codegen::set_jit_mode(mode);
  if (mode != opt::JitMode::Auto) {
    std::printf("jit mode: %s\n", opt::to_string(mode).c_str());
  }
}

opt::PrecisionPolicy precision_from_options(const Options& opts) {
  const std::string spec = opts.get("precision", "double");
  opt::PrecisionPolicy p;
  if (spec == "double") {
    p.mode = opt::Precision::Double;
  } else if (spec == "mixed") {
    p.mode = opt::Precision::Mixed;
  } else if (spec == "float") {
    p.mode = opt::Precision::Float;
  } else {
    std::fprintf(
        stderr,
        "invalid --precision value '%s': expected double, mixed, or float\n",
        spec.c_str());
    std::exit(2);
  }
  if (p.mode != opt::Precision::Double) {
    // Announce once: drivers validate in parse_bench_options and fetch
    // the policy again where they use it.
    static bool announced = false;
    if (!announced) {
      announced = true;
      std::printf("precision: %s\n", opt::to_string(p.mode).c_str());
    }
  }
  return p;
}

double deadline_ms_from_options(const Options& opts) {
  double ms = 0.0;
  try {
    ms = opts.get_double("deadline-ms", 0.0);
  } catch (const Error& e) {
    std::fprintf(stderr, "invalid --deadline-ms: %s\n", e.what());
    std::exit(2);
  }
  if (ms < 0.0) {
    std::fprintf(stderr,
                 "invalid --deadline-ms: budget must be >= 0 ms, got %g\n",
                 ms);
    std::exit(2);
  }
  return ms;
}

TraceFromOptions::TraceFromOptions(const Options& opts)
    : path_(opts.get("trace", "")) {
  if (path_.empty()) return;
  if (path_ == "1" || path_ == "true") path_ = "trace.json";
  obs::TraceSession::start();
  std::printf("tracing enabled -> %s\n", path_.c_str());
}

TraceFromOptions::~TraceFromOptions() {
  if (path_.empty()) return;
  obs::TraceSession::stop();
  const auto events = obs::TraceSession::snapshot();
  obs::write_chrome_trace_file(path_, events);
  std::printf("wrote %zu trace event(s) to %s (%llu dropped)\n",
              events.size(), path_.c_str(),
              static_cast<unsigned long long>(obs::TraceSession::dropped()));
}

MetricsFromOptions::MetricsFromOptions(const Options& opts)
    : path_(opts.get("metrics", "")) {
  if (path_.empty()) return;
  if (path_ == "1" || path_ == "true") path_ = "metrics.json";
  // Fail HERE, at startup, if the sink is unwritable — not after the
  // benchmark has run to completion.
  {
    std::ofstream probe(path_, std::ios::app);
    if (!probe.good()) {
      std::fprintf(stderr, "cannot open --metrics sink '%s' for writing\n",
                   path_.c_str());
      std::exit(2);
    }
  }
  std::printf("metrics snapshot enabled -> %s\n", path_.c_str());
}

MetricsFromOptions::~MetricsFromOptions() {
  if (path_.empty()) return;
  std::ofstream os(path_, std::ios::trunc);
  os << obs::Metrics::instance().snapshot_json() << "\n";
  std::printf("wrote metrics snapshot to %s\n", path_.c_str());
}

void ResultTable::record(const std::string& row, const std::string& series,
                         double seconds) {
  if (data_.find(row) == data_.end()) row_order_.push_back(row);
  bool seen = false;
  for (const auto& s : series_order_) seen = seen || s == series;
  if (!seen) series_order_.push_back(series);
  // Capture the team size now: thread-sweep drivers change it between
  // rows, and write_json must report what the row actually ran with.
  row_threads_[row] = max_threads();
  data_[row][series].observe(seconds);
}

void ResultTable::record(const std::string& row, const std::string& series,
                         const Stats& stats) {
  if (data_.find(row) == data_.end()) row_order_.push_back(row);
  bool seen = false;
  for (const auto& s : series_order_) seen = seen || s == series;
  if (!seen) series_order_.push_back(series);
  row_threads_[row] = max_threads();
  data_[row][series] = stats;
}

double ResultTable::get(const std::string& row,
                        const std::string& series) const {
  return data_.at(row).at(series).min;
}

const Stats& ResultTable::get_stats(const std::string& row,
                                    const std::string& series) const {
  return data_.at(row).at(series);
}

void ResultTable::print(const std::string& title,
                        const std::string& baseline) const {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-24s", "benchmark");
  for (const auto& s : series_order_) std::printf(" %17s", s.c_str());
  std::printf("\n");
  std::printf("%-24s", "(seconds)");
  for (std::size_t i = 0; i < series_order_.size(); ++i) std::printf(" %17s", "");
  std::printf("\n");
  for (const auto& row : row_order_) {
    std::printf("%-24s", row.c_str());
    for (const auto& s : series_order_) {
      auto it = data_.at(row).find(s);
      if (it == data_.at(row).end()) {
        std::printf(" %17s", "-");
      } else {
        std::printf(" %17.4f", it->second.min);
      }
    }
    std::printf("\n");
  }
  if (baseline.empty()) return;
  std::printf("%-24s\n", ("speedup over " + baseline + ":").c_str());
  for (const auto& row : row_order_) {
    const auto base = data_.at(row).find(baseline);
    if (base == data_.at(row).end()) continue;
    std::printf("%-24s", row.c_str());
    for (const auto& s : series_order_) {
      auto it = data_.at(row).find(s);
      if (it == data_.at(row).end() || it->second.min <= 0) {
        std::printf(" %17s", "-");
      } else {
        std::printf(" %16.2fx", base->second.min / it->second.min);
      }
    }
    std::printf("\n");
  }
}

void ResultTable::write_json(const std::string& path,
                             const std::string& bench,
                             const std::string& baseline) const {
  std::ofstream os(path);
  PMG_CHECK(os.good(), "cannot open " << path << " for writing");
  os << "[\n";
  bool first = true;
  for (const auto& row : row_order_) {
    // Rows are "<benchmark point>/<size class>"; a row without the
    // separator has no class tag.
    const auto slash = row.rfind('/');
    const std::string point = slash == std::string::npos
                                  ? row
                                  : row.substr(0, slash);
    const std::string cls =
        slash == std::string::npos ? "" : row.substr(slash + 1);
    const auto& cells = data_.at(row);
    const auto base = cells.find(baseline);
    const auto tit = row_threads_.find(row);
    const int threads = tit == row_threads_.end() ? max_threads() : tit->second;
    for (const auto& s : series_order_) {
      const auto it = cells.find(s);
      if (it == cells.end()) continue;
      if (!first) os << ",\n";
      first = false;
      os << "  {\"bench\": \"" << bench << "/" << point << "\", "
         << "\"variant\": \"" << s << "\", "
         << "\"class\": \"" << cls << "\", "
         << "\"threads\": " << threads << ", "
         << "\"ms\": " << it->second.min * 1e3 << ", "
         << "\"mean_ms\": " << it->second.mean * 1e3 << ", "
         << "\"stddev_ms\": " << it->second.stddev * 1e3 << ", "
         << "\"reps\": " << it->second.n << ", "
         << "\"speedup_vs_naive\": ";
      if (base != cells.end() && it->second.min > 0) {
        os << base->second.min / it->second.min;
      } else {
        os << "null";
      }
      os << "}";
    }
  }
  os << "\n]\n";
}

double ResultTable::geomean_speedup(const std::string& series,
                                    const std::string& baseline) const {
  double log_sum = 0.0;
  int n = 0;
  for (const auto& [row, m] : data_) {
    const auto a = m.find(baseline);
    const auto b = m.find(series);
    if (a == m.end() || b == m.end() || b->second.min <= 0) continue;
    log_sum += std::log(a->second.min / b->second.min);
    ++n;
  }
  return n ? std::exp(log_sum / n) : 0.0;
}

}  // namespace polymg::bench
