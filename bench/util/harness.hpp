// Shared benchmark harness.
//
// Reproduces the paper's measurement protocol: each benchmark point runs
// a fixed number of whole multigrid cycles (Table 2's iteration counts,
// scaled), the minimum wall time over repetitions is reported, and
// speedups are always computed against polymg-naive on the same problem.
//
// Problem sizes are scaled classes: the paper's Class B/C (2D 8192²/
// 16384², 3D 256³/512³) would take hours on this single-core host, so the
// defaults keep the same shape at laptop scale; set POLYMG_PAPER_SIZES=1
// (or pass --paper) to run the original sizes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "polymg/common/options.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/handopt.hpp"
#include "polymg/solvers/nas_mg.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::bench {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;
using solvers::CycleKind;

/// One problem-size class of Table 2 (scaled).
struct SizeClass {
  std::string name;  // "B" or "C"
  poly::index_t n2d;
  poly::index_t n3d;
  int iters2d;
  int iters3d;
};

/// Scaled classes; `paper` selects the original Table 2 sizes.
std::vector<SizeClass> size_classes(bool paper);

bool paper_sizes_requested(const Options& opts);

/// All comparison series of Figs. 9/10. Mixed is OptPlus recompiled
/// under the mixed storage-precision policy (fine grids float) and run
/// through the defect-correction protocol: the iterate and the residual
/// norms stay double, only the cycle's interior traffic narrows.
enum class Series {
  HandOpt,
  HandOptPluto,
  Naive,
  Opt,
  OptPlus,
  DtileOptPlus,
  Mixed,
};
std::string to_string(Series s);
const std::vector<Series>& all_series();

/// Build a runnable solver for one series; returns a closure running the
/// full multi-cycle solve on a fresh problem each call.
struct SolveRunner {
  std::function<void()> run;
  std::string label;
};
/// `precision` applies to the polymg DSL series (the hand-written
/// reference solvers are double-only); Series::Mixed upgrades a Double
/// policy to Mixed so its row is mixed even without --precision.
SolveRunner make_runner(Series s, const CycleConfig& cfg, int cycles,
                        std::uint64_t seed = 42,
                        opt::PrecisionPolicy precision = {});

/// NAS-MG runner: Series::HandOpt maps to the hand-written NPB-style
/// reference; the polymg series run the DSL pipeline. HandOptPluto and
/// DtileOptPlus are not applicable (NAS MG has no smoother chains) and
/// fall back to HandOpt / OptPlus respectively.
SolveRunner make_nas_runner(Series s, const solvers::NasMgConfig& cfg,
                            int iters);

/// min-of-repetitions timing (the paper uses min of five); mean/stddev
/// ride along in the returned Stats.
Stats time_runner(const SolveRunner& r, int repetitions);

/// Arm fault injection from `--fault=site[:count[:prob[:seed]]]` (comma
/// separated for several sites; the POLYMG_FAULT environment variable is
/// the usual Options fallback). An unknown site name or malformed spec
/// terminates the binary HERE, at startup, with the list of valid sites
/// — not discovered as a silently-never-firing fault after an hour of
/// benchmarking.
void arm_faults_from_options(const Options& opts);

/// Apply `--jit=on|off|auto` (the POLYMG_JIT environment variable is the
/// usual Options fallback; default auto) to the process-wide JIT mode.
/// Like --fault, an unrecognized value terminates the binary HERE, at
/// startup — not as a silently-interpreted run that reports fake "jit"
/// numbers.
void apply_jit_from_options(const Options& opts);

/// The `--deadline-ms` per-request budget (0 disables deadlines).
/// Negative or unparsable values are a startup error.
double deadline_ms_from_options(const Options& opts);

/// Parse `--precision=double|mixed|float` (the POLYMG_PRECISION
/// environment variable is the usual Options fallback; default double)
/// into the storage-precision policy the driver hands to make_runner /
/// its CompileOptions. Like --jit, an unrecognized value terminates the
/// binary HERE, at startup — not as a silently-double run labelled
/// "mixed". A non-default mode is announced once on stdout.
opt::PrecisionPolicy precision_from_options(const Options& opts);

/// RAII trace toggle for the bench drivers: when `--trace <path>` is
/// passed (or the POLYMG_TRACE environment variable names a path — the
/// Options env fallback), starts an obs::TraceSession on construction
/// and writes the buffered events as Chrome trace JSON to the path on
/// destruction. A bare "1" maps to "trace.json". Inactive otherwise.
class TraceFromOptions {
public:
  explicit TraceFromOptions(const Options& opts);
  ~TraceFromOptions();
  TraceFromOptions(const TraceFromOptions&) = delete;
  TraceFromOptions& operator=(const TraceFromOptions&) = delete;

  bool active() const { return !path_.empty(); }

private:
  std::string path_;
};

/// RAII metrics-snapshot sink, the --trace counterpart for the registry:
/// when `--metrics <path>` is passed (or the POLYMG_METRICS environment
/// variable names a path — the Options env fallback), the destructor
/// writes obs::Metrics::snapshot_json() to the path. A bare "1" maps to
/// "metrics.json". The path is validated writable at CONSTRUCTION — an
/// unwritable sink terminates the binary at startup, not after the
/// benchmark has burned its wall time. Inactive otherwise.
class MetricsFromOptions {
public:
  explicit MetricsFromOptions(const Options& opts);
  ~MetricsFromOptions();
  MetricsFromOptions(const MetricsFromOptions&) = delete;
  MetricsFromOptions& operator=(const MetricsFromOptions&) = delete;

  bool active() const { return !path_.empty(); }

private:
  std::string path_;
};

/// NAS-MG size classes: (n, levels, iters) scaled from Table 2's
/// 256³/20 and 512³/20.
struct NasClass {
  std::string name;
  poly::index_t n;
  int levels;
  int iters;
};
std::vector<NasClass> nas_classes(bool paper);

/// Collects (row label -> series -> seconds) and prints paper-style
/// speedup tables (speedup over Naive) plus geometric-mean summaries.
class ResultTable {
public:
  /// Fold one timing observation (seconds) into the cell's running
  /// min/mean/stddev (repeated calls accumulate — the gbench reporter
  /// records every repetition).
  void record(const std::string& row, const std::string& series,
              double seconds);
  /// Set a cell from a precomputed Stats (replaces prior observations).
  void record(const std::string& row, const std::string& series,
              const Stats& stats);
  /// Minimum seconds of a cell (the paper's reported number).
  double get(const std::string& row, const std::string& series) const;
  const Stats& get_stats(const std::string& row,
                         const std::string& series) const;

  /// Print execution times and speedup-over-naive, one row per problem.
  void print(const std::string& title, const std::string& baseline) const;

  /// Geometric mean of (baseline / series) across all rows.
  double geomean_speedup(const std::string& series,
                         const std::string& baseline) const;

  /// Machine-readable results: a JSON array with one record per
  /// (row, series) cell —
  ///   {"bench": "<bench>/<row>", "variant": "<series>",
  ///    "class": "<suffix of row after the last '/'>",
  ///    "threads": N, "ms": min, "mean_ms": m, "stddev_ms": s,
  ///    "reps": n, "speedup_vs_naive": base/min}
  /// `threads` is the team size captured when the row was recorded, so
  /// drivers that sweep set_num_threads (bench_sched, bench_scaling)
  /// get the per-row truth, not the final thread count.
  /// `baseline` names the series speedups are computed against (the
  /// field is null for rows that lack the baseline).
  void write_json(const std::string& path, const std::string& bench,
                  const std::string& baseline) const;

private:
  std::vector<std::string> row_order_;
  std::vector<std::string> series_order_;
  std::map<std::string, std::map<std::string, Stats>> data_;
  // Team size at record time, per row (see write_json).
  std::map<std::string, int> row_threads_;
};

}  // namespace polymg::bench
