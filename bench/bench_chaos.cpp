// Chaos sweep driver (DESIGN.md §15): every fault::FaultInjector site
// armed against a LIVE watchdog-enabled SolveService, crossed with the
// secondary axes {jit on/off, precision double/mixed, dependence/barrier
// schedule, cold/warm injection timing}. For each run the liveness
// invariants are checked — every request terminates with an honest
// terminal status, the service answers a clean probe after the fault is
// disarmed, and shutdown leaks zero workers — and the per-site outcome
// histogram plus the watchdog's stall-detection latency are emitted to
// BENCH_chaos.json (the CI bench-smoke job asserts zero stuck requests
// and zero leaked workers from it).
//
// Default mode rotates the secondary axes across sites (one run per
// site); --full runs the whole site × axis cross-product. Axis caveats,
// so the matrix is read honestly:
//  * an ARMED fault injector forces the barrier schedule regardless of
//    the requested axis (Executor::dependence_scheduled) — the schedule
//    axis therefore exercises plan compilation and the disarmed probe,
//    not the faulted burst itself;
//  * the service serves constant-coefficient Poisson plans, which are
//    all-linear: JitMode::On binds no kernels, so the jit.* sites never
//    fire in-service (their firing path is covered by test_jit_sandbox);
//    armed-but-silent sites must still leave the service fully live.
//
// Flags: --full, --burst N, --reps N, --json FILE.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gbench.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/service/service.hpp"

namespace polymg::bench {
namespace {

using service::ServiceConfig;
using service::SolveRequest;
using service::SolveResult;
using service::SolveService;
using solvers::CycleConfig;
using solvers::PoissonProblem;

struct Axes {
  bool jit_on = false;
  bool mixed = false;
  bool dep_schedule = true;
  bool cold = false;  ///< arm before the first request (vs after warm-up)
};

struct RunOutcome {
  std::string site;
  Axes axes;
  int requests = 0;
  int terminated = 0;  ///< wait() calls that returned a terminal status
  std::map<std::string, int> by_status;
  bool answered_after = false;
  int leaked_workers = 0;
  long fired = 0;
  std::uint64_t stalls_detected = 0;  ///< delta across the run
  std::uint64_t workers_lost = 0;     ///< delta across the run
};

std::uint64_t ctr(const char* name) {
  return obs::Metrics::instance().counter(name).value();
}

CycleConfig small2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 3;
  cfg.n2 = 20;
  return cfg;
}

SolveRequest make_req(const Axes& a, const std::string& tenant) {
  SolveRequest req;
  req.cfg = small2d();
  req.opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2);
  req.opts.jit = a.jit_on ? opt::JitMode::On : opt::JitMode::Off;
  req.opts.precision.mode =
      a.mixed ? opt::Precision::Mixed : opt::Precision::Double;
  req.opts.dependence_schedule = a.dep_schedule;
  const PoissonProblem p = PoissonProblem::manufactured(2, req.cfg.n);
  req.rhs = p.f.clone();
  req.rel_tol = 1e-8;
  req.tenant = tenant;
  return req;
}

ServiceConfig chaos_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.stall_timeout_ms = 150.0;  // cold compiles must not read as stalls
  cfg.watchdog_poll_ms = 5.0;
  cfg.stall_fault_ms = 60000.0;  // uncooperative: only escalation ends it
  cfg.shutdown_drain_ms = 10000.0;
  cfg.shutdown_kill_grace_ms = 1000.0;
  return cfg;
}

/// One chaos run: service up, fault armed (cold: before any request;
/// warm: after one clean solve), burst submitted and fully waited,
/// fault disarmed, clean probe, shutdown. Every wait() that returns
/// counts toward `terminated`; a wait that never returned would hang
/// the driver — which the CI job's timeout converts into a failure.
RunOutcome run_site(const std::string& site, const Axes& axes, int burst) {
  RunOutcome out;
  out.site = site;
  out.axes = axes;
  const std::uint64_t stalls0 = ctr("service.stalls_detected");
  const std::uint64_t lost0 = ctr("service.workers_lost");

  SolveService svc(chaos_config());
  auto& fi = fault::FaultInjector::instance();

  if (!axes.cold) {
    const auto warm = svc.submit(make_req(axes, "warm"));
    if (warm.admitted) (void)svc.wait(warm.ticket);
  }

  fi.arm(site, /*count=*/2);
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < burst; ++i) {
    const auto adm = svc.submit(make_req(axes, "chaos"));
    if (adm.admitted) {
      tickets.push_back(adm.ticket);
    } else {
      ++out.by_status["shed_at_admission"];
      ++out.terminated;  // a reject IS a terminal answer
    }
    ++out.requests;
  }
  for (const std::uint64_t t : tickets) {
    const SolveResult res = svc.wait(t);
    ++out.terminated;
    ++out.by_status[to_string(res.status)];
  }
  out.fired = fi.fired(site);
  fi.disarm(site);

  const auto probe = svc.submit(make_req(axes, "probe"));
  ++out.requests;
  if (probe.admitted) {
    const SolveResult res = svc.wait(probe.ticket);
    ++out.terminated;
    out.answered_after = res.converged;
  }

  svc.shutdown();
  out.leaked_workers = svc.leaked_workers();
  out.stalls_detected = ctr("service.stalls_detected") - stalls0;
  out.workers_lost = ctr("service.workers_lost") - lost0;
  return out;
}

const char* b2s(bool b) { return b ? "true" : "false"; }

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  const bool full = opts.has("full");
  const int burst = static_cast<int>(opts.get_int("burst", 3));
  const int reps = static_cast<int>(opts.get_int("reps", 1));

  const std::vector<std::string> sites =
      polymg::fault::FaultInjector::list_sites();
  polymg::fault::FaultInjector::instance().reset();

  // Axis combinations: the full cross-product, or one rotated pick per
  // site (every axis value still appears across the default sweep).
  std::vector<Axes> combos;
  if (full) {
    for (int j = 0; j < 2; ++j) {
      for (int p = 0; p < 2; ++p) {
        for (int s = 0; s < 2; ++s) {
          for (int t = 0; t < 2; ++t) {
            combos.push_back(Axes{j == 1, p == 1, s == 0, t == 1});
          }
        }
      }
    }
  }

  std::vector<RunOutcome> runs;
  int stuck_requests = 0;
  int leaked_workers = 0;
  int unanswered = 0;
  std::size_t ix = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& site : sites) {
      const std::vector<Axes> picks =
          full ? combos
               : std::vector<Axes>{Axes{(ix & 1) != 0, (ix & 2) != 0,
                                        (ix & 4) == 0, (ix & 8) != 0}};
      ++ix;
      for (const Axes& a : picks) {
        const RunOutcome out = run_site(site, a, burst);
        stuck_requests += out.requests - out.terminated;
        leaked_workers += out.leaked_workers;
        unanswered += out.answered_after ? 0 : 1;
        std::printf(
            "%-20s jit=%-3s prec=%-6s sched=%-7s timing=%-4s fired=%ld "
            "terminated=%d/%d answered=%s leaked=%d stalls=%llu lost=%llu\n",
            site.c_str(), a.jit_on ? "on" : "off",
            a.mixed ? "mixed" : "double", a.dep_schedule ? "dep" : "barrier",
            a.cold ? "cold" : "warm", out.fired, out.terminated, out.requests,
            out.answered_after ? "yes" : "NO", out.leaked_workers,
            static_cast<unsigned long long>(out.stalls_detected),
            static_cast<unsigned long long>(out.workers_lost));
        runs.push_back(out);
      }
    }
  }

  // Stall-detection latency: the watchdog records each stage-1 firing's
  // observed heartbeat freeze into service.stall_detect_ns.
  const auto& detect =
      polymg::obs::Metrics::instance().histogram("service.stall_detect_ns");
  std::printf("\nchaos sweep: %zu runs, %d stuck request(s), %d leaked "
              "worker(s), %d unanswered probe(s)\n",
              runs.size(), stuck_requests, leaked_workers, unanswered);
  if (detect.count() > 0) {
    std::printf("stall detection latency: %lld samples, p50 %.1f ms, "
                "p95 %.1f ms\n",
                static_cast<long long>(detect.count()),
                static_cast<double>(detect.quantile(0.5)) / 1e6,
                static_cast<double>(detect.quantile(0.95)) / 1e6);
  }

  if (const std::string json = opts.get("json", ""); !json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"chaos\",\n  \"full\": %s,\n"
                 "  \"burst\": %d,\n  \"sites\": %zu,\n",
                 b2s(full), burst, sites.size());
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunOutcome& r = runs[i];
      std::fprintf(f,
                   "    {\"site\": \"%s\", \"jit\": %s, \"mixed\": %s, "
                   "\"dep_schedule\": %s, \"cold\": %s, \"fired\": %ld, "
                   "\"requests\": %d, \"terminated\": %d, "
                   "\"answered_after\": %s, \"leaked_workers\": %d, "
                   "\"stalls_detected\": %llu, \"workers_lost\": %llu, "
                   "\"outcomes\": {",
                   r.site.c_str(), b2s(r.axes.jit_on), b2s(r.axes.mixed),
                   b2s(r.axes.dep_schedule), b2s(r.axes.cold), r.fired,
                   r.requests, r.terminated, b2s(r.answered_after),
                   r.leaked_workers,
                   static_cast<unsigned long long>(r.stalls_detected),
                   static_cast<unsigned long long>(r.workers_lost));
      bool first = true;
      for (const auto& [status, n] : r.by_status) {
        std::fprintf(f, "%s\"%s\": %d", first ? "" : ", ", status.c_str(), n);
        first = false;
      }
      std::fprintf(f, "}}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"stall_detect\": {\"samples\": %lld, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f},\n",
                 static_cast<long long>(detect.count()),
                 static_cast<double>(detect.quantile(0.5)) / 1e6,
                 static_cast<double>(detect.quantile(0.95)) / 1e6);
    std::fprintf(f,
                 "  \"totals\": {\"runs\": %zu, \"stuck_requests\": %d, "
                 "\"leaked_workers\": %d, \"unanswered_probes\": %d}\n}\n",
                 runs.size(), stuck_requests, leaked_workers, unanswered);
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }

  // Liveness is the contract: fail loudly, not just in the JSON.
  return (stuck_requests == 0 && leaked_workers == 0 && unanswered == 0) ? 0
                                                                         : 1;
}
