// Figures 6 and 7 (qualitative) — grouping and storage reports for the
// 2D V-cycle 4-4-4 benchmark: which operators fused into which groups,
// which nodes are scratchpads vs live-out full arrays, the scratchpad
// colouring within each group (Fig. 7's two-colour example), and the
// pool release points. Also dumps a snippet of the Fig. 8-style emitted
// C for the first tiled group.
#include "polymg/codegen/emit_c.hpp"

#include "gbench.hpp"

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  (void)opts;
  benchmark::Initialize(&argc, argv);

  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 1023;
  cfg.levels = 4;

  auto plan = polymg::opt::compile(
      polymg::solvers::build_cycle(cfg),
      CompileOptions::for_variant(Variant::OptPlus, 2));

  std::printf("== Figure 6: grouping & storage map (2D V-4-4-4) ==\n%s\n",
              plan.dump().c_str());
  std::printf("scratchpads: %d before intra-group reuse, %d after\n",
              plan.scratch_buffers_without_reuse,
              plan.scratch_buffers_with_reuse);
  std::printf("full arrays: %lld doubles one-to-one, %lld after reuse\n",
              static_cast<long long>(plan.array_doubles_without_reuse),
              static_cast<long long>(plan.array_doubles_with_reuse));

  const std::string code = polymg::codegen::emit_c(plan, "pipeline_Vcycle");
  std::printf("\n== Figure 8: emitted C (first 60 lines) ==\n");
  int line = 0;
  std::size_t pos = 0;
  while (line < 60 && pos < code.size()) {
    const std::size_t nl = code.find('\n', pos);
    std::printf("%s\n", code.substr(pos, nl - pos).c_str());
    pos = nl == std::string::npos ? code.size() : nl + 1;
    ++line;
  }
  return 0;
}
