// Figure 12 — autotuning sweep for 2D-V-10-0-0 class C: execution time
// of polymg-opt and polymg-opt+ across (group-size limit × tile size)
// configurations. The paper's observations to reproduce: (i) opt+ beats
// opt at every configuration, (ii) adjacent configurations sharing a
// tile size behave alike (the repetitive pattern), and the tuner's best
// configuration is reported at the end.
//
// The paper's 2-d space: outer tile 8:64, inner 64:512 (powers of two),
// five grouping limits = 80 configurations; --full sweeps all of them,
// the default subsamples to keep single-core runtime reasonable.
//
// Flags: --paper, --reps N, --full.
#include "gbench.hpp"

namespace polymg::bench {
namespace {

SolveRunner tuned_runner(const CycleConfig& cfg, int cycles, Variant var,
                         polymg::poly::index_t t0, polymg::poly::index_t t1,
                         int group_limit) {
  SolveRunner r;
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 13));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());
  CompileOptions o = CompileOptions::for_variant(var, cfg.ndim);
  o.tile = {t0, t1, 0};
  o.group_limit = group_limit;
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_cycle(cfg), o));
  r.run = [cycles, p, v0, ex] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    for (int i = 0; i < cycles; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  const bool paper = paper_sizes_requested(opts);
  const bool full = opts.get_flag("full", false);
  const int reps = static_cast<int>(opts.get_int("reps", 1));
  benchmark::Initialize(&argc, argv);

  const SizeClass sc = size_classes(paper).back();  // class C
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = sc.n2d;
  cfg.levels = 4;
  cfg.n1 = 10;
  cfg.n2 = 0;
  cfg.n3 = 0;

  const std::vector<int> group_limits =
      full ? std::vector<int>{2, 4, 6, 8, 12} : std::vector<int>{4, 8, 12};
  const std::vector<polymg::poly::index_t> outer =
      full ? std::vector<polymg::poly::index_t>{8, 16, 32, 64}
           : std::vector<polymg::poly::index_t>{16, 32};
  const std::vector<polymg::poly::index_t> inner =
      full ? std::vector<polymg::poly::index_t>{64, 128, 256, 512}
           : std::vector<polymg::poly::index_t>{128, 256};

  for (int gl : group_limits) {
    for (polymg::poly::index_t t0 : outer) {
      for (polymg::poly::index_t t1 : inner) {
        char row[64];
        std::snprintf(row, sizeof row, "g%02d tile %3ldx%3ld", gl,
                      static_cast<long>(t0), static_cast<long>(t1));
        for (Variant v : {Variant::Opt, Variant::OptPlus}) {
          register_point(row, polymg::opt::to_string(v),
                         tuned_runner(cfg, sc.iters2d, v, t0, t1, gl), reps);
        }
      }
    }
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 12: autotuning configurations (2D-V-10-0-0/C)",
              "polymg-opt");

  // Report the tuner's pick and the opt+-always-wins property.
  double best = 1e300;
  std::string best_cfg;
  int optplus_wins = 0, points = 0;
  for (int gl : group_limits) {
    for (polymg::poly::index_t t0 : outer) {
      for (polymg::poly::index_t t1 : inner) {
        char row[64];
        std::snprintf(row, sizeof row, "g%02d tile %3ldx%3ld", gl,
                      static_cast<long>(t0), static_cast<long>(t1));
        const double o = table.get(row, "polymg-opt");
        const double p = table.get(row, "polymg-opt+");
        ++points;
        optplus_wins += p <= o;
        if (p < best) {
          best = p;
          best_cfg = row;
        }
      }
    }
  }
  std::printf("\nautotuner best: %s (%.4fs); opt+ <= opt at %d/%d points\n",
              best_cfg.c_str(), best, optplus_wins, points);
  return 0;
}
