// Figure 12 — autotuning sweep for 2D-V-10-0-0 class C: execution time
// of polymg-opt and polymg-opt+ across (group-size limit × tile size)
// configurations, driven through the real tuner (opt::autotune) so the
// sweep exercises its min-of-N protocol and >3× early-prune cutoff. The
// paper's observations to reproduce: (i) opt+ beats opt at every
// configuration, (ii) adjacent configurations sharing a tile size behave
// alike (the repetitive pattern), and the tuner's best configuration is
// reported at the end.
//
// The paper's 2-d space: outer tile 8:64, inner 64:512 (powers of two),
// five grouping limits = 80 configurations; --full sweeps all of them,
// the default subsamples to keep single-core runtime reasonable.
//
// Flags: --paper, --reps N, --full, --json FILE.
#include <cstdio>

#include "gbench.hpp"
#include "polymg/common/timer.hpp"
#include "polymg/opt/autotune.hpp"

namespace polymg::bench {
namespace {

using opt::TuneControls;
using opt::TunePoint;
using opt::TuneResult;
using opt::TuneSpace;

SolveRunner tuned_runner(const CycleConfig& cfg, int cycles,
                         const CompileOptions& o) {
  SolveRunner r;
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 13));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_cycle(cfg), o));
  r.run = [cycles, p, v0, ex] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    for (int i = 0; i < cycles; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

std::string point_row(const TunePoint& pt) {
  char row[64];
  std::snprintf(row, sizeof row, "g%02d tile %3ldx%3ld", pt.group_limit,
                static_cast<long>(pt.tile[0]), static_cast<long>(pt.tile[1]));
  return row;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const bool full = opts.get_flag("full", false);
  const int reps = static_cast<int>(opts.get_int("reps", 1));

  const SizeClass sc = size_classes(paper).back();  // class C
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = sc.n2d;
  cfg.levels = 4;
  cfg.n1 = 10;
  cfg.n2 = 0;
  cfg.n3 = 0;

  TuneSpace space;
  if (full) {
    space = TuneSpace::paper_default(2);
  } else {
    space.tiles[0] = {16, 32};
    space.tiles[1] = {128, 256};
    space.group_limits = {4, 8, 12};
  }

  TuneControls ctl;
  ctl.reps = reps;

  ResultTable table;
  for (Variant var : {Variant::Opt, Variant::OptPlus}) {
    const std::string series = polymg::opt::to_string(var);
    const CompileOptions base = CompileOptions::for_variant(var, 2);
    const TuneResult tr = polymg::opt::autotune(
        space, 2, base,
        [&](const CompileOptions& o) {
          SolveRunner r = tuned_runner(cfg, sc.iters2d, o);
          polymg::Timer t;
          r.run();
          return t.elapsed();
        },
        ctl);
    for (const TunePoint& pt : tr.points) {
      table.record(point_row(pt), series, pt.seconds);
    }
    std::printf("%s: tuner best %s (%.4fs), pruned %d/%zu points after one "
                "rep\n",
                series.c_str(), point_row(tr.best).c_str(), tr.best.seconds,
                tr.pruned, tr.points.size());
  }

  table.print("Figure 12: autotuning configurations (2D-V-10-0-0/C)",
              "polymg-opt");

  // The opt+-always-wins property (pruned points still carry their
  // one-rep measurement, so every cell is populated).
  int optplus_wins = 0, points = 0;
  double best = 1e300;
  std::string best_cfg;
  for (int gl : space.group_limits) {
    for (polymg::poly::index_t t0 : space.tiles[0]) {
      for (polymg::poly::index_t t1 : space.tiles[1]) {
        TunePoint pt;
        pt.group_limit = gl;
        pt.tile = {t0, t1, 0};
        const std::string row = point_row(pt);
        const double o = table.get(row, "polymg-opt");
        const double p = table.get(row, "polymg-opt+");
        ++points;
        optplus_wins += p <= o;
        if (p < best) {
          best = p;
          best_cfg = row;
        }
      }
    }
  }
  std::printf("\nautotuner best: %s (%.4fs); opt+ <= opt at %d/%d points\n",
              best_cfg.c_str(), best, optplus_wins, points);

  if (const std::string json = opts.get("json", ""); !json.empty()) {
    table.write_json(json, "autotune", "polymg-opt");
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
