// Solve-service throughput and tail latency (DESIGN.md §10): what does
// the deadline-aware front end deliver when the host is healthy, and
// what does it degrade to when it is oversubscribed and flaky?
//
//   1. Steady state — a request stream against a warm plan cache at the
//      configured worker count: solves/sec, p50/p95/p99 latency, and a
//      zero-recompile check (the "opt.compiles" counter must not move
//      once every signature has been compiled once).
//   2. Overload — the same stream submitted as a 2x-oversubscribed
//      burst, first clean and then with 10% service.slow stalls
//      injected. Rejected requests must carry a positive retry-after
//      hint, deadline overshoot must stay within one tile-stage granule
//      (measured generously as the injected stall + one scheduling
//      quantum), and faulty throughput must stay within 10% of the
//      clean overload run.
//
// Per-phase latency percentiles come from the service's lock-free
// service.e2e_ns histogram (reset between phases); the sorted
// per-request samples are kept as a cross-check — the histogram
// quantile must agree with the exact nearest-rank order statistic to
// within one bucket width (~6% relative), which the JSON records and CI
// asserts. The run also self-scrapes its own Prometheus endpoint
// (ephemeral loopback port) and writes the payload next to the JSON.
//
// Emits BENCH_service.json (a single object; the panels are derived
// service metrics, not per-series timings).
//
// Flags: --workers N, --requests R, --deadline-ms D, --json FILE,
//        --prom FILE (Prometheus self-scrape payload),
//        --fault SPEC (extra sites on top of panel 2's injection).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gbench.hpp"
#include "polymg/obs/exposition.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/service/service.hpp"

namespace polymg::bench {
namespace {

using service::ServiceConfig;
using service::SolveRequest;
using service::SolveResult;
using service::SolveService;

const char* kTenants[] = {"alice", "bob", "carol"};

CycleConfig bench_cfg() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 255;
  cfg.levels = 5;
  return cfg;
}

SolveRequest make_request(const grid::Buffer& rhs, int i,
                          double deadline_ms) {
  SolveRequest req;
  req.cfg = bench_cfg();
  req.opts = CompileOptions::for_variant(Variant::OptPlus, req.cfg.ndim);
  req.rhs = rhs.clone();
  req.rel_tol = 1e-8;
  req.tenant = kTenants[i % 3];
  req.deadline_ms = deadline_ms;
  return req;
}

/// Everything one panel reports.
struct PhaseStats {
  double elapsed_s = 0.0;
  int submitted = 0;
  int served = 0;        // status Generic (solved, converged or not)
  int rejected = 0;
  int deadline_hits = 0;
  int degraded = 0;
  int retries = 0;
  bool retry_after_ok = true;  // every reject carried a positive hint
  double max_overshoot_ms = 0.0;
  std::vector<double> latency_ms;  // e2e (admission->completion) per request
  // Histogram-derived percentiles (service.e2e_ns, reset per phase) and
  // the bucket width carried by the p99 read — its error bound.
  double hist_p50_ms = 0.0;
  double hist_p95_ms = 0.0;
  double hist_p99_ms = 0.0;
  double hist_p99_bucket_ms = 0.0;

  double solves_per_sec() const {
    return elapsed_s > 0 ? served / elapsed_s : 0.0;
  }
  /// Exact nearest-rank order statistic — the same convention the
  /// histogram's quantile() uses, so the two differ by at most the
  /// bucket width when computed over the same samples.
  double pct(double p) const {
    if (latency_ms.empty()) return 0.0;
    std::vector<double> s = latency_ms;
    std::sort(s.begin(), s.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), s.size());
    return s[rank - 1];
  }
  /// |histogram p99 - exact p99| <= one bucket width: the acceptance
  /// criterion CI asserts on the emitted JSON.
  bool hist_vs_sort_p99_ok() const {
    if (latency_ms.empty()) return true;
    return std::abs(hist_p99_ms - pct(99)) <= hist_p99_bucket_ms + 1e-6;
  }
};

/// Drive `requests` solves through `svc`, submitting in bursts of
/// `burst` (burst > queue capacity is the oversubscription case) and
/// draining each burst before the next.
PhaseStats run_phase(SolveService& svc, const grid::Buffer& rhs,
                     int requests, int burst, double deadline_ms) {
  PhaseStats st;
  // Per-phase histogram semantics: the registry handles are stable, so
  // resetting just the aggregate latency histograms scopes them to this
  // phase without touching counters (the zero-recompile check depends on
  // opt.compiles surviving).
  auto& m = polymg::obs::Metrics::instance();
  m.histogram("service.queue_ns").reset();
  m.histogram("service.solve_ns").reset();
  m.histogram("service.e2e_ns").reset();
  Timer t;
  int sent = 0;
  while (sent < requests) {
    const int batch = std::min(burst, requests - sent);
    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < batch; ++i, ++sent) {
      ++st.submitted;
      const SolveService::Admission a =
          svc.submit(make_request(rhs, sent, deadline_ms));
      if (!a.admitted) {
        ++st.rejected;
        if (a.retry_after_ms <= 0.0) st.retry_after_ok = false;
        continue;
      }
      tickets.push_back(a.ticket);
    }
    for (const std::uint64_t ticket : tickets) {
      SolveResult res = svc.wait(ticket);
      st.latency_ms.push_back(res.e2e_ms);
      st.max_overshoot_ms =
          std::max(st.max_overshoot_ms, res.deadline_overshoot_ms);
      st.retries += res.retries;
      if (res.degraded) ++st.degraded;
      if (res.status == ErrorCode::DeadlineExceeded) {
        ++st.deadline_hits;
      } else if (res.status == ErrorCode::Generic) {
        ++st.served;
      }
    }
  }
  st.elapsed_s = t.elapsed();
  const auto& h = m.histogram("service.e2e_ns");
  st.hist_p50_ms = static_cast<double>(h.quantile(0.50)) / 1e6;
  st.hist_p95_ms = static_cast<double>(h.quantile(0.95)) / 1e6;
  st.hist_p99_ms = static_cast<double>(h.quantile(0.99)) / 1e6;
  st.hist_p99_bucket_ms =
      static_cast<double>(h.quantile_bucket_width(0.99)) / 1e6;
  return st;
}

void print_phase(const char* name, const PhaseStats& st) {
  std::printf(
      "%-18s %6.1f solves/s  p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms "
      "(histogram, +-%.2f ms)\n"
      "%-18s sorted cross-check: p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms"
      " [%s]\n"
      "%-18s %d/%d served, %d rejected, %d deadline, %d degraded, "
      "%d retries, max overshoot %.2f ms\n",
      name, st.solves_per_sec(), st.hist_p50_ms, st.hist_p95_ms,
      st.hist_p99_ms, st.hist_p99_bucket_ms, "", st.pct(50), st.pct(95),
      st.pct(99), st.hist_vs_sort_p99_ok() ? "OK" : "MISMATCH", "",
      st.served, st.submitted, st.rejected, st.deadline_hits, st.degraded,
      st.retries, st.max_overshoot_ms);
}

void json_phase(std::FILE* f, const char* name, const PhaseStats& st,
                bool last) {
  // p50/p95/p99_ms are the histogram reads (the production path);
  // sort_* keep the exact order statistics as the cross-check CI
  // asserts against (|p99 - sort_p99| <= p99_bucket_ms).
  std::fprintf(
      f,
      "    \"%s\": {\"submitted\": %d, \"served\": %d, \"rejected\": %d, "
      "\"deadline_hits\": %d, \"degraded\": %d, \"retries\": %d, "
      "\"solves_per_sec\": %.4f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
      "\"p99_ms\": %.4f, \"p99_bucket_ms\": %.4f, "
      "\"sort_p50_ms\": %.4f, \"sort_p95_ms\": %.4f, "
      "\"sort_p99_ms\": %.4f, \"hist_vs_sort_p99_ok\": %s, "
      "\"max_overshoot_ms\": %.4f, "
      "\"retry_after_ok\": %s}%s\n",
      name, st.submitted, st.served, st.rejected, st.deadline_hits,
      st.degraded, st.retries, st.solves_per_sec(), st.hist_p50_ms,
      st.hist_p95_ms, st.hist_p99_ms, st.hist_p99_bucket_ms, st.pct(50),
      st.pct(95), st.pct(99),
      st.hist_vs_sort_p99_ok() ? "true" : "false", st.max_overshoot_ms,
      st.retry_after_ok ? "true" : "false", last ? "" : ",");
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  MetricsFromOptions metrics(opts);
  const int workers = static_cast<int>(opts.get_int("workers", 2));
  const int requests = static_cast<int>(opts.get_int("requests", 24));
  double deadline_ms = deadline_ms_from_options(opts);
  if (deadline_ms == 0.0) deadline_ms = 2000.0;  // generous steady-state

  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = static_cast<std::size_t>(2 * workers);
  cfg.tenant_quota = 0;  // the burst driver is one client; quotas off
  cfg.slow_fault_ms = 15.0;
  cfg.metrics_port = 0;  // ephemeral loopback port; self-scraped below

  const auto rhs_src =
      polymg::solvers::PoissonProblem::random_rhs(2, bench_cfg().n, 42);
  auto& compiles = polymg::obs::Metrics::instance().counter("opt.compiles");

  // ---- Panel 1: steady state + zero-recompile check. ----------------
  SolveService svc(cfg);
  {
    // Warm: one request compiles the signature's plan into the cache.
    const auto a = svc.submit(make_request(rhs_src.f, 0, 0.0));
    if (a.admitted) (void)svc.wait(a.ticket);
  }
  const long long compiles_before = compiles.value();
  const PhaseStats steady =
      run_phase(svc, rhs_src.f, requests, workers, deadline_ms);
  const long long recompiles = compiles.value() - compiles_before;
  print_phase("steady", steady);
  std::printf("%-18s plan cache: %zu plan(s), %lld hit(s), "
              "%lld recompile(s)%s\n",
              "", svc.plans().size(),
              static_cast<long long>(svc.plans().hits()), recompiles,
              recompiles == 0 ? " [OK: compile once, serve many]"
                              : " [FAIL: cache hit recompiled]");

  // ---- Panel 2: 2x-oversubscribed burst, clean then faulty. ---------
  const int burst = static_cast<int>(2 * cfg.queue_capacity);
  // Tight enough that the oversubscribed tail actually hits it — the
  // overshoot bar is only meaningful if some requests trip mid-solve.
  const double tight_ms = std::min(deadline_ms, 150.0);
  const PhaseStats over_clean =
      run_phase(svc, rhs_src.f, requests, burst, tight_ms);
  print_phase("overload/clean", over_clean);

  auto& fi = polymg::fault::FaultInjector::instance();
  fi.arm(polymg::fault::kServiceSlow, /*count=*/-1, /*probability=*/0.10,
         0xbead);
  const PhaseStats over_fault =
      run_phase(svc, rhs_src.f, requests, burst, tight_ms);
  fi.reset();
  print_phase("overload/fault", over_fault);

  const double tput_ratio =
      over_clean.solves_per_sec() > 0
          ? over_fault.solves_per_sec() / over_clean.solves_per_sec()
          : 0.0;
  // One tile-stage granule at this size is well under the injected
  // stall; the generous acceptance bound is stall + 5 ms scheduling
  // quantum.
  const double overshoot_bound_ms = cfg.slow_fault_ms + 5.0;
  std::printf(
      "faulty/clean throughput %.2fx (bar: >= 0.90), max overshoot "
      "%.2f ms (bar: <= %.1f ms), retry-after hints %s\n",
      tput_ratio, over_fault.max_overshoot_ms, overshoot_bound_ms,
      over_clean.retry_after_ok && over_fault.retry_after_ok ? "all positive"
                                                            : "MISSING");

  // ---- Self-scrape: hit the service's own Prometheus endpoint while it
  // ---- is still up and keep the payload as a CI artifact. ------------
  bool scrape_ok = false;
  const std::string prom_path = opts.get("prom", "METRICS_service.prom");
  if (svc.metrics_running() && svc.metrics_port() > 0) {
    const std::string payload =
        polymg::obs::ScrapeEndpoint::http_get_local(svc.metrics_port());
    // The scrape must carry the latency histogram series the endpoint
    // exists for; a histogram renders at least one +Inf bucket.
    scrape_ok =
        payload.find("service_e2e_ns_bucket{le=\"+Inf\"}") !=
            std::string::npos &&
        payload.find("# TYPE service_e2e_ns histogram") != std::string::npos;
    if (!prom_path.empty()) {
      std::ofstream os(prom_path);
      os << payload;
      std::printf("scraped 127.0.0.1:%d/metrics -> %s (%zu bytes) [%s]\n",
                  svc.metrics_port(), prom_path.c_str(), payload.size(),
                  scrape_ok ? "OK" : "MISSING SERIES");
    }
  } else {
    std::printf("metrics endpoint unavailable — scrape skipped\n");
  }

  svc.shutdown();

  // ---- JSON ---------------------------------------------------------
  const std::string json = opts.get("json", "BENCH_service.json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"service\",\n");
    std::fprintf(f, "  \"workers\": %d,\n  \"requests\": %d,\n", workers,
                 requests);
    std::fprintf(f, "  \"deadline_ms\": %.1f,\n", deadline_ms);
    std::fprintf(f, "  \"recompiles_after_warm\": %lld,\n", recompiles);
    std::fprintf(f, "  \"throughput_ratio_fault_vs_clean\": %.4f,\n",
                 tput_ratio);
    std::fprintf(f, "  \"overshoot_bound_ms\": %.1f,\n", overshoot_bound_ms);
    std::fprintf(f, "  \"scrape_ok\": %s,\n", scrape_ok ? "true" : "false");
    std::fprintf(f, "  \"phases\": {\n");
    json_phase(f, "steady", steady, false);
    json_phase(f, "overload_clean", over_clean, false);
    json_phase(f, "overload_fault", over_fault, true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
