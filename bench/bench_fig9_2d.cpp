// Figure 9 — 2-d benchmarks: speedups over polymg-naive for every series
// (handopt, handopt+pluto, polymg-naive/-opt/-opt+/-dtile-opt+) on
// {V, W} × {4-4-4, 10-0-0} × size classes, plus the §4.2 geometric-mean
// summary lines.
//
// Flags: --paper (Table 2 sizes), --reps N (default 2; paper uses 5),
//        --class B|C (restrict to one class), --json <path> (machine-
//        readable records next to the printed tables),
//        --precision double|mixed|float (polymg DSL series; the
//        polymg-mixed row is mixed regardless).
#include "gbench.hpp"

namespace polymg::bench {
namespace {

void register_all(const Options& opts) {
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  const std::string only_class = opts.get("class", "");
  const opt::PrecisionPolicy prec = precision_from_options(opts);

  for (const SizeClass& sc : size_classes(paper)) {
    if (!only_class.empty() && sc.name != only_class) continue;
    for (CycleKind kind : {CycleKind::V, CycleKind::W}) {
      for (auto [n1, n2, n3] : {std::tuple{4, 4, 4}, std::tuple{10, 0, 0}}) {
        CycleConfig cfg;
        cfg.ndim = 2;
        cfg.n = sc.n2d;
        cfg.levels = 4;
        cfg.kind = kind;
        cfg.n1 = n1;
        cfg.n2 = n2;
        cfg.n3 = n3;
        const std::string row =
            std::string(kind == CycleKind::V ? "V" : "W") + "-2D-" +
            std::to_string(n1) + "-" + std::to_string(n2) + "-" +
            std::to_string(n3) + "/" + sc.name;
        for (Series s : all_series()) {
          register_point(row, to_string(s),
                         make_runner(s, cfg, sc.iters2d, 42, prec), reps);
        }
      }
    }
  }
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  benchmark::Initialize(&argc, argv);
  register_all(opts);
  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 9: 2-d multigrid benchmarks", "polymg-naive");
  std::printf("\n§4.2 summary (geometric means across 2-d rows):\n");
  std::printf("  polymg-opt+  over polymg-naive : %.2fx (paper 2-d: 4.73x)\n",
              table.geomean_speedup("polymg-opt+", "polymg-naive"));
  std::printf("  polymg-opt+  over polymg-opt   : %.2fx (paper: 1.31x overall)\n",
              table.geomean_speedup("polymg-opt+", "polymg-opt"));
  std::printf("  polymg-opt+  over handopt+pluto: %.2fx (paper 2-d: 1.67x)\n",
              table.geomean_speedup("polymg-opt+", "handopt+pluto"));
  std::printf("  polymg-mixed over polymg-opt+  : %.2fx (float fine grids, "
              "defect correction)\n",
              table.geomean_speedup("polymg-mixed", "polymg-opt+"));
  if (const std::string json = opts.get("json", ""); !json.empty()) {
    table.write_json(json, "fig9-2d", "polymg-naive");
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
