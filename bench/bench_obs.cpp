// Observability-plane microbenchmarks (DESIGN.md §14): what does the
// telemetry cost, and how accurate is it?
//
//   1. Histogram accuracy — 200k deterministic lognormal-ish latency
//      samples recorded from 4 concurrent threads; every quantile read
//      back (p50/p90/p99/p999) must sit within one bucket width
//      (~6.25% relative) of the exact sorted order statistic.
//   2. Recording overhead — ns per Histogram::record() (two relaxed
//      fetch_adds), next to Counter::add() for scale.
//   3. Solve overhead — min-of-N wall time of a PR-4-grain OptPlus
//      solve with no trace session vs an active one; the ratio is the
//      end-to-end price of leaving tracing compiled in and switched on.
//   4. Roofline attribution — enable_perf_attribution() on a
//      barrier-schedule executor; reports per-stage achieved GB/s and
//      arithmetic intensity when the kernel grants perf_event_open,
//      and degrades to the model-only table (skip, not fail) when it
//      does not (containers, perf_event_paranoid).
//
// Emits BENCH_obs.json. Flags: --json FILE plus the usual harness
// options (--trace, --metrics, ...).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gbench.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/obs/histogram.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"

namespace polymg::bench {
namespace {

/// Deterministic lognormal-ish sample stream: exp(mu + sigma * z) with
/// z from a 12-uniform central-limit approximation — long right tail,
/// like a latency distribution, and bit-identical across runs.
std::vector<std::int64_t> make_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double z = -6.0;
    for (int k = 0; k < 12; ++k) z += rng.next_double();
    v.push_back(static_cast<std::int64_t>(std::exp(12.0 + 1.1 * z)));
  }
  return v;
}

std::int64_t exact_quantile(std::vector<std::int64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

struct QuantileCheck {
  double q;
  std::int64_t exact;
  std::int64_t hist;
  std::int64_t bucket_width;
  bool ok;  // |hist - exact| <= bucket width
};

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);

  // ---- Panel 1: quantile accuracy under concurrent recording. -------
  const std::size_t kSamples = 200000;
  const std::vector<std::int64_t> samples = make_samples(kSamples, 0xabcde);
  polymg::obs::Histogram hist;
  {
    const int nthreads = 4;
    std::vector<std::thread> ts;
    for (int t = 0; t < nthreads; ++t) {
      ts.emplace_back([&, t] {
        const std::size_t lo = kSamples * t / nthreads;
        const std::size_t hi = kSamples * (t + 1) / nthreads;
        for (std::size_t i = lo; i < hi; ++i) hist.record(samples[i]);
      });
    }
    for (auto& th : ts) th.join();
  }
  std::vector<QuantileCheck> checks;
  bool all_ok = hist.count() == static_cast<std::int64_t>(kSamples);
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    QuantileCheck c;
    c.q = q;
    c.exact = exact_quantile(samples, q);
    c.hist = hist.quantile(q);
    c.bucket_width = hist.quantile_bucket_width(q);
    c.ok = std::llabs(c.hist - c.exact) <= c.bucket_width;
    all_ok = all_ok && c.ok;
    checks.push_back(c);
    std::printf("p%-5g exact %9lld  histogram %9lld  (+-%lld)  [%s]\n",
                q * 100, static_cast<long long>(c.exact),
                static_cast<long long>(c.hist),
                static_cast<long long>(c.bucket_width),
                c.ok ? "OK" : "FAIL");
  }
  std::printf("concurrent count %lld / %zu, quantiles %s\n",
              static_cast<long long>(hist.count()), kSamples,
              all_ok ? "all within one bucket" : "OUT OF BOUNDS");

  // ---- Panel 2: recording overhead. ---------------------------------
  const std::size_t kOps = std::size_t{1} << 22;
  polymg::obs::Histogram bench_hist;
  auto& bench_ctr = polymg::obs::Metrics::instance().counter("obs.bench");
  const polymg::Stats rec = polymg::min_time_of(
      [&] {
        for (std::size_t i = 0; i < kOps; ++i) {
          bench_hist.record(samples[i % kSamples]);
        }
      },
      3);
  const polymg::Stats ctr = polymg::min_time_of(
      [&] {
        for (std::size_t i = 0; i < kOps; ++i) bench_ctr.add(1);
      },
      3);
  const double record_ns = rec.min / static_cast<double>(kOps) * 1e9;
  const double counter_ns = ctr.min / static_cast<double>(kOps) * 1e9;
  std::printf("histogram record %.2f ns/op, counter add %.2f ns/op\n",
              record_ns, counter_ns);

  // ---- Panel 3: solve overhead with tracing on. ---------------------
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 255;
  cfg.levels = 5;
  const SolveRunner runner = make_runner(Series::OptPlus, cfg, /*cycles=*/3);
  const int kReps = 5;
  double off_s = 0.0, on_s = 0.0, trace_ratio = 1.0;
  if (!trace.active()) {  // an outer --trace session owns the ring
    off_s = time_runner(runner, kReps).min;
    polymg::obs::TraceSession::start();
    on_s = time_runner(runner, kReps).min;
    polymg::obs::TraceSession::stop();
    trace_ratio = off_s > 0 ? on_s / off_s : 1.0;
    std::printf("solve %.2f ms untraced, %.2f ms traced (%.3fx)\n",
                off_s * 1e3, on_s * 1e3, trace_ratio);
  } else {
    std::printf("outer --trace active; skipping the overhead panel\n");
  }

  // ---- Panel 4: roofline attribution. -------------------------------
  auto ex = std::make_shared<polymg::runtime::Executor>(polymg::opt::compile(
      polymg::solvers::build_cycle(cfg),
      CompileOptions::for_variant(Variant::OptPlus, cfg.ndim)));
  const bool perf_available = ex->enable_perf_attribution();
  auto p = polymg::solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 42);
  for (int i = 0; i < 3; ++i) {
    const std::vector<polymg::grid::View> ext = {p.v_view(), p.f_view()};
    ex->run(ext);
  }
  const polymg::obs::RunReport rr = ex->run_report();
  std::printf("%s\n", perf_available
                          ? "perf counters: available"
                          : "perf counters: unavailable (model-only "
                            "roofline; not a failure)");
  for (const auto& row : rr.perf) {
    const double gbs = row.seconds > 0
                           ? row.model_bytes *
                                 static_cast<double>(row.runs) /
                                 row.seconds / 1e9
                           : 0.0;
    const double ai = row.model_bytes > 0
                          ? row.model_flops / row.model_bytes
                          : 0.0;
    std::printf("  %-28s %8.2f GB/s(model)  AI %.3f\n", row.label.c_str(),
                gbs, ai);
  }

  // ---- JSON ---------------------------------------------------------
  const std::string json = opts.get("json", "BENCH_obs.json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"obs\",\n");
    std::fprintf(f, "  \"samples\": %zu,\n  \"quantiles\": [\n", kSamples);
    for (std::size_t i = 0; i < checks.size(); ++i) {
      const QuantileCheck& c = checks[i];
      std::fprintf(f,
                   "    {\"q\": %g, \"exact\": %lld, \"histogram\": %lld, "
                   "\"bucket_width\": %lld, \"ok\": %s}%s\n",
                   c.q, static_cast<long long>(c.exact),
                   static_cast<long long>(c.hist),
                   static_cast<long long>(c.bucket_width),
                   c.ok ? "true" : "false",
                   i + 1 < checks.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"quantiles_ok\": %s,\n", all_ok ? "true" : "false");
    std::fprintf(f, "  \"record_ns_per_op\": %.4f,\n", record_ns);
    std::fprintf(f, "  \"counter_ns_per_op\": %.4f,\n", counter_ns);
    std::fprintf(f, "  \"solve_untraced_ms\": %.4f,\n", off_s * 1e3);
    std::fprintf(f, "  \"solve_traced_ms\": %.4f,\n", on_s * 1e3);
    std::fprintf(f, "  \"trace_overhead_ratio\": %.4f,\n", trace_ratio);
    std::fprintf(f, "  \"perf_counters_available\": %s,\n",
                 perf_available ? "true" : "false");
    std::fprintf(f, "  \"roofline_stages\": %zu\n}\n", rr.perf.size());
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return all_ok ? 0 : 1;
}
